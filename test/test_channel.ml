(* The attested secure-channel layer (docs/PROTOCOL.md): record
   round-trips as properties, replay/reorder/rekey discipline at the
   record layer, the conformance vector suite, full platform sessions
   cross-shard, a crash between every handshake flight (mirroring the
   migration crash matrix), channel reaping on enclave destruction
   and shard recovery, and a long session under channel fault
   injection — corruption may kill a channel but never smuggles a
   byte through. *)

module Types = Hypertee_ems.Types
module Emcall = Hypertee_cs.Emcall
module Platform = Hypertee.Platform
module Secure_channel = Hypertee.Secure_channel
module Config = Hypertee_arch.Config
module Fault = Hypertee_faults.Fault
module Record = Hypertee_channel.Record
module Wire = Hypertee_channel.Wire
module Conformance = Hypertee_channel.Conformance
module Chan = Hypertee_ems.Chan
module Invariant = Hypertee_check.Invariant

let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick
let check = Alcotest.check

let fresh ?faults ?(shards = 2) ~seed () =
  Platform.create ~seed ?faults ~config:{ Config.default with Config.ems_shards = shards } ()

(* Create + EADD + EMEAS: a measured enclave that can answer EATTEST
   (the precondition for accepting channels). *)
let build_enclave ?(fill = 0x41) platform =
  match
    Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Create { config = Types.default_config })
  with
  | Ok (Types.Ok_created { enclave }) ->
    for i = 0 to 2 do
      ignore
        (Platform.invoke platform ~caller:Emcall.Os_kernel
           (Types.Add
              { enclave; vpn = 0x100 + i; data = Bytes.make 64 (Char.chr (fill + i)); executable = false }))
    done;
    ignore (Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Measure { enclave }));
    enclave
  | _ -> Alcotest.fail "build_enclave: create failed"

let clean ?(deep = false) label platform =
  let report = Platform.check ~deep platform in
  if not (Invariant.ok report) then
    Alcotest.failf "%s: %s" label (Invariant.report_to_string report)

(* A loopback record pair with fixed secrets: the transport-agnostic
   layer needs no platform. *)
let record_pair ?rekey_after () =
  let master = Bytes.init 32 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let th = Bytes.init 32 (fun i -> Char.chr ((i * 13) land 0xFF)) in
  ( Record.create ~role:Record.Client ~master ~transcript:th ?rekey_after (),
    Record.create ~role:Record.Server ~master ~transcript:th ?rekey_after () )

let seal_ok conn payload =
  match Record.seal_message conn payload with
  | Ok segs -> segs
  | Error e -> Alcotest.failf "seal: %s" (Record.error_message e)

let deliver_all conn segs =
  List.concat_map
    (fun seg ->
      match Record.deliver conn seg with
      | Ok evs -> evs
      | Error e -> Alcotest.failf "deliver: %s" (Record.error_message e))
    segs

(* --- record layer: properties ---------------------------------------- *)

(* Any payload — empty, one byte, or far beyond a mailbox frame —
   round-trips through seal/deliver as exactly one Message (§3.5). *)
let prop_record_roundtrip =
  prop
    (QCheck.Test.make ~name:"record round-trip (0 B .. several frames)" ~count:60
       QCheck.(
         oneof
           [
             always 0;
             always Wire.max_plaintext;
             always (Wire.max_plaintext + 1);
             int_bound (5 * Wire.max_plaintext);
           ])
       (fun n ->
         let a, b = record_pair () in
         let payload = Bytes.init n (fun i -> Char.chr ((i * 31 + n) land 0xFF)) in
         let segs = seal_ok a payload in
         List.iter
           (fun seg -> QCheck.assume (Bytes.length seg <= Wire.max_segment))
           segs;
         match deliver_all b segs with
         | [ Record.Message m ] -> Bytes.equal m payload
         | _ -> false))

(* Interleaved bidirectional traffic: both directions keep their own
   sequence spaces. *)
let prop_record_duplex =
  prop
    (QCheck.Test.make ~name:"record duplex traffic is independent per direction" ~count:30
       QCheck.(list_of_size Gen.(int_range 1 12) (tup2 bool (int_bound 600)))
       (fun msgs ->
         let a, b = record_pair () in
         List.for_all
           (fun (a_to_b, n) ->
             let payload = Bytes.make n 'd' in
             let src, dst = if a_to_b then (a, b) else (b, a) in
             match deliver_all dst (seal_ok src payload) with
             | [ Record.Message m ] -> Bytes.equal m payload
             | _ -> false)
           msgs))

(* --- record layer: sequencing and rekeying --------------------------- *)

let test_replay_rejected () =
  let a, b = record_pair () in
  let segs = seal_ok a (Bytes.of_string "once only") in
  let seg = List.hd segs in
  ignore (deliver_all b segs);
  (match Record.deliver b seg with
  | Error (Record.Replay _) -> ()
  | Ok _ -> Alcotest.fail "replayed record accepted"
  | Error e -> Alcotest.failf "replay: wrong rejection %s" (Record.error_message e));
  (* Poisoned for good: even a fresh, legitimate record is refused. *)
  (match Record.deliver b (List.hd (seal_ok a (Bytes.of_string "after"))) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "poisoned connection kept accepting");
  check Alcotest.bool "receiver reports poisoning" true (Record.poisoned b <> None)

let test_reorder_rejected () =
  let a, b = record_pair () in
  let first = seal_ok a (Bytes.of_string "first") in
  let second = seal_ok a (Bytes.of_string "second") in
  check Alcotest.int "single-record messages" 1 (List.length second);
  match Record.deliver b (List.hd second) with
  | Error (Record.Replay { expected; got }) ->
    check Alcotest.bool "sequence gap reported" true (got > expected);
    ignore first
  | Ok _ -> Alcotest.fail "reordered record accepted"
  | Error e -> Alcotest.failf "reorder: wrong rejection %s" (Record.error_message e)

let test_rekey_boundary () =
  let a, b = record_pair ~rekey_after:4 () in
  for i = 1 to 20 do
    let payload = Bytes.make (8 + i) 'r' in
    match deliver_all b (seal_ok a payload) with
    | [ Record.Message m ] ->
      check Alcotest.bool (Printf.sprintf "message %d intact across rekeys" i) true
        (Bytes.equal m payload)
    | _ -> Alcotest.failf "message %d lost" i
  done;
  let st = Record.stats a in
  check Alcotest.bool "writer rekeyed at the 4-record boundary" true (st.Record.rekeys_done >= 4);
  check Alcotest.int "reader followed every generation" (Record.write_generation a)
    (Record.read_generation b);
  (* Tampering with the generation byte after a rekey fails the MAC,
     not the generation check — the header is authenticated (§3.3). *)
  let seg = List.hd (seal_ok a (Bytes.of_string "gen")) in
  Bytes.set seg (Wire.header_len - 1) '\000';
  match Record.deliver b seg with
  | Error Record.Bad_mac -> ()
  | Ok _ -> Alcotest.fail "generation-tampered record accepted"
  | Error e -> Alcotest.failf "wrong rejection %s" (Record.error_message e)

(* --- conformance ------------------------------------------------------ *)

let test_conformance_vectors () =
  let outcomes = Conformance.run () in
  check Alcotest.bool "every vector cites a spec section" true
    (List.for_all (fun o -> String.length o.Conformance.section > 0) outcomes);
  if not (Conformance.all_ok outcomes) then
    Alcotest.failf "conformance:\n%s" (Conformance.render outcomes)

(* --- full platform sessions ------------------------------------------ *)

let test_session_host_to_enclave () =
  let platform = fresh ~seed:0x5EC1L () in
  let listener = build_enclave platform in
  let client, server =
    match Secure_channel.establish platform ~listener ~rekey_after:16 () with
    | Ok p -> p
    | Error m -> Alcotest.failf "establish: %s" m
  in
  for i = 1 to 64 do
    let payload = Bytes.make (1 + (i * 37 mod 2048)) (Char.chr (0x30 + (i mod 64))) in
    (match Secure_channel.send client payload with
    | Ok () -> ()
    | Error m -> Alcotest.failf "send %d: %s" i m);
    match Secure_channel.recv server with
    | Ok [ Record.Message m ] ->
      check Alcotest.bool (Printf.sprintf "message %d intact" i) true (Bytes.equal m payload)
    | Ok _ -> Alcotest.failf "message %d: unexpected events" i
    | Error m -> Alcotest.failf "recv %d: %s" i m
  done;
  check Alcotest.bool "session rekeyed"
    true
    ((Record.stats (Secure_channel.conn client)).Record.rekeys_done > 0);
  (match Secure_channel.close client with Ok () -> () | Error m -> Alcotest.failf "close: %s" m);
  ignore (Secure_channel.recv server);
  ignore (Secure_channel.close server);
  check Alcotest.int "no channel left in the fabric" 0
    (Chan.live (Platform.Internals.chans platform));
  clean ~deep:true "host-to-enclave session" platform

let test_session_enclave_to_enclave () =
  let platform = fresh ~seed:0x5EC2L () in
  let listener = build_enclave ~fill:0x41 platform in
  let initiator = build_enclave ~fill:0x51 platform in
  check Alcotest.bool "endpoints live on different shards" true
    (Platform.shard_of_enclave platform listener <> Platform.shard_of_enclave platform initiator);
  let a, b =
    match Secure_channel.establish platform ~listener ~initiator () with
    | Ok p -> p
    | Error m -> Alcotest.failf "establish: %s" m
  in
  let payload = Bytes.make 3000 'e' in
  (match Secure_channel.send a payload with Ok () -> () | Error m -> Alcotest.failf "send: %s" m);
  (match Secure_channel.recv b with
  | Ok [ Record.Message m ] -> check Alcotest.bool "cross-shard message intact" true (Bytes.equal m payload)
  | _ -> Alcotest.fail "cross-shard message lost");
  ignore (Secure_channel.close a);
  ignore (Secure_channel.close b);
  clean "enclave-to-enclave session" platform

(* --- crash between every handshake flight ----------------------------- *)

(* Mirrors the migration crash matrix: stop the establishment after
   each flight, kill and cold-restart the channel's home shard
   (recovery reaps the channel — channel state is deliberately
   volatile, §2.3), and assert the stranded endpoints fail closed
   while the platform stays consistent and a fresh establishment
   succeeds. *)
let test_crash_at_every_flight () =
  let flights =
    [ "after ClientHello"; "after accept"; "after ServerAttest"; "after ClientFinish" ]
  in
  List.iteri
    (fun stage name ->
      let platform = fresh ~seed:(Int64.of_int (0xC4A5 + stage)) () in
      let listener = build_enclave platform in
      let auth_c = Secure_channel.client_auth platform () in
      let auth_s = Secure_channel.enclave_auth platform ~enclave:listener () in
      let client =
        match Secure_channel.connect platform ~caller:Emcall.User_host ~listener ~auth:auth_c () with
        | Ok ep -> ep
        | Error m -> Alcotest.failf "%s: connect: %s" name m
      in
      let server = ref None in
      let run_to_stage () =
        if stage >= 1 then (
          match
            Secure_channel.accept platform ~enclave:listener
              ~chan:(Secure_channel.endpoint_chan client) ~auth:auth_s ()
          with
          | Ok ep -> server := Some ep
          | Error m -> Alcotest.failf "%s: accept: %s" name m);
        (match !server with
        | Some srv when stage >= 2 -> (
          match Secure_channel.step srv with
          | Ok true -> ()
          | Ok false -> Alcotest.failf "%s: ServerAttest not produced" name
          | Error m -> Alcotest.failf "%s: server step: %s" name m)
        | _ -> ());
        if stage >= 3 then (
          match Secure_channel.step client with
          | Ok true -> check Alcotest.bool "client complete" true (Secure_channel.handshake_complete client)
          | Ok false -> Alcotest.failf "%s: ClientFinish not produced" name
          | Error m -> Alcotest.failf "%s: client step: %s" name m)
      in
      run_to_stage ();
      let home = (Secure_channel.endpoint_chan client - 1) mod 2 in
      Platform.kill_shard platform home;
      let report = Platform.recover_shard platform home in
      check Alcotest.int (name ^ ": replay deterministic") 0 report.Platform.mismatches;
      (* The channel did not survive: every stranded endpoint fails
         closed at the gate, nothing hangs or panics. *)
      (match Secure_channel.step client with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: stranded client endpoint still progressing" name);
      (match !server with
      | None -> ()
      | Some srv -> (
        match Secure_channel.step srv with
        | Error _ -> ()
        | Ok true -> Alcotest.failf "%s: stranded server endpoint still progressing" name
        | Ok false -> ()));
      clean (name ^ ": post-recovery") platform;
      (* Establishment over a fresh channel works immediately. *)
      (match Secure_channel.establish platform ~listener () with
      | Ok (c2, s2) ->
        (match Secure_channel.send c2 (Bytes.of_string "recovered") with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: post-recovery send: %s" name m);
        (match Secure_channel.recv s2 with
        | Ok [ Record.Message m ] when Bytes.equal m (Bytes.of_string "recovered") -> ()
        | _ -> Alcotest.failf "%s: post-recovery message lost" name);
        ignore (Secure_channel.close c2);
        ignore (Secure_channel.close s2)
      | Error m -> Alcotest.failf "%s: re-establish: %s" name m);
      clean ~deep:true (name ^ ": final") platform)
    flights

(* --- reaping: no orphaned channel keys -------------------------------- *)

let test_destroy_reaps_channels () =
  let platform = fresh ~seed:0xDEADL () in
  let listener = build_enclave platform in
  let client, _server =
    match Secure_channel.establish platform ~listener () with
    | Ok p -> p
    | Error m -> Alcotest.failf "establish: %s" m
  in
  check Alcotest.int "channel live before destroy" 1 (Chan.live (Platform.Internals.chans platform));
  (match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Destroy { enclave = listener }) with
  | Ok Types.Ok_unit -> ()
  | _ -> Alcotest.fail "destroy failed");
  check Alcotest.int "EDESTROY reaped the enclave's channels" 0
    (Chan.live (Platform.Internals.chans platform));
  (match Secure_channel.send client (Bytes.of_string "late") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "send on a reaped channel succeeded");
  clean ~deep:true "post-destroy" platform

(* --- a long session under channel fault injection --------------------- *)

(* 1000 messages cross-shard with the channel fault sites armed.
   Every injected corruption/truncation/reorder must surface as an
   explicit record-layer rejection — never as a silently altered
   message — after which the session is re-established and traffic
   continues. The platform's deep sweep stays clean throughout. *)
let test_long_session_under_faults () =
  let faults =
    Fault.plan ~seed:0xFA17L
      [
        { Fault.site = Fault.Chan_corrupt; schedule = Fault.Every_nth 211; intensity = 0.0 };
        { Fault.site = Fault.Chan_truncate; schedule = Fault.Every_nth 347; intensity = 0.0 };
        { Fault.site = Fault.Chan_reorder; schedule = Fault.Every_nth 431; intensity = 0.0 };
      ]
  in
  let platform = fresh ~faults ~seed:0x1000L () in
  let listener = build_enclave platform in
  let establish () =
    match Secure_channel.establish platform ~listener ~rekey_after:64 () with
    | Ok p -> Some p
    | Error _ -> None (* a fault ate a flight; caller retries *)
  in
  let session = ref (establish ()) in
  let delivered = ref 0 in
  let rejected = ref 0 in
  let attempts = ref 0 in
  while !delivered < 1000 && !attempts < 5000 do
    incr attempts;
    match !session with
    | None -> session := establish ()
    | Some (client, server) -> (
      let payload =
        Bytes.init (1 + (!attempts * 53 mod 1500)) (fun i -> Char.chr ((i + !attempts) land 0xFF))
      in
      match Secure_channel.send client payload with
      | Error _ ->
        incr rejected;
        ignore (Secure_channel.close client);
        ignore (Secure_channel.close server);
        session := establish ()
      | Ok () -> (
        match Secure_channel.recv server with
        | Ok [ Record.Message m ] ->
          if not (Bytes.equal m payload) then
            Alcotest.failf "SILENT CORRUPTION at message %d" !delivered;
          incr delivered
        | Ok [] | Ok _ ->
          (* A reorder can delay the segment; drain on the next turn.
             Anything else surfaces as an error below. *)
          incr rejected;
          ignore (Secure_channel.close client);
          ignore (Secure_channel.close server);
          session := establish ()
        | Error _ ->
          incr rejected;
          ignore (Secure_channel.close client);
          ignore (Secure_channel.close server);
          session := establish ()))
  done;
  check Alcotest.int "1000 messages delivered byte-exact under faults" 1000 !delivered;
  check Alcotest.bool "fault injection actually fired" true (!rejected > 0);
  (match !session with
  | Some (c, s) ->
    ignore (Secure_channel.close c);
    ignore (Secure_channel.close s)
  | None -> ());
  clean ~deep:true "long session under faults" platform

let suite =
  [
    ( "channel",
      [
        prop_record_roundtrip;
        prop_record_duplex;
        Alcotest.test_case "replay is rejected and poisons" `Quick test_replay_rejected;
        Alcotest.test_case "reorder is rejected" `Quick test_reorder_rejected;
        Alcotest.test_case "rekey boundary discipline" `Quick test_rekey_boundary;
        Alcotest.test_case "conformance vectors (PROTOCOL.md §7)" `Quick test_conformance_vectors;
        Alcotest.test_case "host-to-enclave session end to end" `Quick test_session_host_to_enclave;
        Alcotest.test_case "enclave-to-enclave session cross-shard" `Quick
          test_session_enclave_to_enclave;
        Alcotest.test_case "crash between every handshake flight" `Quick test_crash_at_every_flight;
        Alcotest.test_case "EDESTROY reaps live channels" `Quick test_destroy_reaps_channels;
        Alcotest.test_case "1000 records under channel faults, none silent" `Slow
          test_long_session_under_faults;
      ] );
  ]
