(* Elasticity and crash recovery: sealed checkpoint/restore, live
   cross-shard migration (including a crash between every pair of
   phases), crash-consistent shard recovery via journal replay, the
   batched drain-order oracle, the fault-excused deep sweep, and
   audit attribution of every elasticity outcome. *)

module Types = Hypertee_ems.Types
module Emcall = Hypertee_cs.Emcall
module Platform = Hypertee.Platform
module Config = Hypertee_arch.Config
module Fault = Hypertee_faults.Fault
module Runtime = Hypertee_ems.Runtime
module Enclave = Hypertee_ems.Enclave
module Mem_pool = Hypertee_ems.Mem_pool
module Attest = Hypertee_ems.Attest
module Audit = Hypertee_ems.Audit
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
module Mem_encryption = Hypertee_arch.Mem_encryption
module Invariant = Hypertee_check.Invariant
module Oracle = Hypertee_check.Oracle

let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick
let check = Alcotest.check

let fresh ?faults ?(shards = 2) ~seed () =
  Platform.create ~seed ?faults ~config:{ Config.default with Config.ems_shards = shards } ()

let page_of byte = Bytes.make Hypertee_util.Units.page_size (Char.chr (byte land 0xff))

let gate label platform caller request =
  match Platform.invoke platform ~caller request with
  | Ok (Types.Err e) -> Alcotest.failf "%s: %s" label (Types.error_message e)
  | Ok r -> r
  | Error _ -> Alcotest.failf "%s: gate rejection" label

(* Create + EADD [code_pages] distinct pages + EMEAS: a quiescent
   [Measured] enclave, the precondition for checkpoint/migration. *)
let build_enclave ?(code_pages = 2) ?(fill = 0x41) platform =
  match gate "create" platform Emcall.Os_kernel (Types.Create { config = Types.default_config }) with
  | Types.Ok_created { enclave } ->
    for i = 0 to code_pages - 1 do
      ignore
        (gate "add" platform Emcall.Os_kernel
           (Types.Add { enclave; vpn = 0x100 + i; data = page_of (fill + i); executable = false }))
    done;
    (match gate "measure" platform Emcall.Os_kernel (Types.Measure { enclave }) with
    | Types.Ok_measure { measurement } -> (enclave, measurement)
    | _ -> Alcotest.fail "measure: unexpected response")
  | _ -> Alcotest.fail "create: unexpected response"

(* Every page of the enclave, resident ones decrypted through the
   engine, swapped ones as their EWB blobs — the full observable
   memory image the checkpoint must preserve. *)
let page_view platform ~shard ~enclave =
  let rt = Platform.Internals.runtime_of_shard platform shard in
  match Runtime.find_enclave rt enclave with
  | None -> Alcotest.failf "page_view: enclave %d not on shard %d" enclave shard
  | Some e ->
    let mee = Platform.Internals.mee platform in
    let mem = Platform.mem platform in
    let resident =
      List.map
        (fun (vpn, pte) ->
          (vpn, `Resident (Mem_encryption.read_page mee mem ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn)))
        (Page_table.entries e.Enclave.page_table)
    in
    let swapped =
      Hashtbl.fold (fun vpn blob acc -> (vpn, `Swapped blob) :: acc) e.Enclave.swapped_out []
    in
    List.sort compare (resident @ swapped)

let attest_verifies platform ~enclave ~measurement =
  match
    Platform.invoke platform ~caller:(Emcall.User_enclave enclave)
      (Types.Attest { enclave; user_data = Bytes.of_string "elastic" })
  with
  | Ok (Types.Ok_attest { quote }) -> (
    match Attest.quote_of_bytes quote with
    | None -> false
    | Some q ->
      Attest.verify_quote ~ek:(Platform.ek_public platform) ~ak:(Platform.ak_public platform) q
      && Bytes.equal q.Attest.enclave_measurement measurement)
  | _ -> false

let clean label platform =
  let report = Platform.check ~deep:true platform in
  if not (Invariant.ok report) then
    Alcotest.failf "%s: %s" label (Invariant.report_to_string report)

(* --- checkpoint/restore round trip (property) --- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"checkpoint/restore preserves measurement, pages and attestation"
    ~count:15
    QCheck.(tup3 (int_range 1 3) (int_range 0 4) bool)
    (fun (code_pages, heap_pages, evict) ->
      let platform = fresh ~shards:2 ~seed:0x20BB1EL () in
      let enclave, measurement = build_enclave ~code_pages ~fill:(0x30 + code_pages) platform in
      if heap_pages > 0 then
        ignore
          (gate "alloc" platform (Emcall.User_enclave enclave)
             (Types.Alloc { enclave; pages = heap_pages }));
      if evict && heap_pages > 0 then begin
        (* Drain the hot shard's pool so EWB must evict live heap
           pages: the snapshot then carries both residents and
           swap blobs. *)
        let pool = Runtime.pool (Platform.Internals.runtime_of_shard platform 0) in
        ignore (Mem_pool.surrender pool ~n:(Mem_pool.available pool));
        ignore
          (gate "writeback" platform Emcall.Os_kernel (Types.Writeback { pages_hint = 16 }))
      end;
      let source_view = page_view platform ~shard:0 ~enclave in
      match Platform.checkpoint platform ~enclave with
      | Error e -> Alcotest.failf "checkpoint: %s" (Types.error_message e)
      | Ok blob -> (
        (* Restore on the *other* shard: exercises adoption and a
           disjoint frame pool. *)
        match Platform.restore ~shard:1 platform blob with
        | Error e -> Alcotest.failf "restore: %s" (Types.error_message e)
        | Ok restored ->
          let restored_view = page_view platform ~shard:1 ~enclave:restored in
          let source_live =
            Runtime.find_enclave (Platform.Internals.runtime_of_shard platform 0) enclave <> None
          in
          clean "round trip" platform;
          source_live
          && restored_view = source_view
          && attest_verifies platform ~enclave:restored ~measurement))

(* --- live migration: success path --- *)

let test_migrate_success () =
  let platform = fresh ~shards:2 ~seed:0x316A7EL () in
  let enclave, measurement = build_enclave platform in
  (match Platform.migrate platform ~enclave ~target:1 with
  | Platform.Migrated -> ()
  | Platform.Migration_aborted reason -> Alcotest.failf "aborted: %s" reason
  | Platform.Migration_crashed _ -> Alcotest.fail "unscripted crash");
  check Alcotest.int "gate routes the id to the target shard" 1
    (Platform.shard_of_enclave platform enclave);
  check Alcotest.bool "source copy destroyed" true
    (Runtime.find_enclave (Platform.Internals.runtime_of_shard platform 0) enclave = None);
  check Alcotest.bool "attestation survives migration (same id, same measurement)" true
    (attest_verifies platform ~enclave ~measurement);
  clean "post-migration" platform

(* --- live migration: crash between every pair of phases --- *)

let test_migrate_crash_at_every_phase () =
  List.iter
    (fun phase ->
      let name = Platform.migration_phase_name phase in
      let platform = fresh ~shards:2 ~seed:0xC7A54L () in
      let enclave, measurement = build_enclave platform in
      (match Platform.migrate ~crash_after:phase platform ~enclave ~target:1 with
      | Platform.Migration_crashed { after; owner } ->
        check Alcotest.string "crash attributed to the scripted phase" name
          (Platform.migration_phase_name after);
        let on s =
          Runtime.find_enclave (Platform.Internals.runtime_of_shard platform s) enclave <> None
        in
        (match (owner, on 0, on 1) with
        | `Source, true, false | `Target, false, true -> ()
        | _, src, tgt ->
          Alcotest.failf "crash after %s: source=%b target=%b, owner not exclusive" name src tgt)
      | Platform.Migrated -> Alcotest.failf "crash after %s ignored" name
      | Platform.Migration_aborted reason ->
        Alcotest.failf "crash after %s became abort: %s" name reason);
      (* Whichever copy survived, the gate still reaches it and its
         identity is intact. *)
      check Alcotest.bool
        (Printf.sprintf "attestation reaches the survivor after crash at %s" name)
        true
        (attest_verifies platform ~enclave ~measurement);
      clean (Printf.sprintf "crash after %s" name) platform)
    Platform.[ Quiesced; Checkpointed; Transferred; Restored; Attested; Committed ]

(* --- kill / cold-restart a shard --- *)

let test_kill_and_recover_shard () =
  let platform = fresh ~shards:2 ~seed:0x12EC0L () in
  let e0, m0 = build_enclave ~fill:0x50 platform in
  let e1, m1 = build_enclave ~fill:0x60 platform in
  check Alcotest.int "fleet spans both shards" 1
    (Platform.shard_of_enclave platform e1 - Platform.shard_of_enclave platform e0);
  ignore (gate "alloc e0" platform (Emcall.User_enclave e0) (Types.Alloc { enclave = e0; pages = 2 }));
  Platform.kill_shard platform 0;
  check Alcotest.bool "shard 0 down" false (Platform.shard_alive platform 0);
  (match Platform.invoke platform ~caller:(Emcall.User_enclave e0) (Types.Alloc { enclave = e0; pages = 1 }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request served by a dead shard");
  check Alcotest.bool "other shard unaffected" true (attest_verifies platform ~enclave:e1 ~measurement:m1);
  let report = Platform.recover_shard platform 0 in
  check Alcotest.bool "journal replayed" true (report.Platform.replayed > 0);
  check Alcotest.int "replay deterministic (no divergent responses)" 0 report.Platform.mismatches;
  check Alcotest.bool "shard serving again" true (Platform.shard_alive platform 0);
  check Alcotest.bool "enclave state rebuilt (attestation verifies)" true
    (attest_verifies platform ~enclave:e0 ~measurement:m0);
  ignore (gate "post-recovery alloc" platform (Emcall.User_enclave e0) (Types.Alloc { enclave = e0; pages = 1 }));
  clean "post-recovery" platform

(* --- batched drain order: the oracle predicts every batched result --- *)

let test_batched_oracle_exact () =
  let platform = fresh ~shards:2 ~seed:0xBA7C4L () in
  let oracle = Platform.attach_oracle platform in
  let batch requests =
    List.iter
      (function
        | Ok ((Types.Err _ : Types.response), (_ : float)) -> Alcotest.fail "batched request failed"
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "batched request rejected")
      (Platform.invoke_batch platform requests)
  in
  batch
    (List.init 6 (fun _ -> (Emcall.Os_kernel, Types.Create { config = Types.default_config })));
  let ids = List.init 6 (fun i -> i + 1) in
  batch
    (List.map
       (fun e ->
         ( Emcall.Os_kernel,
           Types.Add { enclave = e; vpn = 0x100; data = page_of (0x70 + e); executable = false } ))
       ids);
  batch (List.map (fun e -> (Emcall.Os_kernel, Types.Measure { enclave = e })) ids);
  (* Mixed batch: allocs interleaved across both shards, where drain
     order (not request order) decides pool/frame outcomes. *)
  batch
    (List.concat_map
       (fun e ->
         [
           (Emcall.User_enclave e, Types.Alloc { enclave = e; pages = 1 });
           (Emcall.User_enclave e, Types.Alloc { enclave = e; pages = 2 });
         ])
       ids);
  check Alcotest.bool "oracle observed the batched stream" true (Oracle.observed oracle > 0);
  check Alcotest.int "oracle predicts every batched result" 0 (Oracle.divergence_count oracle);
  Platform.detach_oracle platform

(* --- deep sweep under injected bit flips: excused, not reported --- *)

let test_deep_sweep_excuses_injected_flips () =
  (* Every second engine read is struck: the sweep must verify the
     clean reads and excuse the struck ones, reporting neither. *)
  let faults =
    Fault.plan ~seed:0xF11BL
      [ { Fault.site = Fault.Memory_bit_flip; schedule = Fault.Every_nth 2; intensity = 1.0 } ]
  in
  let platform = fresh ~faults ~shards:1 ~seed:0xF11BL () in
  let _ = build_enclave ~code_pages:4 ~fill:0x21 platform in
  let report = Platform.check ~deep:true platform in
  check Alcotest.bool "no false-positive violations" true (Invariant.ok report);
  check Alcotest.bool "struck sweep reads excused" true (report.Invariant.injected_macs > 0);
  check Alcotest.bool "clean pages still verified" true (report.Invariant.pages_verified > 0)

(* --- audit attribution of elasticity outcomes --- *)

let test_audit_attribution () =
  let platform = fresh ~shards:2 ~seed:0xAD17L () in
  let enclave, _ = build_enclave platform in
  (match Platform.migrate platform ~enclave ~target:1 with
  | Platform.Migrated -> ()
  | _ -> Alcotest.fail "migration failed");
  (* Restore onto shard 1: a recovered shard's audit starts empty (its
     private state died with it), so events that must survive the kill
     of shard 0 below have to land on shard 1. *)
  (match Platform.checkpoint platform ~enclave with
  | Ok blob -> (
    match Platform.restore ~shard:1 platform blob with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "restore: %s" (Types.error_message e))
  | Error e -> Alcotest.failf "checkpoint: %s" (Types.error_message e));
  Platform.kill_shard platform 0;
  ignore (Platform.recover_shard platform 0);
  let sites =
    Array.fold_left
      (fun acc rt ->
        List.fold_left
          (fun acc (ev : Audit.fault_event) ->
            if ev.Audit.recovered then ev.Audit.site :: acc else acc)
          acc
          (Audit.fault_events (Runtime.audit rt)))
      []
      (Platform.Internals.runtimes platform)
  in
  List.iter
    (fun site ->
      check Alcotest.bool (Printf.sprintf "audit records a recovered %S event" site) true
        (List.mem site sites))
    [ "migration"; "restore"; "shard-recovery" ];
  clean "audited scenario" platform

(* --- the chaos scenario itself, one quick deterministic pass --- *)

let test_rolling_restart_clean () =
  let r = Hypertee_experiments.Chaos.rolling_restart ~seed:0x7E57L ~ops:120 ~shards:2 () in
  check Alcotest.int "every shard killed once" 2 (List.length r.Hypertee_experiments.Chaos.rounds);
  check Alcotest.bool "rolling restart clean" true (Hypertee_experiments.Chaos.restart_clean r)

let suite =
  [
    ( "elasticity",
      [
        prop prop_roundtrip;
        Alcotest.test_case "live migration succeeds end to end" `Quick test_migrate_success;
        Alcotest.test_case "crash at every migration phase leaves one owner" `Quick
          test_migrate_crash_at_every_phase;
        Alcotest.test_case "killed shard recovers by journal replay" `Quick
          test_kill_and_recover_shard;
        Alcotest.test_case "oracle predicts batched drain order exactly" `Quick
          test_batched_oracle_exact;
        Alcotest.test_case "deep sweep excuses injected MAC flips" `Quick
          test_deep_sweep_excuses_injected_flips;
        Alcotest.test_case "audit attributes migration/restore/recovery" `Quick
          test_audit_attribution;
        Alcotest.test_case "rolling restart scenario is clean" `Quick test_rolling_restart_clean;
      ] );
  ]
