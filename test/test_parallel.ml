(* Tests for the domain-parallel execution machinery: the worker
   pool, the execution-mode switch, the windowed parallel DES, the
   MEE bulk pipelines, domain-safe observability, and — the headline
   property — that Parallel mode is observationally identical to
   Deterministic mode at the same seed. *)

open Hypertee
module Pool = Hypertee_util.Domain_pool
module Exec = Hypertee_sim.Exec
module Engine = Hypertee_sim.Engine
module Engine_group = Hypertee_sim.Engine_group
module Mee = Hypertee_arch.Mem_encryption
module Phys_mem = Hypertee_arch.Phys_mem
module Config = Hypertee_arch.Config
module Metrics = Hypertee_obs.Metrics
module Trace = Hypertee_obs.Trace
module Scale = Hypertee_experiments.Scale
module Chaos = Hypertee_experiments.Chaos
module Types = Hypertee_ems.Types
module Emcall = Hypertee_cs.Emcall
module Invariant = Hypertee_check.Invariant

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

(* {2 Domain pool} *)

let with_pool domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_order () =
  with_pool 4 (fun pool ->
      let xs = Array.init 257 Fun.id in
      let ys = Pool.map pool (fun x -> (x * 2) + 1) xs in
      check Alcotest.(array int) "order and values preserved"
        (Array.map (fun x -> (x * 2) + 1) xs)
        ys;
      check Alcotest.int "size includes submitter" 4 (Pool.size pool))

let test_pool_exception_propagates () =
  with_pool 3 (fun pool ->
      let ran = Atomic.make 0 in
      let jobs =
        Array.init 8 (fun i () ->
            Atomic.incr ran;
            if i = 5 then failwith "job 5 exploded")
      in
      (try
         Pool.run_all pool jobs;
         Alcotest.fail "exception was swallowed"
       with Failure m -> check Alcotest.string "original exception" "job 5 exploded" m);
      (* The barrier still waited for every job, failure included. *)
      check Alcotest.int "all jobs ran before re-raise" 8 (Atomic.get ran))

let test_pool_nested_inline () =
  with_pool 4 (fun pool ->
      let inner_total = Atomic.make 0 in
      let jobs =
        Array.init 4 (fun _ () ->
            (* A job submitting to its own pool must not deadlock: the
               nested batch runs inline on this worker. *)
            Pool.run_all pool (Array.init 3 (fun _ () -> Atomic.incr inner_total)))
      in
      Pool.run_all pool jobs;
      check Alcotest.int "nested jobs all ran" 12 (Atomic.get inner_total))

let test_pool_sequential_degenerate () =
  with_pool 1 (fun pool ->
      check Alcotest.int "no workers" 1 (Pool.size pool);
      (* Inline execution is strictly submission-ordered. *)
      let log = ref [] in
      Pool.run_all pool (Array.init 5 (fun i () -> log := i :: !log));
      check Alcotest.(list int) "submission order" [ 4; 3; 2; 1; 0 ] !log)

let test_pool_usable_after_shutdown () =
  let pool = Pool.create ~domains:4 in
  Pool.shutdown pool;
  let hits = Atomic.make 0 in
  Pool.run_all pool (Array.init 6 (fun _ () -> Atomic.incr hits));
  check Alcotest.int "submitter drains everything itself" 6 (Atomic.get hits)

(* {2 Execution mode} *)

let test_exec_strings () =
  check Alcotest.(option string) "deterministic round trip" (Some "deterministic")
    (Option.map Exec.to_string (Exec.of_string "deterministic"));
  (match Exec.of_string "parallel:4" with
  | Some (Exec.Parallel { domains }) -> check Alcotest.int "parallel:4" 4 domains
  | _ -> Alcotest.fail "parallel:4 did not parse");
  (match Exec.of_string "parallel" with
  | Some (Exec.Parallel { domains }) ->
    check Alcotest.bool "bare parallel picks host parallelism" true (domains >= 1)
  | _ -> Alcotest.fail "parallel did not parse");
  check Alcotest.bool "junk rejected" true (Exec.of_string "sideways" = None);
  check Alcotest.int "deterministic is one domain" 1 (Exec.domains Exec.Deterministic);
  check Alcotest.int "parallel carries its width" 3
    (Exec.domains (Exec.Parallel { domains = 3 }));
  (* resolve honours the request when the environment is silent; under
     the HYPERTEE_EXEC matrix the override wins by design. *)
  match Sys.getenv_opt Exec.env_var with
  | None ->
    check Alcotest.bool "request honoured" true
      (Exec.resolve ~requested:Exec.Deterministic = Exec.Deterministic)
  | Some s ->
    check Alcotest.bool "env override wins" true
      (Exec.resolve ~requested:Exec.Deterministic = Option.get (Exec.of_string s))

(* {2 Windowed engine group} *)

(* One scenario, two modes: every member keeps its own event log (the
   domain-confinement rule the protocol is built on), handlers hop
   work across members through [send], and the logs, clocks and
   counters must come out identical. *)
let run_group_scenario mode =
  let members = 3 in
  let group = Engine_group.create ~mode ~members () in
  let logs = Array.init members (fun _ -> ref []) in
  let record i e tag = logs.(i) := (Engine.now e, tag) :: !(logs.(i)) in
  for i = 0 to members - 1 do
    Engine_group.at group ~member:i
      ~time:(float_of_int (10 * (i + 1)))
      (fun e ->
        record i e (100 + i);
        Engine.after e ~delay:55. (fun e -> record i e (150 + i));
        (* Two-hop cascade: i -> i+1 -> i+2 (mod members). *)
        let dst = (i + 1) mod members in
        Engine_group.send group ~src:i ~dst
          ~time:(Engine.now e +. 300.)
          (fun e ->
            record dst e (200 + i);
            let dst2 = (dst + 1) mod members in
            Engine_group.send group ~src:dst ~dst:dst2
              ~time:(Engine.now e +. 300.)
              (fun e -> record dst2 e (300 + i))))
  done;
  (* External (pre-run) seeding also crosses the fabric. *)
  Engine_group.send group ~dst:1 ~time:5. (fun e -> record 1 e 999);
  let clock = Engine_group.run group in
  Engine_group.shutdown group;
  ( Array.map (fun l -> List.rev !l) logs,
    clock,
    Engine_group.processed group,
    Engine_group.delivered group,
    Engine_group.windows group )

let test_group_basics () =
  let logs, clock, processed, delivered, windows =
    run_group_scenario Exec.Deterministic
  in
  check Alcotest.int "every event ran" 13 processed;
  check Alcotest.int "every message crossed" 7 delivered;
  check Alcotest.bool "multiple barrier rounds" true (windows > 1);
  check Alcotest.bool "clock past the longest cascade" true (clock >= 600.);
  (* Cross-member deliveries are floored to window boundaries, so no
     message may arrive before its nominal send time. *)
  Array.iteri
    (fun i log ->
      List.iter
        (fun (t, tag) ->
          if tag >= 200 && tag < 400 then
            check Alcotest.bool
              (Printf.sprintf "member %d tag %d respects fabric latency" i tag)
              true (t >= 300.))
        log)
    logs

let test_group_mode_equivalence () =
  let d = run_group_scenario Exec.Deterministic in
  let p = run_group_scenario (Exec.Parallel { domains = 4 }) in
  let logs_d, clock_d, processed_d, delivered_d, windows_d = d in
  let logs_p, clock_p, processed_p, delivered_p, windows_p = p in
  check Alcotest.int "processed identical" processed_d processed_p;
  check Alcotest.int "delivered identical" delivered_d delivered_p;
  check Alcotest.int "windows identical" windows_d windows_p;
  check (Alcotest.float 0.0) "clock identical" clock_d clock_p;
  Array.iteri
    (fun i log_d ->
      check
        Alcotest.(list (pair (float 0.0) int))
        (Printf.sprintf "member %d log identical" i)
        log_d logs_p.(i))
    logs_d

let test_group_ping_pong () =
  let rounds = 16 in
  let group = Engine_group.create ~mode:(Exec.Parallel { domains = 2 }) ~members:2 () in
  let count = ref 0 in
  let rec volley src e =
    incr count;
    if !count < 2 * rounds then
      Engine_group.send group ~src ~dst:(1 - src)
        ~time:(Engine.now e +. 100.)
        (volley (1 - src))
  in
  Engine_group.at group ~member:0 ~time:0. (volley 0);
  let clock = Engine_group.run group in
  Engine_group.shutdown group;
  check Alcotest.int "every volley returned" (2 * rounds) !count;
  check Alcotest.bool "terminated with a sane clock" true (clock > 0.);
  check Alcotest.bool "no message left behind" false (Engine_group.inboxes_pending group)

let test_group_until_parks () =
  let group = Engine_group.create ~mode:Exec.Deterministic ~members:2 () in
  Engine_group.at group ~member:0 ~time:50. (fun _ -> ());
  Engine_group.at group ~member:1 ~time:5000. (fun _ -> ());
  let clock = Engine_group.run ~until:1000. group in
  check Alcotest.bool "parked at the limit" true (clock <= 1000.);
  check Alcotest.int "early event ran" 1 (Engine_group.processed group);
  check
    Alcotest.(option (float 0.0))
    "late event retained" (Some 5000.)
    (Engine_group.next_event_time group);
  let clock = Engine_group.run group in
  check (Alcotest.float 0.0) "resumed to completion" 5000. clock;
  Engine_group.shutdown group

(* {2 MEE bulk pipelines} *)

let page_of i = Bytes.init 4096 (fun j -> Char.chr ((i + (7 * j)) land 0xff))

let test_mee_bulk_matches_scalar () =
  let key = Bytes.init 16 (fun i -> Char.chr (0x40 + i)) in
  let mk () =
    let mee = Mee.create ~slots:4 () in
    Mee.program mee ~key_id:1 key;
    (mee, Phys_mem.create ~frames:8)
  in
  let mee_par, mem_par = mk () in
  let mee_seq, mem_seq = mk () in
  with_pool 4 (fun pool ->
      Mee.set_pool mee_par pool;
      let pages = Array.init 6 (fun i -> (i, page_of i)) in
      Mee.write_pages mee_par mem_par ~key_id:1 pages;
      Array.iter (fun (frame, data) -> Mee.write_page mee_seq mem_seq ~key_id:1 ~frame data)
        pages;
      for frame = 0 to 5 do
        check Alcotest.bytes
          (Printf.sprintf "frame %d ciphertext identical" frame)
          (Phys_mem.read mem_seq ~frame)
          (Phys_mem.read mem_par ~frame)
      done;
      let back = Mee.read_pages mee_par mem_par ~key_id:1 (Array.init 6 Fun.id) in
      Array.iteri
        (fun i plain ->
          check Alcotest.bytes (Printf.sprintf "page %d round trip" i) (page_of i) plain)
        back)

(* {2 Domain-safe observability} *)

let test_metrics_concurrent_counters () =
  let registry = Metrics.create () in
  let c = Metrics.counter registry "test.hits" in
  let g = Metrics.gauge registry "test.level" in
  let workers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Metrics.incr c
            done;
            Metrics.set_gauge g (float_of_int d)))
  in
  Array.iter Domain.join workers;
  check Alcotest.int "no lost increments" 4000 (Metrics.counter_value c);
  check Alcotest.bool "gauge holds one of the writes" true
    (let v = Metrics.gauge_value g in
     v >= 0. && v <= 3.)

let test_trace_merges_domain_stores () =
  let tracer = Trace.create () in
  Trace.install tracer;
  Fun.protect
    ~finally:(fun () -> Trace.uninstall ())
    (fun () ->
      let per_domain = 50 in
      let workers =
        Array.init 3 (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to per_domain - 1 do
                  ignore
                    (Trace.emit ~track:(d + 1) ~cat:Trace.Other
                       ~name:(Printf.sprintf "d%d" d)
                       ~start_ns:(float_of_int i) ~dur_ns:1. ())
                done))
      in
      (* The submitting domain records too. *)
      for i = 0 to per_domain - 1 do
        ignore (Trace.emit ~cat:Trace.Other ~name:"main" ~start_ns:(float_of_int i)
                  ~dur_ns:1. ())
      done;
      Array.iter Domain.join workers;
      check Alcotest.int "all stores merged at export" (4 * per_domain)
        (Trace.span_count tracer);
      check Alcotest.int "nothing dropped" 0 (Trace.dropped tracer);
      (* The export path sees every domain's spans. *)
      let names =
        Trace.spans tracer
        |> List.map (fun s -> s.Trace.name)
        |> List.sort_uniq compare
      in
      check Alcotest.(list string) "every domain represented"
        [ "d0"; "d1"; "d2"; "main" ] names)

(* {2 Mode equivalence at the platform level} *)

(* The tentpole property: a scale-sweep point run with a parallel
   platform (4 domains fanning per-shard doorbell drains and MEE
   pipelines) is indistinguishable from the deterministic reference —
   same responses, same modelled timings, and a clean invariant sweep
   at the end. *)
let scale_equivalence_prop =
  QCheck.Test.make ~name:"Scale point: Parallel(4) == Deterministic" ~count:6
    QCheck.(
      tup4 (int_range 1 4) (int_range 1 4) (int_range 1 4) (int_range 4 24))
    (fun (cs_cores, shards, batch, ops) ->
      let seed = Int64.of_int (0x9A11E7 + (cs_cores * 1009) + (shards * 131) + ops) in
      let reference = Scale.run_point ~seed ~cs_cores ~shards ~batch ~ops () in
      let parallel = Scale.run_point ~seed ~domains:4 ~cs_cores ~shards ~batch ~ops () in
      reference.Scale.invariant_violations = 0
      && parallel.Scale.invariant_violations = 0
      && reference = parallel)

let test_rolling_restart_parallel () =
  let report = Chaos.rolling_restart ~seed:0xD0A1A5L ~ops:90 ~shards:3 ~domains:4 () in
  check Alcotest.bool "parallel rolling restart clean" true (Chaos.restart_clean report)

(* Batched traffic through a parallel platform across a full
   kill/recover cycle of every shard: the pool fans the surviving
   shards' doorbell drains while one shard is down, recovery brings
   the fleet back, and the deep invariant sweep at the end is clean. *)
let test_parallel_batch_survives_restarts () =
  let shards = 4 in
  let config = { Config.default with Config.ems_shards = shards; Config.domains = 4 } in
  let platform = Platform.create ~seed:0xBA7C4L ~config () in
  Fun.protect
    ~finally:(fun () -> Platform.shutdown platform)
    (fun () ->
      let enclaves =
        List.filter_map
          (fun r ->
            match r with
            | Ok (Types.Ok_created { enclave }, _) -> Some enclave
            | _ -> None)
          (Platform.invoke_batch platform
             (List.init 8 (fun _ ->
                  (Emcall.Os_kernel, Types.Create { config = Types.default_config }))))
      in
      check Alcotest.int "fleet created in one batch" 8 (List.length enclaves);
      for victim = 0 to shards - 1 do
        Platform.kill_shard platform victim;
        (* Traffic for the survivors still fans out concurrently. *)
        let alive =
          List.filter (fun id -> Platform.shard_of_enclave platform id <> victim) enclaves
        in
        let results =
          Platform.invoke_batch platform
            (List.map (fun id -> (Emcall.User_host, Types.Alloc { enclave = id; pages = 1 })) alive)
        in
        List.iter
          (fun r ->
            match r with
            | Ok (Types.Ok_alloc _, _) -> ()
            | _ -> Alcotest.fail "surviving shard failed during outage")
          results;
        let recovery = Platform.recover_shard platform victim in
        check Alcotest.int
          (Printf.sprintf "shard %d replay clean" victim)
          0 recovery.Platform.mismatches;
        (* Full-fleet batch after recovery: everyone answers. *)
        let results =
          Platform.invoke_batch platform
            (List.map
               (fun id -> (Emcall.User_host, Types.Alloc { enclave = id; pages = 1 }))
               enclaves)
        in
        List.iter
          (fun r ->
            match r with
            | Ok (Types.Ok_alloc _, _) -> ()
            | _ -> Alcotest.fail "post-recovery batch failed")
          results
      done;
      let report = Platform.check ~deep:true platform in
      check Alcotest.bool "deep invariant sweep clean" true (Invariant.ok report))

let suite =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
        Alcotest.test_case "exceptions propagate after barrier" `Quick
          test_pool_exception_propagates;
        Alcotest.test_case "nested submission runs inline" `Quick test_pool_nested_inline;
        Alcotest.test_case "single-domain pool is sequential" `Quick
          test_pool_sequential_degenerate;
        Alcotest.test_case "usable after shutdown" `Quick test_pool_usable_after_shutdown;
      ] );
    ( "parallel.exec",
      [ Alcotest.test_case "mode parsing and resolution" `Quick test_exec_strings ] );
    ( "parallel.engine_group",
      [
        Alcotest.test_case "windowed protocol basics" `Quick test_group_basics;
        Alcotest.test_case "parallel == deterministic schedule" `Quick
          test_group_mode_equivalence;
        Alcotest.test_case "cross-member ping pong terminates" `Quick test_group_ping_pong;
        Alcotest.test_case "until parks and resumes" `Quick test_group_until_parks;
      ] );
    ( "parallel.mee",
      [ Alcotest.test_case "bulk pipeline == scalar loop" `Quick test_mee_bulk_matches_scalar ] );
    ( "parallel.obs",
      [
        Alcotest.test_case "counters survive domain contention" `Quick
          test_metrics_concurrent_counters;
        Alcotest.test_case "trace merges per-domain stores" `Quick
          test_trace_merges_domain_stores;
      ] );
    ( "parallel.equivalence",
      [
        prop scale_equivalence_prop;
        Alcotest.test_case "rolling restart under parallel mode" `Quick
          test_rolling_restart_parallel;
        Alcotest.test_case "batched traffic across shard restarts" `Quick
          test_parallel_batch_survives_restarts;
      ] );
  ]
