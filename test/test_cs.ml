(* Tests for hypertee_cs: the OS model and the EMCall gate. *)

module Os = Hypertee_cs.Os
module Emcall = Hypertee_cs.Emcall
module Types = Hypertee_ems.Types
module Phys_mem = Hypertee_arch.Phys_mem
module Page_table = Hypertee_arch.Page_table
module Mailbox = Hypertee_arch.Mailbox
module Config = Hypertee_arch.Config

let check = Alcotest.check

(* --- Os --- *)

let fresh_os () = Os.create (Phys_mem.create ~frames:512)

let test_os_alloc_free () =
  let os = fresh_os () in
  let before = Os.free_count os in
  let frames = Os.alloc_frames os ~n:10 in
  check Alcotest.int "ten frames" 10 (List.length frames);
  check Alcotest.int "free count dropped" (before - 10) (Os.free_count os);
  List.iter
    (fun f -> check Alcotest.bool "owned by OS" true (Phys_mem.owner (Os.mem os) f = Phys_mem.Cs_os))
    frames;
  Os.free_frames os ~frames;
  check Alcotest.int "free count restored" before (Os.free_count os)

let test_os_spawn_and_malloc () =
  let os = fresh_os () in
  let p = Os.spawn os in
  check Alcotest.int "pid assigned" 1 p.Os.pid;
  (match Os.malloc_pages os p ~pages:4 with
  | Some base ->
    check Alcotest.int "mapped count" 4 p.Os.mapped_pages;
    (match Page_table.lookup p.Os.page_table ~vpn:base with
    | Some pte -> check Alcotest.bool "writable mapping" true pte.Hypertee_arch.Pte.writable
    | None -> Alcotest.fail "mapping missing");
    Os.free_pages os p ~vpn:base ~pages:4;
    check Alcotest.int "unmapped" 0 p.Os.mapped_pages;
    check Alcotest.bool "pte gone" true (Page_table.lookup p.Os.page_table ~vpn:base = None)
  | None -> Alcotest.fail "malloc failed")

let test_os_malloc_distinct_regions () =
  let os = fresh_os () in
  let p = Os.spawn os in
  let a = Option.get (Os.malloc_pages os p ~pages:2) in
  let b = Option.get (Os.malloc_pages os p ~pages:2) in
  check Alcotest.bool "regions do not overlap" true (b >= a + 2)

let test_os_pool_hooks () =
  let os = fresh_os () in
  check Alcotest.int "no refills yet" 0 (Os.ems_refill_requests os);
  let frames = Os.pool_request os ~n:8 in
  check Alcotest.int "eight granted" 8 (List.length frames);
  check Alcotest.int "counted" 1 (Os.ems_refill_requests os);
  Os.pool_return os ~frames;
  List.iter
    (fun f -> check Alcotest.bool "returned" true (Phys_mem.owner (Os.mem os) f = Phys_mem.Free))
    frames

(* --- Emcall --- *)

(* A stub EMS that answers every request with Ok_unit, for testing
   the gate in isolation. *)
let gate_fixture () =
  let mailbox : (Types.request, Types.response) Mailbox.t = Mailbox.create () in
  let served = ref [] in
  let ems_service () =
    let rec drain () =
      match Mailbox.recv_request mailbox with
      | Some p ->
        served := (p.Mailbox.sender_enclave, p.Mailbox.body) :: !served;
        (match Mailbox.send_response mailbox ~request_id:p.Mailbox.request_id Types.Ok_unit with
        | Ok () -> ()
        | Error `Unknown_or_answered -> Alcotest.fail "stub EMS answered twice");
        drain ()
      | None -> ()
    in
    drain ()
  in
  let emcall =
    Emcall.create
      ~rng:(Hypertee_util.Xrng.create 3L)
      ~transport:Config.default_transport ~mailbox ~ems_service
      ~service_ns:(fun _ -> 1000.0) ()
  in
  (emcall, served)

let all_callers = [ Emcall.Os_kernel; Emcall.User_host; Emcall.User_enclave 42 ]

let request_of_opcode op : Types.request =
  match op with
  | Types.ECREATE -> Types.Create { config = Types.default_config }
  | Types.EADD -> Types.Add { enclave = 1; vpn = 0; data = Bytes.empty; executable = false }
  | Types.EENTER -> Types.Enter { enclave = 1 }
  | Types.ERESUME -> Types.Resume { enclave = 1 }
  | Types.EEXIT -> Types.Exit { enclave = 1 }
  | Types.EDESTROY -> Types.Destroy { enclave = 1 }
  | Types.EALLOC -> Types.Alloc { enclave = 1; pages = 1 }
  | Types.EFREE -> Types.Free { enclave = 1; vpn = 0; pages = 1 }
  | Types.EWB -> Types.Writeback { pages_hint = 1 }
  | Types.ESHMGET -> Types.Shmget { owner = 1; pages = 1; max_perm = Types.Read_only }
  | Types.ESHMAT -> Types.Shmat { enclave = 1; shm = 1; requested_perm = Types.Read_only }
  | Types.ESHMDT -> Types.Shmdt { enclave = 1; shm = 1 }
  | Types.ESHMSHR -> Types.Shmshr { owner = 1; shm = 1; grantee = 2; perm = Types.Read_only }
  | Types.ESHMDES -> Types.Shmdes { owner = 1; shm = 1 }
  | Types.EMEAS -> Types.Measure { enclave = 1 }
  | Types.EATTEST -> Types.Attest { enclave = 1; user_data = Bytes.empty }
  | Types.ECHOPEN -> Types.Chan_open { listener = 1 }
  | Types.ECHACC -> Types.Chan_accept { enclave = 1; chan = 1 }
  | Types.ECHSEND -> Types.Chan_send { chan = 1; seg = Bytes.make 64 'x' }
  | Types.ECHRECV -> Types.Chan_recv { chan = 1 }
  | Types.ECHCLOSE -> Types.Chan_close { chan = 1 }
  | Types.ERETIRE -> Types.Retire { enclave = 1 }
  | Types.EWARM -> Types.Warm_create { measurement = Bytes.create 32 }

(* The full cross-privilege matrix of Sec. III-B mechanism 1: every
   opcode x every caller; exactly the privilege-matching cells pass
   the gate. *)
let test_privilege_matrix () =
  let emcall, _ = gate_fixture () in
  List.iter
    (fun op ->
      List.iter
        (fun caller ->
          let caller_priv =
            match caller with Emcall.Os_kernel -> Types.Os | _ -> Types.User
          in
          let expected_pass = caller_priv = Types.required_privilege op in
          match Emcall.invoke emcall ~caller (request_of_opcode op) with
          | Ok _ ->
            if not expected_pass then
              Alcotest.failf "%s passed the gate from the wrong privilege" (Types.opcode_name op)
          | Error Emcall.Cross_privilege ->
            if expected_pass then
              Alcotest.failf "%s wrongly blocked" (Types.opcode_name op)
          | Error Emcall.Mailbox_full -> Alcotest.fail "unexpected back-pressure"
          | Error Emcall.Timeout -> Alcotest.fail "unexpected timeout"
          | Error Emcall.Busy -> Alcotest.fail "unexpected admission shed")
        all_callers)
    Types.all_opcodes

let test_identity_stamping () =
  let emcall, served = gate_fixture () in
  ignore (Emcall.invoke emcall ~caller:(Emcall.User_enclave 9) (request_of_opcode Types.EALLOC));
  ignore (Emcall.invoke emcall ~caller:Emcall.Os_kernel (request_of_opcode Types.ECREATE));
  (match !served with
  | [ (None, Types.Create _); (Some 9, Types.Alloc _) ] -> ()
  | _ -> Alcotest.fail "sender identities not stamped correctly");
  check Alcotest.int "no rejections" 0 (Emcall.rejected emcall)

let test_page_fault_bypasses_privilege () =
  let emcall, _ = gate_fixture () in
  (* Page faults are forwarded from trap context regardless of the
     interrupted privilege level. *)
  match Emcall.invoke emcall ~caller:Emcall.User_host (Types.Page_fault { enclave = 1; vpn = 0 }) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "fault forwarding must not be privilege-gated"

let test_latency_model () =
  let emcall, _ = gate_fixture () in
  let l1 =
    match Emcall.invoke_timed emcall ~caller:Emcall.Os_kernel (request_of_opcode Types.ECREATE) with
    | Ok (_, latency) -> latency
    | Error _ -> Alcotest.fail "gate must pass an OS-mode ECREATE"
  in
  check Alcotest.bool "positive latency" true (l1 > 0.0);
  check Alcotest.bool "at least transport + service" true
    (l1 >= Emcall.transport_ns emcall +. 1000.0 -. 1.0);
  (* Quantised to poll slots with jitter: never an exact multiple by
     more than one slot above the raw value. *)
  let slot = Config.default_transport.Config.poll_slot_ns in
  check Alcotest.bool "bounded by two extra slots" true
    (l1 <= Emcall.transport_ns emcall +. 1000.0 +. (2.0 *. slot))

let test_flush_hooks () =
  let emcall, _ = gate_fixture () in
  let flushed = ref 0 in
  Emcall.register_tlb_flush_hook emcall (fun () -> incr flushed);
  Emcall.register_tlb_flush_hook emcall (fun () -> incr flushed);
  (* EALLOC changes the bitmap -> flush fires on all hooks. *)
  ignore (Emcall.invoke emcall ~caller:(Emcall.User_enclave 1) (request_of_opcode Types.EALLOC));
  check Alcotest.int "both hooks ran" 2 !flushed;
  check Alcotest.int "flush counted" 1 (Emcall.tlb_flushes emcall);
  (* EATTEST does not change the bitmap. *)
  ignore (Emcall.invoke emcall ~caller:(Emcall.User_enclave 1) (request_of_opcode Types.EATTEST));
  check Alcotest.int "no flush for attest" 2 !flushed

let test_rejection_counter () =
  let emcall, _ = gate_fixture () in
  ignore (Emcall.invoke emcall ~caller:Emcall.User_host (request_of_opcode Types.ECREATE));
  ignore (Emcall.invoke emcall ~caller:Emcall.Os_kernel (request_of_opcode Types.EALLOC));
  check Alcotest.int "two rejections" 2 (Emcall.rejected emcall)

(* --- Batched transport and sharded gate --- *)

(* A stub EMS per shard that echoes the Alloc payload back, so tests
   can verify which request a response belongs to. *)
let echo_fixture ~shards () =
  let served = Array.make shards [] in
  let make_shard s =
    let mailbox : (Types.request, Types.response) Mailbox.t = Mailbox.create () in
    let ems_service () =
      let rec drain () =
        match Mailbox.recv_request mailbox with
        | Some p ->
          served.(s) <- (p.Mailbox.sender_enclave, p.Mailbox.body) :: served.(s);
          let response =
            match p.Mailbox.body with
            | Types.Alloc { enclave; pages } -> Types.Ok_alloc { base_vpn = enclave; pages }
            | _ -> Types.Ok_unit
          in
          (match Mailbox.send_response mailbox ~request_id:p.Mailbox.request_id response with
          | Ok () -> ()
          | Error `Unknown_or_answered -> Alcotest.fail "stub EMS answered twice");
          drain ()
        | None -> ()
      in
      drain ()
    in
    { Emcall.mailbox; ems_service }
  in
  let route = function
    | Types.Alloc { enclave; _ } -> (enclave - 1) mod shards
    | _ -> 0
  in
  let emcall =
    Emcall.create_sharded
      ~rng:(Hypertee_util.Xrng.create 9L)
      ~transport:Config.default_transport
      ~shards:(Array.init shards make_shard)
      ~route
      ~service_ns:(fun _ -> 1000.0) ()
  in
  (emcall, served)

let test_invoke_timed_returns_latency () =
  let emcall, _ = gate_fixture () in
  match Emcall.invoke_timed emcall ~caller:Emcall.Os_kernel (request_of_opcode Types.ECREATE) with
  | Ok (Types.Ok_unit, latency) ->
    check Alcotest.bool "positive latency" true (latency > 0.0);
    (* Latency is owned by this call — quantised to a poll-slot
       boundary at or above the raw cost, plus sub-slot jitter. *)
    let slot = Config.default_transport.Config.poll_slot_ns in
    let raw = Emcall.transport_ns emcall +. 1000.0 in
    check Alcotest.bool "no less than the raw cost" true (latency >= raw);
    check Alcotest.bool "within quantisation + jitter" true (latency < raw +. (2.0 *. slot))
  | Ok _ -> Alcotest.fail "stub EMS must answer Ok_unit"
  | Error _ -> Alcotest.fail "gate must pass an OS-mode ECREATE"

let test_batch_preserves_bindings () =
  let emcall, served = echo_fixture ~shards:2 () in
  let n = 9 in
  let requests =
    List.init n (fun i ->
        (Emcall.User_host, Types.Alloc { enclave = i + 1; pages = 10 * (i + 1) }))
  in
  let results = Emcall.invoke_batch emcall requests in
  check Alcotest.int "one result per request" n (List.length results);
  List.iteri
    (fun i result ->
      match result with
      | Ok (Types.Ok_alloc { base_vpn; pages }, latency) ->
        (* The echo proves the response came back to the request that
           produced it, across shard boundaries. *)
        check Alcotest.int "response bound to its request slot" (i + 1) base_vpn;
        check Alcotest.int "payload preserved" (10 * (i + 1)) pages;
        check Alcotest.bool "per-call latency positive" true (latency > 0.0)
      | _ -> Alcotest.failf "slot %d: wrong or missing response" i)
    results;
  check Alcotest.bool "shard 0 served its id class" true (List.length served.(0) > 0);
  check Alcotest.bool "shard 1 served its id class" true (List.length served.(1) > 0)

let test_batch_overhead_amortizes () =
  let emcall, _ = gate_fixture () in
  let overheads =
    List.map (fun batch -> Emcall.per_call_overhead_ns emcall ~batch) [ 1; 2; 4; 8; 16 ]
  in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  check Alcotest.bool "per-call overhead strictly decreases with batch" true
    (strictly_decreasing overheads);
  Alcotest.check_raises "batch below one rejected"
    (Invalid_argument "Emcall.per_call_overhead_ns: batch must be >= 1") (fun () ->
      ignore (Emcall.per_call_overhead_ns emcall ~batch:0))

let test_batch_rejects_only_cross_privilege_slots () =
  let emcall, _ = echo_fixture ~shards:1 () in
  let requests =
    [
      (Emcall.User_host, Types.Alloc { enclave = 1; pages = 1 });
      (Emcall.User_host, Types.Create { config = Types.default_config });
      (Emcall.User_host, Types.Alloc { enclave = 2; pages = 2 });
    ]
  in
  (match Emcall.invoke_batch emcall requests with
  | [ Ok _; Error Emcall.Cross_privilege; Ok _ ] -> ()
  | _ -> Alcotest.fail "exactly the cross-privilege slot must be rejected");
  check Alcotest.int "rejection counted" 1 (Emcall.rejected emcall)

let suite =
  [
    ( "cs.os",
      [
        Alcotest.test_case "alloc/free frames" `Quick test_os_alloc_free;
        Alcotest.test_case "spawn and malloc" `Quick test_os_spawn_and_malloc;
        Alcotest.test_case "malloc regions distinct" `Quick test_os_malloc_distinct_regions;
        Alcotest.test_case "pool hooks" `Quick test_os_pool_hooks;
      ] );
    ( "cs.emcall",
      [
        Alcotest.test_case "privilege matrix (16 ops x 3 callers)" `Quick test_privilege_matrix;
        Alcotest.test_case "identity stamping" `Quick test_identity_stamping;
        Alcotest.test_case "page fault bypasses privilege" `Quick test_page_fault_bypasses_privilege;
        Alcotest.test_case "latency model" `Quick test_latency_model;
        Alcotest.test_case "TLB flush hooks" `Quick test_flush_hooks;
        Alcotest.test_case "rejection counter" `Quick test_rejection_counter;
      ] );
    ( "cs.emcall.batch",
      [
        Alcotest.test_case "invoke_timed returns latency" `Quick test_invoke_timed_returns_latency;
        Alcotest.test_case "batch preserves bindings" `Quick test_batch_preserves_bindings;
        Alcotest.test_case "batch overhead amortizes" `Quick test_batch_overhead_amortizes;
        Alcotest.test_case "cross-privilege slot isolated" `Quick
          test_batch_rejects_only_cross_privilege_slots;
      ] );
  ]
