(* Tests for the trace generator (cross-validating the analytic perf
   model) and the functional NIC model. *)

module Tracegen = Hypertee_workloads.Tracegen
module Nic = Hypertee_accel.Nic
module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Ihub = Hypertee_arch.Ihub
module Config = Hypertee_arch.Config
module Bx = Hypertee_util.Bytes_ext

let check = Alcotest.check
let rng () = Hypertee_util.Xrng.create 0xDE7L

(* --- Tracegen --- *)

let test_trace_hot_only_hits () =
  let spec = { Tracegen.default_spec with Tracegen.hot_fraction = 1.0; warm_fraction = 0.0 } in
  let r = Tracegen.run (rng ()) spec ~accesses:50_000 ~latency:Config.default_latency in
  (* 16 KiB resident in a 64 KiB L1: almost everything hits after
     warm-up. *)
  check Alcotest.bool "tiny L1 miss rate" true (r.Tracegen.l1_miss_rate < 0.02);
  check Alcotest.bool "negligible off-chip" true (r.Tracegen.l2_miss_rate < 0.01);
  check Alcotest.bool "tiny TLB miss rate" true (r.Tracegen.tlb_miss_rate < 0.01)

let test_trace_cold_stream_misses () =
  let spec =
    { Tracegen.default_spec with Tracegen.hot_fraction = 0.0; warm_fraction = 0.0 }
  in
  let r = Tracegen.run (rng ()) spec ~accesses:50_000 ~latency:Config.default_latency in
  (* A pure stream over 16 MiB: every access a new line -> misses
     everywhere. *)
  check Alcotest.bool "stream misses L1" true (r.Tracegen.l1_miss_rate > 0.95);
  check Alcotest.bool "stream misses L2" true (r.Tracegen.l2_miss_rate > 0.95)

let test_trace_warm_set_l2_resident () =
  let spec =
    { Tracegen.default_spec with Tracegen.hot_fraction = 0.0; warm_fraction = 1.0 }
  in
  let r = Tracegen.run (rng ()) spec ~accesses:100_000 ~latency:Config.default_latency in
  (* 256 KiB working set: misses the 64 KiB L1 often, but fits in the
     1 MiB L2. *)
  check Alcotest.bool "L1-hostile" true (r.Tracegen.l1_miss_rate > 0.4);
  check Alcotest.bool "L2-resident" true (r.Tracegen.l2_miss_rate < 0.05)

let test_trace_cycles_scale_with_misses () =
  let hot = { Tracegen.default_spec with Tracegen.hot_fraction = 1.0; warm_fraction = 0.0 } in
  let cold = { Tracegen.default_spec with Tracegen.hot_fraction = 0.0; warm_fraction = 0.0 } in
  let rh = Tracegen.run (rng ()) hot ~accesses:20_000 ~latency:Config.default_latency in
  let rc = Tracegen.run (rng ()) cold ~accesses:20_000 ~latency:Config.default_latency in
  check Alcotest.bool "misses cost cycles" true (rc.Tracegen.cycles > 5.0 *. rh.Tracegen.cycles)

let test_trace_calibration_matches_profile () =
  (* The rv8 'light' profile claims L1 4 mpki / LLC 0.15 mpki; the
     calibrated stream must land within a factor of ~2.5 of both,
     showing the analytic inputs are realisable. *)
  let l1_mpki = 4.0 and llc_mpki = 0.15 in
  let _, r = Tracegen.calibrate (rng ()) ~l1_mpki ~llc_mpki ~accesses:60_000 in
  let refs = 300.0 in
  let got_l1 = r.Tracegen.l1_miss_rate *. refs in
  let got_llc = r.Tracegen.l2_miss_rate *. refs in
  check Alcotest.bool "L1 density in range" true (got_l1 > l1_mpki /. 2.5 && got_l1 < l1_mpki *. 2.5);
  check Alcotest.bool "LLC density in range" true
    (got_llc > llc_mpki /. 3.0 && got_llc < llc_mpki *. 3.0)

(* --- NIC --- *)

type fixture = {
  mem : Phys_mem.t;
  mee : Mem_encryption.t;
  ihub : Ihub.t;
  nic : Nic.t;
}

let nic_fixture () =
  let mem = Phys_mem.create ~frames:64 in
  let mee = Mem_encryption.create ~slots:8 () in
  let ihub = Ihub.create mem in
  let nic = Nic.create ~mem ~mee ~ihub ~channel:2 in
  { mem; mee; ihub; nic }

(* Build a descriptor at slot [i] of the (plaintext) ring frame. *)
let write_descriptor mem ~ring_frame ~slot ~payload_frame ~off ~len =
  let d = Bytes.create 16 in
  Bx.set_u64_le d 0 (Int64.of_int payload_frame);
  Bx.set_u64_le d 8 (Int64.logor (Int64.of_int off) (Int64.shift_left (Int64.of_int len) 32));
  Phys_mem.write_sub mem ~frame:ring_frame ~off:(slot * 16) d

let test_nic_requires_ring () =
  let f = nic_fixture () in
  match Nic.transmit f.nic ~head:0 ~count:1 with
  | Error Nic.No_ring -> ()
  | _ -> Alcotest.fail "transmit without a ring must fail"

let test_nic_whitelisted_transmit () =
  let f = nic_fixture () in
  (* Ring in frame 2, payload in frame 3; EMS opens the window. *)
  Ihub.configure_dma_window f.ihub ~channel:2 ~base_frame:2 ~frames:2 ~writable:false;
  Phys_mem.write_sub f.mem ~frame:3 ~off:100 (Bytes.of_string "packet-one");
  write_descriptor f.mem ~ring_frame:2 ~slot:0 ~payload_frame:3 ~off:100 ~len:10;
  Nic.set_tx_ring f.nic ~frame:2 ~key_id:0 ~entries:8;
  (match Nic.transmit f.nic ~head:0 ~count:1 with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "transmit failed");
  check (Alcotest.list Alcotest.bytes) "frame on the wire" [ Bytes.of_string "packet-one" ]
    (Nic.wire f.nic);
  check Alcotest.int "counted" 1 (Nic.frames_sent f.nic)

let test_nic_blocked_outside_window () =
  let f = nic_fixture () in
  (* Window covers only the ring; the payload frame is outside. *)
  Ihub.configure_dma_window f.ihub ~channel:2 ~base_frame:2 ~frames:1 ~writable:false;
  write_descriptor f.mem ~ring_frame:2 ~slot:0 ~payload_frame:9 ~off:0 ~len:8;
  Nic.set_tx_ring f.nic ~frame:2 ~key_id:0 ~entries:8;
  match Nic.transmit f.nic ~head:0 ~count:1 with
  | Error (Nic.Dma_denied Ihub.Outside_dma_window) ->
    check Alcotest.int "nothing on the wire" 0 (List.length (Nic.wire f.nic))
  | _ -> Alcotest.fail "payload fetch outside the window must be dropped"

let test_nic_malicious_descriptor_rejected () =
  let f = nic_fixture () in
  Ihub.configure_dma_window f.ihub ~channel:2 ~base_frame:0 ~frames:64 ~writable:false;
  Nic.set_tx_ring f.nic ~frame:2 ~key_id:0 ~entries:8;
  (* Length that escapes the payload frame. *)
  write_descriptor f.mem ~ring_frame:2 ~slot:0 ~payload_frame:3 ~off:4000 ~len:500;
  (match Nic.transmit f.nic ~head:0 ~count:1 with
  | Error (Nic.Bad_descriptor _) -> ()
  | _ -> Alcotest.fail "overflowing descriptor accepted");
  (* Frame number out of range. *)
  write_descriptor f.mem ~ring_frame:2 ~slot:1 ~payload_frame:9999 ~off:0 ~len:8;
  match Nic.transmit f.nic ~head:1 ~count:1 with
  | Error (Nic.Bad_descriptor _) -> ()
  | _ -> Alcotest.fail "wild frame accepted"

let test_nic_encrypted_payload_path () =
  let f = nic_fixture () in
  Ihub.configure_dma_window f.ihub ~channel:2 ~base_frame:2 ~frames:4 ~writable:false;
  (* Payload lives encrypted under key 3 (a shared-memory page); the
     NIC's payload fetches carry that KeyID. *)
  Mem_encryption.program f.mee ~key_id:3 (Bytes.make 16 'k');
  let page = Bytes.make 4096 '\000' in
  Bytes.blit_string "ciphertext-at-rest" 0 page 0 18;
  Phys_mem.write f.mem ~frame:4 (Mem_encryption.store f.mee ~key_id:3 ~frame:4 page);
  write_descriptor f.mem ~ring_frame:2 ~slot:0 ~payload_frame:4 ~off:0 ~len:18;
  Nic.set_tx_ring f.nic ~frame:2 ~key_id:0 ~entries:8;
  Nic.set_payload_key_id f.nic 3;
  (match Nic.transmit f.nic ~head:0 ~count:1 with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "encrypted transmit failed");
  check (Alcotest.list Alcotest.bytes) "decrypted payload on the wire"
    [ Bytes.of_string "ciphertext-at-rest" ] (Nic.wire f.nic)

let test_nic_ring_wraparound () =
  let f = nic_fixture () in
  Ihub.configure_dma_window f.ihub ~channel:2 ~base_frame:2 ~frames:4 ~writable:false;
  Nic.set_tx_ring f.nic ~frame:2 ~key_id:0 ~entries:4;
  for slot = 0 to 3 do
    Phys_mem.write_sub f.mem ~frame:3 ~off:(slot * 16) (Bytes.of_string (Printf.sprintf "frame-%d" slot));
    write_descriptor f.mem ~ring_frame:2 ~slot ~payload_frame:3 ~off:(slot * 16) ~len:7
  done;
  (match Nic.transmit f.nic ~head:2 ~count:4 with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "wraparound transmit failed");
  check (Alcotest.list Alcotest.bytes) "ring order with wrap"
    (List.map Bytes.of_string [ "frame-2"; "frame-3"; "frame-0"; "frame-1" ])
    (Nic.wire f.nic)

let suite =
  [
    ( "devices.tracegen",
      [
        Alcotest.test_case "hot set hits" `Quick test_trace_hot_only_hits;
        Alcotest.test_case "cold stream misses" `Quick test_trace_cold_stream_misses;
        Alcotest.test_case "warm set is L2-resident" `Quick test_trace_warm_set_l2_resident;
        Alcotest.test_case "cycles scale with misses" `Quick test_trace_cycles_scale_with_misses;
        Alcotest.test_case "calibration matches profile" `Quick test_trace_calibration_matches_profile;
      ] );
    ( "devices.nic",
      [
        Alcotest.test_case "requires a ring" `Quick test_nic_requires_ring;
        Alcotest.test_case "whitelisted transmit" `Quick test_nic_whitelisted_transmit;
        Alcotest.test_case "blocked outside the window" `Quick test_nic_blocked_outside_window;
        Alcotest.test_case "malicious descriptors rejected" `Quick test_nic_malicious_descriptor_rejected;
        Alcotest.test_case "encrypted payload path" `Quick test_nic_encrypted_payload_path;
        Alcotest.test_case "ring wraparound" `Quick test_nic_ring_wraparound;
      ] );
  ]
