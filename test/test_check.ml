(* Regression tests for the invariant checker / differential oracle
   PR: each bugfix that rode along gets a test that fails on the
   pre-fix code, plus coverage that the checker itself catches the
   corruption classes it claims to. *)

module Types = Hypertee_ems.Types
module Emcall = Hypertee_cs.Emcall
module Mailbox = Hypertee_arch.Mailbox
module Platform = Hypertee.Platform
module Sdk = Hypertee.Sdk
module Config = Hypertee_arch.Config
module Fault = Hypertee_faults.Fault
module Runtime = Hypertee_ems.Runtime
module Scheduler = Hypertee_ems.Scheduler
module Ownership = Hypertee_ems.Ownership
module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Mem_encryption = Hypertee_arch.Mem_encryption
module Invariant = Hypertee_check.Invariant
module Explorer = Hypertee_check.Explorer
module Verify = Hypertee_experiments.Verify
module Xrng = Hypertee_util.Xrng

let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let small_config =
  {
    Types.code_pages = 1;
    data_pages = 1;
    heap_pages = 4;
    stack_pages = 1;
    shared_pages = 8;
  }

let small_image =
  Sdk.image_of_code ~config:small_config ~code:(Bytes.of_string "x") ~data:Bytes.empty ()

let expect_ok label = function
  | Ok r -> r
  | Error _ -> Alcotest.failf "%s: gate error" label

let response_name : Types.response -> string = function
  | Types.Err e -> Types.error_message e
  | _ -> "unexpected success variant"

(* --- Poll-quantisation ceiling (Emcall.complete) ---

   A raw round-trip cost that lands exactly on a poll-slot boundary
   completes in that slot; the pre-fix rounding charged one extra
   full slot for it. Observable latency must stay inside
   [raw, raw + slot) (the upper gap is poll-phase jitter). *)

let test_quantisation_boundary () =
  let mailbox : (Types.request, Types.response) Mailbox.t = Mailbox.create () in
  let ems_service () =
    let rec drain () =
      match Mailbox.recv_request mailbox with
      | Some p ->
        (match Mailbox.send_response mailbox ~request_id:p.Mailbox.request_id Types.Ok_unit with
        | Ok () -> ()
        | Error `Unknown_or_answered -> Alcotest.fail "stub EMS answered twice");
        drain ()
      | None -> ()
    in
    drain ()
  in
  let service = ref 0.0 in
  let emcall =
    Emcall.create ~rng:(Xrng.create 7L) ~transport:Config.default_transport ~mailbox
      ~ems_service
      ~service_ns:(fun _ -> !service)
      ()
  in
  let slot = Config.default_transport.Config.poll_slot_ns in
  let overhead = Emcall.transport_ns emcall in
  (* Pick the service time so [overhead + service] is an exact
     multiple of the poll slot, a few slots in. *)
  let raw = (Float.ceil (overhead /. slot) +. 3.0) *. slot in
  service := raw -. overhead;
  for _ = 1 to 16 do
    let _, latency =
      expect_ok "boundary invoke"
        (Emcall.invoke_timed emcall ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 0 }))
    in
    if latency < raw then
      Alcotest.failf "latency %.1f below the raw cost %.1f" latency raw;
    if latency >= raw +. slot then
      Alcotest.failf "boundary cost paid an extra slot: latency %.1f, raw %.1f, slot %.1f"
        latency raw slot
  done;
  (* Off-boundary sanity: a cost just past the boundary rounds up to
     the next slot (and only that one). *)
  service := raw -. overhead +. 1.0;
  let _, latency =
    expect_ok "off-boundary invoke"
      (Emcall.invoke_timed emcall ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 0 }))
  in
  if latency < raw +. slot || latency >= raw +. (2.0 *. slot) then
    Alcotest.failf "off-boundary cost quantised wrongly: latency %.1f, raw %.1f" latency (raw +. 1.0)

(* --- Duplicate-response accounting (Emcall.credit_duplicates +
   abandoned-id draining) ---

   A response that arrives after its request timed out is stale; its
   copies must be drained from the mailbox on the next poll of that
   shard and credited to the same [duplicates_discarded] telemetry as
   live-path duplicates — with the "one copy was the legitimate
   response" discount. Pre-fix the late slot lingered and the counter
   double-counted. *)

let test_duplicate_accounting () =
  let mailbox : (Types.request, Types.response) Mailbox.t = Mailbox.create () in
  (* While [hold] is set the stub consumes requests without answering
     them (a slow EMS); parked packets are answered on the first
     drain after release. *)
  let hold = ref false in
  let parked = Queue.create () in
  let answer (p : Types.request Mailbox.packet) =
    match Mailbox.send_response mailbox ~request_id:p.Mailbox.request_id Types.Ok_unit with
    | Ok () -> ()
    | Error `Unknown_or_answered -> Alcotest.fail "stub EMS answered twice"
  in
  let ems_service () =
    if not !hold then Queue.iter answer parked;
    if not !hold then Queue.clear parked;
    let rec drain () =
      match Mailbox.recv_request mailbox with
      | Some p ->
        if !hold then Queue.push p parked else answer p;
        drain ()
      | None -> ()
    in
    drain ()
  in
  let emcall =
    Emcall.create ~rng:(Xrng.create 11L) ~transport:Config.default_transport ~mailbox
      ~ems_service ~service_ns:(fun _ -> 100.0) ()
  in
  (* Every posted response is duplicated by the fabric (copies = 2). *)
  Mailbox.set_fault_injector mailbox
    (Fault.create
       (Fault.plan [ { Fault.site = Fault.Mailbox_duplicate; schedule = Fault.Always; intensity = 0.0 } ]));
  hold := true;
  (match Emcall.invoke emcall ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 0 }) with
  | Error Emcall.Timeout -> ()
  | _ -> Alcotest.fail "withheld response should time out");
  Alcotest.(check int) "one timeout" 1 (Emcall.timeouts emcall);
  hold := false;
  (* The next invoke's doorbell releases the parked answer (late,
     duplicated) and serves the live request (also duplicated). *)
  (match Emcall.invoke emcall ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 0 }) with
  | Ok (Types.Ok_writeback _ | Types.Ok_unit) -> ()
  | _ -> Alcotest.fail "second invoke should succeed");
  (* Late slot: 2 copies, none consumed -> 1 extra. Live slot:
     2 copies, 1 consumed by the poll -> 1 extra. *)
  Alcotest.(check int) "duplicates credited once each" 2 (Emcall.duplicates_discarded emcall);
  Alcotest.(check int) "fabric duplicated both posts" 2 (Mailbox.duplicated mailbox);
  Alcotest.(check int) "no response lingers" 0 (Mailbox.pending_responses mailbox)

(* --- Shared-frame leak on owner-death + last-detach (Ownership /
   Svc_shm.reap_orphaned_shms) ---

   Owner creates a region, shares it, the grantee attaches, the owner
   dies, the grantee detaches: the orphaned region must be reaped
   (frames back to the pool, key revoked), not leaked forever. *)

let test_shm_orphan_reap () =
  let platform = Platform.create ~seed:0xC0FFEEL () in
  let a = Result.get_ok (Sdk.launch platform small_image) in
  let b = Result.get_ok (Sdk.launch platform small_image) in
  let shm =
    match
      expect_ok "shmget"
        (Platform.invoke platform ~caller:(Emcall.User_enclave a)
           (Types.Shmget { owner = a; pages = 2; max_perm = Types.Read_write }))
    with
    | Types.Ok_shm { shm } -> shm
    | r -> Alcotest.failf "shmget: %s" (response_name r)
  in
  (match
     expect_ok "shmshr"
       (Platform.invoke platform ~caller:(Emcall.User_enclave a)
          (Types.Shmshr { owner = a; shm; grantee = b; perm = Types.Read_write }))
   with
  | Types.Ok_unit -> ()
  | r -> Alcotest.failf "shmshr: %s" (response_name r));
  (match
     expect_ok "shmat"
       (Platform.invoke platform ~caller:(Emcall.User_enclave b)
          (Types.Shmat { enclave = b; shm; requested_perm = Types.Read_write }))
   with
  | Types.Ok_shmat _ -> ()
  | r -> Alcotest.failf "shmat: %s" (response_name r));
  (match Sdk.destroy platform ~enclave:a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "destroy owner: %s" e);
  (match
     expect_ok "shmdt"
       (Platform.invoke platform ~caller:(Emcall.User_enclave b)
          (Types.Shmdt { enclave = b; shm }))
   with
  | Types.Ok_unit -> ()
  | r -> Alcotest.failf "shmdt: %s" (response_name r));
  let runtime = Platform.Internals.runtime platform in
  Alcotest.(check int) "no leaked shared frames" 0 (Runtime.leaked_shm_frames runtime);
  (match Runtime.find_shm runtime shm with
  | None -> ()
  | Some _ -> Alcotest.fail "orphaned region still registered after last detach");
  let report = Platform.check platform in
  if not (Invariant.ok report) then
    Alcotest.failf "invariants after reap: %s" (Invariant.report_to_string report)

(* --- Mailbox answered-cache eviction (resend_request) --- *)

let test_answered_cache_eviction () =
  let mailbox : (int, int) Mailbox.t = Mailbox.create ~depth:4 () in
  (* answered cache holds 4 * depth = 16 ids; push 17 round trips so
     id 1 ages out. *)
  let last = ref 0 in
  for i = 1 to 17 do
    let id = Result.get_ok (Mailbox.send_request mailbox ~sender_enclave:None i) in
    (match Mailbox.recv_request mailbox with
    | Some p -> Result.get_ok (Mailbox.send_response mailbox ~request_id:p.Mailbox.request_id (i * 10))
    | None -> Alcotest.fail "request vanished");
    (match Mailbox.poll_response mailbox ~request_id:id with
    | Some _ -> ()
    | None -> Alcotest.fail "response vanished");
    last := id
  done;
  (match Mailbox.resend_request mailbox ~request_id:1 with
  | `Unknown -> ()
  | `Pending | `Retransmitted -> Alcotest.fail "evicted id should be `Unknown");
  (match Mailbox.resend_request mailbox ~request_id:!last with
  | `Retransmitted -> ()
  | `Pending | `Unknown -> Alcotest.fail "cached id should retransmit");
  (match Mailbox.poll_response mailbox ~request_id:!last with
  | Some v -> Alcotest.(check int) "retransmitted copy is the original" 170 v
  | None -> Alcotest.fail "retransmitted copy not collectable")

(* A gate whose EMS never consumes requests: every resend finds the
   id still pending, the retry budget drains, and the caller gets a
   clean bounded Timeout (never a hang, never a stale response). *)
let test_gate_timeout_on_evicted_path () =
  let mailbox : (Types.request, Types.response) Mailbox.t = Mailbox.create () in
  let emcall =
    Emcall.create ~rng:(Xrng.create 13L) ~transport:Config.default_transport ~mailbox
      ~ems_service:(fun () -> ())
      ~service_ns:(fun _ -> 100.0)
      ()
  in
  (match Emcall.invoke emcall ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 1 }) with
  | Error Emcall.Timeout -> ()
  | _ -> Alcotest.fail "dead EMS must surface as Timeout");
  Alcotest.(check int) "timeout counted" 1 (Emcall.timeouts emcall);
  (* The gate kept re-asking by id while the request stayed pending. *)
  Alcotest.(check int) "retries exhausted" 4 (Emcall.retries emcall)

(* --- Page-fault idempotency (Svc_memory.handle_page_fault) ---

   A spurious re-fault on an already-resident heap page must not
   allocate a second frame and silently remap the leaf (pre-fix this
   orphaned the old frame: owned per the ownership table, unreachable
   from any page table — the checker's "page-table" rule catches it). *)

let test_page_fault_idempotent () =
  let platform = Platform.create ~seed:0xFA17L () in
  let e = Result.get_ok (Sdk.launch platform small_image) in
  let vpn =
    match
      expect_ok "alloc"
        (Platform.invoke platform ~caller:(Emcall.User_enclave e)
           (Types.Alloc { enclave = e; pages = 1 }))
    with
    | Types.Ok_alloc { base_vpn; _ } -> base_vpn
    | r -> Alcotest.failf "alloc: %s" (response_name r)
  in
  let runtime = Platform.Internals.runtime platform in
  let owned () = List.length (Ownership.frames_of (Runtime.ownership runtime) e) in
  let fault () =
    match
      expect_ok "page fault"
        (Platform.invoke platform ~caller:(Emcall.User_enclave e)
           (Types.Page_fault { enclave = e; vpn }))
    with
    | Types.Ok_alloc _ -> ()
    | r -> Alcotest.failf "page fault: %s" (response_name r)
  in
  fault ();
  let frames_after_first = owned () in
  fault ();
  Alcotest.(check int) "re-fault allocates nothing" frames_after_first (owned ());
  let report = Platform.check platform in
  if not (Invariant.ok report) then
    Alcotest.failf "invariants after re-fault: %s" (Invariant.report_to_string report)

(* --- Create teardown conserves pool frames (Svc_lifecycle.handle_create) ---

   A Create that dies mid-mapping — a page-table node [Failure] after
   the static frames were taken from the pool but before they were all
   claimed into the ownership table — used to strand the untaken
   frames: owner still Pool, absent from the parked list,
   [Mem_pool.outstanding] permanently inflated. Sweep the pool budget
   across the whole range so the attempt fails at every stage
   (up-front take, mid-fold node allocation) and succeeds at least
   once; every outcome must conserve the outstanding count. *)

let test_create_teardown_conserves_pool () =
  (* Small machine so the pool + OS drain quickly. *)
  let platform =
    Platform.create
      ~config:{ Config.default with Config.memory_mb = 8; ems_memory_mb = 4 }
      ~seed:0x1EA6L ()
  in
  let pool = Hypertee_ems.Runtime.pool (Platform.Internals.runtime platform) in
  (* Drain the pool AND the OS behind it dry (refills keep succeeding
     until the OS has nothing left). *)
  let rec drain acc n =
    if n = 0 then acc
    else
      match Hypertee_ems.Mem_pool.take pool ~n with
      | Some fs -> drain (List.rev_append fs acc) n
      | None -> drain acc (n / 2)
  in
  let held = ref (drain [] 64) in
  (* No staging pages: those come straight from the (dry) OS, and the
     sweep targets the enclave-memory paths. *)
  let enclave_config = { small_config with Types.shared_pages = 0 } in
  let saw_oom = ref false in
  let saw_ok = ref false in
  for keep = 0 to 24 do
    (* Hand exactly [keep] frames back for this attempt. *)
    let rec give n =
      if n > 0 then
        match !held with
        | f :: rest ->
          held := rest;
          Hypertee_ems.Mem_pool.give_back pool [ f ];
          give (n - 1)
        | [] -> ()
    in
    give keep;
    let base = Hypertee_ems.Mem_pool.outstanding pool in
    (match
       expect_ok "create"
         (Platform.invoke platform ~caller:Emcall.Os_kernel
            (Types.Create { config = enclave_config }))
     with
    | Types.Ok_created { enclave } -> (
      saw_ok := true;
      match
        expect_ok "destroy"
          (Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Destroy { enclave }))
      with
      | Types.Ok_unit -> ()
      | r -> Alcotest.failf "destroy: %s" (response_name r))
    | Types.Err Types.Out_of_memory -> saw_oom := true
    | r -> Alcotest.failf "create at keep=%d: %s" keep (response_name r));
    Alcotest.(check int)
      (Printf.sprintf "pool outstanding conserved at keep=%d" keep)
      base
      (Hypertee_ems.Mem_pool.outstanding pool);
    (* Re-drain whatever the attempt returned, for the next budget. *)
    held := drain !held 64
  done;
  if not !saw_oom then Alcotest.fail "sweep never exhausted the pool";
  if not !saw_ok then Alcotest.fail "sweep never completed a create";
  Hypertee_ems.Mem_pool.give_back pool !held;
  let report = Platform.check platform in
  if not (Invariant.ok report) then
    Alcotest.failf "invariants after sweep: %s" (Invariant.report_to_string report)

(* --- EWARM routing on a sharded platform (Types.warm_home) ---

   The gate used to round-robin EWARM like any enclave-less request.
   Each cold session issues Warm_create then Create, so on two shards
   the EWARM always landed on the opposite parity from where enclaves
   were created and parked: a deterministic 0% hit rate. With
   measurement-hash routing ([warm_home], agreed on by the gate and
   ERETIRE's park condition), the pool converges after at most one
   cold miss and stays warm. *)

let test_warm_routing_two_shards () =
  let platform =
    Platform.create ~config:{ Config.default with Config.ems_shards = 2 } ~seed:0x2AB7L ()
  in
  let hits = ref 0 in
  let last_warm = ref false in
  for _ = 1 to 6 do
    match Sdk.warm_launch platform small_image with
    | Ok (e, kind) ->
      last_warm := kind = `Warm;
      (if kind = `Warm then incr hits);
      (match Sdk.retire platform ~enclave:e with
      | Ok () -> ()
      | Error m -> Alcotest.failf "retire: %s" m)
    | Error m -> Alcotest.failf "warm_launch: %s" m
  done;
  (* At most the first two cycles may miss (cold launches round-robin,
     and retire parks only on the measurement's home shard, so seeding
     the pool can take two launches). Under the old round-robin EWARM
     routing every cycle missed. *)
  Alcotest.(check bool) "EWARM converges on the home shard (>= 4 of 6 hits)" true (!hits >= 4);
  Alcotest.(check bool) "pool stays warm once seeded" true !last_warm;
  let report = Platform.check platform ~deep:true in
  if not (Invariant.ok report) then
    Alcotest.failf "invariants after warm cycling: %s" (Invariant.report_to_string report)

(* --- The checker actually catches seeded corruption --- *)

let has_rule report rule =
  List.exists (fun v -> v.Invariant.rule = rule) report.Invariant.violations

let test_checker_catches_corruption () =
  let platform = Platform.create ~seed:0xBADL () in
  let e = Result.get_ok (Sdk.launch platform small_image) in
  let check () = Platform.check platform in
  let report = check () in
  if not (Invariant.ok report) then
    Alcotest.failf "healthy platform flagged: %s" (Invariant.report_to_string report);
  let runtime = Platform.Internals.runtime platform in
  let frame =
    match Ownership.frames_of (Runtime.ownership runtime) e with
    | f :: _ -> f
    | [] -> Alcotest.fail "launched enclave owns no frames"
  in
  (* (a) Secure bitmap out of sync with frame ownership. *)
  let bitmap = Platform.Internals.bitmap platform in
  Bitmap.clear bitmap ~frame;
  if not (has_rule (check ()) "bitmap") then
    Alcotest.fail "cleared bitmap bit not caught";
  Bitmap.set bitmap ~frame;
  if not (Invariant.ok (check ())) then Alcotest.fail "bitmap restore not clean";
  (* (b) Phys_mem owner contradicting the ownership table. *)
  let mem = Platform.Internals.mem platform in
  let saved = Phys_mem.owner mem frame in
  Phys_mem.set_owner mem frame Phys_mem.Free;
  let report = check () in
  if Invariant.ok report then Alcotest.fail "freed live frame not caught";
  Phys_mem.set_owner mem frame saved;
  if not (Invariant.ok (check ())) then Alcotest.fail "owner restore not clean";
  (* (c) Live enclave key revoked behind the EMS's back. *)
  let key_id =
    match Runtime.find_enclave runtime e with
    | Some enc -> enc.Hypertee_ems.Enclave.key_id
    | None -> Alcotest.fail "launched enclave not found"
  in
  Mem_encryption.revoke (Platform.Internals.mee platform) ~key_id;
  if not (has_rule (check ()) "mee") then Alcotest.fail "revoked live key not caught";
  (* (d) Warm list corrupted with an id that is not resident. *)
  Hypertee_ems.State.warm_push (Runtime.state runtime) 9999;
  if not (has_rule (check ()) "warm-pool") then
    Alcotest.fail "bogus warm-pool entry not caught"

(* --- Differential oracle: clean and fault-injected replays --- *)

let test_oracle_replay_clean () =
  let o = Verify.oracle_replay ~calls:400 ~shards:2 ~seed:0x0AC1EL () in
  Alcotest.(check int) "all calls observed" 400 o.Verify.calls;
  (match o.Verify.divergences with
  | [] -> ()
  | d :: _ ->
    Alcotest.failf "oracle diverged: %s" (Format.asprintf "%a" Hypertee_check.Oracle.pp_divergence d));
  Alcotest.(check int) "no divergences" 0 o.Verify.divergence_count;
  if not (Invariant.ok o.Verify.report) then
    Alcotest.failf "invariants: %s" (Invariant.report_to_string o.Verify.report)

let test_oracle_replay_faulty () =
  let o = Verify.oracle_replay ~calls:400 ~fault_rate:0.08 ~shards:2 ~seed:0xFA47L () in
  Alcotest.(check int) "no divergences under faults" 0 o.Verify.divergence_count;
  if not (Invariant.ok o.Verify.report) then
    Alcotest.failf "invariants under faults: %s" (Invariant.report_to_string o.Verify.report)

(* --- Interleaving explorer --- *)

let test_explorer_deterministic () =
  List.iter
    (fun seed ->
      let a = Explorer.scenario_of_seed seed and b = Explorer.scenario_of_seed seed in
      if a <> b then Alcotest.failf "scenario_of_seed %Ld not deterministic" seed)
    (Explorer.default_seeds ~n:8)

let test_explorer_scenarios_pass () =
  List.iter
    (fun seed ->
      let s = Explorer.scenario_of_seed seed in
      match Verify.scenario_driver s with
      | Explorer.Pass -> ()
      | Explorer.Fail why ->
        Alcotest.failf "scenario %s failed: %s" (Format.asprintf "%a" Explorer.pp_scenario s) why)
    (Explorer.default_seeds ~n:6)

(* --- Scheduler exactly-once under worker strikes ---

   Even when a strike kills the last alive worker mid-batch, every
   submitted job must eventually run exactly once under its original
   id (parked by the crash, revived by the watchdog) — never lost,
   never re-executed. *)

let prop_scheduler_exactly_once =
  QCheck.Test.make ~name:"scheduler runs every job exactly once under crashes" ~count:60
    QCheck.(tup3 (int_range 1 3) (int_range 1 40) small_int)
    (fun (workers, jobs, salt) ->
      let sched = Scheduler.create (Xrng.create (Int64.of_int (salt + 1))) ~workers in
      Scheduler.set_fault_injector sched
        (Fault.create
           (Fault.plan
              ~seed:(Int64.of_int (salt + 7))
              [
                { Fault.site = Fault.Worker_crash; schedule = Fault.Probability 0.4; intensity = 0.0 };
                { Fault.site = Fault.Worker_stall; schedule = Fault.Probability 0.2; intensity = 0.0 };
              ]));
      for id = 1 to jobs do
        Scheduler.submit sched ~id (fun () -> ())
      done;
      let rounds = ref 0 in
      while Scheduler.pending sched > 0 && !rounds < 200 do
        ignore (Scheduler.dispatch sched);
        ignore (Scheduler.watchdog_scan sched);
        incr rounds
      done;
      if Scheduler.pending sched > 0 then
        QCheck.Test.fail_reportf "jobs still pending after %d rounds" !rounds;
      let log_ids = List.map fst (Scheduler.execution_log sched) in
      if Scheduler.executed sched <> jobs then
        QCheck.Test.fail_reportf "executed %d of %d jobs" (Scheduler.executed sched) jobs;
      List.for_all
        (fun id -> List.length (List.filter (( = ) id) log_ids) = 1)
        (List.init jobs (fun i -> i + 1)))

let suite =
  [
    ( "check",
      [
        Alcotest.test_case "poll quantisation: boundary cost pays no extra slot" `Quick
          test_quantisation_boundary;
        Alcotest.test_case "late duplicate responses drained and credited once" `Quick
          test_duplicate_accounting;
        Alcotest.test_case "orphaned shared region reaped on last detach" `Quick
          test_shm_orphan_reap;
        Alcotest.test_case "answered cache evicts old ids; recent ids retransmit" `Quick
          test_answered_cache_eviction;
        Alcotest.test_case "dead EMS surfaces as bounded Timeout" `Quick
          test_gate_timeout_on_evicted_path;
        Alcotest.test_case "spurious page re-fault is idempotent (no frame leak)" `Quick
          test_page_fault_idempotent;
        Alcotest.test_case "failed create tears down without stranding pool frames" `Quick
          test_create_teardown_conserves_pool;
        Alcotest.test_case "EWARM routes to the measurement's home shard" `Quick
          test_warm_routing_two_shards;
        Alcotest.test_case "checker catches bitmap/ownership/key corruption" `Quick
          test_checker_catches_corruption;
        Alcotest.test_case "oracle: clean replay has zero divergences" `Quick
          test_oracle_replay_clean;
        Alcotest.test_case "oracle: fault-injected replay has zero divergences" `Quick
          test_oracle_replay_faulty;
        Alcotest.test_case "explorer scenarios are seed-deterministic" `Quick
          test_explorer_deterministic;
        Alcotest.test_case "explorer scenario sample passes" `Quick test_explorer_scenarios_pass;
        prop prop_scheduler_exactly_once;
      ] );
  ]
