(* Observability layer tests: span nesting well-formedness (qcheck),
   metrics histogram percentiles against the Stats oracle, Chrome
   trace_event export round-tripped through a minimal JSON parser,
   the allocation discipline of the disabled path, and the
   reconciliation the tentpole promises: per-EMCall child spans sum
   to the recorded EMCall latency, both live and in the trace.json a
   quick fig6 run emits. *)

open Hypertee
module Trace = Hypertee_obs.Trace
module Metrics = Hypertee_obs.Metrics
module Stats = Hypertee_util.Stats
module Types = Hypertee_ems.Types
module Emcall = Hypertee_cs.Emcall

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let with_tracer ?ring_capacity f =
  let t = Trace.create ?ring_capacity () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser — just enough for what the exporters emit.
   Living in the test on purpose: the round-trip must not be checked
   with the same code that produced the string. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then text.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\n' | '\t' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () <> c then failwith (Printf.sprintf "expected %c at offset %d" c !pos);
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          let code = int_of_string ("0x" ^ String.sub text !pos 4) in
          pos := !pos + 4;
          Buffer.add_char b (Char.chr (code land 0xff))
        | c -> Buffer.add_char b c; advance ());
        go ()
      | '\000' -> failwith "unterminated string"
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); J_obj [])
      else
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          if peek () = ',' then (advance (); members ((key, v) :: acc))
          else (expect '}'; J_obj (List.rev ((key, v) :: acc)))
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); J_arr [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          if peek () = ',' then (advance (); elements (v :: acc))
          else (expect ']'; J_arr (List.rev (v :: acc)))
        in
        elements []
    | '"' -> J_str (parse_string ())
    | 't' -> pos := !pos + 4; J_bool true
    | 'f' -> pos := !pos + 5; J_bool false
    | 'n' -> pos := !pos + 4; J_null
    | _ ->
      let start = !pos in
      while is_num_char (peek ()) do advance () done;
      if !pos = start then failwith (Printf.sprintf "unexpected character at offset %d" start);
      J_num (float_of_string (String.sub text start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then failwith "trailing garbage after JSON value";
  v

let obj_field key = function
  | J_obj members -> List.assoc key members
  | _ -> failwith ("not an object looking up " ^ key)

let obj_field_opt key = function J_obj members -> List.assoc_opt key members | _ -> None
let as_num = function J_num f -> f | _ -> failwith "not a number"
let as_str = function J_str s -> s | _ -> failwith "not a string"
let as_arr = function J_arr l -> l | _ -> failwith "not an array"

(* ------------------------------------------------------------------ *)
(* Span nesting (qcheck). The script is a list of booleans: true
   pushes a span, false pops the innermost (no-op on an empty stack);
   whatever is left open is closed at the end. *)

let run_nesting_script script =
  with_tracer (fun t ->
      let stack = ref [] in
      List.iter
        (fun push ->
          Trace.advance t 1.0;
          if push then stack := Trace.push ~cat:Trace.Other ~name:"op" () :: !stack
          else
            match !stack with
            | id :: rest ->
              Trace.pop id;
              stack := rest
            | [] -> ())
        script;
      Trace.advance t 1.0;
      List.iter Trace.pop !stack;
      (Trace.open_spans (), List.length (List.filter Fun.id script), Trace.spans t))

let nesting_well_formed script =
  let open_after, pushes, spans = run_nesting_script script in
  let by_id = List.map (fun (s : Trace.span) -> (s.Trace.id, s)) spans in
  open_after = 0
  && List.length spans = pushes
  && List.for_all
       (fun (s : Trace.span) ->
         s.Trace.dur_ns >= 0.0
         &&
         (s.Trace.parent < 0
         ||
         match List.assoc_opt s.Trace.parent by_id with
         | None -> false (* orphan: parent id was never recorded *)
         | Some p ->
           p.Trace.start_ns <= s.Trace.start_ns
           && s.Trace.start_ns +. s.Trace.dur_ns <= p.Trace.start_ns +. p.Trace.dur_ns))
       spans

let nesting_prop =
  prop
    (QCheck.Test.make ~name:"push/pop scripts leave a well-formed span forest" ~count:100
       QCheck.(list_of_size Gen.(int_range 0 60) bool)
       nesting_well_formed)

let test_ill_nested_pop_raises () =
  with_tracer (fun _t ->
      let a = Trace.push ~cat:Trace.Other ~name:"outer" () in
      let b = Trace.push ~cat:Trace.Other ~name:"inner" () in
      check Alcotest.bool "closing the outer span first is refused" true
        (match Trace.pop a with
        | () -> false
        | exception Invalid_argument _ -> true);
      Trace.pop b;
      Trace.pop a;
      check Alcotest.int "all closed" 0 (Trace.open_spans ()))

let test_ring_overwrites_oldest () =
  with_tracer ~ring_capacity:8 (fun t ->
      for i = 1 to 20 do
        ignore
          (Trace.emit ~cat:Trace.Other ~name:(string_of_int i) ~start_ns:(float_of_int i)
             ~dur_ns:1.0 ())
      done;
      check Alcotest.int "ring keeps its capacity" 8 (Trace.span_count t);
      check Alcotest.int "overwrites are counted" 12 (Trace.dropped t);
      let names = List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.spans t) in
      check (Alcotest.list Alcotest.string) "oldest spans were the ones dropped"
        (List.map string_of_int [ 13; 14; 15; 16; 17; 18; 19; 20 ])
        names)

let test_pause_resume () =
  with_tracer (fun t ->
      ignore (Trace.emit ~cat:Trace.Other ~name:"before" ~start_ns:0.0 ~dur_ns:1.0 ());
      Trace.pause ();
      check Alcotest.bool "paused tracer is disabled" false (Trace.enabled ());
      ignore (Trace.emit ~cat:Trace.Other ~name:"while-paused" ~start_ns:1.0 ~dur_ns:1.0 ());
      Trace.resume ();
      ignore (Trace.emit ~cat:Trace.Other ~name:"after" ~start_ns:2.0 ~dur_ns:1.0 ());
      check (Alcotest.list Alcotest.string) "paused emission was dropped" [ "before"; "after" ]
        (List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.spans t)))

(* ------------------------------------------------------------------ *)
(* Metrics. *)

let percentile_oracle_prop =
  prop
    (QCheck.Test.make ~name:"histogram percentiles match the Stats oracle" ~count:60
       QCheck.(list_of_size Gen.(int_range 1 150) (int_bound 1_000_000))
       (fun samples ->
         let registry = Metrics.create () in
         let h = Metrics.histogram registry "lat" in
         let oracle = Stats.create () in
         List.iter
           (fun v ->
             let f = float_of_int v in
             Metrics.observe h f;
             Stats.add oracle f)
           samples;
         List.for_all
           (fun p -> Metrics.percentile h p = Stats.percentile oracle p)
           [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ]))

let test_metrics_registry_basics () =
  let registry = Metrics.create () in
  let c = Metrics.counter registry ~help:"h" "requests" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check Alcotest.int "counter accumulates" 5 (Metrics.counter_value c);
  let c' = Metrics.counter registry "requests" in
  Metrics.set_counter c' 9;
  check Alcotest.int "get-or-create returns the same instrument" 9 (Metrics.counter_value c);
  let g = Metrics.gauge registry "depth" in
  Metrics.set_gauge g 3.5;
  check (Alcotest.float 0.0) "gauge holds the last value" 3.5 (Metrics.gauge_value g);
  check Alcotest.bool "kind collision is a loud error" true
    (match Metrics.gauge registry "requests" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check (Alcotest.list Alcotest.string) "names are sorted" [ "depth"; "requests" ]
    (Metrics.names registry)

let test_metrics_json_roundtrip () =
  let registry = Metrics.create () in
  Metrics.set_counter (Metrics.counter registry "emcall.timeouts") 3;
  let h = Metrics.histogram registry "emcall.latency_ns" in
  List.iter (Metrics.observe h) [ 10.0; 20.0; 30.0; 40.0 ];
  let parsed = parse_json (Metrics.to_json registry) in
  check (Alcotest.float 0.0) "counter value survives" 3.0
    (as_num (obj_field "emcall.timeouts" parsed));
  let hist = obj_field "emcall.latency_ns" parsed in
  check (Alcotest.float 0.0) "histogram count survives" 4.0 (as_num (obj_field "count" hist));
  let oracle = Stats.create () in
  List.iter (Stats.add oracle) [ 10.0; 20.0; 30.0; 40.0 ];
  check (Alcotest.float 1e-9) "histogram p50 survives" (Stats.percentile oracle 50.0)
    (as_num (obj_field "p50" hist))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export. *)

let test_chrome_json_roundtrip () =
  with_tracer (fun t ->
      let parent =
        Trace.emit ~track:(Trace.track_gate 0) ~enclave:7 ~opcode:"EALLOC" ~request_id:42
          ~cat:Trace.Emcall ~name:"EMCALL:EALLOC" ~start_ns:1000.0 ~dur_ns:500.0 ()
      in
      ignore
        (Trace.emit ~track:(Trace.track_gate 0) ~parent ~cat:Trace.Gate ~name:"gate \"q\"\n"
           ~start_ns:1000.0 ~dur_ns:120.0 ());
      Trace.instant ~track:(Trace.track_gate 0) ~ts_ns:1100.0 ~cat:Trace.Fault
        ~name:"fault:mailbox-drop" ();
      let parsed = parse_json (Trace.to_chrome_json t) in
      let events = as_arr (obj_field "traceEvents" parsed) in
      let by_phase ph =
        List.filter (fun e -> as_str (obj_field "ph" e) = ph) events
      in
      check Alcotest.int "one metadata row per track" 1 (List.length (by_phase "M"));
      check Alcotest.string "track label round-trips" "gate/shard0"
        (as_str (obj_field "name" (obj_field "args" (List.hd (by_phase "M")))));
      let complete = by_phase "X" in
      check Alcotest.int "two complete events" 2 (List.length complete);
      let root =
        List.find (fun e -> as_str (obj_field "name" e) = "EMCALL:EALLOC") complete
      in
      check (Alcotest.float 1e-9) "ts is microseconds" 1.0 (as_num (obj_field "ts" root));
      check (Alcotest.float 1e-9) "dur is microseconds" 0.5 (as_num (obj_field "dur" root));
      check (Alcotest.float 1e-9) "enclave id in args" 7.0
        (as_num (obj_field "enclave" (obj_field "args" root)));
      check Alcotest.string "opcode in args" "EALLOC"
        (as_str (obj_field "opcode" (obj_field "args" root)));
      let child =
        List.find (fun e -> as_str (obj_field "name" e) = "gate \"q\"\n") complete
      in
      check (Alcotest.float 1e-9) "parent id links the child" (float_of_int parent)
        (as_num (obj_field "parent" (obj_field "args" child)));
      check Alcotest.int "instants export as ph:i" 1 (List.length (by_phase "i")))

(* ------------------------------------------------------------------ *)
(* Reconciliation: child spans sum to the recorded EMCall latency. *)

let workload platform =
  match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Create { config = Types.default_config }) with
  | Ok (Types.Ok_created { enclave }) ->
    [
      (Emcall.Os_kernel, Types.Add { enclave; vpn = 0x100; data = Bytes.make 64 'a'; executable = true });
      (Emcall.Os_kernel, Types.Measure { enclave });
      (Emcall.User_host, Types.Alloc { enclave; pages = 2 });
      (Emcall.User_host, Types.Alloc { enclave; pages = 8 });
      (Emcall.User_enclave enclave, Types.Attest { enclave; user_data = Bytes.empty });
      (Emcall.Os_kernel, Types.Writeback { pages_hint = 4 });
      (Emcall.Os_kernel, Types.Destroy { enclave });
    ]
  | _ -> Alcotest.fail "workload enclave creation failed"

let test_children_sum_to_latency () =
  let latencies, spans =
    with_tracer (fun t ->
        let platform = Platform.create ~seed:0xAB5L () in
        let latencies =
          List.filter_map
            (fun (caller, request) ->
              match Platform.invoke_timed platform ~caller request with
              | Ok (_, latency) -> Some latency
              | Error _ -> None)
            (workload platform)
        in
        (latencies, Trace.spans t))
  in
  let roots =
    List.sort
      (fun (a : Trace.span) b -> compare a.Trace.start_ns b.Trace.start_ns)
      (List.filter (fun (s : Trace.span) -> s.Trace.cat = Trace.Emcall) spans)
  in
  (* The create that built the workload is also traced: skip it and
     compare the rest one-to-one against the timed invocations. *)
  let roots = List.tl roots in
  check Alcotest.int "one EMCALL root span per timed invocation" (List.length latencies)
    (List.length roots);
  List.iter2
    (fun latency (root : Trace.span) ->
      check (Alcotest.float 1e-9) "root span duration is the recorded latency" latency
        root.Trace.dur_ns;
      let children = List.filter (fun (s : Trace.span) -> s.Trace.parent = root.Trace.id) spans in
      check Alcotest.int "gate + transport + service + wait" 4 (List.length children);
      let sum = List.fold_left (fun acc (s : Trace.span) -> acc +. s.Trace.dur_ns) 0.0 children in
      check (Alcotest.float 1e-6) "child spans sum to the EMCall latency" latency sum;
      List.iter
        (fun (c : Trace.span) ->
          check Alcotest.bool "child lies inside its parent" true
            (c.Trace.start_ns >= root.Trace.start_ns -. 1e-9
            && c.Trace.start_ns +. c.Trace.dur_ns
               <= root.Trace.start_ns +. root.Trace.dur_ns +. 1e-6))
        children)
    latencies roots

let test_traced_fig6_emits_reconciled_json () =
  let path = Filename.temp_file "hypertee_fig6" ".json" in
  let devnull = open_out Filename.null in
  Fun.protect
    ~finally:(fun () ->
      close_out devnull;
      Sys.remove path)
    (fun () ->
      ignore
        (Hypertee_experiments.Tracing.run ~out:devnull ~quick:true ~seed:0x516L ~path
           Hypertee_experiments.Tracing.Fig6);
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      let events = as_arr (obj_field "traceEvents" (parse_json text)) in
      let complete = List.filter (fun e -> as_str (obj_field "ph" e) = "X") events in
      let roots =
        List.filter
          (fun e ->
            as_str (obj_field "cat" e) = "emcall" && obj_field_opt "parent" (obj_field "args" e) = None)
          complete
      in
      check Alcotest.bool "the traced fig6 run recorded EMCall roots" true (roots <> []);
      List.iter
        (fun root ->
          let id = as_num (obj_field "span_id" (obj_field "args" root)) in
          let children =
            List.filter
              (fun e ->
                match obj_field_opt "parent" (obj_field "args" e) with
                | Some (J_num p) -> p = id
                | _ -> false)
              complete
          in
          check Alcotest.bool "roots decompose into stages" true (children <> []);
          let sum = List.fold_left (fun acc e -> acc +. as_num (obj_field "dur" e)) 0.0 children in
          (* Exported timestamps are rounded to 1e-4 us per event. *)
          check (Alcotest.float 0.01) "child spans sum to the EMCall duration (us)"
            (as_num (obj_field "dur" root))
            sum)
        roots)

(* ------------------------------------------------------------------ *)
(* Disabled-path cost: with no tracer installed, the instrumented
   EMCall loop allocates exactly what it allocates on a second
   identical run (the guard adds no per-call garbage), and guarded
   direct emission allocates nothing at all. *)

let invoke_loop_words () =
  let platform = Platform.create ~seed:0x90L () in
  match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Create { config = Types.default_config }) with
  | Ok (Types.Ok_created { enclave }) ->
    let before = Gc.minor_words () in
    for _ = 1 to 64 do
      ignore (Platform.invoke platform ~caller:Emcall.User_host (Types.Alloc { enclave; pages = 1 }))
    done;
    Gc.minor_words () -. before
  | _ -> Alcotest.fail "enclave creation failed"

let test_disabled_path_allocates_nothing () =
  Trace.uninstall ();
  check Alcotest.bool "no tracer installed" false (Trace.enabled ());
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    if Trace.enabled () then Trace.instant ~cat:Trace.Fault ~name:"never" ()
  done;
  let delta = Gc.minor_words () -. before in
  check Alcotest.bool "guarded emission is allocation-free when disabled" true (delta < 256.0);
  let disabled_a = invoke_loop_words () in
  let disabled_b = invoke_loop_words () in
  check (Alcotest.float 0.0) "disabled EMCall loop allocation is reproducible" disabled_a
    disabled_b;
  let enabled = with_tracer (fun _t -> invoke_loop_words ()) in
  check Alcotest.bool "tracing pays only when enabled" true (enabled > disabled_a)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "obs",
      [
        nesting_prop;
        Alcotest.test_case "ill-nested pop raises" `Quick test_ill_nested_pop_raises;
        Alcotest.test_case "ring overwrites oldest" `Quick test_ring_overwrites_oldest;
        Alcotest.test_case "pause/resume" `Quick test_pause_resume;
        percentile_oracle_prop;
        Alcotest.test_case "metrics registry basics" `Quick test_metrics_registry_basics;
        Alcotest.test_case "metrics JSON round-trip" `Quick test_metrics_json_roundtrip;
        Alcotest.test_case "chrome JSON round-trip" `Quick test_chrome_json_roundtrip;
        Alcotest.test_case "child spans sum to EMCall latency" `Quick
          test_children_sum_to_latency;
        Alcotest.test_case "traced fig6 emits reconciled trace.json" `Quick
          test_traced_fig6_emits_reconciled_json;
        Alcotest.test_case "disabled path allocates nothing" `Quick
          test_disabled_path_allocates_nothing;
      ] );
  ]
