(* Tests for hypertee_crypto: standard test vectors for the
   primitives, property tests for the algebra, protocol round trips. *)

open Hypertee_crypto
module Bx = Hypertee_util.Bytes_ext

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick
let hex = Bx.to_hex
let rng () = Hypertee_util.Xrng.create 0xC0FFEEL

(* --- SHA-256 (FIPS 180-4 / NIST CAVS vectors) --- *)

let sha256_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, expected) -> check Alcotest.string msg expected (hex (Sha256.digest_string msg)))
    sha256_vectors

let test_sha256_million_a () =
  (* The classic "one million a's" vector exercises many blocks. *)
  let ctx = Sha256.init () in
  let chunk = Bytes.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.update ctx chunk
  done;
  check Alcotest.string "1M x a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Sha256.finalize ctx))

let prop_sha256_incremental =
  prop
    (QCheck.Test.make ~name:"incremental = one-shot" ~count:100
       QCheck.(pair (string_of_size Gen.(int_range 0 300)) (int_range 0 300))
       (fun (s, split) ->
         let b = Bytes.of_string s in
         let split = Stdlib.min split (Bytes.length b) in
         let ctx = Sha256.init () in
         Sha256.update_sub ctx b ~off:0 ~len:split;
         Sha256.update_sub ctx b ~off:split ~len:(Bytes.length b - split);
         Bytes.equal (Sha256.finalize ctx) (Sha256.digest b)))

let test_sha256_bad_slice () =
  Alcotest.check_raises "slice out of bounds"
    (Invalid_argument "Sha256.update_sub: slice out of bounds") (fun () ->
      let ctx = Sha256.init () in
      Sha256.update_sub ctx (Bytes.create 4) ~off:2 ~len:4)

(* --- SHA3-256 (FIPS 202 vectors) --- *)

let test_sha3_vectors () =
  check Alcotest.string "empty"
    "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    (hex (Keccak.sha3_256_string ""));
  check Alcotest.string "abc"
    "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
    (hex (Keccak.sha3_256_string "abc"));
  check Alcotest.string "448-bit"
    "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376"
    (hex (Keccak.sha3_256_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_sha3_multiblock () =
  (* A message spanning several 136-byte rate blocks must differ from
     its prefix digests (regression for absorb indexing). *)
  let long = Bytes.init 500 (fun i -> Char.chr (i land 0xff)) in
  let d1 = Keccak.sha3_256 long in
  let d2 = Keccak.sha3_256 (Bytes.sub long 0 499) in
  check Alcotest.bool "prefix differs" false (Bytes.equal d1 d2)

let test_mac_28bit () =
  let key = Bytes.of_string "k" in
  let m1 = Keccak.mac_28bit ~key (Bytes.of_string "hello") in
  let m2 = Keccak.mac_28bit ~key (Bytes.of_string "hellp") in
  check Alcotest.bool "28-bit range" true (m1 >= 0 && m1 < 1 lsl 28);
  check Alcotest.bool "sensitive to data" true (m1 <> m2);
  let m3 = Keccak.mac_28bit ~key:(Bytes.of_string "K") (Bytes.of_string "hello") in
  check Alcotest.bool "sensitive to key" true (m1 <> m3)

(* --- AES-128 (FIPS 197) --- *)

let test_aes_fips_vector () =
  let key = Bx.of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = Bx.of_hex "00112233445566778899aabbccddeeff" in
  let k = Aes.expand key in
  check Alcotest.string "FIPS-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a"
    (hex (Aes.encrypt_block k pt));
  check Alcotest.bytes "decrypt inverts" pt (Aes.decrypt_block k (Aes.encrypt_block k pt))

let sp800_38a_key = "2b7e151628aed2a6abf7158809cf4f3c"

let sp800_38a_plaintext =
  [
    "6bc1bee22e409f96e93d7e117393172a";
    "ae2d8a571e03ac9c9eb76fac45af8e51";
    "30c81c46a35ce411e5fbc1191a0a52ef";
    "f69f2445df4f9b17ad2b417be66c3710";
  ]

let test_aes_sp800_38a_ecb () =
  (* NIST SP 800-38A F.1.1 ECB-AES128, all four blocks. *)
  let k = Aes.expand (Bx.of_hex sp800_38a_key) in
  List.iter2
    (fun pt expected ->
      check Alcotest.string ("ECB " ^ pt) expected (hex (Aes.encrypt_block k (Bx.of_hex pt))))
    sp800_38a_plaintext
    [
      "3ad77bb40d7a3660a89ecaf32466ef97";
      "f5d3d58503b9699de785895a96fdbaaf";
      "43b1cd7f598ece23881b00e3ed030688";
      "7b0c785e27e8ad3f8223207104725dd4";
    ]

let test_aes_sp800_38a_ctr () =
  (* NIST SP 800-38A F.5.1 CTR-AES128: the four blocks as one stream. *)
  let k = Aes.expand (Bx.of_hex sp800_38a_key) in
  let nonce = Bx.of_hex "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  let pt = Bx.of_hex (String.concat "" sp800_38a_plaintext) in
  check Alcotest.string "CTR F.5.1"
    ("874d6191b620e3261bef6864990db6ce" ^ "9806f66b7970fdff8617187bb9fffdff"
   ^ "5ae4df3edbd5d35e5b4f09020db03eab" ^ "1e031dda2fbe03d1792170a0f3009cee")
    (hex (Aes.ctr k ~nonce pt));
  (* The retained reference implementation produces the same bytes. *)
  check Alcotest.bytes "reference matches" (Aes.ctr k ~nonce pt) (Aes.ctr_reference k ~nonce pt)

let key_gen = QCheck.(string_of_size (Gen.return 16))

let prop_ctr_matches_reference =
  prop
    (QCheck.Test.make ~name:"ctr = ctr_reference" ~count:100
       QCheck.(triple key_gen key_gen (string_of_size Gen.(int_range 0 200)))
       (fun (key, nonce, s) ->
         let k = Aes.expand (Bytes.of_string key) in
         let nonce = Bytes.of_string nonce in
         let data = Bytes.of_string s in
         Bytes.equal (Aes.ctr k ~nonce data) (Aes.ctr_reference k ~nonce data)))

let prop_ctr_into_inplace =
  prop
    (QCheck.Test.make ~name:"in-place ctr_into twice = id" ~count:100
       QCheck.(pair key_gen (string_of_size Gen.(int_range 0 200)))
       (fun (nonce, s) ->
         let k = Aes.expand (Bytes.make 16 'k') in
         let nonce = Bytes.of_string nonce in
         let buf = Bytes.of_string s in
         let len = Bytes.length buf in
         Aes.ctr_into k ~nonce ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 len;
         Aes.ctr_into k ~nonce ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 len;
         Bytes.equal buf (Bytes.of_string s)))

let prop_ctr_stream_off =
  prop
    (QCheck.Test.make ~name:"ctr_into stream_off = slice of full stream" ~count:100
       QCheck.(pair (int_range 0 200) (int_range 0 200))
       (fun (off, len) ->
         let k = Aes.expand (Bytes.make 16 'k') in
         let nonce = Bytes.init 16 (fun i -> Char.chr (0xA0 + i)) in
         let data = Bytes.init (off + len) (fun i -> Char.chr (i land 0xFF)) in
         let full = Aes.ctr k ~nonce data in
         let out = Bytes.create len in
         Aes.ctr_into k ~nonce ~stream_off:off ~src:data ~src_off:off ~dst:out ~dst_off:0 len;
         Bytes.equal out (Bytes.sub full off len)))

let prop_encrypt_page_into =
  (* encrypt_page_into is exactly CTR under the page tweak, to any
     offset, and byte-identical to what the old allocating API did. *)
  prop
    (QCheck.Test.make ~name:"encrypt_page_into = reference ctr with tweak" ~count:50
       QCheck.(triple (int_range 0 4095) (int_range 0 1000) small_nat)
       (fun (page_off, len, page_number) ->
         let len = Stdlib.min len (4096 - page_off) in
         let k = Aes.expand (Bytes.make 16 'q') in
         let page = Bytes.init 4096 (fun i -> Char.chr ((i * 7) land 0xFF)) in
         let tweak = Bytes.make 16 '\000' in
         Bx.set_u64_be tweak 8 (Int64.of_int page_number);
         let full = Aes.ctr_reference k ~nonce:tweak page in
         let out = Bytes.create len in
         Aes.encrypt_page_into k ~page_number ~page_off ~src:page ~src_off:page_off ~dst:out
           ~dst_off:0 len;
         Bytes.equal out (Bytes.sub full page_off len)))

let prop_aes_roundtrip =
  prop
    (QCheck.Test.make ~name:"aes block roundtrip" ~count:200
       QCheck.(pair (string_of_size (QCheck.Gen.return 16)) (string_of_size (QCheck.Gen.return 16)))
       (fun (key, block) ->
         let k = Aes.expand (Bytes.of_string key) in
         let b = Bytes.of_string block in
         Bytes.equal (Aes.decrypt_block k (Aes.encrypt_block k b)) b))

let prop_ctr_roundtrip =
  prop
    (QCheck.Test.make ~name:"ctr roundtrip any length" ~count:100
       QCheck.(string_of_size Gen.(int_range 0 200))
       (fun s ->
         let k = Aes.expand (Bytes.make 16 'k') in
         let nonce = Bytes.make 16 'n' in
         let data = Bytes.of_string s in
         Bytes.equal (Aes.ctr k ~nonce (Aes.ctr k ~nonce data)) data))

let test_ctr_nonce_matters () =
  let k = Aes.expand (Bytes.make 16 'k') in
  let data = Bytes.make 32 'd' in
  let c1 = Aes.ctr k ~nonce:(Bytes.make 16 '\000') data in
  let c2 = Aes.ctr k ~nonce:(Bytes.make 16 '\001') data in
  check Alcotest.bool "different nonce, different ct" false (Bytes.equal c1 c2)

let test_ctr_counter_carry () =
  (* Encrypt enough blocks to force a counter byte carry. *)
  let k = Aes.expand (Bytes.make 16 'k') in
  let nonce = Bytes.cat (Bytes.make 15 '\000') (Bytes.make 1 '\254') in
  let data = Bytes.make 64 'x' in
  let ct = Aes.ctr k ~nonce data in
  check Alcotest.bytes "carry roundtrip" data (Aes.ctr k ~nonce ct)

let test_page_tweak () =
  let k = Aes.expand (Bytes.make 16 'k') in
  let page = Bytes.make 4096 'p' in
  let c1 = Aes.encrypt_page k ~page_number:1 page in
  let c2 = Aes.encrypt_page k ~page_number:2 page in
  check Alcotest.bool "same plaintext, different frames differ" false (Bytes.equal c1 c2);
  check Alcotest.bytes "tweak roundtrip" page (Aes.decrypt_page k ~page_number:1 c1)

let test_cbc_mac () =
  let k = Aes.expand (Bytes.make 16 'k') in
  let m1 = Aes.cbc_mac k (Bytes.of_string "message one") in
  let m2 = Aes.cbc_mac k (Bytes.of_string "message two") in
  check Alcotest.int "tag length" 16 (Bytes.length m1);
  check Alcotest.bool "distinct" false (Bytes.equal m1 m2)

(* --- HMAC (RFC 4231) and HKDF (RFC 5869) --- *)

let test_hmac_rfc4231 () =
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Hmac.hmac ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There")));
  check Alcotest.string "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Hmac.hmac ~key:(Bytes.of_string "Jefe") (Bytes.of_string "what do ya want for nothing?")));
  (* case 3: 20x 0xaa key, 50x 0xdd data *)
  check Alcotest.string "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex (Hmac.hmac ~key:(Bytes.make 20 '\xaa') (Bytes.make 50 '\xdd')))

let test_hmac_long_key () =
  (* Keys longer than the block size are hashed first (RFC 4231 case 6). *)
  check Alcotest.string "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (Hmac.hmac ~key:(Bytes.make 131 '\xaa')
          (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First")))

let test_hkdf_rfc5869 () =
  (* RFC 5869 test case 1. *)
  let ikm = Bytes.make 22 '\x0b' in
  let salt = Bx.of_hex "000102030405060708090a0b0c" in
  let info = Bx.of_hex "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Hmac.extract ~salt ikm in
  check Alcotest.string "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    (hex prk);
  check Alcotest.string "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (hex (Hmac.expand ~prk ~info 42))

let test_hkdf_info_separation () =
  let ikm = Bytes.of_string "root" in
  let a = Hmac.derive ~ikm ~salt:Bytes.empty ~info:"purpose-a" 16 in
  let b = Hmac.derive ~ikm ~salt:Bytes.empty ~info:"purpose-b" 16 in
  check Alcotest.bool "domain separation" false (Bytes.equal a b)

(* --- Bignum --- *)

let bn = Bignum.of_int

let test_bignum_basics () =
  check Alcotest.bool "zero" true (Bignum.is_zero Bignum.zero);
  check Alcotest.int "to_int . of_int" 123456789 (Bignum.to_int (bn 123456789));
  check Alcotest.int "bit_length 0" 0 (Bignum.bit_length Bignum.zero);
  check Alcotest.int "bit_length 1" 1 (Bignum.bit_length Bignum.one);
  check Alcotest.int "bit_length 255" 8 (Bignum.bit_length (bn 255));
  check Alcotest.int "bit_length 256" 9 (Bignum.bit_length (bn 256))

let test_bignum_bytes_roundtrip () =
  let v = Bignum.of_hex "deadbeefcafebabe0123456789" in
  check Alcotest.string "hex roundtrip" "deadbeefcafebabe0123456789" (Bignum.to_hex v);
  let b = Bignum.to_bytes_be ~len:20 v in
  check Alcotest.int "padded length" 20 (Bytes.length b);
  check Alcotest.bool "bytes roundtrip" true (Bignum.equal v (Bignum.of_bytes_be b))

let prop_ring_laws =
  prop
    (QCheck.Test.make ~name:"add/mul agree with int" ~count:300
       QCheck.(pair (int_bound 100000000) (int_bound 100000000))
       (fun (a, b) ->
         Bignum.to_int (Bignum.add (bn a) (bn b)) = a + b
         && Bignum.to_int (Bignum.mul (bn a) (bn b)) = a * b
         && (a < b || Bignum.to_int (Bignum.sub (bn a) (bn b)) = a - b)))

let prop_divmod =
  prop
    (QCheck.Test.make ~name:"divmod invariant (large operands)" ~count:200
       QCheck.(pair (int_bound 1000) (int_bound 1000))
       (fun (s1, s2) ->
         let r = Hypertee_util.Xrng.create (Int64.of_int ((s1 * 1009) + s2)) in
         let a = Bignum.random r ~bits:(64 + (s1 mod 200)) in
         let b = Bignum.random r ~bits:(8 + (s2 mod 150)) in
         Bignum.is_zero b
         ||
         let q, m = Bignum.divmod a b in
         Bignum.equal a (Bignum.add (Bignum.mul q b) m) && Bignum.compare m b < 0))

let prop_shift =
  prop
    (QCheck.Test.make ~name:"shift left then right" ~count:200
       QCheck.(pair (int_bound 1000000) (int_bound 100))
       (fun (a, n) ->
         Bignum.equal (bn a) (Bignum.shift_right (Bignum.shift_left (bn a) n) n)))

let test_divmod_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod Bignum.one Bignum.zero))

let test_mod_pow () =
  (* 3^200 mod 1000003 cross-checked with a simple int loop. *)
  let m = 1000003 in
  let expected = ref 1 in
  for _ = 1 to 200 do
    expected := !expected * 3 mod m
  done;
  check Alcotest.int "modpow" !expected
    (Bignum.to_int (Bignum.mod_pow ~base:(bn 3) ~exp:(bn 200) ~modulus:(bn m)))

let test_mod_inv () =
  let r = rng () in
  let p = Bignum.generate_prime r ~bits:48 in
  for a = 2 to 20 do
    match Bignum.mod_inv (bn a) p with
    | Some inv ->
      check Alcotest.bool "a * inv = 1 (mod p)" true
        (Bignum.equal Bignum.one (Bignum.rem (Bignum.mul inv (bn a)) p))
    | None -> Alcotest.fail "inverse must exist modulo a prime"
  done;
  check Alcotest.bool "non-invertible" true (Bignum.mod_inv (bn 6) (bn 9) = None)

let test_primality_known () =
  let r = rng () in
  List.iter
    (fun (n, expected) ->
      check Alcotest.bool (string_of_int n) expected (Bignum.is_probably_prime r (bn n)))
    [
      (2, true); (3, true); (4, false); (3, true); (17, true); (561, false) (* Carmichael *);
      (7919, true); (7917, false); (104729, true); (1000003, true); (1000001, false);
    ]

let test_generate_prime () =
  let r = rng () in
  let p = Bignum.generate_prime r ~bits:96 in
  check Alcotest.int "bit width" 96 (Bignum.bit_length p);
  check Alcotest.bool "prime" true (Bignum.is_probably_prime r p);
  check Alcotest.bool "odd" false (Bignum.is_even p)

let test_gcd () =
  check Alcotest.int "gcd" 6 (Bignum.to_int (Bignum.gcd (bn 48) (bn 18)));
  check Alcotest.int "gcd with zero" 5 (Bignum.to_int (Bignum.gcd (bn 5) Bignum.zero))

(* --- DH --- *)

let test_dh_agreement () =
  let r = rng () in
  let a = Dh.generate r and b = Dh.generate r in
  let s1 = Dh.shared_secret ~secret:a.Dh.secret ~peer_public:b.Dh.public in
  let s2 = Dh.shared_secret ~secret:b.Dh.secret ~peer_public:a.Dh.public in
  check Alcotest.bool "shared secrets agree" true (Bignum.equal s1 s2)

let test_dh_session_key () =
  let r = rng () in
  let a = Dh.generate r and b = Dh.generate r in
  let k1 = Dh.session_key ~secret:a.Dh.secret ~peer_public:b.Dh.public ~context:"test" in
  let k2 = Dh.session_key ~secret:b.Dh.secret ~peer_public:a.Dh.public ~context:"test" in
  let k3 = Dh.session_key ~secret:b.Dh.secret ~peer_public:a.Dh.public ~context:"other" in
  check Alcotest.bytes "keys agree" k1 k2;
  check Alcotest.bool "context separates" false (Bytes.equal k1 k3)

let test_dh_rejects_degenerate () =
  let r = rng () in
  let a = Dh.generate r in
  check Alcotest.bool "0 invalid" false (Dh.valid_public Bignum.zero);
  check Alcotest.bool "1 invalid" false (Dh.valid_public Bignum.one);
  check Alcotest.bool "p-1 invalid" false (Dh.valid_public (Bignum.sub Dh.p Bignum.one));
  Alcotest.check_raises "shared_secret rejects"
    (Invalid_argument "Dh.shared_secret: degenerate public element") (fun () ->
      ignore (Dh.shared_secret ~secret:a.Dh.secret ~peer_public:Bignum.one))

let test_dh_p_is_prime () =
  check Alcotest.bool "2^255-19 passes Miller-Rabin" true
    (Bignum.is_probably_prime ~rounds:8 (rng ()) Dh.p)

(* --- RSA --- *)

let test_rsa_sign_verify () =
  let kp = Rsa.generate (rng ()) in
  let msg = Bytes.of_string "attest this enclave" in
  let s = Rsa.sign kp msg in
  check Alcotest.int "signature width" (Rsa.modulus_bits / 8) (Bytes.length s);
  check Alcotest.bool "verifies" true (Rsa.verify kp.Rsa.public ~msg ~signature:s);
  check Alcotest.bool "wrong message" false
    (Rsa.verify kp.Rsa.public ~msg:(Bytes.of_string "other") ~signature:s);
  let tampered = Bytes.copy s in
  Bytes.set tampered 10 (Char.chr (Char.code (Bytes.get tampered 10) lxor 1));
  check Alcotest.bool "tampered signature" false (Rsa.verify kp.Rsa.public ~msg ~signature:tampered)

let test_rsa_wrong_key () =
  let r = rng () in
  let kp1 = Rsa.generate r and kp2 = Rsa.generate r in
  let msg = Bytes.of_string "m" in
  check Alcotest.bool "cross-key verify fails" false
    (Rsa.verify kp2.Rsa.public ~msg ~signature:(Rsa.sign kp1 msg))

let test_rsa_public_serialization () =
  let kp = Rsa.generate (rng ()) in
  let b = Rsa.public_to_bytes kp.Rsa.public in
  let p = Rsa.public_of_bytes b in
  check Alcotest.bool "n roundtrip" true (Bignum.equal p.Rsa.n kp.Rsa.public.Rsa.n);
  check Alcotest.bool "e roundtrip" true (Bignum.equal p.Rsa.e kp.Rsa.public.Rsa.e)

(* --- SIGMA --- *)

let test_sigma_flow () =
  let r = rng () in
  let init = Sigma.start r Sigma.Initiator in
  let resp = Sigma.start r Sigma.Responder in
  let k1, m1 = Sigma.derive_keys init ~peer_public:(Sigma.public_of resp) in
  let k2, m2 = Sigma.derive_keys resp ~peer_public:(Sigma.public_of init) in
  check Alcotest.bytes "session keys agree" k1 k2;
  check Alcotest.bytes "mac keys agree" m1 m2;
  let t =
    Sigma.transcript ~initiator_pub:(Sigma.public_of init) ~responder_pub:(Sigma.public_of resp)
      ~payload:(Bytes.of_string "quote")
  in
  let tag = Sigma.authenticate ~mac_key:m1 t in
  check Alcotest.bool "transcript authenticates" true (Sigma.check ~mac_key:m2 ~transcript:t ~tag);
  let t' =
    Sigma.transcript ~initiator_pub:(Sigma.public_of init) ~responder_pub:(Sigma.public_of resp)
      ~payload:(Bytes.of_string "forged")
  in
  check Alcotest.bool "forged transcript rejected" false (Sigma.check ~mac_key:m2 ~transcript:t' ~tag)

(* --- Engine timing model --- *)

let test_engine_rates () =
  let hw = Engine.default_hardware and sw = Engine.default_software in
  check Alcotest.bool "hw aes faster than sw" true
    (Engine.aes_ns hw ~bytes:65536 < Engine.aes_ns sw ~bytes:65536);
  check Alcotest.bool "hw sha faster than sw" true
    (Engine.sha256_ns hw ~bytes:65536 < Engine.sha256_ns sw ~bytes:65536);
  check Alcotest.bool "rsa sign slower than verify" true
    (Engine.rsa_sign_ns hw > Engine.rsa_verify_ns hw);
  (* Table III anchor: 16.1 Gbps SHA-256 over a large buffer. *)
  let ns = Engine.sha256_ns hw ~bytes:1_000_000 in
  let gbps = 1_000_000.0 *. 8.0 /. ns in
  check Alcotest.bool "sha within 5% of 16.1 Gbps" true (Float.abs (gbps -. 16.1) < 0.8)

let test_engine_monotone () =
  let hw = Engine.default_hardware in
  check Alcotest.bool "more bytes, more time" true
    (Engine.aes_ns hw ~bytes:8192 > Engine.aes_ns hw ~bytes:4096)

let suite =
  [
    ( "crypto.sha256",
      [
        Alcotest.test_case "NIST vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "one million a" `Quick test_sha256_million_a;
        Alcotest.test_case "bad slice" `Quick test_sha256_bad_slice;
        prop_sha256_incremental;
      ] );
    ( "crypto.sha3",
      [
        Alcotest.test_case "FIPS 202 vectors" `Quick test_sha3_vectors;
        Alcotest.test_case "multi-block" `Quick test_sha3_multiblock;
        Alcotest.test_case "28-bit MAC" `Quick test_mac_28bit;
      ] );
    ( "crypto.aes",
      [
        Alcotest.test_case "FIPS-197 vector" `Quick test_aes_fips_vector;
        Alcotest.test_case "SP800-38A ECB vectors" `Quick test_aes_sp800_38a_ecb;
        Alcotest.test_case "SP800-38A CTR vectors" `Quick test_aes_sp800_38a_ctr;
        Alcotest.test_case "ctr nonce matters" `Quick test_ctr_nonce_matters;
        Alcotest.test_case "ctr counter carry" `Quick test_ctr_counter_carry;
        Alcotest.test_case "page tweak" `Quick test_page_tweak;
        Alcotest.test_case "cbc-mac" `Quick test_cbc_mac;
        prop_aes_roundtrip;
        prop_ctr_roundtrip;
        prop_ctr_matches_reference;
        prop_ctr_into_inplace;
        prop_ctr_stream_off;
        prop_encrypt_page_into;
      ] );
    ( "crypto.hmac",
      [
        Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
        Alcotest.test_case "long key" `Quick test_hmac_long_key;
        Alcotest.test_case "HKDF RFC 5869" `Quick test_hkdf_rfc5869;
        Alcotest.test_case "info separation" `Quick test_hkdf_info_separation;
      ] );
    ( "crypto.bignum",
      [
        Alcotest.test_case "basics" `Quick test_bignum_basics;
        Alcotest.test_case "byte/hex roundtrips" `Quick test_bignum_bytes_roundtrip;
        Alcotest.test_case "divmod by zero" `Quick test_divmod_by_zero;
        Alcotest.test_case "mod_pow" `Quick test_mod_pow;
        Alcotest.test_case "mod_inv" `Quick test_mod_inv;
        Alcotest.test_case "primality on known values" `Quick test_primality_known;
        Alcotest.test_case "generate_prime" `Quick test_generate_prime;
        Alcotest.test_case "gcd" `Quick test_gcd;
        prop_ring_laws;
        prop_divmod;
        prop_shift;
      ] );
    ( "crypto.dh",
      [
        Alcotest.test_case "key agreement" `Quick test_dh_agreement;
        Alcotest.test_case "session keys" `Quick test_dh_session_key;
        Alcotest.test_case "degenerate elements rejected" `Quick test_dh_rejects_degenerate;
        Alcotest.test_case "p is prime" `Slow test_dh_p_is_prime;
      ] );
    ( "crypto.rsa",
      [
        Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
        Alcotest.test_case "wrong key" `Quick test_rsa_wrong_key;
        Alcotest.test_case "public serialization" `Quick test_rsa_public_serialization;
      ] );
    ("crypto.sigma", [ Alcotest.test_case "full flow" `Quick test_sigma_flow ]);
    ( "crypto.engine",
      [
        Alcotest.test_case "hardware vs software rates" `Quick test_engine_rates;
        Alcotest.test_case "monotone in bytes" `Quick test_engine_monotone;
      ] );
  ]
