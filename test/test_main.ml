(* Test entry point: aggregates every suite. *)

let () =
  Alcotest.run "hypertee"
    (Test_util.suite @ Test_crypto.suite @ Test_sim.suite @ Test_arch.suite @ Test_ems.suite
   @ Test_cs.suite @ Test_platform.suite @ Test_attacks.suite @ Test_workloads.suite
   @ Test_extensions.suite @ Test_traps.suite @ Test_failures.suite @ Test_properties.suite @ Test_devices.suite
   @ Test_scale.suite @ Test_dataplane.suite @ Test_obs.suite @ Test_check.suite
   @ Test_elastic.suite @ Test_channel.suite @ Test_parallel.suite @ Test_cloud.suite)
