(* Tests for the Sec. IX extension features: Merkle trees, the IOMMU,
   CFI monitoring, CVM lifecycle / snapshots / migration, and the
   ablation experiments. *)

module Merkle = Hypertee_crypto.Merkle
module Iommu = Hypertee_arch.Iommu
module Cfi = Hypertee_ems.Cfi
module Manager = Hypertee_cvm.Manager
module A = Hypertee_experiments.Ablations

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

(* --- Merkle --- *)

let blocks n = List.init n (fun i -> Bytes.make 64 (Char.chr (65 + (i mod 26))))

let test_merkle_root_deterministic () =
  let t1 = Merkle.build (blocks 7) and t2 = Merkle.build (blocks 7) in
  check Alcotest.bytes "same blocks, same root" (Merkle.root t1) (Merkle.root t2);
  let t3 = Merkle.build (blocks 8) in
  check Alcotest.bool "different blocks, different root" false
    (Bytes.equal (Merkle.root t1) (Merkle.root t3))

let test_merkle_single_leaf () =
  let t = Merkle.build [ Bytes.of_string "only" ] in
  check Alcotest.int "one leaf" 1 (Merkle.leaf_count t);
  check Alcotest.bool "verifies" true
    (Merkle.verify ~root:(Merkle.root t) ~index:0 ~leaf_count:1 (Merkle.proof t ~index:0)
       (Bytes.of_string "only"))

let test_merkle_proofs_all_indices () =
  List.iter
    (fun n ->
      let bs = blocks n in
      let t = Merkle.build bs in
      List.iteri
        (fun i b ->
          check Alcotest.bool
            (Printf.sprintf "n=%d i=%d verifies" n i)
            true
            (Merkle.verify ~root:(Merkle.root t) ~index:i ~leaf_count:n (Merkle.proof t ~index:i) b))
        bs)
    [ 1; 2; 3; 4; 5; 7; 8; 16; 17 ]

let test_merkle_rejects_wrong_block () =
  let t = Merkle.build (blocks 8) in
  let proof = Merkle.proof t ~index:3 in
  check Alcotest.bool "forged block rejected" false
    (Merkle.verify ~root:(Merkle.root t) ~index:3 ~leaf_count:8 proof (Bytes.of_string "forged"))

let test_merkle_rejects_wrong_index () =
  let bs = blocks 8 in
  let t = Merkle.build bs in
  let proof = Merkle.proof t ~index:3 in
  check Alcotest.bool "proof bound to its index" false
    (Merkle.verify ~root:(Merkle.root t) ~index:4 ~leaf_count:8 proof (List.nth bs 4))

let test_merkle_update () =
  let bs = blocks 8 in
  let t = Merkle.build bs in
  let t' = Merkle.update t ~index:2 (Bytes.of_string "replaced") in
  check Alcotest.bool "root changed" false (Bytes.equal (Merkle.root t) (Merkle.root t'));
  check Alcotest.bool "new block verifies" true
    (Merkle.verify ~root:(Merkle.root t') ~index:2 ~leaf_count:8 (Merkle.proof t' ~index:2)
       (Bytes.of_string "replaced"));
  (* Equal to a fresh build of the updated list. *)
  let rebuilt = Merkle.build (List.mapi (fun i b -> if i = 2 then Bytes.of_string "replaced" else b) bs) in
  check Alcotest.bytes "incremental = rebuild" (Merkle.root rebuilt) (Merkle.root t')

let prop_merkle_verify_roundtrip =
  prop
    (QCheck.Test.make ~name:"every leaf of a random tree verifies" ~count:40
       QCheck.(pair (int_range 1 24) (int_bound 1000))
       (fun (n, salt) ->
         let bs = List.init n (fun i -> Bytes.of_string (Printf.sprintf "blk-%d-%d" salt i)) in
         let t = Merkle.build bs in
         List.for_all
           (fun i ->
             Merkle.verify ~root:(Merkle.root t) ~index:i ~leaf_count:n (Merkle.proof t ~index:i)
               (List.nth bs i))
           (List.init n Fun.id)))

(* --- Iommu --- *)

let test_iommu_translate () =
  let io = Iommu.create () in
  Iommu.map io ~device:1 ~io_vpn:5 ~frame:42 ~writable:false ();
  (match Iommu.translate io ~device:1 ~io_vpn:5 ~access:Iommu.Dma_read with
  | Ok tr -> check Alcotest.int "translated" 42 tr.Iommu.frame
  | Error _ -> Alcotest.fail "mapped read must succeed");
  (match Iommu.translate io ~device:1 ~io_vpn:5 ~access:Iommu.Dma_write with
  | Error Iommu.Write_to_readonly -> ()
  | _ -> Alcotest.fail "read-only mapping must reject writes");
  match Iommu.translate io ~device:1 ~io_vpn:6 ~access:Iommu.Dma_read with
  | Error Iommu.Unmapped -> ()
  | _ -> Alcotest.fail "unmapped access must fault"

let test_iommu_devices_isolated () =
  let io = Iommu.create () in
  Iommu.map io ~device:1 ~io_vpn:5 ~frame:42 ~writable:true ();
  match Iommu.translate io ~device:2 ~io_vpn:5 ~access:Iommu.Dma_read with
  | Error Iommu.Unmapped -> ()
  | _ -> Alcotest.fail "device 2 must not use device 1's table"

let test_iommu_iotlb_and_invalidation () =
  let io = Iommu.create () in
  Iommu.map io ~device:1 ~io_vpn:5 ~frame:42 ~writable:true ();
  ignore (Iommu.translate io ~device:1 ~io_vpn:5 ~access:Iommu.Dma_read);
  ignore (Iommu.translate io ~device:1 ~io_vpn:5 ~access:Iommu.Dma_read);
  check Alcotest.int "second access hits the IOTLB" 1 (Iommu.iotlb_hits io);
  (* Remap must invalidate: the stale frame must not be returned. *)
  Iommu.map io ~device:1 ~io_vpn:5 ~frame:99 ~writable:true ();
  (match Iommu.translate io ~device:1 ~io_vpn:5 ~access:Iommu.Dma_read with
  | Ok tr -> check Alcotest.int "no stale IOTLB entry" 99 tr.Iommu.frame
  | Error _ -> Alcotest.fail "remapped access must succeed");
  Iommu.unmap io ~device:1 ~io_vpn:5;
  match Iommu.translate io ~device:1 ~io_vpn:5 ~access:Iommu.Dma_read with
  | Error Iommu.Unmapped -> ()
  | _ -> Alcotest.fail "unmap must invalidate the IOTLB"

let test_iommu_clear_device () =
  let io = Iommu.create () in
  Iommu.map io ~device:7 ~io_vpn:1 ~frame:10 ~writable:true ();
  Iommu.map io ~device:7 ~io_vpn:2 ~frame:11 ~writable:true ();
  Iommu.map io ~device:8 ~io_vpn:1 ~frame:12 ~writable:true ();
  Iommu.clear_device io ~device:7;
  check Alcotest.int "device 7 cleared" 0 (List.length (Iommu.mappings_of io ~device:7));
  check Alcotest.int "device 8 untouched" 1 (List.length (Iommu.mappings_of io ~device:8));
  check Alcotest.bool "faults counted" true
    (match Iommu.translate io ~device:7 ~io_vpn:1 ~access:Iommu.Dma_read with
    | Error Iommu.Unmapped -> Iommu.faults io > 0
    | _ -> false)

(* --- GPU --- *)

module Gpu = Hypertee_accel.Gpu

let gpu_fixture () =
  let mem = Hypertee_arch.Phys_mem.create ~frames:64 in
  let mee = Hypertee_arch.Mem_encryption.create ~slots:8 () in
  let iommu = Iommu.create () in
  let gpu = Gpu.create ~mem ~mee ~iommu ~device:3 in
  (mem, mee, iommu, gpu)

let test_gpu_binding () =
  let _, _, _, gpu = gpu_fixture () in
  (match Gpu.submit gpu ~from:1 (Gpu.Reduce_sum { src = 0; out = 64; length = 1 }) with
  | Error Gpu.Not_bound -> ()
  | _ -> Alcotest.fail "unbound GPU must reject everything");
  Gpu.bind gpu ~driver:7;
  check Alcotest.bool "bound" true (Gpu.bound_to gpu = Some 7);
  (match Gpu.submit gpu ~from:8 (Gpu.Reduce_sum { src = 0; out = 64; length = 1 }) with
  | Error Gpu.Wrong_enclave -> ()
  | _ -> Alcotest.fail "wrong enclave must be rejected");
  Gpu.unbind gpu;
  check Alcotest.bool "unbound" true (Gpu.bound_to gpu = None)

let test_gpu_vector_add_through_iommu () =
  let mem, mee, iommu, gpu = gpu_fixture () in
  Gpu.bind gpu ~driver:7;
  (* Two encrypted pages mapped at io_vpn 0 and 1 with key 2. *)
  Hypertee_arch.Mem_encryption.program mee ~key_id:2 (Bytes.make 16 'k');
  let zero = Bytes.make 4096 '\000' in
  List.iter
    (fun frame ->
      Hypertee_arch.Phys_mem.write mem ~frame
        (Hypertee_arch.Mem_encryption.store mee ~key_id:2 ~frame zero))
    [ 10; 11 ];
  Iommu.map iommu ~device:3 ~io_vpn:0 ~frame:10 ~writable:true ~key_id:2 ();
  Iommu.map iommu ~device:3 ~io_vpn:1 ~frame:11 ~writable:true ~key_id:2 ();
  (* Seed inputs directly through the engine. *)
  let page = Bytes.make 4096 '\000' in
  for i = 0 to 63 do
    Hypertee_util.Bytes_ext.set_u64_le page (8 * i) (Int64.of_int (i + 1));
    Hypertee_util.Bytes_ext.set_u64_le page (512 + (8 * i)) (Int64.of_int (10 * (i + 1)))
  done;
  Hypertee_arch.Phys_mem.write mem ~frame:10
    (Hypertee_arch.Mem_encryption.store mee ~key_id:2 ~frame:10 page);
  (match Gpu.submit gpu ~from:7 (Gpu.Vector_add { a = 0; b = 512; out = 4096; length = 64 }) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "kernel failed");
  (* Check results landed encrypted in frame 11. *)
  let out =
    Hypertee_arch.Mem_encryption.load mee ~key_id:2 ~frame:11
      (Hypertee_arch.Phys_mem.read mem ~frame:11)
  in
  for i = 0 to 63 do
    check Alcotest.int64
      (Printf.sprintf "element %d" i)
      (Int64.of_int (11 * (i + 1)))
      (Hypertee_util.Bytes_ext.get_u64_le out (8 * i))
  done;
  check Alcotest.int "completed" 1 (Gpu.completed gpu)

let test_gpu_confined_by_iommu () =
  let _, _, iommu, gpu = gpu_fixture () in
  Gpu.bind gpu ~driver:7;
  (match Gpu.submit gpu ~from:7 (Gpu.Reduce_sum { src = 0; out = 8; length = 1 }) with
  | Error (Gpu.Iommu_fault Iommu.Unmapped) -> ()
  | _ -> Alcotest.fail "unmapped GPU access must fault");
  (* A read-only mapping rejects the output write. *)
  Iommu.map iommu ~device:3 ~io_vpn:0 ~frame:5 ~writable:false ();
  match Gpu.submit gpu ~from:7 (Gpu.Vector_scale { src = 0; out = 16; factor = 2L; length = 1 }) with
  | Error (Gpu.Iommu_fault Iommu.Write_to_readonly) -> ()
  | _ -> Alcotest.fail "read-only IOMMU mapping must reject the write"

(* --- CFI --- *)

let simple_policy =
  Cfi.policy ~edges:[ (0x100, 0x200); (0x200, 0x300); (0x300, 0x100) ] ~indirect_targets:[ 0x400 ]

let test_cfi_clean_trace () =
  let t = Cfi.create () in
  Cfi.register t ~enclave:1 simple_policy;
  Cfi.record_transfer t ~enclave:1 ~from_pc:0x100 ~to_pc:0x200;
  Cfi.record_transfer t ~enclave:1 ~from_pc:0x200 ~to_pc:0x300;
  Cfi.record_transfer t ~enclave:1 ~from_pc:0x999 ~to_pc:0x400 (* indirect target: allowed *);
  (match Cfi.monitor t ~enclave:1 with
  | Cfi.Clean n -> check Alcotest.int "three transfers checked" 3 n
  | _ -> Alcotest.fail "clean trace flagged");
  check Alcotest.int "buffer drained" 0 (Cfi.pending t ~enclave:1);
  check Alcotest.int "no violations" 0 (Cfi.violations t)

let test_cfi_detects_rop_edge () =
  let t = Cfi.create () in
  Cfi.register t ~enclave:1 simple_policy;
  Cfi.record_transfer t ~enclave:1 ~from_pc:0x100 ~to_pc:0x200;
  Cfi.record_transfer t ~enclave:1 ~from_pc:0x200 ~to_pc:0xBAD;
  (match Cfi.monitor t ~enclave:1 with
  | Cfi.Violation { from_pc; to_pc } ->
    check Alcotest.int "from" 0x200 from_pc;
    check Alcotest.int "to" 0xBAD to_pc
  | _ -> Alcotest.fail "hijacked edge not detected");
  check Alcotest.int "violation counted" 1 (Cfi.violations t)

let test_cfi_overflow_is_conservative () =
  let t = Cfi.create ~buffer_capacity:4 () in
  Cfi.register t ~enclave:1 simple_policy;
  for _ = 1 to 10 do
    Cfi.record_transfer t ~enclave:1 ~from_pc:0x100 ~to_pc:0x200
  done;
  match Cfi.monitor t ~enclave:1 with
  | Cfi.Buffer_overflow -> check Alcotest.int "counted as violation" 1 (Cfi.violations t)
  | _ -> Alcotest.fail "overflow must be flagged"

let test_cfi_unmonitored_enclave () =
  let t = Cfi.create () in
  Cfi.record_transfer t ~enclave:9 ~from_pc:1 ~to_pc:2;
  match Cfi.monitor t ~enclave:9 with
  | Cfi.Clean 0 -> ()
  | _ -> Alcotest.fail "unmonitored enclave must be a no-op"

(* --- CVM --- *)

let fresh_manager seed = Manager.create (Hypertee.Platform.create ~seed ())

let test_cvm_lifecycle () =
  let m = fresh_manager 0xC1L in
  let cvm =
    Result.get_ok (Manager.launch m ~vcpus:2 ~memory_pages:8 ~image:(Bytes.of_string "guest"))
  in
  check Alcotest.bool "running" true (Manager.state m cvm = Some Manager.Running);
  check Alcotest.int "pages" 8 (Manager.memory_pages m cvm);
  Result.get_ok (Manager.suspend m cvm);
  check Alcotest.bool "suspended" true (Manager.state m cvm = Some Manager.Suspended);
  check Alcotest.bool "double suspend rejected" true (Result.is_error (Manager.suspend m cvm));
  Result.get_ok (Manager.resume m cvm);
  Result.get_ok (Manager.destroy m cvm);
  check Alcotest.bool "destroyed" true (Manager.state m cvm = Some Manager.Destroyed);
  check Alcotest.bool "operations rejected after destroy" true
    (Result.is_error (Manager.guest_read m cvm ~gpa:0 ~len:4))

let test_cvm_guest_memory () =
  let m = fresh_manager 0xC2L in
  let image = Bytes.of_string "kernel image bytes" in
  let cvm = Result.get_ok (Manager.launch m ~vcpus:1 ~memory_pages:4 ~image) in
  (* The image is loaded at gpa 0. *)
  check Alcotest.bytes "image loaded" image
    (Result.get_ok (Manager.guest_read m cvm ~gpa:0 ~len:(Bytes.length image)));
  (* Cross-page write/read. *)
  let big = Bytes.init 6000 (fun i -> Char.chr (i land 0xff)) in
  Result.get_ok (Manager.guest_write m cvm ~gpa:3000 big);
  check Alcotest.bytes "cross-page roundtrip" big
    (Result.get_ok (Manager.guest_read m cvm ~gpa:3000 ~len:6000));
  check Alcotest.bool "out of range rejected" true
    (Result.is_error (Manager.guest_read m cvm ~gpa:(4 * 4096 - 2) ~len:4))

let test_cvm_memory_is_encrypted () =
  let m = fresh_manager 0xC3L in
  let cvm = Result.get_ok (Manager.launch m ~vcpus:1 ~memory_pages:2 ~image:Bytes.empty) in
  let secret = Bytes.of_string "guest-secret-0123456789" in
  Result.get_ok (Manager.guest_write m cvm ~gpa:0 secret);
  (* Scan all of physical memory for the plaintext. *)
  let mem = Hypertee.Platform.mem (Manager.platform m) in
  let found = ref false in
  for f = 0 to Hypertee_arch.Phys_mem.frames mem - 1 do
    let page = Hypertee_arch.Phys_mem.read mem ~frame:f in
    for i = 0 to 4096 - Bytes.length secret do
      if Bytes.equal (Bytes.sub page i (Bytes.length secret)) secret then found := true
    done
  done;
  check Alcotest.bool "no plaintext anywhere in DRAM" false !found

let test_cvm_snapshot_restore () =
  let m = fresh_manager 0xC4L in
  let cvm = Result.get_ok (Manager.launch m ~vcpus:1 ~memory_pages:4 ~image:Bytes.empty) in
  Result.get_ok (Manager.guest_write m cvm ~gpa:100 (Bytes.of_string "state"));
  let snap = Result.get_ok (Manager.snapshot m cvm) in
  (* Mutate after the snapshot; restore must roll back. *)
  Result.get_ok (Manager.guest_write m cvm ~gpa:100 (Bytes.of_string "later"));
  let restored = Result.get_ok (Manager.restore m snap) in
  check Alcotest.bytes "snapshot state" (Bytes.of_string "state")
    (Result.get_ok (Manager.guest_read m restored ~gpa:100 ~len:5))

let test_cvm_snapshot_tamper_detected () =
  let m = fresh_manager 0xC5L in
  let cvm = Result.get_ok (Manager.launch m ~vcpus:1 ~memory_pages:4 ~image:Bytes.empty) in
  let snap = Result.get_ok (Manager.snapshot m cvm) in
  let pages = Array.map Bytes.copy snap.Manager.encrypted_pages in
  Bytes.set pages.(1) 7 (Char.chr (Char.code (Bytes.get pages.(1) 7) lxor 1));
  (match Manager.restore m { snap with Manager.encrypted_pages = pages } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered snapshot restored");
  check Alcotest.int "tamper counted" 1 (Manager.tamper_detections m)

let test_cvm_migration () =
  let src = fresh_manager 0xC6L and dst = fresh_manager 0xC7L in
  let cvm = Result.get_ok (Manager.launch src ~vcpus:2 ~memory_pages:4 ~image:Bytes.empty) in
  Result.get_ok (Manager.guest_write src cvm ~gpa:0 (Bytes.of_string "migrate-me"));
  let rng = Hypertee_util.Xrng.create 1L in
  let dst_id = Result.get_ok (Manager.migrate ~src ~dst ~rng cvm) in
  check Alcotest.bool "source destroyed" true (Manager.state src cvm = Some Manager.Destroyed);
  check Alcotest.bytes "state arrived intact" (Bytes.of_string "migrate-me")
    (Result.get_ok (Manager.guest_read dst dst_id ~gpa:0 ~len:10));
  (* Measurement travels with the CVM. *)
  check Alcotest.bool "measurement preserved" true
    (Manager.measurement dst dst_id = Manager.measurement src cvm)

let test_cvm_frames_reclaimed () =
  let m = fresh_manager 0xC8L in
  let pool =
    Hypertee_ems.Runtime.pool (Hypertee.Platform.Internals.runtime (Manager.platform m))
  in
  let before = Hypertee_ems.Mem_pool.available pool in
  let cvm = Result.get_ok (Manager.launch m ~vcpus:1 ~memory_pages:16 ~image:Bytes.empty) in
  Result.get_ok (Manager.destroy m cvm);
  check Alcotest.bool "pool conserved" true (Hypertee_ems.Mem_pool.available pool >= before)

let test_cvm_bad_dimensions () =
  let m = fresh_manager 0xC9L in
  check Alcotest.bool "zero pages rejected" true
    (Result.is_error (Manager.launch m ~vcpus:1 ~memory_pages:0 ~image:Bytes.empty));
  check Alcotest.bool "zero vcpus rejected" true
    (Result.is_error (Manager.launch m ~vcpus:0 ~memory_pages:4 ~image:Bytes.empty));
  check Alcotest.bool "oversized image rejected" true
    (Result.is_error (Manager.launch m ~vcpus:1 ~memory_pages:1 ~image:(Bytes.create 8192)))

(* --- Ablations --- *)

let test_ablation_pool () =
  let a = A.pool () in
  check Alcotest.bool "pool hides events" true (a.A.os_events_with_pool < a.A.os_events_without_pool / 10);
  check Alcotest.bool "pool is faster" true (a.A.latency_with_pool_ns < a.A.latency_without_pool_ns)

let test_ablation_threshold () =
  let a = A.threshold () in
  check Alcotest.bool "several refills" true (a.A.refills_observed > 5);
  check (Alcotest.float 1e-9) "fixed is fully predictable" 0.0 a.A.fixed_interval_stddev;
  check Alcotest.bool "randomized spreads" true (a.A.randomized_interval_stddev > 2.0)

let test_ablation_isolation () =
  let a = A.isolation () in
  check Alcotest.bool "range scheme saturates" true (a.A.range_scheme_supported < a.A.fragmented_regions);
  check Alcotest.int "bitmap covers all" a.A.fragmented_regions a.A.bitmap_supported

let test_ablation_swap () =
  let a = A.swap () in
  check Alcotest.int "direct swapping always observable" a.A.trials a.A.victim_faults_direct;
  check Alcotest.bool "randomized hides the victim" true
    (a.A.victim_faults_randomized * 10 < a.A.victim_faults_direct)

let suite =
  [
    ( "ext.merkle",
      [
        Alcotest.test_case "deterministic root" `Quick test_merkle_root_deterministic;
        Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
        Alcotest.test_case "proofs for all indices" `Quick test_merkle_proofs_all_indices;
        Alcotest.test_case "rejects wrong block" `Quick test_merkle_rejects_wrong_block;
        Alcotest.test_case "rejects wrong index" `Quick test_merkle_rejects_wrong_index;
        Alcotest.test_case "incremental update" `Quick test_merkle_update;
        prop_merkle_verify_roundtrip;
      ] );
    ( "ext.iommu",
      [
        Alcotest.test_case "translate + permissions" `Quick test_iommu_translate;
        Alcotest.test_case "devices isolated" `Quick test_iommu_devices_isolated;
        Alcotest.test_case "IOTLB + invalidation" `Quick test_iommu_iotlb_and_invalidation;
        Alcotest.test_case "clear device" `Quick test_iommu_clear_device;
      ] );
    ( "ext.gpu",
      [
        Alcotest.test_case "control-path binding" `Quick test_gpu_binding;
        Alcotest.test_case "vector add through IOMMU + engine" `Quick test_gpu_vector_add_through_iommu;
        Alcotest.test_case "confined by IOMMU" `Quick test_gpu_confined_by_iommu;
      ] );
    ( "ext.cfi",
      [
        Alcotest.test_case "clean trace" `Quick test_cfi_clean_trace;
        Alcotest.test_case "detects hijacked edge" `Quick test_cfi_detects_rop_edge;
        Alcotest.test_case "overflow conservative" `Quick test_cfi_overflow_is_conservative;
        Alcotest.test_case "unmonitored no-op" `Quick test_cfi_unmonitored_enclave;
      ] );
    ( "ext.cvm",
      [
        Alcotest.test_case "lifecycle" `Quick test_cvm_lifecycle;
        Alcotest.test_case "guest memory" `Quick test_cvm_guest_memory;
        Alcotest.test_case "memory encrypted" `Quick test_cvm_memory_is_encrypted;
        Alcotest.test_case "snapshot/restore" `Quick test_cvm_snapshot_restore;
        Alcotest.test_case "snapshot tamper detected" `Quick test_cvm_snapshot_tamper_detected;
        Alcotest.test_case "migration" `Quick test_cvm_migration;
        Alcotest.test_case "frames reclaimed" `Quick test_cvm_frames_reclaimed;
        Alcotest.test_case "bad dimensions" `Quick test_cvm_bad_dimensions;
      ] );
    ( "ext.ablations",
      [
        Alcotest.test_case "pool" `Quick test_ablation_pool;
        Alcotest.test_case "threshold randomization" `Quick test_ablation_threshold;
        Alcotest.test_case "isolation scalability" `Quick test_ablation_isolation;
        Alcotest.test_case "swap randomization" `Quick test_ablation_swap;
      ] );
  ]

(* --- Secure boot (Sec. VI) --- *)

module Boot = Hypertee_ems.Boot

let provision_boot () =
  Boot.provision
    (Hypertee_util.Xrng.create 0xB007L)
    ~runtime_image:(Bytes.of_string "the EMS runtime binary")
    ~firmware_image:(Bytes.of_string "the EMCall firmware binary")

let test_boot_clean_chain () =
  match Boot.boot (provision_boot ()) with
  | Boot.Booted { platform_measurement; stages } ->
    check Alcotest.int "measurement size" 32 (Bytes.length platform_measurement);
    check Alcotest.int "four stages" 4 (List.length stages)
  | Boot.Halted { reason; _ } -> Alcotest.failf "clean boot halted: %s" reason

let test_boot_deterministic_measurement () =
  match (Boot.boot (provision_boot ()), Boot.boot (provision_boot ())) with
  | Boot.Booted { platform_measurement = a; _ }, Boot.Booted { platform_measurement = b; _ } ->
    check Alcotest.bytes "same images, same measurement" a b
  | _ -> Alcotest.fail "boot failed"

let test_boot_runtime_in_flash_is_ciphertext () =
  let p = provision_boot () in
  check Alcotest.bool "flash does not hold the plaintext runtime" false
    (Bytes.equal p.Boot.flash_runtime (Bytes.of_string "the EMS runtime binary"))

let test_boot_detects_flash_tamper () =
  let p = provision_boot () in
  let flash = Bytes.copy p.Boot.flash_runtime in
  Bytes.set flash 3 (Char.chr (Char.code (Bytes.get flash 3) lxor 1));
  match Boot.boot { p with Boot.flash_runtime = flash } with
  | Boot.Halted { at = Boot.Ems_runtime; _ } -> ()
  | Boot.Halted { at; _ } -> Alcotest.failf "halted at the wrong stage: %s" (Boot.stage_name at)
  | Boot.Booted _ -> Alcotest.fail "tampered runtime booted"

let test_boot_detects_firmware_tamper () =
  let p = provision_boot () in
  let firmware = Bytes.copy p.Boot.firmware in
  Bytes.set firmware 0 'X';
  match Boot.boot { p with Boot.firmware } with
  | Boot.Halted { at = Boot.Cs_firmware; _ } -> ()
  | Boot.Halted { at; _ } -> Alcotest.failf "halted at the wrong stage: %s" (Boot.stage_name at)
  | Boot.Booted _ -> Alcotest.fail "tampered firmware booted"

let test_boot_detects_eeprom_tamper () =
  let p = provision_boot () in
  let h = Bytes.copy p.Boot.eeprom_runtime_hash in
  Bytes.set h 0 (Char.chr (Char.code (Bytes.get h 0) lxor 1));
  check Alcotest.bool "EEPROM tamper halts boot" false
    (Boot.booted (Boot.boot { p with Boot.eeprom_runtime_hash = h }))

let boot_suite =
  ( "ext.boot",
    [
      Alcotest.test_case "clean chain" `Quick test_boot_clean_chain;
      Alcotest.test_case "deterministic measurement" `Quick test_boot_deterministic_measurement;
      Alcotest.test_case "flash holds ciphertext" `Quick test_boot_runtime_in_flash_is_ciphertext;
      Alcotest.test_case "flash tamper detected" `Quick test_boot_detects_flash_tamper;
      Alcotest.test_case "firmware tamper detected" `Quick test_boot_detects_firmware_tamper;
      Alcotest.test_case "EEPROM tamper detected" `Quick test_boot_detects_eeprom_tamper;
    ] )

let suite = suite @ [ boot_suite ]

(* --- Table VI derived by probing (not asserted) --- *)

module T6 = Hypertee_experiments.Table6_probe
module Security = Hypertee.Security

let test_table6_probes_match_paper () =
  List.iter
    (fun tee ->
      List.iter
        (fun attack ->
          let derived = T6.derived_capability tee attack in
          let paper = Security.defends tee attack in
          if derived <> paper then
            Alcotest.failf "%s / %s: probed %s but the paper says %s" (Security.tee_name tee)
              (Security.attack_name attack)
              (Security.capability_symbol derived)
              (Security.capability_symbol paper))
        Security.all_attacks)
    Security.all_tees

let test_table6_hypertee_row_fully_defended () =
  let r = T6.probe (T6.mechanisms_of Security.Hypertee) in
  check Alcotest.bool "alloc" true r.T6.alloc_defended;
  check Alcotest.bool "page table" true r.T6.page_table_defended;
  check Alcotest.bool "swap" true r.T6.swap_defended;
  check Alcotest.bool "comm" true r.T6.comm_defended;
  check Alcotest.bool "uarch" true (r.T6.uarch = Security.Defended)

let test_table6_sgx_row_fully_exposed () =
  let r = T6.probe (T6.mechanisms_of Security.Sgx) in
  check Alcotest.bool "alloc" false r.T6.alloc_defended;
  check Alcotest.bool "page table" false r.T6.page_table_defended;
  check Alcotest.bool "swap" false r.T6.swap_defended;
  check Alcotest.bool "comm" false r.T6.comm_defended

let table6_suite =
  ( "ext.table6_probe",
    [
      Alcotest.test_case "probed matrix = paper matrix (45 cells)" `Quick test_table6_probes_match_paper;
      Alcotest.test_case "HyperTEE row fully defended" `Quick test_table6_hypertee_row_fully_defended;
      Alcotest.test_case "SGX row fully exposed" `Quick test_table6_sgx_row_fully_exposed;
    ] )

let suite = suite @ [ table6_suite ]
