(* Attack regression suite: every Table VI claim for HyperTEE has a
   concrete probe here. Each test mounts the attack the paper
   describes and asserts the specific defense stops it — and, where
   an "SGX-like" comparison is meaningful, shows the same probe
   succeeding once the defense is disabled. *)

open Hypertee
module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module Enclave = Hypertee_ems.Enclave
module Emcall = Hypertee_cs.Emcall
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Ptw = Hypertee_arch.Ptw

let check = Alcotest.check

let victim_image =
  Sdk.image_of_code ~code:(Bytes.of_string "victim") ~data:Bytes.empty ()

let setup () =
  let platform = Platform.create ~seed:0xA77ACL () in
  let enclave =
    match Sdk.launch platform victim_image with Ok e -> e | Error m -> Alcotest.failf "%s" m
  in
  let session =
    match Sdk.enter platform ~enclave with Ok s -> s | Error m -> Alcotest.failf "%s" m
  in
  Session.write session ~va:(Session.heap_va session) (Bytes.of_string "TOP-SECRET-DATA");
  (platform, enclave, session)

let heap_frame platform enclave =
  let ecs = Option.get (Runtime.find_enclave (Platform.Internals.runtime platform) enclave) in
  let pte =
    Option.get (Page_table.lookup ecs.Enclave.page_table ~vpn:ecs.Enclave.layout.Enclave.heap_base)
  in
  pte.Pte.ppn

(* --- Page-table controlled channel (Table VI column 2) --- *)

let test_os_cannot_read_enclave_via_remap () =
  let platform, enclave, _ = setup () in
  let frame = heap_frame platform enclave in
  let proc = Hypertee_cs.Os.spawn (Platform.os platform) in
  Page_table.map proc.Hypertee_cs.Os.page_table ~vpn:0x100
    (Pte.leaf ~ppn:frame ~r:true ~w:true ~x:false ~key_id:0);
  (match Platform.host_read platform ~table:proc.Hypertee_cs.Os.page_table ~vpn:0x100 ~off:0 ~len:15 with
  | Error (Platform.Fault Ptw.Bitmap_fault) -> ()
  | Error _ -> Alcotest.fail "blocked, but not by the bitmap check"
  | Ok _ -> Alcotest.fail "ATTACK SUCCEEDED: OS read enclave memory");
  (* SGX-like baseline: without a bitmap bit the same probe passes
     the PTW (the data is still ciphertext, but the access-control
     defense is gone — this is the delta the bitmap provides). *)
  Bitmap.clear (Platform.Internals.bitmap platform) ~frame;
  Emcall.flush_tlbs (Platform.Internals.emcall platform);
  (match Platform.host_read platform ~table:proc.Hypertee_cs.Os.page_table ~vpn:0x100 ~off:0 ~len:15 with
  | Ok _ | Error Platform.Integrity_violation ->
    () (* access-control defense disabled: probe reaches memory *)
  | Error _ -> Alcotest.fail "baseline comparison: probe should reach memory without the bitmap");
  Bitmap.set (Platform.Internals.bitmap platform) ~frame

let test_os_cannot_observe_enclave_ad_bits () =
  (* The enclave's page table lives in EMS-protected frames: an OS
     walk of its own tables never touches enclave PTEs, and direct
     reads of the table frames are bitmap-protected. *)
  let platform, enclave, _ = setup () in
  let ecs = Option.get (Runtime.find_enclave (Platform.Internals.runtime platform) enclave) in
  let table_frame = Page_table.root_frame ecs.Enclave.page_table in
  check Alcotest.bool "page-table frames are enclave memory" true
    (Bitmap.get (Platform.Internals.bitmap platform) ~frame:table_frame);
  let proc = Hypertee_cs.Os.spawn (Platform.os platform) in
  Page_table.map proc.Hypertee_cs.Os.page_table ~vpn:0x200
    (Pte.leaf ~ppn:table_frame ~r:true ~w:false ~x:false ~key_id:0);
  match Platform.host_read platform ~table:proc.Hypertee_cs.Os.page_table ~vpn:0x200 ~off:0 ~len:8 with
  | Error (Platform.Fault Ptw.Bitmap_fault) -> ()
  | _ -> Alcotest.fail "OS observed enclave page-table state"

(* --- Allocation controlled channel (Table VI column 1) --- *)

let test_allocation_pattern_hidden () =
  let platform, _, session = setup () in
  let os = Platform.os platform in
  let before = Hypertee_cs.Os.ems_refill_requests os in
  (* A secret-dependent allocation pattern: the attacker OS counts
     allocation events to recover the secret bit. *)
  let secret_bits = [ 1; 0; 1; 1; 0; 1; 0; 0; 1; 1 ] in
  List.iter
    (fun bit ->
      if bit = 1 then
        match Session.alloc session ~pages:1 with
        | Ok va -> ignore (Session.free session ~va ~pages:1)
        | Error _ -> ())
    secret_bits;
  let observed = Hypertee_cs.Os.ems_refill_requests os - before in
  (* 6 allocations happened; the OS must not be able to count them. *)
  check Alcotest.bool "observable events << allocations" true (observed <= 1)

(* --- Swapping controlled channel (Table VI column 3) --- *)

let test_swap_selection_not_attacker_controlled () =
  let platform, enclave, _ = setup () in
  (* The OS asks to reclaim memory; it cannot name which enclave
     pages get swapped (the request carries only a size hint), and
     what it receives is encrypted pool pages whose count is
     randomized. *)
  match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 4 }) with
  | Ok (Types.Ok_writeback { frames; blobs }) ->
    check Alcotest.bool "count randomized (>= hint)" true (List.length frames >= 4);
    (* The victim's live heap frame is served from pool pages, not
       from the enclave's working set. *)
    let victim_frame = heap_frame platform enclave in
    check Alcotest.bool "live enclave page not swapped" false (List.mem victim_frame frames);
    List.iter
      (fun (_, blob) ->
        check Alcotest.bool "no plaintext in swap blobs" false
          (Bytes.equal blob (Bytes.make 4096 '\000')))
      blobs
  | _ -> Alcotest.fail "EWB failed"

(* --- Communication management (Table VI column 4) --- *)

let test_shm_key_never_reaches_cs () =
  let platform, _, session = setup () in
  let shm = Result.get_ok (Session.shmget session ~pages:1 ~max_perm:Types.Read_write) in
  let region = Option.get (Runtime.find_shm (Platform.Internals.runtime platform) shm) in
  (* The control structure CS-visible API exposes ShmID and owner,
     not keys; the actual AES key lives only in the engine's slots,
     derived inside EMS. What the attacker can try is reading the
     shared frame as host software: *)
  let frame = List.hd region.Hypertee_ems.Shm.frames in
  let proc = Hypertee_cs.Os.spawn (Platform.os platform) in
  Page_table.map proc.Hypertee_cs.Os.page_table ~vpn:0x300
    (Pte.leaf ~ppn:frame ~r:true ~w:false ~x:false ~key_id:0);
  match Platform.host_read platform ~table:proc.Hypertee_cs.Os.page_table ~vpn:0x300 ~off:0 ~len:8 with
  | Error (Platform.Fault Ptw.Bitmap_fault) -> ()
  | _ -> Alcotest.fail "host reached shared enclave memory"

let test_malicious_enclave_cannot_hijack_shm () =
  let platform, _, sender = setup () in
  let eve_image = Sdk.image_of_code ~code:(Bytes.of_string "eve") ~data:Bytes.empty () in
  let eve_id = match Sdk.launch platform eve_image with Ok e -> e | Error m -> Alcotest.failf "%s" m in
  let eve = match Sdk.enter platform ~enclave:eve_id with Ok s -> s | Error m -> Alcotest.failf "%s" m in
  let shm = Result.get_ok (Session.shmget sender ~pages:1 ~max_perm:Types.Read_write) in
  (* Brute-force guessing: not registered. *)
  (match Session.shmat eve ~shm ~perm:Types.Read_only with
  | Error Types.Not_registered -> ()
  | _ -> Alcotest.fail "unregistered attach must fail");
  (* Malicious release. *)
  (match Session.shmdes eve ~shm with
  | Error (Types.Permission_denied _) -> ()
  | _ -> Alcotest.fail "non-owner destroy must fail");
  (* Granting to itself requires being the owner. *)
  match Session.shmshr eve ~shm ~grantee:eve_id ~perm:Types.Read_write with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-owner grant must fail"

let test_dma_cannot_escape_window () =
  let platform, enclave, _ = setup () in
  let frame = heap_frame platform enclave in
  (* No window configured: everything blocked. *)
  (match Platform.dma_write platform ~channel:3 ~frame (Bytes.make 4096 'X') with
  | Error (Platform.Hub_denied _) -> ()
  | _ -> Alcotest.fail "unconfigured DMA must be blocked");
  (* A window elsewhere does not help. *)
  Hypertee_arch.Ihub.configure_dma_window (Platform.Internals.ihub platform) ~channel:3
    ~base_frame:(frame + 100) ~frames:4 ~writable:true;
  match Platform.dma_write platform ~channel:3 ~frame (Bytes.make 4096 'X') with
  | Error (Platform.Hub_denied Hypertee_arch.Ihub.Outside_dma_window) -> ()
  | _ -> Alcotest.fail "DMA escaped its window"

(* --- Request forgery / mailbox isolation --- *)

let test_enclave_cannot_impersonate () =
  let platform, victim_id, _ = setup () in
  let eve_image = Sdk.image_of_code ~code:(Bytes.of_string "eve2") ~data:Bytes.empty () in
  let eve_id = match Sdk.launch platform eve_image with Ok e -> e | Error m -> Alcotest.failf "%s" m in
  ignore (Sdk.enter platform ~enclave:eve_id);
  (* EMCall stamps eve's identity; EMS compares it to the target. *)
  (match
     Platform.invoke platform ~caller:(Emcall.User_enclave eve_id)
       (Types.Free { enclave = victim_id; vpn = 0x100; pages = 1 })
   with
  | Ok (Types.Err (Types.Permission_denied _)) -> ()
  | Ok (Types.Err _) -> ()
  | Ok _ -> Alcotest.fail "forged EFREE succeeded"
  | Error _ -> ());
  match
    Platform.invoke platform ~caller:(Emcall.User_enclave eve_id)
      (Types.Attest { enclave = victim_id; user_data = Bytes.empty })
  with
  | Ok (Types.Err (Types.Permission_denied _)) -> ()
  | Ok (Types.Ok_attest _) -> Alcotest.fail "eve obtained a quote for the victim"
  | Ok _ -> ()
  | Error _ -> ()

let test_sanity_checks_reject_malformed () =
  let platform, _, _ = setup () in
  let cases : Types.request list =
    [
      Types.Create
        { config = { Types.default_config with Types.code_pages = 0 } };
      Types.Create
        { config = { Types.default_config with Types.heap_pages = max_int / 2 } };
      Types.Alloc { enclave = 1; pages = 0 };
      Types.Alloc { enclave = 1; pages = -5 };
      Types.Writeback { pages_hint = 0 };
      Types.Writeback { pages_hint = 1_000_000 };
      Types.Free { enclave = 1; vpn = 0x100; pages = -1 };
    ]
  in
  List.iter
    (fun req ->
      let caller =
        match Types.required_privilege (Types.opcode_of_request req) with
        | Types.Os -> Emcall.Os_kernel
        | Types.User -> Emcall.User_enclave 1
      in
      match Platform.invoke platform ~caller req with
      | Ok (Types.Err _) -> ()
      | Ok _ -> Alcotest.fail "malformed request accepted"
      | Error _ -> ())
    cases

(* --- Cold boot / physical --- *)

let test_cold_boot_yields_no_plaintext () =
  let platform, enclave, _ = setup () in
  let frame = heap_frame platform enclave in
  let dump = Phys_mem.read (Platform.mem platform) ~frame in
  let secret = Bytes.of_string "TOP-SECRET-DATA" in
  let found = ref false in
  for i = 0 to Bytes.length dump - Bytes.length secret do
    if Bytes.equal (Bytes.sub dump i (Bytes.length secret)) secret then found := true
  done;
  check Alcotest.bool "no plaintext in the dump" false !found

let test_physical_tamper_detected () =
  let platform, enclave, session = setup () in
  let frame = heap_frame platform enclave in
  let mem = Platform.mem platform in
  let page = Phys_mem.read mem ~frame in
  Bytes.set page 0 (Char.chr (Char.code (Bytes.get page 0) lxor 0x80));
  Phys_mem.write mem ~frame page;
  match Session.read session ~va:(Session.heap_va session) ~len:4 with
  | _ -> Alcotest.fail "tampered memory went undetected"
  | exception Hypertee_arch.Mem_encryption.Integrity_violation _ -> ()

(* --- Timing-channel mitigations (structural checks) --- *)

let test_latency_is_quantised_and_jittered () =
  let _platform, _, session = setup () in
  (* Repeated identical primitives must not produce identical
     latencies (polling obfuscation). *)
  let samples =
    List.init 16 (fun _ ->
        match Session.alloc_timed session ~pages:1 with
        | Ok (va, l) ->
          ignore (Session.free session ~va ~pages:1);
          l
        | Error _ -> Alcotest.fail "alloc failed")
  in
  check Alcotest.bool "latencies vary" true (List.length (List.sort_uniq compare samples) > 4)

let suite =
  [
    ( "attacks.controlled_channels",
      [
        Alcotest.test_case "page-table remap blocked (vs SGX-like baseline)" `Quick
          test_os_cannot_read_enclave_via_remap;
        Alcotest.test_case "A/D-bit observation blocked" `Quick test_os_cannot_observe_enclave_ad_bits;
        Alcotest.test_case "allocation pattern hidden" `Quick test_allocation_pattern_hidden;
        Alcotest.test_case "swap selection concealed" `Quick test_swap_selection_not_attacker_controlled;
      ] );
    ( "attacks.communication",
      [
        Alcotest.test_case "shm frames unreachable from host" `Quick test_shm_key_never_reaches_cs;
        Alcotest.test_case "malicious enclave cannot hijack shm" `Quick
          test_malicious_enclave_cannot_hijack_shm;
        Alcotest.test_case "DMA confined to whitelist" `Quick test_dma_cannot_escape_window;
      ] );
    ( "attacks.forgery",
      [
        Alcotest.test_case "identity forgery rejected" `Quick test_enclave_cannot_impersonate;
        Alcotest.test_case "sanity checks reject malformed" `Quick test_sanity_checks_reject_malformed;
      ] );
    ( "attacks.physical",
      [
        Alcotest.test_case "cold boot yields ciphertext" `Quick test_cold_boot_yields_no_plaintext;
        Alcotest.test_case "tamper detected" `Quick test_physical_tamper_detected;
      ] );
    ( "attacks.timing",
      [ Alcotest.test_case "latency quantised and jittered" `Quick test_latency_is_quantised_and_jittered ] );
  ]
