(* Tests for hypertee_arch: PTE encoding, page tables, TLB, caches,
   bitmap, the Fig. 5 PTW flow, the memory-encryption engine, the
   mailbox, iHub, the area model and the perf model. *)

open Hypertee_arch

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick
let fresh_mem ?(frames = 512) () = Phys_mem.create ~frames

(* --- Pte --- *)

let test_pte_roundtrip_known () =
  let pte = Pte.leaf ~ppn:12345 ~r:true ~w:false ~x:true ~key_id:77 in
  let back = Pte.decode (Pte.encode pte) in
  check Alcotest.bool "equal" true (back = pte)

let prop_pte_roundtrip =
  prop
    (QCheck.Test.make ~name:"pte encode/decode roundtrip" ~count:300
       QCheck.(
         tup4 (int_bound ((1 lsl 28) - 1)) (int_bound ((1 lsl 16) - 1)) (tup3 bool bool bool)
           (tup3 bool bool bool))
       (fun (ppn, key_id, (r, w, x), (a, d, g)) ->
         let pte =
           {
             Pte.valid = true;
             readable = r;
             writable = w;
             executable = x;
             user = true;
             global = g;
             accessed = a;
             dirty = d;
             ppn;
             key_id;
           }
         in
         Pte.decode (Pte.encode pte) = pte))

let test_pte_invalid_args () =
  Alcotest.check_raises "ppn too large" (Invalid_argument "Pte.leaf: ppn out of range") (fun () ->
      ignore (Pte.leaf ~ppn:(1 lsl 28) ~r:true ~w:true ~x:false ~key_id:0));
  Alcotest.check_raises "key too large" (Invalid_argument "Pte.leaf: key_id out of range")
    (fun () -> ignore (Pte.leaf ~ppn:0 ~r:true ~w:true ~x:false ~key_id:(1 lsl 16)))

let test_pte_is_leaf () =
  check Alcotest.bool "table entry is not a leaf" false (Pte.is_leaf (Pte.table ~ppn:5));
  check Alcotest.bool "leaf is leaf" true
    (Pte.is_leaf (Pte.leaf ~ppn:5 ~r:true ~w:false ~x:false ~key_id:0))

(* --- Phys_mem --- *)

let test_phys_mem_ownership () =
  let mem = fresh_mem () in
  check Alcotest.bool "all free initially" true
    (Phys_mem.count_owned mem (fun o -> o = Phys_mem.Free) = Phys_mem.frames mem);
  Phys_mem.set_owner mem 3 (Phys_mem.Enclave 7);
  check Alcotest.bool "owner recorded" true (Phys_mem.owner mem 3 = Phys_mem.Enclave 7)

let test_phys_mem_rw () =
  let mem = fresh_mem () in
  let page = Bytes.make 4096 'z' in
  Phys_mem.write mem ~frame:5 page;
  check Alcotest.bytes "read back" page (Phys_mem.read mem ~frame:5);
  check Alcotest.bytes "unwritten reads zero" (Bytes.make 4096 '\000') (Phys_mem.read mem ~frame:6);
  Phys_mem.zero mem ~frame:5;
  check Alcotest.bytes "zeroed" (Bytes.make 4096 '\000') (Phys_mem.read mem ~frame:5)

let test_phys_mem_sub_access () =
  let mem = fresh_mem () in
  Phys_mem.write_sub mem ~frame:1 ~off:100 (Bytes.of_string "hello");
  check Alcotest.bytes "sub read" (Bytes.of_string "hello")
    (Phys_mem.read_sub mem ~frame:1 ~off:100 ~len:5);
  Phys_mem.write_u64 mem ~frame:1 ~off:8 42L;
  check Alcotest.int64 "u64" 42L (Phys_mem.read_u64 mem ~frame:1 ~off:8)

let test_phys_mem_bounds () =
  let mem = fresh_mem ~frames:4 () in
  Alcotest.check_raises "frame bounds" (Invalid_argument "Phys_mem: frame out of range") (fun () ->
      ignore (Phys_mem.owner mem 4));
  Alcotest.check_raises "write size" (Invalid_argument "Phys_mem.write: data must be one page")
    (fun () -> Phys_mem.write mem ~frame:0 (Bytes.create 5))

let test_phys_mem_find_free () =
  let mem = fresh_mem ~frames:8 () in
  Phys_mem.set_owner mem 0 Phys_mem.Cs_os;
  Phys_mem.set_owner mem 2 Phys_mem.Cs_os;
  (match Phys_mem.find_free mem ~n:3 with
  | Some fs -> check (Alcotest.list Alcotest.int) "skips used" [ 1; 3; 4 ] fs
  | None -> Alcotest.fail "should find frames");
  check Alcotest.bool "exhaustion" true (Phys_mem.find_free mem ~n:7 = None)

(* --- Page_table --- *)

let make_pt mem = Page_table.create mem ~node_owner:Phys_mem.Cs_os ~alloc:(Page_table.default_alloc mem)

let test_pt_map_lookup_unmap () =
  let mem = fresh_mem () in
  let pt = make_pt mem in
  let pte = Pte.leaf ~ppn:42 ~r:true ~w:true ~x:false ~key_id:3 in
  Page_table.map pt ~vpn:0x1234 pte;
  (match Page_table.lookup pt ~vpn:0x1234 with
  | Some got -> check Alcotest.int "ppn" 42 got.Pte.ppn
  | None -> Alcotest.fail "mapping lost");
  check Alcotest.bool "other vpn unmapped" true (Page_table.lookup pt ~vpn:0x1235 = None);
  Page_table.unmap pt ~vpn:0x1234;
  check Alcotest.bool "unmapped" true (Page_table.lookup pt ~vpn:0x1234 = None)

let test_pt_remap_replaces () =
  let mem = fresh_mem () in
  let pt = make_pt mem in
  Page_table.map pt ~vpn:7 (Pte.leaf ~ppn:1 ~r:true ~w:false ~x:false ~key_id:0);
  Page_table.map pt ~vpn:7 (Pte.leaf ~ppn:2 ~r:true ~w:true ~x:false ~key_id:0);
  match Page_table.lookup pt ~vpn:7 with
  | Some pte ->
    check Alcotest.int "replaced" 2 pte.Pte.ppn;
    check Alcotest.bool "writable now" true pte.Pte.writable
  | None -> Alcotest.fail "mapping lost"

let test_pt_nodes_owned () =
  let mem = fresh_mem () in
  let pt = Page_table.create mem ~node_owner:(Phys_mem.Page_table 9) ~alloc:(Page_table.default_alloc mem) in
  Page_table.map pt ~vpn:0 (Pte.leaf ~ppn:1 ~r:true ~w:true ~x:false ~key_id:0);
  Page_table.map pt ~vpn:(512 * 512) (Pte.leaf ~ppn:2 ~r:true ~w:true ~x:false ~key_id:0);
  let nodes = Page_table.node_frames pt in
  check Alcotest.bool "several nodes" true (List.length nodes >= 3);
  List.iter
    (fun f -> check Alcotest.bool "stamped" true (Phys_mem.owner mem f = Phys_mem.Page_table 9))
    nodes

let test_pt_walk_frames () =
  let mem = fresh_mem () in
  let pt = make_pt mem in
  Page_table.map pt ~vpn:99 (Pte.leaf ~ppn:5 ~r:true ~w:false ~x:false ~key_id:0);
  let walk = Page_table.walk_frames pt ~vpn:99 in
  check Alcotest.int "three levels" 3 (List.length walk);
  (match walk with
  | (root, _) :: _ -> check Alcotest.int "starts at root" (Page_table.root_frame pt) root
  | [] -> Alcotest.fail "empty walk");
  (* Unmapped address: walk stops at the first invalid entry. *)
  let short = Page_table.walk_frames pt ~vpn:((511 * 512 * 512) + 1) in
  check Alcotest.int "short walk" 1 (List.length short)

let test_pt_ad_bits () =
  let mem = fresh_mem () in
  let pt = make_pt mem in
  Page_table.map pt ~vpn:3 (Pte.leaf ~ppn:1 ~r:true ~w:true ~x:false ~key_id:0);
  Page_table.update_flags pt ~vpn:3 ~accessed:true ~dirty:false;
  (match Page_table.lookup pt ~vpn:3 with
  | Some pte ->
    check Alcotest.bool "A set" true pte.Pte.accessed;
    check Alcotest.bool "D clear" false pte.Pte.dirty
  | None -> Alcotest.fail "lost");
  Page_table.update_flags pt ~vpn:3 ~accessed:false ~dirty:true;
  match Page_table.lookup pt ~vpn:3 with
  | Some pte ->
    check Alcotest.bool "A sticky" true pte.Pte.accessed;
    check Alcotest.bool "D set" true pte.Pte.dirty
  | None -> Alcotest.fail "lost"

let prop_pt_matches_model =
  prop
    (QCheck.Test.make ~name:"page table behaves like a map" ~count:60
       QCheck.(list (pair (int_bound 4000) (option (int_bound 1000))))
       (fun ops ->
         (* (vpn, Some ppn) = map; (vpn, None) = unmap. *)
         let mem = Phys_mem.create ~frames:2048 in
         let pt = make_pt mem in
         let model = Hashtbl.create 16 in
         List.iter
           (fun (vpn, op) ->
             match op with
             | Some ppn ->
               Page_table.map pt ~vpn (Pte.leaf ~ppn ~r:true ~w:true ~x:false ~key_id:0);
               Hashtbl.replace model vpn ppn
             | None ->
               Page_table.unmap pt ~vpn;
               Hashtbl.remove model vpn)
           ops;
         (* Compare every vpn ever touched plus the entries listing. *)
         List.for_all
           (fun (vpn, _) ->
             match (Page_table.lookup pt ~vpn, Hashtbl.find_opt model vpn) with
             | Some pte, Some ppn -> pte.Pte.ppn = ppn
             | None, None -> true
             | _ -> false)
           ops
         && List.length (Page_table.entries pt) = Hashtbl.length model))

(* --- Tlb --- *)

let entry vpn ppn = { Tlb.vpn; pte = Pte.leaf ~ppn ~r:true ~w:true ~x:false ~key_id:0; checked = false }

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~entries:4 in
  check Alcotest.bool "cold miss" true (Tlb.lookup tlb ~vpn:1 = None);
  Tlb.insert tlb (entry 1 10);
  (match Tlb.lookup tlb ~vpn:1 with
  | Some e -> check Alcotest.int "hit ppn" 10 e.Tlb.pte.Pte.ppn
  | None -> Alcotest.fail "expected hit");
  check Alcotest.int "hits" 1 (Tlb.hits tlb);
  check Alcotest.int "misses" 1 (Tlb.misses tlb)

let test_tlb_lru_eviction () =
  let tlb = Tlb.create ~entries:2 in
  Tlb.insert tlb (entry 1 10);
  Tlb.insert tlb (entry 2 20);
  ignore (Tlb.lookup tlb ~vpn:1);
  (* 2 is now LRU *)
  Tlb.insert tlb (entry 3 30);
  check Alcotest.bool "1 survives" true (Tlb.lookup tlb ~vpn:1 <> None);
  check Alcotest.bool "2 evicted" true (Tlb.lookup tlb ~vpn:2 = None);
  check Alcotest.bool "3 resident" true (Tlb.lookup tlb ~vpn:3 <> None)

let test_tlb_flush () =
  let tlb = Tlb.create ~entries:4 in
  Tlb.insert tlb (entry 1 10);
  Tlb.insert tlb (entry 2 20);
  Tlb.flush tlb;
  check Alcotest.int "empty" 0 (Tlb.occupancy tlb);
  check Alcotest.int "flush counted" 1 (Tlb.flushes tlb);
  Tlb.insert tlb (entry 3 30);
  Tlb.flush_vpn tlb ~vpn:3;
  check Alcotest.bool "targeted invalidation" true (Tlb.lookup tlb ~vpn:3 = None)

let test_tlb_mark_checked () =
  let tlb = Tlb.create ~entries:4 in
  Tlb.insert tlb (entry 5 50);
  Tlb.mark_checked tlb ~vpn:5;
  match Tlb.lookup tlb ~vpn:5 with
  | Some e -> check Alcotest.bool "checked" true e.Tlb.checked
  | None -> Alcotest.fail "entry lost"

let test_tlb_capacity_respected () =
  let tlb = Tlb.create ~entries:8 in
  for i = 0 to 63 do
    Tlb.insert tlb (entry i i)
  done;
  check Alcotest.int "never above capacity" 8 (Tlb.occupancy tlb)

(* --- Cache --- *)

let test_cache_geometry () =
  let c = Cache.create ~size_bytes:(64 * 1024) ~ways:8 ~line_bytes:64 in
  check Alcotest.int "sets" 128 (Cache.sets c);
  check Alcotest.int "ways" 8 (Cache.ways c);
  check Alcotest.int "line" 64 (Cache.line_bytes c)

let test_cache_hit_after_fill () =
  let c = Cache.create ~size_bytes:1024 ~ways:2 ~line_bytes:64 in
  check Alcotest.bool "first access misses" false (Cache.access c ~addr:0);
  check Alcotest.bool "second hits" true (Cache.access c ~addr:0);
  check Alcotest.bool "same line hits" true (Cache.access c ~addr:63);
  check Alcotest.bool "next line misses" false (Cache.access c ~addr:64)

let test_cache_lru_within_set () =
  let c = Cache.create ~size_bytes:(2 * 64) ~ways:2 ~line_bytes:64 in
  (* One set, two ways: three distinct lines thrash. *)
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:64);
  ignore (Cache.access c ~addr:0);
  (* 64 is LRU *)
  ignore (Cache.access c ~addr:128);
  check Alcotest.bool "0 survives" true (Cache.probe c ~addr:0);
  check Alcotest.bool "64 evicted" false (Cache.probe c ~addr:64)

let test_cache_invalidate () =
  let c = Cache.create ~size_bytes:1024 ~ways:2 ~line_bytes:64 in
  ignore (Cache.access c ~addr:0);
  Cache.invalidate_all c;
  check Alcotest.bool "gone" false (Cache.probe c ~addr:0)

let test_cache_counters () =
  let c = Cache.create ~size_bytes:1024 ~ways:2 ~line_bytes:64 in
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:0);
  check Alcotest.int "hits" 1 (Cache.hits c);
  check Alcotest.int "misses" 1 (Cache.misses c);
  Cache.reset_counters c;
  check Alcotest.int "reset" 0 (Cache.hits c)

(* --- Bitmap --- *)

let test_bitmap_set_get_clear () =
  let mem = fresh_mem () in
  let bm = Bitmap.create mem in
  check Alcotest.bool "initially clear" false (Bitmap.get bm ~frame:10);
  Bitmap.set bm ~frame:10;
  check Alcotest.bool "set" true (Bitmap.get bm ~frame:10);
  check Alcotest.bool "neighbours untouched" false (Bitmap.get bm ~frame:11 || Bitmap.get bm ~frame:9);
  Bitmap.clear bm ~frame:10;
  check Alcotest.bool "cleared" false (Bitmap.get bm ~frame:10)

let test_bitmap_self_protecting () =
  let mem = fresh_mem () in
  let bm = Bitmap.create mem in
  (* The region's own frames are marked enclave memory. *)
  let base = Bitmap.base_frame bm in
  for f = base to base + Bitmap.region_frames bm - 1 do
    check Alcotest.bool "own frame protected" true (Bitmap.get bm ~frame:f);
    check Alcotest.bool "owner stamped" true (Phys_mem.owner mem f = Phys_mem.Bitmap_region)
  done

let test_bitmap_lives_in_memory () =
  (* The bits are real memory contents: flipping them through
     Phys_mem is visible to the checker (and vice versa). *)
  let mem = fresh_mem () in
  let bm = Bitmap.create mem in
  Bitmap.set bm ~frame:0;
  let b = Phys_mem.read_sub mem ~frame:(Bitmap.base_frame bm) ~off:0 ~len:1 in
  check Alcotest.int "bit 0 set in stored byte" 1 (Char.code (Bytes.get b 0) land 1)

let prop_bitmap_popcount =
  prop
    (QCheck.Test.make ~name:"popcount tracks distinct sets" ~count:30
       QCheck.(list_of_size Gen.(int_range 0 40) (int_bound 300))
       (fun frames ->
         let mem = Phys_mem.create ~frames:512 in
         let bm = Bitmap.create mem in
         let base_pop = Bitmap.popcount bm in
         List.iter (fun f -> Bitmap.set bm ~frame:f) frames;
         Bitmap.popcount bm = base_pop + List.length (List.sort_uniq compare frames)))

(* --- Ptw (Fig. 5) --- *)

let ptw_fixture () =
  let mem = fresh_mem () in
  let bm = Bitmap.create mem in
  let pt = make_pt mem in
  let ptw = Ptw.create (Tlb.create ~entries:8) ~bitmap:bm in
  (mem, bm, pt, ptw)

let test_ptw_walk_then_tlb_hit () =
  let _, _, pt, ptw = ptw_fixture () in
  Page_table.map pt ~vpn:5 (Pte.leaf ~ppn:50 ~r:true ~w:false ~x:false ~key_id:0);
  (match Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Read with
  | Ok o ->
    check Alcotest.bool "miss walked" false o.Ptw.tlb_hit;
    check Alcotest.int "levels" 3 o.Ptw.walked_levels;
    check Alcotest.bool "bitmap consulted" true o.Ptw.bitmap_checked;
    check Alcotest.int "frame" 50 o.Ptw.frame;
    check Alcotest.bool "charged cycles" true (o.Ptw.cycles > 0)
  | Error _ -> Alcotest.fail "translation failed");
  match Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Read with
  | Ok o ->
    check Alcotest.bool "now hits" true o.Ptw.tlb_hit;
    check Alcotest.bool "no recheck" false o.Ptw.bitmap_checked;
    check Alcotest.int "free" 0 o.Ptw.cycles
  | Error _ -> Alcotest.fail "hit failed"

let test_ptw_page_fault () =
  let _, _, pt, ptw = ptw_fixture () in
  match Ptw.translate ptw ~table:pt ~vpn:1234 ~access:Ptw.Read with
  | Error Ptw.Page_fault -> ()
  | _ -> Alcotest.fail "expected page fault"

let test_ptw_permission_fault () =
  let _, _, pt, ptw = ptw_fixture () in
  Page_table.map pt ~vpn:5 (Pte.leaf ~ppn:50 ~r:true ~w:false ~x:false ~key_id:0);
  (match Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Write with
  | Error Ptw.Permission_fault -> ()
  | _ -> Alcotest.fail "expected permission fault");
  (* And on a resident (checked) entry too. *)
  ignore (Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Read);
  match Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Write with
  | Error Ptw.Permission_fault -> ()
  | _ -> Alcotest.fail "expected permission fault on TLB hit"

let test_ptw_bitmap_fault_non_enclave () =
  let _, bm, pt, ptw = ptw_fixture () in
  Bitmap.set bm ~frame:50;
  Page_table.map pt ~vpn:5 (Pte.leaf ~ppn:50 ~r:true ~w:true ~x:false ~key_id:0);
  (match Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Read with
  | Error Ptw.Bitmap_fault -> ()
  | _ -> Alcotest.fail "expected bitmap fault");
  check Alcotest.int "fault counted" 1 (Ptw.bitmap_faults ptw);
  (* The faulting translation must not be cached. *)
  match Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Read with
  | Error Ptw.Bitmap_fault -> ()
  | _ -> Alcotest.fail "fault must repeat (no TLB pollution)"

let test_ptw_enclave_mode_skips_bitmap () =
  let _, bm, pt, ptw = ptw_fixture () in
  Bitmap.set bm ~frame:50;
  Page_table.map pt ~vpn:5 (Pte.leaf ~ppn:50 ~r:true ~w:true ~x:false ~key_id:4);
  Ptw.set_enclave_mode ptw true;
  (match Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Read with
  | Ok o ->
    check Alcotest.bool "no bitmap check in enclave mode" false o.Ptw.bitmap_checked;
    check Alcotest.int "key id carried" 4 o.Ptw.key_id
  | Error _ -> Alcotest.fail "enclave access should succeed");
  check Alcotest.bool "mode readable" true (Ptw.enclave_mode ptw)

let test_ptw_mode_switch_flushes () =
  let _, _, pt, ptw = ptw_fixture () in
  Page_table.map pt ~vpn:5 (Pte.leaf ~ppn:50 ~r:true ~w:false ~x:false ~key_id:0);
  ignore (Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Read);
  check Alcotest.int "resident" 1 (Tlb.occupancy (Ptw.tlb ptw));
  Ptw.set_enclave_mode ptw true;
  check Alcotest.int "flushed on switch" 0 (Tlb.occupancy (Ptw.tlb ptw))

let test_ptw_ad_update () =
  let _, _, pt, ptw = ptw_fixture () in
  Page_table.map pt ~vpn:5 (Pte.leaf ~ppn:50 ~r:true ~w:true ~x:false ~key_id:0);
  ignore (Ptw.translate ptw ~table:pt ~vpn:5 ~access:Ptw.Write);
  match Page_table.lookup pt ~vpn:5 with
  | Some pte ->
    check Alcotest.bool "accessed" true pte.Pte.accessed;
    check Alcotest.bool "dirty" true pte.Pte.dirty
  | None -> Alcotest.fail "lost"

(* --- Mem_encryption --- *)

let test_mee_roundtrip () =
  let mee = Mem_encryption.create ~slots:8 () in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'k');
  let page = Bytes.make 4096 'd' in
  let ct = Mem_encryption.store mee ~key_id:1 ~frame:7 page in
  check Alcotest.bool "ciphertext differs" false (Bytes.equal ct page);
  check Alcotest.bytes "load decrypts" page (Mem_encryption.load mee ~key_id:1 ~frame:7 ct)

let test_mee_bypass_slot () =
  let mee = Mem_encryption.create ~slots:8 () in
  let page = Bytes.make 4096 'd' in
  check Alcotest.bytes "key 0 is plaintext" page (Mem_encryption.store mee ~key_id:0 ~frame:1 page)

let test_mee_integrity () =
  let mee = Mem_encryption.create ~slots:8 () in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'k');
  let ct = Mem_encryption.store mee ~key_id:1 ~frame:7 (Bytes.make 4096 'd') in
  let tampered = Bytes.copy ct in
  Bytes.set tampered 100 (Char.chr (Char.code (Bytes.get tampered 100) lxor 1));
  Alcotest.check_raises "tamper detected" (Mem_encryption.Integrity_violation { frame = 7 })
    (fun () -> ignore (Mem_encryption.load mee ~key_id:1 ~frame:7 tampered))

let test_mee_uninitialised_faults () =
  let mee = Mem_encryption.create ~slots:8 () in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'k');
  Alcotest.check_raises "no MAC on record" (Mem_encryption.Integrity_violation { frame = 3 })
    (fun () -> ignore (Mem_encryption.load mee ~key_id:1 ~frame:3 (Bytes.make 4096 'x')))

let test_mee_cross_key () =
  let mee = Mem_encryption.create ~slots:8 () in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'a');
  Mem_encryption.program mee ~key_id:2 (Bytes.make 16 'b');
  let ct1 = Mem_encryption.store mee ~key_id:1 ~frame:7 (Bytes.make 4096 'd') in
  (* Loading another enclave's line under your own key must not
     yield its plaintext (and faults the MAC). *)
  (match Mem_encryption.load mee ~key_id:2 ~frame:7 ct1 with
  | _ -> ()
  | exception Mem_encryption.Integrity_violation _ -> ());
  check Alcotest.bool "cross-key read is not plaintext" true
    (try not (Bytes.equal (Mem_encryption.load mee ~key_id:2 ~frame:7 ct1) (Bytes.make 4096 'd'))
     with Mem_encryption.Integrity_violation _ -> true)

let test_mee_revoke_and_reuse () =
  let mee = Mem_encryption.create ~slots:4 () in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'a');
  let ct = Mem_encryption.store mee ~key_id:1 ~frame:2 (Bytes.make 4096 's') in
  Mem_encryption.revoke mee ~key_id:1;
  check Alcotest.bool "slot free" false (Mem_encryption.is_programmed mee ~key_id:1);
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'b');
  (* Old ciphertext must not satisfy the MAC of the new tenant. *)
  Alcotest.check_raises "stale line rejected" (Mem_encryption.Integrity_violation { frame = 2 })
    (fun () -> ignore (Mem_encryption.load mee ~key_id:1 ~frame:2 ct))

let test_mee_slot_management () =
  let mee = Mem_encryption.create ~slots:4 () in
  check (Alcotest.option Alcotest.int) "first free" (Some 1) (Mem_encryption.find_free_slot mee);
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'a');
  Mem_encryption.program mee ~key_id:2 (Bytes.make 16 'b');
  Mem_encryption.program mee ~key_id:3 (Bytes.make 16 'c');
  check (Alcotest.option Alcotest.int) "exhausted" None (Mem_encryption.find_free_slot mee);
  Alcotest.check_raises "key 0 not programmable"
    (Invalid_argument "Mem_encryption: key_id out of programmable range") (fun () ->
      Mem_encryption.program mee ~key_id:0 (Bytes.make 16 'z'))

(* --- Mailbox --- *)

let respond_ok mb ~request_id body =
  match Mailbox.send_response mb ~request_id body with
  | Ok () -> ()
  | Error `Unknown_or_answered -> Alcotest.fail "send_response rejected a live request id"

let test_mailbox_request_response () =
  let mb = Mailbox.create () in
  let id1 = Result.get_ok (Mailbox.send_request mb ~sender_enclave:None "req1") in
  let id2 = Result.get_ok (Mailbox.send_request mb ~sender_enclave:(Some 4) "req2") in
  check Alcotest.bool "distinct ids" true (id1 <> id2);
  (match Mailbox.recv_request mb with
  | Some p ->
    check Alcotest.string "fifo order" "req1" p.Mailbox.body;
    check (Alcotest.option Alcotest.int) "host sender" None p.Mailbox.sender_enclave;
    respond_ok mb ~request_id:p.Mailbox.request_id "resp1"
  | None -> Alcotest.fail "no request");
  (match Mailbox.recv_request mb with
  | Some p ->
    check (Alcotest.option Alcotest.int) "enclave stamped" (Some 4) p.Mailbox.sender_enclave;
    respond_ok mb ~request_id:p.Mailbox.request_id "resp2"
  | None -> Alcotest.fail "no request");
  (* Responses are bound to their ids — collecting with the wrong id
     never yields another's response. *)
  check (Alcotest.option Alcotest.string) "id binding" (Some "resp2") (Mailbox.poll_response mb ~request_id:id2);
  check (Alcotest.option Alcotest.string) "consumed once" None (Mailbox.poll_response mb ~request_id:id2);
  check (Alcotest.option Alcotest.string) "other response intact" (Some "resp1")
    (Mailbox.poll_response mb ~request_id:id1)

let test_mailbox_unknown_response_rejected () =
  let mb : (string, string) Mailbox.t = Mailbox.create () in
  (* A faulty worker answering an unknown id gets an error back, not
     an exception: the platform must survive confused workers. *)
  (match Mailbox.send_response mb ~request_id:999 "spoof" with
  | Error `Unknown_or_answered -> ()
  | Ok () -> Alcotest.fail "spoofed response accepted");
  (* Same for a double answer: the first one wins, the second is
     rejected and the delivered value is the first. *)
  let id = Result.get_ok (Mailbox.send_request mb ~sender_enclave:None "req") in
  (match Mailbox.recv_request mb with
  | Some p -> respond_ok mb ~request_id:p.Mailbox.request_id "first"
  | None -> Alcotest.fail "no request");
  (match Mailbox.send_response mb ~request_id:id "second" with
  | Error `Unknown_or_answered -> ()
  | Ok () -> Alcotest.fail "double answer accepted");
  check (Alcotest.option Alcotest.string) "first answer delivered" (Some "first")
    (Mailbox.poll_response mb ~request_id:id)

let test_mailbox_retransmit_cache () =
  let mb : (string, string) Mailbox.t = Mailbox.create () in
  let id = Result.get_ok (Mailbox.send_request mb ~sender_enclave:None "req") in
  check Alcotest.bool "pending before answer" true (Mailbox.resend_request mb ~request_id:id = `Pending);
  (match Mailbox.recv_request mb with
  | Some p -> respond_ok mb ~request_id:p.Mailbox.request_id "resp"
  | None -> Alcotest.fail "no request");
  check (Alcotest.option Alcotest.string) "delivered" (Some "resp")
    (Mailbox.poll_response mb ~request_id:id);
  (* A retransmit after consumption re-posts the cached response
     without re-executing anything EMS-side. *)
  check Alcotest.bool "retransmitted from cache" true
    (Mailbox.resend_request mb ~request_id:id = `Retransmitted);
  check Alcotest.int "no new request enqueued" 0 (Mailbox.pending_requests mb);
  check (Alcotest.option Alcotest.string) "cached copy delivered" (Some "resp")
    (Mailbox.poll_response mb ~request_id:id);
  check Alcotest.bool "unknown id" true (Mailbox.resend_request mb ~request_id:777 = `Unknown)

let test_mailbox_backpressure () =
  let mb : (int, int) Mailbox.t = Mailbox.create ~depth:2 () in
  ignore (Mailbox.send_request mb ~sender_enclave:None 1);
  ignore (Mailbox.send_request mb ~sender_enclave:None 2);
  (match Mailbox.send_request mb ~sender_enclave:None 3 with
  | Error `Full -> ()
  | Ok _ -> Alcotest.fail "expected back-pressure");
  check Alcotest.int "pending" 2 (Mailbox.pending_requests mb)

(* --- Ihub --- *)

let test_ihub_unidirectional () =
  let mem = fresh_mem () in
  let hub = Ihub.create mem in
  Phys_mem.set_owner mem 9 Phys_mem.Ems_private;
  check Alcotest.bool "EMS reads everything" true
    (Ihub.check hub ~initiator:Ihub.Ems ~direction:Ihub.Load ~frame:9 = Ok ());
  (match Ihub.check hub ~initiator:Ihub.Cs_software ~direction:Ihub.Load ~frame:9 with
  | Error Ihub.Ems_private_memory -> ()
  | _ -> Alcotest.fail "CS must not see EMS memory");
  check Alcotest.int "denial counted" 1 (Ihub.denials hub)

let test_ihub_dma_whitelist () =
  let mem = fresh_mem () in
  let hub = Ihub.create mem in
  (match Ihub.check hub ~initiator:(Ihub.Dma 0) ~direction:Ihub.Load ~frame:5 with
  | Error Ihub.Outside_dma_window -> ()
  | _ -> Alcotest.fail "no window means no access");
  Ihub.configure_dma_window hub ~channel:0 ~base_frame:4 ~frames:4 ~writable:false;
  check Alcotest.bool "inside window read" true
    (Ihub.check hub ~initiator:(Ihub.Dma 0) ~direction:Ihub.Load ~frame:5 = Ok ());
  (match Ihub.check hub ~initiator:(Ihub.Dma 0) ~direction:Ihub.Store ~frame:5 with
  | Error Ihub.Dma_window_readonly -> ()
  | _ -> Alcotest.fail "read-only window must reject stores");
  (match Ihub.check hub ~initiator:(Ihub.Dma 0) ~direction:Ihub.Load ~frame:8 with
  | Error Ihub.Outside_dma_window -> ()
  | _ -> Alcotest.fail "beyond window rejected");
  Ihub.clear_dma_window hub ~channel:0;
  (match Ihub.check hub ~initiator:(Ihub.Dma 0) ~direction:Ihub.Load ~frame:5 with
  | Error Ihub.Outside_dma_window -> ()
  | _ -> Alcotest.fail "cleared window blocks")

let test_ihub_channels_isolated () =
  let mem = fresh_mem () in
  let hub = Ihub.create mem in
  Ihub.configure_dma_window hub ~channel:1 ~base_frame:0 ~frames:4 ~writable:true;
  match Ihub.check hub ~initiator:(Ihub.Dma 2) ~direction:Ihub.Load ~frame:1 with
  | Error Ihub.Outside_dma_window -> ()
  | _ -> Alcotest.fail "channel 2 must not use channel 1's window"

(* --- Area (Table V) --- *)

let test_area_anchors () =
  let reports = Area.table_v () in
  check Alcotest.int "five columns" 5 (List.length reports);
  List.iter
    (fun (r : Area.report) ->
      check Alcotest.bool
        (Printf.sprintf "%d cores under 1%%" r.Area.cs_cores)
        true (r.Area.overhead_pct < 1.0))
    reports;
  (* Exact paper anchors. *)
  let by_cores n = List.find (fun r -> r.Area.cs_cores = n) reports in
  check (Alcotest.float 0.01) "4-core CS" 35.0 (by_cores 4).Area.cs_area_mm2;
  check (Alcotest.float 0.01) "64-core CS" 612.0 (by_cores 64).Area.cs_area_mm2;
  check (Alcotest.float 0.001) "1 weak EMS" 0.34 (by_cores 4).Area.ems_area_mm2;
  check (Alcotest.float 0.001) "2 medium EMS" 1.5 (by_cores 64).Area.ems_area_mm2;
  check (Alcotest.float 0.03) "4-core overhead" 0.97 (by_cores 4).Area.overhead_pct;
  check (Alcotest.float 0.03) "64-core overhead" 0.25 (by_cores 64).Area.overhead_pct

let test_area_interpolation () =
  let r = Area.evaluate ~cs_cores:12 in
  check Alcotest.bool "between anchors" true
    (r.Area.cs_area_mm2 > 74.0 && r.Area.cs_area_mm2 < 151.0)

(* --- Perf_model --- *)

let light_behavior =
  {
    Perf_model.mem_refs_per_kinst = 300.0;
    l1_mpki = 5.0;
    l2_mpki = 1.0;
    llc_mpki = 0.5;
    tlb_mpki = 0.3;
  }

let test_perf_scenarios_ordered () =
  let run scenario =
    (Perf_model.run Config.cs_core Config.default_latency ~instructions:1e9
       ~behavior:light_behavior ~scenario)
      .Perf_model.time_ns
  in
  let native = run Perf_model.native in
  let enc = run Perf_model.m_encrypt in
  let bm = run Perf_model.bitmap in
  check Alcotest.bool "encryption costs" true (enc > native);
  check Alcotest.bool "bitmap costs" true (bm > native);
  check Alcotest.bool "overheads are small" true (enc < native *. 1.10 && bm < native *. 1.10)

let test_perf_inorder_slower () =
  let time core =
    (Perf_model.run core Config.default_latency ~instructions:1e8 ~behavior:light_behavior
       ~scenario:Perf_model.native)
      .Perf_model.time_ns
  in
  check Alcotest.bool "weak slower than CS" true (time Config.ems_weak > time Config.cs_core)

let test_perf_flushes_cost () =
  let run f =
    (Perf_model.run Config.cs_core Config.default_latency ~instructions:1e9
       ~behavior:light_behavior
       ~scenario:{ Perf_model.native with extra_tlb_flushes_per_sec = f })
      .Perf_model.time_ns
  in
  check Alcotest.bool "flushes add time" true (run 400.0 > run 0.0);
  check Alcotest.bool "monotone in frequency" true (run 400.0 > run 100.0)

let suite =
  [
    ( "arch.pte",
      [
        Alcotest.test_case "roundtrip" `Quick test_pte_roundtrip_known;
        Alcotest.test_case "invalid args" `Quick test_pte_invalid_args;
        Alcotest.test_case "is_leaf" `Quick test_pte_is_leaf;
        prop_pte_roundtrip;
      ] );
    ( "arch.phys_mem",
      [
        Alcotest.test_case "ownership" `Quick test_phys_mem_ownership;
        Alcotest.test_case "read/write" `Quick test_phys_mem_rw;
        Alcotest.test_case "sub access" `Quick test_phys_mem_sub_access;
        Alcotest.test_case "bounds" `Quick test_phys_mem_bounds;
        Alcotest.test_case "find_free" `Quick test_phys_mem_find_free;
      ] );
    ( "arch.page_table",
      [
        Alcotest.test_case "map/lookup/unmap" `Quick test_pt_map_lookup_unmap;
        Alcotest.test_case "remap replaces" `Quick test_pt_remap_replaces;
        Alcotest.test_case "nodes owned" `Quick test_pt_nodes_owned;
        Alcotest.test_case "walk frames" `Quick test_pt_walk_frames;
        Alcotest.test_case "A/D bits" `Quick test_pt_ad_bits;
        prop_pt_matches_model;
      ] );
    ( "arch.tlb",
      [
        Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
        Alcotest.test_case "LRU eviction" `Quick test_tlb_lru_eviction;
        Alcotest.test_case "flush" `Quick test_tlb_flush;
        Alcotest.test_case "mark checked" `Quick test_tlb_mark_checked;
        Alcotest.test_case "capacity" `Quick test_tlb_capacity_respected;
      ] );
    ( "arch.cache",
      [
        Alcotest.test_case "geometry" `Quick test_cache_geometry;
        Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
        Alcotest.test_case "LRU within set" `Quick test_cache_lru_within_set;
        Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        Alcotest.test_case "counters" `Quick test_cache_counters;
      ] );
    ( "arch.bitmap",
      [
        Alcotest.test_case "set/get/clear" `Quick test_bitmap_set_get_clear;
        Alcotest.test_case "self-protecting" `Quick test_bitmap_self_protecting;
        Alcotest.test_case "bits live in memory" `Quick test_bitmap_lives_in_memory;
        prop_bitmap_popcount;
      ] );
    ( "arch.ptw",
      [
        Alcotest.test_case "walk then TLB hit (Fig. 5)" `Quick test_ptw_walk_then_tlb_hit;
        Alcotest.test_case "page fault" `Quick test_ptw_page_fault;
        Alcotest.test_case "permission fault" `Quick test_ptw_permission_fault;
        Alcotest.test_case "bitmap fault" `Quick test_ptw_bitmap_fault_non_enclave;
        Alcotest.test_case "enclave mode skips bitmap" `Quick test_ptw_enclave_mode_skips_bitmap;
        Alcotest.test_case "mode switch flushes TLB" `Quick test_ptw_mode_switch_flushes;
        Alcotest.test_case "A/D updates" `Quick test_ptw_ad_update;
      ] );
    ( "arch.mem_encryption",
      [
        Alcotest.test_case "roundtrip" `Quick test_mee_roundtrip;
        Alcotest.test_case "bypass slot" `Quick test_mee_bypass_slot;
        Alcotest.test_case "integrity violation" `Quick test_mee_integrity;
        Alcotest.test_case "uninitialised faults" `Quick test_mee_uninitialised_faults;
        Alcotest.test_case "cross-key isolation" `Quick test_mee_cross_key;
        Alcotest.test_case "revoke and reuse" `Quick test_mee_revoke_and_reuse;
        Alcotest.test_case "slot management" `Quick test_mee_slot_management;
      ] );
    ( "arch.mailbox",
      [
        Alcotest.test_case "request/response binding" `Quick test_mailbox_request_response;
        Alcotest.test_case "unknown response rejected" `Quick test_mailbox_unknown_response_rejected;
        Alcotest.test_case "retransmit cache" `Quick test_mailbox_retransmit_cache;
        Alcotest.test_case "back-pressure" `Quick test_mailbox_backpressure;
      ] );
    ( "arch.ihub",
      [
        Alcotest.test_case "unidirectional isolation" `Quick test_ihub_unidirectional;
        Alcotest.test_case "DMA whitelist" `Quick test_ihub_dma_whitelist;
        Alcotest.test_case "channels isolated" `Quick test_ihub_channels_isolated;
      ] );
    ( "arch.area",
      [
        Alcotest.test_case "Table V anchors" `Quick test_area_anchors;
        Alcotest.test_case "interpolation" `Quick test_area_interpolation;
      ] );
    ( "arch.perf_model",
      [
        Alcotest.test_case "scenario ordering" `Quick test_perf_scenarios_ordered;
        Alcotest.test_case "in-order slower" `Quick test_perf_inorder_slower;
        Alcotest.test_case "flush cost" `Quick test_perf_flushes_cost;
      ] );
  ]
