(* Cross-cutting property tests: randomized operation sequences
   checked against reference models, at the platform level rather
   than per module. *)

open Hypertee
module Types = Hypertee_ems.Types
module Mem_pool = Hypertee_ems.Mem_pool
module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap

let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

(* One platform + enclave shared across property iterations: platform
   creation costs two RSA keygens, and the properties only need fresh
   operation sequences, not fresh platforms. *)
let shared = lazy (
  let platform = Platform.create ~seed:0x9909L () in
  let image = Sdk.image_of_code ~code:(Bytes.of_string "prop enclave") ~data:Bytes.empty () in
  let enclave = Result.get_ok (Sdk.launch platform image) in
  let session = Result.get_ok (Sdk.enter platform ~enclave) in
  (platform, session))

(* --- Session memory behaves like a byte array --- *)

let prop_session_memory_model =
  prop
    (QCheck.Test.make ~name:"session heap = reference byte array" ~count:30
       QCheck.(list_of_size Gen.(int_range 1 20) (tup2 (int_bound 12000) (string_of_size Gen.(int_range 1 64))))
       (fun writes ->
         let _, session = Lazy.force shared in
         let heap = Session.heap_va session in
         let model = Bytes.make 16384 '\000' in
         (* Initialise both sides to a known state. *)
         Session.write session ~va:heap (Bytes.make 16384 '\000');
         List.iter
           (fun (off, s) ->
             let data = Bytes.of_string s in
             Session.write session ~va:(heap + off) data;
             Bytes.blit data 0 model off (Bytes.length data))
           writes;
         Bytes.equal (Session.read session ~va:heap ~len:16384) model))

let prop_session_rw_roundtrip_any_span =
  prop
    (QCheck.Test.make ~name:"rw roundtrip across page boundaries" ~count:50
       QCheck.(tup2 (int_bound 20000) (string_of_size Gen.(int_range 0 9000)))
       (fun (off, s) ->
         let _, session = Lazy.force shared in
         let heap = Session.heap_va session in
         let data = Bytes.of_string s in
         Session.write session ~va:(heap + off) data;
         Bytes.equal (Session.read session ~va:(heap + off) ~len:(Bytes.length data)) data))

(* --- Alloc/free sequences keep the pool and ownership consistent --- *)

let prop_alloc_free_consistency =
  prop
    (QCheck.Test.make ~name:"alloc/free storm keeps invariants" ~count:15
       QCheck.(list_of_size Gen.(int_range 1 30) (int_range 1 8))
       (fun sizes ->
         let platform, session = Lazy.force shared in
         let allocated =
           List.filter_map
             (fun pages ->
               match Session.alloc session ~pages with
               | Ok va -> Some (va, pages)
               | Error _ -> None)
             sizes
         in
         (* Every allocation landed on distinct pages. *)
         let ranges =
           List.concat_map (fun (va, pages) -> List.init pages (fun i -> (va / 4096) + i)) allocated
         in
         let distinct = List.length ranges = List.length (List.sort_uniq compare ranges) in
         (* Free everything; the ownership table must not still record
            the freed frames as this enclave's. *)
         List.iter (fun (va, pages) -> ignore (Session.free session ~va ~pages)) allocated;
         let runtime = Platform.Internals.runtime platform in
         let owned =
           Hypertee_ems.Ownership.frames_of
             (Hypertee_ems.Runtime.ownership runtime)
             (Session.enclave_id session)
         in
         let bitmap = Platform.Internals.bitmap platform in
         let bitmap_consistent =
           List.for_all (fun f -> Bitmap.get bitmap ~frame:f) owned
         in
         distinct && bitmap_consistent))

(* --- CVM snapshot/restore is the identity on guest memory --- *)

let prop_cvm_snapshot_identity =
  prop
    (QCheck.Test.make ~name:"CVM snapshot/restore identity" ~count:10
       QCheck.(list_of_size Gen.(int_range 1 8) (tup2 (int_bound 12000) (string_of_size Gen.(int_range 1 100))))
       (fun writes ->
         let m = Hypertee_cvm.Manager.create (Platform.create ~seed:0xCCCL ()) in
         let cvm =
           Result.get_ok (Hypertee_cvm.Manager.launch m ~vcpus:1 ~memory_pages:4 ~image:Bytes.empty)
         in
         List.iter
           (fun (gpa, s) ->
             ignore (Hypertee_cvm.Manager.guest_write m cvm ~gpa (Bytes.of_string s)))
           writes;
         let before = Result.get_ok (Hypertee_cvm.Manager.guest_read m cvm ~gpa:0 ~len:16384) in
         let snap = Result.get_ok (Hypertee_cvm.Manager.snapshot m cvm) in
         let restored = Result.get_ok (Hypertee_cvm.Manager.restore m snap) in
         let after = Result.get_ok (Hypertee_cvm.Manager.guest_read m restored ~gpa:0 ~len:16384) in
         Bytes.equal before after))

(* --- Bignum algebra --- *)

let prop_modpow_homomorphism =
  prop
    (QCheck.Test.make ~name:"a^(b+c) = a^b * a^c (mod p)" ~count:60
       QCheck.(tup3 (int_range 2 1000000) (int_bound 5000) (int_bound 5000))
       (fun (a, b, c) ->
         let open Hypertee_crypto.Bignum in
         let p = of_int 1000003 in
         let a = of_int a and bb = of_int b and cc = of_int c in
         let lhs = mod_pow ~base:a ~exp:(add bb cc) ~modulus:p in
         let rhs = rem (mul (mod_pow ~base:a ~exp:bb ~modulus:p) (mod_pow ~base:a ~exp:cc ~modulus:p)) p in
         equal lhs rhs))

let prop_seal_binds_measurement =
  prop
    (QCheck.Test.make ~name:"sealed blobs never unseal under another measurement" ~count:25
       QCheck.(tup2 (string_of_size Gen.(int_range 1 60)) (string_of_size Gen.(int_range 1 60)))
       (fun (s1, s2) ->
         QCheck.assume (s1 <> s2);
         let keys = Hypertee_ems.Keymgmt.provision (Hypertee_util.Xrng.create 0x5EA1L) in
         let m1 = Hypertee_crypto.Sha256.digest_string s1 in
         let m2 = Hypertee_crypto.Sha256.digest_string s2 in
         let blob = Hypertee_ems.Attest.seal keys ~enclave_measurement:m1 (Bytes.of_string "data") in
         Hypertee_ems.Attest.unseal keys ~enclave_measurement:m2 blob = None))

(* --- Mailbox binding under random interleavings --- *)

let prop_mailbox_binding =
  prop
    (QCheck.Test.make ~name:"responses always reach their own request" ~count:50
       QCheck.(list_of_size Gen.(int_range 1 30) (int_bound 1000))
       (fun payloads ->
         let mb : (int, int) Hypertee_arch.Mailbox.t = Hypertee_arch.Mailbox.create ~depth:64 () in
         let ids =
           List.filter_map
             (fun p ->
               match Hypertee_arch.Mailbox.send_request mb ~sender_enclave:None p with
               | Ok id -> Some (id, p)
               | Error `Full -> None)
             payloads
         in
         (* EMS side answers each request with its payload negated. *)
         let rec serve () =
           match Hypertee_arch.Mailbox.recv_request mb with
           | Some pkt ->
             (match
                Hypertee_arch.Mailbox.send_response mb
                  ~request_id:pkt.Hypertee_arch.Mailbox.request_id
                  (-pkt.Hypertee_arch.Mailbox.body)
              with
             | Ok () -> ()
             | Error `Unknown_or_answered -> QCheck.Test.fail_report "live id rejected");
             serve ()
           | None -> ()
         in
         serve ();
         (* Poll in reverse order: binding must hold regardless. *)
         List.for_all
           (fun (id, p) -> Hypertee_arch.Mailbox.poll_response mb ~request_id:id = Some (-p))
           (List.rev ids)))

let suite =
  [
    ( "properties",
      [
        prop_session_memory_model;
        prop_session_rw_roundtrip_any_span;
        prop_alloc_free_consistency;
        prop_cvm_snapshot_identity;
        prop_modpow_homomorphism;
        prop_seal_binds_measurement;
        prop_mailbox_binding;
      ] );
  ]
