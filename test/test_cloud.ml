(* Enclave-as-a-service tests: token-bucket admission control at the
   gate, warm-pool measurement identity, and a closed-loop smoke run
   of the multi-tenant cloud driver. *)

module Types = Hypertee_ems.Types
module Emcall = Hypertee_cs.Emcall
module Mailbox = Hypertee_arch.Mailbox
module Config = Hypertee_arch.Config
module Platform = Hypertee.Platform
module Sdk = Hypertee.Sdk
module Cloud = Hypertee_experiments.Cloud
module Tenants = Hypertee_workloads.Tenants
module Xrng = Hypertee_util.Xrng

let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let small_config =
  {
    Types.code_pages = 1;
    data_pages = 1;
    heap_pages = 4;
    stack_pages = 1;
    shared_pages = 1;
  }

(* --- Admission control: a gate with a token bucket installed never
   admits beyond capacity, and sheds deterministically. --- *)

(* A stub EMS that answers everything immediately, so the only
   behaviour under test is the gate's bucket. *)
let stub_emcall seed =
  let mailbox : (Types.request, Types.response) Mailbox.t = Mailbox.create () in
  let ems_service () =
    let rec drain () =
      match Mailbox.recv_request mailbox with
      | Some p ->
        (match Mailbox.send_response mailbox ~request_id:p.Mailbox.request_id Types.Ok_unit with
        | Ok () -> ()
        | Error `Unknown_or_answered -> Alcotest.fail "stub EMS answered twice");
        drain ()
      | None -> ()
    in
    drain ()
  in
  Emcall.create ~rng:(Xrng.create seed) ~transport:Config.default_transport ~mailbox
    ~ems_service ~service_ns:(fun _ -> 100.0) ()

(* One deterministic admission trace: [k1] back-to-back calls against
   a fresh full bucket, a virtual-clock advance worth [m] whole tokens
   (plus half a token, so no expectation sits on a float boundary),
   then [k2] more calls. Returns (admitted1, admitted2, shed). *)
let admission_trace ~seed ~rate ~burst ~k1 ~m ~k2 =
  let em = stub_emcall seed in
  Emcall.set_admission em ~rate_per_s:(float_of_int rate) ~burst;
  let call () =
    match Emcall.invoke em ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 0 }) with
    | Ok _ -> true
    | Error Emcall.Busy -> false
    | Error _ -> Alcotest.fail "stub gate rejected for a non-admission reason"
  in
  let count n = List.length (List.filter (fun x -> x) (List.init n (fun _ -> call ()))) in
  let admitted1 = count k1 in
  Emcall.advance_admission_ns em ((float_of_int m +. 0.5) *. 1e9 /. float_of_int rate);
  let admitted2 = count k2 in
  (admitted1, admitted2, Emcall.shed em)

let prop_admission_caps =
  prop
    (QCheck.Test.make ~name:"admission: never beyond capacity, sheds deterministically"
       ~count:80
       QCheck.(
         tup5 (int_range 1 64) (int_range 1 16) (int_range 0 40) (int_range 0 20)
           (int_range 0 40))
       (fun (rate, burst, k1, m, k2) ->
         let admitted1, admitted2, shed =
           admission_trace ~seed:5L ~rate ~burst ~k1 ~m ~k2
         in
         (* A full bucket admits exactly the burst, never more. *)
         let expect1 = Stdlib.min k1 burst in
         if admitted1 <> expect1 then
           QCheck.Test.fail_reportf "burst %d, %d calls: admitted %d, expected %d" burst k1
             admitted1 expect1;
         (* After the refill the bucket holds the phase-1 leftovers
            plus m + 0.5 tokens, capped at the burst; whole tokens
            admit, the fraction never does. *)
         let leftover = burst - expect1 in
         let expect2 = Stdlib.min k2 (Stdlib.min burst (leftover + m)) in
         if admitted2 <> expect2 then
           QCheck.Test.fail_reportf "refill of %d tokens, %d calls: admitted %d, expected %d"
             m k2 admitted2 expect2;
         if shed <> k1 - expect1 + (k2 - expect2) then
           QCheck.Test.fail_reportf "shed counter %d disagrees with %d rejections" shed
             (k1 - expect1 + (k2 - expect2));
         (* Deterministic: an identical trace sheds identically, even
            under a different gate RNG seed. *)
         admission_trace ~seed:99L ~rate ~burst ~k1 ~m ~k2 = (admitted1, admitted2, shed)))

(* --- Warm-pool measurement identity: an enclave revived from the
   pool carries the byte-identical measurement of a cold launch of
   the same image. --- *)

(* One platform shared across the property's cases: platform creation
   (RSA keygen) dominates otherwise. Single shard, so every retire
   parks (the measurement's home shard is shard 0 by definition). *)
let warm_platform = lazy (Platform.create ~seed:0x3A11L ())

(* The EMS-side measurement record: what ERETIRE re-derived from the
   resident pages before parking, and what EWARM matched against.
   (EMEAS itself is a once-only transition, already consumed by the
   launch.) *)
let measure platform e =
  let runtime = Platform.Internals.runtime platform in
  match Hypertee_ems.Runtime.find_enclave runtime e with
  | Some enc -> (
    match enc.Hypertee_ems.Enclave.measurement with
    | Some m -> Bytes.copy m
    | None -> Alcotest.fail "live enclave carries no measurement")
  | None -> Alcotest.fail "enclave not found on the shard"

let prop_warm_measurement_identical =
  prop
    (QCheck.Test.make ~name:"warm-pool revive: measurement byte-identical to cold" ~count:20
       QCheck.(pair (string_of_size Gen.(1 -- 200)) (string_of_size Gen.(0 -- 100)))
       (fun (code, data) ->
         let platform = Lazy.force warm_platform in
         let image =
           Sdk.image_of_code ~config:small_config ~code:(Bytes.of_string code)
             ~data:(Bytes.of_string data) ()
         in
         let cold = Result.get_ok (Sdk.launch platform image) in
         let m_cold = measure platform cold in
         if not (Bytes.equal m_cold (Sdk.expected_measurement image)) then
           QCheck.Test.fail_reportf "cold measurement disagrees with the SDK stream";
         (match Sdk.retire platform ~enclave:cold with
         | Ok () -> ()
         | Error m -> Alcotest.failf "retire: %s" m);
         (match Sdk.warm_launch platform image with
         | Ok (revived, `Warm) ->
           let m_warm = measure platform revived in
           (* Destroy (not retire) so the pool stays empty between
              cases — each case must exercise its own park/revive. *)
           (match Sdk.destroy platform ~enclave:revived with
           | Ok () -> ()
           | Error m -> Alcotest.failf "destroy: %s" m);
           if not (Bytes.equal m_cold m_warm) then
             QCheck.Test.fail_reportf "measurement changed across park/revive"
           else true
         | Ok (_, `Cold) -> QCheck.Test.fail_reportf "EWARM missed the enclave just parked"
         | Error m -> QCheck.Test.fail_reportf "warm_launch: %s" m)))

(* --- Closed-loop smoke run of the cloud driver: a tiny tenant fleet
   must complete sessions, hit the warm pool, and leave the platform
   clean under the deep sweep and the oracle. --- *)

let test_cloud_closed_smoke () =
  let spec = { Tenants.default_spec with Tenants.tenants = 2; images = 2 } in
  let point =
    Cloud.run_closed ~seed:0x51103L ~spec ~shards:2 ~tenants:2 ~sessions_per_tenant:4 ()
  in
  Alcotest.(check int) "no invariant violations" 0 point.Cloud.cl_violations;
  Alcotest.(check int) "no oracle divergences" 0 point.Cloud.cl_divergences;
  Alcotest.(check bool) "sessions completed" true (point.Cloud.cl_completed > 0);
  Alcotest.(check bool) "warm pool was hit" true (point.Cloud.cl_warm_hits >= 1);
  Alcotest.(check bool) "throughput positive" true (point.Cloud.cl_throughput_per_s > 0.0)

let suite =
  [
    ( "cloud",
      [
        prop_admission_caps;
        prop_warm_measurement_identical;
        Alcotest.test_case "closed-loop smoke: clean, warm hits, progress" `Quick
          test_cloud_closed_smoke;
      ] );
  ]
