(* Tests for the scalability sweep (batching amortization and EMS
   sharding) and for the enclave->shard affinity routing behind the
   EMCall gate. *)

open Hypertee
module Scale = Hypertee_experiments.Scale
module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module Emcall = Hypertee_cs.Emcall
module Config = Hypertee_arch.Config
module Fault = Hypertee_faults.Fault

let check = Alcotest.check
let seed = 0x5CA1EL

let test_point_deterministic () =
  let run () = Scale.run_point ~seed ~cs_cores:4 ~shards:2 ~batch:4 ~ops:32 () in
  check Alcotest.bool "identical seed, identical point" true (run () = run ());
  let other = Scale.run_point ~seed:1L ~cs_cores:4 ~shards:2 ~batch:4 ~ops:32 () in
  check Alcotest.bool "different seed, different timings" true
    ((run ()).Scale.mean_latency_ns <> other.Scale.mean_latency_ns)

let test_overhead_decreases_with_batch () =
  let points = Scale.batch_sweep ~seed ~ops:32 () in
  check Alcotest.int "full grid" (List.length Scale.default_batches) (List.length points);
  List.iter
    (fun p -> check Alcotest.int "every primitive served" p.Scale.ops p.Scale.ok)
    points;
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a.Scale.overhead_ns > b.Scale.overhead_ns && strictly_decreasing rest
    | _ -> true
  in
  check Alcotest.bool "per-EMCall overhead strictly decreases with batch" true
    (strictly_decreasing points)

let test_throughput_scales_with_shards () =
  let points = Scale.shard_sweep ~seed ~ops:64 () in
  check Alcotest.int "full grid" (List.length Scale.default_shards) (List.length points);
  List.iter
    (fun p -> check Alcotest.int "every primitive served" p.Scale.ops p.Scale.ok)
    points;
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
      a.Scale.throughput_mops < b.Scale.throughput_mops && strictly_increasing rest
    | _ -> true
  in
  check Alcotest.bool "throughput strictly increases with shard count" true
    (strictly_increasing points)

let test_default_platform_is_single_shard () =
  let platform = Platform.create ~seed () in
  check Alcotest.int "one shard by default" 1 (Platform.shard_count platform);
  check Alcotest.int "everything routes to it" 0 (Platform.shard_of_enclave platform 17)

let test_affinity_routing () =
  let shards = 4 in
  let config = { Config.default with Config.ems_shards = shards } in
  let platform = Platform.create ~seed ~config () in
  let enclaves =
    List.filter_map
      (fun _ ->
        match
          Platform.invoke platform ~caller:Emcall.Os_kernel
            (Types.Create { config = Types.default_config })
        with
        | Ok (Types.Ok_created { enclave }) -> Some enclave
        | _ -> None)
      (List.init 8 Fun.id)
  in
  check Alcotest.int "eight created across shards" 8 (List.length enclaves);
  List.iter
    (fun id ->
      let s = Platform.shard_of_enclave platform id in
      check Alcotest.int "affinity is the id residue class" ((id - 1) mod shards) s;
      (* Exactly the owning shard's runtime holds the enclave. *)
      for other = 0 to shards - 1 do
        let holds =
          Runtime.find_enclave (Platform.Internals.runtime_of_shard platform other) id <> None
        in
        check Alcotest.bool "enclave lives in its shard only" (other = s) holds
      done)
    enclaves;
  (* A primitive on an enclave is served by its owning shard. *)
  let id = List.nth enclaves 2 in
  let owner = Platform.Internals.runtime_of_shard platform ((id - 1) mod shards) in
  let before = Runtime.served owner Types.EALLOC in
  (match Platform.invoke platform ~caller:Emcall.User_host (Types.Alloc { enclave = id; pages = 1 }) with
  | Ok (Types.Ok_alloc _) -> ()
  | _ -> Alcotest.fail "alloc through the gate failed");
  check Alcotest.int "served by the owning shard" (before + 1) (Runtime.served owner Types.EALLOC)

(* Batched invocation through the real platform keeps every response
   bound to its request even while PR-1 fault plans drop, duplicate
   and corrupt packets and crash workers mid-batch: the retry and
   watchdog machinery recovers, and the measurement each slot gets
   back is its own enclave's. *)
let test_batch_bindings_survive_fault_plan () =
  let plan =
    Fault.plan ~seed:0xBADL
      [
        { Fault.site = Fault.Mailbox_drop; schedule = Fault.Probability 0.1; intensity = 0.0 };
        { Fault.site = Fault.Mailbox_duplicate; schedule = Fault.Probability 0.1; intensity = 0.0 };
        { Fault.site = Fault.Mailbox_corrupt; schedule = Fault.Probability 0.05; intensity = 0.0 };
        { Fault.site = Fault.Transport_delay; schedule = Fault.Probability 0.2; intensity = 500.0 };
        { Fault.site = Fault.Worker_crash; schedule = Fault.Probability 0.1; intensity = 0.0 };
        { Fault.site = Fault.Worker_stall; schedule = Fault.Probability 0.1; intensity = 0.0 };
      ]
  in
  let platform = Platform.create ~seed:0xB17CL ~faults:plan () in
  let n = 4 in
  let enclaves =
    Array.init n (fun i ->
        let image =
          Sdk.image_of_code
            ~code:(Bytes.of_string (Printf.sprintf "enclave body %d" i))
            ~data:Bytes.empty ()
        in
        match Sdk.launch platform image with
        | Ok enclave -> enclave
        | Error m -> Alcotest.failf "launch %d: %s" i m)
  in
  (* Binding oracle: slot i asks for i+1 pages, and the response
     echoes the page count; the heap cursor of each enclave advances
     by exactly its own request size each round, so a response
     crossing to the wrong slot is caught both ways. *)
  let last_base = Array.make n (-1) in
  for round = 1 to 3 do
    let requests =
      List.init n (fun i ->
          (Emcall.User_host, Types.Alloc { enclave = enclaves.(i); pages = i + 1 }))
    in
    List.iteri
      (fun i result ->
        match result with
        | Ok (Types.Ok_alloc { base_vpn; pages }, _) ->
          check Alcotest.int "page count bound to its request" (i + 1) pages;
          if round > 1 then
            check Alcotest.int "heap cursor advanced by this slot's size"
              (last_base.(i) + (i + 1))
              base_vpn;
          last_base.(i) <- base_vpn
        | Ok _ -> Alcotest.fail "wrong response kind"
        | Error _ -> Alcotest.fail "batched call failed despite retry budget")
      (Platform.invoke_batch platform requests)
  done

let suite =
  [
    ( "experiments.scale",
      [
        Alcotest.test_case "point deterministic given seed" `Quick test_point_deterministic;
        Alcotest.test_case "overhead decreases with batch" `Quick test_overhead_decreases_with_batch;
        Alcotest.test_case "throughput scales with shards" `Quick test_throughput_scales_with_shards;
        Alcotest.test_case "default platform single shard" `Quick test_default_platform_is_single_shard;
        Alcotest.test_case "affinity routing" `Quick test_affinity_routing;
        Alcotest.test_case "batch bindings survive faults" `Quick
          test_batch_bindings_survive_fault_plan;
      ] );
  ]
