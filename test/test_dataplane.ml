(* Tests for the zero-copy data plane: the MEE range operations over
   Phys_mem, their equivalence with the allocating store/load pair,
   the SDK measurement stream, and the perf harness plumbing. *)

module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Bx = Hypertee_util.Bytes_ext
module Perf = Hypertee_experiments.Perf

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick
let page_size = Hypertee_util.Units.page_size

let fresh () =
  let mee = Mem_encryption.create ~slots:4 in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'A');
  Mem_encryption.program mee ~key_id:2 (Bytes.make 16 'B');
  let mem = Phys_mem.create ~frames:8 in
  (mee, mem)

let patterned seed = Bytes.init page_size (fun i -> Char.chr ((i * seed) land 0xFF))

(* --- write_page / read_page vs the allocating store/load pair --- *)

let test_page_roundtrip_matches_store () =
  let mee, mem = fresh () in
  let page = patterned 13 in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:2 page;
  (* The DRAM bytes are exactly what [store] would have produced. *)
  let reference = Mem_encryption.store mee ~key_id:1 ~frame:2 page in
  check Alcotest.bytes "DRAM ciphertext identical" reference (Phys_mem.read mem ~frame:2);
  check Alcotest.bytes "read_page inverts" page
    (Mem_encryption.read_page mee mem ~key_id:1 ~frame:2)

let test_key0_passthrough () =
  let mee, mem = fresh () in
  let page = patterned 5 in
  Mem_encryption.write_page mee mem ~key_id:0 ~frame:1 page;
  check Alcotest.bytes "key 0 stores plaintext" page (Phys_mem.read mem ~frame:1);
  check Alcotest.bytes "key 0 reads back" page (Mem_encryption.read_page mee mem ~key_id:0 ~frame:1);
  Bytes.set page 0 'X';
  check Alcotest.bool "write_page copied, not aliased" false
    (Bytes.equal page (Phys_mem.read mem ~frame:1))

let prop_read_range =
  prop
    (QCheck.Test.make ~name:"read_range = slice of read_page" ~count:60
       QCheck.(pair (int_range 0 (page_size - 1)) (int_range 0 page_size))
       (fun (off, len) ->
         let len = Stdlib.min len (page_size - off) in
         let mee, mem = fresh () in
         let page = patterned 31 in
         Mem_encryption.write_page mee mem ~key_id:1 ~frame:3 page;
         let got = Mem_encryption.read_range mee mem ~key_id:1 ~frame:3 ~off ~len in
         Bytes.equal got (Bytes.sub page off len)))

let prop_update_range =
  prop
    (QCheck.Test.make ~name:"update_range = decrypt, blit, encrypt" ~count:60
       QCheck.(triple (int_range 0 (page_size - 1)) (int_range 0 200) (int_range 1 250))
       (fun (off, len, byte) ->
         let len = Stdlib.min len (page_size - off) in
         let mee, mem = fresh () in
         let page = patterned 7 in
         Mem_encryption.write_page mee mem ~key_id:1 ~frame:4 page;
         let patch = Bytes.make len (Char.chr byte) in
         Mem_encryption.update_range mee mem ~key_id:1 ~frame:4 ~off ~src:patch ~src_off:0 ~len;
         let expected = Bytes.copy page in
         Bytes.blit patch 0 expected off len;
         Bytes.equal expected (Mem_encryption.read_page mee mem ~key_id:1 ~frame:4)))

let test_tamper_detected_on_range_read () =
  let mee, mem = fresh () in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:2 (patterned 3);
  (* A physical attacker flips one DRAM bit... *)
  let dram = Phys_mem.borrow mem ~frame:2 in
  Bytes.set dram 100 (Char.chr (Char.code (Bytes.get dram 100) lxor 0x10));
  (* ...and even a sub-range read outside the flipped byte faults,
     because the MAC covers the whole line. *)
  (try
     ignore (Mem_encryption.read_range mee mem ~key_id:1 ~frame:2 ~off:0 ~len:16);
     Alcotest.fail "expected Integrity_violation"
   with Mem_encryption.Integrity_violation { frame } -> check Alcotest.int "frame" 2 frame);
  (* A partial overwrite of the tampered page must also fault (the
     stale line is verified before the read-modify-write). *)
  try
    Mem_encryption.update_range mee mem ~key_id:1 ~frame:2 ~off:8 ~src:(Bytes.make 8 'z')
      ~src_off:0 ~len:8;
    Alcotest.fail "expected Integrity_violation on update"
  with Mem_encryption.Integrity_violation _ -> ()

let test_cross_key_garbles () =
  let mee, mem = fresh () in
  let page = patterned 11 in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:5 page;
  (* Reading under a different key either faults (MAC mismatch) —
     there is no path that yields the plaintext. *)
  match Mem_encryption.read_page mee mem ~key_id:2 ~frame:5 with
  | p -> check Alcotest.bool "wrong key never decrypts" false (Bytes.equal p page)
  | exception Mem_encryption.Integrity_violation _ -> ()

let prop_phys_read_into =
  prop
    (QCheck.Test.make ~name:"Phys_mem.read_into = read_sub" ~count:60
       QCheck.(pair (int_range 0 (page_size - 1)) (int_range 0 page_size))
       (fun (off, len) ->
         let len = Stdlib.min len (page_size - off) in
         let mem = Phys_mem.create ~frames:2 in
         Phys_mem.write mem ~frame:1 (patterned 9);
         let dst = Bytes.make (len + 3) '\xAA' in
         Phys_mem.read_into mem ~frame:1 ~off ~len dst ~dst_off:2;
         Bytes.equal (Bytes.sub dst 2 len) (Phys_mem.read_sub mem ~frame:1 ~off ~len)
         && Bytes.get dst 0 = '\xAA'
         && Bytes.get dst (len + 2) = '\xAA'))

let test_read_into_unmaterialized () =
  (* An untouched frame reads as zeros without materializing. *)
  let mem = Phys_mem.create ~frames:2 in
  let dst = Bytes.make 8 'x' in
  Phys_mem.read_into mem ~frame:0 ~off:100 ~len:8 dst ~dst_off:0;
  check Alcotest.bytes "zeros" (Bytes.make 8 '\000') dst

(* --- SDK measurement stream vs a hand-rolled padded reference --- *)

let test_measurement_stream () =
  let pages = [ (0x100, Bytes.of_string "short"); (0x101, Bytes.make page_size 'f') ] in
  let reference =
    let ctx = Hypertee_crypto.Sha256.init () in
    List.iter
      (fun (vpn, data) ->
        let header = Bytes.create 8 in
        Bx.set_u64_le header 0 (Int64.of_int vpn);
        Hypertee_crypto.Sha256.update ctx header;
        let padded = Bytes.make page_size '\000' in
        Bytes.blit data 0 padded 0 (Bytes.length data);
        Hypertee_crypto.Sha256.update ctx padded)
      pages;
    Hypertee_crypto.Sha256.finalize ctx
  in
  let ctx = Hypertee_crypto.Sha256.init () in
  List.iter
    (fun (vpn, data) ->
      let header = Bytes.create 8 in
      Bx.set_u64_le header 0 (Int64.of_int vpn);
      Hypertee_crypto.Sha256.update ctx header;
      Hypertee_crypto.Sha256.update ctx data;
      let pad = page_size - Bytes.length data in
      if pad > 0 then
        Hypertee_crypto.Sha256.feed_sub ctx (Bytes.make page_size '\000') ~off:0 ~len:pad)
    pages;
  check Alcotest.bytes "streamed = padded" reference (Hypertee_crypto.Sha256.finalize ctx)

let test_launch_measurement_still_verifies () =
  (* End to end: the SDK-side streamed measurement must still agree
     with the EMS-side measurement, or launch fails. *)
  let platform = Hypertee.Platform.create ~seed:0xD47AL () in
  let image =
    Hypertee.Sdk.image_of_code
      ~code:(Bytes.init 5000 (fun i -> Char.chr (i land 0xFF)))
      ~data:(Bytes.of_string "trailing data, not page aligned")
      ()
  in
  match Hypertee.Sdk.launch platform image with
  | Ok enclave -> (
    match Hypertee.Sdk.destroy platform ~enclave with
    | Ok () -> ()
    | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m

(* --- perf harness plumbing --- *)

let test_perf_run_and_json () =
  let samples = Perf.run ~quick:true ~min_time_s:0.0005 () in
  check Alcotest.bool ">= 6 samples" true (List.length samples >= 6);
  List.iter
    (fun s ->
      check Alcotest.bool (s.Perf.target ^ " positive") true (s.Perf.value > 0.0);
      check Alcotest.bool (s.Perf.target ^ " ran") true (s.Perf.runs >= 1))
    samples;
  check Alcotest.bool "speedup sample present" true
    (Perf.find samples ~target:"aes-ctr-page" ~metric:"speedup-vs-reference" <> None);
  let path = Filename.temp_file "bench_perf" ".json" in
  Perf.write_json ~path samples;
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  check Alcotest.bool "json array" true
    (String.length content > 2 && content.[0] = '[' && String.contains content ']');
  List.iter
    (fun s ->
      check Alcotest.bool (s.Perf.target ^ " in json") true
        (let re = Printf.sprintf "\"target\": %S" s.Perf.target in
         let rec find i =
           i + String.length re <= String.length content
           && (String.sub content i (String.length re) = re || find (i + 1))
         in
         find 0))
    samples

let suite =
  [
    ( "dataplane.mee",
      [
        Alcotest.test_case "write_page matches store" `Quick test_page_roundtrip_matches_store;
        Alcotest.test_case "key 0 passthrough" `Quick test_key0_passthrough;
        Alcotest.test_case "tamper detected on range ops" `Quick test_tamper_detected_on_range_read;
        Alcotest.test_case "cross-key never decrypts" `Quick test_cross_key_garbles;
        prop_read_range;
        prop_update_range;
      ] );
    ( "dataplane.phys_mem",
      [
        Alcotest.test_case "read_into unmaterialized frame" `Quick test_read_into_unmaterialized;
        prop_phys_read_into;
      ] );
    ( "dataplane.measurement",
      [
        Alcotest.test_case "streamed = padded" `Quick test_measurement_stream;
        Alcotest.test_case "launch still verifies" `Quick test_launch_measurement_still_verifies;
      ] );
    ("dataplane.perf", [ Alcotest.test_case "run + json" `Quick test_perf_run_and_json ]);
  ]
