(* Tests for the zero-copy data plane: the MEE range operations over
   Phys_mem, their equivalence with the allocating store/load pair,
   the SDK measurement stream, and the perf harness plumbing. *)

module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Bx = Hypertee_util.Bytes_ext
module Perf = Hypertee_experiments.Perf

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick
let page_size = Hypertee_util.Units.page_size

let fresh () =
  let mee = Mem_encryption.create ~slots:4 () in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'A');
  Mem_encryption.program mee ~key_id:2 (Bytes.make 16 'B');
  let mem = Phys_mem.create ~frames:8 in
  (mee, mem)

let patterned seed = Bytes.init page_size (fun i -> Char.chr ((i * seed) land 0xFF))

(* --- write_page / read_page vs the allocating store/load pair --- *)

let test_page_roundtrip_matches_store () =
  let mee, mem = fresh () in
  let page = patterned 13 in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:2 page;
  (* The DRAM bytes are exactly what [store] would have produced. *)
  let reference = Mem_encryption.store mee ~key_id:1 ~frame:2 page in
  check Alcotest.bytes "DRAM ciphertext identical" reference (Phys_mem.read mem ~frame:2);
  check Alcotest.bytes "read_page inverts" page
    (Mem_encryption.read_page mee mem ~key_id:1 ~frame:2)

let test_key0_passthrough () =
  let mee, mem = fresh () in
  let page = patterned 5 in
  Mem_encryption.write_page mee mem ~key_id:0 ~frame:1 page;
  check Alcotest.bytes "key 0 stores plaintext" page (Phys_mem.read mem ~frame:1);
  check Alcotest.bytes "key 0 reads back" page (Mem_encryption.read_page mee mem ~key_id:0 ~frame:1);
  Bytes.set page 0 'X';
  check Alcotest.bool "write_page copied, not aliased" false
    (Bytes.equal page (Phys_mem.read mem ~frame:1))

let prop_read_range =
  prop
    (QCheck.Test.make ~name:"read_range = slice of read_page" ~count:60
       QCheck.(pair (int_range 0 (page_size - 1)) (int_range 0 page_size))
       (fun (off, len) ->
         let len = Stdlib.min len (page_size - off) in
         let mee, mem = fresh () in
         let page = patterned 31 in
         Mem_encryption.write_page mee mem ~key_id:1 ~frame:3 page;
         let got = Mem_encryption.read_range mee mem ~key_id:1 ~frame:3 ~off ~len in
         Bytes.equal got (Bytes.sub page off len)))

let prop_update_range =
  prop
    (QCheck.Test.make ~name:"update_range = decrypt, blit, encrypt" ~count:60
       QCheck.(triple (int_range 0 (page_size - 1)) (int_range 0 200) (int_range 1 250))
       (fun (off, len, byte) ->
         let len = Stdlib.min len (page_size - off) in
         let mee, mem = fresh () in
         let page = patterned 7 in
         Mem_encryption.write_page mee mem ~key_id:1 ~frame:4 page;
         let patch = Bytes.make len (Char.chr byte) in
         Mem_encryption.update_range mee mem ~key_id:1 ~frame:4 ~off ~src:patch ~src_off:0 ~len;
         let expected = Bytes.copy page in
         Bytes.blit patch 0 expected off len;
         Bytes.equal expected (Mem_encryption.read_page mee mem ~key_id:1 ~frame:4)))

let test_tamper_detected_on_range_read () =
  let mee, mem = fresh () in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:2 (patterned 3);
  (* A physical attacker flips one DRAM bit... *)
  let dram = Phys_mem.borrow mem ~frame:2 in
  Bytes.set dram 100 (Char.chr (Char.code (Bytes.get dram 100) lxor 0x10));
  (* ...and even a sub-range read outside the flipped byte faults,
     because the MAC covers the whole line. *)
  (try
     ignore (Mem_encryption.read_range mee mem ~key_id:1 ~frame:2 ~off:0 ~len:16);
     Alcotest.fail "expected Integrity_violation"
   with Mem_encryption.Integrity_violation { frame } -> check Alcotest.int "frame" 2 frame);
  (* A partial overwrite of the tampered page must also fault (the
     stale line is verified before the read-modify-write). *)
  try
    Mem_encryption.update_range mee mem ~key_id:1 ~frame:2 ~off:8 ~src:(Bytes.make 8 'z')
      ~src_off:0 ~len:8;
    Alcotest.fail "expected Integrity_violation on update"
  with Mem_encryption.Integrity_violation _ -> ()

let test_cross_key_garbles () =
  let mee, mem = fresh () in
  let page = patterned 11 in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:5 page;
  (* Reading under a different key either faults (MAC mismatch) —
     there is no path that yields the plaintext. *)
  match Mem_encryption.read_page mee mem ~key_id:2 ~frame:5 with
  | p -> check Alcotest.bool "wrong key never decrypts" false (Bytes.equal p page)
  | exception Mem_encryption.Integrity_violation _ -> ()

let prop_phys_read_into =
  prop
    (QCheck.Test.make ~name:"Phys_mem.read_into = read_sub" ~count:60
       QCheck.(pair (int_range 0 (page_size - 1)) (int_range 0 page_size))
       (fun (off, len) ->
         let len = Stdlib.min len (page_size - off) in
         let mem = Phys_mem.create ~frames:2 in
         Phys_mem.write mem ~frame:1 (patterned 9);
         let dst = Bytes.make (len + 3) '\xAA' in
         Phys_mem.read_into mem ~frame:1 ~off ~len dst ~dst_off:2;
         Bytes.equal (Bytes.sub dst 2 len) (Phys_mem.read_sub mem ~frame:1 ~off ~len)
         && Bytes.get dst 0 = '\xAA'
         && Bytes.get dst (len + 2) = '\xAA'))

let test_read_into_unmaterialized () =
  (* An untouched frame reads as zeros without materializing. *)
  let mem = Phys_mem.create ~frames:2 in
  let dst = Bytes.make 8 'x' in
  Phys_mem.read_into mem ~frame:0 ~off:100 ~len:8 dst ~dst_off:0;
  check Alcotest.bytes "zeros" (Bytes.make 8 '\000') dst

(* --- MAC cache coherence: the verified-line cache must be invisible
   except in the counters — every way the DRAM bytes can change has to
   force the next read back through the sponge. --- *)

let test_mac_cache_hot_hit () =
  let mee, mem = fresh () in
  let page = patterned 17 in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:2 page;
  let before = Mem_encryption.mac_cache_hits mee in
  (* The write itself marked the line verified, so both reads hit. *)
  check Alcotest.bytes "first read" page (Mem_encryption.read_page mee mem ~key_id:1 ~frame:2);
  check Alcotest.bytes "second read" page (Mem_encryption.read_page mee mem ~key_id:1 ~frame:2);
  check Alcotest.int "both reads hit the cache" (before + 2) (Mem_encryption.mac_cache_hits mee)

let test_mac_cache_tamper_after_verified_read () =
  let mee, mem = fresh () in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:3 (patterned 23);
  (* Verify once — the line is now cached at the current version. *)
  ignore (Mem_encryption.read_page mee mem ~key_id:1 ~frame:3);
  (* Tampering goes through [borrow], which bumps the frame version:
     the cached verification must not survive it. *)
  let dram = Phys_mem.borrow mem ~frame:3 in
  Bytes.set dram 0 (Char.chr (Char.code (Bytes.get dram 0) lxor 1));
  (try
     ignore (Mem_encryption.read_page mee mem ~key_id:1 ~frame:3);
     Alcotest.fail "expected Integrity_violation after tamper"
   with Mem_encryption.Integrity_violation { frame } -> check Alcotest.int "frame" 3 frame);
  (* Even an unmodified mutable borrow (the alias *could* have been
     written) must force re-verification, not a cache hit. *)
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:3 (patterned 29);
  ignore (Phys_mem.borrow mem ~frame:3);
  let hits = Mem_encryption.mac_cache_hits mee in
  ignore (Mem_encryption.read_page mee mem ~key_id:1 ~frame:3);
  check Alcotest.int "borrow alone invalidates" hits (Mem_encryption.mac_cache_hits mee)

let test_mac_cache_flush () =
  let mee, mem = fresh () in
  let page = patterned 41 in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:4 page;
  ignore (Mem_encryption.read_page mee mem ~key_id:1 ~frame:4);
  Mem_encryption.flush_mac_cache mee;
  let hits = Mem_encryption.mac_cache_hits mee in
  (* After a flush the read must re-verify (no hit) and still pass —
     the MAC itself was kept. *)
  check Alcotest.bytes "re-verifies clean" page
    (Mem_encryption.read_page mee mem ~key_id:1 ~frame:4);
  check Alcotest.int "flush forced the sponge" hits (Mem_encryption.mac_cache_hits mee)

let test_reference_mac_engine_never_caches () =
  let mee = Mem_encryption.create ~reference_mac:true ~slots:4 () in
  Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'A');
  let mem = Phys_mem.create ~frames:8 in
  let page = patterned 43 in
  Mem_encryption.write_page mee mem ~key_id:1 ~frame:1 page;
  check Alcotest.bytes "reference engine round-trips" page
    (Mem_encryption.read_page mee mem ~key_id:1 ~frame:1);
  ignore (Mem_encryption.read_page mee mem ~key_id:1 ~frame:1);
  check Alcotest.int "no cache hits in reference mode" 0 (Mem_encryption.mac_cache_hits mee)

let test_engines_produce_identical_ciphertext () =
  (* The fast keyed-sponge engine and the reference engine must lay
     down bit-identical DRAM (same AES, byte-identical tags), or
     sealed snapshots would stop being portable across the modes. *)
  let mk ~reference_mac =
    let mee = Mem_encryption.create ~reference_mac ~slots:4 () in
    Mem_encryption.program mee ~key_id:1 (Bytes.make 16 'A');
    let mem = Phys_mem.create ~frames:4 in
    Mem_encryption.write_page mee mem ~key_id:1 ~frame:2 (patterned 19);
    Phys_mem.read mem ~frame:2
  in
  check Alcotest.bytes "ciphertext identical across MAC engines"
    (mk ~reference_mac:false) (mk ~reference_mac:true)

(* --- FIPS 202 known-answer tests and fast-vs-reference equivalence
   for the unrolled Keccak. --- *)

module Keccak = Hypertee_crypto.Keccak

let hex b =
  String.concat "" (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

(* Digests of the byte pattern i -> (i * 31) land 0xFF, generated with
   an independent SHA3-256 implementation (Python hashlib). Lengths
   straddle the SHA3-256 rate (136 bytes): empty, sub-block, rate-1,
   rate, rate+1, multi-block. *)
let sha3_kats =
  [
    (0, "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
    (64, "6ef4bc75377ecf8d629d7e25554ece96bb20eb9b3e72f828775c9e446ec33b24");
    (135, "723355e02c111b19921ecbd0b5c2efb77e246cd392b1829ccf96da8bbbd83dbd");
    (136, "51288d7e1a070f90c6003edda6a2ceeadf0d9847b04b55ff768eeb61d3a798af");
    (137, "b3ad09aacb053a96d31b0fd700ed8dcae5d5a72db56a9480e60270dfe8e4eb93");
    (300, "c487c09ee884643bace14ca4da089305dfbe56ce63f844b6f5ed4db0b5f94aac");
  ]

let test_sha3_kat () =
  List.iter
    (fun (n, expected) ->
      let msg = Bytes.init n (fun i -> Char.chr (i * 31 land 0xFF)) in
      check Alcotest.string (Printf.sprintf "sha3-256 of %d bytes" n) expected
        (hex (Keccak.sha3_256 msg));
      check Alcotest.string (Printf.sprintf "reference sha3-256 of %d bytes" n) expected
        (hex (Keccak.Reference.sha3_256 msg)))
    sha3_kats

let bytes_gen = QCheck.(map Bytes.of_string (string_of_size Gen.(0 -- 600)))

let prop_sha3_matches_reference =
  prop
    (QCheck.Test.make ~name:"unrolled sha3-256 = reference" ~count:200 bytes_gen (fun msg ->
         Bytes.equal (Keccak.sha3_256 msg) (Keccak.Reference.sha3_256 msg)))

let prop_mac28_matches_reference =
  prop
    (QCheck.Test.make ~name:"unrolled mac28 = reference (incl. keyed snapshot)" ~count:200
       QCheck.(pair bytes_gen bytes_gen)
       (fun (key, data) ->
         let expected = Keccak.Reference.mac_28bit ~key data in
         Keccak.mac_28bit ~key data = expected
         && Keccak.mac_28bit_keyed (Keccak.keyed_init ~key) data = expected))

(* --- SDK measurement stream vs a hand-rolled padded reference --- *)

let test_measurement_stream () =
  let pages = [ (0x100, Bytes.of_string "short"); (0x101, Bytes.make page_size 'f') ] in
  let reference =
    let ctx = Hypertee_crypto.Sha256.init () in
    List.iter
      (fun (vpn, data) ->
        let header = Bytes.create 8 in
        Bx.set_u64_le header 0 (Int64.of_int vpn);
        Hypertee_crypto.Sha256.update ctx header;
        let padded = Bytes.make page_size '\000' in
        Bytes.blit data 0 padded 0 (Bytes.length data);
        Hypertee_crypto.Sha256.update ctx padded)
      pages;
    Hypertee_crypto.Sha256.finalize ctx
  in
  let ctx = Hypertee_crypto.Sha256.init () in
  List.iter
    (fun (vpn, data) ->
      let header = Bytes.create 8 in
      Bx.set_u64_le header 0 (Int64.of_int vpn);
      Hypertee_crypto.Sha256.update ctx header;
      Hypertee_crypto.Sha256.update ctx data;
      let pad = page_size - Bytes.length data in
      if pad > 0 then
        Hypertee_crypto.Sha256.feed_sub ctx (Bytes.make page_size '\000') ~off:0 ~len:pad)
    pages;
  check Alcotest.bytes "streamed = padded" reference (Hypertee_crypto.Sha256.finalize ctx)

let test_launch_measurement_still_verifies () =
  (* End to end: the SDK-side streamed measurement must still agree
     with the EMS-side measurement, or launch fails. *)
  let platform = Hypertee.Platform.create ~seed:0xD47AL () in
  let image =
    Hypertee.Sdk.image_of_code
      ~code:(Bytes.init 5000 (fun i -> Char.chr (i land 0xFF)))
      ~data:(Bytes.of_string "trailing data, not page aligned")
      ()
  in
  match Hypertee.Sdk.launch platform image with
  | Ok enclave -> (
    match Hypertee.Sdk.destroy platform ~enclave with
    | Ok () -> ()
    | Error m -> Alcotest.fail m)
  | Error m -> Alcotest.fail m

(* --- perf harness plumbing --- *)

let test_perf_run_and_json () =
  let samples = Perf.run ~quick:true ~min_time_s:0.0005 () in
  check Alcotest.bool ">= 6 samples" true (List.length samples >= 6);
  List.iter
    (fun s ->
      check Alcotest.bool (s.Perf.target ^ " positive") true (s.Perf.value > 0.0);
      check Alcotest.bool (s.Perf.target ^ " ran") true (s.Perf.runs >= 1))
    samples;
  List.iter
    (fun target ->
      check Alcotest.bool (target ^ " speedup present") true
        (Perf.find samples ~target ~metric:"speedup-vs-reference" <> None))
    [
      "aes-ctr-page";
      "sha3-256-page";
      "keccak-mac28-page";
      "mee-store-load-page";
      "chan-record-seal";
      "cloud-warm-create";
    ];
  (* Every speedup-vs-reference ratio must compare like with like:
     its two sides are the samples [target] and [target-reference],
     and both must exist and measure the same unit of work (same
     metric, same unit). The chan-record-seal reference was once a
     bare chunk-copy loop — a throughput "pair" whose ratio only
     measured memcpy against real crypto. *)
  List.iter
    (fun s ->
      if s.Perf.metric = "speedup-vs-reference" then begin
        let side metric_label t =
          match
            List.find_opt
              (fun c -> c.Perf.target = t && c.Perf.metric <> "speedup-vs-reference")
              samples
          with
          | Some c -> c
          | None -> Alcotest.failf "%s: %s side missing" s.Perf.target metric_label
        in
        let fast = side "fast" s.Perf.target in
        let reference = side "reference" (s.Perf.target ^ "-reference") in
        check Alcotest.string (s.Perf.target ^ ": sides share a metric") fast.Perf.metric
          reference.Perf.metric;
        check Alcotest.string (s.Perf.target ^ ": sides share a unit") fast.Perf.unit_
          reference.Perf.unit_;
        check Alcotest.string (s.Perf.target ^ ": ratio is dimensionless") "x" s.Perf.unit_
      end)
    samples;
  let path = Filename.temp_file "bench_perf" ".json" in
  Perf.write_json ~path samples;
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  check Alcotest.bool "json object with host block" true
    (String.length content > 2 && content.[0] = '{');
  let contains re =
    let rec find i =
      i + String.length re <= String.length content
      && (String.sub content i (String.length re) = re || find (i + 1))
    in
    find 0
  in
  check Alcotest.bool "host block present" true (contains "\"host\"");
  check Alcotest.bool "hardware_threads present" true (contains "\"hardware_threads\"");
  check Alcotest.bool "ocaml_version present" true (contains "\"ocaml_version\"");
  List.iter
    (fun s ->
      check Alcotest.bool (s.Perf.target ^ " in json") true
        (contains (Printf.sprintf "\"target\": %S" s.Perf.target)))
    samples;
  (* The baseline loader must round-trip every sample it wrote, and
     the regression comparator must pass against an identical baseline
     and fail against an inflated one. *)
  let baseline = Perf.load_baseline ~path in
  Sys.remove path;
  check Alcotest.int "baseline round-trips all samples" (List.length samples)
    (List.length baseline);
  check Alcotest.bool "identical baseline: no regressions" true
    (Perf.compare_to_baseline ~baseline ~tolerance_pct:30.0 samples = []);
  let inflated =
    List.map
      (fun (t, m, v) -> if m = "speedup-vs-reference" then (t, m, v *. 10.0) else (t, m, v))
      baseline
  in
  check Alcotest.bool "inflated baseline: regression reported" true
    (Perf.compare_to_baseline ~baseline:inflated ~tolerance_pct:30.0 samples <> [])

let suite =
  [
    ( "dataplane.mee",
      [
        Alcotest.test_case "write_page matches store" `Quick test_page_roundtrip_matches_store;
        Alcotest.test_case "key 0 passthrough" `Quick test_key0_passthrough;
        Alcotest.test_case "tamper detected on range ops" `Quick test_tamper_detected_on_range_read;
        Alcotest.test_case "cross-key never decrypts" `Quick test_cross_key_garbles;
        prop_read_range;
        prop_update_range;
      ] );
    ( "dataplane.mac_cache",
      [
        Alcotest.test_case "hot read hits the cache" `Quick test_mac_cache_hot_hit;
        Alcotest.test_case "tamper after verified read caught" `Quick
          test_mac_cache_tamper_after_verified_read;
        Alcotest.test_case "flush forces re-verification" `Quick test_mac_cache_flush;
        Alcotest.test_case "reference engine never caches" `Quick
          test_reference_mac_engine_never_caches;
        Alcotest.test_case "fast and reference ciphertext identical" `Quick
          test_engines_produce_identical_ciphertext;
      ] );
    ( "dataplane.keccak",
      [
        Alcotest.test_case "FIPS 202 known answers" `Quick test_sha3_kat;
        prop_sha3_matches_reference;
        prop_mac28_matches_reference;
      ] );
    ( "dataplane.phys_mem",
      [
        Alcotest.test_case "read_into unmaterialized frame" `Quick test_read_into_unmaterialized;
        prop_phys_read_into;
      ] );
    ( "dataplane.measurement",
      [
        Alcotest.test_case "streamed = padded" `Quick test_measurement_stream;
        Alcotest.test_case "launch still verifies" `Quick test_launch_measurement_still_verifies;
      ] );
    ("dataplane.perf", [ Alcotest.test_case "run + json" `Quick test_perf_run_and_json ]);
  ]
