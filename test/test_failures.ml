(* Failure injection: resource exhaustion, error-path cleanliness and
   recovery. A production TEE must degrade cleanly when KeyIDs,
   memory or mailbox slots run out — and recover once resources
   return. *)

open Hypertee
module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module Emcall = Hypertee_cs.Emcall
module Config = Hypertee_arch.Config
module Mem_encryption = Hypertee_arch.Mem_encryption
module Phys_mem = Hypertee_arch.Phys_mem

let check = Alcotest.check

let tiny_image = Sdk.image_of_code ~code:(Bytes.of_string "x") ~data:Bytes.empty ()

let small_config =
  {
    Types.code_pages = 1;
    data_pages = 1;
    heap_pages = 1;
    stack_pages = 1;
    shared_pages = 1;
  }

let small_image = { tiny_image with Sdk.config = small_config }

(* --- KeyID exhaustion (Sec. IV-C) --- *)

let test_keyid_exhaustion_and_recovery () =
  let platform = Platform.create ~seed:0xF1L () in
  let mee = Platform.Internals.mee platform in
  (* Burn every programmable slot except a handful. *)
  let rec burn () =
    match Mem_encryption.find_free_slot mee with
    | Some key_id when key_id < Mem_encryption.slots mee - 3 ->
      Mem_encryption.program mee ~key_id (Bytes.make 16 'x');
      burn ()
    (* [find_free_slot] reserves: release the slot we only peeked. *)
    | Some key_id -> Mem_encryption.revoke mee ~key_id
    | None -> ()
  in
  burn ();
  (* A few launches still fit; keep them Running so their keys are
     not parkable (Sec. IV-C parking only suspends idle enclaves). *)
  let e1 = Result.get_ok (Sdk.launch platform small_image) in
  let _s1 = Result.get_ok (Sdk.enter platform ~enclave:e1) in
  let e2 = Result.get_ok (Sdk.launch platform small_image) in
  let _s2 = Result.get_ok (Sdk.enter platform ~enclave:e2) in
  let e3 = Result.get_ok (Sdk.launch platform small_image) in
  let _s3 = Result.get_ok (Sdk.enter platform ~enclave:e3) in
  (* ...then the well is dry. *)
  (match Sdk.launch platform small_image with
  | Error m -> check Alcotest.string "reported as KeyID exhaustion" (Types.error_message Types.Out_of_key_ids) m
  | Ok _ -> Alcotest.fail "launch must fail with no KeyIDs left");
  (* Destroying an enclave releases its KeyID; launching works again. *)
  Result.get_ok (Sdk.destroy platform ~enclave:e2);
  (match Sdk.launch platform small_image with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "recovery failed: %s" m);
  ignore (e1, e3)

(* --- Memory exhaustion --- *)

let test_memory_exhaustion_clean_failure () =
  (* A platform so small that a large enclave cannot fit. *)
  let config = { Config.default with Config.memory_mb = 2; ems_memory_mb = 1 } in
  let platform = Platform.create ~seed:0xF2L ~config () in
  let huge =
    {
      tiny_image with
      Sdk.config = { small_config with Types.heap_pages = 4096 };
    }
  in
  (match Sdk.launch platform huge with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized enclave must not launch");
  (* The failure must not leak the KeyID it grabbed: a small enclave
     still launches afterwards. *)
  match Sdk.launch platform small_image with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "small launch after failed big launch: %s" m

let test_alloc_failure_reports_out_of_memory () =
  let config = { Config.default with Config.memory_mb = 2; ems_memory_mb = 1 } in
  let platform = Platform.create ~seed:0xF3L ~config () in
  let enclave = Result.get_ok (Sdk.launch platform small_image) in
  let session = Result.get_ok (Sdk.enter platform ~enclave) in
  match Session.alloc session ~pages:8192 with
  | Error Types.Out_of_memory -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Types.error_message e)
  | Ok _ -> Alcotest.fail "impossible allocation succeeded"

(* --- Mailbox pressure --- *)

let test_mailbox_depth_is_not_observable_failure () =
  (* The platform drains the mailbox synchronously inside the gate,
     so sustained load never wedges it: a long burst of primitives
     all succeed. *)
  let platform = Platform.create ~seed:0xF4L () in
  let enclave = Result.get_ok (Sdk.launch platform tiny_image) in
  let session = Result.get_ok (Sdk.enter platform ~enclave) in
  for _ = 1 to 500 do
    match Session.alloc session ~pages:1 with
    | Ok va -> ignore (Session.free session ~va ~pages:1)
    | Error e -> Alcotest.failf "burst failed: %s" (Types.error_message e)
  done

(* --- Error paths leave no partial state --- *)

let test_failed_create_leaves_no_ownership () =
  let config = { Config.default with Config.memory_mb = 2; ems_memory_mb = 1 } in
  let platform = Platform.create ~seed:0xF5L ~config () in
  let runtime = Platform.Internals.runtime platform in
  let before = Hypertee_ems.Ownership.size (Runtime.ownership runtime) in
  let huge =
    { tiny_image with Sdk.config = { small_config with Types.heap_pages = 4096 } }
  in
  (match Sdk.launch platform huge with Error _ -> () | Ok _ -> Alcotest.fail "must fail");
  (* No enclave exists, so no private ownership should remain from
     the failed attempt beyond what a subsequent launch can reuse. *)
  check Alcotest.bool "no stuck live enclaves" true (Runtime.live_enclaves runtime = []);
  ignore before

let test_double_destroy_rejected () =
  let platform = Platform.create ~seed:0xF6L () in
  let enclave = Result.get_ok (Sdk.launch platform tiny_image) in
  Result.get_ok (Sdk.destroy platform ~enclave);
  match Sdk.destroy platform ~enclave with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double destroy must be rejected"

let test_shm_of_destroyed_owner () =
  let platform = Platform.create ~seed:0xF7L () in
  let owner = Result.get_ok (Sdk.launch platform tiny_image) in
  let session = Result.get_ok (Sdk.enter platform ~enclave:owner) in
  let shm = Result.get_ok (Session.shmget session ~pages:1 ~max_perm:Types.Read_write) in
  Result.get_ok (Sdk.destroy platform ~enclave:owner);
  (* The region's owner is gone; a third party still cannot grab it. *)
  let other = Result.get_ok (Sdk.launch platform small_image) in
  let other_s = Result.get_ok (Sdk.enter platform ~enclave:other) in
  match Session.shmat other_s ~shm ~perm:Types.Read_only with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "orphaned shm must not be attachable without a grant"

(* --- Random-operation robustness (monkey test) --- *)

let test_random_operation_storm () =
  let platform = Platform.create ~seed:0xF8L () in
  let rng = Hypertee_util.Xrng.create 0x5708L in
  let live = ref [] in
  for _ = 1 to 120 do
    match Hypertee_util.Xrng.int rng 6 with
    | 0 -> (
      match Sdk.launch platform small_image with
      | Ok e -> live := e :: !live
      | Error _ -> ())
    | 1 -> (
      match !live with
      | e :: rest ->
        (match Sdk.destroy platform ~enclave:e with Ok () -> live := rest | Error _ -> ())
      | [] -> ())
    | 2 -> (
      match !live with
      | e :: _ -> (
        match Sdk.enter platform ~enclave:e with
        | Ok s -> (
          match Session.alloc s ~pages:(1 + Hypertee_util.Xrng.int rng 4) with
          | Ok va -> ignore (Session.free s ~va ~pages:1)
          | Error _ -> ())
        | Error _ -> ())
      | [] -> ())
    | 3 ->
      ignore
        (Platform.invoke platform ~caller:Emcall.Os_kernel
           (Types.Writeback { pages_hint = 1 + Hypertee_util.Xrng.int rng 8 }))
    | 4 ->
      (* Hostile junk at the gate. *)
      ignore
        (Platform.invoke platform ~caller:Emcall.User_host
           (Types.Destroy { enclave = Hypertee_util.Xrng.int rng 100 }))
    | _ ->
      ignore
        (Platform.invoke platform ~caller:Emcall.Os_kernel
           (Types.Enter { enclave = Hypertee_util.Xrng.int rng 100 }))
  done;
  (* The survivors are still fully functional. *)
  match Sdk.launch platform tiny_image with
  | Ok e -> (
    match Sdk.enter platform ~enclave:e with
    | Ok s ->
      Session.write s ~va:(Session.heap_va s) (Bytes.of_string "alive");
      check Alcotest.bytes "platform still healthy" (Bytes.of_string "alive")
        (Session.read s ~va:(Session.heap_va s) ~len:5)
    | Error m -> Alcotest.failf "enter after storm: %s" m)
  | Error m -> Alcotest.failf "launch after storm: %s" m

let suite =
  [
    ( "failures",
      [
        Alcotest.test_case "KeyID exhaustion and recovery" `Quick test_keyid_exhaustion_and_recovery;
        Alcotest.test_case "memory exhaustion clean failure" `Quick test_memory_exhaustion_clean_failure;
        Alcotest.test_case "alloc failure reports out-of-memory" `Quick test_alloc_failure_reports_out_of_memory;
        Alcotest.test_case "mailbox burst" `Quick test_mailbox_depth_is_not_observable_failure;
        Alcotest.test_case "failed create leaves no state" `Quick test_failed_create_leaves_no_ownership;
        Alcotest.test_case "double destroy rejected" `Quick test_double_destroy_rejected;
        Alcotest.test_case "orphaned shm not attachable" `Quick test_shm_of_destroyed_owner;
        Alcotest.test_case "random operation storm" `Quick test_random_operation_storm;
      ] );
  ]

(* --- KeyID parking (Sec. IV-C: suspend an enclave to release a
   KeyID) --- *)

let test_keyid_parking_under_pressure () =
  let platform = Platform.create ~seed:0xF9L () in
  let mee = Platform.Internals.mee platform in
  (* Leave exactly one programmable slot free. *)
  let rec burn () =
    match Mem_encryption.find_free_slot mee with
    | Some key_id when key_id < Mem_encryption.slots mee - 1 ->
      Mem_encryption.program mee ~key_id (Bytes.make 16 'x');
      burn ()
    (* [find_free_slot] reserves: release the slot we only peeked. *)
    | Some key_id -> Mem_encryption.revoke mee ~key_id
    | None -> ()
  in
  burn ();
  (* Victim takes the last slot, writes a secret, exits (idle). *)
  let victim = Result.get_ok (Sdk.launch platform small_image) in
  let vs = Result.get_ok (Sdk.enter platform ~enclave:victim) in
  Session.write vs ~va:(Session.heap_va vs) (Bytes.of_string "park me");
  Result.get_ok (Session.exit vs);
  (* A new launch finds no slot; EMS parks the idle victim's key. *)
  let newcomer = Result.get_ok (Sdk.launch platform small_image) in
  let runtime = Platform.Internals.runtime platform in
  let vecs = Option.get (Runtime.find_enclave runtime victim) in
  check Alcotest.bool "victim key parked" true vecs.Hypertee_ems.Enclave.key_parked;
  (* The newcomer works normally. *)
  let ns = Result.get_ok (Sdk.enter platform ~enclave:newcomer) in
  Session.write ns ~va:(Session.heap_va ns) (Bytes.of_string "fresh");
  check Alcotest.bytes "newcomer memory fine" (Bytes.of_string "fresh")
    (Session.read ns ~va:(Session.heap_va ns) ~len:5);
  (* While parked, DRAM holds the victim's pages under the swap key:
     still no plaintext anywhere. *)
  let mem = Platform.mem platform in
  let leaked = ref false in
  for f = 0 to Phys_mem.frames mem - 1 do
    let page = Phys_mem.read mem ~frame:f in
    for i = 0 to 4096 - 7 do
      if Bytes.equal (Bytes.sub page i 7) (Bytes.of_string "park me") then leaked := true
    done
  done;
  check Alcotest.bool "parked pages stay ciphertext" false !leaked;
  (* Entering the victim revives it: the newcomer must exit first so
     a slot (or another parkable victim) exists. *)
  Result.get_ok (Session.exit ns);
  Result.get_ok (Sdk.destroy platform ~enclave:newcomer);
  let vs' = Result.get_ok (Sdk.enter platform ~enclave:victim) in
  let v' = Option.get (Runtime.find_enclave runtime victim) in
  check Alcotest.bool "revived" false v'.Hypertee_ems.Enclave.key_parked;
  check Alcotest.bytes "memory intact across park/revive" (Bytes.of_string "park me")
    (Session.read vs' ~va:(Session.heap_va vs') ~len:7)

let test_keyid_parking_no_victim () =
  let platform = Platform.create ~seed:0xFAL () in
  let mee = Platform.Internals.mee platform in
  let rec burn () =
    match Mem_encryption.find_free_slot mee with
    | Some key_id ->
      Mem_encryption.program mee ~key_id (Bytes.make 16 'x');
      burn ()
    | None -> ()
  in
  burn ();
  (* Slots full and no idle enclave to park: creation fails cleanly. *)
  match Sdk.launch platform small_image with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "launch must fail with nothing to park"

let parking_suite =
  ( "failures.keyid_parking",
    [
      Alcotest.test_case "park and revive under pressure" `Quick test_keyid_parking_under_pressure;
      Alcotest.test_case "no parkable victim" `Quick test_keyid_parking_no_victim;
    ] )

(* --- Injected faults (Hypertee_faults): delivery and recovery
   guarantees under dropped/duplicated/corrupted responses, crashed
   and stalled EMS workers, and flipped memory bits. *)

module Fault = Hypertee_faults.Fault

let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

(* An image with enough heap for long EALLOC sequences. *)
let roomy_image =
  { tiny_image with Sdk.config = { Types.default_config with Types.heap_pages = 128 } }

let alloc_or_fail platform ~enclave ~pages =
  match
    Platform.invoke platform ~caller:(Emcall.User_enclave enclave)
      (Types.Alloc { enclave; pages })
  with
  | Ok (Types.Ok_alloc { base_vpn; _ }) -> base_vpn
  | Ok (Types.Err e) -> QCheck.Test.fail_reportf "EALLOC refused: %s" (Types.error_message e)
  | Ok _ -> QCheck.Test.fail_report "unexpected EALLOC response"
  | Error Emcall.Timeout -> QCheck.Test.fail_report "timeout under a recoverable schedule"
  | Error _ -> QCheck.Test.fail_report "gate rejection"

(* Exactly-once: the enclave heap is a bump allocator, so the k-th
   successful one-page EALLOC must return first_vpn + k - 1. A lost
   response that was recovered by re-*executing* (rather than
   retransmitting) the primitive would skip a vpn; a duplicate
   delivered twice would repeat one. *)
let prop_exactly_once_under_mailbox_faults =
  prop
    (QCheck.Test.make ~name:"exactly-once delivery under drop/duplicate/corrupt schedules"
       ~count:12
       QCheck.(tup3 (int_range 4 16) (int_bound 3) (int_bound 999))
       (fun (ops, which, salt) ->
         let site =
           match which with
           | 0 -> Fault.Mailbox_drop
           | 1 -> Fault.Mailbox_duplicate
           | 2 -> Fault.Mailbox_corrupt
           | _ -> Fault.Mailbox_drop
         in
         let faults =
           Fault.plan
             ~seed:(Int64.of_int (0xD00 + salt))
             [
               { Fault.site; schedule = Fault.Every_nth 3; intensity = 0.0 };
               { Fault.site = Fault.Mailbox_duplicate; schedule = Fault.Every_nth 5; intensity = 0.0 };
             ]
         in
         let platform = Platform.create ~seed:(Int64.of_int (777 + salt)) ~faults () in
         let enclave = Result.get_ok (Sdk.launch platform roomy_image) in
         let first = alloc_or_fail platform ~enclave ~pages:1 in
         for k = 1 to ops do
           let vpn = alloc_or_fail platform ~enclave ~pages:1 in
           if vpn <> first + k then
             QCheck.Test.fail_reportf "alloc %d returned vpn %d, expected %d (lost or re-executed)"
               k vpn (first + k)
         done;
         true))

(* Request/response binding: two enclaves with different allocation
   strides, interleaved under drop+duplicate faults. A response that
   crossed over to the other enclave's invoke would break that
   enclave's arithmetic sequence. *)
let prop_no_cross_delivery_under_faults =
  prop
    (QCheck.Test.make ~name:"no response reaches the wrong request id under faults" ~count:10
       QCheck.(list_of_size Gen.(int_range 4 24) bool)
       (fun picks ->
         let faults =
           Fault.plan ~seed:0xC805L
             [
               { Fault.site = Fault.Mailbox_drop; schedule = Fault.Every_nth 4; intensity = 0.0 };
               { Fault.site = Fault.Mailbox_duplicate; schedule = Fault.Every_nth 3; intensity = 0.0 };
             ]
         in
         let platform = Platform.create ~seed:0x1BADL ~faults () in
         let e1 = Result.get_ok (Sdk.launch platform roomy_image) in
         let e2 = Result.get_ok (Sdk.launch platform roomy_image) in
         let c1 = ref 0 and c2 = ref 0 in
         let b1 = alloc_or_fail platform ~enclave:e1 ~pages:1 in
         let b2 = alloc_or_fail platform ~enclave:e2 ~pages:3 in
         List.iter
           (fun pick_first ->
             if pick_first then begin
               incr c1;
               let vpn = alloc_or_fail platform ~enclave:e1 ~pages:1 in
               if vpn <> b1 + !c1 then
                 QCheck.Test.fail_reportf "enclave 1 got vpn %d, expected %d" vpn (b1 + !c1)
             end
             else begin
               incr c2;
               let vpn = alloc_or_fail platform ~enclave:e2 ~pages:3 in
               if vpn <> b2 + (3 * !c2) then
                 QCheck.Test.fail_reportf "enclave 2 got vpn %d, expected %d" vpn (b2 + (3 * !c2))
             end)
           picks;
         true))

(* Watchdog: crashed/stalled workers lose their in-flight requests;
   the watchdog must revive the workers and re-dispatch the parked
   jobs under their original ids, so every invoke still completes
   with its own response. *)
let prop_watchdog_redispatch_preserves_binding =
  prop
    (QCheck.Test.make ~name:"watchdog re-dispatch preserves request/response binding" ~count:10
       QCheck.(tup3 (int_range 4 16) (int_bound 50) (int_bound 999))
       (fun (ops, pct, salt) ->
         (* crash/stall probabilities up to 0.5 each: recovery fits
            easily inside the gate's poll/retry budget. *)
         let p = float_of_int pct /. 100.0 in
         let faults =
           Fault.plan
             ~seed:(Int64.of_int (0xCAFE + salt))
             [
               { Fault.site = Fault.Worker_crash; schedule = Fault.Probability p; intensity = 0.0 };
               { Fault.site = Fault.Worker_stall; schedule = Fault.Probability (p /. 2.0); intensity = 0.0 };
             ]
         in
         let platform = Platform.create ~seed:(Int64.of_int (31 + salt)) ~faults () in
         let enclave = Result.get_ok (Sdk.launch platform roomy_image) in
         let first = alloc_or_fail platform ~enclave ~pages:1 in
         for k = 1 to ops do
           let vpn = alloc_or_fail platform ~enclave ~pages:1 in
           if vpn <> first + k then
             QCheck.Test.fail_reportf "alloc %d returned vpn %d, expected %d" k vpn (first + k)
         done;
         let sched = Platform.Internals.scheduler platform in
         let module S = Hypertee_ems.Scheduler in
         if S.crashes sched + S.stalls sched > 0 && S.restarts sched = 0 then
           QCheck.Test.fail_report "workers died but the watchdog never restarted any";
         true))

let test_timeout_surfaces_cleanly () =
  (* Every response post dropped, forever: the gate must give up with
     [Timeout] after its bounded budget — no hang, no exception. *)
  let faults =
    Fault.plan [ { Fault.site = Fault.Mailbox_drop; schedule = Fault.Always; intensity = 0.0 } ]
  in
  let platform = Platform.create ~seed:0x7E0L ~faults () in
  (match
     Platform.invoke platform ~caller:Emcall.Os_kernel
       (Types.Create { config = Types.default_config })
   with
  | Error Emcall.Timeout -> ()
  | Ok _ -> Alcotest.fail "response crossed an always-drop fabric"
  | Error _ -> Alcotest.fail "wrong rejection");
  let emcall = Platform.Internals.emcall platform in
  check Alcotest.int "timeout counted" 1 (Emcall.timeouts emcall);
  check Alcotest.bool "retries were attempted" true (Emcall.retries emcall > 0);
  (* Still alive and still bounded on the next call. *)
  match
    Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 1 })
  with
  | Error Emcall.Timeout -> ()
  | _ -> Alcotest.fail "second invoke must also time out cleanly"

let test_integrity_fault_kills_enclave_not_platform () =
  (* Every DRAM line read under an enclave key arrives with a flipped
     bit. The SHA-3 MAC must catch it, EMS must terminate the victim
     — and only the victim. *)
  let faults =
    Fault.plan [ { Fault.site = Fault.Memory_bit_flip; schedule = Fault.Always; intensity = 0.0 } ]
  in
  let platform = Platform.create ~seed:0xB17L ~faults () in
  let victim = Result.get_ok (Sdk.launch platform roomy_image) in
  let session = Result.get_ok (Sdk.enter platform ~enclave:victim) in
  (* Give the victim heap pages, then force writeback to evict them:
     eviction decrypts through the engine and hits the flip. *)
  (match Session.alloc session ~pages:8 with Ok _ -> () | Error _ -> Alcotest.fail "alloc");
  (match
     Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 400 })
   with
  | Ok (Types.Err (Types.Integrity_failure _)) -> ()
  | Ok _ -> Alcotest.fail "flipped line passed the MAC check"
  | Error _ -> Alcotest.fail "gate rejection");
  let runtime = Platform.Internals.runtime platform in
  check Alcotest.bool "victim terminated" false
    (List.mem victim (Runtime.live_enclaves runtime));
  let audit = Runtime.audit runtime in
  check Alcotest.bool "containment recorded in the audit log" true
    (List.exists
       (fun (e : Hypertee_ems.Audit.fault_event) -> e.Hypertee_ems.Audit.site = "memory-integrity")
       (Hypertee_ems.Audit.fault_events audit));
  (* The platform survives: a fresh enclave launches and runs (its
     launch path only stores; no flipped line is ever read back). *)
  match Sdk.launch platform small_image with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "platform died with the enclave: %s" m

let test_zero_rate_plan_is_inert () =
  (* A uniform plan at rate 0.0 must behave exactly like no plan at
     all: same responses, same modelled latencies. *)
  let run faults =
    let platform = Platform.create ~seed:0x5A5AL ?faults () in
    let enclave = Result.get_ok (Sdk.launch platform roomy_image) in
    let trace = ref [] in
    for _ = 1 to 10 do
      match
        Platform.invoke_timed platform ~caller:(Emcall.User_enclave enclave)
          (Types.Alloc { enclave; pages = 1 })
      with
      | Ok (Types.Ok_alloc { base_vpn; _ }, latency_ns) ->
        trace := latency_ns :: float_of_int base_vpn :: !trace
      | _ -> Alcotest.fail "alloc failed"
    done;
    !trace
  in
  let bare = run None in
  let zeroed = run (Some (Fault.uniform ~rate:0.0 ())) in
  check (Alcotest.list (Alcotest.float 0.0)) "bit-identical trace" bare zeroed

let fault_suite =
  ( "failures.injected",
    [
      prop_exactly_once_under_mailbox_faults;
      prop_no_cross_delivery_under_faults;
      prop_watchdog_redispatch_preserves_binding;
      Alcotest.test_case "timeout surfaces cleanly" `Quick test_timeout_surfaces_cleanly;
      Alcotest.test_case "integrity fault kills enclave, not platform" `Quick
        test_integrity_fault_kills_enclave_not_platform;
      Alcotest.test_case "zero-rate plan is inert" `Quick test_zero_rate_plan_is_inert;
    ] )

let suite = suite @ [ parking_suite; fault_suite ]
