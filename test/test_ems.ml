(* Tests for hypertee_ems: primitive types, key management, the
   memory pool, the ownership table, enclave state machine, shm
   control structures, attestation/sealing, the cost model and the
   runtime's primitive handlers. *)

open Hypertee_ems
module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
module Mem_encryption = Hypertee_arch.Mem_encryption
module Config = Hypertee_arch.Config

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick
let rng () = Hypertee_util.Xrng.create 0xE45L

(* --- Types --- *)

let test_privileges_match_table2 () =
  (* Table II's Priv column; the warm-pool pair is enclave management
     proper, OS-only like ECREATE/EDESTROY. *)
  let os =
    [ Types.ECREATE; Types.EADD; Types.EENTER; Types.ERESUME; Types.EDESTROY; Types.EWB;
      Types.EMEAS; Types.ERETIRE; Types.EWARM ]
  in
  let user =
    [ Types.EEXIT; Types.EALLOC; Types.EFREE; Types.ESHMGET; Types.ESHMAT; Types.ESHMDT;
      Types.ESHMSHR; Types.ESHMDES; Types.EATTEST ]
  in
  List.iter (fun op -> check Alcotest.bool (Types.opcode_name op) true (Types.required_privilege op = Types.Os)) os;
  List.iter (fun op -> check Alcotest.bool (Types.opcode_name op) true (Types.required_privilege op = Types.User)) user;
  (* Table II's sixteen plus the five channel primitives (ECHOPEN,
     ECHACC, ECHSEND, ECHRECV, ECHCLOSE — docs/PROTOCOL.md §2). *)
  let chan = [ Types.ECHOPEN; Types.ECHACC; Types.ECHSEND; Types.ECHRECV; Types.ECHCLOSE ] in
  List.iter
    (fun op ->
      check Alcotest.bool (Types.opcode_name op) true (Types.required_privilege op = Types.User))
    chan;
  check Alcotest.int "sixteen + five channel + two warm-pool primitives" 23
    (List.length Types.all_opcodes)

let test_opcode_of_request () =
  check Alcotest.bool "create" true
    (Types.opcode_of_request (Types.Create { config = Types.default_config }) = Types.ECREATE);
  check Alcotest.bool "page fault -> alloc path" true
    (Types.opcode_of_request (Types.Page_fault { enclave = 1; vpn = 2 }) = Types.EALLOC)

(* --- Keymgmt --- *)

let test_key_derivations_deterministic () =
  let k1 = Keymgmt.provision (Hypertee_util.Xrng.create 5L) in
  let k2 = Keymgmt.provision (Hypertee_util.Xrng.create 5L) in
  let m = Bytes.make 32 'm' in
  check Alcotest.bytes "same seed, same memory key"
    (Keymgmt.memory_key k1 ~enclave_measurement:m ~enclave_id:1)
    (Keymgmt.memory_key k2 ~enclave_measurement:m ~enclave_id:1)

let test_key_derivations_distinct () =
  let k = Keymgmt.provision (rng ()) in
  let m = Bytes.make 32 'm' in
  let keys =
    [
      Keymgmt.memory_key k ~enclave_measurement:m ~enclave_id:1;
      Keymgmt.memory_key k ~enclave_measurement:m ~enclave_id:2;
      Keymgmt.shm_key k ~owner:1 ~shm_id:1;
      Keymgmt.shm_key k ~owner:1 ~shm_id:2;
      Keymgmt.shm_key k ~owner:2 ~shm_id:1;
      Keymgmt.report_key k ~challenger_measurement:m;
      Keymgmt.sealing_key k ~enclave_measurement:m;
      Keymgmt.swap_key k;
    ]
  in
  check Alcotest.int "all derivations distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_key_erase_changes_derivations () =
  let k = Keymgmt.provision (rng ()) in
  let before = Keymgmt.swap_key k in
  (* A different RNG seed: erasing with the very stream that
     provisioned the key would regenerate the same SK. *)
  Keymgmt.erase k (Hypertee_util.Xrng.create 0xDEADL);
  check Alcotest.bool "derivation changed" false (Bytes.equal before (Keymgmt.swap_key k))

let test_ek_ak_sign () =
  let k = Keymgmt.provision (rng ()) in
  let msg = Bytes.of_string "platform state" in
  check Alcotest.bool "EK signature verifies" true
    (Hypertee_crypto.Rsa.verify (Keymgmt.ek_public k) ~msg ~signature:(Keymgmt.sign_with_ek k msg));
  check Alcotest.bool "AK differs from EK" false
    (Hypertee_crypto.Rsa.verify (Keymgmt.ek_public k) ~msg ~signature:(Keymgmt.sign_with_ak k msg))

(* --- Mem_pool --- *)

type pool_fixture = {
  mem : Phys_mem.t;
  pool : Mem_pool.t;
  requests : int ref;
  os_free : int list ref;
}

let pool_fixture ?(frames = 1024) () =
  let mem = Phys_mem.create ~frames in
  let bitmap = Bitmap.create mem in
  let requests = ref 0 in
  let os_free = ref [] in
  let os_request ~n =
    incr requests;
    match Phys_mem.find_free mem ~n with
    | Some fs ->
      List.iter (fun f -> Phys_mem.set_owner mem f Phys_mem.Cs_os) fs;
      fs
    | None -> []
  in
  let os_return ~frames = os_free := frames @ !os_free in
  let pool =
    Mem_pool.create (rng ()) ~mem ~bitmap ~os_request ~os_return ~initial_frames:64
  in
  { mem; pool; requests; os_free }

let test_pool_take_give_back () =
  let f = pool_fixture () in
  let before = Mem_pool.available f.pool in
  match Mem_pool.take f.pool ~n:8 with
  | None -> Alcotest.fail "take failed"
  | Some frames ->
    check Alcotest.int "eight frames" 8 (List.length frames);
    List.iter
      (fun fr ->
        check Alcotest.bool "still marked pool owner until mapped" true
          (Phys_mem.owner f.mem fr = Phys_mem.Pool))
      frames;
    Mem_pool.give_back f.pool frames;
    check Alcotest.bool "conserved (refills may add)" true (Mem_pool.available f.pool >= before)

let test_pool_hides_allocations () =
  let f = pool_fixture () in
  let before = !(f.requests) in
  (* Many small takes within pool capacity: no OS interaction beyond
     possibly one threshold refill. *)
  for _ = 1 to 10 do
    match Mem_pool.take f.pool ~n:2 with
    | Some frames -> Mem_pool.give_back f.pool frames
    | None -> Alcotest.fail "take failed"
  done;
  check Alcotest.bool "OS observes almost nothing" true (!(f.requests) - before <= 1)

let test_pool_refills_on_demand () =
  let f = pool_fixture () in
  let want = Mem_pool.available f.pool + 32 in
  match Mem_pool.take f.pool ~n:want with
  | Some frames ->
    check Alcotest.int "got everything" want (List.length frames);
    check Alcotest.bool "OS was asked" true (!(f.requests) > 1)
  | None -> Alcotest.fail "refill should cover"

let test_pool_threshold_randomized () =
  let f = pool_fixture () in
  let seen = ref [] in
  for _ = 1 to 12 do
    (* Draining below the low-water mark re-randomizes the threshold. *)
    (match Mem_pool.take f.pool ~n:(Stdlib.max 1 (Mem_pool.available f.pool - 2)) with
    | Some frames -> Mem_pool.give_back f.pool frames
    | None -> ());
    seen := Mem_pool.current_threshold f.pool :: !seen
  done;
  check Alcotest.bool "threshold varies" true (List.length (List.sort_uniq compare !seen) > 1)

let test_pool_zeroes_on_park () =
  let f = pool_fixture () in
  match Mem_pool.take f.pool ~n:1 with
  | Some [ frame ] ->
    Phys_mem.write f.mem ~frame (Bytes.make 4096 'S');
    Mem_pool.give_back f.pool [ frame ];
    check Alcotest.bytes "scrubbed" (Bytes.make 4096 '\000') (Phys_mem.read f.mem ~frame)
  | _ -> Alcotest.fail "take failed"

let test_pool_surrender () =
  let f = pool_fixture () in
  let n = Mem_pool.available f.pool in
  let released = Mem_pool.surrender f.pool ~n:4 in
  check Alcotest.int "four released" 4 (List.length released);
  check Alcotest.int "pool shrank" (n - 4) (Mem_pool.available f.pool);
  check Alcotest.int "returned to OS" 4 (List.length !(f.os_free));
  List.iter
    (fun fr -> check Alcotest.bool "frame freed" true (Phys_mem.owner f.mem fr = Phys_mem.Free))
    released

let test_pool_exhaustion () =
  let f = pool_fixture ~frames:96 () in
  (* The bitmap region plus the initial pool leaves little; a huge
     request must fail cleanly. *)
  check Alcotest.bool "exhaustion reported" true (Mem_pool.take f.pool ~n:10_000 = None)

(* --- Ownership --- *)

let test_ownership_exclusive () =
  let o = Ownership.create () in
  check Alcotest.bool "claim" true (Ownership.claim_private o ~frame:1 ~enclave:10);
  check Alcotest.bool "double claim rejected" false (Ownership.claim_private o ~frame:1 ~enclave:11);
  check Alcotest.bool "shared claim on owned rejected" false (Ownership.claim_shared o ~frame:1 ~shm:5);
  check Alcotest.bool "can_map false" false (Ownership.can_map_private o ~frame:1);
  Ownership.release o ~frame:1;
  check Alcotest.bool "claim after release" true (Ownership.claim_private o ~frame:1 ~enclave:11)

let test_ownership_shared_attach () =
  let o = Ownership.create () in
  ignore (Ownership.claim_shared o ~frame:2 ~shm:7);
  check Alcotest.bool "attach" true (Ownership.attach o ~frame:2 ~enclave:1);
  check Alcotest.bool "attach again rejected" false (Ownership.attach o ~frame:2 ~enclave:1);
  check Alcotest.bool "second enclave ok" true (Ownership.attach o ~frame:2 ~enclave:2);
  (match Ownership.lookup o ~frame:2 with
  | Some (Ownership.Shared_page { attached; _ }) ->
    check Alcotest.int "two attached" 2 (List.length attached)
  | _ -> Alcotest.fail "wrong record");
  check (Alcotest.option Alcotest.int) "detach reports one left" (Some 1)
    (Ownership.detach o ~frame:2 ~enclave:1);
  (match Ownership.lookup o ~frame:2 with
  | Some (Ownership.Shared_page { attached; _ }) ->
    check (Alcotest.list Alcotest.int) "one left" [ 2 ] attached
  | _ -> Alcotest.fail "wrong record");
  check (Alcotest.option Alcotest.int) "last detach reports zero" (Some 0)
    (Ownership.detach o ~frame:2 ~enclave:2);
  check (Alcotest.list Alcotest.int) "zero-attached frame visible to the leak gauge" [ 2 ]
    (Ownership.shared_zero_attached o)

let test_ownership_attach_private_rejected () =
  let o = Ownership.create () in
  ignore (Ownership.claim_private o ~frame:3 ~enclave:1);
  check Alcotest.bool "attach to private rejected" false (Ownership.attach o ~frame:3 ~enclave:2)

let test_ownership_frames_of () =
  let o = Ownership.create () in
  ignore (Ownership.claim_private o ~frame:5 ~enclave:1);
  ignore (Ownership.claim_private o ~frame:3 ~enclave:1);
  ignore (Ownership.claim_private o ~frame:4 ~enclave:2);
  check (Alcotest.list Alcotest.int) "sorted frames of enclave 1" [ 3; 5 ] (Ownership.frames_of o 1)

let prop_ownership_no_double_owner =
  prop
    (QCheck.Test.make ~name:"a frame never has two private owners" ~count:100
       QCheck.(list (pair (int_bound 50) (int_bound 5)))
       (fun claims ->
         let o = Ownership.create () in
         let model = Hashtbl.create 16 in
         List.for_all
           (fun (frame, enclave) ->
             let ok = Ownership.claim_private o ~frame ~enclave in
             if Hashtbl.mem model frame then not ok
             else begin
               Hashtbl.replace model frame enclave;
               ok
             end)
           claims))

(* --- Enclave state machine --- *)

let fresh_ecs () =
  let mem = Phys_mem.create ~frames:128 in
  let pt = Page_table.create mem ~node_owner:Phys_mem.Cs_os ~alloc:(Page_table.default_alloc mem) in
  Enclave.create ~id:1 ~config:Types.default_config ~page_table:pt ~key_id:1

let test_enclave_lifecycle_states () =
  let e = fresh_ecs () in
  check Alcotest.bool "can add while loading" true (Enclave.can_add e = Ok ());
  check Alcotest.bool "cannot enter unmeasured" true (Result.is_error (Enclave.can_enter e));
  e.Enclave.state <- Enclave.Measured;
  check Alcotest.bool "can enter measured" true (Enclave.can_enter e = Ok ());
  check Alcotest.bool "cannot add after measure" true (Result.is_error (Enclave.can_add e));
  e.Enclave.state <- Enclave.Running;
  check Alcotest.bool "can exit running" true (Enclave.can_exit e = Ok ());
  check Alcotest.bool "cannot resume running" true (Result.is_error (Enclave.can_resume e));
  e.Enclave.state <- Enclave.Interrupted;
  check Alcotest.bool "can resume interrupted" true (Enclave.can_resume e = Ok ())

let test_enclave_layout_disjoint () =
  let e = fresh_ecs () in
  let l = e.Enclave.layout in
  check Alcotest.bool "ordered regions" true
    (l.Enclave.code_base < l.Enclave.data_base
    && l.Enclave.data_base < l.Enclave.heap_base
    && l.Enclave.heap_base < l.Enclave.stack_base
    && l.Enclave.stack_base < l.Enclave.staging_base
    && l.Enclave.staging_base < l.Enclave.shm_base);
  let vpns = Enclave.static_vpns e in
  check Alcotest.int "no duplicates" (List.length vpns) (List.length (List.sort_uniq compare vpns));
  check Alcotest.int "covers config" (Types.total_static_pages Types.default_config)
    (List.length vpns)

let test_enclave_measurement_exn () =
  let e = fresh_ecs () in
  Alcotest.check_raises "unmeasured raises"
    (Invalid_argument "Enclave.measurement_exn: enclave not yet measured") (fun () ->
      ignore (Enclave.measurement_exn e))

(* --- Shm --- *)

let test_shm_grant_and_attach () =
  let t = Shm.create () in
  let _r = Shm.register t ~shm:1 ~owner:10 ~frames:[ 1; 2 ] ~key_id:3 ~max_perm:Types.Read_write in
  (* Unregistered enclave rejected. *)
  (match Shm.attach t ~shm:1 ~enclave:20 ~requested_perm:Types.Read_only ~base_vpn:0 with
  | Error Types.Not_registered -> ()
  | _ -> Alcotest.fail "must require registration");
  (* Non-owner cannot grant. *)
  (match Shm.grant t ~shm:1 ~caller:20 ~grantee:20 ~perm:Types.Read_only with
  | Error (Types.Permission_denied _) -> ()
  | _ -> Alcotest.fail "only owner grants");
  check Alcotest.bool "owner grants" true
    (Shm.grant t ~shm:1 ~caller:10 ~grantee:20 ~perm:Types.Read_only = Ok ());
  (match Shm.attach t ~shm:1 ~enclave:20 ~requested_perm:Types.Read_only ~base_vpn:100 with
  | Ok Types.Read_only -> ()
  | _ -> Alcotest.fail "attach within grant");
  (match Shm.attach t ~shm:1 ~enclave:20 ~requested_perm:Types.Read_only ~base_vpn:100 with
  | Error (Types.Invalid_argument_ _) -> ()
  | _ -> Alcotest.fail "double attach rejected")

let test_shm_perm_clamp () =
  let t = Shm.create () in
  let _ = Shm.register t ~shm:1 ~owner:10 ~frames:[ 1 ] ~key_id:3 ~max_perm:Types.Read_only in
  (* Grant asking for RW on an RO region is clamped. *)
  ignore (Shm.grant t ~shm:1 ~caller:10 ~grantee:20 ~perm:Types.Read_write);
  match Shm.attach t ~shm:1 ~enclave:20 ~requested_perm:Types.Read_write ~base_vpn:0 with
  | Error (Types.Permission_denied _) -> ()
  | Ok Types.Read_only -> ()
  | _ -> Alcotest.fail "write beyond max_perm must not be granted"

let test_shm_destroy_rules () =
  let t = Shm.create () in
  let _ = Shm.register t ~shm:1 ~owner:10 ~frames:[ 1 ] ~key_id:3 ~max_perm:Types.Read_write in
  ignore (Shm.grant t ~shm:1 ~caller:10 ~grantee:20 ~perm:Types.Read_write);
  ignore (Shm.attach t ~shm:1 ~enclave:20 ~requested_perm:Types.Read_only ~base_vpn:0);
  (match Shm.destroy t ~shm:1 ~caller:20 with
  | Error (Types.Permission_denied _) -> ()
  | _ -> Alcotest.fail "non-owner destroy rejected");
  (match Shm.destroy t ~shm:1 ~caller:10 with
  | Error (Types.Permission_denied _) -> ()
  | _ -> Alcotest.fail "destroy with active connection rejected");
  ignore (Shm.detach t ~shm:1 ~enclave:20);
  (match Shm.destroy t ~shm:1 ~caller:10 with
  | Ok region -> check (Alcotest.list Alcotest.int) "frames returned" [ 1 ] region.Shm.frames
  | Error _ -> Alcotest.fail "owner destroy after detach must succeed");
  check Alcotest.bool "gone" true (Shm.find t 1 = None)

let test_shm_active_connections () =
  let t = Shm.create () in
  let r = Shm.register t ~shm:1 ~owner:10 ~frames:[ 1 ] ~key_id:3 ~max_perm:Types.Read_write in
  check Alcotest.int "none attached" 0 (Shm.active_connections r);
  ignore (Shm.grant t ~shm:1 ~caller:10 ~grantee:20 ~perm:Types.Read_write);
  ignore (Shm.attach t ~shm:1 ~enclave:20 ~requested_perm:Types.Read_write ~base_vpn:0);
  ignore (Shm.attach t ~shm:1 ~enclave:10 ~requested_perm:Types.Read_write ~base_vpn:0);
  check Alcotest.int "two attached" 2 (Shm.active_connections r);
  check Alcotest.bool "perm queryable" true (Shm.attached_perm r 20 = Some Types.Read_write)

(* --- Attest & sealing --- *)

let test_quote_roundtrip () =
  let k = Keymgmt.provision (rng ()) in
  let q =
    Attest.make_quote k ~platform_measurement:(Bytes.make 32 'p')
      ~enclave_measurement:(Bytes.make 32 'e') ~user_data:(Bytes.of_string "nonce")
  in
  check Alcotest.bool "verifies" true
    (Attest.verify_quote ~ek:(Keymgmt.ek_public k) ~ak:(Keymgmt.ak_public k) q);
  match Attest.quote_of_bytes (Attest.quote_to_bytes q) with
  | Some q' ->
    check Alcotest.bool "wire roundtrip verifies" true
      (Attest.verify_quote ~ek:(Keymgmt.ek_public k) ~ak:(Keymgmt.ak_public k) q')
  | None -> Alcotest.fail "decode failed"

let test_quote_tamper_detected () =
  let k = Keymgmt.provision (rng ()) in
  let q =
    Attest.make_quote k ~platform_measurement:(Bytes.make 32 'p')
      ~enclave_measurement:(Bytes.make 32 'e') ~user_data:Bytes.empty
  in
  let forged = { q with Attest.enclave_measurement = Bytes.make 32 'x' } in
  check Alcotest.bool "forged measurement rejected" false
    (Attest.verify_quote ~ek:(Keymgmt.ek_public k) ~ak:(Keymgmt.ak_public k) forged)

let test_quote_wrong_keys () =
  let k1 = Keymgmt.provision (rng ()) in
  let k2 = Keymgmt.provision (Hypertee_util.Xrng.create 0x999L) in
  let q =
    Attest.make_quote k1 ~platform_measurement:(Bytes.make 32 'p')
      ~enclave_measurement:(Bytes.make 32 'e') ~user_data:Bytes.empty
  in
  check Alcotest.bool "different platform's keys fail" false
    (Attest.verify_quote ~ek:(Keymgmt.ek_public k2) ~ak:(Keymgmt.ak_public k2) q)

let test_quote_decode_garbage () =
  check Alcotest.bool "garbage rejected" true (Attest.quote_of_bytes (Bytes.make 7 'z') = None);
  check Alcotest.bool "truncated rejected" true
    (let k = Keymgmt.provision (rng ()) in
     let q =
       Attest.make_quote k ~platform_measurement:(Bytes.make 32 'p')
         ~enclave_measurement:(Bytes.make 32 'e') ~user_data:Bytes.empty
     in
     let b = Attest.quote_to_bytes q in
     Attest.quote_of_bytes (Bytes.sub b 0 (Bytes.length b - 3)) = None)

let test_local_report () =
  let k = Keymgmt.provision (rng ()) in
  let r =
    Attest.make_report k ~verifier_measurement:(Bytes.make 32 'v')
      ~challenger_measurement:(Bytes.make 32 'c')
  in
  check Alcotest.bool "verifies" true (Attest.verify_report k r);
  let forged = { r with Attest.verifier_measurement = Bytes.make 32 'x' } in
  check Alcotest.bool "forged rejected" false (Attest.verify_report k forged)

let test_seal_unseal () =
  let k = Keymgmt.provision (rng ()) in
  let m = Bytes.make 32 'm' in
  let data = Bytes.of_string "long-term secret" in
  let blob = Attest.seal k ~enclave_measurement:m data in
  check Alcotest.bool "blob is not plaintext" false (Bytes.equal blob data);
  (match Attest.unseal k ~enclave_measurement:m blob with
  | Some d -> check Alcotest.bytes "roundtrip" data d
  | None -> Alcotest.fail "unseal failed");
  check Alcotest.bool "wrong measurement rejected" true
    (Attest.unseal k ~enclave_measurement:(Bytes.make 32 'x') blob = None);
  let tampered = Bytes.copy blob in
  Bytes.set tampered 20 (Char.chr (Char.code (Bytes.get tampered 20) lxor 1));
  check Alcotest.bool "tamper rejected" true (Attest.unseal k ~enclave_measurement:m tampered = None);
  check Alcotest.bool "short blob rejected" true
    (Attest.unseal k ~enclave_measurement:m (Bytes.make 10 'a') = None)

let prop_seal_roundtrip =
  prop
    (QCheck.Test.make ~name:"seal/unseal roundtrip" ~count:40
       QCheck.(string_of_size Gen.(int_range 0 200))
       (fun s ->
         let k = Keymgmt.provision (Hypertee_util.Xrng.create 77L) in
         let m = Bytes.make 32 'm' in
         let data = Bytes.of_string s in
         match Attest.unseal k ~enclave_measurement:m (Attest.seal k ~enclave_measurement:m data) with
         | Some d -> Bytes.equal d data
         | None -> false))

(* --- Cost model --- *)

let cost_of kind engine = Cost.create ~ems:(Config.ems_core kind) ~engine

let test_cost_core_ordering () =
  let hw = Hypertee_crypto.Engine.default_hardware in
  let weak = cost_of Config.Weak hw and medium = cost_of Config.Medium hw in
  let strong = cost_of Config.Strong hw in
  check Alcotest.bool "weak slowest" true (Cost.dispatch_ns weak > Cost.dispatch_ns medium);
  check Alcotest.bool "medium ~ strong (management IPC saturates)" true
    (Cost.dispatch_ns medium /. Cost.dispatch_ns strong < 1.2)

let test_cost_crypto_engine_effect () =
  let hw = cost_of Config.Medium Hypertee_crypto.Engine.default_hardware in
  let sw = cost_of Config.Medium Hypertee_crypto.Engine.default_software in
  check Alcotest.bool "engine accelerates measurement" true
    (Cost.measure_ns sw ~bytes:4096 > 10.0 *. Cost.measure_ns hw ~bytes:4096);
  (* Non-crypto work is engine-independent. *)
  check (Alcotest.float 1e-6) "dispatch unchanged" (Cost.dispatch_ns sw) (Cost.dispatch_ns hw)

let test_cost_scales_with_pages () =
  let c = cost_of Config.Medium Hypertee_crypto.Engine.default_hardware in
  check Alcotest.bool "alloc scales" true
    (Cost.alloc_ns c ~pages:512 > 4.0 *. Cost.alloc_ns c ~pages:32);
  check Alcotest.bool "create scales" true
    (Cost.create_ns c ~static_pages:200 > Cost.create_ns c ~static_pages:20)

let test_cost_service_covers_all_requests () =
  let c = cost_of Config.Medium Hypertee_crypto.Engine.default_hardware in
  let requests =
    [
      Types.Create { config = Types.default_config };
      Types.Add { enclave = 1; vpn = 0; data = Bytes.empty; executable = false };
      Types.Enter { enclave = 1 };
      Types.Resume { enclave = 1 };
      Types.Exit { enclave = 1 };
      Types.Destroy { enclave = 1 };
      Types.Alloc { enclave = 1; pages = 4 };
      Types.Free { enclave = 1; vpn = 0; pages = 4 };
      Types.Writeback { pages_hint = 8 };
      Types.Shmget { owner = 1; pages = 4; max_perm = Types.Read_write };
      Types.Shmat { enclave = 1; shm = 1; requested_perm = Types.Read_only };
      Types.Shmdt { enclave = 1; shm = 1 };
      Types.Shmshr { owner = 1; shm = 1; grantee = 2; perm = Types.Read_only };
      Types.Shmdes { owner = 1; shm = 1 };
      Types.Measure { enclave = 1 };
      Types.Attest { enclave = 1; user_data = Bytes.empty };
      Types.Page_fault { enclave = 1; vpn = 7 };
    ]
  in
  List.iter
    (fun r -> check Alcotest.bool "positive service time" true (Cost.service_ns c r > 0.0))
    requests

let suite =
  [
    ( "ems.types",
      [
        Alcotest.test_case "Table II privileges" `Quick test_privileges_match_table2;
        Alcotest.test_case "opcode_of_request" `Quick test_opcode_of_request;
      ] );
    ( "ems.keymgmt",
      [
        Alcotest.test_case "deterministic" `Quick test_key_derivations_deterministic;
        Alcotest.test_case "distinct derivations" `Quick test_key_derivations_distinct;
        Alcotest.test_case "erase" `Quick test_key_erase_changes_derivations;
        Alcotest.test_case "EK/AK signatures" `Quick test_ek_ak_sign;
      ] );
    ( "ems.mem_pool",
      [
        Alcotest.test_case "take/give_back" `Quick test_pool_take_give_back;
        Alcotest.test_case "hides allocations from OS" `Quick test_pool_hides_allocations;
        Alcotest.test_case "refills on demand" `Quick test_pool_refills_on_demand;
        Alcotest.test_case "threshold randomized" `Quick test_pool_threshold_randomized;
        Alcotest.test_case "zeroes on park" `Quick test_pool_zeroes_on_park;
        Alcotest.test_case "surrender to OS" `Quick test_pool_surrender;
        Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
      ] );
    ( "ems.ownership",
      [
        Alcotest.test_case "exclusive private ownership" `Quick test_ownership_exclusive;
        Alcotest.test_case "shared attach/detach" `Quick test_ownership_shared_attach;
        Alcotest.test_case "attach to private rejected" `Quick test_ownership_attach_private_rejected;
        Alcotest.test_case "frames_of" `Quick test_ownership_frames_of;
        prop_ownership_no_double_owner;
      ] );
    ( "ems.enclave",
      [
        Alcotest.test_case "state machine" `Quick test_enclave_lifecycle_states;
        Alcotest.test_case "layout disjoint" `Quick test_enclave_layout_disjoint;
        Alcotest.test_case "measurement_exn" `Quick test_enclave_measurement_exn;
      ] );
    ( "ems.shm",
      [
        Alcotest.test_case "grant and attach" `Quick test_shm_grant_and_attach;
        Alcotest.test_case "permission clamp" `Quick test_shm_perm_clamp;
        Alcotest.test_case "destroy rules" `Quick test_shm_destroy_rules;
        Alcotest.test_case "active connections" `Quick test_shm_active_connections;
      ] );
    ( "ems.attest",
      [
        Alcotest.test_case "quote roundtrip" `Quick test_quote_roundtrip;
        Alcotest.test_case "tamper detected" `Quick test_quote_tamper_detected;
        Alcotest.test_case "wrong platform keys" `Quick test_quote_wrong_keys;
        Alcotest.test_case "garbage decode" `Quick test_quote_decode_garbage;
        Alcotest.test_case "local report" `Quick test_local_report;
        Alcotest.test_case "seal/unseal" `Quick test_seal_unseal;
        prop_seal_roundtrip;
      ] );
    ( "ems.cost",
      [
        Alcotest.test_case "core ordering" `Quick test_cost_core_ordering;
        Alcotest.test_case "crypto engine effect" `Quick test_cost_crypto_engine_effect;
        Alcotest.test_case "scales with pages" `Quick test_cost_scales_with_pages;
        Alcotest.test_case "covers all requests" `Quick test_cost_service_covers_all_requests;
      ] );
  ]

(* --- Scheduler (Fig. 3 / Sec. III-C) --- *)

let test_scheduler_runs_everything_once () =
  let s = Scheduler.create (Hypertee_util.Xrng.create 1L) ~workers:2 in
  let counts = Array.make 10 0 in
  for i = 0 to 9 do
    Scheduler.submit s ~id:i (fun () -> counts.(i) <- counts.(i) + 1)
  done;
  check Alcotest.int "pending" 10 (Scheduler.pending s);
  check Alcotest.int "dispatched" 10 (Scheduler.dispatch s);
  check Alcotest.int "drained" 0 (Scheduler.pending s);
  Array.iter (fun c -> check Alcotest.int "exactly once" 1 c) counts;
  check Alcotest.int "executed counter" 10 (Scheduler.executed s)

let test_scheduler_order_randomized () =
  let order_with seed =
    let s = Scheduler.create (Hypertee_util.Xrng.create seed) ~workers:2 in
    for i = 0 to 19 do
      Scheduler.submit s ~id:i (fun () -> ())
    done;
    ignore (Scheduler.dispatch s);
    List.map fst (Scheduler.execution_log s)
  in
  let o1 = order_with 1L and o2 = order_with 2L in
  check Alcotest.bool "different platforms, different order" true (o1 <> o2);
  check Alcotest.bool "not arrival order" true (o1 <> List.init 20 Fun.id);
  (* Still a permutation: nothing starved. *)
  check (Alcotest.list Alcotest.int) "permutation" (List.init 20 Fun.id) (List.sort compare o1)

let test_scheduler_spreads_over_workers () =
  let s = Scheduler.create (Hypertee_util.Xrng.create 3L) ~workers:4 in
  for i = 0 to 15 do
    Scheduler.submit s ~id:i (fun () -> ())
  done;
  ignore (Scheduler.dispatch s);
  let per_worker = Array.make 4 0 in
  List.iter (fun (_, w) -> per_worker.(w) <- per_worker.(w) + 1) (Scheduler.execution_log s);
  Array.iter (fun n -> check Alcotest.int "even round-robin" 4 n) per_worker

let test_scheduler_batches_independent () =
  let s = Scheduler.create (Hypertee_util.Xrng.create 4L) ~workers:2 in
  Scheduler.submit s ~id:1 (fun () -> ());
  ignore (Scheduler.dispatch s);
  Scheduler.submit s ~id:2 (fun () -> ());
  ignore (Scheduler.dispatch s);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "log accumulates"
    [ (1, 0); (2, 0) ] (Scheduler.execution_log s)

let scheduler_suite =
  ( "ems.scheduler",
    [
      Alcotest.test_case "runs everything exactly once" `Quick test_scheduler_runs_everything_once;
      Alcotest.test_case "order randomized per platform" `Quick test_scheduler_order_randomized;
      Alcotest.test_case "spreads over workers" `Quick test_scheduler_spreads_over_workers;
      Alcotest.test_case "batches independent" `Quick test_scheduler_batches_independent;
    ] )

let suite = suite @ [ scheduler_suite ]

(* --- Audit log --- *)

let test_audit_records_and_truncates () =
  let a = Audit.create ~capacity:10 () in
  for i = 1 to 25 do
    Audit.record a ~opcode:Types.EALLOC ~sender:(Some (i mod 3))
      ~outcome:(if i mod 5 = 0 then Audit.Refused "no" else Audit.Served)
  done;
  check Alcotest.int "total survives truncation" 25 (Audit.total a);
  check Alcotest.bool "bounded retention" true (List.length (Audit.entries a) <= 10);
  (* Sequence numbers strictly increase and end at total-1. *)
  let seqs = List.map (fun e -> e.Audit.seq) (Audit.entries a) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check Alcotest.bool "monotone seq" true (increasing seqs);
  check Alcotest.int "newest retained" 24 (List.nth seqs (List.length seqs - 1))

let test_audit_queries () =
  let a = Audit.create () in
  Audit.record a ~opcode:Types.ECREATE ~sender:None ~outcome:Audit.Served;
  Audit.record a ~opcode:Types.EFREE ~sender:(Some 7) ~outcome:(Audit.Refused "forged");
  Audit.record a ~opcode:Types.EALLOC ~sender:(Some 7) ~outcome:Audit.Served;
  check Alcotest.int "refusals" 1 (List.length (Audit.refusals a));
  check Alcotest.int "by sender" 2 (List.length (Audit.by_sender a ~sender:(Some 7)));
  check Alcotest.int "host entries" 1 (List.length (Audit.by_sender a ~sender:None))

let test_audit_truncation_drops_oldest () =
  let capacity = 10 in
  let a = Audit.create ~capacity () in
  for i = 0 to 24 do
    Audit.record a ~opcode:Types.EALLOC ~sender:(Some (i mod 3)) ~outcome:Audit.Served
  done;
  let seqs = List.map (fun e -> e.Audit.seq) (Audit.entries a) in
  (* Truncation removes from the *old* end: the retained window is a
     strictly increasing suffix of the full history. *)
  check Alcotest.bool "oldest entries gone" true (List.hd seqs >= Audit.total a - capacity);
  check Alcotest.int "newest entry kept" 24 (List.nth seqs (List.length seqs - 1));
  let rec strictly = function
    | a :: (b :: _ as rest) -> a < b && strictly rest
    | _ -> true
  in
  check Alcotest.bool "seq strictly monotonic" true (strictly seqs)

let test_audit_fault_events_truncate () =
  let capacity = 8 in
  let a = Audit.create ~capacity () in
  for i = 0 to 29 do
    Audit.record_fault a ~site:"worker" ~detail:(string_of_int i) ~recovered:(i mod 2 = 0)
  done;
  check Alcotest.int "fault total survives truncation" 30 (Audit.faults_total a);
  let evs = Audit.fault_events a in
  check Alcotest.bool "bounded retention" true (List.length evs <= capacity);
  let seqs = List.map (fun e -> e.Audit.fault_seq) evs in
  check Alcotest.bool "oldest fault events gone" true (List.hd seqs >= 30 - capacity);
  check Alcotest.int "newest fault event kept" 29 (List.nth seqs (List.length seqs - 1));
  let rec strictly = function
    | a :: (b :: _ as rest) -> a < b && strictly rest
    | _ -> true
  in
  check Alcotest.bool "fault_seq strictly monotonic" true (strictly seqs);
  (* The two logs are independent: primitive entries untouched. *)
  check Alcotest.int "primitive log untouched" 0 (Audit.total a)

let audit_suite =
  ( "ems.audit",
    [
      Alcotest.test_case "records and truncates" `Quick test_audit_records_and_truncates;
      Alcotest.test_case "queries" `Quick test_audit_queries;
      Alcotest.test_case "truncation drops oldest" `Quick test_audit_truncation_drops_oldest;
      Alcotest.test_case "fault events truncate" `Quick test_audit_fault_events_truncate;
    ] )

let suite = suite @ [ audit_suite ]

(* --- Scheduler under batched dispatch and fault plans --- *)

module Fault = Hypertee_faults.Fault

let test_scheduler_same_seed_same_order () =
  let order_with seed =
    let s = Scheduler.create (Hypertee_util.Xrng.create seed) ~workers:3 in
    for i = 0 to 19 do
      Scheduler.submit s ~id:i (fun () -> ())
    done;
    ignore (Scheduler.dispatch s);
    Scheduler.execution_log s
  in
  (* The shuffle is a function of the platform seed alone: same seed,
     same dispatch order *and* placement. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "same seed, same shuffled order" (order_with 42L) (order_with 42L)

let test_scheduler_fairness_across_live_workers () =
  let s = Scheduler.create (Hypertee_util.Xrng.create 7L) ~workers:4 in
  let inj =
    Fault.create
      (Fault.plan [ { Fault.site = Fault.Worker_crash; schedule = Fault.Once_at 1; intensity = 0.0 } ])
  in
  Scheduler.set_fault_injector s inj;
  for i = 0 to 12 do
    Scheduler.submit s ~id:i (fun () -> ())
  done;
  (* The first strike kills one worker and parks its job; the rest of
     the batch round-robins over the three survivors. *)
  check Alcotest.int "twelve ran" 12 (Scheduler.dispatch s);
  check Alcotest.int "crashed job parked, not lost" 1 (Scheduler.pending s);
  check Alcotest.int "three live workers" 3 (Scheduler.alive_workers s);
  let per_worker = Array.make 4 0 in
  List.iter (fun (_, w) -> per_worker.(w) <- per_worker.(w) + 1) (Scheduler.execution_log s);
  let dead = ref (-1) in
  Array.iteri (fun w n -> if n = 0 then dead := w) per_worker;
  check Alcotest.bool "exactly one silent worker" true (!dead >= 0);
  Array.iteri
    (fun w n -> if w <> !dead then check Alcotest.bool "live workers share the batch" true (n >= 12 / 4))
    per_worker;
  (* Watchdog revives the worker and re-queues the parked job under
     its original id. *)
  let report = Scheduler.watchdog_scan s in
  check Alcotest.int "one dead worker found" 1 report.Scheduler.dead_workers;
  check Alcotest.int "one job redispatched" 1 (List.length report.Scheduler.redispatched);
  check Alcotest.int "recovered job runs" 1 (Scheduler.dispatch s);
  check
    (Alcotest.list Alcotest.int)
    "every id executed exactly once" (List.init 13 Fun.id)
    (List.sort compare (List.map fst (Scheduler.execution_log s)))

let test_scheduler_batch_exactly_once_under_faults () =
  let s = Scheduler.create (Hypertee_util.Xrng.create 11L) ~workers:4 in
  let inj =
    Fault.create
      (Fault.plan ~seed:5L
         [
           { Fault.site = Fault.Worker_crash; schedule = Fault.Probability 0.2; intensity = 0.0 };
           { Fault.site = Fault.Worker_stall; schedule = Fault.Probability 0.2; intensity = 0.0 };
         ])
  in
  Scheduler.set_fault_injector s inj;
  let counts = Array.make 40 0 in
  for i = 0 to 39 do
    Scheduler.submit s ~id:i (fun () -> counts.(i) <- counts.(i) + 1)
  done;
  (* Doorbell loop: dispatch, then the watchdog sweep — exactly the
     per-doorbell EMS cycle of the batched transport. *)
  let guard = ref 0 in
  while Scheduler.pending s > 0 && !guard < 100 do
    ignore (Scheduler.dispatch s);
    ignore (Scheduler.watchdog_scan s);
    incr guard
  done;
  check Alcotest.int "batch fully drained" 0 (Scheduler.pending s);
  check Alcotest.bool "faults actually struck" true (Scheduler.crashes s + Scheduler.stalls s > 0);
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "job %d exactly once" i) 1 c)
    counts;
  (* Request ids survive parking/re-dispatch: the log holds every id
     exactly once, so response bindings cannot cross. *)
  check
    (Alcotest.list Alcotest.int)
    "ids preserved across recovery" (List.init 40 Fun.id)
    (List.sort compare (List.map fst (Scheduler.execution_log s)))

let scheduler_faults_suite =
  ( "ems.scheduler.batched",
    [
      Alcotest.test_case "same seed, same dispatch order" `Quick test_scheduler_same_seed_same_order;
      Alcotest.test_case "fairness across live workers" `Quick test_scheduler_fairness_across_live_workers;
      Alcotest.test_case "exactly-once under fault plans" `Quick test_scheduler_batch_exactly_once_under_faults;
    ] )

let suite = suite @ [ scheduler_faults_suite ]
