(* Tests for interrupt/exception routing (Sec. III-B): cause
   recording, the EMS-vs-OS routing policy, the
   interrupt -> Interrupted -> ERESUME cycle, and demand paging
   through the trap path. *)

open Hypertee
module Traps = Hypertee_cs.Traps
module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module Enclave = Hypertee_ems.Enclave
module Emcall = Hypertee_cs.Emcall
module Tlb = Hypertee_arch.Tlb
module Ptw = Hypertee_arch.Ptw

let check = Alcotest.check

let setup () =
  let platform = Platform.create ~seed:0x7261AL () in
  let image = Sdk.image_of_code ~code:(Bytes.of_string "trap victim") ~data:Bytes.empty () in
  let enclave = Result.get_ok (Sdk.launch platform image) in
  let session = Result.get_ok (Sdk.enter platform ~enclave) in
  (platform, enclave, session)

let test_routing_policy () =
  let open Traps in
  check Alcotest.bool "page fault -> EMS" true (route_of_cause (Enclave_page_fault { vpn = 1 }) = To_ems);
  check Alcotest.bool "misaligned -> EMS" true (route_of_cause (Misaligned_access { va = 3 }) = To_ems);
  check Alcotest.bool "timer -> OS" true (route_of_cause Timer_interrupt = To_cs_os);
  check Alcotest.bool "illegal instr -> OS" true (route_of_cause Illegal_instruction = To_cs_os);
  check Alcotest.bool "external -> OS" true (route_of_cause External_interrupt = To_cs_os);
  check Alcotest.bool "ecall -> OS" true (route_of_cause Ecall = To_cs_os)

let test_timer_parks_enclave () =
  let platform, enclave, _ = setup () in
  let traps = Platform.traps platform in
  (match Traps.deliver traps ~enclave ~pc:0x1234 Traps.Timer_interrupt with
  | Traps.Suspended_to_os -> ()
  | Traps.Resolved -> Alcotest.fail "timer must suspend, not resolve"
  | Traps.Fault m -> Alcotest.failf "fault: %s" m);
  let ecs = Option.get (Runtime.find_enclave (Platform.Internals.runtime platform) enclave) in
  check Alcotest.bool "state Interrupted" true (ecs.Enclave.state = Enclave.Interrupted);
  check Alcotest.int "PC saved in the ECS" 0x1234 ecs.Enclave.saved_pc;
  check Alcotest.bool "cause + pc recorded by EMCall" true
    (Traps.last_recorded traps = Some (Traps.cause_code Traps.Timer_interrupt, 0x1234));
  check Alcotest.int "routed to CS" 1 (Traps.routed_to_cs traps)

let test_resume_after_interrupt () =
  let platform, enclave, session = setup () in
  Session.write session ~va:(Session.heap_va session) (Bytes.of_string "before");
  let traps = Platform.traps platform in
  (match Traps.deliver traps ~enclave ~pc:0x99 Traps.External_interrupt with
  | Traps.Suspended_to_os -> ()
  | _ -> Alcotest.fail "expected suspension");
  (* ERESUME brings the enclave back with its memory intact. *)
  let session' = Result.get_ok (Sdk.resume platform ~enclave) in
  let ecs = Option.get (Runtime.find_enclave (Platform.Internals.runtime platform) enclave) in
  check Alcotest.bool "running again" true (ecs.Enclave.state = Enclave.Running);
  check Alcotest.bytes "memory survived the world switch" (Bytes.of_string "before")
    (Session.read session' ~va:(Session.heap_va session') ~len:6)

let test_resume_requires_interrupted () =
  let platform, enclave, _ = setup () in
  match Sdk.resume platform ~enclave with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ERESUME of a running enclave must fail"

let test_page_fault_routed_and_resolved () =
  let platform, enclave, _ = setup () in
  let traps = Platform.traps platform in
  let ecs = Option.get (Runtime.find_enclave (Platform.Internals.runtime platform) enclave) in
  let vpn = ecs.Enclave.heap_cursor + 1 in
  (match Traps.deliver traps ~enclave ~pc:0x88 (Traps.Enclave_page_fault { vpn }) with
  | Traps.Resolved -> ()
  | Traps.Suspended_to_os -> Alcotest.fail "memory faults must go to EMS, not the OS"
  | Traps.Fault m -> Alcotest.failf "fault: %s" m);
  check Alcotest.bool "page now mapped" true
    (Hypertee_arch.Page_table.lookup ecs.Enclave.page_table ~vpn <> None);
  check Alcotest.bool "enclave kept running" true (ecs.Enclave.state = Enclave.Running);
  check Alcotest.int "routed to EMS" 1 (Traps.routed_to_ems traps)

let test_fault_outside_growable_region () =
  let platform, enclave, _ = setup () in
  let traps = Platform.traps platform in
  match Traps.deliver traps ~enclave ~pc:0x88 (Traps.Enclave_page_fault { vpn = 5 }) with
  | Traps.Fault _ -> ()
  | _ -> Alcotest.fail "a wild fault must not silently map memory"

let test_interrupt_of_idle_enclave_rejected () =
  let platform, enclave, session = setup () in
  Result.get_ok (Session.exit session);
  let traps = Platform.traps platform in
  match Traps.deliver traps ~enclave ~pc:0 Traps.Timer_interrupt with
  | Traps.Fault _ -> ()
  | _ -> Alcotest.fail "interrupting a non-running enclave must be rejected"

let test_world_switch_flushes_tlb () =
  let platform, enclave, _ = setup () in
  (* Warm core 0's TLB via a host access. *)
  let proc = Hypertee_cs.Os.spawn (Platform.os platform) in
  (match Hypertee_cs.Os.malloc_pages (Platform.os platform) proc ~pages:1 with
  | Some base ->
    ignore (Platform.host_read platform ~table:proc.Hypertee_cs.Os.page_table ~vpn:base ~off:0 ~len:1)
  | None -> Alcotest.fail "malloc failed");
  let tlb = Ptw.tlb (Platform.ptw platform ~core:0) in
  check Alcotest.bool "TLB warm" true (Tlb.occupancy tlb > 0);
  (match Traps.deliver (Platform.traps platform) ~enclave ~pc:0 Traps.Timer_interrupt with
  | Traps.Suspended_to_os -> ()
  | _ -> Alcotest.fail "expected suspension");
  check Alcotest.int "TLB flushed on the world switch" 0 (Tlb.occupancy tlb)

let suite =
  [
    ( "traps",
      [
        Alcotest.test_case "routing policy (Sec. III-B)" `Quick test_routing_policy;
        Alcotest.test_case "timer parks the enclave" `Quick test_timer_parks_enclave;
        Alcotest.test_case "interrupt -> ERESUME cycle" `Quick test_resume_after_interrupt;
        Alcotest.test_case "resume requires Interrupted" `Quick test_resume_requires_interrupted;
        Alcotest.test_case "page fault resolved by EMS" `Quick test_page_fault_routed_and_resolved;
        Alcotest.test_case "wild fault rejected" `Quick test_fault_outside_growable_region;
        Alcotest.test_case "idle enclave not interruptible" `Quick test_interrupt_of_idle_enclave_rejected;
        Alcotest.test_case "world switch flushes TLB" `Quick test_world_switch_flushes_tlb;
      ] );
  ]
