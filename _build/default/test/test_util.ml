(* Tests for hypertee_util: PRNG, statistics, ring queue, byte
   helpers, table rendering, units. *)

open Hypertee_util

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

(* --- Xrng --- *)

let test_rng_deterministic () =
  let a = Xrng.create 42L and b = Xrng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Xrng.next64 a) (Xrng.next64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Xrng.create 42L and b = Xrng.create 43L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Xrng.next64 a <> Xrng.next64 b then differs := true
  done;
  check Alcotest.bool "streams differ" true !differs

let test_rng_split_independent () =
  let a = Xrng.create 7L in
  let b = Xrng.split a in
  let xs = List.init 50 (fun _ -> Xrng.next64 a) in
  let ys = List.init 50 (fun _ -> Xrng.next64 b) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Xrng.create 9L in
  ignore (Xrng.next64 a);
  let b = Xrng.copy a in
  check Alcotest.int64 "copy continues identically" (Xrng.next64 a) (Xrng.next64 b)

let test_rng_int_bounds () =
  let rng = Xrng.create 1L in
  for _ = 1 to 1000 do
    let v = Xrng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "int out of bounds"
  done

let test_rng_int_covers_range () =
  let rng = Xrng.create 2L in
  let seen = Array.make 7 false in
  for _ = 1 to 1000 do
    seen.(Xrng.int rng 7) <- true
  done;
  check Alcotest.bool "all values hit" true (Array.for_all (fun x -> x) seen)

let test_rng_float_unit_interval () =
  let rng = Xrng.create 3L in
  for _ = 1 to 1000 do
    let v = Xrng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_float_mean () =
  let rng = Xrng.create 4L in
  let sum = ref 0.0 in
  for _ = 1 to 10000 do
    sum := !sum +. Xrng.float rng
  done;
  let mean = !sum /. 10000.0 in
  check Alcotest.bool "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_exponential_mean () =
  let rng = Xrng.create 5L in
  let sum = ref 0.0 in
  for _ = 1 to 20000 do
    sum := !sum +. Xrng.exponential rng ~mean:3.0
  done;
  let mean = !sum /. 20000.0 in
  check Alcotest.bool "exponential mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_rng_shuffle_permutation () =
  let rng = Xrng.create 6L in
  let a = Array.init 50 Fun.id in
  Xrng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Xrng.create 8L in
  for _ = 1 to 50 do
    let s = Xrng.sample_without_replacement rng ~n:10 ~from:30 in
    check Alcotest.int "ten samples" 10 (List.length s);
    check Alcotest.int "distinct" 10 (List.length (List.sort_uniq compare s));
    List.iter (fun v -> if v < 0 || v >= 30 then Alcotest.fail "out of range") s
  done

let prop_int_in =
  prop
    (QCheck.Test.make ~name:"int_in stays in range" ~count:500
       QCheck.(pair small_int small_int)
       (fun (a, b) ->
         let lo = Stdlib.min a b and hi = Stdlib.max a b in
         let rng = Xrng.create (Int64.of_int (a + (b * 1000))) in
         let v = Xrng.int_in rng lo hi in
         v >= lo && v <= hi))

(* --- Stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check Alcotest.int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "total" 10.0 (Stats.total s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p0 = min" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100 = max" 100.0 (Stats.percentile s 100.0);
  check (Alcotest.float 0.6) "p50 ~ median" 50.5 (Stats.percentile s 50.0)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "known population stddev" 2.0 (Stats.stddev s)

let test_stats_fraction_below () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check (Alcotest.float 1e-9) "half below 2" 0.5 (Stats.fraction_below s 2.0);
  check (Alcotest.float 1e-9) "all below 10" 1.0 (Stats.fraction_below s 10.0);
  check (Alcotest.float 1e-9) "none below 0.5" 0.0 (Stats.fraction_below s 0.5)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.0) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min raises" (Invalid_argument "Stats.min: empty") (fun () ->
      ignore (Stats.min s))

let test_geomean () =
  check (Alcotest.float 1e-9) "geomean" 2.0 (Stats.geomean_of [| 1.0; 2.0; 4.0 |])

let prop_percentile_monotone =
  prop
    (QCheck.Test.make ~name:"percentiles are monotone" ~count:100
       QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0.0 1000.0))
       (fun xs ->
         let s = Stats.create () in
         List.iter (Stats.add s) xs;
         let ps = [ 0.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
         let vals = List.map (Stats.percentile s) ps in
         let rec sorted = function
           | a :: (b :: _ as rest) -> a <= b +. 1e-9 && sorted rest
           | _ -> true
         in
         sorted vals))

(* --- Ring_queue --- *)

let test_ring_fifo () =
  let q = Ring_queue.create ~capacity:4 in
  List.iter (fun x -> assert (Ring_queue.push q x)) [ 1; 2; 3 ];
  check (Alcotest.option Alcotest.int) "pop 1" (Some 1) (Ring_queue.pop q);
  check (Alcotest.option Alcotest.int) "pop 2" (Some 2) (Ring_queue.pop q);
  assert (Ring_queue.push q 4);
  check (Alcotest.option Alcotest.int) "pop 3" (Some 3) (Ring_queue.pop q);
  check (Alcotest.option Alcotest.int) "pop 4" (Some 4) (Ring_queue.pop q);
  check (Alcotest.option Alcotest.int) "empty" None (Ring_queue.pop q)

let test_ring_capacity () =
  let q = Ring_queue.create ~capacity:2 in
  check Alcotest.bool "push ok" true (Ring_queue.push q 1);
  check Alcotest.bool "push ok" true (Ring_queue.push q 2);
  check Alcotest.bool "back-pressure" false (Ring_queue.push q 3);
  check Alcotest.int "length" 2 (Ring_queue.length q);
  ignore (Ring_queue.pop q);
  check Alcotest.bool "space again" true (Ring_queue.push q 3)

let test_ring_peek_clear () =
  let q = Ring_queue.create ~capacity:3 in
  ignore (Ring_queue.push q 7);
  check (Alcotest.option Alcotest.int) "peek" (Some 7) (Ring_queue.peek q);
  check Alcotest.int "peek does not consume" 1 (Ring_queue.length q);
  Ring_queue.clear q;
  check Alcotest.bool "cleared" true (Ring_queue.is_empty q)

let test_ring_to_list () =
  let q = Ring_queue.create ~capacity:3 in
  List.iter (fun x -> ignore (Ring_queue.push q x)) [ 1; 2; 3 ];
  ignore (Ring_queue.pop q);
  ignore (Ring_queue.push q 4);
  check (Alcotest.list Alcotest.int) "wrap-around order" [ 2; 3; 4 ] (Ring_queue.to_list q)

let prop_ring_matches_queue =
  prop
    (QCheck.Test.make ~name:"ring queue behaves like Queue" ~count:200
       QCheck.(list (option small_nat))
       (fun ops ->
         (* Some n = push n, None = pop. *)
         let rq = Ring_queue.create ~capacity:1000 in
         let q = Queue.create () in
         List.for_all
           (function
             | Some n ->
               let pushed = Ring_queue.push rq n in
               if pushed then Queue.push n q;
               (* Back-pressure is correct exactly when full. *)
               pushed || Queue.length q = 1000
             | None -> (
               match (Ring_queue.pop rq, Queue.take_opt q) with
               | Some a, Some b -> a = b
               | None, None -> true
               | _ -> false))
           ops))

(* --- Bytes_ext --- *)

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\x01\xfe\xff hello" in
  check Alcotest.bytes "roundtrip" b (Bytes_ext.of_hex (Bytes_ext.to_hex b))

let test_hex_known () =
  check Alcotest.string "encoding" "00ff10" (Bytes_ext.to_hex (Bytes.of_string "\x00\xff\x10"))

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Bytes_ext.of_hex: odd length") (fun () ->
      ignore (Bytes_ext.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Bytes_ext.of_hex: not a hex digit")
    (fun () -> ignore (Bytes_ext.of_hex "zz"))

let test_u32_u64 () =
  let b = Bytes.make 16 '\000' in
  Bytes_ext.set_u32_be b 0 0xDEADBEEFl;
  check Alcotest.int32 "u32 be" 0xDEADBEEFl (Bytes_ext.get_u32_be b 0);
  Bytes_ext.set_u64_le b 4 0x0123456789ABCDEFL;
  check Alcotest.int64 "u64 le" 0x0123456789ABCDEFL (Bytes_ext.get_u64_le b 4);
  Bytes_ext.set_u64_be b 8 0x0123456789ABCDEFL;
  check Alcotest.int64 "u64 be" 0x0123456789ABCDEFL (Bytes_ext.get_u64_be b 8)

let test_xor () =
  let a = Bytes.of_string "\x0f\xf0" and b = Bytes.of_string "\xff\xff" in
  check Alcotest.bytes "xor" (Bytes.of_string "\xf0\x0f") (Bytes_ext.xor a b);
  check Alcotest.bytes "self-inverse" a (Bytes_ext.xor (Bytes_ext.xor a b) b)

let test_equal_ct () =
  check Alcotest.bool "equal" true (Bytes_ext.equal_ct (Bytes.of_string "ab") (Bytes.of_string "ab"));
  check Alcotest.bool "unequal" false (Bytes_ext.equal_ct (Bytes.of_string "ab") (Bytes.of_string "ac"));
  check Alcotest.bool "length mismatch" false (Bytes_ext.equal_ct (Bytes.of_string "a") (Bytes.of_string "ab"))

let test_fill_zero () =
  let b = Bytes.of_string "secret" in
  Bytes_ext.fill_zero b;
  check Alcotest.bytes "zeroed" (Bytes.make 6 '\000') b

let prop_u64_le_roundtrip =
  prop
    (QCheck.Test.make ~name:"u64 le roundtrip" ~count:200 QCheck.int64 (fun v ->
         let b = Bytes.create 8 in
         Bytes_ext.set_u64_le b 0 v;
         Bytes_ext.get_u64_le b 0 = v))

(* --- Table --- *)

let test_table_render () =
  let s = Table.render ~headers:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ] in
  check Alcotest.bool "contains header" true (String.length s > 0 && String.contains s 'a');
  (* All lines equal width. *)
  let lines = String.split_on_char '\n' s in
  let widths = List.map String.length lines in
  check Alcotest.bool "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_short_rows_padded () =
  let s = Table.render ~headers:[ "x"; "y"; "z" ] [ [ "1" ] ] in
  check Alcotest.bool "no exception, rendered" true (String.length s > 0)

let test_formats () =
  check Alcotest.string "pct" "3.1%" (Table.pct 3.14);
  check Alcotest.string "speedup" "4.0x" (Table.speedup 4.04);
  check Alcotest.string "fmt_f" "2.50" (Table.fmt_f ~digits:2 2.5)

(* --- Units --- *)

let test_units () =
  check Alcotest.int "page size" 4096 Units.page_size;
  check Alcotest.int "pages of 1 byte" 1 (Units.pages_of_bytes 1);
  check Alcotest.int "pages of 4096" 1 (Units.pages_of_bytes 4096);
  check Alcotest.int "pages of 4097" 2 (Units.pages_of_bytes 4097);
  check Alcotest.int "pages of 0" 0 (Units.pages_of_bytes 0);
  check Alcotest.string "KiB" "4.0KiB" (Units.show_bytes 4096);
  check Alcotest.string "MiB" "2.0MiB" (Units.show_bytes (2 * 1024 * 1024));
  check Alcotest.string "ns" "500ns" (Units.show_ns 500.0);
  check Alcotest.string "us" "1.50us" (Units.show_ns 1500.0)

let suite =
  [
    ( "util.xrng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
        Alcotest.test_case "float in [0,1)" `Quick test_rng_float_unit_interval;
        Alcotest.test_case "float mean" `Quick test_rng_float_mean;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "sample without replacement" `Quick test_rng_sample_without_replacement;
        prop_int_in;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "fraction_below" `Quick test_stats_fraction_below;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        Alcotest.test_case "geomean" `Quick test_geomean;
        prop_percentile_monotone;
      ] );
    ( "util.ring_queue",
      [
        Alcotest.test_case "fifo" `Quick test_ring_fifo;
        Alcotest.test_case "capacity back-pressure" `Quick test_ring_capacity;
        Alcotest.test_case "peek and clear" `Quick test_ring_peek_clear;
        Alcotest.test_case "wrap-around to_list" `Quick test_ring_to_list;
        prop_ring_matches_queue;
      ] );
    ( "util.bytes_ext",
      [
        Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        Alcotest.test_case "hex known" `Quick test_hex_known;
        Alcotest.test_case "hex invalid" `Quick test_hex_invalid;
        Alcotest.test_case "u32/u64 accessors" `Quick test_u32_u64;
        Alcotest.test_case "xor" `Quick test_xor;
        Alcotest.test_case "constant-time equal" `Quick test_equal_ct;
        Alcotest.test_case "fill_zero" `Quick test_fill_zero;
        prop_u64_le_roundtrip;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render rectangular" `Quick test_table_render;
        Alcotest.test_case "short rows padded" `Quick test_table_short_rows_padded;
        Alcotest.test_case "formatters" `Quick test_formats;
      ] );
    ( "util.units", [ Alcotest.test_case "conversions" `Quick test_units ] );
  ]
