(* Integration tests: the full platform — lifecycle through the
   EMCall gate, memory semantics end to end, shared memory between
   enclaves, swapping, attestation and sealing, teardown and
   resource reclamation. *)

open Hypertee
module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module Enclave = Hypertee_ems.Enclave
module Emcall = Hypertee_cs.Emcall
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
module Phys_mem = Hypertee_arch.Phys_mem

let check = Alcotest.check

let fresh () = Platform.create ~seed:0x7357L ()

let default_image =
  Sdk.image_of_code ~code:(Bytes.of_string "integration enclave code")
    ~data:(Bytes.of_string "integration data") ()

let launch_and_enter ?(image = default_image) platform =
  match Sdk.launch platform image with
  | Error m -> Alcotest.failf "launch: %s" m
  | Ok enclave -> (
    match Sdk.enter platform ~enclave with
    | Ok session -> (enclave, session)
    | Error m -> Alcotest.failf "enter: %s" m)

(* --- Lifecycle --- *)

let test_launch_measures_correctly () =
  let platform = fresh () in
  match Sdk.launch platform default_image with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "launch rejected: %s" m

let test_tampered_image_detected () =
  let platform = fresh () in
  (* The OS swaps a page during loading: drive the flow manually with
     one EADD carrying different bytes than the build measured. *)
  let image = default_image in
  let created =
    Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Create { config = image.Sdk.config })
  in
  let enclave =
    match created with
    | Ok (Types.Ok_created { enclave }) -> enclave
    | _ -> Alcotest.fail "create failed"
  in
  ignore
    (Platform.invoke platform ~caller:Emcall.Os_kernel
       (Types.Add { enclave; vpn = 0x100; data = Bytes.of_string "EVIL CODE"; executable = true }));
  match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Measure { enclave }) with
  | Ok (Types.Ok_measure { measurement }) ->
    check Alcotest.bool "measurement exposes tampering" false
      (Bytes.equal measurement (Sdk.expected_measurement image))
  | _ -> Alcotest.fail "measure failed"

let test_enter_requires_measurement () =
  let platform = fresh () in
  let created =
    Platform.invoke platform ~caller:Emcall.Os_kernel
      (Types.Create { config = Types.default_config })
  in
  let enclave =
    match created with Ok (Types.Ok_created { enclave }) -> enclave | _ -> Alcotest.fail "create"
  in
  match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Enter { enclave }) with
  | Ok (Types.Err (Types.Bad_state _)) -> ()
  | _ -> Alcotest.fail "EENTER before EMEAS must be rejected"

let test_add_after_measure_rejected () =
  let platform = fresh () in
  let enclave, _ = launch_and_enter platform in
  match
    Platform.invoke platform ~caller:Emcall.Os_kernel
      (Types.Add { enclave; vpn = 0x100; data = Bytes.of_string "late"; executable = false })
  with
  | Ok (Types.Err (Types.Bad_state _)) -> ()
  | _ -> Alcotest.fail "EADD after EMEAS must be rejected (TOCTOU defense)"

let test_exit_and_reenter () =
  let platform = fresh () in
  let enclave, session = launch_and_enter platform in
  (match Session.exit session with Ok () -> () | Error e -> Alcotest.failf "exit: %s" (Types.error_message e));
  match Sdk.enter platform ~enclave with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "re-enter: %s" m

let test_destroy_reclaims_everything () =
  let platform = fresh () in
  let runtime = Platform.Internals.runtime platform in
  let mee = Platform.Internals.mee platform in
  let enclave, session = launch_and_enter platform in
  (match Session.alloc session ~pages:8 with Ok _ -> () | Error _ -> Alcotest.fail "alloc");
  let ecs = Option.get (Runtime.find_enclave runtime enclave) in
  let key_id = ecs.Enclave.key_id in
  check Alcotest.bool "key programmed" true
    (Hypertee_arch.Mem_encryption.is_programmed mee ~key_id);
  (match Sdk.destroy platform ~enclave with Ok () -> () | Error m -> Alcotest.failf "destroy: %s" m);
  check Alcotest.bool "ECS gone" true (Runtime.find_enclave runtime enclave = None);
  check Alcotest.bool "key revoked" false (Hypertee_arch.Mem_encryption.is_programmed mee ~key_id);
  check Alcotest.int "no frames still owned by the enclave" 0
    (Phys_mem.count_owned (Platform.mem platform) (fun o ->
         o = Phys_mem.Enclave enclave || o = Phys_mem.Page_table enclave))

let test_operations_on_destroyed_enclave () =
  let platform = fresh () in
  let enclave, _ = launch_and_enter platform in
  (match Sdk.destroy platform ~enclave with Ok () -> () | Error m -> Alcotest.failf "%s" m);
  match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Enter { enclave }) with
  | Ok (Types.Err Types.No_such_enclave) -> ()
  | _ -> Alcotest.fail "destroyed enclave must be unreachable"

let test_multiple_enclaves_coexist () =
  let platform = fresh () in
  let e1, s1 = launch_and_enter platform in
  let image2 = Sdk.image_of_code ~code:(Bytes.of_string "second") ~data:Bytes.empty () in
  let e2, s2 = launch_and_enter ~image:image2 platform in
  check Alcotest.bool "distinct ids" true (e1 <> e2);
  Session.write s1 ~va:(Session.heap_va s1) (Bytes.of_string "one");
  Session.write s2 ~va:(Session.heap_va s2) (Bytes.of_string "two");
  check Alcotest.bytes "e1 data intact" (Bytes.of_string "one")
    (Session.read s1 ~va:(Session.heap_va s1) ~len:3);
  check Alcotest.bytes "e2 data intact" (Bytes.of_string "two")
    (Session.read s2 ~va:(Session.heap_va s2) ~len:3)

(* --- Memory semantics --- *)

let test_heap_rw_across_pages () =
  let platform = fresh () in
  let _, session = launch_and_enter platform in
  let big = Bytes.init 10_000 (fun i -> Char.chr (i land 0xff)) in
  let va = Session.heap_va session + 100 in
  Session.write session ~va big;
  check Alcotest.bytes "multi-page roundtrip" big (Session.read session ~va ~len:10_000)

let test_demand_paging_on_heap_growth () =
  let platform = fresh () in
  let _, session = launch_and_enter platform in
  (* Touch a page above the statically mapped heap: EMCall forwards
     the fault and EMS demand-allocates. *)
  let ecs =
    Option.get (Runtime.find_enclave (Platform.Internals.runtime platform) (Session.enclave_id session))
  in
  let beyond = (ecs.Enclave.heap_cursor + 2) * 4096 in
  Session.write session ~va:beyond (Bytes.of_string "grown");
  check Alcotest.bytes "fault-in worked" (Bytes.of_string "grown") (Session.read session ~va:beyond ~len:5)

let test_alloc_free_cycle () =
  let platform = fresh () in
  let _, session = launch_and_enter platform in
  match Session.alloc session ~pages:4 with
  | Error e -> Alcotest.failf "alloc: %s" (Types.error_message e)
  | Ok va -> (
    Session.write session ~va (Bytes.of_string "transient");
    match Session.free session ~va ~pages:4 with
    | Error e -> Alcotest.failf "free: %s" (Types.error_message e)
    | Ok () -> (
      (* The freed region faults back in as zeroed memory on reuse. *)
      match Session.alloc session ~pages:4 with
      | Ok va2 ->
        check Alcotest.bytes "no stale data" (Bytes.make 9 '\000') (Session.read session ~va:va2 ~len:9)
      | Error e -> Alcotest.failf "realloc: %s" (Types.error_message e)))

let test_enclave_dram_is_ciphertext () =
  let platform = fresh () in
  let enclave, session = launch_and_enter platform in
  let secret = Bytes.of_string "very-secret-value-0123456789" in
  Session.write session ~va:(Session.heap_va session) secret;
  let ecs = Option.get (Runtime.find_enclave (Platform.Internals.runtime platform) enclave) in
  let pte = Option.get (Page_table.lookup ecs.Enclave.page_table ~vpn:ecs.Enclave.layout.Enclave.heap_base) in
  let raw = Phys_mem.read (Platform.mem platform) ~frame:pte.Pte.ppn in
  let contains_secret = ref false in
  for i = 0 to Bytes.length raw - Bytes.length secret do
    if Bytes.equal (Bytes.sub raw i (Bytes.length secret)) secret then contains_secret := true
  done;
  check Alcotest.bool "DRAM never holds plaintext" false !contains_secret

let test_staging_window_bidirectional () =
  let platform = fresh () in
  let enclave, session = launch_and_enter platform in
  (match Sdk.host_write_staging platform ~enclave ~off:16 (Bytes.of_string "host->enclave") with
  | Ok () -> ()
  | Error m -> Alcotest.failf "host write: %s" m);
  check Alcotest.bytes "enclave reads staging" (Bytes.of_string "host->enclave")
    (Session.read session ~va:(Session.staging_va session + 16) ~len:13);
  Session.write session ~va:(Session.staging_va session + 64) (Bytes.of_string "enclave->host");
  match Sdk.host_read_staging platform ~enclave ~off:64 ~len:13 with
  | Ok b -> check Alcotest.bytes "host reads result" (Bytes.of_string "enclave->host") b
  | Error m -> Alcotest.failf "host read: %s" m

(* --- Swapping (EWB) --- *)

let test_ewb_returns_randomized_count () =
  let platform = fresh () in
  let _ = launch_and_enter platform in
  match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 8 }) with
  | Ok (Types.Ok_writeback { frames; blobs }) ->
    check Alcotest.bool "at least the hint" true (List.length frames >= 8);
    check Alcotest.int "blob per frame" (List.length frames) (List.length blobs);
    (* Returned frames belong to the OS again and are not bitmap-marked. *)
    let bitmap = Platform.Internals.bitmap platform in
    List.iter
      (fun f ->
        check Alcotest.bool "bitmap cleared" false (Hypertee_arch.Bitmap.get bitmap ~frame:f);
        check Alcotest.bool "frame freed" true (Phys_mem.owner (Platform.mem platform) f = Phys_mem.Free))
      frames
  | _ -> Alcotest.fail "EWB failed"

let test_ewb_blobs_are_encrypted () =
  let platform = fresh () in
  let _ = launch_and_enter platform in
  match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 4 }) with
  | Ok (Types.Ok_writeback { blobs; _ }) ->
    List.iter
      (fun (_, blob) ->
        check Alcotest.bool "not a zero page in the clear" false
          (Bytes.equal blob (Bytes.make 4096 '\000')))
      blobs
  | _ -> Alcotest.fail "EWB failed"

let test_swap_out_and_fault_back () =
  let platform = fresh () in
  let enclave, session = launch_and_enter platform in
  let data = Bytes.of_string "survives the swap" in
  Session.write session ~va:(Session.heap_va session) data;
  (* Drain the pool so EWB must evict live enclave pages. *)
  let runtime = Platform.Internals.runtime platform in
  let pool = Runtime.pool runtime in
  ignore (Hypertee_ems.Mem_pool.surrender pool ~n:(Hypertee_ems.Mem_pool.available pool));
  (match Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 64 }) with
  | Ok (Types.Ok_writeback _) -> ()
  | _ -> Alcotest.fail "EWB failed");
  let ecs = Option.get (Runtime.find_enclave runtime enclave) in
  check Alcotest.bool "some pages swapped out" true (Hashtbl.length ecs.Enclave.swapped_out > 0);
  (* Touching the whole heap faults swapped pages back in with their
     contents intact. *)
  check Alcotest.bytes "data restored after swap-in" data
    (Session.read session ~va:(Session.heap_va session) ~len:(Bytes.length data))

(* --- Attestation / sealing end-to-end --- *)

let test_remote_attestation_end_to_end () =
  let platform = fresh () in
  let _, session = launch_and_enter platform in
  let rng = Hypertee_util.Xrng.create 11L in
  match
    Verifier.attest_enclave ~rng ~ek:(Platform.ek_public platform) ~ak:(Platform.ak_public platform)
      ~expected_measurement:(Sdk.expected_measurement default_image) session
  with
  | Ok outcome -> check Alcotest.int "session key size" 16 (Bytes.length outcome.Verifier.session_key)
  | Error f -> Alcotest.failf "attestation: %s" (Verifier.failure_message f)

let test_remote_attestation_detects_wrong_binary () =
  let platform = fresh () in
  let evil = Sdk.image_of_code ~code:(Bytes.of_string "evil twin") ~data:Bytes.empty () in
  let _, session = launch_and_enter ~image:evil platform in
  let rng = Hypertee_util.Xrng.create 12L in
  match
    Verifier.attest_enclave ~rng ~ek:(Platform.ek_public platform) ~ak:(Platform.ak_public platform)
      ~expected_measurement:(Sdk.expected_measurement default_image) session
  with
  | Error (Verifier.Measurement_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "wrong binary must not attest"
  | Error f -> Alcotest.failf "unexpected failure: %s" (Verifier.failure_message f)

let test_seal_across_instances () =
  let platform = fresh () in
  let e1, _ = launch_and_enter platform in
  let blob =
    match Platform.seal platform ~enclave:e1 (Bytes.of_string "persistent") with
    | Ok b -> b
    | Error m -> Alcotest.failf "seal: %s" m
  in
  (match Sdk.destroy platform ~enclave:e1 with Ok () -> () | Error m -> Alcotest.failf "%s" m);
  (* Same code relaunched: same measurement, can unseal. *)
  let e2, _ = launch_and_enter platform in
  (match Platform.unseal platform ~enclave:e2 blob with
  | Ok d -> check Alcotest.bytes "unsealed" (Bytes.of_string "persistent") d
  | Error m -> Alcotest.failf "unseal: %s" m);
  (* Different code: different sealing key. *)
  let other = Sdk.image_of_code ~code:(Bytes.of_string "other code") ~data:Bytes.empty () in
  let e3, _ = launch_and_enter ~image:other platform in
  match Platform.unseal platform ~enclave:e3 blob with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "different enclave unsealed foreign data"

let test_local_attestation_between_enclaves () =
  let platform = fresh () in
  let _, s1 = launch_and_enter platform in
  let image2 = Sdk.image_of_code ~code:(Bytes.of_string "peer") ~data:Bytes.empty () in
  let _, s2 = launch_and_enter ~image:image2 platform in
  match Session.local_attest ~challenger:s1 ~verifier:s2 with
  | Ok key -> check Alcotest.int "16-byte key" 16 (Bytes.length key)
  | Error m -> Alcotest.failf "local attest: %s" m

(* --- Shared memory integration --- *)

let test_shm_full_protocol () =
  let platform = fresh () in
  let _, sender = launch_and_enter platform in
  let image2 = Sdk.image_of_code ~code:(Bytes.of_string "receiver") ~data:Bytes.empty () in
  let receiver_id, receiver = launch_and_enter ~image:image2 platform in
  let shm = Result.get_ok (Session.shmget sender ~pages:2 ~max_perm:Types.Read_write) in
  Result.get_ok (Session.shmshr sender ~shm ~grantee:receiver_id ~perm:Types.Read_write);
  let va_s = Result.get_ok (Session.shmat sender ~shm ~perm:Types.Read_write) in
  let va_r = Result.get_ok (Session.shmat receiver ~shm ~perm:Types.Read_write) in
  let payload = Bytes.init 8000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  Session.write sender ~va:va_s payload;
  check Alcotest.bytes "full-region transfer" payload (Session.read receiver ~va:va_r ~len:8000);
  (* Writes flow both ways under Read_write. *)
  Session.write receiver ~va:va_r (Bytes.of_string "ACK");
  check Alcotest.bytes "reverse direction" (Bytes.of_string "ACK")
    (Session.read sender ~va:va_s ~len:3);
  Result.get_ok (Session.shmdt receiver ~shm);
  Result.get_ok (Session.shmdt sender ~shm);
  Result.get_ok (Session.shmdes sender ~shm)

let test_shm_frames_invisible_to_host () =
  let platform = fresh () in
  let _, sender = launch_and_enter platform in
  let shm = Result.get_ok (Session.shmget sender ~pages:1 ~max_perm:Types.Read_write) in
  let region = Option.get (Runtime.find_shm (Platform.Internals.runtime platform) shm) in
  let frame = List.hd region.Hypertee_ems.Shm.frames in
  (* Shared enclave pages are bitmap-protected against the host. *)
  check Alcotest.bool "bitmap set" true
    (Hypertee_arch.Bitmap.get (Platform.Internals.bitmap platform) ~frame);
  let os = Platform.os platform in
  let proc = Hypertee_cs.Os.spawn os in
  Page_table.map proc.Hypertee_cs.Os.page_table ~vpn:77
    (Pte.leaf ~ppn:frame ~r:true ~w:false ~x:false ~key_id:0);
  match Platform.host_read platform ~table:proc.Hypertee_cs.Os.page_table ~vpn:77 ~off:0 ~len:8 with
  | Error (Platform.Fault Hypertee_arch.Ptw.Bitmap_fault) -> ()
  | _ -> Alcotest.fail "host must not read shared enclave memory"

let test_shm_destroyed_region_scrubbed () =
  let platform = fresh () in
  let _, sender = launch_and_enter platform in
  let shm = Result.get_ok (Session.shmget sender ~pages:1 ~max_perm:Types.Read_write) in
  let region = Option.get (Runtime.find_shm (Platform.Internals.runtime platform) shm) in
  let frame = List.hd region.Hypertee_ems.Shm.frames in
  let va = Result.get_ok (Session.shmat sender ~shm ~perm:Types.Read_write) in
  Session.write sender ~va (Bytes.of_string "shared secret");
  Result.get_ok (Session.shmdt sender ~shm);
  Result.get_ok (Session.shmdes sender ~shm);
  check Alcotest.bytes "scrubbed on destroy" (Bytes.make 4096 '\000')
    (Phys_mem.read (Platform.mem platform) ~frame)

(* --- Invariants across a busy run --- *)

let test_global_invariants_after_stress () =
  let platform = fresh () in
  let runtime = Platform.Internals.runtime platform in
  let bitmap = Platform.Internals.bitmap platform in
  let mem = Platform.mem platform in
  (* Launch, churn, and destroy several enclaves. *)
  for round = 1 to 3 do
    let image =
      Sdk.image_of_code ~code:(Bytes.of_string (Printf.sprintf "round %d" round)) ~data:Bytes.empty ()
    in
    let enclave, session = launch_and_enter ~image platform in
    (match Session.alloc session ~pages:8 with Ok _ -> () | Error _ -> ());
    Session.write session ~va:(Session.heap_va session) (Bytes.of_string "x");
    ignore (Platform.invoke platform ~caller:Emcall.Os_kernel (Types.Writeback { pages_hint = 4 }));
    if round mod 2 = 1 then (match Sdk.destroy platform ~enclave with Ok () -> () | Error m -> Alcotest.failf "%s" m)
  done;
  (* Invariant 1: every enclave-owned frame is bitmap-marked. *)
  let violations = ref 0 in
  for f = 0 to Phys_mem.frames mem - 1 do
    match Phys_mem.owner mem f with
    | Phys_mem.Enclave _ | Phys_mem.Shared _ | Phys_mem.Page_table _ | Phys_mem.Pool ->
      if not (Hypertee_arch.Bitmap.get bitmap ~frame:f) then incr violations
    | Phys_mem.Free | Phys_mem.Cs_os ->
      if Hypertee_arch.Bitmap.get bitmap ~frame:f then incr violations
    | Phys_mem.Ems_private | Phys_mem.Bitmap_region -> ()
  done;
  check Alcotest.int "bitmap is exactly the enclave-memory set" 0 !violations;
  (* Invariant 2: the ownership table agrees with physical owners. *)
  List.iter
    (fun id ->
      let frames = Hypertee_ems.Ownership.frames_of (Runtime.ownership runtime) id in
      List.iter
        (fun f ->
          check Alcotest.bool "ownership matches phys_mem" true
            (Phys_mem.owner mem f = Phys_mem.Enclave id))
        frames)
    (Runtime.live_enclaves runtime)

let suite =
  [
    ( "platform.lifecycle",
      [
        Alcotest.test_case "launch and measure" `Quick test_launch_measures_correctly;
        Alcotest.test_case "tampered image detected" `Quick test_tampered_image_detected;
        Alcotest.test_case "enter requires measurement" `Quick test_enter_requires_measurement;
        Alcotest.test_case "EADD after EMEAS rejected" `Quick test_add_after_measure_rejected;
        Alcotest.test_case "exit and re-enter" `Quick test_exit_and_reenter;
        Alcotest.test_case "destroy reclaims everything" `Quick test_destroy_reclaims_everything;
        Alcotest.test_case "destroyed enclave unreachable" `Quick test_operations_on_destroyed_enclave;
        Alcotest.test_case "multiple enclaves coexist" `Quick test_multiple_enclaves_coexist;
      ] );
    ( "platform.memory",
      [
        Alcotest.test_case "heap rw across pages" `Quick test_heap_rw_across_pages;
        Alcotest.test_case "demand paging" `Quick test_demand_paging_on_heap_growth;
        Alcotest.test_case "alloc/free cycle" `Quick test_alloc_free_cycle;
        Alcotest.test_case "DRAM is ciphertext" `Quick test_enclave_dram_is_ciphertext;
        Alcotest.test_case "staging window" `Quick test_staging_window_bidirectional;
      ] );
    ( "platform.swap",
      [
        Alcotest.test_case "EWB randomized count" `Quick test_ewb_returns_randomized_count;
        Alcotest.test_case "EWB blobs encrypted" `Quick test_ewb_blobs_are_encrypted;
        Alcotest.test_case "swap out and fault back" `Quick test_swap_out_and_fault_back;
      ] );
    ( "platform.attestation",
      [
        Alcotest.test_case "remote attestation e2e" `Quick test_remote_attestation_end_to_end;
        Alcotest.test_case "wrong binary rejected" `Quick test_remote_attestation_detects_wrong_binary;
        Alcotest.test_case "seal across instances" `Quick test_seal_across_instances;
        Alcotest.test_case "local attestation" `Quick test_local_attestation_between_enclaves;
      ] );
    ( "platform.shm",
      [
        Alcotest.test_case "full protocol" `Quick test_shm_full_protocol;
        Alcotest.test_case "frames invisible to host" `Quick test_shm_frames_invisible_to_host;
        Alcotest.test_case "destroyed region scrubbed" `Quick test_shm_destroyed_region_scrubbed;
      ] );
    ( "platform.invariants",
      [ Alcotest.test_case "global invariants after stress" `Quick test_global_invariants_after_stress ] );
  ]

(* The runtime's audit trail captures forged requests end-to-end. *)
let test_audit_captures_attack () =
  let platform = fresh () in
  let victim, _ = launch_and_enter platform in
  let eve_img = Sdk.image_of_code ~code:(Bytes.of_string "eve") ~data:Bytes.empty () in
  let eve, _ = launch_and_enter ~image:eve_img platform in
  ignore
    (Platform.invoke platform ~caller:(Emcall.User_enclave eve)
       (Types.Free { enclave = victim; vpn = 0x100; pages = 1 }));
  let audit = Runtime.audit (Platform.Internals.runtime platform) in
  let refusals = Hypertee_ems.Audit.refusals audit in
  check Alcotest.bool "forgery in the audit trail" true
    (List.exists
       (fun e ->
         e.Hypertee_ems.Audit.opcode = Types.EFREE && e.Hypertee_ems.Audit.sender = Some eve)
       refusals)

let audit_suite =
  ("platform.audit", [ Alcotest.test_case "forged request audited" `Quick test_audit_captures_attack ])

let suite = suite @ [ audit_suite ]
