(* Tests for the workload substrate and the experiment harness: the
   profiles are sane, the runner reproduces the paper's orderings,
   and every experiment's headline numbers stay in their bands. *)

module Profile = Hypertee_workloads.Profile
module Rv8 = Hypertee_workloads.Rv8
module Spec = Hypertee_workloads.Spec2017
module Runner = Hypertee_workloads.Runner
module Memstream = Hypertee_workloads.Memstream
module Dnn = Hypertee_workloads.Dnn
module Config = Hypertee_arch.Config

let check = Alcotest.check

(* --- Profiles --- *)

let test_rv8_suite_well_formed () =
  check Alcotest.int "eight benchmarks" 8 (List.length Rv8.suite);
  List.iter
    (fun p ->
      check Alcotest.bool (p.Profile.name ^ " instructions") true (p.Profile.instructions > 1e8);
      check Alcotest.bool (p.Profile.name ^ " code") true (p.Profile.code_kb > 0);
      check Alcotest.bool (p.Profile.name ^ " load pages") true (Profile.load_pages p > 0))
    Rv8.suite;
  check Alcotest.bool "lookup by name" true (Rv8.by_name "wolfssl" <> None);
  check Alcotest.bool "unknown name" true (Rv8.by_name "nonesuch" = None)

let test_spec_suite_well_formed () =
  check Alcotest.int "ten benchmarks" 10 (List.length Spec.suite);
  (* xalancbmk is the TLB outlier, as the paper states. *)
  let tlb p = p.Profile.behavior.Hypertee_arch.Perf_model.tlb_mpki in
  List.iter
    (fun p ->
      if p.Profile.name <> "xalancbmk_r" then
        check Alcotest.bool (p.Profile.name ^ " below xalancbmk") true
          (tlb p < tlb Spec.xalancbmk))
    Spec.suite

let test_enclave_config_covers_footprint () =
  List.iter
    (fun p ->
      let c = Profile.enclave_config p in
      check Alcotest.bool "code pages cover code_kb" true
        (c.Hypertee_ems.Types.code_pages * 4096 >= p.Profile.code_kb * 1024))
    Rv8.suite

(* --- Runner: Fig. 7 / Table IV orderings --- *)

let test_crypto_engine_reduces_overhead () =
  List.iter
    (fun p ->
      let sw = Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:false () in
      let hw = Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:true () in
      check Alcotest.bool (p.Profile.name ^ ": engine helps") true
        (hw.Runner.primitives_pct < sw.Runner.primitives_pct);
      check Alcotest.bool (p.Profile.name ^ ": emeas dominates sw") true
        (sw.Runner.emeas_pct > 0.5 *. sw.Runner.primitives_pct))
    Rv8.suite

let test_ems_config_ordering () =
  let avg kind =
    List.fold_left
      (fun acc p -> acc +. (Runner.run_enclave p ~ems_kind:kind ~crypto_engine:true ()).Runner.overhead_pct)
      0.0 Rv8.suite
    /. 8.0
  in
  let weak = avg Config.Weak and medium = avg Config.Medium and strong = avg Config.Strong in
  check Alcotest.bool "weak worst" true (weak > medium);
  check Alcotest.bool "medium ~= strong (paper: 0.1pp apart)" true (medium -. strong < 0.5);
  (* Paper bands: weak 5.7, medium 2.0, strong 1.9. *)
  check Alcotest.bool "weak in band" true (weak > 4.0 && weak < 8.0);
  check Alcotest.bool "medium in band" true (medium > 1.0 && medium < 3.5)

let test_table4_bands () =
  let avg f = List.fold_left (fun acc p -> acc +. f p) 0.0 Rv8.suite /. 8.0 in
  let all_sw =
    avg (fun p -> (Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:false ()).Runner.primitives_pct)
  in
  let emeas_sw =
    avg (fun p -> (Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:false ()).Runner.emeas_pct)
  in
  let all_hw =
    avg (fun p -> (Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:true ()).Runner.primitives_pct)
  in
  let emeas_hw =
    avg (fun p -> (Runner.run_enclave p ~ems_kind:Config.Medium ~crypto_engine:true ()).Runner.emeas_pct)
  in
  check Alcotest.bool "all-sw ~ 10.4" true (all_sw > 8.0 && all_sw < 13.0);
  check Alcotest.bool "emeas-sw ~ 7.8" true (emeas_sw > 6.0 && emeas_sw < 10.0);
  check Alcotest.bool "all-hw ~ 2.5" true (all_hw > 1.5 && all_hw < 3.5);
  check Alcotest.bool "emeas-hw ~ 0.1" true (emeas_hw > 0.02 && emeas_hw < 0.3)

let test_fig10_bands () =
  let overheads = List.map (fun p -> (Runner.run_host_bitmap p).Runner.overhead_pct) Spec.suite in
  let avg = List.fold_left ( +. ) 0.0 overheads /. 10.0 in
  check Alcotest.bool "average ~ 1.9" true (avg > 1.2 && avg < 2.6);
  let xal = (Runner.run_host_bitmap Spec.xalancbmk).Runner.overhead_pct in
  check Alcotest.bool "xalancbmk ~ 4.6 and the worst" true
    (xal > 3.5 && xal < 6.0 && List.for_all (fun o -> o <= xal) overheads)

let test_runner_native_unaffected_by_ems () =
  let p = Rv8.aes in
  let a = Runner.run_enclave p ~ems_kind:Config.Weak ~crypto_engine:true () in
  let b = Runner.run_enclave p ~ems_kind:Config.Strong ~crypto_engine:true () in
  check (Alcotest.float 1e-6) "native baseline identical" a.Runner.native_ns b.Runner.native_ns

(* --- MemStream (Fig. 8b) --- *)

let test_memstream_band () =
  List.iter
    (fun size ->
      let r = Memstream.run ~size_bytes:size ~latency:Config.default_latency in
      check Alcotest.bool "overhead ~ 3.1%" true
        (r.Memstream.overhead_pct > 2.0 && r.Memstream.overhead_pct < 4.5);
      check Alcotest.bool "encrypted slower" true (r.Memstream.cycles_encrypted > r.Memstream.cycles_plain))
    Memstream.paper_sizes

let test_memstream_misses_scale () =
  let small = Memstream.run ~size_bytes:(4 * 1024 * 1024) ~latency:Config.default_latency in
  let big = Memstream.run ~size_bytes:(8 * 1024 * 1024) ~latency:Config.default_latency in
  check Alcotest.bool "twice the misses" true
    (float_of_int big.Memstream.l2_misses /. float_of_int small.Memstream.l2_misses > 1.9)

(* --- DNN models --- *)

let test_dnn_shapes () =
  check Alcotest.int "six networks" 6 (List.length Dnn.all);
  (* Published magnitudes: ResNet50 ~4.1 GMACs / ~25.5 M params;
     MobileNetV1 ~569 MMACs / ~4.2 M params. *)
  let gm n = Dnn.total_macs n /. 1e9 in
  check Alcotest.bool "resnet macs" true (gm Dnn.resnet50 > 3.5 && gm Dnn.resnet50 < 4.6);
  check Alcotest.bool "mobilenet macs" true (gm Dnn.mobilenet > 0.45 && gm Dnn.mobilenet < 0.7);
  check Alcotest.bool "resnet weights ~25M" true
    (let w = Dnn.total_weight_bytes Dnn.resnet50 in
     w > 20_000_000 && w < 32_000_000);
  List.iter
    (fun n -> check Alcotest.bool (n.Dnn.name ^ " nonempty") true (List.length n.Dnn.layers > 0))
    Dnn.all

let test_fig12_bands () =
  let r = Hypertee_accel.Comm_scenario.run_dnn Dnn.resnet50 in
  check Alcotest.bool "resnet speedup > 4.0 band" true
    (r.Hypertee_accel.Comm_scenario.speedup > 3.8 && r.Hypertee_accel.Comm_scenario.speedup < 6.0);
  check Alcotest.bool "resnet crypto share ~ 74.7%" true
    (r.Hypertee_accel.Comm_scenario.crypto_share_pct > 70.0
    && r.Hypertee_accel.Comm_scenario.crypto_share_pct < 85.0);
  let m = Hypertee_accel.Comm_scenario.run_dnn Dnn.mobilenet in
  check Alcotest.bool "mobilenet speedup > 3.3 band" true
    (m.Hypertee_accel.Comm_scenario.speedup > 3.0 && m.Hypertee_accel.Comm_scenario.speedup < 5.0);
  List.iter
    (fun net ->
      let r = Hypertee_accel.Comm_scenario.run_dnn net in
      check Alcotest.bool (net.Dnn.name ^ " > 27.7x") true
        (r.Hypertee_accel.Comm_scenario.speedup > 27.7))
    [ Dnn.mlp_mnist; Dnn.mlp_committee; Dnn.mlp_autoencoder; Dnn.mlp_multimodal ];
  let nic = Hypertee_accel.Comm_scenario.run_nic ~packets:1000 ~payload_bytes:1500 in
  check Alcotest.bool "NIC ~ 50x" true
    (nic.Hypertee_accel.Comm_scenario.speedup > 40.0 && nic.Hypertee_accel.Comm_scenario.speedup < 60.0);
  check Alcotest.bool "NIC crypto ~ 98%" true (nic.Hypertee_accel.Comm_scenario.crypto_share_pct > 96.0)

let test_gemmini_roofline () =
  let g = Hypertee_accel.Gemmini.create Config.gemmini in
  (* A compute-heavy layer is compute-bound; a weight-heavy FC layer
     is data-bound. *)
  let conv = List.hd Dnn.resnet50.Dnn.layers in
  let fc =
    {
      Dnn.name = "fc-test";
      macs = 1e6;
      input_bytes = 1024;
      output_bytes = 1024;
      weight_bytes = 1_000_000;
    }
  in
  check Alcotest.bool "positive times" true
    (Hypertee_accel.Gemmini.layer_ns g conv > 0.0 && Hypertee_accel.Gemmini.layer_ns g fc > 0.0);
  check Alcotest.bool "network = sum of layers" true
    (let total = Hypertee_accel.Gemmini.network_ns g Dnn.resnet50 in
     let sum = List.fold_left (fun a l -> a +. Hypertee_accel.Gemmini.layer_ns g l) 0.0 Dnn.resnet50.Dnn.layers in
     Float.abs (total -. sum) < 1.0)

(* --- Experiments --- *)

let test_fig6_more_cores_better () =
  let run ems_cores kind =
    (Hypertee_experiments.Fig6.run ~seed:5L ~cs_cores:32 ~ems_cores ~ems_kind:kind ~requests:2000)
      .Hypertee_experiments.Fig6.p99_multiplier
  in
  let one_weak = run 1 Config.Weak in
  let two_weak = run 2 Config.Weak in
  let two_medium = run 2 Config.Medium in
  let four_medium = run 4 Config.Medium in
  check Alcotest.bool "2 weak beats 1 weak" true (two_weak < one_weak);
  check Alcotest.bool "2 medium beats 2 weak" true (two_medium < two_weak);
  check Alcotest.bool "dual medium ~ quad medium (paper)" true
    (two_medium /. four_medium < 1.6);
  check Alcotest.bool "recommended config near baseline" true (two_medium < 3.0)

let test_fig6_curve_shape () =
  let c =
    Hypertee_experiments.Fig6.run ~seed:6L ~cs_cores:4 ~ems_cores:1 ~ems_kind:Config.Weak
      ~requests:1000
  in
  (* The CDF is monotone and reaches 1. *)
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  check Alcotest.bool "monotone CDF" true (monotone c.Hypertee_experiments.Fig6.points);
  let _, last = List.nth c.Hypertee_experiments.Fig6.points (List.length c.Hypertee_experiments.Fig6.points - 1) in
  check Alcotest.bool "eventually complete" true (last > 0.99)

let test_fig8a_shape () =
  let rows = Hypertee_experiments.Fig8a.run ~reps:200 ~ems_kind:Config.Medium () in
  check Alcotest.int "five sizes" 5 (List.length rows);
  let overheads = List.map (fun r -> r.Hypertee_experiments.Fig8a.overhead_pct) rows in
  (* Paper: 6.3% at 128 KiB rising to 49.7% at 2 MiB. *)
  check Alcotest.bool "small end in band" true (List.hd overheads > 3.0 && List.hd overheads < 15.0);
  let last = List.nth overheads 4 in
  check Alcotest.bool "large end in band" true (last > 35.0 && last < 55.0);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check Alcotest.bool "monotone in size" true (increasing overheads)

let test_fig11_bands () =
  let rows = Hypertee_experiments.Fig11.run () in
  check Alcotest.int "grid size" 20 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool "within the paper's <= 1.81% bound (+margin)" true
        (r.Hypertee_experiments.Fig11.overhead_pct <= 2.0))
    rows;
  let at mb hz =
    (List.find
       (fun r -> r.Hypertee_experiments.Fig11.memory_mb = mb && r.Hypertee_experiments.Fig11.frequency_hz = hz)
       rows)
      .Hypertee_experiments.Fig11.overhead_pct
  in
  check Alcotest.bool "worst point ~ 1.81%" true (at 32 400.0 > 1.2);
  check Alcotest.bool "monotone in frequency" true (at 32 400.0 > at 32 100.0);
  check Alcotest.bool "monotone in size" true (at 32 400.0 > at 2 400.0)

let test_flush_rate_magnitude () =
  let f = Hypertee_experiments.Fig11.flushes_per_billion_instructions () in
  (* Paper: 16.72 per billion; ours must be the same order. *)
  check Alcotest.bool "order of magnitude" true (f > 5.0 && f < 100.0)

let suite =
  [
    ( "workloads.profiles",
      [
        Alcotest.test_case "rv8 well-formed" `Quick test_rv8_suite_well_formed;
        Alcotest.test_case "spec well-formed" `Quick test_spec_suite_well_formed;
        Alcotest.test_case "config covers footprint" `Quick test_enclave_config_covers_footprint;
      ] );
    ( "workloads.runner",
      [
        Alcotest.test_case "crypto engine reduces overhead" `Quick test_crypto_engine_reduces_overhead;
        Alcotest.test_case "EMS config ordering (Fig. 7)" `Quick test_ems_config_ordering;
        Alcotest.test_case "Table IV bands" `Quick test_table4_bands;
        Alcotest.test_case "Fig. 10 bands" `Quick test_fig10_bands;
        Alcotest.test_case "native baseline invariant" `Quick test_runner_native_unaffected_by_ems;
      ] );
    ( "workloads.memstream",
      [
        Alcotest.test_case "Fig. 8b band" `Quick test_memstream_band;
        Alcotest.test_case "misses scale with size" `Quick test_memstream_misses_scale;
      ] );
    ( "workloads.dnn",
      [
        Alcotest.test_case "network shapes" `Quick test_dnn_shapes;
        Alcotest.test_case "Fig. 12 bands" `Quick test_fig12_bands;
        Alcotest.test_case "gemmini roofline" `Quick test_gemmini_roofline;
      ] );
    ( "experiments",
      [
        Alcotest.test_case "Fig. 6 ordering" `Quick test_fig6_more_cores_better;
        Alcotest.test_case "Fig. 6 curve shape" `Quick test_fig6_curve_shape;
        Alcotest.test_case "Fig. 8a shape" `Quick test_fig8a_shape;
        Alcotest.test_case "Fig. 11 bands" `Quick test_fig11_bands;
        Alcotest.test_case "flush rate magnitude" `Quick test_flush_rate_magnitude;
      ] );
  ]
