test/test_platform.ml: Alcotest Bytes Char Hashtbl Hypertee Hypertee_arch Hypertee_cs Hypertee_ems Hypertee_util List Option Platform Printf Result Sdk Session Verifier
