test/test_failures.ml: Alcotest Bytes Hypertee Hypertee_arch Hypertee_cs Hypertee_ems Hypertee_util Option Platform Result Sdk Session
