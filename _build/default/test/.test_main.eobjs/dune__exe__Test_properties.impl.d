test/test_properties.ml: Bytes Gen Hypertee Hypertee_arch Hypertee_crypto Hypertee_cvm Hypertee_ems Hypertee_util Lazy List Platform QCheck QCheck_alcotest Result Sdk Session
