test/test_traps.ml: Alcotest Bytes Hypertee Hypertee_arch Hypertee_cs Hypertee_ems Option Platform Result Sdk Session
