test/test_crypto.ml: Aes Alcotest Bignum Bytes Char Dh Engine Float Gen Hmac Hypertee_crypto Hypertee_util Int64 Keccak List QCheck QCheck_alcotest Rsa Sha256 Sigma Stdlib
