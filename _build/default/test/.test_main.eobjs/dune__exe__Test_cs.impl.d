test/test_cs.ml: Alcotest Bytes Hypertee_arch Hypertee_cs Hypertee_ems Hypertee_util List Option
