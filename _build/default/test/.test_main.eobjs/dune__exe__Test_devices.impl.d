test/test_devices.ml: Alcotest Bytes Hypertee_accel Hypertee_arch Hypertee_util Hypertee_workloads Int64 List Printf
