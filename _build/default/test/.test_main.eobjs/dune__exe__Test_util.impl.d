test/test_util.ml: Alcotest Array Bytes Bytes_ext Float Fun Gen Hypertee_util Int64 List QCheck QCheck_alcotest Queue Ring_queue Stats Stdlib String Table Units Xrng
