test/test_attacks.ml: Alcotest Bytes Char Hypertee Hypertee_arch Hypertee_cs Hypertee_ems List Option Platform Result Sdk Session
