test/test_sim.ml: Alcotest Engine Event_queue Gen Hypertee_sim List QCheck QCheck_alcotest Resource
