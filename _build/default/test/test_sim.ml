(* Tests for hypertee_sim: event queue ordering, engine scheduling,
   multi-server resource semantics. *)

open Hypertee_sim

let check = Alcotest.check
let prop = QCheck_alcotest.to_alcotest ~speed_level:`Quick

(* --- Event_queue --- *)

let test_eq_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) Alcotest.string)) "a first"
    (Some (1.0, "a")) (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) Alcotest.string)) "b second"
    (Some (2.0, "b")) (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) Alcotest.string)) "c third"
    (Some (3.0, "c")) (Event_queue.pop q);
  check Alcotest.bool "empty" true (Event_queue.is_empty q)

let test_eq_tie_break_fifo () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:5.0 i
  done;
  for i = 0 to 9 do
    match Event_queue.pop q with
    | Some (_, v) -> check Alcotest.int "insertion order on ties" i v
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_eq_peek () =
  let q = Event_queue.create () in
  check (Alcotest.option (Alcotest.float 0.0)) "empty peek" None (Event_queue.peek_time q);
  Event_queue.push q ~time:7.0 ();
  check (Alcotest.option (Alcotest.float 0.0)) "peek time" (Some 7.0) (Event_queue.peek_time q);
  check Alcotest.int "length" 1 (Event_queue.length q)

let prop_eq_sorted_drain =
  prop
    (QCheck.Test.make ~name:"drain yields sorted times" ~count:100
       QCheck.(list (float_range 0.0 1000.0))
       (fun times ->
         let q = Event_queue.create () in
         List.iter (fun t -> Event_queue.push q ~time:t ()) times;
         let rec drain last =
           match Event_queue.pop q with
           | None -> true
           | Some (t, ()) -> t >= last && drain t
         in
         drain neg_infinity))

(* --- Engine --- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e ~time:10.0 (fun _ -> log := "b" :: !log);
  Engine.at e ~time:5.0 (fun _ -> log := "a" :: !log);
  Engine.after e ~delay:20.0 (fun _ -> log := "c" :: !log);
  let final = Engine.run e in
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check (Alcotest.float 0.0) "final clock" 20.0 final;
  check Alcotest.int "processed" 3 (Engine.processed e)

let test_engine_cascade () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if !count < 5 then Engine.after engine ~delay:1.0 tick
  in
  Engine.after e ~delay:1.0 tick;
  let final = Engine.run e in
  check Alcotest.int "five ticks" 5 !count;
  check (Alcotest.float 0.0) "clock advanced" 5.0 final

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.at e ~time:(float_of_int i) (fun _ -> incr count)
  done;
  let final = Engine.run ~until:5.5 e in
  check Alcotest.int "only events before the limit" 5 !count;
  check (Alcotest.float 0.0) "clock at limit" 5.5 final

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.at e ~time:10.0 (fun eng ->
      Alcotest.check_raises "past scheduling rejected" (Invalid_argument "Engine.at: time in the past")
        (fun () -> Engine.at eng ~time:5.0 (fun _ -> ())));
  ignore (Engine.run e)

(* --- Resource --- *)

let test_resource_single_server_serializes () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 in
  let completions = ref [] in
  for i = 1 to 3 do
    Resource.submit r ~service_ns:10.0 ~on_done:(fun ~queued_ns ~total_ns:_ ->
        completions := (i, queued_ns) :: !completions)
  done;
  ignore (Engine.run e);
  let completions = List.rev !completions in
  check Alcotest.int "all done" 3 (List.length completions);
  (* FCFS: queueing delays are 0, 10, 20. *)
  List.iteri
    (fun idx (_, queued) ->
      check (Alcotest.float 1e-9) "queueing delay" (float_of_int idx *. 10.0) queued)
    completions;
  check Alcotest.int "completed counter" 3 (Resource.completed r)

let test_resource_parallel_servers () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:3 in
  let max_total = ref 0.0 in
  for _ = 1 to 3 do
    Resource.submit r ~service_ns:10.0 ~on_done:(fun ~queued_ns:_ ~total_ns ->
        if total_ns > !max_total then max_total := total_ns)
  done;
  ignore (Engine.run e);
  check (Alcotest.float 1e-9) "no queueing with enough servers" 10.0 !max_total

let test_resource_queue_length () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 in
  Resource.submit r ~service_ns:10.0 ~on_done:(fun ~queued_ns:_ ~total_ns:_ -> ());
  Resource.submit r ~service_ns:10.0 ~on_done:(fun ~queued_ns:_ ~total_ns:_ -> ());
  check Alcotest.int "one waiting" 1 (Resource.queue_length r);
  check Alcotest.int "one in service" 1 (Resource.busy r);
  ignore (Engine.run e);
  check Alcotest.int "drained" 0 (Resource.queue_length r)

let prop_resource_conservation =
  prop
    (QCheck.Test.make ~name:"every submitted job completes" ~count:50
       QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 1 40) (float_range 1.0 50.0)))
       (fun (servers, services) ->
         let e = Engine.create () in
         let r = Resource.create e ~servers in
         let done_count = ref 0 in
         List.iter
           (fun s ->
             Resource.submit r ~service_ns:s ~on_done:(fun ~queued_ns:_ ~total_ns:_ ->
                 incr done_count))
           services;
         ignore (Engine.run e);
         !done_count = List.length services))

let suite =
  [
    ( "sim.event_queue",
      [
        Alcotest.test_case "ordering" `Quick test_eq_ordering;
        Alcotest.test_case "FIFO tie-break" `Quick test_eq_tie_break_fifo;
        Alcotest.test_case "peek/length" `Quick test_eq_peek;
        prop_eq_sorted_drain;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
        Alcotest.test_case "cascading events" `Quick test_engine_cascade;
        Alcotest.test_case "until limit" `Quick test_engine_until;
        Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
      ] );
    ( "sim.resource",
      [
        Alcotest.test_case "single server FCFS" `Quick test_resource_single_server_serializes;
        Alcotest.test_case "parallel servers" `Quick test_resource_parallel_servers;
        Alcotest.test_case "queue length" `Quick test_resource_queue_length;
        prop_resource_conservation;
      ] );
  ]
