type t = {
  params : Hypertee_arch.Config.accelerator;
  util : float;
  layer_setup_ns : float;
}

let create ?(util = 0.45) params = { params; util; layer_setup_ns = 3_000.0 }

let macs_per_sec t =
  float_of_int (t.params.Hypertee_arch.Config.pe_rows * t.params.Hypertee_arch.Config.pe_cols)
  *. t.params.Hypertee_arch.Config.acc_clock_ghz *. 1e9 *. t.util

(* DMA from DRAM into the global buffer: a few bytes per accelerator
   cycle, typical of AXI-attached scratchpads. *)
let fill_bytes_per_sec t = 8.0 *. t.params.Hypertee_arch.Config.acc_clock_ghz *. 1e9

let layer_ns t (layer : Hypertee_workloads.Dnn.layer) =
  let compute = layer.Hypertee_workloads.Dnn.macs /. macs_per_sec t *. 1e9 in
  let bytes =
    layer.Hypertee_workloads.Dnn.input_bytes + layer.Hypertee_workloads.Dnn.weight_bytes
    + layer.Hypertee_workloads.Dnn.output_bytes
  in
  let data = float_of_int bytes /. fill_bytes_per_sec t *. 1e9 in
  t.layer_setup_ns +. Stdlib.max compute data

let network_ns t net =
  List.fold_left (fun acc l -> acc +. layer_ns t l) 0.0 net.Hypertee_workloads.Dnn.layers
