(** Gemmini-class systolic-array accelerator timing model (paper
    Table III: 16x16 PEs, 256 KiB global buffer, 64 KiB accumulator,
    output-/weight-stationary dataflows).

    A roofline model: a layer's time is the maximum of its compute
    time (MACs over the array's effective throughput) and its data
    time (weights + activations over the scratchpad fill bandwidth),
    plus a fixed per-layer configuration cost. *)

type t

val create : ?util:float -> Hypertee_arch.Config.accelerator -> t

(** Effective MACs per second (PEs * clock * utilisation). *)
val macs_per_sec : t -> float

(** Scratchpad fill bandwidth (bytes/s). *)
val fill_bytes_per_sec : t -> float

(** [layer_ns t layer] — one layer's execution time. *)
val layer_ns : t -> Hypertee_workloads.Dnn.layer -> float

(** [network_ns t net] — sum over layers. *)
val network_ns : t -> Hypertee_workloads.Dnn.network -> float
