(** Functional NIC controller model (paper Fig. 12 scenario 2,
    Sec. V-B/C).

    A transmit descriptor ring lives in memory the driver enclave
    shares with the device; every payload fetch is a DMA that must
    pass the iHub whitelist EMS configured for the NIC's channel.
    Transmitted frames land on a loopback "wire" the tests read back,
    so the whole path — descriptor parsing, whitelist-checked DMA,
    KeyID-decrypted payloads — is exercised functionally.

    Descriptor format (16 bytes, little-endian): u64 payload frame,
    u32 offset in frame, u32 length. *)

type t

val create :
  mem:Hypertee_arch.Phys_mem.t ->
  mee:Hypertee_arch.Mem_encryption.t ->
  ihub:Hypertee_arch.Ihub.t ->
  channel:int ->
  t

val channel : t -> int

(** [set_tx_ring t ~frame ~key_id ~entries] points the device at its
    descriptor ring (a frame the driver enclave owns; DMA-read
    through the whitelist like everything else). *)
val set_tx_ring : t -> frame:int -> key_id:int -> entries:int -> unit

(** [payload_key_id t k] — KeyID the device's payload fetches carry
    (configured by EMS alongside the ring; default 0). *)
val set_payload_key_id : t -> int -> unit

type tx_error =
  | No_ring
  | Dma_denied of Hypertee_arch.Ihub.denial
  | Bad_descriptor of string
  | Integrity of int  (** frame that failed its MAC *)

(** [transmit t ~head ~count] processes [count] descriptors starting
    at ring slot [head]: fetch descriptor, whitelist-check + fetch the
    payload, push the frame onto the wire. Stops at the first error. *)
val transmit : t -> head:int -> count:int -> (int, tx_error) result

(** Frames on the loopback wire, oldest first. *)
val wire : t -> bytes list

val frames_sent : t -> int
val clear_wire : t -> unit
