(** Enclave-communication scenarios of paper Fig. 12.

    Scenario 1 — secure DNN inference on the accelerator: a user
    enclave holds the (confidential) model, a driver enclave owns the
    accelerator. In *conventional* TEEs the data path crosses
    non-enclave memory, so every transfer is software-encrypted on
    the CS core and decrypted on the other side; in *HyperTEE* the
    transfer rides plaintext encrypted-shared-memory (the engine does
    the cryptography transparently), leaving only the shm setup
    primitives.

    Scenario 2 — NIC: a network application streams packets through a
    driver enclave to the NIC. Conventional designs encrypt each
    payload in software; HyperTEE grants the NIC's DMA a whitelisted
    window over bitmap-protected shared memory.

    Reported quantities match the paper: the software-crypto share of
    conventional execution and the end-to-end speedup. *)

type dnn_result = {
  network : string;
  compute_ns : float;
  conventional_crypto_ns : float;
  conventional_total_ns : float;
  hypertee_setup_ns : float;
  hypertee_total_ns : float;
  crypto_share_pct : float;  (** of conventional total *)
  speedup : float;
}

(** [run_dnn ?batch network] — [batch] inferences (weights move once,
    activations every inference). Default batch 1. *)
val run_dnn : ?batch:int -> Hypertee_workloads.Dnn.network -> dnn_result

type nic_result = {
  packets : int;
  bytes : int;
  wire_ns : float;
  conventional_crypto_ns : float;
  conventional_total_ns : float;
  hypertee_total_ns : float;
  crypto_share_pct : float;
  speedup : float;
}

(** [run_nic ~packets ~payload_bytes] — streaming transmit. *)
val run_nic : packets:int -> payload_bytes:int -> nic_result
