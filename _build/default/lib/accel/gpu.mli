(** TEE-for-GPU model (paper Sec. IX, "TEE for GPU").

    The paper's three mechanisms, made concrete:

    1. {b Dedicated driver enclave}: the GPU's command interface is
       bound to one enclave at a time; only submissions carrying that
       enclave's identity are accepted.
    2. {b Control-path isolation}: the command ring lives in
       bitmap-protected memory; the binding is configured through
       EMS, not by the untrusted OS.
    3. {b Data-path protection}: the GPU addresses memory exclusively
       through the EMS-managed IOMMU ([Hypertee_arch.Iommu]); its
       translation entries carry the shared region's encryption
       KeyID, so the engine decrypts on the fly and the GPU never
       sees a key.

    The functional GPU executes simple compute kernels (vector add /
    scale / reduce) by really performing DMA reads and writes through
    the IOMMU into the platform's physical memory, so every isolation
    property is exercised by data actually moving. *)

type kernel =
  | Vector_add of { a : int; b : int; out : int; length : int }
      (** element-wise int64 add; operands are I/O virtual byte addresses *)
  | Vector_scale of { src : int; out : int; factor : int64; length : int }
  | Reduce_sum of { src : int; out : int; length : int }
      (** sums [length] int64s into one int64 at [out] *)

type fault =
  | Not_bound  (** no driver enclave owns the GPU *)
  | Wrong_enclave  (** submission from an enclave that is not the driver *)
  | Iommu_fault of Hypertee_arch.Iommu.fault
  | Integrity_fault

type t

val create :
  mem:Hypertee_arch.Phys_mem.t ->
  mee:Hypertee_arch.Mem_encryption.t ->
  iommu:Hypertee_arch.Iommu.t ->
  device:int ->
  t

val device : t -> int

(** [bind t ~driver] — EMS binds the control path to the driver
    enclave (exclusively; rebinding replaces). *)
val bind : t -> driver:Hypertee_ems.Types.enclave_id -> unit

val unbind : t -> unit
val bound_to : t -> Hypertee_ems.Types.enclave_id option

(** [submit t ~from kernel] — run one kernel. [from] is the enclave
    identity the command-path hardware sees on the submission. All
    data movement goes through the IOMMU with the mapped KeyIDs. *)
val submit : t -> from:Hypertee_ems.Types.enclave_id -> kernel -> (unit, fault) result

(** Kernels completed / submissions rejected. *)
val completed : t -> int

val rejected : t -> int
