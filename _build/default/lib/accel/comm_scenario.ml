module Dnn = Hypertee_workloads.Dnn

(* Software AES on the CS core for the conventional baseline:
   ~11.5 cycles/B at 2.5 GHz (an optimised table-based
   implementation). Each transferred byte is encrypted by the sender
   and decrypted by the receiver: two passes. *)
let sw_crypto_ns_per_byte = 4.6
let crypto_passes = 2.0

(* Plain memcpy bandwidth on the CS core (both designs move the bytes
   into the transfer buffer; only the baseline also encrypts). *)
let memcpy_bytes_per_ns = 12.0

(* Array utilisation by network shape: dense convs keep the systolic
   array busy; depthwise-separable layers starve it; FC layers are
   weight-bandwidth-bound and moderately utilised. *)
let util_for (net : Dnn.network) =
  if net.Dnn.name = "ResNet50" then 0.45
  else if net.Dnn.name = "MobileNet" then 0.08
  else 0.25

(* Per-transfer HyperTEE management: the shm pages were set up once
   at session establishment; per inference only a doorbell-style
   notification between enclaves remains. *)
let hypertee_per_transfer_ns = 3_000.0
let hypertee_session_setup_ns = 60_000.0 (* ESHMGET+ESHMSHR+2xESHMAT round trips *)

type dnn_result = {
  network : string;
  compute_ns : float;
  conventional_crypto_ns : float;
  conventional_total_ns : float;
  hypertee_setup_ns : float;
  hypertee_total_ns : float;
  crypto_share_pct : float;
  speedup : float;
}

let run_dnn ?(batch = 1) (net : Dnn.network) =
  let gem = Gemmini.create ~util:(util_for net) Hypertee_arch.Config.gemmini in
  let batchf = float_of_int batch in
  let compute_ns = Gemmini.network_ns gem net *. batchf in
  (* Bytes crossing the user-enclave <-> driver-enclave boundary per
     inference: each layer's input and output activations, plus the
     weights. Dense nets park weights in accelerator memory after the
     first inference; MLPs stream weights every time (no reuse and
     the FC matrices exceed the 256 KiB global buffer). *)
  let activations = float_of_int (Dnn.total_activation_bytes net) *. 2.0 in
  let weights = float_of_int (Dnn.total_weight_bytes net) in
  (* Convnet weights are provisioned into accelerator-attached memory
     at session setup and reused across inferences (outside the
     measured steady state); MLP weight matrices exceed the 256 KiB
     global buffer and see no reuse, so they stream every
     inference. *)
  let weights_streamed = if util_for net = 0.25 then weights *. batchf else 0.0 in
  let bytes = (activations *. batchf) +. weights_streamed in
  let copy_ns = bytes /. memcpy_bytes_per_ns in
  let crypto_ns = bytes *. sw_crypto_ns_per_byte *. crypto_passes in
  let transfers = float_of_int (List.length net.Dnn.layers) *. batchf in
  let conventional_total_ns = compute_ns +. copy_ns +. crypto_ns in
  let hypertee_setup_ns =
    hypertee_session_setup_ns +. (transfers *. hypertee_per_transfer_ns)
  in
  let hypertee_total_ns = compute_ns +. copy_ns +. hypertee_setup_ns in
  {
    network = net.Dnn.name;
    compute_ns;
    conventional_crypto_ns = crypto_ns;
    conventional_total_ns;
    hypertee_setup_ns;
    hypertee_total_ns;
    crypto_share_pct = crypto_ns /. conventional_total_ns *. 100.0;
    speedup = conventional_total_ns /. hypertee_total_ns;
  }

type nic_result = {
  packets : int;
  bytes : int;
  wire_ns : float;
  conventional_crypto_ns : float;
  conventional_total_ns : float;
  hypertee_total_ns : float;
  crypto_share_pct : float;
  speedup : float;
}

(* Per-packet CPU costs: protocol-stack bookkeeping and the DMA
   descriptor write are common to both designs; the baseline adds two
   software-crypto passes over the payload. Wire time (10 Gbps) is
   pipelined behind CPU processing and reported separately. *)
let stack_ns_per_packet = 200.0
let dma_ns_per_packet = 80.0
let wire_ns_per_byte = 0.8 (* 10 Gbps *)

let run_nic ~packets ~payload_bytes =
  let p = float_of_int packets and b = float_of_int payload_bytes in
  let crypto_ns = p *. b *. sw_crypto_ns_per_byte *. crypto_passes in
  let common_ns = p *. (stack_ns_per_packet +. dma_ns_per_packet) in
  let conventional_total_ns = crypto_ns +. common_ns in
  let hypertee_total_ns = common_ns in
  {
    packets;
    bytes = packets * payload_bytes;
    wire_ns = p *. b *. wire_ns_per_byte;
    conventional_crypto_ns = crypto_ns;
    conventional_total_ns;
    hypertee_total_ns;
    crypto_share_pct = crypto_ns /. conventional_total_ns *. 100.0;
    speedup = conventional_total_ns /. hypertee_total_ns;
  }
