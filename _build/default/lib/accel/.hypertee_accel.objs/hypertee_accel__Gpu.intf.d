lib/accel/gpu.mli: Hypertee_arch Hypertee_ems
