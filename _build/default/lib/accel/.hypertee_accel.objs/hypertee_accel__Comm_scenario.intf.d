lib/accel/comm_scenario.mli: Hypertee_workloads
