lib/accel/comm_scenario.ml: Gemmini Hypertee_arch Hypertee_workloads List
