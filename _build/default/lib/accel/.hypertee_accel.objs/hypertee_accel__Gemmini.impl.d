lib/accel/gemmini.ml: Hypertee_arch Hypertee_workloads List Stdlib
