lib/accel/nic.ml: Bytes Hypertee_arch Hypertee_util Int64 List Result
