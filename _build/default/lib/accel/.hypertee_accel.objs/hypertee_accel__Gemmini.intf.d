lib/accel/gemmini.mli: Hypertee_arch Hypertee_workloads
