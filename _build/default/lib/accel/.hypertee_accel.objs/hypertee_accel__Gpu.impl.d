lib/accel/gpu.ml: Hashtbl Hypertee_arch Hypertee_ems Hypertee_util Int64 Result
