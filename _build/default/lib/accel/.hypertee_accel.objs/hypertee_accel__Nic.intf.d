lib/accel/nic.mli: Hypertee_arch
