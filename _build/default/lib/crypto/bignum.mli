(** Arbitrary-precision natural numbers.

    Built from scratch (no zarith in the sealed environment) on
    base-2^26 limbs so that limb products fit comfortably in OCaml's
    63-bit native ints. Provides exactly what the attestation stack
    needs: modular exponentiation for Diffie–Hellman and RSA-lite,
    Miller–Rabin for key generation, and modular inverse for RSA key
    setup. Values are immutable. *)

type t

val zero : t
val one : t
val two : t

(** Conversions. [of_int] requires a non-negative argument. *)
val of_int : int -> t

(** [to_int] raises [Failure] if the value exceeds [max_int]. *)
val to_int : t -> int

(** Big-endian byte-string conversions (leading zeros trimmed on
    [of_bytes_be]; [to_bytes_be ~len] left-pads to [len]). *)
val of_bytes_be : bytes -> t

val to_bytes_be : ?len:int -> t -> bytes

(** Hex (most significant first, no "0x"). *)
val of_hex : string -> t

val to_hex : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

(** Number of significant bits; [bit_length zero = 0]. *)
val bit_length : t -> int

val add : t -> t -> t

(** [sub a b] requires [a >= b] (naturals only). *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero]. *)
val divmod : t -> t -> t * t

val rem : t -> t -> t

(** [shift_left a n] / [shift_right a n] by [n] bits. *)
val shift_left : t -> int -> t

val shift_right : t -> int -> t

(** [testbit a i] is bit [i] (0 = least significant). *)
val testbit : t -> int -> bool

val is_even : t -> bool

(** [mod_pow ~base ~exp ~modulus] by square-and-multiply. *)
val mod_pow : base:t -> exp:t -> modulus:t -> t

(** [mod_inv a m] is the inverse of [a] modulo [m]; [None] when
    [gcd a m <> 1]. *)
val mod_inv : t -> t -> t option

val gcd : t -> t -> t

(** [random rng ~bits] draws uniformly in \[0, 2^bits). *)
val random : Hypertee_util.Xrng.t -> bits:int -> t

(** [random_below rng n] draws uniformly in \[0, n). *)
val random_below : Hypertee_util.Xrng.t -> t -> t

(** Miller–Rabin with [rounds] random bases (default 24). *)
val is_probably_prime : ?rounds:int -> Hypertee_util.Xrng.t -> t -> bool

(** [generate_prime rng ~bits] draws random odd candidates of exactly
    [bits] bits until one passes Miller–Rabin. *)
val generate_prime : Hypertee_util.Xrng.t -> bits:int -> t

val pp : Format.formatter -> t -> unit
