(* p = 2^255 - 19 (prime); g = 2 generates a large subgroup. *)
let p = Bignum.sub (Bignum.shift_left Bignum.one 255) (Bignum.of_int 19)
let g = Bignum.two

type keypair = { secret : Bignum.t; public : Bignum.t }

let p_minus_1 = Bignum.sub p Bignum.one

let generate rng =
  (* Draw a 251-bit secret, clamp away degenerate small values. *)
  let rec draw () =
    let s = Bignum.random rng ~bits:251 in
    if Bignum.compare s (Bignum.of_int 65537) <= 0 then draw () else s
  in
  let secret = draw () in
  { secret; public = Bignum.mod_pow ~base:g ~exp:secret ~modulus:p }

let valid_public e =
  Bignum.compare e Bignum.one > 0 && Bignum.compare e p_minus_1 < 0

let shared_secret ~secret ~peer_public =
  if not (valid_public peer_public) then invalid_arg "Dh.shared_secret: degenerate public element";
  Bignum.mod_pow ~base:peer_public ~exp:secret ~modulus:p

let session_key ~secret ~peer_public ~context =
  let raw = Bignum.to_bytes_be ~len:32 (shared_secret ~secret ~peer_public) in
  Hmac.derive ~ikm:raw ~salt:Bytes.empty ~info:context 16
