(* Keccak-f[1600] with rate 1088 / capacity 512 (SHA3-256), per FIPS
   202. State is 25 lanes of 64 bits held as an int64 array in
   column-major (x + 5*y) order. *)

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
    0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
    0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

(* Rotation offsets, indexed x + 5*y. *)
let rho_offsets =
  [| 0; 1; 62; 28; 27; 36; 44; 6; 55; 20; 3; 10; 43; 25; 39; 41; 45; 15; 21; 8; 18; 2; 61; 56; 14 |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

(* Scratch buffers hoisted out of the permutation: keccak_f runs once
   per 136 absorbed bytes, so per-call allocation would dominate the
   page-MAC path. Single-threaded simulator, so sharing is safe. *)
let c = Array.make 5 0L
let d = Array.make 5 0L
let b = Array.make 25 0L

let keccak_f state =
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10) (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for i = 0 to 24 do
      state.(i) <- Int64.logxor state.(i) d.(i mod 5)
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        b.(dst) <- rotl64 state.(src) rho_offsets.(src)
      done
    done;
    (* chi *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        let i = x + (5 * y) in
        state.(i) <-
          Int64.logxor b.(i)
            (Int64.logand (Int64.lognot b.(((x + 1) mod 5) + (5 * y))) b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let rate_bytes = 136 (* 1088 bits *)

let sha3_256 msg =
  let state = Array.make 25 0L in
  let len = Bytes.length msg in
  (* Absorb full rate blocks. *)
  let absorb_block block off blen =
    (* Build a padded 136-byte buffer view lane by lane. *)
    for lane = 0 to (rate_bytes / 8) - 1 do
      let acc = ref 0L in
      for byte = 7 downto 0 do
        let idx = (lane * 8) + byte in
        let v = if idx < blen then Char.code (Bytes.get block (off + idx)) else 0 in
        acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int v)
      done;
      state.(lane) <- Int64.logxor state.(lane) !acc
    done;
    keccak_f state
  in
  let full_blocks = len / rate_bytes in
  for i = 0 to full_blocks - 1 do
    absorb_block msg (i * rate_bytes) rate_bytes
  done;
  (* Final block with pad10*1 and SHA-3 domain bits 0b01 -> 0x06. *)
  let tail_len = len - (full_blocks * rate_bytes) in
  let final = Bytes.make rate_bytes '\000' in
  Bytes.blit msg (full_blocks * rate_bytes) final 0 tail_len;
  Bytes.set final tail_len '\x06';
  Bytes.set final (rate_bytes - 1)
    (Char.chr (Char.code (Bytes.get final (rate_bytes - 1)) lor 0x80));
  absorb_block final 0 rate_bytes;
  (* Squeeze 32 bytes (< rate, single squeeze). *)
  let out = Bytes.create 32 in
  for lane = 0 to 3 do
    Hypertee_util.Bytes_ext.set_u64_le out (8 * lane) state.(lane)
  done;
  out

let sha3_256_string s = sha3_256 (Bytes.of_string s)

let mac_28bit ~key data =
  let buf = Bytes.create (Bytes.length key + Bytes.length data) in
  Bytes.blit key 0 buf 0 (Bytes.length key);
  Bytes.blit data 0 buf (Bytes.length key) (Bytes.length data);
  let d = sha3_256 buf in
  (* Truncate to 28 bits, matching the engine's per-line tag width. *)
  let v =
    (Char.code (Bytes.get d 0) lsl 24)
    lor (Char.code (Bytes.get d 1) lsl 16)
    lor (Char.code (Bytes.get d 2) lsl 8)
    lor Char.code (Bytes.get d 3)
  in
  v land 0xFFFFFFF
