type public = { n : Bignum.t; e : Bignum.t }
type keypair = { public : public; d : Bignum.t }

let modulus_bits = 512
let e_fixed = Bignum.of_int 65537

let generate rng =
  let half = modulus_bits / 2 in
  let rec go () =
    let p = Bignum.generate_prime rng ~bits:half in
    let q = Bignum.generate_prime rng ~bits:half in
    if Bignum.equal p q then go ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
      match Bignum.mod_inv e_fixed phi with
      | None -> go ()
      | Some d -> { public = { n; e = e_fixed }; d }
    end
  in
  go ()

let key_bytes = modulus_bits / 8

(* PKCS#1 v1.5-shaped padding: 0x00 0x01 FF..FF 0x00 digest. *)
let pad_digest digest =
  let pad_len = key_bytes - Bytes.length digest - 3 in
  if pad_len < 8 then invalid_arg "Rsa.pad_digest: modulus too small";
  let out = Bytes.make key_bytes '\xff' in
  Bytes.set out 0 '\x00';
  Bytes.set out 1 '\x01';
  Bytes.set out (2 + pad_len) '\x00';
  Bytes.blit digest 0 out (3 + pad_len) (Bytes.length digest);
  out

let sign key msg =
  let em = Bignum.of_bytes_be (pad_digest (Sha256.digest msg)) in
  Bignum.to_bytes_be ~len:key_bytes (Bignum.mod_pow ~base:em ~exp:key.d ~modulus:key.public.n)

let verify pub ~msg ~signature =
  if Bytes.length signature <> key_bytes then false
  else begin
    let s = Bignum.of_bytes_be signature in
    if Bignum.compare s pub.n >= 0 then false
    else begin
      let em = Bignum.mod_pow ~base:s ~exp:pub.e ~modulus:pub.n in
      let expected = pad_digest (Sha256.digest msg) in
      Hypertee_util.Bytes_ext.equal_ct (Bignum.to_bytes_be ~len:key_bytes em) expected
    end
  end

let public_to_bytes pub =
  let n = Bignum.to_bytes_be ~len:key_bytes pub.n in
  let e = Bignum.to_bytes_be ~len:4 pub.e in
  Bytes.cat n e

let public_of_bytes b =
  if Bytes.length b <> key_bytes + 4 then invalid_arg "Rsa.public_of_bytes: bad length";
  {
    n = Bignum.of_bytes_be (Bytes.sub b 0 key_bytes);
    e = Bignum.of_bytes_be (Bytes.sub b key_bytes 4);
  }
