(** Keccak-f[1600] sponge and SHA3-256 (FIPS 202).

    The paper's memory-integrity engine uses a SHA-3-based MAC
    (Sec. IV-C); [mac_28bit] produces the truncated 28-bit tag that
    engine stores per cache line. *)

(** SHA3-256 one-shot digest (32 bytes). *)
val sha3_256 : bytes -> bytes

(** SHA3-256 of a string. *)
val sha3_256_string : string -> bytes

(** [mac_28bit ~key data] is the 28-bit truncated SHA3 MAC used by
    the memory-integrity engine, returned as a non-negative int. The
    key is absorbed before the data (KMAC-style prefix keying is fine
    for a sponge). *)
val mac_28bit : key:bytes -> bytes -> int
