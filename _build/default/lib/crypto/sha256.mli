(** SHA-256 (FIPS 180-4).

    Used for enclave measurement (EMEAS), HMAC/HKDF key derivation,
    and signature digests. Incremental interface so measurement can
    be extended page by page as EADD loads an enclave. *)

type ctx

val digest_size : int

(** Fresh hashing context. *)
val init : unit -> ctx

(** [update ctx b] absorbs all of [b]. *)
val update : ctx -> bytes -> unit

(** [update_sub ctx b ~off ~len] absorbs a slice. *)
val update_sub : ctx -> bytes -> off:int -> len:int -> unit

(** [finalize ctx] pads and produces the 32-byte digest. The context
    must not be used afterwards. *)
val finalize : ctx -> bytes

(** One-shot digest. *)
val digest : bytes -> bytes

(** One-shot digest of a string. *)
val digest_string : string -> bytes
