(** HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

    All of HyperTEE's key derivation (Sec. VI, "Key management") runs
    through HKDF: attestation key from SK + salt, report keys from
    challenger measurement + SK, sealing keys from enclave
    measurement + SK, memory keys from SK + measurement. *)

(** 32-byte HMAC-SHA256 tag. Any key length. *)
val hmac : key:bytes -> bytes -> bytes

(** HKDF-Extract: [extract ~salt ikm] is the 32-byte PRK. *)
val extract : salt:bytes -> bytes -> bytes

(** HKDF-Expand: [expand ~prk ~info len] with [len <= 255 * 32]. *)
val expand : prk:bytes -> info:bytes -> int -> bytes

(** One-call derive: extract then expand. *)
val derive : ikm:bytes -> salt:bytes -> info:string -> int -> bytes
