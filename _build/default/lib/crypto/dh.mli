(** Diffie–Hellman key agreement over Z_p*, p = 2^255 − 19, g = 2.

    Local attestation (Sec. VI) negotiates a symmetric key between
    two enclaves with a DH exchange; remote attestation's SIGMA flow
    uses the same group. The paper cites Curve25519 ECDH — we use the
    multiplicative group over the same prime, which exercises the same
    code path (keygen, shared-secret, key-derivation) with our
    from-scratch bignum. *)

type keypair = { secret : Bignum.t; public : Bignum.t }

(** The group prime (2^255 − 19) and generator. *)
val p : Bignum.t

val g : Bignum.t

(** Fresh keypair from the given RNG (251-bit exponent). *)
val generate : Hypertee_util.Xrng.t -> keypair

(** [shared_secret ~secret ~peer_public] is the raw group element. *)
val shared_secret : secret:Bignum.t -> peer_public:Bignum.t -> Bignum.t

(** [session_key ~secret ~peer_public ~context] runs the raw secret
    through HKDF with [context] as info, yielding a 16-byte AES key. *)
val session_key : secret:Bignum.t -> peer_public:Bignum.t -> context:string -> bytes

(** [valid_public e] checks 1 < e < p − 1 (rejects degenerate
    elements an attacker could inject). *)
val valid_public : Bignum.t -> bool
