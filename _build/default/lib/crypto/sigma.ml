type role = Initiator | Responder
type session = { role : role; keypair : Dh.keypair }

let start rng role = { role; keypair = Dh.generate rng }
let public_of s = s.keypair.Dh.public

let derive_keys s ~peer_public =
  let raw =
    Bignum.to_bytes_be ~len:32 (Dh.shared_secret ~secret:s.keypair.Dh.secret ~peer_public)
  in
  let okm = Hmac.derive ~ikm:raw ~salt:Bytes.empty ~info:"sigma-session-v1" 32 in
  (Bytes.sub okm 0 16, Bytes.sub okm 16 16)

let transcript ~initiator_pub ~responder_pub ~payload =
  let a = Bignum.to_bytes_be ~len:32 initiator_pub in
  let b = Bignum.to_bytes_be ~len:32 responder_pub in
  Bytes.concat Bytes.empty [ Bytes.of_string "SIGMA1"; a; b; payload ]

let authenticate ~mac_key t = Hmac.hmac ~key:mac_key t

let check ~mac_key ~transcript ~tag =
  Hypertee_util.Bytes_ext.equal_ct (authenticate ~mac_key transcript) tag
