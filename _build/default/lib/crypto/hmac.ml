let block = 64 (* SHA-256 block size *)

let hmac ~key msg =
  let key =
    if Bytes.length key > block then Sha256.digest key else key
  in
  let k = Bytes.make block '\000' in
  Bytes.blit key 0 k 0 (Bytes.length key);
  let ipad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x36)) k in
  let opad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x5c)) k in
  let inner = Sha256.init () in
  Sha256.update inner ipad;
  Sha256.update inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.update outer opad;
  Sha256.update outer inner_digest;
  Sha256.finalize outer

let extract ~salt ikm =
  let salt = if Bytes.length salt = 0 then Bytes.make 32 '\000' else salt in
  hmac ~key:salt ikm

let expand ~prk ~info len =
  if len > 255 * 32 then invalid_arg "Hmac.expand: length too large";
  let out = Buffer.create len in
  let prev = ref Bytes.empty in
  let counter = ref 1 in
  while Buffer.length out < len do
    let msg = Bytes.create (Bytes.length !prev + Bytes.length info + 1) in
    Bytes.blit !prev 0 msg 0 (Bytes.length !prev);
    Bytes.blit info 0 msg (Bytes.length !prev) (Bytes.length info);
    Bytes.set msg (Bytes.length msg - 1) (Char.chr !counter);
    let t = hmac ~key:prk msg in
    prev := t;
    incr counter;
    Buffer.add_bytes out t
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let derive ~ikm ~salt ~info len = expand ~prk:(extract ~salt ikm) ~info:(Bytes.of_string info) len
