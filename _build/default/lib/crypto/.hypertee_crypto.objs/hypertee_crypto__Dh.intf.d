lib/crypto/dh.mli: Bignum Hypertee_util
