lib/crypto/engine.mli:
