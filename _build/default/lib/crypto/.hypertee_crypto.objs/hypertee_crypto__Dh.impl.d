lib/crypto/dh.ml: Bignum Bytes Hmac
