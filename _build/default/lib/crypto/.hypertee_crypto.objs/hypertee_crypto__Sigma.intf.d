lib/crypto/sigma.mli: Bignum Hypertee_util
