lib/crypto/sigma.ml: Bignum Bytes Dh Hmac Hypertee_util
