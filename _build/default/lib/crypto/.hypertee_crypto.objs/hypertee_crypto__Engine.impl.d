lib/crypto/engine.ml:
