lib/crypto/merkle.ml: Array Bytes Hypertee_util List Sha256
