lib/crypto/rsa.ml: Bignum Bytes Hypertee_util Sha256
