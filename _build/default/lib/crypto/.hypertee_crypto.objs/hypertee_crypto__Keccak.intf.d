lib/crypto/keccak.mli:
