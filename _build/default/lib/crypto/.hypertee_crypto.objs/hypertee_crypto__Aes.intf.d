lib/crypto/aes.mli:
