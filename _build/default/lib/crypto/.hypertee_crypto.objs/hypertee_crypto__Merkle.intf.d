lib/crypto/merkle.mli:
