lib/crypto/rsa.mli: Bignum Hypertee_util
