lib/crypto/sha256.ml: Array Bytes Char Hypertee_util Int32 Int64 Stdlib
