lib/crypto/bignum.ml: Array Bytes Char Format Hypertee_util Stdlib String
