lib/crypto/hmac.ml: Buffer Bytes Char Sha256
