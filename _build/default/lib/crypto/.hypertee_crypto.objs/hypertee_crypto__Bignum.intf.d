lib/crypto/bignum.mli: Format Hypertee_util
