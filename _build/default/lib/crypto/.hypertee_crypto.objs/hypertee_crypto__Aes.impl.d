lib/crypto/aes.ml: Array Bytes Char Hypertee_util Int64 Stdlib
