lib/crypto/hmac.mli:
