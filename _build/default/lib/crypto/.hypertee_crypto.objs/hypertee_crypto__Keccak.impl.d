lib/crypto/keccak.ml: Array Bytes Char Hypertee_util Int64
