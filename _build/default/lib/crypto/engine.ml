type mode =
  | Software of { core_ghz : float; cycles_per_byte_aes : float; cycles_per_byte_sha : float }
  | Hardware

type t = { mode : mode }

let create mode = { mode }
let mode t = t.mode

let default_software =
  create (Software { core_ghz = 0.75; cycles_per_byte_aes = 40.0; cycles_per_byte_sha = 28.0 })

let default_hardware = create Hardware

(* Table III engine rates. *)
let hw_aes_gbps = 1.24
let hw_sha_gbps = 16.1
let hw_rsa_sign_ops = 123.0
let hw_rsa_verify_ops = 10_000.0

(* A fixed per-operation setup cost (descriptor write, DMA kick). *)
let hw_setup_ns = 200.0

let aes_ns t ~bytes =
  let bytes = float_of_int bytes in
  match t.mode with
  | Hardware -> hw_setup_ns +. (bytes *. 8.0 /. hw_aes_gbps)
  | Software s -> bytes *. s.cycles_per_byte_aes /. s.core_ghz

let sha256_ns t ~bytes =
  let bytes = float_of_int bytes in
  match t.mode with
  | Hardware -> hw_setup_ns +. (bytes *. 8.0 /. hw_sha_gbps)
  | Software s -> bytes *. s.cycles_per_byte_sha /. s.core_ghz

let rsa_sign_ns t =
  match t.mode with
  | Hardware -> 1e9 /. hw_rsa_sign_ops
  | Software s ->
    (* ~ 60x slower in software than the dedicated multiplier. *)
    1e9 /. hw_rsa_sign_ops *. 60.0 *. (0.75 /. s.core_ghz)

let rsa_verify_ns t =
  match t.mode with
  | Hardware -> 1e9 /. hw_rsa_verify_ops
  | Software s -> 1e9 /. hw_rsa_verify_ops *. 60.0 *. (0.75 /. s.core_ghz)

let modexp_ns t =
  (* A DH exponentiation costs about the same as an RSA signature of
     comparable operand width. *)
  rsa_sign_ns t
