(** RSA-lite signatures (512-bit modulus, e = 65537).

    Implements the signing service of the EMS crypto engine: platform
    certificates are signed with the Endorsement Key and enclave
    quotes with the Attestation Key (Sec. VI). 512-bit keys keep
    schoolbook-bignum key generation fast; the protocol shape
    (hash, pad, modexp, verify) is the real one. Not secure at this
    size — this is a simulator, not a product. *)

type public = { n : Bignum.t; e : Bignum.t }
type keypair = { public : public; d : Bignum.t }

(** Modulus size in bits used throughout (512). *)
val modulus_bits : int

(** Deterministic keypair from the given RNG. *)
val generate : Hypertee_util.Xrng.t -> keypair

(** [sign key msg] hashes [msg] with SHA-256, pads (PKCS#1-v1.5
    style) and exponentiates. *)
val sign : keypair -> bytes -> bytes

(** [verify pub ~msg ~signature] checks the padded digest. *)
val verify : public -> msg:bytes -> signature:bytes -> bool

(** Serialize a public key for embedding in certificates. *)
val public_to_bytes : public -> bytes

val public_of_bytes : bytes -> public
