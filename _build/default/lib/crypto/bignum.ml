(* Naturals in base 2^26. Limb i holds bits [26*i, 26*(i+1)).
   Invariant: no trailing zero limbs (canonical form), so zero is the
   empty array. Schoolbook algorithms throughout: the attestation
   stack uses 256–512 bit operands, where asymptotics do not pay. *)

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1

type t = int array (* little-endian limbs, canonical *)

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero a = Array.length a = 0

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land limb_mask) :: limbs (v lsr limb_bits) in
  Array.of_list (limbs v)

let to_int a =
  let bits = Array.length a * limb_bits in
  if bits > 62 && Array.length a > 0 then begin
    (* Allow values that still fit even with a high top limb. *)
    let v = ref 0 in
    Array.iteri
      (fun i limb ->
        let shifted = limb lsl (limb_bits * i) in
        if i * limb_bits >= 62 && limb <> 0 then failwith "Bignum.to_int: overflow";
        v := !v lor shifted)
      a;
    !v
  end
  else begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    !v
  end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  assert (!carry = 0);
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + (1 lsl limb_bits);
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai*bj <= (2^26-1)^2 < 2^52; + out + carry stays < 2^54. *)
        let s = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = out.(!k) + !carry in
        out.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let shift_left a n =
  if is_zero a || n = 0 then if n = 0 then a else a
  else begin
    let limb_shift = n / limb_bits and bit_shift = n mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land limb_mask);
      out.(i + limb_shift + 1) <- out.(i + limb_shift + 1) lor (v lsr limb_bits)
    done;
    normalize out
  end

let shift_right a n =
  if is_zero a || n = 0 then a
  else begin
    let limb_shift = n / limb_bits and bit_shift = n mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let out = Array.make (la - limb_shift) 0 in
      for i = 0 to la - limb_shift - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

let testbit a i =
  let limb = i / limb_bits in
  if limb >= Array.length a then false else a.(limb) land (1 lsl (i mod limb_bits)) <> 0

let is_even a = not (testbit a 0)

(* Division by a single limb: used directly and as the base case of
   long division. *)
let divmod_limb a d =
  assert (d > 0 && d <= limb_mask);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    (* carry < 2^26, so carry*2^26 + limb < 2^52: safe in native int. *)
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

(* Knuth Algorithm D over base-2^26 limbs, with normalization so the
   divisor's top limb has its high bit set and the 2-limb quotient
   estimate is off by at most 2. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_limb a b.(0)
  else begin
    (* Normalize: shift both so divisor top limb >= 2^25. *)
    let shift =
      let top = b.(Array.length b - 1) in
      let rec go v acc = if v land (1 lsl (limb_bits - 1)) <> 0 then acc else go (v lsl 1) (acc + 1) in
      go top 0
    in
    let u0 = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u0 - n in
    (* Working copy of the dividend with one extra top limb. *)
    let u = Array.make (Array.length u0 + 1) 0 in
    Array.blit u0 0 u 0 (Array.length u0);
    let q = Array.make (m + 1) 0 in
    let v_top = v.(n - 1) and v_next = v.(n - 2) in
    for j = m downto 0 do
      (* Estimate qhat from the top two limbs of the current window. *)
      let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (num / v_top) and rhat = ref (num mod v_top) in
      if !qhat > limb_mask then begin
        qhat := limb_mask;
        rhat := num - (limb_mask * v_top)
      end;
      let continue_adjust = ref true in
      while !continue_adjust && !rhat <= limb_mask do
        (* Refine with the third limb (Knuth's test). *)
        if !qhat * v_next > (!rhat lsl limb_bits) lor u.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + v_top
        end
        else continue_adjust := false
      done;
      (* Multiply-subtract: u[j .. j+n] -= qhat * v. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = u.(j + i) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          u.(j + i) <- d + (1 lsl limb_bits);
          borrow := 1
        end
        else begin
          u.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add the divisor back. *)
        u.(j + n) <- d + (1 lsl limb_bits);
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(j + i) + v.(i) + !c in
          u.(j + i) <- s land limb_mask;
          c := s lsr limb_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let rem a b = snd (divmod a b)

let mod_pow ~base ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let result = ref one in
    let b = ref (rem base modulus) in
    let nbits = bit_length exp in
    for i = 0 to nbits - 1 do
      if testbit exp i then result := rem (mul !result !b) modulus;
      if i < nbits - 1 then b := rem (mul !b !b) modulus
    done;
    !result
  end

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

(* Iterative extended Euclid. Coefficients can go negative, so each
   is carried as (magnitude, sign). Maintains the invariant
   s * a = r (mod m) for the (r, s) pairs. *)
let mod_inv a m =
  if is_zero m then raise Division_by_zero;
  if equal m one then None
  else begin
    let a = rem a m in
    if is_zero a then None
    else begin
      (* signed subtract: x - y as (magnitude, sign) given signed inputs *)
      let signed_sub (x, xn) (y, yn) =
        if xn = yn then
          if compare x y >= 0 then (sub x y, xn) else (sub y x, not xn)
        else (add x y, xn)
      in
      let r0 = ref a and r1 = ref m in
      let s0 = ref (one, false) and s1 = ref (zero, false) in
      while not (is_zero !r1) do
        let q, r = divmod !r0 !r1 in
        let s1_mag, s1_neg = !s1 in
        let qs1 = (mul q s1_mag, s1_neg) in
        let next_s = signed_sub !s0 qs1 in
        r0 := !r1;
        r1 := r;
        s0 := !s1;
        s1 := next_s
      done;
      if equal !r0 one then begin
        let mag, neg = !s0 in
        let mag = rem mag m in
        Some (if neg && not (is_zero mag) then sub m mag else mag)
      end
      else None
    end
  end

let of_bytes_be b =
  let acc = ref zero in
  for i = 0 to Bytes.length b - 1 do
    acc := add (shift_left !acc 8) (of_int (Char.code (Bytes.get b i)))
  done;
  !acc

let to_bytes_be ?len a =
  let nbytes = Stdlib.max 1 ((bit_length a + 7) / 8) in
  let nbytes = match len with Some l -> Stdlib.max l nbytes | None -> nbytes in
  let out = Bytes.make nbytes '\000' in
  let v = ref a in
  let i = ref (nbytes - 1) in
  while not (is_zero !v) do
    let q, r = divmod !v (of_int 256) in
    Bytes.set out !i (Char.chr (to_int r));
    v := q;
    decr i
  done;
  (match len with
  | Some l when nbytes > l -> invalid_arg "Bignum.to_bytes_be: value too large for len"
  | _ -> ());
  out

let of_hex s = of_bytes_be (Hypertee_util.Bytes_ext.of_hex (if String.length s mod 2 = 1 then "0" ^ s else s))

let to_hex a =
  let h = Hypertee_util.Bytes_ext.to_hex (to_bytes_be a) in
  (* Trim leading zeros but keep at least one digit. *)
  let n = String.length h in
  let rec first i = if i < n - 1 && h.[i] = '0' then first (i + 1) else i in
  String.sub h (first 0) (n - first 0)

let random rng ~bits =
  if bits <= 0 then zero
  else begin
    let nlimbs = (bits + limb_bits - 1) / limb_bits in
    let out = Array.make nlimbs 0 in
    for i = 0 to nlimbs - 1 do
      out.(i) <- Hypertee_util.Xrng.int rng (limb_mask + 1)
    done;
    (* Mask off bits above [bits]. *)
    let top_bits = bits - ((nlimbs - 1) * limb_bits) in
    out.(nlimbs - 1) <- out.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    normalize out
  end

let random_below rng n =
  if is_zero n then invalid_arg "Bignum.random_below: zero bound";
  let bits = bit_length n in
  let rec go () =
    let c = random rng ~bits in
    if compare c n < 0 then c else go ()
  in
  go ()

let is_probably_prime ?(rounds = 24) rng n =
  if compare n two < 0 then false
  else if equal n two || equal n (of_int 3) then true
  else if is_even n then false
  else begin
    (* Write n-1 = d * 2^s. *)
    let n_minus_1 = sub n one in
    let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n_minus_1 0 in
    let witness a =
      let x = ref (mod_pow ~base:a ~exp:d ~modulus:n) in
      if equal !x one || equal !x n_minus_1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to s - 1 do
             x := rem (mul !x !x) n;
             if equal !x n_minus_1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec rounds_loop i =
      if i = 0 then true
      else begin
        let a = add two (random_below rng (sub n (of_int 3))) in
        if witness a then false else rounds_loop (i - 1)
      end
    in
    rounds_loop rounds
  end

(* Small primes for trial division: discards ~90% of random odd
   candidates before the expensive Miller-Rabin rounds. *)
let small_primes =
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let acc = ref [] in
  for i = limit downto 2 do
    if sieve.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let divisible_by_small_prime n =
  let rec go i =
    if i >= Array.length small_primes then false
    else begin
      let p = small_primes.(i) in
      let _, r = divmod_limb n p in
      if is_zero r then not (equal n (of_int p)) else go (i + 1)
    end
  in
  go 0

let generate_prime rng ~bits =
  if bits < 2 then invalid_arg "Bignum.generate_prime: need >= 2 bits";
  let rec go () =
    let c = random rng ~bits in
    (* Force exact bit width and oddness. *)
    let c = add c (shift_left one (bits - 1)) in
    let c = if is_even c then add c one else c in
    let c = if bit_length c > bits then sub c (shift_left one bits) else c in
    let c = if bit_length c < bits then add c (shift_left one (bits - 1)) else c in
    if (not (divisible_by_small_prime c)) && is_probably_prime rng c then c else go ()
  in
  go ()

let pp fmt a = Format.pp_print_string fmt (to_hex a)
