(** AES-128 block cipher (FIPS 197) and counter/XTS-like modes.

    This is the cipher behind the multi-key memory-encryption engine
    (Sec. IV-C), page swapping (EWB), shared-memory encryption
    (Sec. V-A), data sealing, and the conventional software-crypto
    communication baseline of Fig. 12. *)

type key

val block_size : int

(** Expand a 16-byte key. Raises [Invalid_argument] otherwise. *)
val expand : bytes -> key

(** [encrypt_block key src] / [decrypt_block key src] on exactly one
    16-byte block. *)
val encrypt_block : key -> bytes -> bytes

val decrypt_block : key -> bytes -> bytes

(** CTR mode: encryption and decryption are the same operation. The
    16-byte [nonce] seeds the counter; data of any length. *)
val ctr : key -> nonce:bytes -> bytes -> bytes

(** Tweaked page encryption used by the memory engine: the physical
    page number acts as the tweak so that identical plaintext at
    different addresses yields different ciphertext. *)
val encrypt_page : key -> page_number:int -> bytes -> bytes

val decrypt_page : key -> page_number:int -> bytes -> bytes

(** CBC-MAC style tag (not for new protocol designs; used only as the
    legacy software baseline's authentication). 16 bytes. *)
val cbc_mac : key -> bytes -> bytes
