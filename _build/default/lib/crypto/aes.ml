(* AES-128 per FIPS 197. The S-box is computed at load time from the
   GF(2^8) inverse plus the affine transform rather than pasted as a
   table, which also documents where the constants come from. *)

let block_size = 16

(* --- GF(2^8) arithmetic, modulus x^8 + x^4 + x^3 + x + 1 (0x11B) --- *)

let xtime a = if a land 0x80 <> 0 then ((a lsl 1) lxor 0x11B) land 0xFF else (a lsl 1) land 0xFF

let gmul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc land 0xFF

let sbox, inv_sbox =
  let s = Array.make 256 0 and inv = Array.make 256 0 in
  (* Build the multiplicative inverse table via generator 3 (log/alog). *)
  let alog = Array.make 256 0 and log = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    alog.(i) <- !x;
    log.(!x) <- i;
    x := gmul !x 3
  done;
  let inverse a = if a = 0 then 0 else alog.((255 - log.(a)) mod 255) in
  let affine a =
    let rot v n = ((v lsl n) lor (v lsr (8 - n))) land 0xFF in
    a lxor rot a 1 lxor rot a 2 lxor rot a 3 lxor rot a 4 lxor 0x63
  in
  for a = 0 to 255 do
    s.(a) <- affine (inverse a)
  done;
  for a = 0 to 255 do
    inv.(s.(a)) <- a
  done;
  (s, inv)

(* --- Key schedule --- *)

type key = { enc : int array array (* 11 round keys of 16 bytes *) }

let expand key_bytes =
  if Bytes.length key_bytes <> 16 then invalid_arg "Aes.expand: key must be 16 bytes";
  (* Words as 4-byte arrays. *)
  let w = Array.make 44 [||] in
  for i = 0 to 3 do
    w.(i) <- Array.init 4 (fun j -> Char.code (Bytes.get key_bytes ((4 * i) + j)))
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord + SubWord + Rcon *)
      let t0 = temp.(0) in
      temp.(0) <- sbox.(temp.(1)) lxor !rcon;
      temp.(1) <- sbox.(temp.(2));
      temp.(2) <- sbox.(temp.(3));
      temp.(3) <- sbox.(t0);
      rcon := xtime !rcon
    end;
    w.(i) <- Array.init 4 (fun j -> w.(i - 4).(j) lxor temp.(j))
  done;
  let enc =
    Array.init 11 (fun r -> Array.init 16 (fun j -> w.((4 * r) + (j / 4)).(j mod 4)))
  in
  { enc }

(* --- Rounds. State is a 16-byte int array in column-major order,
   matching the round-key layout above. The GF multiplications by the
   fixed MixColumns coefficients are table lookups (this is the hot
   path of the whole memory-encryption model). --- *)

let mul_table k = Array.init 256 (fun a -> gmul a k)
let m2 = mul_table 2
let m3 = mul_table 3
let m9 = mul_table 9
let m11 = mul_table 11
let m13 = mul_table 13
let m14 = mul_table 14

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- sbox.(state.(i))
  done

let inv_sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- inv_sbox.(state.(i))
  done

(* Row r of the state lives at indices r, r+4, r+8, r+12; row r
   rotates left by r positions. *)
let shift_rows state =
  let t = state.(1) in
  state.(1) <- state.(5); state.(5) <- state.(9); state.(9) <- state.(13); state.(13) <- t;
  let t0 = state.(2) and t1 = state.(6) in
  state.(2) <- state.(10); state.(6) <- state.(14); state.(10) <- t0; state.(14) <- t1;
  let t = state.(15) in
  state.(15) <- state.(11); state.(11) <- state.(7); state.(7) <- state.(3); state.(3) <- t

let inv_shift_rows state =
  let t = state.(13) in
  state.(13) <- state.(9); state.(9) <- state.(5); state.(5) <- state.(1); state.(1) <- t;
  let t0 = state.(2) and t1 = state.(6) in
  state.(2) <- state.(10); state.(6) <- state.(14); state.(10) <- t0; state.(14) <- t1;
  let t = state.(3) in
  state.(3) <- state.(7); state.(7) <- state.(11); state.(11) <- state.(15); state.(15) <- t

let mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) in
    let a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- m2.(a0) lxor m3.(a1) lxor a2 lxor a3;
    state.((4 * c) + 1) <- a0 lxor m2.(a1) lxor m3.(a2) lxor a3;
    state.((4 * c) + 2) <- a0 lxor a1 lxor m2.(a2) lxor m3.(a3);
    state.((4 * c) + 3) <- m3.(a0) lxor a1 lxor a2 lxor m2.(a3)
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) in
    let a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- m14.(a0) lxor m11.(a1) lxor m13.(a2) lxor m9.(a3);
    state.((4 * c) + 1) <- m9.(a0) lxor m14.(a1) lxor m11.(a2) lxor m13.(a3);
    state.((4 * c) + 2) <- m13.(a0) lxor m9.(a1) lxor m14.(a2) lxor m11.(a3);
    state.((4 * c) + 3) <- m11.(a0) lxor m13.(a1) lxor m9.(a2) lxor m14.(a3)
  done

let state_of_bytes b =
  if Bytes.length b <> 16 then invalid_arg "Aes: block must be 16 bytes";
  Array.init 16 (fun i -> Char.code (Bytes.get b i))

let bytes_of_state state =
  let out = Bytes.create 16 in
  Array.iteri (fun i v -> Bytes.set out i (Char.chr v)) state;
  out

let encrypt_block key src =
  let state = state_of_bytes src in
  add_round_key state key.enc.(0);
  for round = 1 to 9 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state key.enc.(round)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state key.enc.(10);
  bytes_of_state state

let decrypt_block key src =
  let state = state_of_bytes src in
  add_round_key state key.enc.(10);
  for round = 9 downto 1 do
    inv_shift_rows state;
    inv_sub_bytes state;
    add_round_key state key.enc.(round);
    inv_mix_columns state
  done;
  inv_shift_rows state;
  inv_sub_bytes state;
  add_round_key state key.enc.(0);
  bytes_of_state state

let ctr key ~nonce data =
  if Bytes.length nonce <> 16 then invalid_arg "Aes.ctr: nonce must be 16 bytes";
  let len = Bytes.length data in
  let out = Bytes.copy data in
  let counter = Bytes.copy nonce in
  let bump () =
    (* Increment the low 64 bits big-endian. *)
    let rec go i = if i >= 8 then () else
      let v = (Char.code (Bytes.get counter (15 - i)) + 1) land 0xFF in
      Bytes.set counter (15 - i) (Char.chr v);
      if v = 0 then go (i + 1)
    in
    go 0
  in
  let blocks = (len + 15) / 16 in
  for b = 0 to blocks - 1 do
    let ks = encrypt_block key counter in
    let off = 16 * b in
    let n = Stdlib.min 16 (len - off) in
    for i = 0 to n - 1 do
      Bytes.set out (off + i)
        (Char.chr (Char.code (Bytes.get out (off + i)) lxor Char.code (Bytes.get ks i)))
    done;
    bump ()
  done;
  out

let tweak_nonce ~page_number =
  let nonce = Bytes.make 16 '\000' in
  Hypertee_util.Bytes_ext.set_u64_be nonce 8 (Int64.of_int page_number);
  nonce

let encrypt_page key ~page_number data = ctr key ~nonce:(tweak_nonce ~page_number) data
let decrypt_page key ~page_number data = ctr key ~nonce:(tweak_nonce ~page_number) data

let cbc_mac key data =
  let len = Bytes.length data in
  let blocks = (len + 15) / 16 in
  let acc = ref (Bytes.make 16 '\000') in
  for b = 0 to Stdlib.max 0 (blocks - 1) do
    let block = Bytes.make 16 '\000' in
    let off = 16 * b in
    Bytes.blit data off block 0 (Stdlib.min 16 (len - off));
    acc := encrypt_block key (Hypertee_util.Bytes_ext.xor !acc block)
  done;
  if blocks = 0 then acc := encrypt_block key !acc;
  !acc
