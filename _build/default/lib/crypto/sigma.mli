(** SIGMA-style authenticated key exchange (sign-and-MAC).

    The remote-attestation flow of Sec. VI: the remote user and the
    enclave run a DH exchange; the platform side signs the transcript
    and its measurements with EK/AK-backed certificates; both ends
    derive session and MAC keys from the DH secret and authenticate
    the exchange with a MAC. This module implements the protocol
    core over abstract "quote" payloads so that the EMS attestation
    task and the verifier model share one implementation. *)

type role = Initiator | Responder

(** One side's ephemeral state. *)
type session

(** Message 1: initiator's DH public value. *)
val start : Hypertee_util.Xrng.t -> role -> session

val public_of : session -> Bignum.t

(** [derive_keys session ~peer_public] completes the DH and derives
    (session_key, mac_key), both 16 bytes. Raises [Invalid_argument]
    on a degenerate peer value. *)
val derive_keys : session -> peer_public:Bignum.t -> bytes * bytes

(** [transcript ~initiator_pub ~responder_pub ~payload] is the byte
    string both sides sign/MAC. *)
val transcript : initiator_pub:Bignum.t -> responder_pub:Bignum.t -> payload:bytes -> bytes

(** [authenticate ~mac_key transcript] is the 32-byte transcript MAC. *)
val authenticate : mac_key:bytes -> bytes -> bytes

(** [check ~mac_key ~transcript ~tag] verifies the transcript MAC. *)
val check : mac_key:bytes -> transcript:bytes -> tag:bytes -> bool
