(** Remote-verifier model for the SIGMA-based attestation flow
    (paper Sec. VI, "Remote attestation").

    Plays the remote user: negotiates a DH key with the enclave,
    receives the platform + enclave certificates (the EATTEST quote),
    checks both signatures against the published EK/AK public keys,
    and compares the enclave measurement against the build-time
    expectation. On success both sides hold a shared session key for
    provisioning secrets into the enclave. *)

type outcome = {
  session_key : bytes;  (** 16-byte AES key shared with the enclave *)
  quote : Hypertee_ems.Attest.quote;
}

type failure =
  | Bad_quote_encoding
  | Bad_platform_signature
  | Bad_quote_signature
  | Measurement_mismatch of { expected : bytes; got : bytes }
  | Key_exchange_failed

(** [attest_enclave ~rng ~ek ~ak ~expected_measurement session] runs
    the full flow against a live enclave session. The enclave binds
    its DH public value into the quote's user data, which is what
    defeats relay/man-in-the-middle splicing. *)
val attest_enclave :
  rng:Hypertee_util.Xrng.t ->
  ek:Hypertee_crypto.Rsa.public ->
  ak:Hypertee_crypto.Rsa.public ->
  expected_measurement:bytes ->
  Session.t ->
  (outcome, failure) result

val failure_message : failure -> string
