(** Qualitative security model (paper Tables I and VI).

    Table I contrasts the blast radius of attacks on management tasks
    vs. attacks on enclaves themselves. Table VI scores nine TEE
    designs against the four controlled-channel classes and
    microarchitectural side channels on *management tasks*. The
    scores are encoded as data with the paper's justification per
    cell, and the [hypertee] row is cross-checked by the attack
    regression tests (a claim of [Defended] has a test exercising the
    defense). *)

type capability = Defended | Partial | Vulnerable

type attack_class =
  | Alloc_channel  (** allocation-based controlled channel *)
  | Page_table_channel  (** page-table management based *)
  | Swap_channel  (** page-swapping based *)
  | Comm_channel  (** communication management *)
  | Uarch_on_management  (** microarchitectural side channels on management tasks *)

type tee =
  | Sgx
  | Sev
  | Tdx
  | Cca
  | Trustzone
  | Keystone
  | Penglai
  | Cure
  | Hypertee

val all_tees : tee list
val all_attacks : attack_class list
val tee_name : tee -> string
val attack_name : attack_class -> string

(** Table VI cell. *)
val defends : tee -> attack_class -> capability

val capability_symbol : capability -> string

(** Table I: which CIA properties each attack target compromises. *)
type risk = { confidentiality : bool; integrity : bool; availability : bool }

val risk_of_management_attack : risk
val risk_of_enclave_attack : risk

(** Rendered tables for the harness. *)
val table_i_rows : unit -> string list list

val table_vi_rows : unit -> string list list
