lib/core/session.mli: Hypertee_ems Platform
