lib/core/verifier.mli: Hypertee_crypto Hypertee_ems Hypertee_util Session
