lib/core/platform.ml: Array Bytes Hypertee_arch Hypertee_crypto Hypertee_cs Hypertee_ems Hypertee_util List Printf
