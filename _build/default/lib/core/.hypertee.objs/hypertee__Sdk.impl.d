lib/core/sdk.ml: Bytes Hypertee_arch Hypertee_crypto Hypertee_cs Hypertee_ems Hypertee_util Int64 List Platform Result Session Stdlib
