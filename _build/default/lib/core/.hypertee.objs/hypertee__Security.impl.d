lib/core/security.ml: List
