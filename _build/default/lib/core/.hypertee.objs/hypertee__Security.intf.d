lib/core/security.mli:
