lib/core/sdk.mli: Hypertee_ems Platform Session
