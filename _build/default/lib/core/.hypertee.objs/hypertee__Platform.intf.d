lib/core/platform.mli: Hypertee_arch Hypertee_crypto Hypertee_cs Hypertee_ems Hypertee_util
