lib/core/verifier.ml: Bytes Hypertee_crypto Hypertee_ems Platform Session
