lib/core/session.ml: Buffer Bytes Hypertee_arch Hypertee_crypto Hypertee_cs Hypertee_ems Hypertee_util Platform Printf Stdlib
