module Attest = Hypertee_ems.Attest

type outcome = { session_key : bytes; quote : Attest.quote }

type failure =
  | Bad_quote_encoding
  | Bad_platform_signature
  | Bad_quote_signature
  | Measurement_mismatch of { expected : bytes; got : bytes }
  | Key_exchange_failed

let failure_message = function
  | Bad_quote_encoding -> "quote could not be decoded"
  | Bad_platform_signature -> "platform certificate signature invalid"
  | Bad_quote_signature -> "enclave quote signature invalid"
  | Measurement_mismatch _ -> "enclave measurement does not match the expected binary"
  | Key_exchange_failed -> "Diffie-Hellman exchange failed"

let attest_enclave ~rng ~ek ~ak ~expected_measurement session =
  (* Step 1: both sides generate DH ephemerals. The enclave's public
     value is bound into the quote's user data. *)
  let user = Hypertee_crypto.Dh.generate rng in
  let enclave_kp = Hypertee_crypto.Dh.generate (Platform.rng (Session.platform session)) in
  let enclave_pub_bytes = Hypertee_crypto.Bignum.to_bytes_be ~len:32 enclave_kp.Hypertee_crypto.Dh.public in
  (* Step 2: the enclave requests a quote over its DH share. *)
  match Session.attest session ~user_data:enclave_pub_bytes with
  | Error _ -> Error Bad_quote_encoding
  | Ok quote_bytes -> (
    match Attest.quote_of_bytes quote_bytes with
    | None -> Error Bad_quote_encoding
    | Some quote ->
      (* Step 3: verify signatures, then the measurement. *)
      if
        not
          (Hypertee_crypto.Rsa.verify ek ~msg:quote.Attest.platform_measurement
             ~signature:quote.Attest.platform_signature)
      then Error Bad_platform_signature
      else if not (Attest.verify_quote ~ek ~ak quote) then Error Bad_quote_signature
      else if not (Bytes.equal quote.Attest.enclave_measurement expected_measurement) then
        Error
          (Measurement_mismatch
             { expected = expected_measurement; got = quote.Attest.enclave_measurement })
      else begin
        (* Step 4: derive the session key from the authenticated DH
           shares. *)
        let quoted_pub = Hypertee_crypto.Bignum.of_bytes_be quote.Attest.user_data in
        if not (Hypertee_crypto.Dh.valid_public quoted_pub) then Error Key_exchange_failed
        else begin
          let k_user =
            Hypertee_crypto.Dh.session_key ~secret:user.Hypertee_crypto.Dh.secret
              ~peer_public:quoted_pub ~context:"hypertee-remote-attest"
          in
          let k_enclave =
            Hypertee_crypto.Dh.session_key ~secret:enclave_kp.Hypertee_crypto.Dh.secret
              ~peer_public:user.Hypertee_crypto.Dh.public ~context:"hypertee-remote-attest"
          in
          if Bytes.equal k_user k_enclave then Ok { session_key = k_user; quote }
          else Error Key_exchange_failed
        end
      end)
