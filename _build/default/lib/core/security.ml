type capability = Defended | Partial | Vulnerable

type attack_class =
  | Alloc_channel
  | Page_table_channel
  | Swap_channel
  | Comm_channel
  | Uarch_on_management

type tee = Sgx | Sev | Tdx | Cca | Trustzone | Keystone | Penglai | Cure | Hypertee

let all_tees = [ Sgx; Sev; Tdx; Cca; Trustzone; Keystone; Penglai; Cure; Hypertee ]

let all_attacks =
  [ Alloc_channel; Page_table_channel; Swap_channel; Comm_channel; Uarch_on_management ]

let tee_name = function
  | Sgx -> "SGX"
  | Sev -> "SEV"
  | Tdx -> "TDX"
  | Cca -> "CCA"
  | Trustzone -> "TrustZone"
  | Keystone -> "KeyStone"
  | Penglai -> "Penglai"
  | Cure -> "CURE"
  | Hypertee -> "HyperTEE"

let attack_name = function
  | Alloc_channel -> "Allocation"
  | Page_table_channel -> "Page table"
  | Swap_channel -> "Swapping"
  | Comm_channel -> "Communication"
  | Uarch_on_management -> "uArch on mgmt"

(* Paper Table VI. Management tasks in SGX/SEV live in the untrusted
   OS/hypervisor (everything exposed). TDX/CCA protect page tables
   via a trusted module but allocation/swapping/communication remain
   observable, and the module shares hardware with attackers.
   TrustZone/Keystone manage memory inside the trusted
   world/security monitor (memory channels closed) but offer no
   managed communication and, being logically isolated only, remain
   partly exposed to uarch channels. Penglai/CURE protect page
   tables specifically. HyperTEE decouples everything onto EMS. *)
let defends tee attack =
  match (tee, attack) with
  | Hypertee, _ -> Defended
  | Sgx, _ -> Vulnerable
  | Sev, Uarch_on_management -> Partial
  | Sev, _ -> Vulnerable
  | (Tdx | Cca), Page_table_channel -> Defended
  | (Tdx | Cca), _ -> Vulnerable
  | Trustzone, (Alloc_channel | Page_table_channel | Swap_channel) -> Defended
  | Trustzone, (Comm_channel | Uarch_on_management) -> Vulnerable
  | Keystone, (Alloc_channel | Page_table_channel | Swap_channel) -> Defended
  | Keystone, Comm_channel -> Vulnerable
  | Keystone, Uarch_on_management -> Partial
  | Penglai, Page_table_channel -> Defended
  | Penglai, Uarch_on_management -> Partial
  | Penglai, (Alloc_channel | Swap_channel | Comm_channel) -> Vulnerable
  | Cure, Page_table_channel -> Defended
  | Cure, Uarch_on_management -> Partial
  | Cure, (Alloc_channel | Swap_channel | Comm_channel) -> Vulnerable

let capability_symbol = function
  | Defended -> "yes"
  | Partial -> "partial"
  | Vulnerable -> "no"

type risk = { confidentiality : bool; integrity : bool; availability : bool }

let risk_of_management_attack = { confidentiality = true; integrity = true; availability = true }
let risk_of_enclave_attack = { confidentiality = true; integrity = false; availability = false }

let yesno b = if b then "Yes" else "No"

let table_i_rows () =
  let m = risk_of_management_attack and e = risk_of_enclave_attack in
  [
    [ "Compromise Confidentiality"; yesno m.confidentiality; yesno e.confidentiality ];
    [ "Compromise Integrity"; yesno m.integrity; yesno e.integrity ];
    [ "Compromise Availability"; yesno m.availability; yesno e.availability ];
  ]

let table_vi_rows () =
  List.map
    (fun tee ->
      tee_name tee
      :: List.map (fun attack -> capability_symbol (defends tee attack)) all_attacks)
    all_tees
