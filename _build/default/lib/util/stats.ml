type t = {
  mutable data : float array;
  mutable len : int;
  mutable sum : float;
  mutable m : float; (* Welford running mean *)
  mutable s : float; (* Welford running sum of squares of deltas *)
  mutable mn : float;
  mutable mx : float;
  mutable sorted : float array option; (* cache, invalidated on add *)
}

let create () =
  {
    data = Array.make 16 0.0;
    len = 0;
    sum = 0.0;
    m = 0.0;
    s = 0.0;
    mn = infinity;
    mx = neg_infinity;
    sorted = None;
  }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.m in
  t.m <- t.m +. (delta /. float_of_int t.len);
  t.s <- t.s +. (delta *. (x -. t.m));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.sorted <- None

let count t = t.len
let total t = t.sum
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

let require_nonempty t name =
  if t.len = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty" name)

let min t =
  require_nonempty t "min";
  t.mn

let max t =
  require_nonempty t "max";
  t.mx

let stddev t = if t.len = 0 then 0.0 else sqrt (t.s /. float_of_int t.len)

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.sub t.data 0 t.len in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  require_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = sorted t in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let samples t = Array.sub t.data 0 t.len

let fraction_below t x =
  if t.len = 0 then 0.0
  else begin
    let a = sorted t in
    (* Binary search for the first element > x. *)
    let rec go lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then go (mid + 1) hi else go lo mid
    in
    float_of_int (go 0 (Array.length a)) /. float_of_int t.len
  end

let mean_of a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let geomean_of a =
  if Array.length a = 0 then 0.0
  else begin
    let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 a in
    exp (log_sum /. float_of_int (Array.length a))
  end
