let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let page_size = 4 * kib
let pages_of_bytes n = (n + page_size - 1) / page_size

let show_bytes n =
  let f = float_of_int n in
  if n >= gib then Printf.sprintf "%.1fGiB" (f /. float_of_int gib)
  else if n >= mib then Printf.sprintf "%.1fMiB" (f /. float_of_int mib)
  else if n >= kib then Printf.sprintf "%.1fKiB" (f /. float_of_int kib)
  else Printf.sprintf "%dB" n

let ns_of_cycles ~cycles ~hz = cycles /. hz *. 1e9

let show_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns
