(** Byte-string helpers shared by the crypto and memory subsystems. *)

(** Lowercase hex encoding of a byte string. *)
val to_hex : bytes -> string

(** Inverse of [to_hex]. Raises [Invalid_argument] on odd length or
    non-hex characters. *)
val of_hex : string -> bytes

(** Big-endian 32-bit load/store. Offsets are byte offsets. *)
val get_u32_be : bytes -> int -> int32

val set_u32_be : bytes -> int -> int32 -> unit

(** Little-endian 64-bit load/store. *)
val get_u64_le : bytes -> int -> int64

val set_u64_le : bytes -> int -> int64 -> unit

(** Big-endian 64-bit load/store. *)
val get_u64_be : bytes -> int -> int64

val set_u64_be : bytes -> int -> int64 -> unit

(** [xor_into ~src ~dst] xors [src] into [dst] in place; lengths must
    match. *)
val xor_into : src:bytes -> dst:bytes -> unit

(** [xor a b] is a fresh buffer [a XOR b]; lengths must match. *)
val xor : bytes -> bytes -> bytes

(** Constant-time-style equality (compares every byte; no early
    exit). *)
val equal_ct : bytes -> bytes -> bool

(** [fill_zero b] overwrites [b] with zero bytes (key erasure). *)
val fill_zero : bytes -> unit
