(** Bounded FIFO ring queue.

    Models the hardware ring task queues of EMCall (Tx/Rx) and the
    mailbox request/response queues (paper Fig. 3). Bounded because
    hardware queues have fixed capacity; [push] reports back-pressure
    instead of growing. *)

type 'a t

(** [create ~capacity] is an empty queue. Requires [capacity > 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** [push q x] enqueues [x]; [false] when the queue is full
    (hardware back-pressure, caller must retry). *)
val push : 'a t -> 'a -> bool

(** [pop q] dequeues the oldest element, [None] when empty. *)
val pop : 'a t -> 'a option

(** [peek q] is the oldest element without removing it. *)
val peek : 'a t -> 'a option

(** Oldest-first listing, for inspection in tests. *)
val to_list : 'a t -> 'a list

val clear : 'a t -> unit

(** [iter f q] applies [f] oldest-first without dequeuing. *)
val iter : ('a -> unit) -> 'a t -> unit
