(** Size/time constants and human-readable formatting. *)

val kib : int
val mib : int
val gib : int

(** Page size used throughout the platform (4 KiB). *)
val page_size : int

(** [pages_of_bytes n] is the page count covering [n] bytes. *)
val pages_of_bytes : int -> int

(** "4.0KiB", "2.0MiB", ... *)
val show_bytes : int -> string

(** Cycles to nanoseconds at a given clock (Hz). *)
val ns_of_cycles : cycles:float -> hz:float -> float

(** "1.2us", "3.4ms", ... from nanoseconds. *)
val show_ns : float -> string
