(** Descriptive statistics over float samples.

    Used by the benchmark harness (percentile/SLO curves of Fig. 6,
    averages of Figs. 7–12) and by simulator counters. *)

type t

val create : unit -> t

(** Record one observation. *)
val add : t -> float -> unit

val count : t -> int
val total : t -> float
val mean : t -> float

(** Sample minimum / maximum. Raise [Invalid_argument] when empty. *)
val min : t -> float

val max : t -> float

(** Population standard deviation (Welford). *)
val stddev : t -> float

(** [percentile t p] with [p] in \[0, 100\], linear interpolation
    between closest ranks. Raises [Invalid_argument] when empty. *)
val percentile : t -> float -> float

(** All recorded samples, in insertion order. *)
val samples : t -> float array

(** [fraction_below t x] is the empirical CDF at [x]. *)
val fraction_below : t -> float -> float

(** Summary helpers for whole arrays. *)
val mean_of : float array -> float

val geomean_of : float array -> float
