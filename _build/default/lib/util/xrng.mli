(** Deterministic pseudo-random number generator.

    The whole reproduction must be reproducible given a seed, so no
    module may use [Stdlib.Random]'s global state. [Xrng] implements
    splitmix64 (for seeding) feeding xoshiro256** (for the stream),
    the combination recommended by the xoshiro authors. Each
    simulation component owns its own generator so that adding a
    component does not perturb the random stream of the others. *)

type t

(** [create seed] makes an independent generator from a 64-bit seed. *)
val create : int64 -> t

(** [split t] derives a new generator whose stream is independent of
    [t]'s future output. Used to hand sub-components their own RNG. *)
val split : t -> t

(** [copy t] duplicates the generator state (same future stream). *)
val copy : t -> t

(** Next raw 64-bit value. *)
val next64 : t -> int64

(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in \[0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** Exponentially distributed value with the given mean. *)
val exponential : t -> mean:float -> float

(** Standard normal via Box–Muller. *)
val gaussian : t -> float

(** [bytes t n] is [n] random bytes. *)
val bytes : t -> int -> bytes

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] picks a uniform element. Requires [a] non-empty. *)
val choose : t -> 'a array -> 'a

(** [sample_without_replacement t ~n ~from] picks [n] distinct
    indices in \[0, from). Requires [n <= from]. *)
val sample_without_replacement : t -> n:int -> from:int -> int list
