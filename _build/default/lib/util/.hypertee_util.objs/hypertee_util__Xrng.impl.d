lib/util/xrng.ml: Array Bytes Char Float Hashtbl Int64
