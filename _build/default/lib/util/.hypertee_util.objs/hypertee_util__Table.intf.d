lib/util/table.mli:
