lib/util/bytes_ext.mli:
