lib/util/stats.mli:
