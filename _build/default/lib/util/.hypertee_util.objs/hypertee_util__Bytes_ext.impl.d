lib/util/bytes_ext.ml: Bytes Char Int32 Int64 String
