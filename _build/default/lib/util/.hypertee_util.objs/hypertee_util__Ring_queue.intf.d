lib/util/ring_queue.mli:
