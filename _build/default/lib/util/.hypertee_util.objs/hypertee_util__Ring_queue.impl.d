lib/util/ring_queue.ml: Array List
