lib/util/xrng.mli:
