lib/util/units.mli:
