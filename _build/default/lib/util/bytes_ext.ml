let hex_digit n = "0123456789abcdef".[n]

let to_hex b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) (hex_digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (hex_digit (c land 0xF))
  done;
  Bytes.unsafe_to_string out

let of_hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bytes_ext.of_hex: not a hex digit"

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytes_ext.of_hex: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = of_hex_digit s.[2 * i] and lo = of_hex_digit s.[(2 * i) + 1] in
    Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
  done;
  out

let get_u32_be b off =
  let g i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  let ( <| ) x k = Int32.shift_left x k in
  Int32.logor
    (Int32.logor (g 0 <| 24) (g 1 <| 16))
    (Int32.logor (g 2 <| 8) (g 3))

let set_u32_be b off v =
  let s i k = Bytes.set b (off + i) (Char.chr (Int32.to_int (Int32.shift_right_logical v k) land 0xFF)) in
  s 0 24; s 1 16; s 2 8; s 3 0

let get_u64_le b off =
  let acc = ref 0L in
  for i = 7 downto 0 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get b (off + i))))
  done;
  !acc

let set_u64_le b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let get_u64_be b off =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get b (off + i))))
  done;
  !acc

let set_u64_be b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * (7 - i))) land 0xFF))
  done

let xor_into ~src ~dst =
  if Bytes.length src <> Bytes.length dst then invalid_arg "Bytes_ext.xor_into: length mismatch";
  for i = 0 to Bytes.length src - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor Char.code (Bytes.unsafe_get src i)))
  done

let xor a b =
  let out = Bytes.copy a in
  xor_into ~src:b ~dst:out;
  out

let equal_ct a b =
  if Bytes.length a <> Bytes.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to Bytes.length a - 1 do
      acc := !acc lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
    done;
    !acc = 0
  end

let fill_zero b = Bytes.fill b 0 (Bytes.length b) '\000'
