type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand a seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (next64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over the low 62 bits to stay unbiased. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec go () =
    let r = Int64.to_int (Int64.logand (next64 t) mask) in
    let v = r mod bound in
    if r - v > (1 lsl 62) - bound then go () else v
  in
  go ()

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high bits, as recommended for doubles. *)
  let bits = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let gaussian t =
  let u1 = 1.0 -. float t and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sample_without_replacement t ~n ~from =
  assert (n <= from);
  (* Floyd's algorithm: O(n) expected, no O(from) allocation. *)
  let seen = Hashtbl.create (2 * n) in
  let acc = ref [] in
  for j = from - n to from - 1 do
    let v = int t (j + 1) in
    let pick = if Hashtbl.mem seen v then j else v in
    Hashtbl.replace seen pick ();
    acc := pick :: !acc
  done;
  !acc
