lib/workloads/profile.ml: Format Hypertee_arch Hypertee_ems Hypertee_util List Stdlib
