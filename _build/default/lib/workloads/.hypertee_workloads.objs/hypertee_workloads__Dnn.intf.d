lib/workloads/dnn.mli:
