lib/workloads/dnn.ml: List Printf
