lib/workloads/runner.mli: Hypertee_arch Profile
