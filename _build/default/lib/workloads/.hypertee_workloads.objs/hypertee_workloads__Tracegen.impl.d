lib/workloads/tracegen.ml: Float Hypertee_arch Hypertee_util List
