lib/workloads/profile.mli: Format Hypertee_arch Hypertee_ems
