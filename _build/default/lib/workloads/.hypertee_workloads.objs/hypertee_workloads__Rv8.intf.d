lib/workloads/rv8.mli: Profile
