lib/workloads/spec2017.ml: Hypertee_arch List Profile String
