lib/workloads/spec2017.mli: Profile
