lib/workloads/rv8.ml: Hypertee_arch List Profile String
