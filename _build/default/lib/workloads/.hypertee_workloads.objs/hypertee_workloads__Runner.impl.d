lib/workloads/runner.ml: Hypertee_arch Hypertee_crypto Hypertee_ems Hypertee_util List Profile Stdlib
