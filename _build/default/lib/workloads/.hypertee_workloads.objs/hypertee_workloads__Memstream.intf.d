lib/workloads/memstream.mli: Hypertee_arch
