lib/workloads/memstream.ml: Hypertee_arch Hypertee_util List
