lib/workloads/tracegen.mli: Hypertee_arch Hypertee_util
