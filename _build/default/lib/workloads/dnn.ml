type layer = {
  name : string;
  macs : float;
  input_bytes : int;
  output_bytes : int;
  weight_bytes : int;
}

type network = { name : string; layers : layer list }

let total_macs n = List.fold_left (fun acc l -> acc +. l.macs) 0.0 n.layers

let total_activation_bytes n =
  List.fold_left (fun acc l -> acc + l.output_bytes) 0 n.layers

let total_weight_bytes n = List.fold_left (fun acc l -> acc + l.weight_bytes) 0 n.layers

(* Convolution stage helper: [reps] identical blocks, activations in
   NHWC int8 (1 byte/element), weights int8. *)
let conv name ~reps ~macs_m ~in_hw ~in_c ~out_hw ~out_c ~weight_k =
  List.init reps (fun i ->
      {
        name = Printf.sprintf "%s.%d" name i;
        macs = macs_m *. 1e6;
        input_bytes = in_hw * in_hw * in_c;
        output_bytes = out_hw * out_hw * out_c;
        weight_bytes = weight_k * 1024;
      })

let fc name ~inputs ~outputs =
  {
    name;
    macs = float_of_int (inputs * outputs);
    input_bytes = inputs;
    output_bytes = outputs;
    weight_bytes = inputs * outputs;
  }

(* ResNet-50, aggregated per stage (224x224 input, ~4.1 GMACs,
   ~25.5 M parameters). Stage MACs and tensor shapes follow the
   standard architecture. *)
let resnet50 =
  {
    name = "ResNet50";
    layers =
      conv "conv1" ~reps:1 ~macs_m:118.0 ~in_hw:224 ~in_c:3 ~out_hw:112 ~out_c:64 ~weight_k:9
      @ conv "conv2" ~reps:3 ~macs_m:230.0 ~in_hw:56 ~in_c:64 ~out_hw:56 ~out_c:256 ~weight_k:70
      @ conv "conv3" ~reps:4 ~macs_m:220.0 ~in_hw:28 ~in_c:256 ~out_hw:28 ~out_c:512 ~weight_k:280
      @ conv "conv4" ~reps:6 ~macs_m:220.0 ~in_hw:14 ~in_c:512 ~out_hw:14 ~out_c:1024 ~weight_k:1100
      @ conv "conv5" ~reps:3 ~macs_m:240.0 ~in_hw:7 ~in_c:1024 ~out_hw:7 ~out_c:2048 ~weight_k:4400
      @ [ fc "fc1000" ~inputs:2048 ~outputs:1000 ];
  }

(* MobileNetV1 (~569 MMACs, ~4.2 M parameters), aggregated into its
   depthwise-separable stages. *)
let mobilenet =
  {
    name = "MobileNet";
    layers =
      conv "conv1" ~reps:1 ~macs_m:10.8 ~in_hw:224 ~in_c:3 ~out_hw:112 ~out_c:32 ~weight_k:1
      @ conv "ds2" ~reps:2 ~macs_m:38.0 ~in_hw:112 ~in_c:32 ~out_hw:112 ~out_c:64 ~weight_k:6
      @ conv "ds3" ~reps:2 ~macs_m:40.0 ~in_hw:56 ~in_c:128 ~out_hw:56 ~out_c:128 ~weight_k:18
      @ conv "ds4" ~reps:2 ~macs_m:40.0 ~in_hw:28 ~in_c:256 ~out_hw:28 ~out_c:256 ~weight_k:68
      @ conv "ds5" ~reps:6 ~macs_m:40.0 ~in_hw:14 ~in_c:512 ~out_hw:14 ~out_c:512 ~weight_k:264
      @ conv "ds6" ~reps:2 ~macs_m:40.0 ~in_hw:7 ~in_c:1024 ~out_hw:7 ~out_c:1024 ~weight_k:1050
      @ [ fc "fc1000" ~inputs:1024 ~outputs:1000 ];
  }

(* MLPs: small compute, weight-dominated transfers — which is exactly
   why Fig. 12 shows them benefiting most from removing the software
   crypto on the data path. *)
let mlp_mnist =
  {
    name = "MLP-mnist";
    layers =
      [
        fc "fc1" ~inputs:784 ~outputs:2500;
        fc "fc2" ~inputs:2500 ~outputs:2000;
        fc "fc3" ~inputs:2000 ~outputs:1500;
        fc "fc4" ~inputs:1500 ~outputs:1000;
        fc "fc5" ~inputs:1000 ~outputs:10;
      ];
  }

let mlp_committee =
  {
    name = "MLP-committee";
    layers =
      [
        fc "fc1" ~inputs:784 ~outputs:1200;
        fc "fc2" ~inputs:1200 ~outputs:1200;
        fc "fc3" ~inputs:1200 ~outputs:10;
      ];
  }

let mlp_autoencoder =
  {
    name = "MLP-autoenc";
    layers =
      [
        fc "enc1" ~inputs:2048 ~outputs:1024;
        fc "enc2" ~inputs:1024 ~outputs:512;
        fc "dec1" ~inputs:512 ~outputs:1024;
        fc "dec2" ~inputs:1024 ~outputs:2048;
      ];
  }

let mlp_multimodal =
  {
    name = "MLP-multimodal";
    layers =
      [
        fc "audio" ~inputs:1536 ~outputs:1024;
        fc "video" ~inputs:2304 ~outputs:1024;
        fc "fuse1" ~inputs:2048 ~outputs:1024;
        fc "fuse2" ~inputs:1024 ~outputs:512;
      ];
  }

let all = [ resnet50; mobilenet; mlp_mnist; mlp_committee; mlp_autoencoder; mlp_multimodal ]
