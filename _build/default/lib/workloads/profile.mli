(** Workload profiles: the dynamic characteristics that drive the
    analytic timing model.

    Each benchmark the paper runs (rv8, wolfSSL, SPEC CPU2017,
    MemStream, DNN inference) is represented by its instruction count
    and memory-behaviour densities, plus the trace of enclave
    primitives an enclave port of it issues (creation, per-page
    loads, dynamic allocations). The profiles are synthetic but
    calibrated: miss densities are set from published
    characterisations so the paper's ratios emerge from the model
    rather than being hard-coded. *)

type t = {
  name : string;
  instructions : float;  (** dynamic instruction count of one run *)
  behavior : Hypertee_arch.Perf_model.mem_behavior;
  code_kb : int;  (** binary text size to EADD *)
  data_kb : int;  (** initialised data to EADD *)
  heap_kb : int;  (** static heap reservation *)
  dynamic_allocs : (int * int) list;
      (** (pages, times): EALLOC traffic the enclave port issues *)
}

(** Enclave configuration matching the profile's footprint. *)
val enclave_config : t -> Hypertee_ems.Types.enclave_config

(** Pages EADD'd at launch (code + data). *)
val load_pages : t -> int

(** Bytes measured by EMEAS/EADD at launch. *)
val measured_bytes : t -> int

(** Total EALLOC invocations of one run. *)
val alloc_invocations : t -> int

val pp : Format.formatter -> t -> unit
