(** MemStream: the streaming memory microbenchmark of Fig. 8b.

    Sweeps a buffer much larger than the last-level cache so nearly
    every cache line comes from DRAM, exposing the worst-case latency
    of the memory-encryption + integrity engine. Run against the real
    [Cache] model: a simulated address stream is pushed through an
    L1/L2 hierarchy and the cycle cost is accumulated per access,
    with the engine's extra latency applied to off-chip misses when
    encryption is on. *)

type result = {
  size_bytes : int;
  accesses : int;
  l2_misses : int;
  cycles_plain : float;
  cycles_encrypted : float;
  overhead_pct : float;
}

(** [run ~size_bytes ~latency] streams sequentially over the buffer
    (one pass, 64 B stride reads plus a read-modify-write every 4th
    line, like STREAM's triad mix). *)
val run : size_bytes:int -> latency:Hypertee_arch.Config.mem_latency -> result

(** The paper's sweep: 4, 8, 16, 32, 64 MiB. *)
val paper_sizes : int list
