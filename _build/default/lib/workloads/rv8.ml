module Pm = Hypertee_arch.Perf_model

(* Cache-resident compute kernels share a light memory profile;
   miniz (compression) and qsort stream more data. Densities are per
   kilo-instruction. *)
let light =
  { Pm.mem_refs_per_kinst = 280.0; l1_mpki = 4.0; l2_mpki = 0.8; llc_mpki = 0.15; tlb_mpki = 0.05 }

let streaming =
  { Pm.mem_refs_per_kinst = 350.0; l1_mpki = 18.0; l2_mpki = 5.0; llc_mpki = 1.2; tlb_mpki = 0.2 }

(* One run's heap churn: rv8 workloads allocate working buffers as
   they go; the enclave ports issue the same traffic as EALLOCs. *)
let churn times = [ (16, times) ]

let aes =
  {
    Profile.name = "aes";
    instructions = 970e6;
    behavior = light;
    code_kb = 256;
    data_kb = 32;
    heap_kb = 512;
    dynamic_allocs = churn 80;
  }

let dhrystone =
  {
    Profile.name = "dhrystone";
    instructions = 350e6;
    behavior = light;
    code_kb = 256;
    data_kb = 32;
    heap_kb = 256;
    dynamic_allocs = churn 80;
  }

let miniz =
  {
    Profile.name = "miniz";
    instructions = 760e6;
    behavior = streaming;
    code_kb = 256;
    data_kb = 32;
    heap_kb = 2048;
    dynamic_allocs = churn 80;
  }

let norx =
  {
    Profile.name = "norx";
    instructions = 640e6;
    behavior = light;
    code_kb = 256;
    data_kb = 32;
    heap_kb = 512;
    dynamic_allocs = churn 80;
  }

let primes =
  {
    Profile.name = "primes";
    instructions = 1280e6;
    behavior = light;
    code_kb = 256;
    data_kb = 32;
    heap_kb = 256;
    dynamic_allocs = churn 80;
  }

let qsort =
  {
    Profile.name = "qsort";
    instructions = 2250e6;
    behavior = streaming;
    code_kb = 256;
    data_kb = 32;
    heap_kb = 4096;
    dynamic_allocs = churn 80;
  }

let sha512 =
  {
    Profile.name = "sha512";
    instructions = 620e6;
    behavior = light;
    code_kb = 256;
    data_kb = 32;
    heap_kb = 256;
    dynamic_allocs = churn 80;
  }

(* wolfSSL streams TLS record buffers through the cache: a modest
   off-chip component that the memory-encryption engine taxes
   (Fig. 9). *)
let wolfssl_behavior =
  { Pm.mem_refs_per_kinst = 300.0; l1_mpki = 8.0; l2_mpki = 2.2; llc_mpki = 0.8; tlb_mpki = 0.1 }

let wolfssl =
  {
    Profile.name = "wolfSSL";
    instructions = 660e6;
    behavior = wolfssl_behavior;
    code_kb = 544;
    data_kb = 48;
    heap_kb = 1024;
    dynamic_allocs = churn 160;
  }

let suite = [ aes; dhrystone; miniz; norx; primes; qsort; sha512; wolfssl ]
let by_name name = List.find_opt (fun p -> String.lowercase_ascii p.Profile.name = String.lowercase_ascii name) suite
