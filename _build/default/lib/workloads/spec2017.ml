module Pm = Hypertee_arch.Perf_model

(* Non-enclave workloads: footprint fields are unused by Fig. 10 but
   filled in so the profiles can also run as enclave ports. Miss
   densities (per kilo-instruction) follow the usual published
   characterisations: mcf and omnetpp are LLC-hungry, xalancbmk is
   the dTLB outlier (~0.8% of accesses vs <0.2% elsewhere). *)
let mk name instructions ~refs ~l1 ~l2 ~llc ~tlb =
  {
    Profile.name;
    instructions;
    behavior =
      { Pm.mem_refs_per_kinst = refs; l1_mpki = l1; l2_mpki = l2; llc_mpki = llc; tlb_mpki = tlb };
    code_kb = 1024;
    data_kb = 256;
    heap_kb = 8192;
    dynamic_allocs = [ (64, 16) ];
  }

let perlbench = mk "perlbench_r" 2000e6 ~refs:380.0 ~l1:12.0 ~l2:2.0 ~llc:0.8 ~tlb:0.65
let gcc = mk "gcc_r" 1400e6 ~refs:400.0 ~l1:18.0 ~l2:4.5 ~llc:2.2 ~tlb:0.8
let mcf = mk "mcf_r" 1800e6 ~refs:420.0 ~l1:55.0 ~l2:22.0 ~llc:12.0 ~tlb:1.8
let omnetpp = mk "omnetpp_r" 1500e6 ~refs:410.0 ~l1:38.0 ~l2:14.0 ~llc:8.0 ~tlb:1.5
let xalancbmk = mk "xalancbmk_r" 1600e6 ~refs:360.0 ~l1:26.0 ~l2:7.0 ~llc:2.5 ~tlb:2.55
let x264 = mk "x264_r" 2400e6 ~refs:330.0 ~l1:8.0 ~l2:1.5 ~llc:0.6 ~tlb:0.35
let deepsjeng = mk "deepsjeng_r" 1900e6 ~refs:300.0 ~l1:9.0 ~l2:2.5 ~llc:1.1 ~tlb:0.55
let leela = mk "leela_r" 2100e6 ~refs:290.0 ~l1:10.0 ~l2:2.2 ~llc:0.9 ~tlb:0.5
let exchange2 = mk "exchange2_r" 2600e6 ~refs:250.0 ~l1:2.0 ~l2:0.3 ~llc:0.1 ~tlb:0.2
let xz = mk "xz_r" 1700e6 ~refs:370.0 ~l1:24.0 ~l2:9.0 ~llc:4.5 ~tlb:1.0

let suite =
  [ perlbench; gcc; mcf; omnetpp; xalancbmk; x264; deepsjeng; leela; exchange2; xz ]

let by_name name =
  List.find_opt (fun p -> String.lowercase_ascii p.Profile.name = String.lowercase_ascii name) suite
