module Cache = Hypertee_arch.Cache
module Config = Hypertee_arch.Config

type result = {
  size_bytes : int;
  accesses : int;
  l2_misses : int;
  cycles_plain : float;
  cycles_encrypted : float;
  overhead_pct : float;
}

let paper_sizes =
  List.map (fun mb -> mb * Hypertee_util.Units.mib) [ 4; 8; 16; 32; 64 ]

(* Out-of-order overlap on a pure stream: hardware prefetching plus
   MLP hide most of the DRAM latency; the remaining exposed stall per
   missing line is a fraction of the raw latency. The engine's extra
   pipeline stages are decrypt-before-use and thus less hidden. *)
let miss_exposure = 0.35
let engine_exposure = 0.2

let line = 64

let run ~size_bytes ~latency =
  let l1 = Cache.create ~size_bytes:(64 * 1024) ~ways:8 ~line_bytes:line in
  let l2 = Cache.create ~size_bytes:(1024 * 1024) ~ways:16 ~line_bytes:line in
  let lines = size_bytes / line in
  let accesses = ref 0 and l2_misses = ref 0 in
  let cycles_base = ref 0.0 in
  (* One sequential pass, reading every line; every 4th line is also
     written back (triad-like mix). The second pass would behave
     identically for sizes >> LLC, so one pass suffices. *)
  for i = 0 to lines - 1 do
    let addr = i * line in
    incr accesses;
    let l1_hit = Cache.access l1 ~addr in
    if l1_hit then cycles_base := !cycles_base +. float_of_int latency.Config.l1_hit
    else begin
      let l2_hit = Cache.access l2 ~addr in
      if l2_hit then cycles_base := !cycles_base +. float_of_int latency.Config.l2_hit
      else begin
        incr l2_misses;
        cycles_base :=
          !cycles_base
          +. (float_of_int latency.Config.dram *. miss_exposure)
          +. float_of_int latency.Config.l2_hit
      end
    end;
    (* the write of the triad mix hits the line just fetched *)
    if i mod 4 = 0 then begin
      incr accesses;
      ignore (Cache.access l1 ~addr);
      cycles_base := !cycles_base +. float_of_int latency.Config.l1_hit
    end
  done;
  let engine_extra =
    float_of_int !l2_misses
    *. float_of_int (latency.Config.encryption_extra + latency.Config.integrity_extra)
    *. engine_exposure
  in
  let cycles_plain = !cycles_base in
  let cycles_encrypted = !cycles_base +. engine_extra in
  {
    size_bytes;
    accesses = !accesses;
    l2_misses = !l2_misses;
    cycles_plain;
    cycles_encrypted;
    overhead_pct = (cycles_encrypted /. cycles_plain -. 1.0) *. 100.0;
  }
