module Config = Hypertee_arch.Config
module Pm = Hypertee_arch.Perf_model
module Cost = Hypertee_ems.Cost
module Types = Hypertee_ems.Types

type enclave_run = {
  native_ns : float;
  exec_ns : float;
  primitive_ns : float;
  emeas_ns : float;
  transport_ns : float;
  total_ns : float;
  overhead_pct : float;
  primitives_pct : float;
  emeas_pct : float;
}

let transport_round_trip_ns (tr : Config.transport) =
  tr.Config.emcall_entry_ns +. tr.Config.packet_build_ns
  +. (2.0 *. tr.Config.fabric_hop_ns)
  +. tr.Config.interrupt_ns
  +. (tr.Config.poll_slot_ns /. 2.0)

let run_enclave profile ~ems_kind ~crypto_engine ?(flushes_per_sec = 0.0) () =
  let lat = Config.default_latency in
  let engine =
    if crypto_engine then Hypertee_crypto.Engine.default_hardware
    else Hypertee_crypto.Engine.default_software
  in
  let cost = Cost.create ~ems:(Config.ems_core ems_kind) ~engine in
  let native =
    Pm.run Config.cs_core lat ~instructions:profile.Profile.instructions
      ~behavior:profile.Profile.behavior ~scenario:Pm.native
  in
  let exec =
    Pm.run Config.cs_core lat ~instructions:profile.Profile.instructions
      ~behavior:profile.Profile.behavior
      ~scenario:{ Pm.m_encrypt with extra_tlb_flushes_per_sec = flushes_per_sec }
  in
  (* Launch-time primitives. *)
  let config = Profile.enclave_config profile in
  let static_pages = Types.total_static_pages config in
  let load_pages = Profile.load_pages profile in
  let create_ns = Cost.create_ns cost ~static_pages in
  let add_total = float_of_int load_pages *. Cost.add_page_ns cost in
  let emeas_finalize = Cost.measure_ns cost ~bytes:64 +. Cost.dispatch_ns cost in
  (* EMEAS share as Table IV reports it: the hashing inside each EADD
     plus the finalisation call (already contained in add_total +
     emeas_finalize — not added again below). *)
  let emeas_ns =
    (float_of_int load_pages *. Cost.measure_ns cost ~bytes:Hypertee_util.Units.page_size)
    +. emeas_finalize
  in
  let enter_exit = Cost.enter_ns cost +. Cost.dispatch_ns cost in
  let destroy_ns = Cost.dispatch_ns cost +. (8.0 *. Cost.page_map_ns cost) in
  (* Runtime EALLOC churn. *)
  let alloc_ns =
    List.fold_left
      (fun acc (pages, times) -> acc +. (float_of_int times *. Cost.alloc_ns cost ~pages))
      0.0 profile.Profile.dynamic_allocs
  in
  let primitive_ns =
    create_ns +. add_total +. emeas_finalize +. enter_exit +. destroy_ns +. alloc_ns
  in
  (* Mailbox round trips: one per EADD page, one per alloc, plus the
     lifecycle calls. *)
  let invocations = load_pages + Profile.alloc_invocations profile + 5 in
  let transport_ns =
    float_of_int invocations *. transport_round_trip_ns Config.default_transport
  in
  (* Static allocation at creation removes the demand-paging faults a
     conventional first-touch run pays (the paper calls this out when
     comparing Fig. 7 to Table IV): credit a small execution-time
     benefit proportional to the statically mapped footprint. *)
  let static_alloc_benefit =
    Stdlib.min (0.015 *. native.Pm.time_ns) (float_of_int static_pages *. 6000.0)
  in
  let total_ns = exec.Pm.time_ns -. static_alloc_benefit +. primitive_ns +. transport_ns in
  {
    native_ns = native.Pm.time_ns;
    exec_ns = exec.Pm.time_ns;
    primitive_ns;
    emeas_ns;
    transport_ns;
    total_ns;
    overhead_pct = (total_ns /. native.Pm.time_ns -. 1.0) *. 100.0;
    primitives_pct = (primitive_ns +. transport_ns) /. native.Pm.time_ns *. 100.0;
    emeas_pct = emeas_ns /. native.Pm.time_ns *. 100.0;
  }

type host_run = { native_ns : float; bitmap_ns : float; overhead_pct : float }

let run_host_bitmap ?(flushes_per_sec = 0.0) profile =
  let lat = Config.default_latency in
  let native =
    Pm.run Config.cs_core lat ~instructions:profile.Profile.instructions
      ~behavior:profile.Profile.behavior ~scenario:Pm.native
  in
  let checked =
    Pm.run Config.cs_core lat ~instructions:profile.Profile.instructions
      ~behavior:profile.Profile.behavior
      ~scenario:{ Pm.bitmap with extra_tlb_flushes_per_sec = flushes_per_sec }
  in
  {
    native_ns = native.Pm.time_ns;
    bitmap_ns = checked.Pm.time_ns;
    overhead_pct = (checked.Pm.time_ns /. native.Pm.time_ns -. 1.0) *. 100.0;
  }
