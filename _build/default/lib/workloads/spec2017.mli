(** SPEC CPU2017 integer profiles (paper Fig. 10).

    Ten intrate benchmarks with reference-input-scale instruction
    counts and memory/TLB behaviour set from published
    characterisations (cache-hungry mcf/omnetpp, TLB-hungry
    xalancbmk with ~0.8% dTLB miss rate vs <0.2% for the rest, as
    the paper notes). These run as *non-enclave* workloads: Fig. 10
    measures only the bitmap-checking cost added to their page-table
    walks. *)

val perlbench : Profile.t
val gcc : Profile.t
val mcf : Profile.t
val omnetpp : Profile.t
val xalancbmk : Profile.t
val x264 : Profile.t
val deepsjeng : Profile.t
val leela : Profile.t
val exchange2 : Profile.t
val xz : Profile.t

val suite : Profile.t list
val by_name : string -> Profile.t option
