(** RV8 benchmark suite profiles plus wolfSSL (paper Sec. VII-A).

    The eight enclave workloads of Table IV / Fig. 7: aes, dhrystone,
    miniz, norx, primes, qsort, sha512, wolfSSL. Profiles carry the
    dynamic instruction counts, memory behaviour, binary footprints
    and heap-churn (EALLOC) traffic of one run; the runner turns them
    into times. Binary sizes are statically-linked rv8 builds
    (~280 KiB); wolfSSL is larger (~580 KiB). *)

val aes : Profile.t
val dhrystone : Profile.t
val miniz : Profile.t
val norx : Profile.t
val primes : Profile.t
val qsort : Profile.t
val sha512 : Profile.t
val wolfssl : Profile.t

(** Table IV / Fig. 7 order. *)
val suite : Profile.t list

val by_name : string -> Profile.t option
