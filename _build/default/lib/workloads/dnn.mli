(** DNN inference workloads for the enclave-communication experiment
    (paper Fig. 12, Sec. VII-D).

    Each network is a list of layers with MAC counts and
    input/output activation sizes; the accelerator model turns MACs
    into cycles, and the communication model charges for moving
    activations (and, on the first inference, weights) between the
    user enclave, the driver enclave and the accelerator — encrypted
    in software for the conventional baseline, plaintext shared
    enclave memory for HyperTEE. *)

type layer = {
  name : string;
  macs : float;  (** multiply-accumulates *)
  input_bytes : int;
  output_bytes : int;
  weight_bytes : int;
}

type network = { name : string; layers : layer list }

(** Total MACs / bytes helpers. *)
val total_macs : network -> float

val total_activation_bytes : network -> int
val total_weight_bytes : network -> int

(** The paper's six models. *)
val resnet50 : network

val mobilenet : network

(** Four MLPs (the paper cites handwriting-recognition, digit
    committee, speech-enhancement autoencoder and multimodal MLPs). *)
val mlp_mnist : network

val mlp_committee : network
val mlp_autoencoder : network
val mlp_multimodal : network

val all : network list
