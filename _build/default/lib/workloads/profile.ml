type t = {
  name : string;
  instructions : float;
  behavior : Hypertee_arch.Perf_model.mem_behavior;
  code_kb : int;
  data_kb : int;
  heap_kb : int;
  dynamic_allocs : (int * int) list;
}

let kb_pages kb = Hypertee_util.Units.pages_of_bytes (kb * 1024)

let enclave_config t =
  {
    Hypertee_ems.Types.code_pages = Stdlib.max 1 (kb_pages t.code_kb);
    data_pages = Stdlib.max 1 (kb_pages t.data_kb);
    heap_pages = Stdlib.max 1 (kb_pages t.heap_kb);
    stack_pages = 4;
    shared_pages = 4;
  }

let load_pages t = Stdlib.max 1 (kb_pages t.code_kb) + Stdlib.max 1 (kb_pages t.data_kb)
let measured_bytes t = load_pages t * Hypertee_util.Units.page_size
let alloc_invocations t = List.fold_left (fun acc (_, times) -> acc + times) 0 t.dynamic_allocs

let pp fmt t =
  Format.fprintf fmt "%s (%.0fM instr, %.1f LLC mpki, %.2f dTLB mpki)" t.name
    (t.instructions /. 1e6)
    t.behavior.Hypertee_arch.Perf_model.llc_mpki
    t.behavior.Hypertee_arch.Perf_model.tlb_mpki
