(** Synthetic memory-trace generation and trace-driven simulation.

    The evaluation figures use the analytic model
    ([Hypertee_arch.Perf_model]); this module provides the
    cross-check: generate an address stream with controlled locality,
    push it through the real [Cache]/[Tlb] models, and compare the
    measured miss densities against what a profile claims. The test
    suite uses it to validate that the analytic inputs are achievable
    memory behaviours, and MemStream-style experiments use it
    directly.

    The generator mixes three access classes, a standard synthetic
    workload recipe:
    - {b hot}: uniform over a small resident set (cache hits),
    - {b warm}: uniform over a mid-size set (L2-resident),
    - {b cold}: a sequential streaming pointer (compulsory misses). *)

type spec = {
  hot_bytes : int;  (** resident working set *)
  warm_bytes : int;  (** second-level working set *)
  cold_bytes : int;  (** streamed region *)
  hot_fraction : float;  (** probability an access is hot *)
  warm_fraction : float;  (** probability it is warm; rest is cold *)
}

(** A balanced default: 16 KiB hot / 256 KiB warm / 16 MiB cold. *)
val default_spec : spec

type result = {
  accesses : int;
  l1_miss_rate : float;
  l2_miss_rate : float;  (** of all accesses (off-chip rate) *)
  tlb_miss_rate : float;
  cycles : float;  (** simple in-order charge per the latency config *)
}

(** [run ?warmup rng spec ~accesses ~latency] simulates the stream
    through a fresh L1 (64 KiB/8w) + L2 (1 MiB/16w) hierarchy and a
    32-entry TLB. The first [warmup] accesses (default 0) run but are
    excluded from the miss counts, removing the compulsory-fill
    transient. *)
val run :
  ?warmup:int ->
  Hypertee_util.Xrng.t ->
  spec ->
  accesses:int ->
  latency:Hypertee_arch.Config.mem_latency ->
  result

(** [calibrate rng ~l1_mpki ~llc_mpki ~accesses] searches the mix
    fractions for a spec whose measured miss densities land near the
    requested per-kilo-instruction targets (assuming
    [Perf_model]-style 300 refs/kinst), demonstrating the analytic
    profiles correspond to realisable address streams. Returns the
    spec and its measured result. *)
val calibrate :
  Hypertee_util.Xrng.t -> l1_mpki:float -> llc_mpki:float -> accesses:int -> spec * result
