(** Workload runner: turns a profile into the paper's scenario times.

    Computes, for one profile on one platform configuration, the
    Host-Native execution time and the enclave execution time with
    its primitive overhead broken out — the quantities behind Fig. 7
    (EMS core configurations), Table IV (crypto engine on/off),
    Fig. 9 (all memory management on wolfSSL) and Fig. 10 (bitmap
    checking on non-enclave workloads). *)

type enclave_run = {
  native_ns : float;  (** Host-Native baseline *)
  exec_ns : float;  (** enclave compute time (with memory encryption) *)
  primitive_ns : float;  (** total EMS service time of all primitives *)
  emeas_ns : float;  (** the EMEAS share (EADD hashing + finalise) *)
  transport_ns : float;  (** EMCall/mailbox round-trip share *)
  total_ns : float;  (** exec + primitives + transport *)
  overhead_pct : float;  (** total vs native *)
  primitives_pct : float;  (** (primitive+transport) vs native — Table IV rows *)
  emeas_pct : float;
}

(** [run_enclave profile ~ems_kind ~crypto_engine ?flushes_per_sec ()]
    models a full enclave run: launch (ECREATE + per-page EADD +
    EMEAS), EENTER, execution with memory encryption, the profile's
    EALLOC churn, EEXIT and EDESTROY. *)
val run_enclave :
  Profile.t ->
  ems_kind:Hypertee_arch.Config.ems_kind ->
  crypto_engine:bool ->
  ?flushes_per_sec:float ->
  unit ->
  enclave_run

type host_run = {
  native_ns : float;
  bitmap_ns : float;  (** with bitmap checking on PTW *)
  overhead_pct : float;
}

(** [run_host_bitmap profile] — Fig. 10: the same non-enclave
    workload with and without bitmap checking. *)
val run_host_bitmap : ?flushes_per_sec:float -> Profile.t -> host_run
