module Cache = Hypertee_arch.Cache
module Tlb = Hypertee_arch.Tlb
module Pte = Hypertee_arch.Pte
module Config = Hypertee_arch.Config

type spec = {
  hot_bytes : int;
  warm_bytes : int;
  cold_bytes : int;
  hot_fraction : float;
  warm_fraction : float;
}

let default_spec =
  {
    hot_bytes = 16 * 1024;
    warm_bytes = 256 * 1024;
    cold_bytes = 16 * 1024 * 1024;
    hot_fraction = 0.90;
    warm_fraction = 0.07;
  }

type result = {
  accesses : int;
  l1_miss_rate : float;
  l2_miss_rate : float;
  tlb_miss_rate : float;
  cycles : float;
}

(* Region base addresses, page-aligned and disjoint. *)
let hot_base = 0
let warm_base = 1 lsl 30
let cold_base = 1 lsl 31

let run ?(warmup = 0) rng spec ~accesses ~latency =
  let l1 = Cache.create ~size_bytes:(64 * 1024) ~ways:8 ~line_bytes:64 in
  let l2 = Cache.create ~size_bytes:(1024 * 1024) ~ways:16 ~line_bytes:64 in
  let tlb = Tlb.create ~entries:32 in
  let cycles = ref 0.0 in
  let l1_misses = ref 0 and l2_misses = ref 0 and tlb_misses = ref 0 in
  let cold_cursor = ref 0 in
  (* Deterministic pre-fill: touch every line of the resident regions
     once so the measured phase sees steady state, not the compulsory
     fill. (The L1 refills the hot set naturally; the L2 retains the
     warm set.) *)
  for line = 0 to (spec.warm_bytes / 64) - 1 do
    ignore (Cache.access l1 ~addr:(warm_base + (64 * line)));
    ignore (Cache.access l2 ~addr:(warm_base + (64 * line)))
  done;
  for line = 0 to (spec.hot_bytes / 64) - 1 do
    ignore (Cache.access l1 ~addr:(hot_base + (64 * line)));
    ignore (Cache.access l2 ~addr:(hot_base + (64 * line)))
  done;
  for access = 1 to warmup + accesses do
    let counting = access > warmup in
    let addr =
      let p = Hypertee_util.Xrng.float rng in
      if p < spec.hot_fraction then hot_base + Hypertee_util.Xrng.int rng spec.hot_bytes
      else if p < spec.hot_fraction +. spec.warm_fraction then
        warm_base + Hypertee_util.Xrng.int rng spec.warm_bytes
      else begin
        (* Sequential stream with wrap-around: compulsory misses. *)
        cold_cursor := (!cold_cursor + 64) mod spec.cold_bytes;
        cold_base + !cold_cursor
      end
    in
    (* TLB first (4 KiB pages); a miss charges a walk. The tracegen
       TLB is standalone — no page table behind it — so fills are
       synthesized directly. *)
    let vpn = addr / 4096 in
    (match Tlb.lookup tlb ~vpn with
    | Some _ -> ()
    | None ->
      if counting then incr tlb_misses;
      cycles := !cycles +. float_of_int (3 * Config.ptw_level_cycles);
      Tlb.insert tlb { Tlb.vpn; pte = Pte.leaf ~ppn:(vpn land 0xFFFFFF) ~r:true ~w:true ~x:false ~key_id:0; checked = true });
    if Cache.access l1 ~addr then cycles := !cycles +. float_of_int latency.Config.l1_hit
    else begin
      if counting then incr l1_misses;
      if Cache.access l2 ~addr then cycles := !cycles +. float_of_int latency.Config.l2_hit
      else begin
        if counting then incr l2_misses;
        cycles := !cycles +. float_of_int latency.Config.dram
      end
    end
  done;
  let f = float_of_int in
  {
    accesses;
    l1_miss_rate = f !l1_misses /. f accesses;
    l2_miss_rate = f !l2_misses /. f accesses;
    tlb_miss_rate = f !tlb_misses /. f accesses;
    cycles = !cycles;
  }

(* Requested miss densities are per kilo-instruction at ~300 memory
   references per kinst; convert to per-access rates and steer the
   cold/warm fractions toward them. A compulsory-miss stream misses
   every line (1/64th of accesses at 64 B lines within a line-sized
   step), so cold_fraction ~ off-chip rate; the warm set sized beyond
   L1 supplies the extra L1 misses. *)
let calibrate rng ~l1_mpki ~llc_mpki ~accesses =
  let refs_per_kinst = 300.0 in
  let l1_target = l1_mpki /. refs_per_kinst in
  let llc_target = llc_mpki /. refs_per_kinst in
  let warmup = 4 * accesses in
  let spec = ref { default_spec with hot_fraction = 1.0; warm_fraction = 0.0 } in
  let best =
    ref (run ~warmup (Hypertee_util.Xrng.copy rng) !spec ~accesses ~latency:Config.default_latency)
  in
  let best_err = ref infinity in
  (* Coarse grid search over the two fractions. *)
  List.iter
    (fun cold ->
      List.iter
        (fun warm ->
          if cold +. warm < 0.9 then begin
            let candidate =
              { default_spec with warm_fraction = warm; hot_fraction = 1.0 -. cold -. warm }
            in
            let r =
              run ~warmup (Hypertee_util.Xrng.copy rng) candidate ~accesses
                ~latency:Config.default_latency
            in
            let err =
              Float.abs (r.l1_miss_rate -. l1_target) /. Float.max 1e-6 l1_target
              +. (Float.abs (r.l2_miss_rate -. llc_target) /. Float.max 1e-6 llc_target)
            in
            if err < !best_err then begin
              best_err := err;
              best := r;
              spec := candidate
            end
          end)
        [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ])
    [ 0.0; 0.0002; 0.0005; 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1 ];
  (!spec, !best)
