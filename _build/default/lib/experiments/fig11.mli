(** Fig. 11: TLB-flush overhead on enclaves vs. context-switch rate.

    The paper runs miniz (rv8) with working sets from 2 to 32 MiB at
    context-switch frequencies of 100 Hz (standard), 1.5x, 2x and 4x,
    and measures the slowdown from the TLB flushes EMCall issues on
    each enclave context switch — at most 1.81% (32 MiB, 400 Hz).

    Model: each switch costs one EMCall round trip plus the TLB and
    cache warmth lost, whose refill cost grows with the working set
    (PTE lines spill from L2 as the footprint grows). *)

type row = {
  memory_mb : int;
  frequency_hz : float;
  per_switch_ns : float;
  overhead_pct : float;
}

(** [run ()] — the paper's full grid. *)
val run : unit -> row list

val paper_sizes_mb : int list
val paper_frequencies : float list

(** Average bitmap-update-induced flushes per billion instructions
    for enclave workloads (the paper measures 16.72; ours is computed
    from the rv8 profiles' EALLOC churn). *)
val flushes_per_billion_instructions : unit -> float
