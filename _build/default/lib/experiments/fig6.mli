(** Fig. 6: efficiency of resolving concurrent primitive requests.

    The paper's software simulation: [cs_cores] generator processes
    issue enclave-creation primitives and then 16384 dynamic 2 MiB
    allocation primitives at the EMS, which serves them on
    [ems_cores] workers. The SLO baseline is the latency within which
    99% of the same requests complete in non-enclave mode (malloc on
    the CS side, no queueing at EMS). Each curve point is the
    fraction of enclave-mode primitives resolved within x times that
    baseline.

    Reproduced with the discrete-event engine: closed-loop generators
    per CS core, an FCFS multi-server resource for the EMS cores,
    service times from the EMS cost model plus mailbox transport. *)

type curve = {
  cs_cores : int;
  ems_cores : int;
  ems_kind : Hypertee_arch.Config.ems_kind;
  baseline_ns : float;  (** non-enclave p99 *)
  points : (float * float) list;  (** (x multiplier, fraction resolved) *)
  p99_multiplier : float;  (** x at which 99% resolve *)
}

(** [run ~seed ~cs_cores ~ems_cores ~ems_kind ~requests] — the
    paper's setup uses [requests = 16384]; tests may shrink it. *)
val run :
  seed:int64 ->
  cs_cores:int ->
  ems_cores:int ->
  ems_kind:Hypertee_arch.Config.ems_kind ->
  requests:int ->
  curve

(** The paper's grid: for each CS core count, the EMS configurations
    explored. *)
val paper_grid : (int * (int * Hypertee_arch.Config.ems_kind) list) list
