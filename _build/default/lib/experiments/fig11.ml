module Config = Hypertee_arch.Config
module Pm = Hypertee_arch.Perf_model

type row = {
  memory_mb : int;
  frequency_hz : float;
  per_switch_ns : float;
  overhead_pct : float;
}

let paper_sizes_mb = [ 2; 4; 8; 16; 32 ]
let paper_frequencies = [ 100.0; 150.0; 200.0; 400.0 ]

(* One enclave context switch costs the EMCall/EMS round trip (save
   context, notify EMS, restore) plus the lost TLB and cache warmth.
   The warmth component grows with the working set: more live
   translations to re-walk, and their PTE lines increasingly come
   from beyond the L2. *)
let per_switch_ns ~memory_mb =
  let round_trip = 6_000.0 in
  let refill = 1_150.0 *. float_of_int memory_mb in
  round_trip +. Stdlib.min refill 40_000.0

(* miniz over a working set: ~115 dynamic instructions per input byte
   (compression is branch- and table-heavy), with the streaming
   memory behaviour of the rv8 miniz profile. *)
let miniz_instructions ~memory_mb = float_of_int memory_mb *. 1048576.0 *. 115.0

let miniz_behavior = Hypertee_workloads.Rv8.miniz.Hypertee_workloads.Profile.behavior

let run () =
  List.concat_map
    (fun memory_mb ->
      let instructions = miniz_instructions ~memory_mb in
      let base =
        Pm.run Config.cs_core Config.default_latency ~instructions ~behavior:miniz_behavior
          ~scenario:Pm.m_encrypt
      in
      let time_s = base.Pm.time_ns /. 1e9 in
      List.map
        (fun frequency_hz ->
          let switches = frequency_hz *. time_s in
          let cost_ns = switches *. per_switch_ns ~memory_mb in
          {
            memory_mb;
            frequency_hz;
            per_switch_ns = per_switch_ns ~memory_mb;
            overhead_pct = cost_ns /. base.Pm.time_ns *. 100.0;
          })
        paper_frequencies)
    paper_sizes_mb

(* Bitmap updates force TLB maintenance, but per-page changes use
   targeted invalidations; a *full* flush is only needed when a batch
   of frames changes state wholesale — pool refills toward the OS and
   the static allocation at enclave creation. The paper measures
   16.72 full flushes per billion instructions on its enclave
   workloads; ours falls out of the rv8 profiles' pool-batch
   traffic. *)
let pool_batch_pages = 64

let flushes_per_billion_instructions () =
  let total_flushes, total_instr =
    List.fold_left
      (fun (f, i) p ->
        let alloc_pages =
          List.fold_left
            (fun acc (pages, times) -> acc + (pages * times))
            0 p.Hypertee_workloads.Profile.dynamic_allocs
        in
        let static_pages =
          Hypertee_ems.Types.total_static_pages (Hypertee_workloads.Profile.enclave_config p)
        in
        let batches = (alloc_pages + static_pages + pool_batch_pages - 1) / pool_batch_pages in
        (f + batches, i +. p.Hypertee_workloads.Profile.instructions))
      (0, 0.0) Hypertee_workloads.Rv8.suite
  in
  float_of_int total_flushes /. total_instr *. 1e9
