(** Ablation studies for HyperTEE's individual design choices.

    The paper motivates each mechanism qualitatively; these
    experiments quantify what is lost when a mechanism is disabled,
    using the same models as the main figures.

    1. Enclave memory pool (Sec. IV-A): with the pool, the OS sees
       only batched refills; without it (SGX-like demand requests),
       every allocation is visible — and slower, paying the OS round
       trip per request.
    2. Randomized refill threshold: with a fixed threshold the refill
       boundary is predictable (an attacker counting its own probe
       allocations learns the victim's); randomization destroys the
       predictability.
    3. Bitmap isolation vs contiguous range registers (Sec. IV-B):
       range-register schemes support a fixed number of contiguous
       regions and fail under fragmentation; the bitmap tracks any
       page set.
    4. EWB randomization (Sec. IV-A): serving reclamation from random
       pool pages hides the victim's working set; swapping the
       requested victim pages directly leaks a fault signal the
       attacker can observe. *)

type pool_ablation = {
  allocations : int;
  os_events_with_pool : int;
  os_events_without_pool : int;
  latency_with_pool_ns : float;  (** mean per 16-page EALLOC *)
  latency_without_pool_ns : float;
}

val pool : ?allocations:int -> unit -> pool_ablation

type threshold_ablation = {
  refills_observed : int;
  fixed_interval_stddev : float;  (** of allocations between refills *)
  randomized_interval_stddev : float;
}

val threshold : ?rounds:int -> unit -> threshold_ablation

type isolation_ablation = {
  range_registers : int;  (** register pairs the range scheme has *)
  fragmented_regions : int;  (** regions the workload needs *)
  range_scheme_supported : int;  (** regions the range scheme could isolate *)
  bitmap_supported : int;  (** the bitmap isolates all of them *)
}

val isolation : ?fragmented_regions:int -> unit -> isolation_ablation

type swap_ablation = {
  trials : int;
  victim_faults_randomized : int;
      (** times the attacker observed the victim fault after EWB
          under HyperTEE's randomized pool-backed selection *)
  victim_faults_direct : int;  (** same, with direct victim-page swapping *)
}

val swap : ?trials:int -> unit -> swap_ablation
