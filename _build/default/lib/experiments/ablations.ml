module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Config = Hypertee_arch.Config
module Mem_pool = Hypertee_ems.Mem_pool
module Cost = Hypertee_ems.Cost

let rng () = Hypertee_util.Xrng.create 0xAB1A7ED5L

(* --- 1. Pool vs per-allocation OS requests --- *)

type pool_ablation = {
  allocations : int;
  os_events_with_pool : int;
  os_events_without_pool : int;
  latency_with_pool_ns : float;
  latency_without_pool_ns : float;
}

let pool ?(allocations = 200) () =
  let mem = Phys_mem.create ~frames:32768 in
  let bitmap = Bitmap.create mem in
  let events = ref 0 in
  let os_request ~n =
    incr events;
    match Phys_mem.find_free mem ~n with
    | Some fs ->
      List.iter (fun f -> Phys_mem.set_owner mem f Phys_mem.Cs_os) fs;
      fs
    | None -> []
  in
  let os_return ~frames = List.iter (fun f -> Phys_mem.set_owner mem f Phys_mem.Free) frames in
  let pool = Mem_pool.create (rng ()) ~mem ~bitmap ~os_request ~os_return ~initial_frames:128 in
  events := 0;
  for _ = 1 to allocations do
    match Mem_pool.take pool ~n:16 with
    | Some frames -> Mem_pool.give_back pool frames
    | None -> failwith "pool exhausted"
  done;
  let os_events_with_pool = !events in
  (* Without the pool, every allocation is one OS round trip. *)
  let os_events_without_pool = allocations in
  (* Latency: the pooled path is the Fig. 8a EALLOC cost; the
     unpooled path adds an OS allocation round trip (syscall-class
     fixed cost plus per-page clearing on the CS side, which is no
     longer pre-done). *)
  let cost =
    Cost.create ~ems:(Config.ems_core Config.Medium) ~engine:Hypertee_crypto.Engine.default_hardware
  in
  let transport = 670.0 in
  let latency_with_pool_ns = transport +. Cost.alloc_ns cost ~pages:16 in
  let os_round_trip = 25_000.0 +. (16.0 *. 700.0) in
  let latency_without_pool_ns = latency_with_pool_ns +. os_round_trip in
  {
    allocations;
    os_events_with_pool;
    os_events_without_pool;
    latency_with_pool_ns;
    latency_without_pool_ns;
  }

(* --- 2. Fixed vs randomized refill threshold --- *)

type threshold_ablation = {
  refills_observed : int;
  fixed_interval_stddev : float;
  randomized_interval_stddev : float;
}

(* The attacker counts its own allocations between the refill events
   it observes. A fixed threshold yields a constant interval (stddev
   0): once the attacker learns it, every refill pinpoints the exact
   number of hidden allocations other enclaves made. Re-randomizing
   the threshold at each refill spreads the interval. Both designs
   are simulated directly: pool of [batch]-frame refills, one frame
   consumed per round, refill when availability drops below the
   threshold. *)
let threshold ?(rounds = 2000) () =
  let batch = 64 in
  let simulate ~next_threshold =
    let r = rng () in
    let available = ref batch and threshold = ref (next_threshold r) in
    let intervals = Hypertee_util.Stats.create () in
    let since_refill = ref 0 and refills = ref 0 in
    for _ = 1 to rounds do
      decr available;
      incr since_refill;
      if !available < !threshold then begin
        available := !available + batch;
        threshold := next_threshold r;
        incr refills;
        (* The first interval is a warm-up artefact of the initial
           fill level; the attacker's signal is the steady state. *)
        if !refills > 1 then Hypertee_util.Stats.add intervals (float_of_int !since_refill);
        since_refill := 0
      end
    done;
    (!refills, if Hypertee_util.Stats.count intervals = 0 then 0.0 else Hypertee_util.Stats.stddev intervals)
  in
  let refills_observed, randomized_interval_stddev =
    simulate ~next_threshold:(fun r -> 8 + Hypertee_util.Xrng.int r 24)
  in
  let _, fixed_interval_stddev = simulate ~next_threshold:(fun _ -> 16) in
  { refills_observed; fixed_interval_stddev; randomized_interval_stddev }

(* --- 3. Range registers vs bitmap under fragmentation --- *)

type isolation_ablation = {
  range_registers : int;
  fragmented_regions : int;
  range_scheme_supported : int;
  bitmap_supported : int;
}

let isolation ?(fragmented_regions = 64) () =
  (* CURE-class designs ship a small fixed number of range-register
     pairs (typically 8-16). Every fragmented region beyond that
     cannot be isolated; the bitmap isolates any page set. *)
  let range_registers = 16 in
  {
    range_registers;
    fragmented_regions;
    range_scheme_supported = Stdlib.min range_registers fragmented_regions;
    bitmap_supported = fragmented_regions;
  }

(* --- 4. EWB victim-selection randomization --- *)

type swap_ablation = {
  trials : int;
  victim_faults_randomized : int;
  victim_faults_direct : int;
}

let swap ?(trials = 100) () =
  (* Model: the victim enclave has a working set of W pages out of P
     mapped pages; the pool holds F free frames. The attacker asks to
     reclaim k pages and then watches whether the victim faults
     (i.e., whether a working-set page was taken).
     - HyperTEE: reclamation is served from the pool as long as it
       has frames, so the victim never faults (and the pool refills
       invisibly afterwards).
     - Direct swapping (SGX-like EWB): the OS names victim pages; an
       attacker targeting the working set always induces a fault. *)
  let r = rng () in
  let faults_randomized = ref 0 and faults_direct = ref 0 in
  for _ = 1 to trials do
    let pool_frames = 32 + Hypertee_util.Xrng.int r 64 in
    let reclaim = 8 + Hypertee_util.Xrng.int r 8 in
    (* HyperTEE: fault only if the pool cannot cover the request —
       and even then the evicted pages are chosen at random across
       all enclaves' heaps, so the probability the *watched* page is
       hit is small. *)
    if reclaim > pool_frames then begin
      let working_set = 4 and mapped = 128 in
      let overflow = reclaim - pool_frames in
      let p_hit = float_of_int (working_set * overflow) /. float_of_int mapped in
      if Hypertee_util.Xrng.float r < p_hit then incr faults_randomized
    end;
    (* Direct: the attacker names the page it wants out. *)
    incr faults_direct
  done;
  { trials; victim_faults_randomized = !faults_randomized; victim_faults_direct = !faults_direct }
