module Config = Hypertee_arch.Config
module Cost = Hypertee_ems.Cost

type row = { size_bytes : int; malloc_ns : float; ealloc_ns : float; overhead_pct : float }

let paper_sizes =
  List.map (fun kb -> kb * Hypertee_util.Units.kib) [ 128; 256; 512; 1024; 2048 ]

(* Non-enclave malloc: mmap syscall + VMA bookkeeping (fixed) plus
   per-page preparation (clear_page + fault handling) on the CS
   core. *)
let malloc_model_ns ~pages = 25_000.0 +. (float_of_int pages *. 700.0)

let transport_ns =
  let tr = Config.default_transport in
  tr.Config.emcall_entry_ns +. tr.Config.packet_build_ns
  +. (2.0 *. tr.Config.fabric_hop_ns)
  +. tr.Config.interrupt_ns
  +. (tr.Config.poll_slot_ns /. 2.0)

let run ?(seed = 0x8AL) ?(reps = 1000) ~ems_kind () =
  let rng = Hypertee_util.Xrng.create seed in
  let cost =
    Cost.create ~ems:(Config.ems_core ems_kind) ~engine:Hypertee_crypto.Engine.default_hardware
  in
  List.map
    (fun size_bytes ->
      let pages = Hypertee_util.Units.pages_of_bytes size_bytes in
      let m = Hypertee_util.Stats.create () and e = Hypertee_util.Stats.create () in
      for _ = 1 to reps do
        let jitter () = 1.0 +. (0.05 *. Hypertee_util.Xrng.gaussian rng) in
        Hypertee_util.Stats.add m (malloc_model_ns ~pages *. Float.max 0.5 (jitter ()));
        Hypertee_util.Stats.add e
          ((transport_ns +. Cost.alloc_ns cost ~pages) *. Float.max 0.5 (jitter ()))
      done;
      let malloc_ns = Hypertee_util.Stats.mean m and ealloc_ns = Hypertee_util.Stats.mean e in
      { size_bytes; malloc_ns; ealloc_ns; overhead_pct = (ealloc_ns /. malloc_ns -. 1.0) *. 100.0 })
    paper_sizes
