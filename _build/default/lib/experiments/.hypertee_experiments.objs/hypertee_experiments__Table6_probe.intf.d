lib/experiments/table6_probe.mli: Hypertee
