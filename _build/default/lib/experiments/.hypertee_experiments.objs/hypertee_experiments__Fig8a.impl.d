lib/experiments/fig8a.ml: Float Hypertee_arch Hypertee_crypto Hypertee_ems Hypertee_util List
