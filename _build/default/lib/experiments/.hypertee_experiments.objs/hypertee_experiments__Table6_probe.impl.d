lib/experiments/table6_probe.ml: Ablations Bytes Hypertee Hypertee_arch Hypertee_ems Hypertee_util List
