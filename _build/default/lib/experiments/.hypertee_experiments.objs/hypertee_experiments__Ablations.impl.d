lib/experiments/ablations.ml: Hypertee_arch Hypertee_crypto Hypertee_ems Hypertee_util List Stdlib
