lib/experiments/fig6.ml: Float Hypertee_arch Hypertee_crypto Hypertee_ems Hypertee_sim Hypertee_util List
