lib/experiments/fig6.mli: Hypertee_arch
