lib/experiments/fig8a.mli: Hypertee_arch
