lib/experiments/fig11.ml: Hypertee_arch Hypertee_ems Hypertee_workloads List Stdlib
