lib/experiments/ablations.mli:
