module Security = Hypertee.Security
module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Mem_pool = Hypertee_ems.Mem_pool
module Shm = Hypertee_ems.Shm
module Types = Hypertee_ems.Types

type isolation = Full_isolation | Partial_isolation | Shared_cores

type mechanisms = {
  allocation_hidden_from_os : bool;
  protected_page_tables : bool;
  concealed_swap : bool;
  managed_communication : bool;
  management_isolation : isolation;
}

(* Table VI rows translated into mechanism inventories: SGX/SEV/TDX
   leave memory management with the untrusted OS/hypervisor (TDX/CCA
   protect page tables via their module); TrustZone/Keystone manage
   memory inside the trusted world / security monitor; Penglai/CURE
   protect page tables specifically; only HyperTEE manages
   communication and runs management on isolated hardware. SEV's PSP
   and the monitor designs isolate *some* management. *)
let mechanisms_of = function
  | Security.Sgx ->
    {
      allocation_hidden_from_os = false;
      protected_page_tables = false;
      concealed_swap = false;
      managed_communication = false;
      management_isolation = Shared_cores;
    }
  | Security.Sev ->
    {
      allocation_hidden_from_os = false;
      protected_page_tables = false;
      concealed_swap = false;
      managed_communication = false;
      management_isolation = Partial_isolation (* PSP holds the keys *);
    }
  | Security.Tdx | Security.Cca ->
    {
      allocation_hidden_from_os = false;
      protected_page_tables = true;
      concealed_swap = false;
      managed_communication = false;
      management_isolation = Shared_cores;
    }
  | Security.Trustzone ->
    {
      allocation_hidden_from_os = true;
      protected_page_tables = true;
      concealed_swap = true;
      managed_communication = false;
      management_isolation = Shared_cores;
    }
  | Security.Keystone ->
    {
      allocation_hidden_from_os = true;
      protected_page_tables = true;
      concealed_swap = true;
      managed_communication = false;
      management_isolation = Partial_isolation (* M-mode monitor *);
    }
  | Security.Penglai | Security.Cure ->
    {
      allocation_hidden_from_os = false (* page tables only *);
      protected_page_tables = true;
      concealed_swap = false;
      managed_communication = false;
      management_isolation = Partial_isolation;
    }
  | Security.Hypertee ->
    {
      allocation_hidden_from_os = true;
      protected_page_tables = true;
      concealed_swap = true;
      managed_communication = true;
      management_isolation = Full_isolation;
    }

type probe_results = {
  alloc_defended : bool;
  page_table_defended : bool;
  swap_defended : bool;
  comm_defended : bool;
  uarch : Security.capability;
}

let rng () = Hypertee_util.Xrng.create 0x7AB6L

(* Probe 1: the OS counts allocation events during a 100-allocation
   burst. Defended = it observes (almost) nothing. *)
let probe_alloc ~hidden =
  let mem = Phys_mem.create ~frames:8192 in
  let bitmap = Bitmap.create mem in
  let os_events = ref 0 in
  let os_request ~n =
    incr os_events;
    match Phys_mem.find_free mem ~n with
    | Some fs ->
      List.iter (fun f -> Phys_mem.set_owner mem f Phys_mem.Cs_os) fs;
      fs
    | None -> []
  in
  let os_return ~frames = List.iter (fun f -> Phys_mem.set_owner mem f Phys_mem.Free) frames in
  if hidden then begin
    let pool = Mem_pool.create (rng ()) ~mem ~bitmap ~os_request ~os_return ~initial_frames:128 in
    os_events := 0;
    for _ = 1 to 100 do
      match Mem_pool.take pool ~n:1 with
      | Some frames -> Mem_pool.give_back pool frames
      | None -> ()
    done
  end
  else
    (* Per-request designs: every allocation is an OS call. *)
    for _ = 1 to 100 do
      os_return ~frames:(os_request ~n:1)
    done;
  !os_events <= 2

(* Probe 2: a malicious OS maps a protected frame into its own table
   and reads. Defended = the hardware check faults. *)
let probe_page_table ~protected_ =
  let mem = Phys_mem.create ~frames:512 in
  let bitmap = Bitmap.create mem in
  let table =
    Hypertee_arch.Page_table.create mem ~node_owner:Phys_mem.Cs_os
      ~alloc:(Hypertee_arch.Page_table.default_alloc mem)
  in
  let victim_frame = 100 in
  Phys_mem.set_owner mem victim_frame (Phys_mem.Enclave 1);
  Phys_mem.write_sub mem ~frame:victim_frame ~off:0 (Bytes.of_string "SECRET");
  if protected_ then Bitmap.set bitmap ~frame:victim_frame;
  Hypertee_arch.Page_table.map table ~vpn:7
    (Hypertee_arch.Pte.leaf ~ppn:victim_frame ~r:true ~w:false ~x:false ~key_id:0);
  let ptw = Hypertee_arch.Ptw.create (Hypertee_arch.Tlb.create ~entries:8) ~bitmap in
  match Hypertee_arch.Ptw.translate ptw ~table ~vpn:7 ~access:Hypertee_arch.Ptw.Read with
  | Error Hypertee_arch.Ptw.Bitmap_fault -> true
  | Ok _ -> false
  | Error _ -> false

(* Probe 3: the attacker requests eviction and watches whether the
   victim's working page went out (Ablations' model). Defended = the
   fault is never observed. *)
let probe_swap ~concealed =
  if concealed then begin
    let a = Ablations.swap ~trials:50 () in
    a.Ablations.victim_faults_randomized = 0
  end
  else false (* direct victim naming: always observable *)

(* Probe 4: the attacker guesses a ShmID (unregistered attach) and
   tries a malicious release. Defended = both rejected. *)
let probe_comm ~managed =
  if not managed then false
  else begin
    let t = Shm.create () in
    let _ = Shm.register t ~shm:1 ~owner:10 ~frames:[ 1 ] ~key_id:2 ~max_perm:Types.Read_write in
    let attach_blocked =
      match Shm.attach t ~shm:1 ~enclave:66 ~requested_perm:Types.Read_only ~base_vpn:0 with
      | Error Types.Not_registered -> true
      | _ -> false
    in
    let release_blocked =
      match Shm.destroy t ~shm:1 ~caller:66 with
      | Error (Types.Permission_denied _) -> true
      | _ -> false
    in
    attach_blocked && release_blocked
  end

let probe m =
  {
    alloc_defended = probe_alloc ~hidden:m.allocation_hidden_from_os;
    page_table_defended = probe_page_table ~protected_:m.protected_page_tables;
    swap_defended = probe_swap ~concealed:m.concealed_swap;
    comm_defended = probe_comm ~managed:m.managed_communication;
    uarch =
      (match m.management_isolation with
      | Full_isolation -> Security.Defended
      | Partial_isolation -> Security.Partial
      | Shared_cores -> Security.Vulnerable);
  }

let derived_capability tee attack =
  let r = probe (mechanisms_of tee) in
  let of_bool b = if b then Security.Defended else Security.Vulnerable in
  match attack with
  | Security.Alloc_channel -> of_bool r.alloc_defended
  | Security.Page_table_channel -> of_bool r.page_table_defended
  | Security.Swap_channel -> of_bool r.swap_defended
  | Security.Comm_channel -> of_bool r.comm_defended
  | Security.Uarch_on_management -> r.uarch
