(** Fig. 8a: EALLOC vs malloc latency across allocation sizes.

    1000 repetitions per size from 128 KiB to 2 MiB, comparing the
    non-enclave malloc path on the CS core to the EALLOC path
    (EMCall transport + EMS service from the pre-zeroed pool). The
    paper reports 6.3%-49.7% overhead, growing with size because the
    per-page management on the weaker EMS core eventually outweighs
    malloc's larger fixed syscall cost. *)

type row = {
  size_bytes : int;
  malloc_ns : float;  (** mean of the repetitions *)
  ealloc_ns : float;
  overhead_pct : float;
}

val run :
  ?seed:int64 -> ?reps:int -> ems_kind:Hypertee_arch.Config.ems_kind -> unit -> row list

(** 128 KiB .. 2 MiB by powers of two. *)
val paper_sizes : int list
