(** Table VI, measured rather than asserted.

    [Hypertee.Security.defends] encodes the paper's defense matrix as
    data. This module re-derives each cell by executing a concrete
    probe against the *mechanism* each TEE design builds (or lacks),
    so a design's row is an observation:

    - {b allocation channel}: drive an allocation burst through an
      allocator with the design's visibility (hidden behind a
      batched/randomized pool or trusted monitor, vs. per-request OS
      calls) and count what the OS observes;
    - {b page-table channel}: attempt the malicious-remap read with
      the design's page-table protection in force or absent;
    - {b swap channel}: attempt the targeted-eviction observation
      under the design's eviction policy;
    - {b communication management}: attempt the unregistered attach
      and the malicious release against the design's (or absent)
      shared-memory manager;
    - {b uarch on management}: structural — where management tasks
      execute (fully isolated hardware, a partially isolated
      security processor, or shared cores).

    The test suite asserts the derived matrix equals the paper's. *)

type isolation = Full_isolation | Partial_isolation | Shared_cores

type mechanisms = {
  allocation_hidden_from_os : bool;
  protected_page_tables : bool;
  concealed_swap : bool;
  managed_communication : bool;
  management_isolation : isolation;
}

(** How each TEE design of Table VI builds the five mechanisms. *)
val mechanisms_of : Hypertee.Security.tee -> mechanisms

(** Probe outcomes: [true] = the attack was defeated. *)
type probe_results = {
  alloc_defended : bool;
  page_table_defended : bool;
  swap_defended : bool;
  comm_defended : bool;
  uarch : Hypertee.Security.capability;
}

(** [probe mechanisms] executes the five probes. *)
val probe : mechanisms -> probe_results

(** [derived_capability tee attack] — the measured matrix cell, for
    comparison with the paper's [Security.defends]. *)
val derived_capability :
  Hypertee.Security.tee -> Hypertee.Security.attack_class -> Hypertee.Security.capability
