type access = Dma_read | Dma_write
type fault = Unmapped | Write_to_readonly

type entry = { frame : int; writable : bool; key_id : int }

type t = {
  tables : (int * int, entry) Hashtbl.t; (* (device, io_vpn) -> entry *)
  iotlb : (int * int, entry) Hashtbl.t; (* cached translations *)
  mutable hits : int;
  mutable misses : int;
  mutable faults : int;
}

let iotlb_capacity = 64

let create () =
  { tables = Hashtbl.create 64; iotlb = Hashtbl.create iotlb_capacity; hits = 0; misses = 0; faults = 0 }

type translation = { frame : int; key_id : int }

let map t ~device ~io_vpn ~frame ~writable ?(key_id = 0) () =
  if frame < 0 then invalid_arg "Iommu.map: negative frame";
  Hashtbl.replace t.tables (device, io_vpn) { frame; writable; key_id };
  (* Overwriting a live translation must not leave a stale IOTLB
     entry pointing at the old frame. *)
  Hashtbl.remove t.iotlb (device, io_vpn)

let unmap t ~device ~io_vpn =
  Hashtbl.remove t.tables (device, io_vpn);
  Hashtbl.remove t.iotlb (device, io_vpn)

let clear_device t ~device =
  let keys tbl =
    Hashtbl.fold (fun ((d, _) as k) _ acc -> if d = device then k :: acc else acc) tbl []
  in
  List.iter (Hashtbl.remove t.tables) (keys t.tables);
  List.iter (Hashtbl.remove t.iotlb) (keys t.iotlb)

let permit entry access =
  match access with Dma_read -> true | Dma_write -> entry.writable

let translate t ~device ~io_vpn ~access =
  let key = (device, io_vpn) in
  let checked entry =
    if permit entry access then Ok { frame = entry.frame; key_id = entry.key_id }
    else begin
      t.faults <- t.faults + 1;
      Error Write_to_readonly
    end
  in
  match Hashtbl.find_opt t.iotlb key with
  | Some entry ->
    t.hits <- t.hits + 1;
    checked entry
  | None -> (
    t.misses <- t.misses + 1;
    match Hashtbl.find_opt t.tables key with
    | None ->
      t.faults <- t.faults + 1;
      Error Unmapped
    | Some entry ->
      if Hashtbl.length t.iotlb >= iotlb_capacity then begin
        (* Random-ish replacement: drop one resident entry. *)
        match Hashtbl.fold (fun k _ _ -> Some k) t.iotlb None with
        | Some victim -> Hashtbl.remove t.iotlb victim
        | None -> ()
      end;
      Hashtbl.replace t.iotlb key entry;
      checked entry)

let iotlb_hits t = t.hits
let iotlb_misses t = t.misses
let faults t = t.faults

let mappings_of t ~device =
  Hashtbl.fold
    (fun (d, io_vpn) (entry : entry) acc ->
      if d = device then (io_vpn, entry.frame, entry.writable) :: acc else acc)
    t.tables []
  |> List.sort compare
