(** Sv39-style three-level radix page table stored in physical frames.

    Each table node occupies one 4 KiB frame holding 512 little-endian
    64-bit entries; a walk resolves a 27-bit virtual page number in
    three 9-bit strides. HyperTEE keeps one such table per process
    *and* a dedicated private table per enclave (Sec. IV-A), both
    built from this module — the difference is who owns the frames
    the nodes live in. *)

type t

(** [create mem ~node_owner ~alloc] builds an empty table. Node
    frames (root included) are obtained from [alloc] — the CS OS
    free-list for process tables, the EMS enclave pool for enclave
    tables — then stamped [node_owner] and zeroed. [alloc] must
    return a distinct usable frame each call and may raise
    [Failure _] when memory is exhausted. *)
val create : Phys_mem.t -> node_owner:Phys_mem.owner -> alloc:(unit -> int) -> t

(** [default_alloc mem] draws directly from free physical frames —
    convenient for tests. *)
val default_alloc : Phys_mem.t -> unit -> int

(** Root frame number — the value loaded into the satp register. *)
val root_frame : t -> int

(** All frames used by table nodes (root included). *)
val node_frames : t -> int list

(** [map t ~vpn pte] installs a leaf for virtual page [vpn],
    allocating intermediate nodes as needed. Replaces any existing
    mapping. *)
val map : t -> vpn:int -> Pte.t -> unit

(** [unmap t ~vpn] invalidates the leaf (no node reclamation,
    matching real kernels' lazy behaviour). No-op if unmapped. *)
val unmap : t -> vpn:int -> unit

(** [lookup t ~vpn] walks the tree in software (no timing), returning
    the leaf if present and valid. *)
val lookup : t -> vpn:int -> Pte.t option

(** [walk_frames t ~vpn] is the list of (frame, byte offset) touched
    by a hardware walk of [vpn], root first — what the PTW model
    charges for. The walk stops early at an invalid entry. *)
val walk_frames : t -> vpn:int -> (int * int) list

(** [update_flags t ~vpn ~accessed ~dirty] ORs the A/D bits into an
    existing leaf (hardware-managed A/D update); false leaves a flag
    unchanged. No-op when unmapped. *)
val update_flags : t -> vpn:int -> accessed:bool -> dirty:bool -> unit

(** All valid (vpn, pte) leaves, ascending vpn (test support). *)
val entries : t -> (int * Pte.t) list

(** Maximum mappable vpn (exclusive). *)
val vpn_limit : int
