type 'req packet = { request_id : int; sender_enclave : int option; body : 'req }

type ('req, 'resp) t = {
  requests : 'req packet Hypertee_util.Ring_queue.t;
  responses : (int, 'resp) Hashtbl.t; (* request_id -> response *)
  outstanding : (int, unit) Hashtbl.t; (* ids handed to EMS, not yet answered *)
  mutable next_id : int;
}

let create ?(depth = 64) () =
  {
    requests = Hypertee_util.Ring_queue.create ~capacity:depth;
    responses = Hashtbl.create depth;
    outstanding = Hashtbl.create depth;
    next_id = 1;
  }

let send_request t ~sender_enclave body =
  let id = t.next_id in
  let packet = { request_id = id; sender_enclave; body } in
  if Hypertee_util.Ring_queue.push t.requests packet then begin
    t.next_id <- t.next_id + 1;
    Ok id
  end
  else Error `Full

let recv_request t =
  match Hypertee_util.Ring_queue.pop t.requests with
  | Some packet ->
    Hashtbl.replace t.outstanding packet.request_id ();
    Some packet
  | None -> None

let send_response t ~request_id resp =
  if not (Hashtbl.mem t.outstanding request_id) then
    invalid_arg "Mailbox.send_response: unknown or already-answered request id";
  Hashtbl.remove t.outstanding request_id;
  Hashtbl.replace t.responses request_id resp

let poll_response t ~request_id =
  match Hashtbl.find_opt t.responses request_id with
  | Some resp ->
    Hashtbl.remove t.responses request_id;
    Some resp
  | None -> None

let pending_requests t = Hypertee_util.Ring_queue.length t.requests
let pending_responses t = Hashtbl.length t.responses
let issued t = t.next_id - 1
