(** Enclave-memory bitmap (paper Sec. IV-B, Fig. 5).

    One bit per physical frame: set = the frame is enclave memory and
    must not be touched by non-enclave software. The bitmap itself
    lives *inside physical memory* in frames marked [Bitmap_region]
    (the paper protects the bitmap as enclave memory), so the CS page
    table walker genuinely reads it from memory. Only EMS writes it;
    the [set]/[clear] operations are invoked from EMS code paths. *)

type t

(** [create mem] reserves enough trailing frames of [mem] to hold one
    bit per frame, marks them [Bitmap_region] and marks their own
    bits set (the region protects itself). *)
val create : Phys_mem.t -> t

(** Base frame of the region (the BM_BASE register value). *)
val base_frame : t -> int

(** Number of frames occupied by the bitmap itself. *)
val region_frames : t -> int

(** [get t ~frame] reads the bit through physical memory, exactly as
    the hardware checker does. *)
val get : t -> frame:int -> bool

val set : t -> frame:int -> unit
val clear : t -> frame:int -> unit

(** Number of set bits (for invariant checks). *)
val popcount : t -> int
