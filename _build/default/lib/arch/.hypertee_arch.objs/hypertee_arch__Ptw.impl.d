lib/arch/ptw.ml: Bitmap Config List Page_table Pte Tlb
