lib/arch/mem_encryption.ml: Array Bytes Config Hashtbl Hypertee_crypto Hypertee_util List
