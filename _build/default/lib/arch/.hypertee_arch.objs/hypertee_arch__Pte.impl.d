lib/arch/pte.ml: Format Int64
