lib/arch/mailbox.mli:
