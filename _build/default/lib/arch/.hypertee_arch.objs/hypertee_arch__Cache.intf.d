lib/arch/cache.mli:
