lib/arch/phys_mem.ml: Array Bytes Format Hypertee_util List
