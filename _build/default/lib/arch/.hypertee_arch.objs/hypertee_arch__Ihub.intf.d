lib/arch/ihub.mli: Format Phys_mem
