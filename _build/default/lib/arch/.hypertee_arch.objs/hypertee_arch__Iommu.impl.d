lib/arch/iommu.ml: Hashtbl List
