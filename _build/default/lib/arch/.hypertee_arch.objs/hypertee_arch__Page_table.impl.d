lib/arch/page_table.ml: List Phys_mem Pte
