lib/arch/bitmap.mli: Phys_mem
