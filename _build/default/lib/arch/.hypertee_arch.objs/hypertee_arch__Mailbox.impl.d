lib/arch/mailbox.ml: Hashtbl Hypertee_util
