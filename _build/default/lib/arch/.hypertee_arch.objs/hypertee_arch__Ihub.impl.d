lib/arch/ihub.ml: Format Hashtbl Phys_mem
