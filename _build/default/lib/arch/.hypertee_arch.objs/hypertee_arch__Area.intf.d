lib/arch/area.mli: Config
