lib/arch/perf_model.mli: Config
