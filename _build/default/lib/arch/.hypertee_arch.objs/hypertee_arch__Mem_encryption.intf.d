lib/arch/mem_encryption.mli: Config
