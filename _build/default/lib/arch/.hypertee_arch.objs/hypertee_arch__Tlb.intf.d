lib/arch/tlb.mli: Pte
