lib/arch/area.ml: Config List
