lib/arch/cache.ml: Array
