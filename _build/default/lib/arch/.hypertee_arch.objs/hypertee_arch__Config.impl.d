lib/arch/config.ml: Format
