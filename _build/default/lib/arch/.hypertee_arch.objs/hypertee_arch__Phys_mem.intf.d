lib/arch/phys_mem.mli: Format
