lib/arch/iommu.mli:
