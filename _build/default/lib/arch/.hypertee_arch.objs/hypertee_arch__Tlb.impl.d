lib/arch/tlb.ml: Hashtbl Pte
