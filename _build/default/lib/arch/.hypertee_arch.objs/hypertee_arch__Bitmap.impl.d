lib/arch/bitmap.ml: Bytes Char Hypertee_util Phys_mem
