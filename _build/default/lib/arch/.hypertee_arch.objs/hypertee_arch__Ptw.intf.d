lib/arch/ptw.mli: Bitmap Page_table Tlb
