lib/arch/pte.mli: Format
