lib/arch/perf_model.ml: Config
