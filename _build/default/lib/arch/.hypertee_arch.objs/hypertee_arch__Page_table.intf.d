lib/arch/page_table.mli: Phys_mem Pte
