let entries_per_node = 512
let levels = 3
let vpn_limit = entries_per_node * entries_per_node * entries_per_node

type t = {
  mem : Phys_mem.t;
  node_owner : Phys_mem.owner;
  alloc : unit -> int;
  root : int;
  mutable nodes : int list; (* all node frames, root included *)
}

let default_alloc mem () =
  match Phys_mem.find_free mem ~n:1 with
  | Some [ f ] -> f
  | Some _ | None -> failwith "out of memory"

let alloc_node mem alloc owner =
  let f = alloc () in
  Phys_mem.set_owner mem f owner;
  Phys_mem.zero mem ~frame:f;
  f

let create mem ~node_owner ~alloc =
  let root = alloc_node mem alloc node_owner in
  { mem; node_owner; alloc; root; nodes = [ root ] }

let root_frame t = t.root
let node_frames t = t.nodes

let index_at ~vpn level =
  (* level 0 is the root stride (most significant 9 bits). *)
  (vpn lsr (9 * (levels - 1 - level))) land (entries_per_node - 1)

let check_vpn vpn =
  if vpn < 0 || vpn >= vpn_limit then invalid_arg "Page_table: vpn out of range"

let read_entry t node idx = Pte.decode (Phys_mem.read_u64 t.mem ~frame:node ~off:(8 * idx))

let write_entry t node idx pte =
  Phys_mem.write_u64 t.mem ~frame:node ~off:(8 * idx) (Pte.encode pte)

let map t ~vpn pte =
  check_vpn vpn;
  let rec go node level =
    let idx = index_at ~vpn level in
    if level = levels - 1 then write_entry t node idx pte
    else begin
      let entry = read_entry t node idx in
      let child =
        if entry.Pte.valid && not (Pte.is_leaf entry) then entry.Pte.ppn
        else begin
          let f = alloc_node t.mem t.alloc t.node_owner in
          t.nodes <- f :: t.nodes;
          write_entry t node idx (Pte.table ~ppn:f);
          f
        end
      in
      go child (level + 1)
    end
  in
  go t.root 0

let with_leaf t ~vpn f =
  check_vpn vpn;
  let rec go node level =
    let idx = index_at ~vpn level in
    let entry = read_entry t node idx in
    if not entry.Pte.valid then ()
    else if level = levels - 1 then f node idx entry
    else if Pte.is_leaf entry then () (* no superpages in this model *)
    else go entry.Pte.ppn (level + 1)
  in
  go t.root 0

let unmap t ~vpn = with_leaf t ~vpn (fun node idx _ -> write_entry t node idx Pte.invalid)

let lookup t ~vpn =
  let result = ref None in
  with_leaf t ~vpn (fun _ _ entry -> if entry.Pte.valid then result := Some entry);
  !result

let walk_frames t ~vpn =
  check_vpn vpn;
  let rec go node level acc =
    let idx = index_at ~vpn level in
    let acc = (node, 8 * idx) :: acc in
    let entry = read_entry t node idx in
    if (not entry.Pte.valid) || level = levels - 1 || Pte.is_leaf entry then List.rev acc
    else go entry.Pte.ppn (level + 1) acc
  in
  go t.root 0 []

let update_flags t ~vpn ~accessed ~dirty =
  with_leaf t ~vpn (fun node idx entry ->
      let entry =
        {
          entry with
          Pte.accessed = entry.Pte.accessed || accessed;
          dirty = entry.Pte.dirty || dirty;
        }
      in
      write_entry t node idx entry)

let entries t =
  let acc = ref [] in
  let rec go node level prefix =
    for idx = entries_per_node - 1 downto 0 do
      let entry = read_entry t node idx in
      if entry.Pte.valid then begin
        let vpn = (prefix lsl 9) lor idx in
        if level = levels - 1 then acc := (vpn, entry) :: !acc
        else if not (Pte.is_leaf entry) then go entry.Pte.ppn (level + 1) vpn
      end
    done
  in
  go t.root 0 0;
  !acc
