(** iHub: the on-chip bridge enforcing unidirectional isolation and
    the DMA whitelist (paper Sec. III-A, V-C).

    Access rules:
    - EMS may read/write the whole CS memory space (management needs
      it) and CS I/O devices.
    - CS may never touch EMS-private frames or the mailbox internals.
    - Peripheral DMA is filtered by a whitelist of (base, size,
      permission) register pairs, configurable *only* by EMS; any DMA
      outside its window is discarded.

    [check] is the hardware filter; the CS/EMS software layers route
    every cross-boundary access through it, and attack tests assert
    the denials. *)

type initiator =
  | Cs_software  (** any CS core, any privilege *)
  | Ems  (** the EMS core(s) *)
  | Dma of int  (** peripheral DMA, channel id *)

type direction = Load | Store

type denial =
  | Ems_private_memory  (** CS touched an EMS-private frame *)
  | Outside_dma_window
  | Dma_window_readonly

type t

val create : Phys_mem.t -> t

(** [configure_dma_window t ~channel ~base_frame ~frames ~writable]
    installs/overwrites the whitelist entry for [channel]. EMS-only
    path (callers enforce). *)
val configure_dma_window :
  t -> channel:int -> base_frame:int -> frames:int -> writable:bool -> unit

(** [clear_dma_window t ~channel] removes the entry, blocking all DMA
    from that channel. *)
val clear_dma_window : t -> channel:int -> unit

(** [check t ~initiator ~direction ~frame] applies the filter. *)
val check : t -> initiator:initiator -> direction:direction -> frame:int -> (unit, denial) result

(** Denied-access counter (attack telemetry). *)
val denials : t -> int

val pp_denial : Format.formatter -> denial -> unit
