type entry = { vpn : int; pte : Pte.t; checked : bool }

type slot = { entry : entry; mutable last_use : int }

type t = {
  capacity : int;
  slots : (int, slot) Hashtbl.t; (* vpn -> slot *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Tlb.create: need at least one entry";
  { capacity = entries; slots = Hashtbl.create entries; tick = 0; hits = 0; misses = 0; flushes = 0 }

let capacity t = t.capacity

let touch t slot =
  t.tick <- t.tick + 1;
  slot.last_use <- t.tick

let lookup t ~vpn =
  match Hashtbl.find_opt t.slots vpn with
  | Some slot ->
    t.hits <- t.hits + 1;
    touch t slot;
    Some slot.entry
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun vpn slot ->
      match !victim with
      | None -> victim := Some (vpn, slot.last_use)
      | Some (_, lu) -> if slot.last_use < lu then victim := Some (vpn, slot.last_use))
    t.slots;
  match !victim with Some (vpn, _) -> Hashtbl.remove t.slots vpn | None -> ()

let insert t entry =
  (match Hashtbl.find_opt t.slots entry.vpn with
  | Some _ -> Hashtbl.remove t.slots entry.vpn
  | None -> if Hashtbl.length t.slots >= t.capacity then evict_lru t);
  t.tick <- t.tick + 1;
  Hashtbl.replace t.slots entry.vpn { entry; last_use = t.tick }

let mark_checked t ~vpn =
  match Hashtbl.find_opt t.slots vpn with
  | Some slot -> Hashtbl.replace t.slots vpn { slot with entry = { slot.entry with checked = true } }
  | None -> ()

let flush t =
  Hashtbl.reset t.slots;
  t.flushes <- t.flushes + 1

let flush_vpn t ~vpn = Hashtbl.remove t.slots vpn
let occupancy t = Hashtbl.length t.slots
let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0
