(** The iHub mailbox between CS and EMS (paper Fig. 3, Sec. III-C).

    Two bounded hardware ring queues: requests (CS -> EMS) and
    responses (EMS -> CS). Every request carries a unique request id
    minted by the mailbox; a response is bound to exactly one request
    id, and a consumer must present that id to collect it — this is
    the "a request cannot access the other response packets" rule.
    The queues are invisible to untrusted CS software; only EMCall
    (CS side) and the EMS runtime (EMS side) hold a [t].

    Payloads are opaque to the hardware, so the type is polymorphic
    in the request/response body. *)

type ('req, 'resp) t

type 'req packet = { request_id : int; sender_enclave : int option; body : 'req }

val create : ?depth:int -> unit -> ('req, 'resp) t

(** CS side (EMCall): enqueue a request. [sender_enclave] is the
    enclaveID EMCall stamps on the packet (None for host software).
    Returns the minted request id, or [Error `Full] on back-pressure. *)
val send_request : ('req, 'resp) t -> sender_enclave:int option -> 'req -> (int, [ `Full ]) result

(** EMS side: dequeue the oldest pending request. *)
val recv_request : ('req, 'resp) t -> 'req packet option

(** EMS side: post the response for [request_id]. Raises
    [Invalid_argument] if the id is unknown or already answered. *)
val send_response : ('req, 'resp) t -> request_id:int -> 'resp -> unit

(** CS side (EMCall polling): collect the response for [request_id]
    if it has arrived. Collecting with a wrong id never yields
    another request's response. *)
val poll_response : ('req, 'resp) t -> request_id:int -> 'resp option

(** Pending (sent, unconsumed) request count — used by the timing
    model for queueing, never by untrusted code. *)
val pending_requests : ('req, 'resp) t -> int

val pending_responses : ('req, 'resp) t -> int

(** Ids issued so far (tests). *)
val issued : ('req, 'resp) t -> int
