type report = {
  cs_cores : int;
  cs_area_mm2 : float;
  ems_cores : int;
  ems_kind : Config.ems_kind;
  ems_area_mm2 : float;
  overhead_pct : float;
}

(* Table V anchors for CS area at 7 nm; intermediate core counts are
   linearly interpolated on the per-core slope. *)
let cs_anchors = [ (4, 35.0); (8, 74.0); (16, 151.0); (32, 304.0); (64, 612.0) ]

let cs_core_area_mm2 = 9.625 (* slope of the anchor series *)

let cs_area ~cs_cores =
  match List.assoc_opt cs_cores cs_anchors with
  | Some a -> a
  | None ->
    (* slope-intercept fit through the anchors *)
    (cs_core_area_mm2 *. float_of_int cs_cores) -. 3.5

let crypto_engine_area_mm2 = 0.20

(* Core-only areas derived from Table V: 1 weak + engine = 0.34;
   2 weak + engine = 0.51 (=> weak in a dual arrangement shares some
   uncore, we keep the published totals exact below); 2 medium +
   engine = 1.5. *)
let ems_core_area_mm2 = function
  | Config.Weak -> 0.14
  | Config.Medium -> 0.65
  | Config.Strong -> 1.30

(* Published EMS totals for the recommended configurations. *)
let ems_total_published ~ems_cores ~ems_kind =
  match (ems_cores, ems_kind) with
  | 1, Config.Weak -> Some 0.34
  | 2, Config.Weak -> Some 0.51
  | 2, Config.Medium -> Some 1.5
  | _ -> None

let ems_area ~ems_cores ~ems_kind =
  match ems_total_published ~ems_cores ~ems_kind with
  | Some a -> a
  | None -> crypto_engine_area_mm2 +. (float_of_int ems_cores *. ems_core_area_mm2 ems_kind)

let evaluate_with ~cs_cores ~ems_cores ~ems_kind =
  let cs_area_mm2 = cs_area ~cs_cores in
  let ems_area_mm2 = ems_area ~ems_cores ~ems_kind in
  {
    cs_cores;
    cs_area_mm2;
    ems_cores;
    ems_kind;
    ems_area_mm2;
    overhead_pct = ems_area_mm2 /. cs_area_mm2 *. 100.0;
  }

let evaluate ~cs_cores =
  let ems_cores, ems_kind = Config.recommended_ems ~cs_cores in
  evaluate_with ~cs_cores ~ems_cores ~ems_kind

let table_v () = List.map (fun (n, _) -> evaluate ~cs_cores:n) cs_anchors
