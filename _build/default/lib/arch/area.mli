(** ASIC area model (paper Table V, TSMC 7 nm).

    Table V is an accounting identity: CS area scales with core count
    from fitted per-core anchors, EMS area is the chosen EMS cores
    plus fixed HyperTEE-IP overhead (crypto engine 0.20 mm^2,
    mailbox/iHub logic, private SRAM). The model reproduces the
    paper's anchors exactly at the published configurations and
    interpolates elsewhere. *)

type report = {
  cs_cores : int;
  cs_area_mm2 : float;
  ems_cores : int;
  ems_kind : Config.ems_kind;
  ems_area_mm2 : float;
  overhead_pct : float;  (** EMS area / (CS + EMS) *)
}

(** Per-core areas (mm^2) used by the model. *)
val cs_core_area_mm2 : float

val ems_core_area_mm2 : Config.ems_kind -> float

(** Crypto engine block (Sec. VII-E). *)
val crypto_engine_area_mm2 : float

(** [evaluate ~cs_cores] picks the recommended EMS configuration for
    that core count (Sec. VII-B) and reports areas. *)
val evaluate : cs_cores:int -> report

(** [evaluate_with ~cs_cores ~ems_cores ~ems_kind] for explicit EMS
    choices. *)
val evaluate_with : cs_cores:int -> ems_cores:int -> ems_kind:Config.ems_kind -> report

(** The five Table V columns (4, 8, 16, 32, 64 CS cores). *)
val table_v : unit -> report list
