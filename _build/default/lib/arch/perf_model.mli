(** Analytic core-timing model.

    Converts a workload's dynamic characteristics (instruction count,
    memory-reference density, per-level miss densities) into cycles
    on a given core configuration. This is the substitution for the
    paper's FPGA measurement: the evaluation's numbers are all ratios
    of such times under different security mechanisms, which depend
    on the *densities* (misses per kilo-instruction), not on RTL
    detail.

    Model: cycles = instructions / base_ipc
                  + sum over levels (misses * penalty * overlap)
                  + tlb_misses * (walk + optional bitmap retrieve)
    where [overlap] discounts memory stalls on out-of-order cores
    (MLP hides part of the latency). *)

type mem_behavior = {
  mem_refs_per_kinst : float;  (** loads+stores per 1000 instructions *)
  l1_mpki : float;  (** L1D misses per kinst *)
  l2_mpki : float;  (** L2 misses per kinst *)
  llc_mpki : float;  (** off-chip accesses per kinst *)
  tlb_mpki : float;  (** d-TLB misses per kinst *)
}

(** Knobs the security mechanisms toggle (scenario names of
    Sec. VII-A: Native / M_encrypt / Bitmap). *)
type scenario = {
  memory_encryption : bool;  (** adds engine latency to off-chip accesses *)
  bitmap_checking : bool;  (** adds bitmap retrieval to TLB-miss walks *)
  extra_tlb_flushes_per_sec : float;  (** Fig. 11: flushes from bitmap updates *)
}

val native : scenario
val m_encrypt : scenario
val bitmap : scenario

type result = {
  cycles : float;
  time_ns : float;
  base_cycles : float;  (** pipeline-only component *)
  stall_cycles : float;  (** memory + TLB component *)
}

(** [run core latency ~instructions ~behavior ~scenario] computes the
    execution time of a straight-line region on [core]. TLB-flush
    costs are added from [extra_tlb_flushes_per_sec] by a fixed-point
    iteration (flush count depends on runtime). *)
val run :
  Config.core ->
  Config.mem_latency ->
  instructions:float ->
  behavior:mem_behavior ->
  scenario:scenario ->
  result

(** Cost of refilling the TLB after one flush: the average number of
    extra walks a flush induces, in cycles (used by Fig. 11). *)
val tlb_refill_cycles : Config.core -> Config.mem_latency -> float
