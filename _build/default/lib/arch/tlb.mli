(** TLB model with the HyperTEE "checked" bit (Fig. 5).

    Fully associative with true-LRU replacement (small structure, so
    LRU is what hardware ships). Each entry caches a translation and
    whether the bitmap check has already passed for it; a hit on a
    checked entry skips the bitmap lookup entirely, which is why the
    paper's overhead concentrates in TLB-miss-heavy workloads
    (xalancbmk, Fig. 10). EMCall flushes on enclave context switches
    and bitmap updates. *)

type t

type entry = { vpn : int; pte : Pte.t; checked : bool }

val create : entries:int -> t

val capacity : t -> int

(** [lookup t ~vpn] is a hit (refreshes recency) or a miss. *)
val lookup : t -> vpn:int -> entry option

(** [insert t entry] fills the TLB, evicting LRU if full. *)
val insert : t -> entry -> unit

(** [mark_checked t ~vpn] sets the checked bit on a resident entry. *)
val mark_checked : t -> vpn:int -> unit

(** [flush t] clears everything (context switch). *)
val flush : t -> unit

(** [flush_vpn t ~vpn] targeted invalidation (bitmap change on one
    page). *)
val flush_vpn : t -> vpn:int -> unit

val occupancy : t -> int

(** Hit/miss counters since creation or [reset_counters]. *)
val hits : t -> int

val misses : t -> int
val flushes : t -> int
val reset_counters : t -> unit
