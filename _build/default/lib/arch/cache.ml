type line = { mutable tag : int; mutable valid : bool; mutable last_use : int }

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  lines : line array array; (* [set].[way] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~ways ~line_bytes =
  if size_bytes <= 0 || ways <= 0 || line_bytes <= 0 then invalid_arg "Cache.create: bad geometry";
  let lines_total = size_bytes / line_bytes in
  if lines_total mod ways <> 0 then invalid_arg "Cache.create: size not divisible by ways";
  let sets = lines_total / ways in
  {
    sets;
    ways;
    line_bytes;
    lines = Array.init sets (fun _ -> Array.init ways (fun _ -> { tag = 0; valid = false; last_use = 0 }));
    tick = 0;
    hits = 0;
    misses = 0;
  }

let sets t = t.sets
let ways t = t.ways
let line_bytes t = t.line_bytes

let locate t addr =
  let line_addr = addr / t.line_bytes in
  (line_addr mod t.sets, line_addr / t.sets)

let probe t ~addr =
  let set, tag = locate t addr in
  Array.exists (fun l -> l.valid && l.tag = tag) t.lines.(set)

let access t ~addr =
  let set, tag = locate t addr in
  t.tick <- t.tick + 1;
  let row = t.lines.(set) in
  let hit = ref false in
  Array.iter
    (fun l ->
      if l.valid && l.tag = tag then begin
        hit := true;
        l.last_use <- t.tick
      end)
    row;
  if !hit then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Fill: pick an invalid way, else LRU. *)
    let victim = ref row.(0) in
    Array.iter
      (fun l ->
        if not l.valid then victim := l
        else if !victim.valid && l.last_use < !victim.last_use then victim := l)
      row;
    !victim.tag <- tag;
    !victim.valid <- true;
    !victim.last_use <- t.tick;
    false
  end

let invalidate_all t =
  Array.iter (fun row -> Array.iter (fun l -> l.valid <- false) row) t.lines

let hits t = t.hits
let misses t = t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
