type initiator = Cs_software | Ems | Dma of int
type direction = Load | Store
type denial = Ems_private_memory | Outside_dma_window | Dma_window_readonly

type window = { base_frame : int; frames : int; writable : bool }

type t = {
  mem : Phys_mem.t;
  dma_windows : (int, window) Hashtbl.t;
  mutable denials : int;
}

let create mem = { mem; dma_windows = Hashtbl.create 8; denials = 0 }

let configure_dma_window t ~channel ~base_frame ~frames ~writable =
  if base_frame < 0 || frames <= 0 || base_frame + frames > Phys_mem.frames t.mem then
    invalid_arg "Ihub.configure_dma_window: region out of range";
  Hashtbl.replace t.dma_windows channel { base_frame; frames; writable }

let clear_dma_window t ~channel = Hashtbl.remove t.dma_windows channel

let deny t reason =
  t.denials <- t.denials + 1;
  Error reason

let check t ~initiator ~direction ~frame =
  match initiator with
  | Ems -> Ok () (* unidirectional: EMS sees everything *)
  | Cs_software -> (
    match Phys_mem.owner t.mem frame with
    | Phys_mem.Ems_private -> deny t Ems_private_memory
    | Phys_mem.Free | Phys_mem.Cs_os | Phys_mem.Pool | Phys_mem.Enclave _ | Phys_mem.Shared _
    | Phys_mem.Page_table _ | Phys_mem.Bitmap_region ->
      (* Enclave/bitmap frames are filtered by the PTW bitmap check,
         not by iHub; iHub only hides the EMS address space. *)
      Ok ())
  | Dma channel -> (
    match Hashtbl.find_opt t.dma_windows channel with
    | None -> deny t Outside_dma_window
    | Some w ->
      if frame < w.base_frame || frame >= w.base_frame + w.frames then
        deny t Outside_dma_window
      else if direction = Store && not w.writable then deny t Dma_window_readonly
      else Ok ())

let denials t = t.denials

let pp_denial fmt = function
  | Ems_private_memory -> Format.pp_print_string fmt "ems-private-memory"
  | Outside_dma_window -> Format.pp_print_string fmt "outside-dma-window"
  | Dma_window_readonly -> Format.pp_print_string fmt "dma-window-readonly"
