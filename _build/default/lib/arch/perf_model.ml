type mem_behavior = {
  mem_refs_per_kinst : float;
  l1_mpki : float;
  l2_mpki : float;
  llc_mpki : float;
  tlb_mpki : float;
}

type scenario = {
  memory_encryption : bool;
  bitmap_checking : bool;
  extra_tlb_flushes_per_sec : float;
}

let native = { memory_encryption = false; bitmap_checking = false; extra_tlb_flushes_per_sec = 0.0 }
let m_encrypt = { native with memory_encryption = true }
let bitmap = { native with bitmap_checking = true }

type result = { cycles : float; time_ns : float; base_cycles : float; stall_cycles : float }

(* Out-of-order cores overlap a fraction of each miss's latency with
   useful work (memory-level parallelism); in-order cores stall for
   the full latency. *)
let overlap_factor (core : Config.core) =
  match core.Config.pipeline with Config.Out_of_order -> 0.45 | Config.In_order -> 1.0

let tlb_walk_cycles (_core : Config.core) = float_of_int (3 * Config.ptw_level_cycles)

let tlb_refill_cycles (core : Config.core) (lat : Config.mem_latency) =
  (* After a flush, roughly the working set of resident entries must
     be re-walked. Charge half the TLB capacity (not all entries were
     live) at walk cost plus one L2-class access for the PTE line. *)
  let live = float_of_int (core.Config.dtlb_entries + core.Config.itlb_entries) /. 2.0 in
  live *. (tlb_walk_cycles core +. float_of_int lat.Config.l2_hit)

let stall_per_kinst core lat behavior scenario =
  let ov = overlap_factor core in
  let l1_pen = float_of_int (lat.Config.l2_hit - lat.Config.l1_hit) in
  let l2_pen = float_of_int (lat.Config.llc_hit - lat.Config.l2_hit) in
  let off_chip_pen =
    float_of_int lat.Config.dram
    +.
    if scenario.memory_encryption then
      float_of_int (lat.Config.encryption_extra + lat.Config.integrity_extra)
    else 0.0
  in
  let mem_stalls =
    (behavior.l1_mpki *. l1_pen *. ov)
    +. (behavior.l2_mpki *. l2_pen *. ov)
    +. (behavior.llc_mpki *. off_chip_pen *. ov)
  in
  let tlb_stalls =
    behavior.tlb_mpki
    *. (tlb_walk_cycles core
       +. if scenario.bitmap_checking then Config.bitmap_retrieve_avg_cycles else 0.0)
  in
  mem_stalls +. tlb_stalls

let run core lat ~instructions ~behavior ~scenario =
  let base_cycles = instructions /. core.Config.base_ipc in
  let stall_cycles = instructions /. 1000.0 *. stall_per_kinst core lat behavior scenario in
  let raw_cycles = base_cycles +. stall_cycles in
  (* TLB flushes per second depend on the runtime, which depends on
     the flush cost; one fixed-point refinement is ample at these
     magnitudes. *)
  let flush_cost_total =
    if scenario.extra_tlb_flushes_per_sec <= 0.0 then 0.0
    else begin
      let refill = tlb_refill_cycles core lat in
      let time_s cycles = cycles /. (core.Config.clock_ghz *. 1e9) in
      let flushes = scenario.extra_tlb_flushes_per_sec *. time_s raw_cycles in
      let once = flushes *. refill in
      let flushes' = scenario.extra_tlb_flushes_per_sec *. time_s (raw_cycles +. once) in
      flushes' *. refill
    end
  in
  let cycles = raw_cycles +. flush_cost_total in
  {
    cycles;
    time_ns = cycles /. core.Config.clock_ghz;
    base_cycles;
    stall_cycles = stall_cycles +. flush_cost_total;
  }
