type access = Read | Write | Execute
type fault = Page_fault | Permission_fault | Bitmap_fault

type outcome = {
  frame : int;
  key_id : int;
  tlb_hit : bool;
  walked_levels : int;
  bitmap_checked : bool;
  cycles : int;
}

type t = {
  tlb : Tlb.t;
  bitmap : Bitmap.t;
  mutable is_enclave : bool;
  mutable bitmap_lookups : int;
  mutable bitmap_faults : int;
}

let create tlb ~bitmap =
  { tlb; bitmap; is_enclave = false; bitmap_lookups = 0; bitmap_faults = 0 }

let set_enclave_mode t mode =
  if t.is_enclave <> mode then Tlb.flush t.tlb;
  t.is_enclave <- mode

let enclave_mode t = t.is_enclave
let tlb t = t.tlb
let bitmap_lookups t = t.bitmap_lookups
let bitmap_faults t = t.bitmap_faults

let permits (pte : Pte.t) access =
  match access with
  | Read -> pte.Pte.readable
  | Write -> pte.Pte.writable
  | Execute -> pte.Pte.executable

let translate t ~table ~vpn ~access =
  match Tlb.lookup t.tlb ~vpn with
  | Some entry when entry.Tlb.checked || t.is_enclave ->
    if permits entry.Tlb.pte access then
      Ok
        {
          frame = entry.Tlb.pte.Pte.ppn;
          key_id = entry.Tlb.pte.Pte.key_id;
          tlb_hit = true;
          walked_levels = 0;
          bitmap_checked = false;
          cycles = 0;
        }
    else Error Permission_fault
  | Some _ | None -> (
    (* Hardware walk. Unchecked resident entries are conservatively
       re-walked; in practice EMCall's flush discipline means resident
       entries are always checked, so this path is cold. *)
    let walk = Page_table.walk_frames table ~vpn in
    let levels = List.length walk in
    let walk_cycles = levels * Config.ptw_level_cycles in
    match Page_table.lookup table ~vpn with
    | None -> Error Page_fault
    | Some pte ->
      if not (permits pte access) then Error Permission_fault
      else begin
        (* Fig. 5: translated PPN indexes the bitmap. Enclave-mode
           accesses skip the check (their page table is EMS-private). *)
        let bitmap_checked = not t.is_enclave in
        let fault =
          if bitmap_checked then begin
            t.bitmap_lookups <- t.bitmap_lookups + 1;
            Bitmap.get t.bitmap ~frame:pte.Pte.ppn
          end
          else false
        in
        if fault then begin
          t.bitmap_faults <- t.bitmap_faults + 1;
          Error Bitmap_fault
        end
        else begin
          Page_table.update_flags table ~vpn ~accessed:true ~dirty:(access = Write);
          Tlb.insert t.tlb { Tlb.vpn; pte; checked = true };
          let cycles =
            walk_cycles + if bitmap_checked then Config.bitmap_check_cycles else 0
          in
          Ok
            {
              frame = pte.Pte.ppn;
              key_id = pte.Pte.key_id;
              tlb_hit = false;
              walked_levels = levels;
              bitmap_checked;
              cycles;
            }
        end
      end)
