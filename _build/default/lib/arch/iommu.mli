(** IOMMU model with EMS-managed translation tables (paper Sec. V-B
    and the GPU discussion in Sec. IX).

    Peripherals that address memory through an IOMMU get a per-device
    translation table mapping I/O virtual pages to physical frames
    with a permission, plus an IOTLB that caches translations. Only
    EMS configures the tables and invalidates the IOTLB — the
    register interface is reachable solely through iHub, so untrusted
    software cannot remap a device onto enclave memory. An unmapped
    or permission-violating access is reported (and counted) exactly
    like a discarded DMA. *)

type access = Dma_read | Dma_write

type fault = Unmapped | Write_to_readonly

type t

val create : unit -> t

(** EMS-only configuration path. [map] installs/overwrites one I/O
    page translation for [device]. [key_id] (default 0 = plaintext)
    is the memory-encryption KeyID the device's accesses carry on the
    bus, so DMA into encrypted shared enclave memory decrypts
    transparently — the key itself never leaves the engine. *)
val map : t -> device:int -> io_vpn:int -> frame:int -> writable:bool -> ?key_id:int -> unit -> unit

(** [unmap] removes a translation and invalidates matching IOTLB
    entries (the paper's IOTLB invalidation duty). *)
val unmap : t -> device:int -> io_vpn:int -> unit

(** [clear_device t ~device] removes every mapping of the device
    (enclave teardown). *)
val clear_device : t -> device:int -> unit

type translation = { frame : int; key_id : int }

(** [translate t ~device ~io_vpn ~access] — the hardware path used on
    every DMA beat. Fills the IOTLB on success. *)
val translate : t -> device:int -> io_vpn:int -> access:access -> (translation, fault) result

(** IOTLB behaviour counters (hit/miss) and fault count. *)
val iotlb_hits : t -> int

val iotlb_misses : t -> int
val faults : t -> int

(** Mappings currently installed for a device (tests):
    (io_vpn, frame, writable). *)
val mappings_of : t -> device:int -> (int * int * bool) list
