type t = {
  valid : bool;
  readable : bool;
  writable : bool;
  executable : bool;
  user : bool;
  global : bool;
  accessed : bool;
  dirty : bool;
  ppn : int;
  key_id : int;
}

let invalid =
  {
    valid = false;
    readable = false;
    writable = false;
    executable = false;
    user = false;
    global = false;
    accessed = false;
    dirty = false;
    ppn = 0;
    key_id = 0;
  }

let leaf ~ppn ~r ~w ~x ~key_id =
  if ppn < 0 || ppn >= 1 lsl 28 then invalid_arg "Pte.leaf: ppn out of range";
  if key_id < 0 || key_id >= 1 lsl 16 then invalid_arg "Pte.leaf: key_id out of range";
  {
    valid = true;
    readable = r;
    writable = w;
    executable = x;
    user = true;
    global = false;
    accessed = false;
    dirty = false;
    ppn;
    key_id;
  }

let table ~ppn =
  if ppn < 0 || ppn >= 1 lsl 28 then invalid_arg "Pte.table: ppn out of range";
  { invalid with valid = true; ppn }

let is_leaf t = t.readable || t.writable || t.executable

let bit b pos = if b then Int64.shift_left 1L pos else 0L

let encode t =
  let open Int64 in
  logor
    (logor
       (logor (bit t.valid 0) (logor (bit t.readable 1) (bit t.writable 2)))
       (logor (bit t.executable 3) (logor (bit t.user 4) (bit t.global 5))))
    (logor
       (logor (bit t.accessed 6) (bit t.dirty 7))
       (logor (shift_left (of_int t.ppn) 10) (shift_left (of_int t.key_id) 48)))

let decode v =
  let open Int64 in
  let flag pos = logand (shift_right_logical v pos) 1L = 1L in
  {
    valid = flag 0;
    readable = flag 1;
    writable = flag 2;
    executable = flag 3;
    user = flag 4;
    global = flag 5;
    accessed = flag 6;
    dirty = flag 7;
    ppn = to_int (logand (shift_right_logical v 10) 0xFFFFFFFL);
    key_id = to_int (logand (shift_right_logical v 48) 0xFFFFL);
  }

let pp fmt t =
  Format.fprintf fmt "pte{ppn=%d key=%d %s%s%s%s%s%s%s%s}" t.ppn t.key_id
    (if t.valid then "V" else "-")
    (if t.readable then "R" else "-")
    (if t.writable then "W" else "-")
    (if t.executable then "X" else "-")
    (if t.user then "U" else "-")
    (if t.global then "G" else "-")
    (if t.accessed then "A" else "-")
    (if t.dirty then "D" else "-")
