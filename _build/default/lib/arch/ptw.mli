(** Page-table walker with HyperTEE bitmap checking (paper Fig. 5).

    The walker owns a TLB and two HyperTEE control registers:

    - [BM_BASE]: base frame of the bitmap region;
    - [IS_ENCLAVE]: whether the core currently runs an enclave.

    Both are writable only from the highest privilege level (EMCall);
    the API takes them at construction / via privileged setters.

    Behaviour on a memory access (Fig. 5): TLB hit on a checked entry
    -> proceed. TLB miss -> hardware walk; the translated frame is
    then looked up in the bitmap. In non-enclave mode, hitting an
    enclave-owned frame raises an access exception; in enclave mode
    the bitmap check is skipped (the enclave's own private page table
    is trusted — only EMS can write it). The TLB entry is inserted
    with [checked = true] after a successful check, so repeat
    accesses pay nothing. *)

type access = Read | Write | Execute

type fault =
  | Page_fault  (** no valid mapping — EMS handles these in HyperTEE *)
  | Permission_fault  (** mapped but R/W/X disallow the access *)
  | Bitmap_fault  (** non-enclave access touched enclave memory *)

type outcome = {
  frame : int;  (** translated physical frame *)
  key_id : int;  (** KeyID from the PTE, rides the bus *)
  tlb_hit : bool;
  walked_levels : int;  (** 0 on TLB hit *)
  bitmap_checked : bool;  (** a bitmap lookup was performed *)
  cycles : int;  (** timing charge for translation only *)
}

type t

val create : Tlb.t -> bitmap:Bitmap.t -> t

(** Privileged register updates (EMCall only — the caller enforces
    that). Switching page tables or enclave mode flushes the TLB. *)
val set_enclave_mode : t -> bool -> unit

val enclave_mode : t -> bool

(** [translate t ~table ~vpn ~access] performs the full Fig. 5 flow
    against the given page table (the satp the core currently uses).
    Updates PTE A/D bits on success like a hardware walker. *)
val translate : t -> table:Page_table.t -> vpn:int -> access:access -> (outcome, fault) result

val tlb : t -> Tlb.t

(** Count of bitmap lookups performed (Fig. 10 denominator). *)
val bitmap_lookups : t -> int

(** Count of bitmap faults raised (attack detection). *)
val bitmap_faults : t -> int
