(** Set-associative cache model (LRU).

    Used for line-level simulation where the paper's numbers depend
    on actual reuse behaviour (MemStream in Fig. 8b) and by the
    per-core cache-hierarchy model. Addresses are byte addresses;
    geometry is (size, associativity, line size). *)

type t

val create : size_bytes:int -> ways:int -> line_bytes:int -> t

val sets : t -> int
val ways : t -> int
val line_bytes : t -> int

(** [access t ~addr] returns [true] on hit; a miss fills the line
    (allocate-on-miss, LRU victim). *)
val access : t -> addr:int -> bool

(** [probe t ~addr] checks residency without updating LRU. *)
val probe : t -> addr:int -> bool

(** [invalidate_all t] empties the cache (enclave KeyID release does
    a cache flush per Sec. IV-C). *)
val invalidate_all : t -> unit

val hits : t -> int
val misses : t -> int
val reset_counters : t -> unit
