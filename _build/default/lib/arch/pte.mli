(** Page-table entry encoding.

    Sv39-style 64-bit leaf entries, with the HyperTEE extension from
    Sec. IV-C: the memory-encryption KeyID rides in the high bits of
    the PTE (the paper's front-side bus carries a 40-bit physical
    address and a 16-bit KeyID). Layout used here:

    bits 0..7   flags (V R W X U G A D)
    bits 10..37 physical page number (28 bits)
    bits 48..63 KeyID
*)

type t = {
  valid : bool;
  readable : bool;
  writable : bool;
  executable : bool;
  user : bool;
  global : bool;
  accessed : bool;
  dirty : bool;
  ppn : int;
  key_id : int;
}

(** All-flags-false, ppn 0, key 0 — an invalid entry. *)
val invalid : t

(** [leaf ~ppn ~r ~w ~x ~key_id] a valid user leaf. *)
val leaf : ppn:int -> r:bool -> w:bool -> x:bool -> key_id:int -> t

(** [table ~ppn] a valid non-leaf pointer (R=W=X=0). *)
val table : ppn:int -> t

val is_leaf : t -> bool

(** 64-bit wire encoding / decoding, the exact bits stored in page
    table frames. *)
val encode : t -> int64

val decode : int64 -> t

val pp : Format.formatter -> t -> unit
