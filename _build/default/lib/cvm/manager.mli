(** VM-level TEE extension (paper Sec. IX, "Support for VM-level
    TEEs").

    The paper argues HyperTEE naturally extends from application
    enclaves to confidential VMs: EMS performs CVM memory management,
    isolation and encryption; snapshots are protected by AES
    encryption plus a Merkle tree whose root hash and key live in EMS
    private memory; migration runs remote attestation between the
    source and destination platforms, moves the key material over the
    resulting encrypted channel, and ships only ciphertext.

    This module implements exactly that on top of the platform: CVM
    control structures are EMS state, guest frames come from the
    enclave memory pool (bitmap-marked, so the untrusted hypervisor
    cannot touch them), and each CVM gets its own memory-encryption
    KeyID. *)

type cvm_id = int

type state = Running | Suspended | Destroyed

type t
(** One platform's CVM manager (lives on that platform's EMS). *)

val create : Hypertee.Platform.t -> t

val platform : t -> Hypertee.Platform.t

(** [launch t ~vcpus ~memory_pages ~image] creates a CVM, pulls
    [memory_pages] frames from the EMS pool, programs a dedicated
    memory key, loads [image] into guest-physical page 0 onward and
    measures it. *)
val launch :
  t -> vcpus:int -> memory_pages:int -> image:bytes -> (cvm_id, string) result

val state : t -> cvm_id -> state option
val measurement : t -> cvm_id -> bytes option
val memory_pages : t -> cvm_id -> int

(** Guest-physical memory access (through the encryption engine, as a
    vCPU would see it). [gpa] is a byte address. *)
val guest_read : t -> cvm_id -> gpa:int -> len:int -> (bytes, string) result

val guest_write : t -> cvm_id -> gpa:int -> bytes -> (unit, string) result

val suspend : t -> cvm_id -> (unit, string) result
val resume : t -> cvm_id -> (unit, string) result

(** [destroy t id] scrubs and returns every frame to the pool and
    revokes the KeyID. *)
val destroy : t -> cvm_id -> (unit, string) result

(** A snapshot as it leaves the platform: encrypted pages only. The
    AES snapshot key and the Merkle root remain in EMS ([t]) — the
    untrusted host storing this blob learns nothing and cannot
    tamper undetected. *)
type snapshot = { cvm : cvm_id; encrypted_pages : bytes array; vcpus : int }

(** [snapshot t id] — suspend-and-copy. The CVM keeps running state
    and can be snapshotted repeatedly. *)
val snapshot : t -> cvm_id -> (snapshot, string) result

(** [restore t snap] — rebuilds a CVM from [snap] on the same
    platform, verifying every page against the retained Merkle root.
    A tampered page is reported and nothing is restored. *)
val restore : t -> snapshot -> (cvm_id, string) result

(** [migrate ~src ~dst id] — full migration flow: mutual platform
    attestation (EK-signed platform measurements), DH channel, key +
    root-hash transfer inside the channel, encrypted page transfer,
    verified restore on [dst], source destroyed. Returns the CVM's id
    on the destination. *)
val migrate :
  src:t -> dst:t -> rng:Hypertee_util.Xrng.t -> cvm_id -> (cvm_id, string) result

(** Telemetry: snapshots taken / restores verified / verification
    failures (tamper attempts). *)
val tamper_detections : t -> int
