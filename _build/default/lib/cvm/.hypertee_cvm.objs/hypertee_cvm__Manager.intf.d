lib/cvm/manager.mli: Hypertee Hypertee_util
