lib/cvm/manager.ml: Array Buffer Bytes Hashtbl Hypertee Hypertee_arch Hypertee_crypto Hypertee_ems Hypertee_util Option Result Stdlib
