type job = {
  arrival : float;
  service_ns : float;
  on_done : queued_ns:float -> total_ns:float -> unit;
}

type t = {
  engine : Engine.t;
  servers : int;
  mutable busy : int;
  waiting : job Queue.t;
  mutable completed : int;
}

let create engine ~servers =
  if servers < 1 then invalid_arg "Resource.create: need at least one server";
  { engine; servers; busy = 0; waiting = Queue.create (); completed = 0 }

let rec start t job =
  t.busy <- t.busy + 1;
  let started = Engine.now t.engine in
  Engine.after t.engine ~delay:job.service_ns (fun _ ->
      t.busy <- t.busy - 1;
      t.completed <- t.completed + 1;
      let finished = Engine.now t.engine in
      job.on_done ~queued_ns:(started -. job.arrival) ~total_ns:(finished -. job.arrival);
      dispatch t)

and dispatch t =
  if t.busy < t.servers && not (Queue.is_empty t.waiting) then start t (Queue.pop t.waiting)

let submit t ~service_ns ~on_done =
  let job = { arrival = Engine.now t.engine; service_ns; on_done } in
  if t.busy < t.servers then start t job else Queue.push job t.waiting

let queue_length t = Queue.length t.waiting
let busy t = t.busy
let completed t = t.completed
