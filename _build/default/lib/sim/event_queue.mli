(** Priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion order so simulations are
    deterministic regardless of heap internals. *)

type 'a t

val create : unit -> 'a t

(** [push q ~time x] schedules [x] at [time]. *)
val push : 'a t -> time:float -> 'a -> unit

(** Earliest event (and its time); [None] when empty. *)
val pop : 'a t -> (float * 'a) option

val peek_time : 'a t -> float option
val length : 'a t -> int
val is_empty : 'a t -> bool
