type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable dummy : 'a entry option; (* filler for array growth *)
}

let create () = { heap = [||]; len = 0; next_seq = 0; dummy = None }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let bigger = Array.make (Stdlib.max 16 (2 * cap)) entry in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  (match t.dummy with None -> t.dummy <- Some entry | Some _ -> ());
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
let length t = t.len
let is_empty t = t.len = 0
