lib/sim/engine.mli:
