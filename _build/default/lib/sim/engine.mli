(** Discrete-event simulation engine.

    Time is in nanoseconds (float). Handlers scheduled with [at] or
    [after] run when the clock reaches their timestamp; a handler may
    schedule further events. Used by the Fig. 6 concurrent-primitive
    queueing experiment and the mailbox transport model. *)

type t

val create : unit -> t

(** Current simulated time (ns). *)
val now : t -> float

(** [at t ~time f] schedules [f] at absolute [time] (>= now). *)
val at : t -> time:float -> (t -> unit) -> unit

(** [after t ~delay f] schedules [f] at [now + delay]. *)
val after : t -> delay:float -> (t -> unit) -> unit

(** Run until no events remain or [until] (if given) is passed.
    Returns the final time. *)
val run : ?until:float -> t -> float

(** Number of events processed so far. *)
val processed : t -> int
