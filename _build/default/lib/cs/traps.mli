(** Interrupt/exception routing during enclave execution (paper
    Sec. III-B, "Secure handling of exception/interrupt in
    enclaves").

    Any trap taken while an enclave runs lands in EMCall first, which
    records the cause and program counter and then routes it:
    memory-management exceptions (page faults, misaligned accesses)
    go to EMS; everything else (timer, illegal instruction, external
    interrupts) goes to the CS OS — but only after EMCall has saved
    the enclave context via EMS and atomically switched the CS
    registers out of enclave mode, so the untrusted handler never
    sees enclave state. *)

type cause =
  | Timer_interrupt
  | External_interrupt
  | Illegal_instruction
  | Enclave_page_fault of { vpn : int }
  | Misaligned_access of { va : int }
  | Ecall  (** environment call out of the enclave *)

type route = To_ems | To_cs_os

(** The paper's routing policy: memory management to EMS, the rest to
    the CS OS. *)
val route_of_cause : cause -> route

val cause_code : cause -> int
val cause_name : cause -> string

(** Outcome of delivering a trap to a running enclave. *)
type outcome =
  | Resolved  (** EMS handled it (e.g. demand paging); enclave continues *)
  | Suspended_to_os  (** context saved, enclave Interrupted, CS OS runs *)
  | Fault of string  (** the trap could not be handled *)

type t

(** [create emcall] — the trap dispatcher bound to a gate. *)
val create : Emcall.t -> t

(** [deliver t ~enclave ~pc cause] — the EMCall trap entry point:
    record (cause, pc), route, and for OS-routed traps save the
    enclave context in EMS (state becomes Interrupted) and flush the
    TLB for the world switch. *)
val deliver : t -> enclave:Hypertee_ems.Types.enclave_id -> pc:int -> cause -> outcome

(** Traps routed to each side so far. *)
val routed_to_ems : t -> int

val routed_to_cs : t -> int

(** The last recorded (cause code, pc) — what EMCall logs before
    routing. *)
val last_recorded : t -> (int * int) option
