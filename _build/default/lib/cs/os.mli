(** Untrusted CS operating-system model.

    Owns the physical free list, process page tables, and the
    scheduler tick. Everything here is *outside* the TCB: the attack
    tests drive this module in "malicious" mode to mount
    controlled-channel probes, and the defense tests check that what
    it can observe about enclaves is only the coarse, batched pool
    traffic. *)

type process = {
  pid : int;
  page_table : Hypertee_arch.Page_table.t;
  mutable mapped_pages : int;
  mutable brk_vpn : int;  (** next heap vpn for [malloc_pages] *)
}

type t

val create : Hypertee_arch.Phys_mem.t -> t

val mem : t -> Hypertee_arch.Phys_mem.t

(** Frame allocation from the OS free list ([Cs_os] ownership).
    Returns fewer than [n] when memory is tight. *)
val alloc_frames : t -> n:int -> int list

(** Return frames to the free list. *)
val free_frames : t -> frames:int list -> unit

(** Number of times EMS asked this OS for pool refills — the *only*
    allocation signal a malicious OS observes (Sec. IV-A). *)
val ems_refill_requests : t -> int

(** Hooks to hand to [Hypertee_ems.Mem_pool]. *)
val pool_request : t -> n:int -> int list

val pool_return : t -> frames:int list -> unit

(** [spawn t] creates a process with an empty page table. *)
val spawn : t -> process

(** [malloc_pages t p ~pages] extends [p]'s heap: allocates frames,
    maps them read-write. Returns the base vpn, or [None] when out of
    memory. This is the non-enclave [malloc] of Fig. 8a. *)
val malloc_pages : t -> process -> pages:int -> int option

(** [free_pages t p ~vpn ~pages] unmaps and releases. *)
val free_pages : t -> process -> vpn:int -> pages:int -> unit

(** Free-frame count (telemetry). *)
val free_count : t -> int

val processes : t -> process list
