lib/cs/os.mli: Hypertee_arch
