lib/cs/emcall.mli: Hypertee_arch Hypertee_ems Hypertee_util
