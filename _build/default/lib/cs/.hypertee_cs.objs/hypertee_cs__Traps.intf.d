lib/cs/traps.mli: Emcall Hypertee_ems
