lib/cs/emcall.ml: Float Hypertee_arch Hypertee_ems Hypertee_util List
