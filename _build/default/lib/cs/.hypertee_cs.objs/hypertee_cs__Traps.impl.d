lib/cs/traps.ml: Emcall Hypertee_ems
