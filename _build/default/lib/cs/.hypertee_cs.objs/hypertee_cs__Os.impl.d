lib/cs/os.ml: Hypertee_arch List
