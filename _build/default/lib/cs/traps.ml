module Types = Hypertee_ems.Types

type cause =
  | Timer_interrupt
  | External_interrupt
  | Illegal_instruction
  | Enclave_page_fault of { vpn : int }
  | Misaligned_access of { va : int }
  | Ecall

type route = To_ems | To_cs_os

(* Sec. III-B: "exceptions related to memory management, such as page
   faults and misaligned memory accesses, are handled by EMS, while
   others, such as timer interrupts and illegal instructions, are
   responded by CS OS". *)
let route_of_cause = function
  | Enclave_page_fault _ | Misaligned_access _ -> To_ems
  | Timer_interrupt | External_interrupt | Illegal_instruction | Ecall -> To_cs_os

let cause_code = function
  | Timer_interrupt -> 0x8000_0007
  | External_interrupt -> 0x8000_000B
  | Illegal_instruction -> 2
  | Enclave_page_fault _ -> 13
  | Misaligned_access _ -> 4
  | Ecall -> 8

let cause_name = function
  | Timer_interrupt -> "timer interrupt"
  | External_interrupt -> "external interrupt"
  | Illegal_instruction -> "illegal instruction"
  | Enclave_page_fault _ -> "enclave page fault"
  | Misaligned_access _ -> "misaligned access"
  | Ecall -> "environment call"

type outcome = Resolved | Suspended_to_os | Fault of string

type t = {
  emcall : Emcall.t;
  mutable to_ems : int;
  mutable to_cs : int;
  mutable last_recorded : (int * int) option;
}

let create emcall = { emcall; to_ems = 0; to_cs = 0; last_recorded = None }

let deliver t ~enclave ~pc cause =
  (* EMCall records the critical information first. *)
  t.last_recorded <- Some (cause_code cause, pc);
  match route_of_cause cause with
  | To_ems -> (
    t.to_ems <- t.to_ems + 1;
    match cause with
    | Enclave_page_fault { vpn } -> (
      (* Machine-mode forwarding: bypasses the privilege gate. *)
      match Emcall.invoke t.emcall ~caller:Emcall.User_host (Types.Page_fault { enclave; vpn }) with
      | Ok (Types.Ok_alloc _) -> Resolved
      | Ok (Types.Err e) -> Fault (Types.error_message e)
      | Ok _ -> Fault "unexpected EMS response"
      | Error _ -> Fault "gate rejected a fault forward")
    | Misaligned_access _ ->
      (* EMS policy for misalignment in this model: terminate is too
         harsh, emulation is out of scope — report and park. *)
      Fault "misaligned access in enclave"
    | Timer_interrupt | External_interrupt | Illegal_instruction | Ecall ->
      Fault "routing invariant violated")
  | To_cs_os -> (
    t.to_cs <- t.to_cs + 1;
    (* World switch: EMS saves the enclave context (Interrupted);
       EMCall's gate issues the TLB flush on the context switch. *)
    match
      Emcall.invoke t.emcall ~caller:Emcall.User_host
        (Types.Interrupt { enclave; pc; cause = cause_code cause })
    with
    | Ok Types.Ok_unit ->
      Emcall.flush_tlbs t.emcall;
      Suspended_to_os
    | Ok (Types.Err e) -> Fault (Types.error_message e)
    | Ok _ -> Fault "unexpected EMS response"
    | Error _ -> Fault "gate rejected the interrupt report")

let routed_to_ems t = t.to_ems
let routed_to_cs t = t.to_cs
let last_recorded t = t.last_recorded
