(** EMCall: the trusted call gate in CS firmware (paper Sec. III-B/C).

    The only legal path from CS software to EMS. Runs at the highest
    CS privilege level, so it can:

    - check the caller's privilege mode against the primitive's
      required mode (cross-privilege invocation is blocked);
    - stamp the *hardware-known* current enclave identity on each
      request (forgery of another enclave's identity is impossible);
    - transmit over the private mailbox and poll for the response
      bound to this request id (untrusted interrupt handlers never
      touch responses);
    - perform the CS-side register updates of EENTER/ERESUME
      atomically: satp switch, IS_ENCLAVE flip, TLB flush;
    - flush TLBs when EMS reports bitmap changes.

    Timing: [last_latency_ns] exposes the modelled round-trip
    (EMCall entry + packet build + fabric hops + doorbell + EMS
    service + polling quantisation with obfuscation jitter). *)

type caller = Os_kernel | User_host | User_enclave of Hypertee_ems.Types.enclave_id

type rejection =
  | Cross_privilege  (** caller mode does not match Table II *)
  | Mailbox_full

type t

(** [create ~rng ~transport ~mailbox ~ems_service ~service_ns] wires
    the gate to a mailbox whose EMS side is drained by [ems_service]
    (the platform calls the runtime there). [service_ns] prices a
    request for the timing model. *)
val create :
  rng:Hypertee_util.Xrng.t ->
  transport:Hypertee_arch.Config.transport ->
  mailbox:(Hypertee_ems.Types.request, Hypertee_ems.Types.response) Hypertee_arch.Mailbox.t ->
  ems_service:(unit -> unit) ->
  service_ns:(Hypertee_ems.Types.request -> float) ->
  t

(** [invoke t ~caller request] runs the full gate flow and returns
    the EMS response, or a gate-level rejection before anything
    reaches EMS. *)
val invoke :
  t ->
  caller:caller ->
  Hypertee_ems.Types.request ->
  (Hypertee_ems.Types.response, rejection) result

(** Modelled round-trip time of the last successful [invoke]. *)
val last_latency_ns : t -> float

(** Transport-only part of the round trip for a request of the given
    EMS service time (used by the queueing experiment of Fig. 6). *)
val transport_ns : t -> float

(** Number of requests blocked at the gate (attack telemetry). *)
val rejected : t -> int

(** TLB flushes EMCall has issued (enclave context switches + bitmap
    updates, Fig. 11). The platform layer registers per-core flush
    callbacks. *)
val tlb_flushes : t -> int

val register_tlb_flush_hook : t -> (unit -> unit) -> unit

(** [flush_tlbs t] — invoked on enclave context switch and on bitmap
    updates (EMS responses that changed the bitmap). *)
val flush_tlbs : t -> unit
