module Types = Hypertee_ems.Types
module Mailbox = Hypertee_arch.Mailbox
module Config = Hypertee_arch.Config

type caller = Os_kernel | User_host | User_enclave of Types.enclave_id
type rejection = Cross_privilege | Mailbox_full

type t = {
  rng : Hypertee_util.Xrng.t;
  transport : Config.transport;
  mailbox : (Types.request, Types.response) Mailbox.t;
  ems_service : unit -> unit;
  service_ns : Types.request -> float;
  mutable last_latency_ns : float;
  mutable rejected : int;
  mutable tlb_flushes : int;
  mutable flush_hooks : (unit -> unit) list;
}

let create ~rng ~transport ~mailbox ~ems_service ~service_ns =
  {
    rng;
    transport;
    mailbox;
    ems_service;
    service_ns;
    last_latency_ns = 0.0;
    rejected = 0;
    tlb_flushes = 0;
    flush_hooks = [];
  }

let caller_privilege = function
  | Os_kernel -> Types.Os
  | User_host | User_enclave _ -> Types.User

let sender_of_caller = function
  | Os_kernel | User_host -> None
  | User_enclave id -> Some id

(* Does the response imply the bitmap changed? Those force a TLB
   shoot-down so stale "checked" entries cannot bypass the check. *)
let bitmap_changed request response =
  match (request, response) with
  | _, Types.Err _ -> false
  | (Types.Create _ | Types.Alloc _ | Types.Free _ | Types.Writeback _ | Types.Destroy _
    | Types.Shmget _ | Types.Shmdes _ | Types.Page_fault _), _ ->
    true
  | ( ( Types.Add _ | Types.Enter _ | Types.Resume _ | Types.Exit _ | Types.Shmat _
      | Types.Shmdt _ | Types.Shmshr _ | Types.Measure _ | Types.Attest _
      | Types.Interrupt _ ),
      _ ) ->
    false

let register_tlb_flush_hook t hook = t.flush_hooks <- hook :: t.flush_hooks

let flush_tlbs t =
  t.tlb_flushes <- t.tlb_flushes + 1;
  List.iter (fun hook -> hook ()) t.flush_hooks

let transport_ns t =
  let tr = t.transport in
  tr.Config.emcall_entry_ns +. tr.Config.packet_build_ns
  +. (2.0 *. tr.Config.fabric_hop_ns)
  +. tr.Config.interrupt_ns

let invoke t ~caller request =
  let opcode = Types.opcode_of_request request in
  let required = Types.required_privilege opcode in
  (* Page faults are forwarded by EMCall itself from trap context;
     they bypass the privilege check (machine mode). *)
  let is_fault =
    match request with Types.Page_fault _ | Types.Interrupt _ -> true | _ -> false
  in
  if (not is_fault) && caller_privilege caller <> required then begin
    t.rejected <- t.rejected + 1;
    Error Cross_privilege
  end
  else begin
    let sender = sender_of_caller caller in
    match Mailbox.send_request t.mailbox ~sender_enclave:sender request with
    | Error `Full ->
      t.rejected <- t.rejected + 1;
      Error Mailbox_full
    | Ok request_id -> (
      (* Doorbell: the EMS side drains the queue and posts responses. *)
      t.ems_service ();
      (* EMCall polls — never the untrusted interrupt path. Polling
         quantises observable latency to poll slots and adds jitter,
         the paper's obfuscation against timing side channels. *)
      match Mailbox.poll_response t.mailbox ~request_id with
      | None ->
        (* EMS service did not answer: treat as fatal platform bug. *)
        failwith "EMCall: EMS did not answer a delivered request"
      | Some response ->
        let service = t.service_ns request in
        let raw = transport_ns t +. service in
        let slot = t.transport.Config.poll_slot_ns in
        let quantised = Float.of_int (int_of_float (raw /. slot) + 1) *. slot in
        let jitter = Hypertee_util.Xrng.float t.rng *. slot in
        t.last_latency_ns <- quantised +. jitter;
        if bitmap_changed request response then flush_tlbs t;
        (match (request, response) with
        | (Types.Enter _ | Types.Resume _), Types.Ok_entered _ ->
          (* Atomic CS register update: satp switch + IS_ENCLAVE are
             performed by the platform layer inside the same gate
             call; the TLB flush is issued here. *)
          flush_tlbs t
        | _ -> ());
        Ok response)
  end

let last_latency_ns t = t.last_latency_ns
let rejected t = t.rejected
let tlb_flushes t = t.tlb_flushes
