(** The EMS Runtime: the software that executes enclave primitives.

    Owns every piece of EMS-private state — control structures, the
    enclave memory pool, the page-ownership table, shared-memory
    control structures, root keys — and implements the service
    routine behind each Table II primitive. CS software reaches it
    only through the mailbox; [handle] is what an EMS worker core
    runs for one request packet.

    Every handler follows the paper's discipline: sanity-check the
    arguments (Sec. III-B, mechanism 3), check the caller's identity
    against the control structures, perform the state change, then
    flush management data so CS observes a consistent view. *)

type t

val create :
  rng:Hypertee_util.Xrng.t ->
  mem:Hypertee_arch.Phys_mem.t ->
  bitmap:Hypertee_arch.Bitmap.t ->
  mee:Hypertee_arch.Mem_encryption.t ->
  keys:Keymgmt.t ->
  cost:Cost.t ->
  os_request:(n:int -> int list) ->
  os_return:(frames:int list -> unit) ->
  platform_measurement:bytes ->
  t

(** [handle t ~sender request] runs one primitive. [sender] is the
    enclaveID EMCall stamped on the packet ([None] = host software);
    handlers that act on an enclave's own resources verify it. *)
val handle : t -> sender:Types.enclave_id option -> Types.request -> Types.response

(** Service-time model for the request (timing layer). *)
val service_ns : t -> Types.request -> float

(** Lookups used by the platform layer and tests. *)
val find_enclave : t -> Types.enclave_id -> Enclave.t option

val find_shm : t -> Types.shm_id -> Shm.region option
val keys : t -> Keymgmt.t
val pool : t -> Mem_pool.t
val ownership : t -> Ownership.t
val platform_measurement : t -> bytes

(** The EMS-private audit log of served/refused primitives. *)
val audit : t -> Audit.t
val live_enclaves : t -> Types.enclave_id list

(** Per-opcode served counters (telemetry / tests). *)
val served : t -> Types.opcode -> int

(** Swap-in support: does the enclave have an EWB-evicted page at
    [vpn]? (EMCall routes such faults to EMS.) *)
val has_swapped_page : t -> Types.enclave_id -> vpn:int -> bool
