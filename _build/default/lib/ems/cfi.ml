module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

module Int_set = Set.Make (Int)

type policy = { edges : Edge_set.t; indirect_targets : Int_set.t }

let policy ~edges ~indirect_targets =
  { edges = Edge_set.of_list edges; indirect_targets = Int_set.of_list indirect_targets }

type verdict = Clean of int | Violation of { from_pc : int; to_pc : int } | Buffer_overflow

type enclave_state = {
  policy : policy;
  buffer : (int * int) Hypertee_util.Ring_queue.t;
  mutable overflowed : bool;
}

type t = {
  buffer_capacity : int;
  enclaves : (Types.enclave_id, enclave_state) Hashtbl.t;
  mutable violations : int;
}

let create ?(buffer_capacity = 1024) () =
  { buffer_capacity; enclaves = Hashtbl.create 8; violations = 0 }

let register t ~enclave policy =
  Hashtbl.replace t.enclaves enclave
    {
      policy;
      buffer = Hypertee_util.Ring_queue.create ~capacity:t.buffer_capacity;
      overflowed = false;
    }

let record_transfer t ~enclave ~from_pc ~to_pc =
  match Hashtbl.find_opt t.enclaves enclave with
  | None -> () (* unmonitored enclave: the hardware feature is off *)
  | Some st ->
    if not (Hypertee_util.Ring_queue.push st.buffer (from_pc, to_pc)) then st.overflowed <- true

let allowed policy ~from_pc ~to_pc =
  Edge_set.mem (from_pc, to_pc) policy.edges || Int_set.mem to_pc policy.indirect_targets

let monitor t ~enclave =
  match Hashtbl.find_opt t.enclaves enclave with
  | None -> Clean 0
  | Some st ->
    if st.overflowed then begin
      (* Losing trace means losing the guarantee: treat as violation
         (the paper's conservative choice — terminate). *)
      st.overflowed <- false;
      Hypertee_util.Ring_queue.clear st.buffer;
      t.violations <- t.violations + 1;
      Buffer_overflow
    end
    else begin
      let rec drain checked =
        match Hypertee_util.Ring_queue.pop st.buffer with
        | None -> Clean checked
        | Some (from_pc, to_pc) ->
          if allowed st.policy ~from_pc ~to_pc then drain (checked + 1)
          else begin
            Hypertee_util.Ring_queue.clear st.buffer;
            t.violations <- t.violations + 1;
            Violation { from_pc; to_pc }
          end
      in
      drain 0
    end

let violations t = t.violations

let pending t ~enclave =
  match Hashtbl.find_opt t.enclaves enclave with
  | Some st -> Hypertee_util.Ring_queue.length st.buffer
  | None -> 0
