type connection = { perm : Types.perm; mutable attached_at : int option }

type region = {
  shm : Types.shm_id;
  owner : Types.enclave_id;
  frames : int list;
  key_id : int;
  max_perm : Types.perm;
  legal : (Types.enclave_id, connection) Hashtbl.t;
}

type t = { regions : (Types.shm_id, region) Hashtbl.t }

let create () = { regions = Hashtbl.create 16 }

let register t ~shm ~owner ~frames ~key_id ~max_perm =
  let legal = Hashtbl.create 4 in
  Hashtbl.replace legal owner { perm = max_perm; attached_at = None };
  let region = { shm; owner; frames; key_id; max_perm; legal } in
  Hashtbl.replace t.regions shm region;
  region

let find t shm = Hashtbl.find_opt t.regions shm

let clamp_perm max_perm requested =
  match (max_perm, requested) with
  | Types.Read_only, _ -> Types.Read_only
  | Types.Read_write, p -> p

let grant t ~shm ~caller ~grantee ~perm =
  match find t shm with
  | None -> Error Types.No_such_shm
  | Some region ->
    if caller <> region.owner then
      Error (Types.Permission_denied "only the initial sender may grant access")
    else begin
      let perm = clamp_perm region.max_perm perm in
      (match Hashtbl.find_opt region.legal grantee with
      | Some conn -> Hashtbl.replace region.legal grantee { conn with perm }
      | None -> Hashtbl.replace region.legal grantee { perm; attached_at = None });
      Ok ()
    end

let attach t ~shm ~enclave ~requested_perm ~base_vpn =
  match find t shm with
  | None -> Error Types.No_such_shm
  | Some region -> (
    match Hashtbl.find_opt region.legal enclave with
    | None -> Error Types.Not_registered
    | Some conn -> (
      match conn.attached_at with
      | Some _ -> Error (Types.Invalid_argument_ "already attached")
      | None ->
        let granted = clamp_perm conn.perm requested_perm in
        (* An attach may not exceed the granted permission. *)
        if requested_perm = Types.Read_write && conn.perm = Types.Read_only then
          Error (Types.Permission_denied "write access not granted")
        else begin
          conn.attached_at <- Some base_vpn;
          Ok granted
        end))

let detach t ~shm ~enclave =
  match find t shm with
  | None -> Error Types.No_such_shm
  | Some region -> (
    match Hashtbl.find_opt region.legal enclave with
    | Some ({ attached_at = Some _; _ } as conn) ->
      conn.attached_at <- None;
      Ok ()
    | Some { attached_at = None; _ } | None ->
      Error (Types.Invalid_argument_ "not attached"))

let active_connections region =
  Hashtbl.fold
    (fun _ conn acc -> match conn.attached_at with Some _ -> acc + 1 | None -> acc)
    region.legal 0

let destroy t ~shm ~caller =
  match find t shm with
  | None -> Error Types.No_such_shm
  | Some region ->
    if caller <> region.owner then
      Error (Types.Permission_denied "only the initial sender may destroy shared memory")
    else if active_connections region > 0 then
      Error (Types.Permission_denied "active connections remain")
    else begin
      Hashtbl.remove t.regions shm;
      Ok region
    end

let attached_perm region enclave =
  match Hashtbl.find_opt region.legal enclave with
  | Some { attached_at = Some _; perm } -> Some perm
  | Some { attached_at = None; _ } | None -> None

let regions t = Hashtbl.fold (fun _ r acc -> r :: acc) t.regions []
