(** EMS audit log.

    EMS is the platform's root of trust for management decisions, so
    it keeps an append-only record of every primitive it served:
    opcode, the (EMCall-stamped) sender, the outcome, and a logical
    sequence number. The log lives in EMS private memory — CS
    software cannot read or truncate it — and is the forensic trail
    for the availability/integrity arguments of Table I (e.g. "which
    enclave asked to destroy this region, and was it refused?").

    Bounded: the oldest entries are dropped beyond [capacity], with a
    monotonically increasing sequence number so truncation is
    evident. *)

type outcome = Served | Refused of string

type entry = {
  seq : int;
  opcode : Types.opcode;
  sender : Types.enclave_id option;
  outcome : outcome;
}

type t

val create : ?capacity:int -> unit -> t

(** [record t ~opcode ~sender ~outcome] appends one entry. *)
val record : t -> opcode:Types.opcode -> sender:Types.enclave_id option -> outcome:outcome -> unit

(** Entries currently retained, oldest first. *)
val entries : t -> entry list

(** Total entries ever recorded (survives truncation). *)
val total : t -> int

(** [refusals t] — retained entries whose outcome is [Refused]. *)
val refusals : t -> entry list

(** [by_sender t ~sender] — retained entries from one principal. *)
val by_sender : t -> sender:Types.enclave_id option -> entry list

val pp_entry : Format.formatter -> entry -> unit
