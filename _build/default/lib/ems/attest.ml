type quote = {
  platform_measurement : bytes;
  enclave_measurement : bytes;
  user_data : bytes;
  platform_signature : bytes;
  quote_signature : bytes;
}

let quote_body ~platform_measurement ~enclave_measurement ~user_data =
  Bytes.concat Bytes.empty
    [ Bytes.of_string "HTQUOTE1"; platform_measurement; enclave_measurement;
      Hypertee_crypto.Sha256.digest user_data ]

let make_quote keys ~platform_measurement ~enclave_measurement ~user_data =
  let platform_signature = Keymgmt.sign_with_ek keys platform_measurement in
  let body = quote_body ~platform_measurement ~enclave_measurement ~user_data in
  let quote_signature = Keymgmt.sign_with_ak keys body in
  { platform_measurement; enclave_measurement; user_data; platform_signature; quote_signature }

(* Wire format: u16 lengths then fields, in fixed order. *)
let put_field buf b =
  let len = Bytes.length b in
  Buffer.add_char buf (Char.chr (len lsr 8));
  Buffer.add_char buf (Char.chr (len land 0xFF));
  Buffer.add_bytes buf b

let quote_to_bytes q =
  let buf = Buffer.create 256 in
  put_field buf q.platform_measurement;
  put_field buf q.enclave_measurement;
  put_field buf q.user_data;
  put_field buf q.platform_signature;
  put_field buf q.quote_signature;
  Buffer.to_bytes buf

let quote_of_bytes b =
  let pos = ref 0 in
  let take () =
    if !pos + 2 > Bytes.length b then None
    else begin
      let len = (Char.code (Bytes.get b !pos) lsl 8) lor Char.code (Bytes.get b (!pos + 1)) in
      pos := !pos + 2;
      if !pos + len > Bytes.length b then None
      else begin
        let field = Bytes.sub b !pos len in
        pos := !pos + len;
        Some field
      end
    end
  in
  match (take (), take (), take (), take (), take ()) with
  | Some pm, Some em, Some ud, Some ps, Some qs when !pos = Bytes.length b ->
    Some
      {
        platform_measurement = pm;
        enclave_measurement = em;
        user_data = ud;
        platform_signature = ps;
        quote_signature = qs;
      }
  | _ -> None

let verify_quote ~ek ~ak q =
  Hypertee_crypto.Rsa.verify ek ~msg:q.platform_measurement ~signature:q.platform_signature
  && Hypertee_crypto.Rsa.verify ak
       ~msg:
         (quote_body ~platform_measurement:q.platform_measurement
            ~enclave_measurement:q.enclave_measurement ~user_data:q.user_data)
       ~signature:q.quote_signature

type report = { verifier_measurement : bytes; challenger_measurement : bytes; mac : bytes }

let report_body r = Bytes.cat r.verifier_measurement r.challenger_measurement

let make_report keys ~verifier_measurement ~challenger_measurement =
  let key = Keymgmt.report_key keys ~challenger_measurement in
  let r = { verifier_measurement; challenger_measurement; mac = Bytes.empty } in
  { r with mac = Hypertee_crypto.Hmac.hmac ~key (report_body r) }

let verify_report keys r =
  let key = Keymgmt.report_key keys ~challenger_measurement:r.challenger_measurement in
  Hypertee_util.Bytes_ext.equal_ct r.mac (Hypertee_crypto.Hmac.hmac ~key (report_body r))

(* Sealing blob: nonce(16) || ciphertext || hmac(32) over nonce+ct. *)
let seal keys ~enclave_measurement data =
  let key = Keymgmt.sealing_key keys ~enclave_measurement in
  let aes = Hypertee_crypto.Aes.expand key in
  (* Deterministic nonce per (key, data) is unacceptable; derive from
     the data hash and a counter-free random-ish salt via the key.
     A simulated platform has no hardware entropy source here, so use
     the HMAC of the data as the nonce (SIV-style, misuse resistant). *)
  let nonce = Bytes.sub (Hypertee_crypto.Hmac.hmac ~key data) 0 16 in
  let ct = Hypertee_crypto.Aes.ctr aes ~nonce data in
  let mac_key = Hypertee_crypto.Hmac.derive ~ikm:key ~salt:Bytes.empty ~info:"seal-mac" 16 in
  let tag = Hypertee_crypto.Hmac.hmac ~key:mac_key (Bytes.cat nonce ct) in
  Bytes.concat Bytes.empty [ nonce; ct; tag ]

let unseal keys ~enclave_measurement blob =
  if Bytes.length blob < 48 then None
  else begin
    let key = Keymgmt.sealing_key keys ~enclave_measurement in
    let aes = Hypertee_crypto.Aes.expand key in
    let nonce = Bytes.sub blob 0 16 in
    let ct = Bytes.sub blob 16 (Bytes.length blob - 48) in
    let tag = Bytes.sub blob (Bytes.length blob - 32) 32 in
    let mac_key = Hypertee_crypto.Hmac.derive ~ikm:key ~salt:Bytes.empty ~info:"seal-mac" 16 in
    if Hypertee_util.Bytes_ext.equal_ct tag (Hypertee_crypto.Hmac.hmac ~key:mac_key (Bytes.cat nonce ct))
    then Some (Hypertee_crypto.Aes.ctr aes ~nonce ct)
    else None
  end
