(** EMS-side primitive scheduling (paper Fig. 3 and Sec. III-C).

    Requests arriving from the mailbox are distributed over the EMS
    worker cores and — as one of the timing-side-channel
    countermeasures — dispatched in a randomized order rather than
    arrival order, so a co-located attacker cannot line its own
    primitives up against a victim's to learn execution order or
    interleave with specific victim gadgets.

    The functional simulator executes jobs synchronously, so this
    module models the *order and placement* decisions: a batch of
    pending jobs is shuffled, dealt round-robin to workers, and run.
    Service remains at primitive granularity (a job never yields
    mid-primitive — the property Sec. III-C relies on). *)

type t

val create : Hypertee_util.Xrng.t -> workers:int -> t

val workers : t -> int

(** [submit t ~id job] queues a primitive for execution. [id] is the
    mailbox request id (used only for the audit trail). *)
val submit : t -> id:int -> (unit -> unit) -> unit

val pending : t -> int

(** [dispatch t] takes the whole pending batch, shuffles it, assigns
    jobs to workers round-robin and runs every job to completion.
    Returns the number of jobs executed. *)
val dispatch : t -> int

(** Audit trail: (request id, worker) in execution order, most recent
    batch last. Used by the tests that check the attacker cannot
    predict ordering. *)
val execution_log : t -> (int * int) list

val executed : t -> int
