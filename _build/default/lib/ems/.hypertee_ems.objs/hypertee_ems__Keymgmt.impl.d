lib/ems/keymgmt.ml: Bytes Hypertee_crypto Hypertee_util Int64
