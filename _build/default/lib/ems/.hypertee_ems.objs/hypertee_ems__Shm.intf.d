lib/ems/shm.mli: Hashtbl Types
