lib/ems/ownership.ml: Hashtbl List Types
