lib/ems/enclave.mli: Hashtbl Hypertee_arch Hypertee_crypto Types
