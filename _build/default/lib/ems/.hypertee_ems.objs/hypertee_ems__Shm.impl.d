lib/ems/shm.ml: Hashtbl Types
