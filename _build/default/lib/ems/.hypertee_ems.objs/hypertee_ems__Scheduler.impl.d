lib/ems/scheduler.ml: Array Hypertee_util List
