lib/ems/enclave.ml: Hashtbl Hypertee_arch Hypertee_crypto List Types
