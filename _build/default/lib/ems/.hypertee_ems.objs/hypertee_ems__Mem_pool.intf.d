lib/ems/mem_pool.mli: Hypertee_arch Hypertee_util
