lib/ems/boot.ml: Bytes Hypertee_crypto Hypertee_util
