lib/ems/audit.ml: Format List Printf Types
