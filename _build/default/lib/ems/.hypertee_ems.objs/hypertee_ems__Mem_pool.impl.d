lib/ems/mem_pool.ml: Hypertee_arch Hypertee_util List Stdlib
