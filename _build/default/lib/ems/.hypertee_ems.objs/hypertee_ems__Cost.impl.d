lib/ems/cost.ml: Hypertee_arch Hypertee_crypto Hypertee_util Stdlib Types
