lib/ems/boot.mli: Hypertee_util
