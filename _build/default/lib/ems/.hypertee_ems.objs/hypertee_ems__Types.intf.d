lib/ems/types.mli: Format
