lib/ems/cost.mli: Hypertee_arch Hypertee_crypto Types
