lib/ems/scheduler.mli: Hypertee_util
