lib/ems/audit.mli: Format Types
