lib/ems/cfi.ml: Hashtbl Hypertee_util Int Set Types
