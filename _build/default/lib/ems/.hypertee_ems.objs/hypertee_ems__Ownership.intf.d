lib/ems/ownership.mli: Types
