lib/ems/types.ml: Format
