lib/ems/keymgmt.mli: Hypertee_crypto Hypertee_util
