lib/ems/runtime.mli: Audit Cost Enclave Hypertee_arch Hypertee_util Keymgmt Mem_pool Ownership Shm Types
