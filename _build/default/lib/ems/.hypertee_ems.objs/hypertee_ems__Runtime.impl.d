lib/ems/runtime.ml: Array Attest Audit Bytes Cost Enclave Hashtbl Hypertee_arch Hypertee_crypto Hypertee_util Int64 Keymgmt List Mem_pool Option Ownership Shm Stdlib Types
