lib/ems/cfi.mli: Types
