lib/ems/attest.mli: Hypertee_crypto Keymgmt
