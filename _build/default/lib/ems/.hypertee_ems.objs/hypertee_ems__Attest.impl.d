lib/ems/attest.ml: Buffer Bytes Char Hypertee_crypto Hypertee_util Keymgmt
