type provisioned = {
  flash_runtime : bytes;
  eeprom_runtime_hash : bytes;
  firmware : bytes;
  eeprom_firmware_hash : bytes;
  flash_key : bytes;
}

let flash_nonce = Bytes.make 16 '\x5f'

let provision rng ~runtime_image ~firmware_image =
  let flash_key = Hypertee_util.Xrng.bytes rng 16 in
  let aes = Hypertee_crypto.Aes.expand flash_key in
  {
    flash_runtime = Hypertee_crypto.Aes.ctr aes ~nonce:flash_nonce runtime_image;
    eeprom_runtime_hash = Hypertee_crypto.Sha256.digest runtime_image;
    firmware = Bytes.copy firmware_image;
    eeprom_firmware_hash = Hypertee_crypto.Sha256.digest firmware_image;
    flash_key;
  }

type stage = Ems_boot_rom | Ems_runtime | Cs_firmware | Cs_os

let stage_name = function
  | Ems_boot_rom -> "EMS BootROM"
  | Ems_runtime -> "EMS Runtime"
  | Cs_firmware -> "CS firmware (EMCall)"
  | Cs_os -> "CS OS"

type outcome =
  | Booted of { platform_measurement : bytes; stages : stage list }
  | Halted of { at : stage; reason : string }

let boot p =
  (* Stage 1: BootROM decrypts the EMS Runtime from flash and checks
     it against the EEPROM hash (physical tampering with flash or
     EEPROM shows up here). *)
  let aes = Hypertee_crypto.Aes.expand p.flash_key in
  let runtime = Hypertee_crypto.Aes.ctr aes ~nonce:flash_nonce p.flash_runtime in
  let runtime_hash = Hypertee_crypto.Sha256.digest runtime in
  if not (Hypertee_util.Bytes_ext.equal_ct runtime_hash p.eeprom_runtime_hash) then
    Halted { at = Ems_runtime; reason = "EMS Runtime hash mismatch" }
  else begin
    (* Stage 2: the now-trusted runtime verifies the CS firmware. *)
    let firmware_hash = Hypertee_crypto.Sha256.digest p.firmware in
    if not (Hypertee_util.Bytes_ext.equal_ct firmware_hash p.eeprom_firmware_hash) then
      Halted { at = Cs_firmware; reason = "CS firmware (EMCall) hash mismatch" }
    else begin
      (* Stage 3: release the CS OS; the platform measurement covers
         the verified software TCB. *)
      let platform_measurement =
        Hypertee_crypto.Sha256.digest (Bytes.cat runtime_hash firmware_hash)
      in
      Booted
        { platform_measurement; stages = [ Ems_boot_rom; Ems_runtime; Cs_firmware; Cs_os ] }
    end
  end

let booted = function Booted _ -> true | Halted _ -> false
