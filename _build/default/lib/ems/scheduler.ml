type job = { id : int; run : unit -> unit }

type t = {
  rng : Hypertee_util.Xrng.t;
  workers : int;
  mutable queue : job list; (* reversed arrival order *)
  mutable log : (int * int) list; (* reversed execution order *)
  mutable executed : int;
}

let create rng ~workers =
  if workers < 1 then invalid_arg "Scheduler.create: need at least one worker";
  { rng; workers; queue = []; log = []; executed = 0 }

let workers t = t.workers
let submit t ~id run = t.queue <- { id; run } :: t.queue
let pending t = List.length t.queue

let dispatch t =
  let batch = Array.of_list (List.rev t.queue) in
  t.queue <- [];
  (* Randomized dispatch order (Sec. III-C): neither arrival order
     nor anything the submitter controls. *)
  Hypertee_util.Xrng.shuffle t.rng batch;
  Array.iteri
    (fun i job ->
      let worker = i mod t.workers in
      job.run ();
      t.executed <- t.executed + 1;
      t.log <- (job.id, worker) :: t.log)
    batch;
  Array.length batch

let execution_log t = List.rev t.log
let executed t = t.executed
