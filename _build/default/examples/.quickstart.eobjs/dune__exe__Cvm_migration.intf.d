examples/cvm_migration.mli:
