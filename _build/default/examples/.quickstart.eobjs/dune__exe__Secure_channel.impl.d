examples/secure_channel.ml: Bytes Char Hypertee Hypertee_crypto Hypertee_util Int64 Printf
