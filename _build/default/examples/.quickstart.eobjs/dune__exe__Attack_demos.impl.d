examples/attack_demos.ml: Bytes Char Hypertee Hypertee_arch Hypertee_cs Hypertee_ems Printf
