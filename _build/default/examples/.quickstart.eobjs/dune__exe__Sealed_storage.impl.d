examples/sealed_storage.ml: Bytes Char Hypertee Hypertee_util Int64 Printf
