examples/quickstart.ml: Bytes Hypertee Hypertee_ems Hypertee_util Printf Result String
