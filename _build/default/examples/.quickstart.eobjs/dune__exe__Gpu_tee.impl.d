examples/gpu_tee.ml: Bytes Hypertee Hypertee_accel Hypertee_arch Hypertee_ems Hypertee_util Int64 List Option Printf
