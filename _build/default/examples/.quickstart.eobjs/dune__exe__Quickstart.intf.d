examples/quickstart.mli:
