examples/enclave_ipc.mli:
