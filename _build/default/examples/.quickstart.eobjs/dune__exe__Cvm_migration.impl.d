examples/cvm_migration.ml: Array Bytes Char Hypertee Hypertee_cvm Hypertee_util Printf
