examples/secure_channel.mli:
