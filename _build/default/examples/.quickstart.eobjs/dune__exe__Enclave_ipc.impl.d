examples/enclave_ipc.ml: Bytes Hypertee Hypertee_ems Hypertee_util Printf String
