examples/gpu_tee.mli:
