examples/sealed_storage.mli:
