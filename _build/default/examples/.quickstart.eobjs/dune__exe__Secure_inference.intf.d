examples/secure_inference.mli:
