examples/attack_demos.mli:
