(* Enclave-to-enclave communication over encrypted shared memory
   (paper Sec. V): the full protocol between a sender and a receiver
   enclave, including local attestation, the legal connection list,
   permission clamping, and the malicious-release defenses.

   Run with: dune exec examples/enclave_ipc.exe *)

module Types = Hypertee_ems.Types

let ok_or_die what = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "%s failed: %s\n" what (Types.error_message e);
    exit 1

let launch platform name =
  let image =
    Hypertee.Sdk.image_of_code ~code:(Bytes.of_string ("code of " ^ name)) ~data:Bytes.empty ()
  in
  match Hypertee.Sdk.launch platform image with
  | Ok enclave -> (
    match Hypertee.Sdk.enter platform ~enclave with
    | Ok session -> (enclave, session)
    | Error m ->
      Printf.eprintf "enter %s: %s\n" name m;
      exit 1)
  | Error m ->
    Printf.eprintf "launch %s: %s\n" name m;
    exit 1

let () =
  let platform = Hypertee.Platform.create () in
  let sender_id, sender = launch platform "sender" in
  let receiver_id, receiver = launch platform "receiver" in
  let eve_id, eve = launch platform "eve" in
  Printf.printf "enclaves: sender=%d receiver=%d eve=%d\n" sender_id receiver_id eve_id;

  (* 1. Local attestation: receiver proves its identity to the sender
     before being granted access (paper Sec. VI). *)
  (match Hypertee.Session.local_attest ~challenger:receiver ~verifier:sender with
  | Ok key ->
    Printf.printf "local attestation OK; negotiated key %s...\n"
      (String.sub (Hypertee_util.Bytes_ext.to_hex key) 0 12)
  | Error m ->
    Printf.eprintf "local attestation: %s\n" m;
    exit 1);

  (* 2. Sender creates a 4-page shared region; EMS derives a dedicated
     key from (senderID, ShmID) and programs the encryption engine. *)
  let shm = ok_or_die "ESHMGET" (Hypertee.Session.shmget sender ~pages:4 ~max_perm:Types.Read_write) in
  Printf.printf "shared region %d created\n" shm;

  (* 3. Brute-force defense: eve guesses the ShmID but is not on the
     legal connection list, so ESHMAT is rejected. *)
  (match Hypertee.Session.shmat eve ~shm ~perm:Types.Read_only with
  | Error Types.Not_registered -> print_endline "eve's ShmID guess rejected (not registered) -- good"
  | Error e -> Printf.printf "eve rejected differently: %s\n" (Types.error_message e)
  | Ok _ ->
    print_endline "BUG: eve attached without registration";
    exit 1);

  (* 4. Sender registers the receiver with read-only permission. *)
  ok_or_die "ESHMSHR" (Hypertee.Session.shmshr sender ~shm ~grantee:receiver_id ~perm:Types.Read_only);

  (* 5. Receiver asking for write access beyond its grant is clamped. *)
  (match Hypertee.Session.shmat receiver ~shm ~perm:Types.Read_write with
  | Error (Types.Permission_denied _) -> print_endline "receiver write-attach rejected (read-only grant) -- good"
  | Error e -> Printf.printf "unexpected: %s\n" (Types.error_message e)
  | Ok _ ->
    print_endline "BUG: permission clamp missing";
    exit 1);

  (* 6. Both sides attach within their permissions and exchange data
     in plaintext (the engine encrypts transparently under the shm
     key, so DRAM still holds ciphertext). *)
  let sender_va = ok_or_die "sender ESHMAT" (Hypertee.Session.shmat sender ~shm ~perm:Types.Read_write) in
  let receiver_va = ok_or_die "receiver ESHMAT" (Hypertee.Session.shmat receiver ~shm ~perm:Types.Read_only) in
  let message = Bytes.of_string "model weights / IO commands / bulk data" in
  Hypertee.Session.write sender ~va:sender_va message;
  let received = Hypertee.Session.read receiver ~va:receiver_va ~len:(Bytes.length message) in
  Printf.printf "receiver read: %S\n" (Bytes.to_string received);
  assert (Bytes.equal received message);

  (* 7. Read-only enforcement at the page tables: the receiver's
     attempt to scribble on the region faults. *)
  (match Hypertee.Session.write receiver ~va:receiver_va (Bytes.of_string "tamper") with
  | () -> print_endline "BUG: read-only page was writable"
  | exception Failure _ -> print_endline "receiver tamper attempt blocked by page permissions -- good");

  (* 8. Malicious release: only the initial sender may destroy, and
     only once no connection is active. *)
  (match Hypertee.Session.shmdes receiver ~shm with
  | Error (Types.Permission_denied _) -> print_endline "receiver destroy attempt rejected -- good"
  | Error e -> Printf.printf "unexpected: %s\n" (Types.error_message e)
  | Ok () -> print_endline "BUG: non-owner destroyed the region");
  (match Hypertee.Session.shmdes sender ~shm with
  | Error (Types.Permission_denied _) -> print_endline "destroy with active connections rejected -- good"
  | Error e -> Printf.printf "unexpected: %s\n" (Types.error_message e)
  | Ok () -> print_endline "BUG: destroyed while attached");

  (* 9. Orderly teardown. *)
  ok_or_die "receiver ESHMDT" (Hypertee.Session.shmdt receiver ~shm);
  ok_or_die "sender ESHMDT" (Hypertee.Session.shmdt sender ~shm);
  ok_or_die "ESHMDES" (Hypertee.Session.shmdes sender ~shm);
  print_endline "shared region destroyed; enclave_ipc finished"
