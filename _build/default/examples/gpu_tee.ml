(* TEE for GPU (paper Sec. IX): a driver enclave owns the GPU's
   control path; the data path runs over encrypted shared enclave
   memory that the EMS-managed IOMMU maps into the GPU's I/O address
   space with the right encryption KeyID. A user enclave provisions
   inputs over the enclave-to-enclave shared memory and the GPU
   computes on them without any plaintext ever touching DRAM or the
   untrusted OS.

   Run with: dune exec examples/gpu_tee.exe *)

module Types = Hypertee_ems.Types
module Iommu = Hypertee_arch.Iommu
module Gpu = Hypertee_accel.Gpu

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt
let ok what = function Ok v -> v | Error e -> die "%s: %s" what (Types.error_message e)

let launch platform code =
  let image = Hypertee.Sdk.image_of_code ~code:(Bytes.of_string code) ~data:Bytes.empty () in
  match Hypertee.Sdk.launch platform image with
  | Ok e -> (
    match Hypertee.Sdk.enter platform ~enclave:e with
    | Ok s -> (e, s)
    | Error m -> die "enter: %s" m)
  | Error m -> die "launch: %s" m

let () =
  let platform = Hypertee.Platform.create () in
  let driver_id, driver = launch platform "gpu driver enclave" in
  let user_id, user = launch platform "user enclave (model owner)" in

  (* 1. The GPU, attached behind the platform IOMMU. EMS binds its
     control path to the driver enclave. *)
  let gpu =
    Gpu.create ~mem:(Hypertee.Platform.mem platform)
      ~mee:(Hypertee.Platform.Internals.mee platform)
      ~iommu:(Hypertee.Platform.Internals.iommu platform)
      ~device:1
  in
  Gpu.bind gpu ~driver:driver_id;
  Printf.printf "GPU bound to driver enclave %d\n" driver_id;

  (* 2. Data path: user enclave creates shared memory, grants the
     driver access, both attach. *)
  let shm = ok "ESHMGET" (Hypertee.Session.shmget user ~pages:4 ~max_perm:Types.Read_write) in
  ok "ESHMSHR" (Hypertee.Session.shmshr user ~shm ~grantee:driver_id ~perm:Types.Read_write);
  let user_va = ok "user ESHMAT" (Hypertee.Session.shmat user ~shm ~perm:Types.Read_write) in
  let _driver_va = ok "driver ESHMAT" (Hypertee.Session.shmat driver ~shm ~perm:Types.Read_write) in

  (* 3. The driver enclave asks EMS to map the shared frames into the
     GPU's I/O address space with the region's KeyID — the key never
     leaves the engine. *)
  let runtime = Hypertee.Platform.Internals.runtime platform in
  let region = Option.get (Hypertee_ems.Runtime.find_shm runtime shm) in
  let iommu = Hypertee.Platform.Internals.iommu platform in
  List.iteri
    (fun i frame ->
      Iommu.map iommu ~device:1 ~io_vpn:i ~frame ~writable:true
        ~key_id:region.Hypertee_ems.Shm.key_id ())
    region.Hypertee_ems.Shm.frames;
  print_endline "shared frames mapped into the GPU IOMMU (with the shm KeyID)";

  (* 4. The user enclave writes two input vectors into shared memory. *)
  let n = 256 in
  let vec base f =
    let b = Bytes.create (8 * n) in
    for i = 0 to n - 1 do
      Hypertee_util.Bytes_ext.set_u64_le b (8 * i) (f i)
    done;
    Hypertee.Session.write user ~va:(user_va + base) b
  in
  vec 0 (fun i -> Int64.of_int i);
  vec (8 * n) (fun i -> Int64.of_int (1000 * i));

  (* 5. The driver enclave submits the kernel; the GPU reads and
     writes through the IOMMU, the engine decrypting transparently. *)
  (match
     Gpu.submit gpu ~from:driver_id
       (Gpu.Vector_add { a = 0; b = 8 * n; out = 16 * n; length = n })
   with
  | Ok () -> print_endline "vector-add kernel completed on the GPU"
  | Error _ -> die "kernel failed");

  (* 6. The user enclave reads the result from shared memory. *)
  let out = Hypertee.Session.read user ~va:(user_va + (16 * n)) ~len:(8 * n) in
  let ok_result = ref true in
  for i = 0 to n - 1 do
    if Hypertee_util.Bytes_ext.get_u64_le out (8 * i) <> Int64.of_int (1001 * i) then
      ok_result := false
  done;
  Printf.printf "result correct: %b\n" !ok_result;

  (* 7. Attacks. A submission not coming from the driver enclave is
     rejected at the command path. *)
  (match Gpu.submit gpu ~from:user_id (Gpu.Reduce_sum { src = 0; out = 16 * n; length = n }) with
  | Error Gpu.Wrong_enclave -> print_endline "non-driver submission rejected -- good"
  | _ -> die "BUG: control path not bound");
  (* The GPU cannot touch anything EMS did not map: an access beyond
     the window faults in the IOMMU. *)
  (match
     Gpu.submit gpu ~from:driver_id
       (Gpu.Reduce_sum { src = 64 * 4096; out = 16 * n; length = 4 })
   with
  | Error (Gpu.Iommu_fault Iommu.Unmapped) -> print_endline "out-of-window GPU access faulted -- good"
  | _ -> die "BUG: GPU escaped its IOMMU mappings");
  (* Nothing in DRAM is plaintext: scan for an input value pattern. *)
  let mem = Hypertee.Platform.mem platform in
  let needle = Bytes.create 16 in
  Hypertee_util.Bytes_ext.set_u64_le needle 0 1000L;
  Hypertee_util.Bytes_ext.set_u64_le needle 8 2000L;
  let leaked = ref false in
  for f = 0 to Hypertee_arch.Phys_mem.frames mem - 1 do
    let page = Hypertee_arch.Phys_mem.read mem ~frame:f in
    for i = 0 to 4096 - 16 do
      if Bytes.equal (Bytes.sub page i 16) needle then leaked := true
    done
  done;
  Printf.printf "plaintext vectors in DRAM: %b (want false)\n" !leaked;
  Printf.printf "GPU stats: %d completed, %d rejected\n" (Gpu.completed gpu) (Gpu.rejected gpu);
  print_endline "gpu_tee finished"
