(* Secure DNN inference (paper Sec. VII-D, Fig. 12 scenario 1).

   A user enclave holds a confidential model; a driver enclave owns
   the Gemmini accelerator. The model is provisioned to the user
   enclave under a remote-attestation session key, then inference
   data flows to the driver enclave over encrypted shared memory and
   onward to the accelerator through an EMS-configured DMA window.
   Finally the timing model compares this against the conventional
   software-crypto data path.

   Run with: dune exec examples/secure_inference.exe *)

module Types = Hypertee_ems.Types

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt
let ok_or_die what = function Ok v -> v | Error e -> die "%s: %s" what (Types.error_message e)

let () =
  let platform = Hypertee.Platform.create () in

  (* Launch the two enclaves. *)
  let user_image =
    Hypertee.Sdk.image_of_code ~code:(Bytes.of_string "user enclave: model owner") ~data:Bytes.empty ()
  in
  let driver_image =
    Hypertee.Sdk.image_of_code ~code:(Bytes.of_string "driver enclave: gemmini driver") ~data:Bytes.empty ()
  in
  let user_id = match Hypertee.Sdk.launch platform user_image with Ok e -> e | Error m -> die "launch user: %s" m in
  let driver_id = match Hypertee.Sdk.launch platform driver_image with Ok e -> e | Error m -> die "launch driver: %s" m in
  let user = match Hypertee.Sdk.enter platform ~enclave:user_id with Ok s -> s | Error m -> die "enter: %s" m in
  let driver = match Hypertee.Sdk.enter platform ~enclave:driver_id with Ok s -> s | Error m -> die "enter: %s" m in

  (* 1. Remote user attests the user enclave, then provisions the
     (confidential) model weights encrypted under the session key,
     via the untrusted host staging window. *)
  let rng = Hypertee_util.Xrng.create 0xD00DL in
  let outcome =
    match
      Hypertee.Verifier.attest_enclave ~rng ~ek:(Hypertee.Platform.ek_public platform)
        ~ak:(Hypertee.Platform.ak_public platform)
        ~expected_measurement:(Hypertee.Sdk.expected_measurement user_image)
        user
    with
    | Ok o -> o
    | Error f -> die "attestation: %s" (Hypertee.Verifier.failure_message f)
  in
  let session_key = outcome.Hypertee.Verifier.session_key in
  let weights = Bytes.of_string "W = [[0.12, -0.7], [1.4, 0.003]]  (confidential)" in
  let nonce = Bytes.make 16 '\042' in
  let encrypted_weights = Hypertee_crypto.Aes.ctr (Hypertee_crypto.Aes.expand session_key) ~nonce weights in
  (match Hypertee.Sdk.host_write_staging platform ~enclave:user_id ~off:0 encrypted_weights with
  | Ok () -> ()
  | Error m -> die "staging: %s" m);
  (* Inside the enclave: read ciphertext from staging, decrypt with
     the attested session key, keep plaintext only in enclave memory. *)
  let staged =
    Hypertee.Session.read user ~va:(Hypertee.Session.staging_va user) ~len:(Bytes.length encrypted_weights)
  in
  let decrypted = Hypertee_crypto.Aes.ctr (Hypertee_crypto.Aes.expand session_key) ~nonce staged in
  assert (Bytes.equal decrypted weights);
  Hypertee.Session.write user ~va:(Hypertee.Session.heap_va user) decrypted;
  print_endline "model provisioned into the user enclave under the attestation key";

  (* 2. Data path: user enclave -> driver enclave over shared memory
     (local attestation, then ESHMGET/ESHMSHR/ESHMAT). *)
  (match Hypertee.Session.local_attest ~challenger:driver ~verifier:user with
  | Ok _ -> print_endline "driver enclave locally attested"
  | Error m -> die "local attest: %s" m);
  let shm = ok_or_die "ESHMGET" (Hypertee.Session.shmget user ~pages:8 ~max_perm:Types.Read_write) in
  ok_or_die "ESHMSHR" (Hypertee.Session.shmshr user ~shm ~grantee:driver_id ~perm:Types.Read_write);
  let user_va = ok_or_die "ESHMAT" (Hypertee.Session.shmat user ~shm ~perm:Types.Read_write) in
  let driver_va = ok_or_die "ESHMAT" (Hypertee.Session.shmat driver ~shm ~perm:Types.Read_write) in
  let layer_input = Bytes.of_string "activation tensor for layer 1" in
  Hypertee.Session.write user ~va:user_va layer_input;
  let at_driver = Hypertee.Session.read driver ~va:driver_va ~len:(Bytes.length layer_input) in
  assert (Bytes.equal at_driver layer_input);
  print_endline "activations crossed user->driver in plaintext shared enclave memory";

  (* 3. Driver grants the accelerator's DMA engine a whitelisted
     window over the shared frames (paper Sec. V-B/C); transfers
     outside the window are dropped by iHub. *)
  let runtime = Hypertee.Platform.Internals.runtime platform in
  let region =
    match Hypertee_ems.Runtime.find_shm runtime shm with Some r -> r | None -> die "shm vanished"
  in
  let frames = region.Hypertee_ems.Shm.frames in
  let base_frame = List.fold_left Stdlib.min max_int frames in
  Hypertee_arch.Ihub.configure_dma_window
    (Hypertee.Platform.Internals.ihub platform)
    ~channel:1 ~base_frame ~frames:(List.length frames) ~writable:true;
  (match Hypertee.Platform.dma_read platform ~channel:1 ~frame:base_frame with
  | Ok _ -> print_endline "accelerator DMA read inside the whitelist window succeeded"
  | Error _ -> die "DMA inside window was wrongly blocked");
  (match Hypertee.Platform.dma_read platform ~channel:1 ~frame:0 with
  | Error _ -> print_endline "accelerator DMA outside the window dropped by iHub -- good"
  | Ok _ -> die "BUG: DMA escaped its whitelist window");

  (* 4. Performance: the Fig. 12 model for this exact scenario. *)
  print_endline "\nend-to-end inference timing (Fig. 12 model):";
  List.iter
    (fun net ->
      let r = Hypertee_accel.Comm_scenario.run_dnn net in
      Printf.printf "  %-15s conventional %8.1f ms  hypertee %7.1f ms  speedup %5.1fx\n"
        r.Hypertee_accel.Comm_scenario.network
        (r.Hypertee_accel.Comm_scenario.conventional_total_ns /. 1e6)
        (r.Hypertee_accel.Comm_scenario.hypertee_total_ns /. 1e6)
        r.Hypertee_accel.Comm_scenario.speedup)
    [ Hypertee_workloads.Dnn.resnet50; Hypertee_workloads.Dnn.mobilenet; Hypertee_workloads.Dnn.mlp_mnist ];
  print_endline "secure_inference finished"
