(* VM-level TEE extension (paper Sec. IX): confidential-VM lifecycle,
   encrypted + Merkle-protected snapshots, tamper detection, and live
   migration between two HyperTEE platforms over an attested channel.

   Run with: dune exec examples/cvm_migration.exe *)

module Manager = Hypertee_cvm.Manager

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt
let ok what = function Ok v -> v | Error m -> die "%s: %s" what m

let () =
  (* Two independent platforms: different seeds, different root keys. *)
  let source = Manager.create (Hypertee.Platform.create ~seed:0x51L ()) in
  let destination = Manager.create (Hypertee.Platform.create ~seed:0xD5L ()) in

  (* 1. Launch a CVM on the source: 2 vCPUs, 16 pages of guest
     memory, a guest image. *)
  let image = Bytes.of_string "guest kernel + confidential workload state" in
  let cvm = ok "launch" (Manager.launch source ~vcpus:2 ~memory_pages:16 ~image) in
  Printf.printf "CVM %d launched on the source platform (%d pages)\n" cvm
    (Manager.memory_pages source cvm);

  (* Guest writes secrets into its (encrypted) memory. *)
  ok "guest write" (Manager.guest_write source cvm ~gpa:0x2000 (Bytes.of_string "db: balance=12345"));
  let readback = ok "guest read" (Manager.guest_read source cvm ~gpa:0x2000 ~len:17) in
  Printf.printf "guest memory roundtrip: %S\n" (Bytes.to_string readback);

  (* 2. Snapshot: pages leave EMS only as ciphertext; the AES key and
     the Merkle root stay in EMS private state. *)
  let snap = ok "snapshot" (Manager.snapshot source cvm) in
  Printf.printf "snapshot taken: %d encrypted pages\n" (Array.length snap.Manager.encrypted_pages);
  let plaintext_leak =
    Array.exists
      (fun page ->
        let n = Bytes.length page - 7 in
        let rec scan i = i < n && (Bytes.equal (Bytes.sub page i 7) (Bytes.of_string "balance") || scan (i + 1)) in
        scan 0)
      snap.Manager.encrypted_pages
  in
  Printf.printf "snapshot leaks plaintext: %b (want false)\n" plaintext_leak;

  (* 3. Host tampering with a stored snapshot is detected on restore. *)
  let tampered =
    {
      snap with
      Manager.encrypted_pages =
        Array.mapi
          (fun i p ->
            if i = 3 then begin
              let p = Bytes.copy p in
              Bytes.set p 100 (Char.chr (Char.code (Bytes.get p 100) lxor 1));
              p
            end
            else p)
          snap.Manager.encrypted_pages;
    }
  in
  (match Manager.restore source tampered with
  | Error m -> Printf.printf "tampered snapshot rejected: %s -- good\n" m
  | Ok _ -> die "BUG: tampered snapshot restored");

  (* 4. The intact snapshot restores (e.g. crash recovery). *)
  let recovered = ok "restore" (Manager.restore source snap) in
  ok "resume" (Manager.resume source recovered);
  let data = ok "read" (Manager.guest_read source recovered ~gpa:0x2000 ~len:17) in
  Printf.printf "restored CVM %d sees: %S\n" recovered (Bytes.to_string data);
  ok "destroy restored" (Manager.destroy source recovered);

  (* 5. Migration to the destination platform: mutual EK attestation,
     DH channel, key+root transfer inside it, verified restore. *)
  let rng = Hypertee_util.Xrng.create 0x419AL in
  let migrated = ok "migrate" (Manager.migrate ~src:source ~dst:destination ~rng cvm) in
  Printf.printf "CVM migrated; destination id %d\n" migrated;
  (match Manager.state source cvm with
  | Some Manager.Destroyed -> print_endline "source copy destroyed -- good"
  | _ -> die "BUG: source copy survived migration");
  ok "resume on destination" (Manager.resume destination migrated);
  let after = ok "read on destination" (Manager.guest_read destination migrated ~gpa:0x2000 ~len:17) in
  Printf.printf "destination guest memory: %S\n" (Bytes.to_string after);
  assert (Bytes.equal after (Bytes.of_string "db: balance=12345"));
  print_endline "cvm_migration finished"
