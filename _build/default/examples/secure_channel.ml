(* End-to-end secure channel into an enclave — the deployment story
   the paper's attestation machinery exists for (Sec. VI):

   A remote client holds the expected measurement of a "key vault"
   enclave. It attests the enclave over an untrusted transport (the
   host application relays every message and tries to tamper),
   derives a session key bound to the attested identity, provisions a
   long-term secret over the encrypted channel, and the enclave seals
   it for future instances. Every cryptographic step uses the
   repository's real primitives; every byte at rest in DRAM is
   ciphertext.

   Run with: dune exec examples/secure_channel.exe *)

module Aes = Hypertee_crypto.Aes
module Hmac = Hypertee_crypto.Hmac

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* Authenticated encryption for channel records: AES-CTR + HMAC tag
   (encrypt-then-MAC), keys derived per direction. *)
let record_keys session_key =
  let okm = Hmac.derive ~ikm:session_key ~salt:Bytes.empty ~info:"channel-v1" 64 in
  ( (Bytes.sub okm 0 16, Bytes.sub okm 16 16) (* client->enclave enc, mac *),
    (Bytes.sub okm 32 16, Bytes.sub okm 48 16) (* enclave->client enc, mac *) )

let seal_record ~enc ~mac ~seq payload =
  let nonce = Bytes.make 16 '\000' in
  Hypertee_util.Bytes_ext.set_u64_be nonce 8 (Int64.of_int seq);
  let ct = Aes.ctr (Aes.expand enc) ~nonce payload in
  let tag = Hmac.hmac ~key:mac (Bytes.cat nonce ct) in
  (nonce, ct, tag)

let open_record ~enc ~mac (nonce, ct, tag) =
  if not (Hypertee_util.Bytes_ext.equal_ct tag (Hmac.hmac ~key:mac (Bytes.cat nonce ct))) then None
  else Some (Aes.ctr (Aes.expand enc) ~nonce ct)

let () =
  let platform = Hypertee.Platform.create () in
  let vault_image =
    Hypertee.Sdk.image_of_code
      ~code:(Bytes.of_string "key vault enclave: stores tenant master keys")
      ~data:Bytes.empty ()
  in
  let enclave =
    match Hypertee.Sdk.launch platform vault_image with Ok e -> e | Error m -> die "launch: %s" m
  in
  let session =
    match Hypertee.Sdk.enter platform ~enclave with Ok s -> s | Error m -> die "enter: %s" m
  in

  (* 1. Remote attestation: the client checks the quote chain and the
     measurement, ending with a session key shared with the enclave
     (bound into the quote's user data, so the relaying host cannot
     splice itself in). *)
  let client_rng = Hypertee_util.Xrng.create 0xC11E47L in
  let outcome =
    match
      Hypertee.Verifier.attest_enclave ~rng:client_rng
        ~ek:(Hypertee.Platform.ek_public platform)
        ~ak:(Hypertee.Platform.ak_public platform)
        ~expected_measurement:(Hypertee.Sdk.expected_measurement vault_image)
        session
    with
    | Ok o -> o
    | Error f -> die "attestation: %s" (Hypertee.Verifier.failure_message f)
  in
  print_endline "client attested the vault enclave";

  (* 2. The client provisions a tenant master key over the channel.
     The host relays the record through the plaintext staging window
     — it sees only ciphertext. *)
  let (c2e_enc, c2e_mac), (e2c_enc, e2c_mac) = record_keys outcome.Hypertee.Verifier.session_key in
  let master_key = Bytes.of_string "tenant-42-master-key-0123456789abcdef" in
  let nonce, ct, tag = seal_record ~enc:c2e_enc ~mac:c2e_mac ~seq:1 master_key in
  let record = Bytes.concat Bytes.empty [ nonce; tag; ct ] in
  (match Hypertee.Sdk.host_write_staging platform ~enclave ~off:0 record with
  | Ok () -> ()
  | Error m -> die "relay: %s" m);
  Printf.printf "host relayed a %d-byte ciphertext record\n" (Bytes.length record);

  (* 3. Inside the enclave: read the record from staging, verify and
     decrypt with the attested session key, keep the master key only
     in encrypted enclave memory. *)
  let staged =
    Hypertee.Session.read session ~va:(Hypertee.Session.staging_va session) ~len:(Bytes.length record)
  in
  let r_nonce = Bytes.sub staged 0 16 in
  let r_tag = Bytes.sub staged 16 32 in
  let r_ct = Bytes.sub staged 48 (Bytes.length staged - 48) in
  let received =
    match open_record ~enc:c2e_enc ~mac:c2e_mac (r_nonce, r_ct, r_tag) with
    | Some p -> p
    | None -> die "record authentication failed"
  in
  assert (Bytes.equal received master_key);
  Hypertee.Session.write session ~va:(Hypertee.Session.heap_va session) received;
  print_endline "enclave authenticated and stored the master key (encrypted memory only)";

  (* 4. A tampering host is caught: flipping one ciphertext bit kills
     the record MAC. *)
  let tampered = Bytes.copy record in
  Bytes.set tampered 50 (Char.chr (Char.code (Bytes.get tampered 50) lxor 1));
  let t_nonce = Bytes.sub tampered 0 16 in
  let t_tag = Bytes.sub tampered 16 32 in
  let t_ct = Bytes.sub tampered 48 (Bytes.length tampered - 48) in
  (match open_record ~enc:c2e_enc ~mac:c2e_mac (t_nonce, t_ct, t_tag) with
  | None -> print_endline "host tampering with the channel detected -- good"
  | Some _ -> die "BUG: tampered record accepted");

  (* 5. The enclave answers with a key-derivation response (e.g. a
     wrapped data key for the tenant), sent back the same way. *)
  let data_key = Hmac.derive ~ikm:master_key ~salt:Bytes.empty ~info:"tenant-42-db" 16 in
  let n2, ct2, tag2 = seal_record ~enc:e2c_enc ~mac:e2c_mac ~seq:1 data_key in
  Hypertee.Session.write session ~va:(Hypertee.Session.staging_va session + 512)
    (Bytes.concat Bytes.empty [ n2; tag2; ct2 ]);
  let reply =
    match Hypertee.Sdk.host_read_staging platform ~enclave ~off:512 ~len:(16 + 32 + 16) with
    | Ok b -> b
    | Error m -> die "reply relay: %s" m
  in
  let reply_plain =
    match
      open_record ~enc:e2c_enc ~mac:e2c_mac
        (Bytes.sub reply 0 16, Bytes.sub reply 48 16, Bytes.sub reply 16 32)
    with
    | Some p -> p
    | None -> die "client could not authenticate the reply"
  in
  assert (Bytes.equal reply_plain data_key);
  print_endline "client received the wrapped data key over the channel";

  (* 6. Persistence: the enclave seals the master key; a relaunched
     instance (same code) unseals it without re-provisioning. *)
  let blob =
    match Hypertee.Platform.seal platform ~enclave master_key with
    | Ok b -> b
    | Error m -> die "seal: %s" m
  in
  (match Hypertee.Sdk.destroy platform ~enclave with Ok () -> () | Error m -> die "%s" m);
  let enclave2 =
    match Hypertee.Sdk.launch platform vault_image with Ok e -> e | Error m -> die "%s" m
  in
  (match Hypertee.Platform.unseal platform ~enclave:enclave2 blob with
  | Ok k when Bytes.equal k master_key -> print_endline "relaunched vault unsealed the master key"
  | Ok _ -> die "BUG: unsealed wrong data"
  | Error m -> die "unseal: %s" m);
  print_endline "secure_channel finished"
