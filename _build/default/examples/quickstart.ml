(* Quickstart: the complete enclave lifecycle on a HyperTEE platform.

   Builds a platform, launches an enclave from an image (ECREATE +
   EADD + EMEAS through the EMCall gate), enters it, works with
   encrypted memory, runs remote attestation as an external verifier
   would, and tears down.

   Run with: dune exec examples/quickstart.exe *)

let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error msg ->
    Printf.eprintf "quickstart failed: %s\n" msg;
    exit 1

let () =
  (* 1. Boot a platform: 4 CS cores, 1 medium EMS core, crypto engine. *)
  let platform = Hypertee.Platform.create () in
  Printf.printf "platform booted; measurement = %s...\n"
    (String.sub (Hypertee_util.Bytes_ext.to_hex (Hypertee.Platform.platform_measurement platform)) 0 16);

  (* 2. Build an enclave image. In a real SDK the code section is the
     compiled enclave binary; the expected measurement is emitted at
     build time for remote verifiers. *)
  let image =
    Hypertee.Sdk.image_of_code
      ~code:(Bytes.of_string "enclave text: processes secrets without trusting the OS")
      ~data:(Bytes.of_string "enclave initialised data")
      ()
  in
  Printf.printf "expected measurement = %s...\n"
    (String.sub (Hypertee_util.Bytes_ext.to_hex (Hypertee.Sdk.expected_measurement image)) 0 16);

  (* 3. Launch: the SDK drives ECREATE/EADD/EMEAS and verifies the
     measurement EMS computed matches the build-time expectation. *)
  let* enclave = Hypertee.Sdk.launch platform image in
  Printf.printf "enclave %d launched and measured\n" enclave;

  (* 4. Enter and use encrypted memory. Everything the enclave writes
     is AES-encrypted by the memory engine before touching DRAM. *)
  let* session = Hypertee.Sdk.enter platform ~enclave in
  let heap = Hypertee.Session.heap_va session in
  Hypertee.Session.write session ~va:heap (Bytes.of_string "the secret: 42");
  let back = Hypertee.Session.read session ~va:heap ~len:14 in
  Printf.printf "enclave read back: %S\n" (Bytes.to_string back);

  (* 5. Dynamic memory: EALLOC serves pages from the EMS pool without
     the OS observing per-enclave allocations. *)
  (match Hypertee.Session.alloc session ~pages:8 with
  | Ok va -> Printf.printf "EALLOC gave 8 pages at va %#x\n" va
  | Error e -> Printf.printf "EALLOC failed: %s\n" (Hypertee_ems.Types.error_message e));

  (* 6. Remote attestation: a remote user verifies the platform (EK)
     and the enclave quote (AK), checks the measurement, and ends up
     with a session key shared with the enclave. *)
  let verifier_rng = Hypertee_util.Xrng.create 2026_07_04L in
  (match
     Hypertee.Verifier.attest_enclave ~rng:verifier_rng
       ~ek:(Hypertee.Platform.ek_public platform)
       ~ak:(Hypertee.Platform.ak_public platform)
       ~expected_measurement:(Hypertee.Sdk.expected_measurement image)
       session
   with
  | Ok outcome ->
    Printf.printf "remote attestation OK; shared key %s...\n"
      (String.sub (Hypertee_util.Bytes_ext.to_hex outcome.Hypertee.Verifier.session_key) 0 16)
  | Error f -> Printf.printf "remote attestation failed: %s\n" (Hypertee.Verifier.failure_message f));

  (* 7. Host <-> enclave staging window: the host passes data in
     through plaintext staging pages; secrets would arrive encrypted
     under the attestation session key. *)
  let* () = Hypertee.Sdk.host_write_staging platform ~enclave ~off:0 (Bytes.of_string "input!") in
  let staged = Hypertee.Session.read session ~va:(Hypertee.Session.staging_va session) ~len:6 in
  Printf.printf "enclave sees staged input: %S\n" (Bytes.to_string staged);

  (* 8. Exit and destroy; EMS scrubs and reclaims every page. *)
  let* () = Result.map_error Hypertee_ems.Types.error_message (Hypertee.Session.exit session) in
  let* () = Hypertee.Sdk.destroy platform ~enclave in
  Printf.printf "enclave destroyed; pool has %d frames parked\n"
    (Hypertee_ems.Mem_pool.available
       (Hypertee_ems.Runtime.pool (Hypertee.Platform.Internals.runtime platform)));
  print_endline "quickstart finished"
