(* Sealed storage (paper Sec. VI "Data sealing"): an enclave persists
   a counter to untrusted disk, sealed under a key derived from the
   enclave measurement and the device-unique SK. Only the same
   enclave code on the same platform can unseal; a tampered blob or a
   different enclave fails.

   Run with: dune exec examples/sealed_storage.exe *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* The untrusted "disk": just a mutable cell the host controls. *)
let disk : bytes option ref = ref None

let launch platform code =
  let image = Hypertee.Sdk.image_of_code ~code:(Bytes.of_string code) ~data:Bytes.empty () in
  match Hypertee.Sdk.launch platform image with
  | Ok e -> e
  | Error m -> die "launch: %s" m

let counter_to_bytes v =
  let b = Bytes.create 8 in
  Hypertee_util.Bytes_ext.set_u64_le b 0 (Int64.of_int v);
  b

let counter_of_bytes b = Int64.to_int (Hypertee_util.Bytes_ext.get_u64_le b 0)

let run_instance platform ~code ~label =
  let enclave = launch platform code in
  (* Recover state from disk, if any. *)
  let current =
    match !disk with
    | None -> 0
    | Some blob -> (
      match Hypertee.Platform.unseal platform ~enclave blob with
      | Ok data -> counter_of_bytes data
      | Error m ->
        Printf.printf "  [%s] unseal rejected: %s\n" label m;
        -1)
  in
  if current >= 0 then begin
    let next = current + 1 in
    Printf.printf "  [%s] counter %d -> %d\n" label current next;
    match Hypertee.Platform.seal platform ~enclave (counter_to_bytes next) with
    | Ok blob -> disk := Some blob
    | Error m -> die "seal: %s" m
  end;
  (match Hypertee.Sdk.destroy platform ~enclave with Ok () -> () | Error m -> die "destroy: %s" m)

let () =
  let platform = Hypertee.Platform.create () in
  print_endline "three runs of the same enclave code share sealed state:";
  run_instance platform ~code:"sealed counter v1" ~label:"run 1";
  run_instance platform ~code:"sealed counter v1" ~label:"run 2";
  run_instance platform ~code:"sealed counter v1" ~label:"run 3";

  print_endline "a different enclave (different measurement) cannot unseal:";
  run_instance platform ~code:"malicious lookalike" ~label:"attacker";

  print_endline "host tampering with the sealed blob is detected:";
  (match !disk with
  | Some blob ->
    let tampered = Bytes.copy blob in
    Bytes.set tampered (Bytes.length tampered / 2)
      (Char.chr (Char.code (Bytes.get tampered (Bytes.length tampered / 2)) lxor 0xFF));
    disk := Some tampered
  | None -> die "no sealed state");
  run_instance platform ~code:"sealed counter v1" ~label:"after tamper";
  print_endline "sealed_storage finished"
