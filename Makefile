.PHONY: all build test test-parallel chaos-smoke chaos-restart check-invariants conformance bench-perf bench-parallel bench-cloud check doc fmt clean

all: build

build:
	dune build

test: build
	dune runtest

# The whole suite again with every platform forced into parallel mode
# (4 worker domains, HYPERTEE_EXEC override): parallel execution is
# bit-identical to deterministic mode by construction, so the exact
# same assertions must hold. --force because dune caches runtest
# results per build, not per environment.
test-parallel: build
	HYPERTEE_EXEC=parallel:4 dune runtest --force

# Deterministic quick availability sweep: exercises the fault injector,
# EMCall retry/timeout, the EMS watchdog and integrity containment.
chaos-smoke: build
	dune exec bench/main.exe -- chaos --smoke

# Rolling-restart recovery scenario: kill and cold-restart every EMS
# shard under live traffic, then verify zero lost enclaves, a silent
# differential oracle, and a clean end-of-run deep invariant sweep.
# Writes the report table to CHAOS_restart.txt; exits non-zero on any
# loss, divergence or violation.
chaos-restart: build
	dune exec bin/hypertee_cli.exe -- chaos --rolling --ops 400 --table CHAOS_restart.txt

# Wall-clock MB/s microbenchmarks of the crypto data plane; writes
# BENCH_perf.json so the throughput trajectory is tracked across PRs.
# Raw MB/s is machine-dependent, so `check` does not gate on it — but
# the speedup-vs-reference ratios are portable, and the run fails if
# any fresh ratio falls more than TOLERANCE percent below the
# committed BENCH_perf.json (the baseline is read before the file is
# rewritten). Override with e.g. `make bench-perf TOLERANCE=50`.
TOLERANCE ?= 30

bench-perf: build
	dune exec bin/hypertee_cli.exe -- perf --quick --json BENCH_perf.json \
		--baseline BENCH_perf.json --tolerance $(TOLERANCE)

# bench-perf plus the domain-parallel comparison: scale-point
# makespan and MEE bulk-pipeline throughput, single-domain vs fanned
# over worker domains, with speedup ratios recorded alongside the
# host block (the ratios only mean something relative to the
# parallelism the machine actually offers).
bench-parallel: build
	dune exec bin/hypertee_cli.exe -- perf --quick --parallel --domains 4 --json BENCH_perf.json \
		--baseline BENCH_perf.json --tolerance $(TOLERANCE)

# Enclave-as-a-service SLO sweep: the multi-tenant cloud driver
# (open-loop offered-load ladder + closed loop per shard count, warm
# pool + admission control) writing BENCH_cloud.json. Every sweep
# point ends with a deep invariant sweep and the differential
# oracle's verdict; the target exits non-zero on any violation or
# divergence surfaced by the churn.
bench-cloud: build
	dune exec bin/hypertee_cli.exe -- cloud --quick --json BENCH_cloud.json

# Differential oracle + invariant sweep: replays a clean and a
# fault-injected management workload under the EMCall oracle, then
# runs a reduced explorer pass. Deterministic; exits non-zero on any
# divergence or broken invariant.
check-invariants: build
	dune exec bin/hypertee_cli.exe -- check --calls 600 --seeds 12

# Secure-channel conformance: replay the canned handshake flights and
# record vectors from docs/PROTOCOL.md §7 (well-formed traffic must
# be accepted byte-exactly, every malformed case must be rejected
# with the spec'd error). Exits non-zero if any vector fails.
conformance: build
	dune exec bin/hypertee_cli.exe -- conformance

# The gate for a change: everything builds, the full test suite is
# green in both execution modes, the chaos smoke sweep completes
# without a hang, the rolling restart recovers every shard with
# nothing lost, the oracle/invariant pass holds, and the secure-
# channel conformance vectors all pass.
check: build test test-parallel chaos-smoke chaos-restart check-invariants conformance

# API reference from the .mli doc comments, built with odoc into
# _build/default/_doc/_html. Skips with a notice when odoc is absent,
# so the target is safe on containers that only carry the compiler;
# CI installs odoc and fails the build on any documentation warning.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @doc 2>&1 | tee /dev/stderr | grep -qi warning && exit 1 || true; \
		echo "docs: _build/default/_doc/_html/index.html"; \
	else \
		echo "odoc not installed; skipping doc build"; \
	fi

# Format the tree in place with the pinned ocamlformat (.ocamlformat).
# Skips with a notice when the binary is absent, so the target is safe
# on minimal containers that only carry the compiler toolchain.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune fmt; \
	else \
		echo "ocamlformat not installed; skipping (pinned version in .ocamlformat)"; \
	fi

clean:
	dune clean
