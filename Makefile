.PHONY: all build test chaos-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# Deterministic quick availability sweep: exercises the fault injector,
# EMCall retry/timeout, the EMS watchdog and integrity containment.
chaos-smoke: build
	dune exec bench/main.exe -- chaos --smoke

# The gate for a change: everything builds, the full test suite is
# green, and the chaos smoke sweep completes without a hang.
check: build test chaos-smoke

clean:
	dune clean
