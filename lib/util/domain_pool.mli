(** A bounded pool of worker domains for barrier-style fan-out.

    One pool serves one submitting domain at a time: a caller hands
    [run_all] an array of independent jobs and blocks until all have
    run, helping to drain the queue itself while it waits. With
    [domains <= 1] every operation degenerates to sequential inline
    execution in submission order — no locks, no spawned domains —
    so deterministic single-domain mode is bit-identical to code
    that never heard of the pool.

    Nested submissions (a job calling [run_all] on the same pool)
    are safe: they run inline on the domain that encountered them.
    Concurrent top-level submissions from distinct domains are not
    supported. *)

type t

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()]: the parallelism the host
    actually offers. *)

val create : domains:int -> t
(** [create ~domains] spawns [max 0 (domains - 1)] worker domains;
    the submitter is the remaining unit of parallelism. [domains <= 1]
    spawns nothing and makes every call inline. The caller owns the
    pool and must {!shutdown} it. *)

val shared : domains:int -> t
(** [shared ~domains] is the process-wide pool of that size, created
    on first request and reused forever after; {!shutdown} on it is a
    no-op. Live domains are a hard-capped resource (OCaml refuses to
    spawn past ~128), so per-platform pools — of which a test run
    creates hundreds — must come from here rather than {!create}. *)

val size : t -> int
(** Total parallelism including the submitting domain (>= 1). *)

val run_all : t -> (unit -> unit) array -> unit
(** Run every job, in parallel when the pool has workers, and return
    once all have finished. The first exception any job raised is
    re-raised on the submitter after the barrier. Inline (sequential,
    submission order) when the pool size is 1, the batch has a single
    job, or the caller is itself a pool worker. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] is [Array.map f xs] with the element applications
    distributed over the pool; result order matches input order. *)

val shutdown : t -> unit
(** Stop and join the workers of a {!create}d pool (jobs already
    queued finish first; later [run_all]s degrade to the submitter
    draining everything itself). No-op on a {!shared} pool. *)
