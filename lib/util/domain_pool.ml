(* A bounded pool of worker domains for fork/join fan-out.

   The pool exists to parallelize two shapes of work: the per-shard
   mailbox drains inside [Emcall.invoke_batch], and bulk per-page
   crypto (MEE store/load pipelines, Merkle leaf hashing). Both are
   barrier-style: a caller submits a batch of independent jobs and
   blocks until every job has finished, so the pool exposes exactly
   that — [run_all] — and nothing stateful leaks across batches.

   Design constraints, in order:

   - With [domains <= 1] (the deterministic default) every code path
     degenerates to plain sequential calls on the calling domain, in
     submission order, with no locking and no allocation beyond the
     closure array the caller already built. Deterministic mode must
     stay bit-identical to the pre-pool code.

   - Nested submissions must not deadlock. A shard drain running on a
     worker may itself reach a parallel MEE pipeline; rather than
     batch-tagged completion counting we run nested batches inline on
     the worker that encountered them (detected via a domain-local
     flag). Shard-level parallelism already owns the cores, so inner
     parallelism would only add contention anyway.

   - Worker failures must not be lost: the first exception raised by
     any job is re-raised on the submitting domain after the barrier,
     so callers see the same exception surface as sequential code. *)

type job = unit -> unit

type t = {
  size : int;  (* total parallelism including the submitting domain *)
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable queue : job list;  (* jobs not yet picked up, submission order *)
  mutable outstanding : int;  (* queued + running jobs of the live batch *)
  mutable failure : exn option;  (* first job exception, re-raised at the barrier *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  is_shared : bool;  (* process-wide pool: [shutdown] is a no-op *)
}

(* Set while a domain is executing pool jobs; nested [run_all] calls
   observe it and fall back to inline execution. *)
let in_worker : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let recommended_domains () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.lock;
  while t.queue = [] && not t.stop do
    Condition.wait t.work_ready t.lock
  done;
  match t.queue with
  | [] -> Mutex.unlock t.lock (* stop requested and queue drained *)
  | job :: rest ->
    t.queue <- rest;
    Mutex.unlock t.lock;
    let flag = Domain.DLS.get in_worker in
    flag := true;
    (try job ()
     with e ->
       Mutex.lock t.lock;
       if t.failure = None then t.failure <- Some e;
       Mutex.unlock t.lock);
    flag := false;
    Mutex.lock t.lock;
    t.outstanding <- t.outstanding - 1;
    if t.outstanding = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.lock;
    worker_loop t

let make ~domains ~is_shared =
  let size = Stdlib.max 1 domains in
  let t =
    {
      size;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      queue = [];
      outstanding = 0;
      failure = None;
      stop = false;
      workers = [];
      is_shared;
    }
  in
  (* The submitting domain participates in draining, so [domains]
     total parallelism needs [domains - 1] spawned workers. *)
  if size > 1 then
    t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let create ~domains = make ~domains ~is_shared:false

(* One process-wide pool per size. Domains are a hard-capped resource
   (OCaml refuses to spawn past ~128 live domains), so anything that
   creates pools at platform granularity — hundreds of platforms per
   test run under the HYPERTEE_EXEC matrix — must share workers
   rather than spawn-and-leak its own. *)
let shared_lock = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~domains =
  let size = Stdlib.max 1 domains in
  Mutex.protect shared_lock (fun () ->
      match Hashtbl.find_opt shared_pools size with
      | Some t -> t
      | None ->
        let t = make ~domains:size ~is_shared:true in
        Hashtbl.replace shared_pools size t;
        t)

let size t = t.size

let run_inline jobs = Array.iter (fun job -> job ()) jobs

let run_all t jobs =
  let n = Array.length jobs in
  if n = 0 then ()
  else if t.size <= 1 || n = 1 || !(Domain.DLS.get in_worker) then run_inline jobs
  else begin
    Mutex.lock t.lock;
    t.failure <- None;
    t.outstanding <- t.outstanding + n;
    t.queue <- t.queue @ Array.to_list jobs;
    Condition.broadcast t.work_ready;
    (* Help drain: the submitter works the queue alongside the
       workers instead of blocking immediately. *)
    let flag = Domain.DLS.get in_worker in
    let rec help () =
      match t.queue with
      | job :: rest ->
        t.queue <- rest;
        Mutex.unlock t.lock;
        flag := true;
        (try job ()
         with e ->
           Mutex.lock t.lock;
           if t.failure = None then t.failure <- Some e;
           Mutex.unlock t.lock);
        flag := false;
        Mutex.lock t.lock;
        t.outstanding <- t.outstanding - 1;
        if t.outstanding = 0 then Condition.broadcast t.work_done;
        help ()
      | [] ->
        while t.outstanding > 0 do
          Condition.wait t.work_done t.lock
        done
    in
    help ();
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.lock;
    match failure with Some e -> raise e | None -> ()
  end

let map t f inputs =
  let n = Array.length inputs in
  if n = 0 then [||]
  else begin
    (* Each slot is written by exactly one job, so plain array stores
       are race-free under the OCaml memory model; the [run_all]
       barrier publishes them to the submitter. *)
    let results = Array.make n None in
    run_all t (Array.init n (fun i () -> results.(i) <- Some (f inputs.(i))));
    Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  if not t.is_shared then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end
