type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ~headers ?aligns rows =
  let ncols =
    List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) (List.length headers) rows
  in
  let aligns =
    match aligns with
    | None -> Array.make ncols Left
    | Some l ->
      let a = Array.make ncols Left in
      List.iteri (fun i al -> if i < ncols then a.(i) <- al) l;
      a
  in
  let normalize row =
    let row = Array.of_list row in
    Array.init ncols (fun i -> if i < Array.length row then row.(i) else "")
  in
  let headers = normalize headers in
  let rows = List.map normalize rows in
  let widths = Array.map String.length headers in
  let widen row = Array.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row in
  List.iter widen rows;
  let sep =
    let dashes = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    "+" ^ String.concat "+" dashes ^ "+"
  in
  let line row =
    let cells =
      Array.to_list (Array.mapi (fun i cell -> " " ^ pad aligns.(i) widths.(i) cell ^ " ") row)
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let body = List.map line rows in
  String.concat "\n" ((sep :: line headers :: sep :: body) @ [ sep ])

let print ?(out = stdout) ~headers ?aligns rows =
  output_string out (render ~headers ?aligns rows);
  output_char out '\n'
let fmt_f ~digits v = Printf.sprintf "%.*f" digits v
let pct v = Printf.sprintf "%.1f%%" v
let speedup v = Printf.sprintf "%.1fx" v
