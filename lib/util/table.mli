(** ASCII table rendering for the benchmark harness.

    Every experiment prints its rows through this module so that the
    paper-vs-measured output has one consistent look. *)

type align = Left | Right

(** [render ~headers ?aligns rows] lays out a boxed table. [aligns]
    defaults to left for every column; short rows are padded. *)
val render : headers:string list -> ?aligns:align list -> string list list -> string

(** [print ?out ~headers ?aligns rows] renders to [out] (default
    [stdout]) with a trailing newline — callers that capture or
    redirect output pass their own channel, so library code never
    hard-codes the destination. *)
val print : ?out:out_channel -> headers:string list -> ?aligns:align list -> string list list -> unit

(** Format a float with [digits] decimals, e.g. [fmt_f ~digits:1 2.04
    = "2.0"]. *)
val fmt_f : digits:int -> float -> string

(** Percentage with one decimal and a "%" suffix. *)
val pct : float -> string

(** Speedup like "4.1x". *)
val speedup : float -> string
