(** Deterministic fault-injection plans.

    The availability claim of Table I is that enclave management keeps
    working when parts of the platform misbehave. To reproduce that
    claim the simulator needs misbehaviour on demand: this module
    describes *where* faults strike (a {!site}), *when* they strike (a
    {!schedule}) and *how hard* (an intensity), and compiles the plan
    into an injector the hardware models consult at each opportunity.

    Determinism: every site owns an independent RNG split from the
    plan seed, so (a) the same plan replays the same fault trace, and
    (b) enabling one site never perturbs another site's schedule. A
    disabled plan ([None] injector everywhere) is a provable no-op:
    no RNG draw, no behaviour change, byte-identical experiment
    output. *)

(** Injection sites threaded through the request path. *)
type site =
  | Mailbox_drop  (** response packet lost on the fabric *)
  | Mailbox_duplicate  (** response packet delivered twice *)
  | Mailbox_corrupt  (** response payload corrupted (bad CRC) *)
  | Transport_delay  (** latency spike on the CS-EMS interconnect *)
  | Worker_stall  (** an EMS worker wedges mid-request *)
  | Worker_crash  (** an EMS worker dies, losing its in-flight request *)
  | Crypto_transient  (** crypto engine returns a transient error *)
  | Memory_bit_flip  (** DRAM bit flip under an enclave key *)
  | Migration_crash  (** shard dies between live-migration phases *)
  | Snapshot_corrupt  (** sealed snapshot corrupted on the fabric *)
  | Chan_corrupt  (** secure-channel segment byte flipped in the fabric queue *)
  | Chan_truncate  (** secure-channel segment truncated in the fabric queue *)
  | Chan_reorder  (** secure-channel segment delivered out of order *)

val all_sites : site list
val site_name : site -> string

(** When a site fires, counted in *opportunities* (times the hook is
    consulted). *)
type schedule =
  | Never
  | Always
  | Probability of float  (** iid with this probability per opportunity *)
  | Every_nth of int  (** fires on the n-th, 2n-th, ... opportunity *)
  | Once_at of int  (** fires exactly once, on the n-th opportunity *)

type rule = { site : site; schedule : schedule; intensity : float }

(** A fault plan: seed plus one rule per site (unlisted sites are
    [Never]). *)
type plan

val plan : ?seed:int64 -> rule list -> plan

(** [uniform ~rate ()] puts [Probability rate] on every site with a
    default intensity — the knob the chaos sweep turns. *)
val uniform : ?seed:int64 -> rate:float -> unit -> plan

val rules : plan -> rule list
val seed : plan -> int64

(** A compiled plan with per-site counters. One injector is shared by
    all hooks of one platform instance. *)
type t

val create : plan -> t

(** [fire t site] consumes one opportunity at [site] and says whether
    the fault strikes now. *)
val fire : t -> site -> bool

(** Configured intensity of the site's rule (0 when unlisted).
    Meaning is per-site: extra nanoseconds for [Transport_delay],
    retry-cost multiplier for [Crypto_transient], ignored
    elsewhere. *)
val intensity : t -> site -> float

(** [draw_int t site bound] — deterministic per-site randomness for
    fault shaping (e.g. which bit to flip). *)
val draw_int : t -> site -> int -> int

(** Times the site actually fired / was consulted. *)
val fired : t -> site -> int

val opportunities : t -> site -> int
val total_fired : t -> int

(** Flip journal: the memory model calls [note_flip] each time a
    [Memory_bit_flip] actually corrupts a read of [frame]; the deep
    checker sweep reads [flips_on] before and after each page verify
    so a MAC failure coinciding with a fresh flip is classified as
    injected, not as a platform bug. *)
val note_flip : t -> frame:int -> unit

val flips_on : t -> frame:int -> int

(** Snapshot the per-site fired/opportunity counters into a metrics
    registry under [faults.<site>.*]. *)
val publish_metrics : t -> Hypertee_obs.Metrics.t -> unit
