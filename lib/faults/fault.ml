type site =
  | Mailbox_drop
  | Mailbox_duplicate
  | Mailbox_corrupt
  | Transport_delay
  | Worker_stall
  | Worker_crash
  | Crypto_transient
  | Memory_bit_flip
  | Migration_crash
  | Snapshot_corrupt
  | Chan_corrupt
  | Chan_truncate
  | Chan_reorder

(* New sites append at the end: [create] splits one RNG per site in
   this order, so appending preserves every existing site's stream
   (and therefore every seeded experiment's fault trace). *)
let all_sites =
  [
    Mailbox_drop; Mailbox_duplicate; Mailbox_corrupt; Transport_delay; Worker_stall;
    Worker_crash; Crypto_transient; Memory_bit_flip; Migration_crash; Snapshot_corrupt;
    Chan_corrupt; Chan_truncate; Chan_reorder;
  ]

let site_name = function
  | Mailbox_drop -> "mailbox-drop"
  | Mailbox_duplicate -> "mailbox-duplicate"
  | Mailbox_corrupt -> "mailbox-corrupt"
  | Transport_delay -> "transport-delay"
  | Worker_stall -> "worker-stall"
  | Worker_crash -> "worker-crash"
  | Crypto_transient -> "crypto-transient"
  | Memory_bit_flip -> "memory-bit-flip"
  | Migration_crash -> "migration-crash"
  | Snapshot_corrupt -> "snapshot-corrupt"
  | Chan_corrupt -> "chan-corrupt"
  | Chan_truncate -> "chan-truncate"
  | Chan_reorder -> "chan-reorder"

let site_index = function
  | Mailbox_drop -> 0
  | Mailbox_duplicate -> 1
  | Mailbox_corrupt -> 2
  | Transport_delay -> 3
  | Worker_stall -> 4
  | Worker_crash -> 5
  | Crypto_transient -> 6
  | Memory_bit_flip -> 7
  | Migration_crash -> 8
  | Snapshot_corrupt -> 9
  | Chan_corrupt -> 10
  | Chan_truncate -> 11
  | Chan_reorder -> 12

let n_sites = List.length all_sites

type schedule = Never | Always | Probability of float | Every_nth of int | Once_at of int

type rule = { site : site; schedule : schedule; intensity : float }

type plan = { seed : int64; plan_rules : rule list }

let check_rule r =
  (match r.schedule with
  | Probability p when not (p >= 0.0 && p <= 1.0) ->
    invalid_arg "Fault.plan: probability must be in [0,1]"
  | Every_nth n when n < 1 -> invalid_arg "Fault.plan: Every_nth needs n >= 1"
  | Once_at n when n < 1 -> invalid_arg "Fault.plan: Once_at needs n >= 1"
  | _ -> ());
  r

let plan ?(seed = 0xFA17L) rules = { seed; plan_rules = List.map check_rule rules }

let default_intensity = function
  | Transport_delay -> 50_000.0 (* a 50 us interconnect hiccup *)
  | Crypto_transient -> 1.0 (* one transparent retry: cost doubles *)
  | _ -> 1.0

let uniform ?(seed = 0xFA17L) ~rate () =
  plan ~seed
    (List.map
       (fun site -> { site; schedule = Probability rate; intensity = default_intensity site })
       all_sites)

let rules p = p.plan_rules
let seed p = p.seed

type slot = {
  rule : rule;
  rng : Hypertee_util.Xrng.t;
  mutable seen : int;
  mutable hits : int;
}

type t = {
  slots : slot array;
  flips : (int, int) Hashtbl.t;
  lock : Mutex.t;
      (* Sites are consulted from whichever domain hits them (mailbox
         ops under the gate, bit flips inside parallel MEE loads):
         each draw advances a per-site RNG stream and counters, so
         the whole consult is one critical section. Single-domain
         replays never contend, keeping fault traces reproducible. *)
}

let create p =
  let master = Hypertee_util.Xrng.create p.seed in
  (* Every site gets its own split, in a fixed order independent of
     the rule list, so two plans with the same seed drive each site
     with the same stream regardless of which other sites are
     enabled. *)
  let rngs = Array.init n_sites (fun _ -> Hypertee_util.Xrng.split master) in
  let slots =
    Array.of_list
      (List.map
         (fun site ->
           let rule =
             match List.find_opt (fun r -> r.site = site) p.plan_rules with
             | Some r -> r
             | None -> { site; schedule = Never; intensity = 0.0 }
           in
           { rule; rng = rngs.(site_index site); seen = 0; hits = 0 })
         all_sites)
  in
  { slots; flips = Hashtbl.create 64; lock = Mutex.create () }

let slot t site = t.slots.(site_index site)

let fire t site =
  let s = slot t site in
  let hit =
    Mutex.protect t.lock @@ fun () ->
    s.seen <- s.seen + 1;
    let hit =
      match s.rule.schedule with
      | Never -> false
      | Always -> true
      | Probability p -> Hypertee_util.Xrng.float s.rng < p
      | Every_nth n -> s.seen mod n = 0
      | Once_at n -> s.seen = n
    in
    if hit then s.hits <- s.hits + 1;
    hit
  in
  if hit then begin
    if Hypertee_obs.Trace.enabled () then
      Hypertee_obs.Trace.instant ~cat:Hypertee_obs.Trace.Fault
        ~name:("fault:" ^ site_name site) ()
  end;
  hit

let intensity t site = (slot t site).rule.intensity

let draw_int t site bound =
  Mutex.protect t.lock (fun () -> Hypertee_util.Xrng.int (slot t site).rng bound)
let fired t site = (slot t site).hits
let opportunities t site = (slot t site).seen
let total_fired t = Array.fold_left (fun acc s -> acc + s.hits) 0 t.slots

(* Flip journal: per-frame count of bit flips actually applied by the
   memory model. Flips corrupt transient read copies, so the only
   MAC failures they can cause in a checker sweep are ones whose
   flip fired during that very read — the before/after delta of
   [flips_on] is what classifies a deep-sweep MAC failure as
   injected rather than a latent platform bug. *)
let note_flip t ~frame =
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.replace t.flips frame (1 + Option.value ~default:0 (Hashtbl.find_opt t.flips frame))

let flips_on t ~frame =
  Mutex.protect t.lock (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.flips frame))

let publish_metrics t registry =
  let module M = Hypertee_obs.Metrics in
  Array.iter
    (fun s ->
      let name = site_name s.rule.site in
      M.set_counter
        (M.counter registry ~help:"times this fault site fired" ("faults." ^ name ^ ".fired"))
        s.hits;
      M.set_counter
        (M.counter registry ~help:"times this fault site was consulted"
           ("faults." ^ name ^ ".opportunities"))
        s.seen)
    t.slots
