module Stats = Hypertee_util.Stats

(* Instruments are domain-safe: counters and gauges live on [Atomic]
   cells (lock-free, safe to bump from MEE worker domains), while
   histograms — whose [Stats] reservoir is a compound structure —
   take a per-histogram mutex on [observe]. The registry table itself
   is mutex-guarded so concurrent get-or-create cannot register two
   instruments under one name. *)
type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = { stats : Stats.t; h_lock : Mutex.t }

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type entry = { instrument : instrument; help : string }

type t = { table : (string, entry) Hashtbl.t; lock : Mutex.t }

let create () = { table = Hashtbl.create 64; lock = Mutex.create () }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Get-or-create by name; a kind collision is a programming error. *)
let find_or_add t name ~help ~make ~cast =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.table name with
  | Some entry -> (
    match cast entry.instrument with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as a %s" name
           (kind_name entry.instrument)))
  | None ->
    let v, instrument = make () in
    Hashtbl.replace t.table name { instrument; help };
    v

let counter t ?(help = "") name =
  find_or_add t name ~help
    ~make:(fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))
    ~cast:(function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let set_counter c v = Atomic.set c v
let counter_value c = Atomic.get c

let gauge t ?(help = "") name =
  find_or_add t name ~help
    ~make:(fun () ->
      let g = Atomic.make 0.0 in
      (g, Gauge g))
    ~cast:(function Gauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram t ?(help = "") name =
  find_or_add t name ~help
    ~make:(fun () ->
      let h = { stats = Stats.create (); h_lock = Mutex.create () } in
      (h, Histogram h))
    ~cast:(function Histogram h -> Some h | _ -> None)

let observe h v = Mutex.protect h.h_lock (fun () -> Stats.add h.stats v)
let histogram_count h = Mutex.protect h.h_lock (fun () -> Stats.count h.stats)
let percentile h p = Mutex.protect h.h_lock (fun () -> Stats.percentile h.stats p)
let histogram_mean h = Mutex.protect h.h_lock (fun () -> Stats.mean h.stats)

let names t =
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table [] |> List.sort compare

let find_entry t name = Mutex.protect t.lock (fun () -> Hashtbl.find t.table name)

let headers = [ "metric"; "kind"; "count"; "value"; "p50"; "p99"; "help" ]

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let rows t =
  List.map
    (fun name ->
      let entry = find_entry t name in
      let kind = kind_name entry.instrument in
      let count, value, p50, p99 =
        match entry.instrument with
        | Counter c -> ("-", string_of_int (Atomic.get c), "-", "-")
        | Gauge g -> ("-", fmt_value (Atomic.get g), "-", "-")
        | Histogram h ->
          Mutex.protect h.h_lock @@ fun () ->
          let n = Stats.count h.stats in
          if n = 0 then (string_of_int n, "-", "-", "-")
          else
            ( string_of_int n,
              fmt_value (Stats.mean h.stats),
              fmt_value (Stats.percentile h.stats 50.0),
              fmt_value (Stats.percentile h.stats 99.0) )
      in
      [ name; kind; count; value; p50; p99; entry.help ])
    (names t)

let render t = Hypertee_util.Table.render ~headers
    ~aligns:Hypertee_util.Table.[ Left; Left; Right; Right; Right; Right; Left ]
    (rows t)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  let all = names t in
  let n = List.length all in
  List.iteri
    (fun i name ->
      let entry = find_entry t name in
      Buffer.add_string b (Printf.sprintf "  \"%s\": " (json_escape name));
      (match entry.instrument with
      | Counter c -> Buffer.add_string b (string_of_int (Atomic.get c))
      | Gauge g -> Buffer.add_string b (Printf.sprintf "%.6g" (Atomic.get g))
      | Histogram h ->
        Mutex.protect h.h_lock @@ fun () ->
        let count = Stats.count h.stats in
        if count = 0 then Buffer.add_string b "{\"count\": 0}"
        else
          Buffer.add_string b
            (Printf.sprintf
               "{\"count\": %d, \"mean\": %.6g, \"min\": %.6g, \"max\": %.6g, \"p50\": %.6g, \"p99\": %.6g}"
               count (Stats.mean h.stats) (Stats.min h.stats) (Stats.max h.stats)
               (Stats.percentile h.stats 50.0)
               (Stats.percentile h.stats 99.0)));
      Buffer.add_string b (if i = n - 1 then "\n" else ",\n"))
    all;
  Buffer.add_string b "}\n";
  Buffer.contents b
