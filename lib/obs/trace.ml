type category =
  | Emcall
  | Gate
  | Transport
  | Queue
  | Service
  | Wait
  | Ems
  | Sched
  | Mee
  | Crypto
  | Fault
  | Sim
  | Channel
  | Other

let category_name = function
  | Emcall -> "emcall"
  | Gate -> "gate"
  | Transport -> "transport"
  | Queue -> "queue"
  | Service -> "service"
  | Wait -> "wait"
  | Ems -> "ems"
  | Sched -> "sched"
  | Mee -> "mee"
  | Crypto -> "crypto"
  | Fault -> "fault"
  | Sim -> "sim"
  | Channel -> "channel"
  | Other -> "other"

type span = {
  id : int;
  parent : int;
  name : string;
  cat : category;
  track : int;
  start_ns : float;
  mutable dur_ns : float;
  enclave : int;
  opcode : string;
  request_id : int;
}

(* Fixed-capacity overwrite-oldest ring; one per track so a chatty
   track (the sim servers) cannot evict the sparse ones (faults). *)
type ring = { buf : span option array; mutable head : int; mutable count : int }

(* Per-domain span store. Each domain that emits through a tracer
   gets its own rings and its own push/pop stack, so worker domains
   record without any lock on the hot path; [spans] merges the
   per-domain stores at export. Span nesting ([push]/[pop]) is a
   per-domain notion: a worker's spans root at its own stack. *)
type store = {
  tracks : (int, ring) Hashtbl.t;
  mutable open_stack : span list;
  mutable dropped : int;
}

type t = {
  capacity : int;
  stores_lock : Mutex.t;
  mutable stores : store list;  (* every domain's store, export order newest-first *)
  next_id : int Atomic.t;
  mutable cursor : float;
  mutable clock : (unit -> float) option;
}

let default_ring_capacity = 65_536

let create ?(ring_capacity = default_ring_capacity) () =
  if ring_capacity < 1 then invalid_arg "Trace.create: ring_capacity must be >= 1";
  {
    capacity = ring_capacity;
    stores_lock = Mutex.create ();
    stores = [];
    next_id = Atomic.make 0;
    cursor = 0.0;
    clock = None;
  }

let ring_capacity t = t.capacity

(* Track conventions: one Chrome row per hardware actor. *)
let track_gate shard = shard
let track_ems shard = 100 + shard
let track_sim server = 200 + server

let track_name track =
  if track >= 200 then Printf.sprintf "sim/server%d" (track - 200)
  else if track >= 100 then Printf.sprintf "ems/shard%d" (track - 100)
  else if track >= 0 then Printf.sprintf "gate/shard%d" track
  else Printf.sprintf "track%d" track

(* The active tracer. [live] is the one-atomic-load guard every
   instrumentation site checks; it is true only while a tracer is
   both installed and not paused. Both cells are written from the
   controlling domain only but read from every domain. *)
let active : t option Atomic.t = Atomic.make None
let live = Atomic.make false

let install t =
  Atomic.set active (Some t);
  Atomic.set live true

let uninstall () =
  Atomic.set active None;
  Atomic.set live false

let installed () = Atomic.get active
let enabled () = Atomic.get live
let pause () = Atomic.set live false
let resume () = if Atomic.get active <> None then Atomic.set live true

let now t = match t.clock with Some f -> f () | None -> t.cursor
let global_now () = match Atomic.get active with Some t -> now t | None -> 0.0
let set_clock t clock = t.clock <- clock
let advance t ns = if t.clock = None then t.cursor <- t.cursor +. ns

(* Each domain caches the store it uses per tracer (almost always a
   singleton list: one tracer is installed at a time). *)
let domain_stores : (t * store) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let store_of t =
  let cache = Domain.DLS.get domain_stores in
  match List.assq_opt t !cache with
  | Some s -> s
  | None ->
    let s = { tracks = Hashtbl.create 8; open_stack = []; dropped = 0 } in
    Mutex.protect t.stores_lock (fun () -> t.stores <- s :: t.stores);
    cache := (t, s) :: !cache;
    s

let ring_of t store track =
  match Hashtbl.find_opt store.tracks track with
  | Some r -> r
  | None ->
    let r = { buf = Array.make t.capacity None; head = 0; count = 0 } in
    Hashtbl.replace store.tracks track r;
    r

let record t store span =
  let r = ring_of t store span.track in
  if r.count = t.capacity then store.dropped <- store.dropped + 1
  else r.count <- r.count + 1;
  r.buf.(r.head) <- Some span;
  r.head <- (r.head + 1) mod t.capacity

let fresh_id t = Atomic.fetch_and_add t.next_id 1

let emit ?(track = 0) ?(parent = -1) ?(enclave = -1) ?(opcode = "") ?(request_id = -1)
    ~cat ~name ~start_ns ~dur_ns () =
  if not (Atomic.get live) then -1
  else
    match Atomic.get active with
    | None -> -1
    | Some t ->
      let id = fresh_id t in
      record t (store_of t)
        { id; parent; name; cat; track; start_ns; dur_ns; enclave; opcode; request_id };
      id

let instant ?track ?ts_ns ?enclave ?request_id ~cat ~name () =
  if Atomic.get live then
    match Atomic.get active with
    | None -> ()
    | Some t ->
      let ts = match ts_ns with Some ts -> ts | None -> now t in
      ignore
        (emit ?track ?enclave ?request_id ~cat ~name ~start_ns:ts ~dur_ns:0.0 ())

let push ?(track = 0) ?(enclave = -1) ?(opcode = "") ?(request_id = -1) ~cat ~name () =
  if not (Atomic.get live) then -1
  else
    match Atomic.get active with
    | None -> -1
    | Some t ->
      let store = store_of t in
      let parent = match store.open_stack with [] -> -1 | s :: _ -> s.id in
      let id = fresh_id t in
      let span =
        {
          id;
          parent;
          name;
          cat;
          track;
          start_ns = now t;
          dur_ns = 0.0;
          enclave;
          opcode;
          request_id;
        }
      in
      record t store span;
      store.open_stack <- span :: store.open_stack;
      id

let pop id =
  if id >= 0 then
    match Atomic.get active with
    | None -> ()
    | Some t -> (
      let store = store_of t in
      match store.open_stack with
      | s :: rest when s.id = id ->
        s.dur_ns <- now t -. s.start_ns;
        store.open_stack <- rest
      | s :: _ ->
        invalid_arg
          (Printf.sprintf "Trace.pop: ill-nested close of span %d (innermost open is %d)"
             id s.id)
      | [] -> invalid_arg (Printf.sprintf "Trace.pop: span %d is not open" id))

let open_spans () =
  match Atomic.get active with
  | None -> 0
  | Some t -> List.length (store_of t).open_stack

(* Export walks every domain's store. Meant to run at rest (between
   scenarios, or after the worker pool has joined its barrier) — a
   concurrent emitter can race the merge, but never corrupt it. *)
let all_stores t = Mutex.protect t.stores_lock (fun () -> t.stores)

let spans t =
  let all = ref [] in
  List.iter
    (fun store ->
      Hashtbl.iter
        (fun _ r -> Array.iter (function Some s -> all := s :: !all | None -> ()) r.buf)
        store.tracks)
    (all_stores t);
  List.sort
    (fun a b ->
      match Float.compare a.start_ns b.start_ns with 0 -> compare a.id b.id | c -> c)
    !all

let span_count t =
  List.fold_left
    (fun acc store -> Hashtbl.fold (fun _ r acc -> acc + r.count) store.tracks acc)
    0 (all_stores t)

let dropped t = List.fold_left (fun acc store -> acc + store.dropped) 0 (all_stores t)

let clear t =
  List.iter
    (fun store ->
      Hashtbl.iter
        (fun _ r ->
          Array.fill r.buf 0 (Array.length r.buf) None;
          r.head <- 0;
          r.count <- 0)
        store.tracks;
      store.open_stack <- [];
      store.dropped <- 0)
    (all_stores t)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export.                                         *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  (* Thread-name metadata: one row label per track, merged across the
     per-domain stores. *)
  let track_ids = Hashtbl.create 8 in
  List.iter
    (fun store ->
      Hashtbl.iter (fun track _ -> Hashtbl.replace track_ids track ()) store.tracks)
    (all_stores t);
  let track_ids = Hashtbl.fold (fun track () acc -> track :: acc) track_ids [] in
  List.iter
    (fun track ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           track
           (json_escape (track_name track))))
    (List.sort compare track_ids);
  List.iter
    (fun s ->
      sep ();
      let args = Buffer.create 64 in
      Buffer.add_string args (Printf.sprintf "\"span_id\":%d" s.id);
      if s.parent >= 0 then Buffer.add_string args (Printf.sprintf ",\"parent\":%d" s.parent);
      if s.enclave >= 0 then Buffer.add_string args (Printf.sprintf ",\"enclave\":%d" s.enclave);
      if s.opcode <> "" then
        Buffer.add_string args (Printf.sprintf ",\"opcode\":\"%s\"" (json_escape s.opcode));
      if s.request_id >= 0 then
        Buffer.add_string args (Printf.sprintf ",\"request_id\":%d" s.request_id);
      (* Complete events ("X") for spans, instant events ("i") for
         zero-duration marks; timestamps in microseconds. *)
      if s.dur_ns > 0.0 then
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.4f,\"dur\":%.4f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
             (json_escape s.name) (category_name s.cat) (s.start_ns /. 1e3)
             (s.dur_ns /. 1e3) s.track (Buffer.contents args))
      else
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.4f,\"s\":\"t\",\"pid\":1,\"tid\":%d,\"args\":{%s}}"
             (json_escape s.name) (category_name s.cat) (s.start_ns /. 1e3) s.track
             (Buffer.contents args)))
    (spans t);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let write_chrome_json t ~path =
  let oc = open_out path in
  output_string oc (to_chrome_json t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* ASCII summary + flame tree.                                        *)

let render_summary t =
  let all = spans t in
  let b = Buffer.create 1024 in
  if all = [] then Buffer.add_string b "(no spans recorded)\n"
  else begin
    (* Aggregate by (category, name). *)
    let groups : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
    let root_total = ref 0.0 in
    List.iter
      (fun s ->
        if s.parent < 0 then root_total := !root_total +. s.dur_ns;
        let key = category_name s.cat ^ "/" ^ s.name in
        match Hashtbl.find_opt groups key with
        | Some (n, total, mx) ->
          incr n;
          total := !total +. s.dur_ns;
          if s.dur_ns > !mx then mx := s.dur_ns
        | None -> Hashtbl.replace groups key (ref 1, ref s.dur_ns, ref s.dur_ns))
      all;
    let rows =
      Hashtbl.fold (fun key (n, total, mx) acc -> (key, !n, !total, !mx) :: acc) groups []
      |> List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare b a)
      |> List.map (fun (key, n, total, mx) ->
             [
               key;
               string_of_int n;
               Printf.sprintf "%.2f" (total /. 1e3);
               Printf.sprintf "%.2f" (total /. float_of_int n /. 1e3);
               Printf.sprintf "%.2f" (mx /. 1e3);
               (if !root_total > 0.0 then Printf.sprintf "%.1f%%" (100.0 *. total /. !root_total)
                else "-");
             ])
    in
    let tracks =
      let seen = Hashtbl.create 8 in
      List.iter
        (fun store -> Hashtbl.iter (fun k _ -> Hashtbl.replace seen k ()) store.tracks)
        (all_stores t);
      Hashtbl.length seen
    in
    Buffer.add_string b
      (Printf.sprintf "%d span(s) on %d track(s), %d dropped by ring overwrite\n"
         (span_count t) tracks (dropped t));
    Buffer.add_string b
      (Hypertee_util.Table.render
         ~headers:[ "cat/name"; "count"; "total (us)"; "mean (us)"; "max (us)"; "of roots" ]
         ~aligns:
           Hypertee_util.Table.[ Left; Right; Right; Right; Right; Right ]
         rows);
    (* Flame tree: aggregate durations over parent->child name
       paths. Spans whose parent was overwritten render as roots. *)
    let by_id = Hashtbl.create (List.length all) in
    List.iter (fun s -> Hashtbl.replace by_id s.id s) all;
    let rec path s =
      if s.parent < 0 then [ s.name ]
      else
        match Hashtbl.find_opt by_id s.parent with
        | Some p -> path p @ [ s.name ]
        | None -> [ s.name ]
    in
    let module Node = struct
      type node = {
        mutable total : float;
        mutable count : int;
        children : (string, node) Hashtbl.t;
      }

      let make () = { total = 0.0; count = 0; children = Hashtbl.create 4 }
    end in
    let root = Node.make () in
    List.iter
      (fun s ->
        let rec insert node = function
          | [] -> ()
          | name :: rest ->
            let child =
              match Hashtbl.find_opt node.Node.children name with
              | Some c -> c
              | None ->
                let c = Node.make () in
                Hashtbl.replace node.Node.children name c;
                c
            in
            if rest = [] then begin
              child.Node.total <- child.Node.total +. s.dur_ns;
              child.Node.count <- child.Node.count + 1
            end;
            insert child rest
        in
        insert root (path s))
      all;
    Buffer.add_string b "\nflame (total us | count | path):\n";
    let rec render_node depth node =
      Hashtbl.fold (fun name c acc -> (name, c) :: acc) node.Node.children []
      |> List.sort (fun (_, a) (_, b) -> Float.compare b.Node.total a.Node.total)
      |> List.iter (fun (name, c) ->
             Buffer.add_string b
               (Printf.sprintf "%10.2f %7d  %s%s\n" (c.Node.total /. 1e3) c.Node.count
                  (String.make (2 * depth) ' ')
                  name);
             render_node (depth + 1) c)
    in
    render_node 0 root
  end;
  Buffer.contents b
