(** Structured span/event tracer for the EMS/CS boundary.

    The paper's evaluation (Sec. VII) is an exercise in attributing
    time across the decoupled boundary: gate entry, packet build,
    fabric hops, doorbell, EMS queueing, service, polling. This
    module records those stages as {e typed spans} — each carrying
    the enclave id, Table II opcode, mailbox request id and shard
    that produced it — onto fixed-capacity per-track ring buffers,
    and exports them as Chrome [trace_event] JSON (loadable in
    [chrome://tracing] / Perfetto) or as an ASCII summary.

    {2 Two time bases}

    Spans carry explicit float nanosecond timestamps, so the tracer
    works against either time base the simulator uses:

    - {e modelled time}: the EMCall gate computes each round trip
      from the transport/cost model and lays its spans out on a
      virtual cursor ({!now}/{!advance});
    - {e simulated or wall-clock time}: binding a clock with
      {!set_clock} (e.g. the discrete-event engine's [now], see
      [Hypertee_sim.Engine.bind_tracer]) makes {!now}, {!push} and
      {!pop} read that clock instead.

    {2 Cost discipline}

    Instrumentation sites guard on {!enabled}, which is one mutable
    load. With no tracer installed (the default) every helper
    returns immediately and allocates nothing — the hot EMCall loop
    is byte-identical to an uninstrumented build (asserted in
    [test_obs.ml]). With tracing on, each span costs one record and
    one ring-buffer slot; rings overwrite their oldest entry when
    full ({!dropped} counts the overwrites), so memory is bounded
    regardless of run length. *)

(** Span taxonomy. The category is the coarse stage a span belongs
    to; the span name refines it (e.g. [Emcall]/"EMCALL:EALLOC"). *)
type category =
  | Emcall  (** whole gate round trip, CS side *)
  | Gate  (** EMCall entry + packet build *)
  | Transport  (** fabric hops + doorbell interrupt *)
  | Queue  (** waiting for a free EMS worker *)
  | Service  (** the primitive's modelled service time *)
  | Wait  (** polling quantisation, jitter, retry backoff *)
  | Ems  (** EMS-side primitive execution *)
  | Sched  (** EMS scheduler events *)
  | Mee  (** memory-encryption engine *)
  | Crypto  (** crypto engine *)
  | Fault  (** injected fault instants *)
  | Sim  (** discrete-event simulation spans *)
  | Channel  (** secure-channel handshake flights and record seal/open *)
  | Other

(** Lower-case label used in summaries and Chrome [cat] fields. *)
val category_name : category -> string

(** One completed (or still open) span. [parent = -1] marks a root;
    [enclave]/[request_id] are [-1] and [opcode] is [""] when not
    applicable. [track] selects the ring buffer and the Chrome
    rendering row (see the [track_*] conventions below). *)
type span = {
  id : int;
  parent : int;
  name : string;
  cat : category;
  track : int;
  start_ns : float;
  mutable dur_ns : float;
  enclave : int;
  opcode : string;
  request_id : int;
}

type t

(** [create ()] — [ring_capacity] is the per-track span budget
    (default {!default_ring_capacity}); the oldest spans are
    overwritten beyond it. *)
val create : ?ring_capacity:int -> unit -> t

(** 65536 spans per track. *)
val default_ring_capacity : int

(** The per-track capacity [t] was created with. *)
val ring_capacity : t -> int

(** {2 Track conventions}

    The simulator separates timelines by role so exported traces
    render one row per hardware actor. *)

(** CS-side gate activity against EMS shard [s]. *)
val track_gate : int -> int

(** EMS-side execution on shard [s]. *)
val track_ems : int -> int

(** Discrete-event server [i] (Fig. 6 queueing model). *)
val track_sim : int -> int

(** Human-readable row label, e.g. ["gate/shard0"]. *)
val track_name : int -> string

(** {2 Global installation} *)

(** [install t] makes [t] the process-wide tracer and enables the
    emission helpers. Only one tracer is active at a time;
    installing replaces the previous one. *)
val install : t -> unit

(** [uninstall ()] removes the active tracer; every emission helper
    becomes an allocation-free no-op again. *)
val uninstall : unit -> unit

(** The active tracer, if any. *)
val installed : unit -> t option

(** [enabled ()] — true iff a tracer is installed and not paused.
    The guard instrumentation sites check before doing any work. *)
val enabled : unit -> bool

(** Keep the tracer installed but stop recording ([pause]) and start
    again ([resume]) — used to exclude setup phases from a trace. *)
val pause : unit -> unit

(** Re-enable recording after {!pause}. *)
val resume : unit -> unit

(** {2 Time} *)

(** Current time: the bound clock if {!set_clock} installed one,
    otherwise the virtual cursor. *)
val now : t -> float

(** {!now} of the installed tracer, or [0.0] when none is installed
    — lets instrumentation sites take a timestamp without threading
    the tracer value through. *)
val global_now : unit -> float

(** [set_clock t (Some f)] binds an external time source (simulated
    or wall-clock); [None] reverts to the virtual cursor. *)
val set_clock : t -> (unit -> float) option -> unit

(** [advance t ns] moves the virtual cursor forward — the modelled
    EMCall path advances it by each round trip's latency. No-op
    when an external clock is bound. *)
val advance : t -> float -> unit

(** {2 Emission (against the installed tracer)}

    All of these are no-ops returning [-1]/unit when {!enabled} is
    false. *)

(** [emit ~cat ~name ~start_ns ~dur_ns ()] records a completed span
    with explicit timestamps and returns its id. *)
val emit :
  ?track:int ->
  ?parent:int ->
  ?enclave:int ->
  ?opcode:string ->
  ?request_id:int ->
  cat:category ->
  name:string ->
  start_ns:float ->
  dur_ns:float ->
  unit ->
  int

(** [instant ~cat ~name ()] records a zero-duration event (e.g. an
    injected fault) at [ts_ns] (default {!now}). *)
val instant :
  ?track:int -> ?ts_ns:float -> ?enclave:int -> ?request_id:int ->
  cat:category -> name:string -> unit -> unit

(** [push ~cat ~name ()] opens a span at {!now} nested under the
    innermost open span and returns its id; [pop id] closes it,
    stamping its duration from the clock.
    @raise Invalid_argument
      when [id] is not the innermost open span — ill-nested
      instrumentation is a programming error, caught loudly. *)
val push :
  ?track:int -> ?enclave:int -> ?opcode:string -> ?request_id:int ->
  cat:category -> name:string -> unit -> int

(** [pop id] closes the span opened by {!push} (see its contract). *)
val pop : int -> unit

(** Spans opened by {!push} and not yet closed (0 in a well-formed
    trace at rest). *)
val open_spans : unit -> int

(** {2 Inspection and export} *)

(** All retained spans, sorted by start time (ties by id). Spans
    still open appear with the duration they had at the last
    observation. *)
val spans : t -> span list

(** Retained spans (at most tracks × ring capacity). *)
val span_count : t -> int

(** Spans lost to ring-buffer overwrites. *)
val dropped : t -> int

(** Drop every recorded span (rings keep their capacity). *)
val clear : t -> unit

(** Chrome [trace_event] JSON: an object with a ["traceEvents"]
    array of complete ("ph":"X") and instant ("ph":"i") events plus
    thread-name metadata per track. Timestamps are microseconds, as
    the format requires. Loadable in [chrome://tracing] and
    [ui.perfetto.dev]. *)
val to_chrome_json : t -> string

(** {!to_chrome_json} written to [path]. *)
val write_chrome_json : t -> path:string -> unit

(** ASCII rendering: a per-(category, name) aggregation table
    (count, total, mean, share of traced time) followed by a
    flame-style tree aggregated over parent/child name paths. *)
val render_summary : t -> string
