(** Metrics registry: counters, gauges and histograms.

    One registry collects the telemetry the subsystems on both sides
    of the EMS/CS boundary expose — the EMCall gate, the mailboxes,
    the EMS runtimes and schedulers, the memory-encryption engine and
    the fault injector each provide a [publish_metrics] that writes
    its counters into a registry under a dotted-name prefix
    ([emcall.timeouts], [shard0.mailbox.dropped], ...). Histograms
    reuse the percentile machinery of {!Hypertee_util.Stats}, so the
    p50/p99 columns of the rendered report agree with the figures the
    benchmark harness prints.

    Metrics are get-or-create by name: asking twice for the same name
    returns the same instrument; asking for a name that exists with a
    different kind raises [Invalid_argument] — a name collision is a
    programming error, not a runtime condition. *)

type t

(** A fresh, empty registry. *)
val create : unit -> t

(** {2 Counters} — monotone integer totals. *)

type counter

(** [counter t name] — get or create the counter [name]. *)
val counter : t -> ?help:string -> string -> counter

(** [incr c] adds [by] (default 1). *)
val incr : ?by:int -> counter -> unit

(** [set_counter c v] — snapshot publishing: subsystems that already
    keep their own totals write the current value instead of
    replaying increments. *)
val set_counter : counter -> int -> unit

(** Current total. *)
val counter_value : counter -> int

(** {2 Gauges} — instantaneous float values. *)

type gauge

(** [gauge t name] — get or create the gauge [name]. *)
val gauge : t -> ?help:string -> string -> gauge

(** Overwrite the instantaneous value. *)
val set_gauge : gauge -> float -> unit

(** Last value set ([0.] initially). *)
val gauge_value : gauge -> float

(** {2 Histograms} — float sample distributions. *)

type histogram

(** [histogram t name] — get or create the histogram [name]. *)
val histogram : t -> ?help:string -> string -> histogram

(** Record one sample. *)
val observe : histogram -> float -> unit

(** Samples recorded. *)
val histogram_count : histogram -> int

(** [percentile h p] with [p] in \[0, 100\] — delegates to
    {!Hypertee_util.Stats.percentile} (the oracle the tests compare
    against). Raises [Invalid_argument] on an empty histogram. *)
val percentile : histogram -> float -> float

(** Sample mean ([0.] when empty). *)
val histogram_mean : histogram -> float

(** {2 Reporting} *)

(** Registered names, sorted. *)
val names : t -> string list

(** Rendered rows for {!Hypertee_util.Table}: name, kind, count,
    value (total / gauge / mean), p50, p99, help. Counter and gauge
    rows leave the percentile columns as ["-"]. *)
val headers : string list

(** The rows described above, sorted by metric name. *)
val rows : t -> string list list

(** The full registry as an ASCII table. *)
val render : t -> string

(** JSON object keyed by metric name; histograms export count, mean,
    min, max, p50, p99. *)
val to_json : t -> string
