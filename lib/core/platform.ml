module Config = Hypertee_arch.Config
module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Mem_encryption = Hypertee_arch.Mem_encryption
module Ihub = Hypertee_arch.Ihub
module Iommu = Hypertee_arch.Iommu
module Mailbox = Hypertee_arch.Mailbox
module Ptw = Hypertee_arch.Ptw
module Tlb = Hypertee_arch.Tlb
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module Keymgmt = Hypertee_ems.Keymgmt
module Cost = Hypertee_ems.Cost
module Os = Hypertee_cs.Os
module Emcall = Hypertee_cs.Emcall
module Traps = Hypertee_cs.Traps

module Fault = Hypertee_faults.Fault

(* One EMS instance: its runtime (private control structures, pool,
   audit log), its mailbox, and its worker scheduler. The memory
   fabric — physical memory, bitmap, encryption engine, root keys —
   is platform-wide and shared by every shard. *)
type ems_shard = {
  runtime : Runtime.t;
  mailbox : (Types.request, Types.response) Mailbox.t;
  scheduler : Hypertee_ems.Scheduler.t;
}

type t = {
  config : Config.t;
  rng : Hypertee_util.Xrng.t;
  mem : Phys_mem.t;
  bitmap : Bitmap.t;
  mee : Mem_encryption.t;
  ihub : Ihub.t;
  iommu : Iommu.t;
  os : Os.t;
  keys : Keymgmt.t;
  shards : ems_shard array;
  emcall : Emcall.t;
  traps : Traps.t;
  ptws : Ptw.t array;
  engine : Hypertee_crypto.Engine.t;
  cost : Cost.t;
  platform_measurement : bytes;
  faults : Fault.t option;
}

let create ?(seed = 0x4854454531L (* "HTEE1" *)) ?(config = Config.default) ?faults () =
  let shard_count = config.Config.ems_shards in
  if shard_count < 1 then failwith "Platform.create: ems_shards must be >= 1";
  let rng = Hypertee_util.Xrng.create seed in
  let frames = config.Config.memory_mb * Hypertee_util.Units.mib / Hypertee_util.Units.page_size in
  let mem = Phys_mem.create ~frames in
  let bitmap = Bitmap.create mem in
  (* Reserve the EMS private address space (Sec. III-D optimisation 3:
     carved out of physical memory at boot by the initialisation
     logic). *)
  let ems_frames =
    config.Config.ems_memory_mb * Hypertee_util.Units.mib / Hypertee_util.Units.page_size
  in
  (match Phys_mem.find_free mem ~n:ems_frames with
  | Some fs -> List.iter (fun f -> Phys_mem.set_owner mem f Phys_mem.Ems_private) fs
  | None -> failwith "Platform.create: memory too small for EMS carve-out");
  let mee = Mem_encryption.create ~slots:256 in
  let ihub = Ihub.create mem in
  let iommu = Iommu.create () in
  let os = Os.create mem in
  let keys = Keymgmt.provision (Hypertee_util.Xrng.split rng) in
  (* Secure boot (Sec. VI): the BootROM verifies the encrypted EMS
     Runtime against the EEPROM hash, then the CS firmware; the
     resulting platform measurement covers the verified TCB. *)
  let provisioned =
    Hypertee_ems.Boot.provision
      (Hypertee_util.Xrng.split rng)
      ~runtime_image:(Bytes.of_string "hypertee-ems-runtime-v1")
      ~firmware_image:(Bytes.of_string "hypertee-emcall-firmware-v1")
  in
  let platform_measurement =
    match Hypertee_ems.Boot.boot provisioned with
    | Hypertee_ems.Boot.Booted { platform_measurement; _ } -> platform_measurement
    | Hypertee_ems.Boot.Halted { at; reason } ->
      failwith
        (Printf.sprintf "Platform.create: secure boot halted at %s: %s"
           (Hypertee_ems.Boot.stage_name at) reason)
  in
  (* Compile the fault plan into one injector shared by every hook of
     this platform instance. With no plan the hooks stay [None] and
     every fault path is provably dead: no RNG draw, no branch taken,
     byte-identical behaviour. *)
  let injector = Option.map Fault.create faults in
  let install setter target = Option.iter (fun inj -> setter target inj) injector in
  let engine =
    let base =
      if config.Config.crypto_engine then Hypertee_crypto.Engine.default_hardware
      else Hypertee_crypto.Engine.default_software
    in
    (* The defaults are shared constants: only a private copy may
       carry an injector. *)
    match injector with None -> base | Some _ -> Hypertee_crypto.Engine.copy base
  in
  install Hypertee_crypto.Engine.set_fault_injector engine;
  install Mem_encryption.set_fault_injector mee;
  let cost = Cost.create ~ems:(Config.ems_core config.Config.ems_kind) ~engine in
  (* EMS shards: shard [s] assigns enclave/shm ids from the residue
     class s+1 (mod shard_count), so [(id-1) mod shard_count] is the
     affinity function the gate routes by. Built in index order so
     the RNG split sequence is deterministic — and, for one shard,
     identical to the historical single-EMS platform. *)
  let make_shard s =
    let runtime =
      Runtime.create ~first_enclave_id:(s + 1) ~first_shm_id:(s + 1) ~id_stride:shard_count
        ~rng:(Hypertee_util.Xrng.split rng)
        ~mem ~bitmap ~mee ~keys ~cost
        ~os_request:(fun ~n -> Os.pool_request os ~n)
        ~os_return:(fun ~frames -> Os.pool_return os ~frames)
        ~platform_measurement ()
    in
    let mailbox = Mailbox.create ~depth:256 () in
    install Mailbox.set_fault_injector mailbox;
    (* EMS workers serve the request queue in randomized order at
       primitive granularity (Fig. 3 / Sec. III-C). *)
    let scheduler =
      Hypertee_ems.Scheduler.create (Hypertee_util.Xrng.split rng)
        ~workers:config.Config.ems_cores
    in
    install Hypertee_ems.Scheduler.set_fault_injector scheduler;
    { runtime; mailbox; scheduler }
  in
  let shards =
    let rec build s acc =
      if s = shard_count then Array.of_list (List.rev acc)
      else build (s + 1) (make_shard s :: acc)
    in
    build 0 []
  in
  (* A doorbell on shard [sh] drains *all* pending requests of that
     shard's mailbox into the scheduler, dispatches, then runs the
     watchdog: one ring serves a whole batch. *)
  let ems_service sh () =
    let audit = Runtime.audit sh.runtime in
    let rec enqueue () =
      match Mailbox.recv_request sh.mailbox with
      | None -> ()
      | Some packet ->
        Hypertee_ems.Scheduler.submit sh.scheduler ~id:packet.Mailbox.request_id (fun () ->
            let response =
              Runtime.handle sh.runtime ~sender:packet.Mailbox.sender_enclave
                packet.Mailbox.body
            in
            match
              Mailbox.send_response sh.mailbox ~request_id:packet.Mailbox.request_id response
            with
            | Ok () -> ()
            | Error `Unknown_or_answered ->
              (* A confused or re-dispatched worker answering twice
                 must never reach a caller — or crash the platform. *)
              Hypertee_ems.Audit.record_fault audit ~site:"mailbox"
                ~detail:
                  (Printf.sprintf "duplicate response for request %d suppressed"
                     packet.Mailbox.request_id)
                ~recovered:true);
        enqueue ()
    in
    enqueue ();
    ignore (Hypertee_ems.Scheduler.dispatch sh.scheduler);
    (* Watchdog sweep (runs on every doorbell): restart dead/stalled
       workers and re-dispatch their in-flight requests under the
       original ids, so the request/response binding survives. *)
    match Hypertee_ems.Scheduler.watchdog_scan sh.scheduler with
    | { Hypertee_ems.Scheduler.dead_workers = 0; redispatched = [] } -> ()
    | { Hypertee_ems.Scheduler.dead_workers; redispatched } ->
      Hypertee_ems.Audit.record_fault audit ~site:"ems-worker"
        ~detail:
          (Printf.sprintf "watchdog restarted %d worker(s), re-dispatched request(s) %s"
             dead_workers
             (String.concat "," (List.map string_of_int redispatched)))
        ~recovered:true;
      ignore (Hypertee_ems.Scheduler.dispatch sh.scheduler)
  in
  (* Affinity routing, inside the gate: a request acting on enclave
     [id] goes to the shard that owns the id's residue class;
     requests naming no enclave (ECREATE, EWB) round-robin across
     shards, which together with each shard's id stride spreads new
     enclaves evenly. *)
  let rr_cursor = ref 0 in
  let route request =
    match Runtime.enclave_of_request request with
    | Some id when id > 0 -> (id - 1) mod shard_count
    | _ ->
      let s = !rr_cursor in
      rr_cursor := (s + 1) mod shard_count;
      s
  in
  let gate_shards =
    Array.map
      (fun sh -> { Emcall.mailbox = sh.mailbox; Emcall.ems_service = ems_service sh })
      shards
  in
  let emcall =
    Emcall.create_sharded
      ~rng:(Hypertee_util.Xrng.split rng)
      ~transport:config.Config.transport ~shards:gate_shards ~route
      ~service_ns:(fun request -> Runtime.service_ns shards.(0).runtime request)
      ()
  in
  install Emcall.set_fault_injector emcall;
  let traps = Traps.create emcall in
  let ptws =
    Array.init config.Config.cs_cores (fun _ ->
        Ptw.create (Tlb.create ~entries:Config.cs_core.Config.dtlb_entries) ~bitmap)
  in
  let t =
    {
      config;
      rng;
      mem;
      bitmap;
      mee;
      ihub;
      iommu;
      os;
      keys;
      shards;
      emcall;
      traps;
      ptws;
      engine;
      cost;
      platform_measurement;
      faults = injector;
    }
  in
  (* EMCall flushes every core's TLB on context switches and bitmap
     updates. *)
  Array.iter (fun ptw -> Emcall.register_tlb_flush_hook emcall (fun () -> Tlb.flush (Ptw.tlb ptw))) ptws;
  t

let config t = t.config
let os t = t.os
let mem t = t.mem
let rng t = t.rng
let platform_measurement t = t.platform_measurement
let ek_public t = Keymgmt.ek_public t.keys
let ak_public t = Keymgmt.ak_public t.keys
let invoke t ~caller request = Emcall.invoke t.emcall ~caller request
let invoke_timed t ~caller request = Emcall.invoke_timed t.emcall ~caller request
let invoke_batch t requests = Emcall.invoke_batch t.emcall requests
let batch_overhead_ns t ~batch = Emcall.per_call_overhead_ns t.emcall ~batch
let traps t = t.traps
let ptw t ~core = t.ptws.(core)
let shard_count t = Array.length t.shards

let shard_of_enclave t enclave =
  if enclave > 0 then (enclave - 1) mod Array.length t.shards else 0

(* Enclave lookups must follow the same affinity the gate routes by. *)
let owning_runtime t enclave = t.shards.(shard_of_enclave t enclave).runtime

type host_fault =
  | Fault of Ptw.fault
  | Hub_denied of Ihub.denial
  | Integrity_violation

let host_access t ~table ~vpn ~access k =
  let ptw = t.ptws.(0) in
  match Ptw.translate ptw ~table ~vpn ~access with
  | Error f -> Error (Fault f)
  | Ok outcome -> (
    let dir = if access = Ptw.Write then Ihub.Store else Ihub.Load in
    match Ihub.check t.ihub ~initiator:Ihub.Cs_software ~direction:dir ~frame:outcome.Ptw.frame with
    | Error d -> Error (Hub_denied d)
    | Ok () -> k outcome)

let host_read t ~table ~vpn ~off ~len =
  host_access t ~table ~vpn ~access:Ptw.Read (fun outcome ->
      (* Decrypt only the requested range; no intermediate page copy. *)
      match
        Mem_encryption.read_range t.mee t.mem ~key_id:outcome.Ptw.key_id
          ~frame:outcome.Ptw.frame ~off ~len
      with
      | plaintext -> Ok plaintext
      | exception Mem_encryption.Integrity_violation _ -> Error Integrity_violation)

let host_write t ~table ~vpn ~off data =
  host_access t ~table ~vpn ~access:Ptw.Write (fun outcome ->
      (* Read-modify-write through the engine, in place in DRAM. *)
      match
        Mem_encryption.update_range t.mee t.mem ~key_id:outcome.Ptw.key_id
          ~frame:outcome.Ptw.frame ~off ~src:data ~src_off:0 ~len:(Bytes.length data)
      with
      | () -> Ok ()
      | exception Mem_encryption.Integrity_violation _ -> Error Integrity_violation)

let dma_read t ~channel ~frame =
  match Ihub.check t.ihub ~initiator:(Ihub.Dma channel) ~direction:Ihub.Load ~frame with
  | Error d -> Error (Hub_denied d)
  | Ok () -> Ok (Phys_mem.read t.mem ~frame)

let dma_write t ~channel ~frame data =
  match Ihub.check t.ihub ~initiator:(Ihub.Dma channel) ~direction:Ihub.Store ~frame with
  | Error d -> Error (Hub_denied d)
  | Ok () ->
    Phys_mem.write t.mem ~frame data;
    Ok ()

let with_measured_enclave t ~enclave k =
  match Runtime.find_enclave (owning_runtime t enclave) enclave with
  | None -> Error "no such enclave"
  | Some e -> (
    match e.Hypertee_ems.Enclave.measurement with
    | None -> Error "enclave not measured"
    | Some m -> k m)

let seal t ~enclave data =
  with_measured_enclave t ~enclave (fun m ->
      Ok (Hypertee_ems.Attest.seal t.keys ~enclave_measurement:m data))

let unseal t ~enclave blob =
  with_measured_enclave t ~enclave (fun m ->
      match Hypertee_ems.Attest.unseal t.keys ~enclave_measurement:m blob with
      | Some data -> Ok data
      | None -> Error "unseal failed: tampered blob or wrong enclave")

(* One call gathers the whole platform's telemetry: the gate, every
   shard's mailbox/scheduler/runtime, the encryption engine and the
   fault injector each publish under their dotted prefix. *)
let publish_metrics t registry =
  Emcall.publish_metrics t.emcall registry;
  Mem_encryption.publish_metrics t.mee registry;
  Array.iteri
    (fun s sh ->
      let prefix name = Printf.sprintf "shard%d.%s." s name in
      Mailbox.publish_metrics sh.mailbox ~prefix:(prefix "mailbox") registry;
      Hypertee_ems.Scheduler.publish_metrics sh.scheduler ~prefix:(prefix "sched") registry;
      Runtime.publish_metrics sh.runtime ~prefix:(prefix "ems") registry)
    t.shards;
  Option.iter (fun inj -> Fault.publish_metrics inj registry) t.faults

(* Correctness checking (lib/check): sweep every redundant view of
   the platform state against the others, and optionally shadow the
   gate with a differential oracle. *)
let check ?deep t =
  Hypertee_check.Invariant.check ?deep ~mem:t.mem ~bitmap:t.bitmap ~mee:t.mee
    ~runtimes:(Array.map (fun sh -> sh.runtime) t.shards)
    ()

let attach_oracle t =
  let oracle = Hypertee_check.Oracle.create ~shards:(Array.length t.shards) () in
  Emcall.set_tap t.emcall (Hypertee_check.Oracle.tap oracle);
  oracle

let detach_oracle t = Emcall.clear_tap t.emcall

module Internals = struct
  let runtime t = t.shards.(0).runtime
  let mem t = t.mem
  let runtimes t = Array.map (fun sh -> sh.runtime) t.shards
  let runtime_of_shard t s = t.shards.(s).runtime
  let emcall t = t.emcall
  let bitmap t = t.bitmap
  let mee t = t.mee
  let ihub t = t.ihub
  let iommu t = t.iommu
  let keys t = t.keys
  let cost t = t.cost
  let engine t = t.engine
  let scheduler t = t.shards.(0).scheduler
  let schedulers t = Array.map (fun sh -> sh.scheduler) t.shards
  let faults t = t.faults
end
