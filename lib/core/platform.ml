module Config = Hypertee_arch.Config
module Phys_mem = Hypertee_arch.Phys_mem
module Bitmap = Hypertee_arch.Bitmap
module Mem_encryption = Hypertee_arch.Mem_encryption
module Ihub = Hypertee_arch.Ihub
module Iommu = Hypertee_arch.Iommu
module Mailbox = Hypertee_arch.Mailbox
module Ptw = Hypertee_arch.Ptw
module Tlb = Hypertee_arch.Tlb
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module Keymgmt = Hypertee_ems.Keymgmt
module Cost = Hypertee_ems.Cost
module Os = Hypertee_cs.Os
module Emcall = Hypertee_cs.Emcall
module Traps = Hypertee_cs.Traps

module Fault = Hypertee_faults.Fault

(* One EMS instance: its runtime (private control structures, pool,
   audit log), its mailbox, and its worker scheduler. The memory
   fabric — physical memory, bitmap, encryption engine, root keys —
   is platform-wide and shared by every shard. [runtime] and
   [scheduler] are mutable because crash recovery cold-restarts a
   shard: the EMS-private state dies with the shard and is rebuilt
   fresh, while the mailbox (fabric hardware) survives. *)
type ems_shard = {
  mutable runtime : Runtime.t;
  mailbox : (Types.request, Types.response) Mailbox.t;
  mutable scheduler : Hypertee_ems.Scheduler.t;
}

type t = {
  config : Config.t;
  rng : Hypertee_util.Xrng.t;
  mem : Phys_mem.t;
  bitmap : Bitmap.t;
  mee : Mem_encryption.t;
  ihub : Ihub.t;
  iommu : Iommu.t;
  os : Os.t;
  keys : Keymgmt.t;
  shards : ems_shard array;
  emcall : Emcall.t;
  traps : Traps.t;
  ptws : Ptw.t array;
  engine : Hypertee_crypto.Engine.t;
  cost : Cost.t;
  platform_measurement : bytes;
  faults : Fault.t option;
  chans : Hypertee_ems.Chan.t;
      (* platform-global secure-channel fabric, shared by every shard
         (the cross-shard transport); survives shard death — recovery
         reaps only the dead shard's home channels *)
  (* Elasticity + recovery plane. *)
  journals : Hypertee_ems.Journal.t array;  (* per shard, survives shard death *)
  alive : bool array;  (* doorbells of a dead shard are ignored *)
  route_overrides : (Types.enclave_id, int) Hashtbl.t;
      (* migrated ids: enclave -> hosting shard, overriding residue *)
  services : (unit -> unit) array;  (* per-shard doorbell, for draining *)
  recovery_rng : Hypertee_util.Xrng.t;
      (* seeded independently of the master stream so recovery and
         migration leave every pre-existing draw sequence intact *)
  exec_mode : Hypertee_sim.Exec.mode;
  pool : Hypertee_util.Domain_pool.t option;  (* Some iff exec_mode is parallel *)
  mutable oracle : Hypertee_check.Oracle.t option;
}

let create ?(seed = 0x4854454531L (* "HTEE1" *)) ?(config = Config.default) ?faults () =
  let shard_count = config.Config.ems_shards in
  if shard_count < 1 then failwith "Platform.create: ems_shards must be >= 1";
  let rng = Hypertee_util.Xrng.create seed in
  let frames = config.Config.memory_mb * Hypertee_util.Units.mib / Hypertee_util.Units.page_size in
  let mem = Phys_mem.create ~frames in
  let bitmap = Bitmap.create mem in
  (* Reserve the EMS private address space (Sec. III-D optimisation 3:
     carved out of physical memory at boot by the initialisation
     logic). *)
  let ems_frames =
    config.Config.ems_memory_mb * Hypertee_util.Units.mib / Hypertee_util.Units.page_size
  in
  (match Phys_mem.find_free mem ~n:ems_frames with
  | Some fs -> List.iter (fun f -> Phys_mem.set_owner mem f Phys_mem.Ems_private) fs
  | None -> failwith "Platform.create: memory too small for EMS carve-out");
  let mee = Mem_encryption.create ~slots:256 () in
  let ihub = Ihub.create mem in
  let iommu = Iommu.create () in
  let os = Os.create mem in
  let keys = Keymgmt.provision (Hypertee_util.Xrng.split rng) in
  (* Secure boot (Sec. VI): the BootROM verifies the encrypted EMS
     Runtime against the EEPROM hash, then the CS firmware; the
     resulting platform measurement covers the verified TCB. *)
  let provisioned =
    Hypertee_ems.Boot.provision
      (Hypertee_util.Xrng.split rng)
      ~runtime_image:(Bytes.of_string "hypertee-ems-runtime-v1")
      ~firmware_image:(Bytes.of_string "hypertee-emcall-firmware-v1")
  in
  let platform_measurement =
    match Hypertee_ems.Boot.boot provisioned with
    | Hypertee_ems.Boot.Booted { platform_measurement; _ } -> platform_measurement
    | Hypertee_ems.Boot.Halted { at; reason } ->
      failwith
        (Printf.sprintf "Platform.create: secure boot halted at %s: %s"
           (Hypertee_ems.Boot.stage_name at) reason)
  in
  (* Compile the fault plan into one injector shared by every hook of
     this platform instance. With no plan the hooks stay [None] and
     every fault path is provably dead: no RNG draw, no branch taken,
     byte-identical behaviour. *)
  let injector = Option.map Fault.create faults in
  let install setter target = Option.iter (fun inj -> setter target inj) injector in
  let engine =
    let base =
      if config.Config.crypto_engine then Hypertee_crypto.Engine.default_hardware
      else Hypertee_crypto.Engine.default_software
    in
    (* The defaults are shared constants: only a private copy may
       carry an injector. *)
    match injector with None -> base | Some _ -> Hypertee_crypto.Engine.copy base
  in
  install Hypertee_crypto.Engine.set_fault_injector engine;
  install Mem_encryption.set_fault_injector mee;
  let cost = Cost.create ~ems:(Config.ems_core config.Config.ems_kind) ~engine in
  (* EMS shards: shard [s] assigns enclave/shm ids from the residue
     class s+1 (mod shard_count), so [(id-1) mod shard_count] is the
     affinity function the gate routes by. Built in index order so
     the RNG split sequence is deterministic — and, for one shard,
     identical to the historical single-EMS platform. *)
  (* Recovery plane, created before the shards so the service
     closures can consult it. The journals belong to the platform,
     not to the runtimes they describe — they must survive a shard's
     death. *)
  let journals = Array.init shard_count (fun _ -> Hypertee_ems.Journal.create ()) in
  let alive = Array.make shard_count true in
  let route_overrides = Hashtbl.create 8 in
  (* Secure-channel fabric: one mutex-guarded table every shard
     shares, with per-shard id minting (docs/PROTOCOL.md §2). The
     fault injector hooks its queue-push path (Chan_corrupt /
     Chan_truncate / Chan_reorder). *)
  let chans = Hypertee_ems.Chan.create ~shards:shard_count in
  Hypertee_ems.Chan.set_injector chans injector;
  let wire_journal s runtime =
    Runtime.set_recorder runtime (fun ~sender request response ->
        Hypertee_ems.Journal.record journals.(s) ~sender request response);
    Runtime.set_containment_recorder runtime (fun victim ->
        Hypertee_ems.Journal.record_containment journals.(s) ~victim)
  in
  let make_shard s =
    let runtime =
      Runtime.create ~first_enclave_id:(s + 1) ~first_shm_id:(s + 1) ~id_stride:shard_count
        ~chans
        ~rng:(Hypertee_util.Xrng.split rng)
        ~mem ~bitmap ~mee ~keys ~cost
        ~os_request:(fun ~n -> Os.pool_request os ~n)
        ~os_return:(fun ~frames -> Os.pool_return os ~frames)
        ~platform_measurement ()
    in
    wire_journal s runtime;
    let mailbox = Mailbox.create ~depth:256 () in
    install Mailbox.set_fault_injector mailbox;
    (* EMS workers serve the request queue in randomized order at
       primitive granularity (Fig. 3 / Sec. III-C). *)
    let scheduler =
      Hypertee_ems.Scheduler.create
        ~track:(Hypertee_obs.Trace.track_ems s)
        (Hypertee_util.Xrng.split rng)
        ~workers:config.Config.ems_cores
    in
    install Hypertee_ems.Scheduler.set_fault_injector scheduler;
    { runtime; mailbox; scheduler }
  in
  let shards =
    let rec build s acc =
      if s = shard_count then Array.of_list (List.rev acc)
      else build (s + 1) (make_shard s :: acc)
    in
    build 0 []
  in
  (* A doorbell on shard [sh] drains *all* pending requests of that
     shard's mailbox into the scheduler, dispatches, then runs the
     watchdog: one ring serves a whole batch. A dead shard ignores
     its doorbell entirely — requests queue in the (hardware)
     mailbox, the gate's polls go unanswered and surface as clean
     [Timeout]s, and whatever queued during the outage is served
     after recovery. *)
  let ems_service s sh () =
    if not alive.(s) then ()
    else
    let audit = Runtime.audit sh.runtime in
    let rec enqueue () =
      match Mailbox.recv_request sh.mailbox with
      | None -> ()
      | Some packet ->
        Hypertee_ems.Scheduler.submit sh.scheduler ~id:packet.Mailbox.request_id (fun () ->
            let response =
              Runtime.handle sh.runtime ~sender:packet.Mailbox.sender_enclave
                packet.Mailbox.body
            in
            match
              Mailbox.send_response sh.mailbox ~request_id:packet.Mailbox.request_id response
            with
            | Ok () -> ()
            | Error `Unknown_or_answered ->
              (* A confused or re-dispatched worker answering twice
                 must never reach a caller — or crash the platform. *)
              Hypertee_ems.Audit.record_fault audit ~site:"mailbox"
                ~detail:
                  (Printf.sprintf "duplicate response for request %d suppressed"
                     packet.Mailbox.request_id)
                ~recovered:true);
        enqueue ()
    in
    enqueue ();
    ignore (Hypertee_ems.Scheduler.dispatch sh.scheduler);
    (* Watchdog sweep (runs on every doorbell): restart dead/stalled
       workers and re-dispatch their in-flight requests under the
       original ids, so the request/response binding survives. *)
    match Hypertee_ems.Scheduler.watchdog_scan sh.scheduler with
    | { Hypertee_ems.Scheduler.dead_workers = 0; redispatched = [] } -> ()
    | { Hypertee_ems.Scheduler.dead_workers; redispatched } ->
      Hypertee_ems.Audit.record_fault audit ~site:"ems-worker"
        ~detail:
          (Printf.sprintf "watchdog restarted %d worker(s), re-dispatched request(s) %s"
             dead_workers
             (String.concat "," (List.map string_of_int redispatched)))
        ~recovered:true;
      ignore (Hypertee_ems.Scheduler.dispatch sh.scheduler)
  in
  (* Affinity routing, inside the gate: a request acting on enclave
     [id] goes to the shard that owns the id's residue class — unless
     a migration re-routed the id (override table, flipped atomically
     at migration commit); requests naming no enclave (ECREATE, EWB)
     round-robin across shards, which together with each shard's id
     stride spreads new enclaves evenly. *)
  let rr_cursor = ref 0 in
  let route request =
    match request with
    (* Channel data plane: the chan id's residue class is the home
       shard — no lookup, no override (channels never migrate). *)
    | Types.Chan_send { chan; _ } | Types.Chan_recv { chan } | Types.Chan_close { chan }
      when chan > 0 ->
      (chan - 1) mod shard_count
    (* Warm-pool lookup: the measurement names its home shard — the
       only shard ERETIRE parks that image on. *)
    | Types.Warm_create { measurement } -> Types.warm_home ~shards:shard_count measurement
    | _ -> (
      match Runtime.enclave_of_request request with
      | Some id when id > 0 -> (
        match Hashtbl.find_opt route_overrides id with
        | Some s -> s
        | None -> (id - 1) mod shard_count)
      | _ ->
        let s = !rr_cursor in
        rr_cursor := (s + 1) mod shard_count;
        s)
  in
  let services = Array.mapi (fun s sh -> ems_service s sh) shards in
  let gate_shards =
    Array.mapi
      (fun s sh -> { Emcall.mailbox = sh.mailbox; Emcall.ems_service = services.(s) })
      shards
  in
  let emcall =
    Emcall.create_sharded
      ~rng:(Hypertee_util.Xrng.split rng)
      ~transport:config.Config.transport ~shards:gate_shards ~route
      ~service_ns:(fun request -> Runtime.service_ns shards.(0).runtime request)
      ()
  in
  install Emcall.set_fault_injector emcall;
  (* Execution mode (Exec): [config.domains] — or the HYPERTEE_EXEC
     override — selects deterministic single-domain execution or a
     worker pool that fans out the gate's per-shard doorbells and the
     MEE's bulk page pipelines. Per-shard semantics are identical in
     both modes; deterministic mode never touches a pool. *)
  let exec_mode =
    Hypertee_sim.Exec.resolve
      ~requested:
        (if config.Config.domains > 1 then
           Hypertee_sim.Exec.Parallel { domains = config.Config.domains }
         else Hypertee_sim.Exec.Deterministic)
  in
  let pool =
    match Hypertee_sim.Exec.domains exec_mode with
    | n when n > 1 -> Some (Hypertee_util.Domain_pool.shared ~domains:n)
    | _ -> None
  in
  Option.iter
    (fun p ->
      Emcall.set_pool emcall p;
      Mem_encryption.set_pool mee p)
    pool;
  (* Expose each shard's realized drain order to the gate (and through
     it to the oracle): the closure reads the *current* scheduler, so
     a crash-recovered shard's fresh scheduler is picked up
     transparently. *)
  Emcall.set_drain_order_probe emcall (fun i ->
      List.map fst (Hypertee_ems.Scheduler.execution_log shards.(i).scheduler));
  let traps = Traps.create emcall in
  let ptws =
    Array.init config.Config.cs_cores (fun _ ->
        Ptw.create (Tlb.create ~entries:Config.cs_core.Config.dtlb_entries) ~bitmap)
  in
  let t =
    {
      config;
      rng;
      mem;
      bitmap;
      mee;
      ihub;
      iommu;
      os;
      keys;
      shards;
      emcall;
      traps;
      ptws;
      engine;
      cost;
      platform_measurement;
      faults = injector;
      chans;
      journals;
      alive;
      route_overrides;
      services;
      (* Seeded from [seed] but NOT split from the master stream:
         session setup, verifiers and CVMs draw from [rng] after
         [create] returns, so recovery/migration must never perturb
         that sequence. *)
      recovery_rng = Hypertee_util.Xrng.create (Int64.add seed 0x7EC0L);
      exec_mode;
      pool;
      oracle = None;
    }
  in
  (* EMCall flushes every core's TLB on context switches and bitmap
     updates. *)
  Array.iter (fun ptw -> Emcall.register_tlb_flush_hook emcall (fun () -> Tlb.flush (Ptw.tlb ptw))) ptws;
  t

let config t = t.config
let exec_mode t = t.exec_mode
let pool t = t.pool
let shutdown t = Option.iter Hypertee_util.Domain_pool.shutdown t.pool
let os t = t.os
let mem t = t.mem
let rng t = t.rng
let platform_measurement t = t.platform_measurement
let ek_public t = Keymgmt.ek_public t.keys
let ak_public t = Keymgmt.ak_public t.keys
let invoke t ~caller request = Emcall.invoke t.emcall ~caller request
let invoke_timed t ~caller request = Emcall.invoke_timed t.emcall ~caller request
let invoke_batch t requests = Emcall.invoke_batch t.emcall requests
let batch_overhead_ns t ~batch = Emcall.per_call_overhead_ns t.emcall ~batch
let traps t = t.traps
let ptw t ~core = t.ptws.(core)
let shard_count t = Array.length t.shards

let shard_of_enclave t enclave =
  if enclave <= 0 then 0
  else
    match Hashtbl.find_opt t.route_overrides enclave with
    | Some s -> s
    | None -> (enclave - 1) mod Array.length t.shards

(* Enclave lookups must follow the same affinity the gate routes by. *)
let owning_runtime t enclave = t.shards.(shard_of_enclave t enclave).runtime

type host_fault =
  | Fault of Ptw.fault
  | Hub_denied of Ihub.denial
  | Integrity_violation

let host_access t ~table ~vpn ~access k =
  let ptw = t.ptws.(0) in
  match Ptw.translate ptw ~table ~vpn ~access with
  | Error f -> Error (Fault f)
  | Ok outcome -> (
    let dir = if access = Ptw.Write then Ihub.Store else Ihub.Load in
    match Ihub.check t.ihub ~initiator:Ihub.Cs_software ~direction:dir ~frame:outcome.Ptw.frame with
    | Error d -> Error (Hub_denied d)
    | Ok () -> k outcome)

let host_read t ~table ~vpn ~off ~len =
  host_access t ~table ~vpn ~access:Ptw.Read (fun outcome ->
      (* Decrypt only the requested range; no intermediate page copy. *)
      match
        Mem_encryption.read_range t.mee t.mem ~key_id:outcome.Ptw.key_id
          ~frame:outcome.Ptw.frame ~off ~len
      with
      | plaintext -> Ok plaintext
      | exception Mem_encryption.Integrity_violation _ -> Error Integrity_violation)

let host_write t ~table ~vpn ~off data =
  host_access t ~table ~vpn ~access:Ptw.Write (fun outcome ->
      (* Read-modify-write through the engine, in place in DRAM. *)
      match
        Mem_encryption.update_range t.mee t.mem ~key_id:outcome.Ptw.key_id
          ~frame:outcome.Ptw.frame ~off ~src:data ~src_off:0 ~len:(Bytes.length data)
      with
      | () -> Ok ()
      | exception Mem_encryption.Integrity_violation _ -> Error Integrity_violation)

let dma_read t ~channel ~frame =
  match Ihub.check t.ihub ~initiator:(Ihub.Dma channel) ~direction:Ihub.Load ~frame with
  | Error d -> Error (Hub_denied d)
  | Ok () -> Ok (Phys_mem.read t.mem ~frame)

let dma_write t ~channel ~frame data =
  match Ihub.check t.ihub ~initiator:(Ihub.Dma channel) ~direction:Ihub.Store ~frame with
  | Error d -> Error (Hub_denied d)
  | Ok () ->
    Phys_mem.write t.mem ~frame data;
    Ok ()

let with_measured_enclave t ~enclave k =
  match Runtime.find_enclave (owning_runtime t enclave) enclave with
  | None -> Error "no such enclave"
  | Some e -> (
    match e.Hypertee_ems.Enclave.measurement with
    | None -> Error "enclave not measured"
    | Some m -> k m)

let seal t ~enclave data =
  with_measured_enclave t ~enclave (fun m ->
      Ok (Hypertee_ems.Attest.seal t.keys ~enclave_measurement:m data))

let unseal t ~enclave blob =
  with_measured_enclave t ~enclave (fun m ->
      match Hypertee_ems.Attest.unseal t.keys ~enclave_measurement:m blob with
      | Some data -> Ok data
      | None -> Error "unseal failed: tampered blob or wrong enclave")

(* One call gathers the whole platform's telemetry: the gate, every
   shard's mailbox/scheduler/runtime, the encryption engine and the
   fault injector each publish under their dotted prefix. *)
let publish_metrics t registry =
  Emcall.publish_metrics t.emcall registry;
  Mem_encryption.publish_metrics t.mee registry;
  Array.iteri
    (fun s sh ->
      let prefix name = Printf.sprintf "shard%d.%s." s name in
      Mailbox.publish_metrics sh.mailbox ~prefix:(prefix "mailbox") registry;
      Hypertee_ems.Scheduler.publish_metrics sh.scheduler ~prefix:(prefix "sched") registry;
      Runtime.publish_metrics sh.runtime ~prefix:(prefix "ems") registry)
    t.shards;
  Hypertee_ems.Chan.publish_metrics t.chans registry;
  Option.iter (fun inj -> Fault.publish_metrics inj registry) t.faults

(* Correctness checking (lib/check): sweep every redundant view of
   the platform state against the others, and optionally shadow the
   gate with a differential oracle. *)
let set_admission t ~rate_per_s ~burst = Emcall.set_admission t.emcall ~rate_per_s ~burst
let clear_admission t = Emcall.clear_admission t.emcall
let advance_admission_ns t ns = Emcall.advance_admission_ns t.emcall ns
let shed_count t = Emcall.shed t.emcall

let check ?deep t =
  Hypertee_check.Invariant.check ?deep ?faults:t.faults ~chans:t.chans ~mem:t.mem
    ~bitmap:t.bitmap ~mee:t.mee
    ~runtimes:(Array.map (fun sh -> sh.runtime) t.shards)
    ()

let attach_oracle t =
  let oracle = Hypertee_check.Oracle.create ~shards:(Array.length t.shards) () in
  Emcall.set_tap t.emcall (Hypertee_check.Oracle.tap oracle);
  t.oracle <- Some oracle;
  oracle

let detach_oracle t =
  t.oracle <- None;
  Emcall.clear_tap t.emcall

(* ------------------------------------------------------------------ *)
(* Elasticity and recovery: sealed checkpoint/restore, live cross-
   shard migration, crash-consistent shard recovery.                   *)
(* ------------------------------------------------------------------ *)

module Journal = Hypertee_ems.Journal
module Svc_migrate = Hypertee_ems.Svc_migrate
module Audit = Hypertee_ems.Audit

let shard_alive t s =
  if s < 0 || s >= Array.length t.shards then invalid_arg "Platform.shard_alive";
  t.alive.(s)

let journal t s =
  if s < 0 || s >= Array.length t.shards then invalid_arg "Platform.journal";
  t.journals.(s)

(* The oracle learns about enclaves that (re)appear outside the gate
   (restore, migration commit) through [note_migration]; without it a
   later gate request on the id would be flagged as acting on an
   enclave that was never created. *)
let notify_oracle t ~enclave ~shard =
  Option.iter
    (fun oracle -> Hypertee_check.Oracle.note_migration oracle ~enclave ~shard)
    t.oracle

let checkpoint t ~enclave =
  let s = shard_of_enclave t enclave in
  if not t.alive.(s) then Error (Types.Bad_state "hosting shard is down")
  else Svc_migrate.checkpoint (Runtime.state t.shards.(s).runtime) ~enclave

let restore ?(shard = 0) t blob =
  if shard < 0 || shard >= Array.length t.shards then invalid_arg "Platform.restore";
  if not t.alive.(shard) then Error (Types.Bad_state "shard is down")
  else begin
    let rt = t.shards.(shard).runtime in
    match Svc_migrate.restore (Runtime.state rt) blob with
    | Ok id ->
      Journal.record_restore t.journals.(shard) ~snapshot:blob ~id;
      if (id - 1) mod Array.length t.shards <> shard then
        Hashtbl.replace t.route_overrides id shard;
      notify_oracle t ~enclave:id ~shard;
      Audit.record_fault (Runtime.audit rt) ~site:"restore"
        ~detail:(Printf.sprintf "enclave %d restored from sealed snapshot" id)
        ~recovered:true;
      Ok id
    | Error e ->
      Audit.record_fault (Runtime.audit rt) ~site:"restore"
        ~detail:("restore rejected: " ^ Types.error_message e)
        ~recovered:false;
      Error e
  end

(* --- Live cross-shard migration --- *)

type migration_phase = Quiesced | Checkpointed | Transferred | Restored | Attested | Committed

let migration_phase_name = function
  | Quiesced -> "quiesced"
  | Checkpointed -> "checkpointed"
  | Transferred -> "transferred"
  | Restored -> "restored"
  | Attested -> "attested"
  | Committed -> "committed"

type migration_outcome =
  | Migrated
  | Migration_aborted of string
  | Migration_crashed of { after : migration_phase; owner : [ `Source | `Target ] }

let migrate ?crash_after t ~enclave ~target =
  let n = Array.length t.shards in
  if target < 0 || target >= n then invalid_arg "Platform.migrate: no such shard";
  let source = shard_of_enclave t enclave in
  let src_rt = t.shards.(source).runtime in
  let tgt_rt = t.shards.(target).runtime in
  let audit_both ~detail ~recovered =
    List.iter
      (fun rt -> Audit.record_fault (Runtime.audit rt) ~site:"migration" ~detail ~recovered)
      [ src_rt; tgt_rt ]
  in
  let abort reason =
    audit_both
      ~detail:(Printf.sprintf "migration of enclave %d aborted: %s" enclave reason)
      ~recovered:false;
    Migration_aborted reason
  in
  (* Crash injection between phases: either the scripted [crash_after]
     point (crash-at-every-step tests) or the [Migration_crash] fault
     site. Recovery: until the commit point the source copy is
     authoritative (the route override has not flipped), so any
     half-built target copy is torn down; after commit the target owns
     the enclave and the source copy is already gone. Exactly one of
     the two copies survives every crash point. *)
  let crashes_after phase =
    (match crash_after with Some p -> p = phase | None -> false)
    || match t.faults with Some inj -> Fault.fire inj Fault.Migration_crash | None -> false
  in
  let destroy_target_copy () =
    ignore (Hypertee_ems.Svc_lifecycle.destroy (Runtime.state tgt_rt) ~enclave)
  in
  let crashed ?(target_copy = false) phase =
    if target_copy then destroy_target_copy ();
    let owner = if phase = Committed then `Target else `Source in
    audit_both
      ~detail:
        (Printf.sprintf "migration of enclave %d crashed after %s; %s copy survives" enclave
           (migration_phase_name phase)
           (match owner with `Source -> "source" | `Target -> "target"))
      ~recovered:true;
    Migration_crashed { after = phase; owner }
  in
  if not t.alive.(source) then abort "source shard is down"
  else if not t.alive.(target) then abort "target shard is down"
  else if source = target then abort "enclave already hosted by target shard"
  else begin
    (* Phase 1: quiesce — drain the source shard's doorbell so no
       request on this enclave is in flight inside the EMS. Requests
       arriving at the gate after this point route by the override
       table, which still names the source until commit. *)
    t.services.(source) ();
    if crashes_after Quiesced then crashed Quiesced
    else begin
      (* Phase 2: sealed checkpoint on the source. *)
      match Svc_migrate.checkpoint (Runtime.state src_rt) ~enclave with
      | Error e -> abort ("checkpoint failed: " ^ Types.error_message e)
      | Ok blob ->
        if crashes_after Checkpointed then crashed Checkpointed
        else begin
          (* Phase 3: transfer over the fabric. The snapshot seal
             (HMAC + Merkle root) is the transport integrity check;
             a corrupted copy is detected and retransmitted, bounded
             like the gate's retry budget. *)
          let corrupt copy =
            match t.faults with
            | Some inj when Bytes.length copy > 0 && Fault.fire inj Fault.Snapshot_corrupt ->
              let bit = Fault.draw_int inj Fault.Snapshot_corrupt (8 * Bytes.length copy) in
              let byte = bit / 8 in
              Bytes.set copy byte
                (Char.chr (Char.code (Bytes.get copy byte) lxor (1 lsl (bit mod 8))));
              true
            | _ -> false
          in
          let rec transfer attempt =
            if attempt > 3 then None
            else begin
              let copy = Bytes.copy blob in
              ignore (corrupt copy : bool);
              match Svc_migrate.snapshot_measurement t.keys copy with
              | Some measurement -> Some (copy, measurement)
              | None ->
                audit_both
                  ~detail:
                    (Printf.sprintf
                       "snapshot of enclave %d corrupted in transit (attempt %d), retransmitting"
                       enclave attempt)
                  ~recovered:true;
                transfer (attempt + 1)
            end
          in
          match transfer 1 with
          | None -> abort "snapshot corrupted in transit, retransmit budget exhausted"
          | Some (blob, source_measurement) ->
            if crashes_after Transferred then crashed Transferred
            else begin
              (* Phase 4: restore under the original id on the target
                 — fresh KeyID, memory key re-derived there (the
                 re-key step). *)
              match Svc_migrate.restore (Runtime.state tgt_rt) ~force_id:enclave blob with
              | Error e -> abort ("restore on target failed: " ^ Types.error_message e)
              | Ok _ ->
                if crashes_after Restored then crashed ~target_copy:true Restored
                else begin
                  (* Phase 5: re-attest over a SIGMA channel — the
                     target proves it rebuilt the same measured
                     identity before the source gives the enclave
                     up. *)
                  let module Sigma = Hypertee_crypto.Sigma in
                  let attested =
                    match Runtime.find_enclave tgt_rt enclave with
                    | None -> false
                    | Some e -> (
                      match e.Hypertee_ems.Enclave.measurement with
                      | None -> false
                      | Some m ->
                        let initiator = Sigma.start t.recovery_rng Sigma.Initiator in
                        let responder = Sigma.start t.recovery_rng Sigma.Responder in
                        let _, mac_i =
                          Sigma.derive_keys initiator ~peer_public:(Sigma.public_of responder)
                        in
                        let _, mac_r =
                          Sigma.derive_keys responder ~peer_public:(Sigma.public_of initiator)
                        in
                        let quote =
                          Hypertee_ems.Attest.make_quote t.keys
                            ~platform_measurement:t.platform_measurement ~enclave_measurement:m
                            ~user_data:(Bytes.of_string "hypertee-migration-v1")
                        in
                        let transcript =
                          Sigma.transcript
                            ~initiator_pub:(Sigma.public_of initiator)
                            ~responder_pub:(Sigma.public_of responder)
                            ~payload:(Hypertee_ems.Attest.quote_to_bytes quote)
                        in
                        let tag = Sigma.authenticate ~mac_key:mac_r transcript in
                        Sigma.check ~mac_key:mac_i ~transcript ~tag
                        && Hypertee_ems.Attest.verify_quote ~ek:(Keymgmt.ek_public t.keys)
                             ~ak:(Keymgmt.ak_public t.keys) quote
                        && Bytes.equal m source_measurement)
                  in
                  if not attested then begin
                    destroy_target_copy ();
                    abort "re-attestation of restored copy failed"
                  end
                  else if crashes_after Attested then crashed ~target_copy:true Attested
                  else begin
                    (* Phase 6: commit — flip the route atomically,
                       journal the restore on the target, destroy the
                       source copy and journal that destroy on the
                       source (the direct call bypasses the runtime's
                       recorder). *)
                    if (enclave - 1) mod n = target then Hashtbl.remove t.route_overrides enclave
                    else Hashtbl.replace t.route_overrides enclave target;
                    notify_oracle t ~enclave ~shard:target;
                    Journal.record_restore t.journals.(target) ~snapshot:blob ~id:enclave;
                    ignore
                      (Hypertee_ems.Svc_lifecycle.destroy (Runtime.state src_rt) ~enclave
                        : Types.response);
                    Journal.record t.journals.(source) ~sender:None (Types.Destroy { enclave })
                      Types.Ok_unit;
                    audit_both
                      ~detail:
                        (Printf.sprintf "enclave %d migrated: shard %d -> shard %d" enclave source
                           target)
                      ~recovered:true;
                    if crashes_after Committed then crashed Committed else Migrated
                  end
                end
            end
        end
    end
  end

(* --- Crash-consistent shard recovery --- *)

let kill_shard t s =
  if s < 0 || s >= Array.length t.shards then invalid_arg "Platform.kill_shard";
  t.alive.(s) <- false

type recovery_report = { replayed : int; mismatches : int }

let recover_shard t s =
  if s < 0 || s >= Array.length t.shards then invalid_arg "Platform.recover_shard";
  if t.alive.(s) then invalid_arg "Platform.recover_shard: shard is alive";
  let n = Array.length t.shards in
  let effective_shard id =
    match Hashtbl.find_opt t.route_overrides id with Some s -> s | None -> (id - 1) mod n
  in
  (* Hardware scrub. The dead shard's control structures are gone;
     the architectural ground truth — frame owners, the bitmap, the
     MEE key table — says what was its. Every frame it held is
     zeroed, dropped from the bitmap and returned to the free list;
     every KeyID no live structure holds is revoked (keys of dead
     enclaves must not outlive them). *)
  let parked = Hashtbl.create 256 in
  Array.iteri
    (fun i sh ->
      if t.alive.(i) then
        List.iter
          (fun f -> Hashtbl.replace parked f ())
          (Hypertee_ems.Mem_pool.parked_frames (Runtime.pool sh.runtime)))
    t.shards;
  let scrubbed = ref 0 in
  let scrub frame =
    Phys_mem.zero t.mem ~frame;
    if Bitmap.get t.bitmap ~frame then Bitmap.clear t.bitmap ~frame;
    Phys_mem.set_owner t.mem frame Phys_mem.Free;
    incr scrubbed
  in
  for frame = 0 to Phys_mem.frames t.mem - 1 do
    match Phys_mem.owner t.mem frame with
    | Phys_mem.Enclave id | Phys_mem.Page_table id ->
      if effective_shard id = s then scrub frame
    | Phys_mem.Shared shm ->
      (* Shared regions never migrate: residue class is authoritative. *)
      if (shm - 1) mod n = s then scrub frame
    | Phys_mem.Pool ->
      (* Pool frames carry no owner id; a parked frame belonging to no
         live shard's pool was the dead shard's. *)
      if not (Hashtbl.mem parked frame) then scrub frame
    | Phys_mem.Free | Phys_mem.Cs_os | Phys_mem.Ems_private | Phys_mem.Bitmap_region -> ()
  done;
  let held_keys = Hashtbl.create 64 in
  Array.iteri
    (fun i sh ->
      if t.alive.(i) then begin
        List.iter
          (fun id ->
            match Runtime.find_enclave sh.runtime id with
            | Some e -> Hashtbl.replace held_keys e.Hypertee_ems.Enclave.key_id ()
            | None -> ())
          (Runtime.live_enclaves sh.runtime);
        List.iter
          (fun (r : Hypertee_ems.Shm.region) -> Hashtbl.replace held_keys r.Hypertee_ems.Shm.key_id ())
          (Runtime.shm_regions sh.runtime)
      end)
    t.shards;
  for key_id = 1 to Mem_encryption.slots t.mee - 1 do
    if Mem_encryption.is_programmed t.mee ~key_id && not (Hashtbl.mem held_keys key_id) then
      Mem_encryption.revoke t.mee ~key_id
  done;
  (* Cold restart: fresh runtime and scheduler over the surviving
     fabric hardware (mailbox, journal, MEE). RNGs come from the
     recovery stream so pre-crash draw sequences elsewhere stay
     byte-identical. *)
  let sh = t.shards.(s) in
  let runtime =
    Runtime.create ~first_enclave_id:(s + 1) ~first_shm_id:(s + 1) ~id_stride:n ~chans:t.chans
      ~rng:(Hypertee_util.Xrng.split t.recovery_rng)
      ~mem:t.mem ~bitmap:t.bitmap ~mee:t.mee ~keys:t.keys ~cost:t.cost
      ~os_request:(fun ~n -> Os.pool_request t.os ~n)
      ~os_return:(fun ~frames -> Os.pool_return t.os ~frames)
      ~platform_measurement:t.platform_measurement ()
  in
  Runtime.set_recorder runtime (fun ~sender request response ->
      Journal.record t.journals.(s) ~sender request response);
  Runtime.set_containment_recorder runtime (fun victim ->
      Journal.record_containment t.journals.(s) ~victim);
  let scheduler =
    Hypertee_ems.Scheduler.create
      ~track:(Hypertee_obs.Trace.track_ems s)
      (Hypertee_util.Xrng.split t.recovery_rng)
      ~workers:t.config.Config.ems_cores
  in
  Option.iter (fun inj -> Hypertee_ems.Scheduler.set_fault_injector scheduler inj) t.faults;
  sh.runtime <- runtime;
  sh.scheduler <- scheduler;
  (* Replay the journal against the fresh runtime. Minted ids are
     pinned to the journaled values first — the original interleaving
     with other shards' id draws is not reproducible, the journal
     is. *)
  let journal = t.journals.(s) in
  Journal.set_replaying journal true;
  let state = Runtime.state runtime in
  let replayed = ref 0 in
  let mismatches = ref 0 in
  List.iter
    (fun entry ->
      incr replayed;
      match entry with
      | Journal.Op { sender; request; response } ->
        (match (request, response) with
        | Types.Create _, Types.Ok_created { enclave } ->
          state.Hypertee_ems.State.next_enclave_id <- enclave
        | Types.Shmget _, Types.Ok_shm { shm } -> state.Hypertee_ems.State.next_shm_id <- shm
        | _ -> ());
        let replay_response = Runtime.handle runtime ~sender request in
        if not (Journal.responses_equivalent response replay_response) then incr mismatches
      | Journal.Restored { snapshot; id } -> (
        match Svc_migrate.restore state ~force_id:id snapshot with
        | Ok _ -> ()
        | Error _ -> incr mismatches))
    (Journal.entries journal);
  Journal.set_replaying journal false;
  (* Channels are ephemeral session state and never journaled
     (docs/PROTOCOL.md §2.3): a channel homed on the dead shard
     cannot be rebuilt, so reap it — wiping its binding secret — and
     force the endpoints to re-establish. The tap never sees this, so
     the differential oracle is told directly. *)
  let dropped_chans = Hypertee_ems.Chan.drop_home t.chans ~home:s in
  Option.iter (fun oracle -> Hypertee_check.Oracle.note_recovery oracle ~shard:s) t.oracle;
  t.alive.(s) <- true;
  Audit.record_fault (Runtime.audit runtime) ~site:"shard-recovery"
    ~detail:
      (Printf.sprintf
         "cold restart: %d frame(s) scrubbed, %d journal entries replayed, %d divergent, %d channel(s) reaped"
         !scrubbed !replayed !mismatches dropped_chans)
    ~recovered:true;
  { replayed = !replayed; mismatches = !mismatches }

module Internals = struct
  let runtime t = t.shards.(0).runtime
  let mem t = t.mem
  let runtimes t = Array.map (fun sh -> sh.runtime) t.shards
  let runtime_of_shard t s = t.shards.(s).runtime
  let emcall t = t.emcall
  let bitmap t = t.bitmap
  let mee t = t.mee
  let ihub t = t.ihub
  let iommu t = t.iommu
  let keys t = t.keys
  let cost t = t.cost
  let engine t = t.engine
  let scheduler t = t.shards.(0).scheduler
  let schedulers t = Array.map (fun sh -> sh.scheduler) t.shards
  let faults t = t.faults
  let journals t = t.journals
  let route_overrides t = t.route_overrides
  let chans t = t.chans
end
