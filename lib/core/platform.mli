(** A complete HyperTEE platform instance.

    Assembles the two subsystems of the paper's Fig. 1: physical
    memory with the bitmap region, the multi-key memory-encryption
    engine, iHub with the mailbox, the CS OS and per-core PTWs/TLBs,
    and the EMS runtime behind the EMCall gate. Deterministic given a
    seed.

    The only route from CS software to enclave management is
    [emcall]/[invoke]; the mailbox and the EMS runtime are private to
    this module, which is the type-level expression of the paper's
    isolation (untrusted code cannot reach them). Test-only escape
    hatches live in [Internals]. *)

type t

(** [create ?seed ?config ?faults ()] — [faults] is a deterministic
    fault plan (see {!Hypertee_faults.Fault}); when omitted every
    fault hook is a no-op and the platform behaves byte-identically
    to a fault-free build. *)
val create :
  ?seed:int64 ->
  ?config:Hypertee_arch.Config.t ->
  ?faults:Hypertee_faults.Fault.plan ->
  unit ->
  t

val config : t -> Hypertee_arch.Config.t

(** Resolved execution mode: [Config.domains] (or the HYPERTEE_EXEC
    environment override, which wins) selects deterministic
    single-domain execution or a worker-domain pool that fans out
    {!invoke_batch}'s per-shard doorbells and the MEE's bulk page
    pipelines. Per-shard semantics are identical in both modes. *)
val exec_mode : t -> Hypertee_sim.Exec.mode

(** The worker pool, present iff {!exec_mode} is parallel — callers
    (CVM snapshots, benchmarks) may fan their own page work over it. *)
val pool : t -> Hypertee_util.Domain_pool.t option

(** Release the platform's hold on its worker pool. The pool comes
    from {!Hypertee_util.Domain_pool.shared} (live domains are a
    hard-capped resource, and scenario code creates platforms by the
    hundred), so this is currently a no-op on the shared workers —
    but scenario code should still call it at the end of a parallel
    run so platform teardown has one place to grow. *)
val shutdown : t -> unit

val os : t -> Hypertee_cs.Os.t
val mem : t -> Hypertee_arch.Phys_mem.t
val rng : t -> Hypertee_util.Xrng.t

(** Secure-boot report: measured EMS runtime / CS firmware hashes
    (Sec. VI). The platform measurement signed in quotes. *)
val platform_measurement : t -> bytes

(** Public keys a remote verifier uses. *)
val ek_public : t -> Hypertee_crypto.Rsa.public

val ak_public : t -> Hypertee_crypto.Rsa.public

(** [invoke t ~caller request] — the EMCall gate. With several EMS
    shards configured ([Config.ems_shards]), the gate routes the
    request to the shard owning the target enclave's id class;
    privilege checks and identity stamping are unaffected. *)
val invoke :
  t ->
  caller:Hypertee_cs.Emcall.caller ->
  Hypertee_ems.Types.request ->
  (Hypertee_ems.Types.response, Hypertee_cs.Emcall.rejection) result

(** Like [invoke], also returning this call's modelled round-trip
    time (ns) — use this when callers interleave or batch. *)
val invoke_timed :
  t ->
  caller:Hypertee_cs.Emcall.caller ->
  Hypertee_ems.Types.request ->
  (Hypertee_ems.Types.response * float, Hypertee_cs.Emcall.rejection) result

(** [invoke_batch t requests] — one doorbell per involved shard
    drains the whole batch through the EMS scheduler; results in
    request order, each with its own modelled latency, with the
    shared transport round amortized over the per-shard batch
    size. *)
val invoke_batch :
  t ->
  (Hypertee_cs.Emcall.caller * Hypertee_ems.Types.request) list ->
  (Hypertee_ems.Types.response * float, Hypertee_cs.Emcall.rejection) result list

(** Modelled per-EMCall gate + transport overhead at a given batch
    size (strictly decreasing in [batch]). *)
val batch_overhead_ns : t -> batch:int -> float

(** Number of EMS shards this platform hosts, and the shard an
    enclave id is served by ([(id-1) mod shard_count]). *)
val shard_count : t -> int

val shard_of_enclave : t -> Hypertee_ems.Types.enclave_id -> int

(** The trap dispatcher (interrupt/exception routing, Sec. III-B). *)
val traps : t -> Hypertee_cs.Traps.t

(** PTW of CS core [i] (for host-access simulation and tests). *)
val ptw : t -> core:int -> Hypertee_arch.Ptw.t

(** Host-software load/store at (process page table, vpn, offset):
    the full hardware path — iHub filter, PTW with bitmap check,
    memory-encryption engine with the PTE's KeyID. This is what a
    (possibly malicious) OS or HostApp can do to memory. *)
type host_fault =
  | Fault of Hypertee_arch.Ptw.fault
  | Hub_denied of Hypertee_arch.Ihub.denial
  | Integrity_violation

val host_read :
  t ->
  table:Hypertee_arch.Page_table.t ->
  vpn:int ->
  off:int ->
  len:int ->
  (bytes, host_fault) result

val host_write :
  t ->
  table:Hypertee_arch.Page_table.t ->
  vpn:int ->
  off:int ->
  bytes ->
  (unit, host_fault) result

(** DMA access on behalf of peripheral [channel] (whitelist-checked,
    bypasses the PTW like real DMA). *)
val dma_read : t -> channel:int -> frame:int -> (bytes, host_fault) result

val dma_write : t -> channel:int -> frame:int -> bytes -> (unit, host_fault) result

(** EMS-side services the examples need that are not Table II
    primitives (sealing runs on EMS, Sec. VI). *)
val seal : t -> enclave:Hypertee_ems.Types.enclave_id -> bytes -> (bytes, string) result

val unseal : t -> enclave:Hypertee_ems.Types.enclave_id -> bytes -> (bytes, string) result

(** Snapshot the whole platform's telemetry into a metrics registry:
    the EMCall gate ([emcall.*]), the encryption engine ([mee.*]),
    every shard's mailbox / scheduler / runtime
    ([shard<i>.mailbox.*], [shard<i>.sched.*], [shard<i>.ems.*]) and
    the fault injector ([faults.*]) when one is installed. *)
val publish_metrics : t -> Hypertee_obs.Metrics.t -> unit

(** {2 Admission control}

    Delegates to the gate's token bucket
    ({!Hypertee_cs.Emcall.set_admission}): each admitted EMCall
    consumes one token, an empty bucket sheds the request with the
    typed [Busy] rejection (EBUSY) instead of letting the mailboxes
    collapse under overload. The bucket refills on a virtual clock
    the load driver advances — deterministic by construction. No
    bucket is installed by default. *)

val set_admission : t -> rate_per_s:float -> burst:int -> unit
val clear_admission : t -> unit
val advance_admission_ns : t -> float -> unit

(** Requests shed with [Busy] since the platform was built. *)
val shed_count : t -> int

(** Sweep the platform's invariants (ownership vs. physical owners
    vs. page tables vs. secure bitmap vs. encryption keys vs.
    lifecycle state, across every shard). [deep] additionally
    MAC-verifies every mapped enclave and shared page. Read-only. *)
val check : ?deep:bool -> t -> Hypertee_check.Invariant.report

(** Install a differential oracle as the EMCall gate's tap: every
    subsequent invocation (plain or batched) is replayed against a
    reference model of the EMS state machine and divergences are
    recorded. Returns the oracle for interrogation; replaces any
    previously attached tap. *)
val attach_oracle : t -> Hypertee_check.Oracle.t

(** Remove the gate tap installed by {!attach_oracle}. *)
val detach_oracle : t -> unit

(** {2 Elasticity and recovery}

    Sealed checkpoint/restore, live cross-shard migration and
    crash-consistent shard recovery ({!Hypertee_ems.Svc_migrate},
    {!Hypertee_ems.Journal}). *)

(** Is the shard serving its doorbell? A killed shard's mailbox still
    queues requests (fabric hardware survives), but nothing drains
    them: gate polls surface as clean [Timeout]s until recovery. *)
val shard_alive : t -> int -> bool

(** The shard's operation journal — platform-held, so it survives the
    shard's death. *)
val journal : t -> int -> Hypertee_ems.Journal.t

(** [checkpoint t ~enclave] quiesces and seals the enclave into a
    self-describing snapshot blob: every resident page EWB-encrypted
    under the swap key, a Merkle root over the page blobs, lifecycle
    metadata and the byte-exact measurement, the whole sealed with an
    HMAC under {!Hypertee_ems.Keymgmt.snapshot_key}. The source is
    not modified. *)
val checkpoint : t -> enclave:Hypertee_ems.Types.enclave_id -> (bytes, Hypertee_ems.Types.error) result

(** [restore ?shard t blob] verifies the seal and rebuilds the
    enclave on [shard] (default 0) under a freshly minted id, with a
    fresh KeyID and a re-derived memory key; the measurement is
    restored byte-identically, so attestation verifies exactly as the
    source's did. The restore is journaled and the oracle (if
    attached) is notified. *)
val restore : ?shard:int -> t -> bytes -> (Hypertee_ems.Types.enclave_id, Hypertee_ems.Types.error) result

(** The six phases of a live migration, in order. A crash between two
    phases leaves exactly one authoritative copy: the source until
    the commit point, the target after it. *)
type migration_phase = Quiesced | Checkpointed | Transferred | Restored | Attested | Committed

val migration_phase_name : migration_phase -> string

type migration_outcome =
  | Migrated
  | Migration_aborted of string
      (** pre-commit failure (bad state, corrupt transfer,
          re-attestation mismatch); the source copy is untouched and
          any half-built target copy has been torn down *)
  | Migration_crashed of { after : migration_phase; owner : [ `Source | `Target ] }
      (** an injected crash struck between phases; [owner] names the
          surviving authoritative copy after recovery *)

(** [migrate t ~enclave ~target] moves a quiescent enclave to shard
    [target] keeping its id: quiesce (drain the source doorbell) →
    sealed checkpoint → fabric transfer (seal-verified, corrupted
    copies retransmitted up to 3×) → restore + re-key on the target →
    SIGMA re-attestation of the restored identity → atomic commit
    (gate route override flips, restore journaled on the target,
    destroy journaled on the source). [crash_after] injects a crash
    after the named phase (the crash-at-every-step tests); the
    [Migration_crash] fault site does the same probabilistically. *)
val migrate :
  ?crash_after:migration_phase ->
  t ->
  enclave:Hypertee_ems.Types.enclave_id ->
  target:int ->
  migration_outcome

(** [kill_shard t s] models a crash of EMS shard [s]: its doorbell
    goes silent (in-flight and queued requests time out at the gate);
    its private control state is considered lost. *)
val kill_shard : t -> int -> unit

type recovery_report = {
  replayed : int;  (** journal entries replayed *)
  mismatches : int;  (** replayed responses differing from the journal *)
}

(** [recover_shard t s] cold-restarts a killed shard: scrub (zero and
    free every frame the dead shard's structures held, revoke every
    MEE KeyID no live structure holds), rebuild (fresh runtime and
    scheduler over the surviving mailbox and journal, RNGs from the
    recovery stream so no pre-crash sequence shifts), replay (re-run
    the journal with minted ids pinned to the recorded values). After
    it returns the shard serves again and {!check} passes.
    @raise Invalid_argument if the shard is alive. *)
val recover_shard : t -> int -> recovery_report

(** Internals exposed for tests, the benchmark harness and the attack
    suite — not part of the user-facing API. *)
module Internals : sig
  (** Runtime of shard 0 (the only shard in the default config). *)
  val runtime : t -> Hypertee_ems.Runtime.t

  (** Physical memory, exposed so tests can seed corruption that the
      checker must catch. *)
  val mem : t -> Hypertee_arch.Phys_mem.t

  val runtimes : t -> Hypertee_ems.Runtime.t array
  val runtime_of_shard : t -> int -> Hypertee_ems.Runtime.t
  val emcall : t -> Hypertee_cs.Emcall.t
  val bitmap : t -> Hypertee_arch.Bitmap.t
  val mee : t -> Hypertee_arch.Mem_encryption.t
  val ihub : t -> Hypertee_arch.Ihub.t
  val iommu : t -> Hypertee_arch.Iommu.t
  val keys : t -> Hypertee_ems.Keymgmt.t
  val cost : t -> Hypertee_ems.Cost.t
  val engine : t -> Hypertee_crypto.Engine.t
  val scheduler : t -> Hypertee_ems.Scheduler.t
  (** Scheduler of shard 0. *)

  val schedulers : t -> Hypertee_ems.Scheduler.t array
  val faults : t -> Hypertee_faults.Fault.t option
  val journals : t -> Hypertee_ems.Journal.t array
  val route_overrides : t -> (Hypertee_ems.Types.enclave_id, int) Hashtbl.t

  (** The platform-global secure-channel fabric. *)
  val chans : t -> Hypertee_ems.Chan.t
end
