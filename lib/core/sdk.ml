module Types = Hypertee_ems.Types
module Runtime = Hypertee_ems.Runtime
module Enclave = Hypertee_ems.Enclave
module Emcall = Hypertee_cs.Emcall
module Phys_mem = Hypertee_arch.Phys_mem
module Ihub = Hypertee_arch.Ihub
module Bitmap = Hypertee_arch.Bitmap

let page_size = Hypertee_util.Units.page_size

type image = { code : bytes; data : bytes; config : Types.enclave_config }

let image_of_code ?(config = Types.default_config) ~code ~data () =
  let pages_for b = Stdlib.max 1 (Hypertee_util.Units.pages_of_bytes (Bytes.length b)) in
  let config =
    {
      config with
      Types.code_pages = Stdlib.max config.Types.code_pages (pages_for code);
      data_pages = Stdlib.max config.Types.data_pages (pages_for data);
    }
  in
  { code; data; config }

(* Split [b] into 4 KiB pages (last one zero-padded by the consumer). *)
let pages_of_bytes b =
  let n = Hypertee_util.Units.pages_of_bytes (Bytes.length b) in
  List.init n (fun i ->
      let off = i * page_size in
      Bytes.sub b off (Stdlib.min page_size (Bytes.length b - off)))

(* Mirrors the EMS measurement: for each EADD'd page, a little-endian
   vpn header followed by the padded page contents, all chained
   through one SHA-256 (Fig. 2's compile-time measurement). Feeding
   data then the shared zero page for the padding hashes the same
   byte stream as building each padded page. *)
let zero_pad = Bytes.make page_size '\000'

let measure_pages pages =
  let ctx = Hypertee_crypto.Sha256.init () in
  let header = Bytes.create 8 in
  List.iter
    (fun (vpn, data) ->
      Hypertee_util.Bytes_ext.set_u64_le header 0 (Int64.of_int vpn);
      Hypertee_crypto.Sha256.update ctx header;
      Hypertee_crypto.Sha256.update ctx data;
      let pad = page_size - Bytes.length data in
      if pad > 0 then Hypertee_crypto.Sha256.feed_sub ctx zero_pad ~off:0 ~len:pad)
    pages;
  Hypertee_crypto.Sha256.finalize ctx

(* The vpn layout must match Enclave.make_layout; we reconstruct it
   from the config exactly as EMS will. *)
let add_list image =
  let code_base = 0x100 in
  let data_base = code_base + image.config.Types.code_pages in
  let code_pages = List.mapi (fun i p -> (code_base + i, p, true)) (pages_of_bytes image.code) in
  let data_pages = List.mapi (fun i p -> (data_base + i, p, false)) (pages_of_bytes image.data) in
  code_pages @ data_pages

let expected_measurement image =
  measure_pages (List.map (fun (vpn, p, _) -> (vpn, p)) (add_list image))

let add_plan = add_list

let os_invoke platform request =
  match Platform.invoke platform ~caller:Emcall.Os_kernel request with
  | Ok response -> Ok response
  | Error Emcall.Cross_privilege -> Error "EMCall rejected: cross-privilege"
  | Error Emcall.Mailbox_full -> Error "EMCall rejected: mailbox full"
  | Error Emcall.Timeout -> Error "EMCall rejected: response timeout"
  | Error Emcall.Busy -> Error "EMCall rejected: busy (admission shed)"

let ( let* ) = Result.bind

let launch platform image =
  let* created = os_invoke platform (Types.Create { config = image.config }) in
  match created with
  | Types.Err e -> Error (Types.error_message e)
  | Types.Ok_created { enclave } ->
    let rec add_all = function
      | [] -> Ok ()
      | (vpn, data, executable) :: rest -> (
        let* r = os_invoke platform (Types.Add { enclave; vpn; data; executable }) in
        match r with
        | Types.Ok_unit -> add_all rest
        | Types.Err e -> Error (Types.error_message e)
        | _ -> Error "unexpected EADD response")
    in
    let* () = add_all (add_list image) in
    let* measured = os_invoke platform (Types.Measure { enclave }) in
    (match measured with
    | Types.Ok_measure { measurement } ->
      if Bytes.equal measurement (expected_measurement image) then Ok enclave
      else Error "measurement mismatch: enclave image was tampered with"
    | Types.Err e -> Error (Types.error_message e)
    | _ -> Error "unexpected EMEAS response")
  | _ -> Error "unexpected ECREATE response"

(* Warm-pool fast path: try to revive a parked enclave carrying this
   image's measurement; on a pool miss, fall back to the cold launch.
   Either way the caller holds a Measured enclave whose measurement
   is byte-identical to [expected_measurement image]. *)
let warm_launch platform image =
  let measurement = expected_measurement image in
  let* revived = os_invoke platform (Types.Warm_create { measurement }) in
  match revived with
  | Types.Ok_created { enclave } -> Ok (enclave, `Warm)
  | Types.Err (Types.Bad_state _) ->
    Result.map (fun id -> (id, `Cold)) (launch platform image)
  | Types.Err e -> Error (Types.error_message e)
  | _ -> Error "unexpected EWARM response"

let retire platform ~enclave =
  let* retired = os_invoke platform (Types.Retire { enclave }) in
  match retired with
  | Types.Ok_unit -> Ok ()
  | Types.Err e -> Error (Types.error_message e)
  | _ -> Error "unexpected ERETIRE response"

let enter platform ~enclave =
  let* entered = os_invoke platform (Types.Enter { enclave }) in
  match entered with
  | Types.Ok_entered _ -> (
    match Runtime.find_enclave (Platform.Internals.runtime platform) enclave with
    | Some e -> Ok (Session.make platform ~enclave:e)
    | None -> Error "enclave vanished after EENTER")
  | Types.Err e -> Error (Types.error_message e)
  | _ -> Error "unexpected EENTER response"

let resume platform ~enclave =
  let* resumed = os_invoke platform (Types.Resume { enclave }) in
  match resumed with
  | Types.Ok_entered _ -> (
    match Runtime.find_enclave (Platform.Internals.runtime platform) enclave with
    | Some e -> Ok (Session.make platform ~enclave:e)
    | None -> Error "enclave vanished after ERESUME")
  | Types.Err e -> Error (Types.error_message e)
  | _ -> Error "unexpected ERESUME response"

let destroy platform ~enclave =
  let* destroyed = os_invoke platform (Types.Destroy { enclave }) in
  match destroyed with
  | Types.Ok_unit -> Ok ()
  | Types.Err e -> Error (Types.error_message e)
  | _ -> Error "unexpected EDESTROY response"

(* Host access to the staging window: plaintext frames owned by the
   CS OS, so the access legitimately passes iHub and the bitmap. *)
let staging_frame platform ~enclave ~page =
  match Runtime.find_enclave (Platform.Internals.runtime platform) enclave with
  | None -> Error "no such enclave"
  | Some e -> (
    match List.nth_opt e.Enclave.staging_frames page with
    | Some frame -> Ok frame
    | None -> Error "offset beyond the staging window")

let host_staging_access platform ~enclave ~off ~len k =
  if len < 0 || off < 0 then Error "negative staging access"
  else begin
    let page = off / page_size and in_page = off mod page_size in
    if in_page + len > page_size then Error "staging access crosses a page boundary"
    else
      let* frame = staging_frame platform ~enclave ~page in
      (* The hardware path: bitmap must not flag this frame, and iHub
         must admit CS software. *)
      if Bitmap.get (Platform.Internals.bitmap platform) ~frame then
        Error "bitmap blocked host access to staging (platform bug)"
      else
        match
          Ihub.check (Platform.Internals.ihub platform) ~initiator:Ihub.Cs_software
            ~direction:Ihub.Load ~frame
        with
        | Error _ -> Error "iHub denied staging access"
        | Ok () -> k frame in_page
  end

let host_write_staging platform ~enclave ~off data =
  host_staging_access platform ~enclave ~off ~len:(Bytes.length data) (fun frame in_page ->
      Phys_mem.write_sub (Platform.mem platform) ~frame ~off:in_page data;
      Ok ())

let host_read_staging platform ~enclave ~off ~len =
  host_staging_access platform ~enclave ~off ~len (fun frame in_page ->
      Ok (Phys_mem.read_sub (Platform.mem platform) ~frame ~off:in_page ~len))
