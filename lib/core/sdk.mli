(** Host-application SDK (paper Sec. III-B, Fig. 2).

    What the HyperTEE SDK generates around a programmer's enclave:
    the HostApp-side launch sequence (ECREATE, EADD of each code/data
    page, EMEAS), the expected-measurement computation the build
    system emits at compile time, and entry/exit. The OS-privilege
    primitives are issued through the OS (caller [Os_kernel]), as a
    host application would via syscalls. *)

type image = {
  code : bytes;  (** enclave text *)
  data : bytes;  (** initialised data *)
  config : Hypertee_ems.Types.enclave_config;
}

(** [image_of_code ?config ~code ~data ()] builds an image, growing
    [config]'s page counts to fit the byte sizes. *)
val image_of_code : ?config:Hypertee_ems.Types.enclave_config -> code:bytes -> data:bytes -> unit -> image

(** [expected_measurement image] — what the compiler records next to
    the binary (Fig. 2's "measurement" output); remote verifiers
    compare quotes against this. *)
val expected_measurement : image -> bytes

(** The exact EADD sequence [launch] issues — [(vpn, data,
    executable)] per page, in measurement order. Exposed so load
    drivers can replay the cold launch through timed invocations. *)
val add_plan : image -> (int * bytes * bool) list

(** [launch platform image] runs the full launch flow and returns the
    enclave id, after checking EMS's measurement equals the expected
    one (a mismatch means the OS tampered with the binary in
    flight). *)
val launch : Platform.t -> image -> (Hypertee_ems.Types.enclave_id, string) result

(** [warm_launch platform image] — the enclave-as-a-service fast
    path: EWARM with the image's expected measurement revives a
    parked enclave if the shard's warm pool holds one ([`Warm]); a
    pool miss falls back to the full cold {!launch} ([`Cold]).
    Either way the enclave's measurement is byte-identical to
    {!expected_measurement}, so attestation is unaffected. *)
val warm_launch :
  Platform.t -> image -> (Hypertee_ems.Types.enclave_id * [ `Warm | `Cold ], string) result

(** [retire platform ~enclave] — ERETIRE: park a quiescent Measured
    enclave in its shard's warm pool (heap reset, unmeasured pages
    scrubbed, measurement re-verified against the resident pages); if
    the enclave is not parkable EMS falls back to a full EDESTROY.
    Either way the id is gone from the caller's perspective. *)
val retire : Platform.t -> enclave:Hypertee_ems.Types.enclave_id -> (unit, string) result

(** [enter platform ~enclave] — EENTER; gives a running session. *)
val enter : Platform.t -> enclave:Hypertee_ems.Types.enclave_id -> (Session.t, string) result

(** [resume platform ~enclave] — ERESUME after an interrupt parked
    the enclave (Sec. III-B); gives back a running session. *)
val resume : Platform.t -> enclave:Hypertee_ems.Types.enclave_id -> (Session.t, string) result

(** [destroy platform ~enclave] — EDESTROY via the OS. *)
val destroy : Platform.t -> enclave:Hypertee_ems.Types.enclave_id -> (unit, string) result

(** [host_write_staging platform ~enclave ~off data] /
    [host_read_staging] — the HostApp side of the staging window used
    to pass encrypted inputs in and results out (Sec. IV-A "Data
    movement between HostApp and Enclave"). The window is enclave
    memory mapped shared with the host. *)
val host_write_staging :
  Platform.t -> enclave:Hypertee_ems.Types.enclave_id -> off:int -> bytes -> (unit, string) result

val host_read_staging :
  Platform.t -> enclave:Hypertee_ems.Types.enclave_id -> off:int -> len:int -> (bytes, string) result
