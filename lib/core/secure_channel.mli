(** Attested secure channels over the EMCall gate.

    Binds the transport-agnostic record and handshake layer
    ({!Hypertee_channel.Record}, {!Hypertee_channel.Handshake}) to
    this platform: the EMS mints the channel and its binding secret
    (ECHOPEN/ECHACC, docs/PROTOCOL.md §2), relays opaque segments
    (ECHSEND/ECHRECV) — cross-shard when the endpoints live on
    different EMS shards — and quotes come from EATTEST, verified
    against the platform's published EK/AK (§5.3).

    Two levels of API:

    - {!establish} runs a complete session establishment in one
      call and returns both endpoints' sessions — the common case
      for clients and examples.
    - {!connect}/{!accept}/{!step} expose the flight-structured
      machine one doorbell at a time, so tests can interleave
      crashes, faults and migrations with individual flights. *)

(** {1 Attestation plumbing} *)

(** [enclave_auth platform ~enclave ()] — attestation hooks for an
    enclave endpoint: quotes via EATTEST on [enclave], peer quotes
    verified against the platform EK/AK (and, when given,
    [expected_measurement]). [require_peer_quote] makes a responder
    reject initiators that present no quote (§5.3). *)
val enclave_auth :
  Platform.t ->
  enclave:Hypertee_ems.Types.enclave_id ->
  ?expected_measurement:bytes ->
  ?require_peer_quote:bool ->
  unit ->
  Hypertee_channel.Handshake.auth

(** [client_auth platform ()] — hooks for a host-software client: no
    quote of its own, peer quotes verified as in {!enclave_auth}. *)
val client_auth :
  Platform.t -> ?expected_measurement:bytes -> unit -> Hypertee_channel.Handshake.auth

(** {1 Flight-level endpoints} *)

(** One side of a handshake in progress, bound to a platform, a
    caller identity and a channel id. *)
type endpoint

(** [connect platform ~caller ~listener ~auth ()] — ECHOPEN a
    channel to [listener], start an initiator handshake over it and
    transmit the ClientHello (§5.2 flight 1). *)
val connect :
  Platform.t ->
  caller:Hypertee_cs.Emcall.caller ->
  listener:Hypertee_ems.Types.enclave_id ->
  auth:Hypertee_channel.Handshake.auth ->
  ?rekey_after:int ->
  unit ->
  (endpoint, string) result

(** [accept platform ~enclave ~chan ~auth ()] — ECHACC channel
    [chan] as its listening enclave and start the responder
    handshake. *)
val accept :
  Platform.t ->
  enclave:Hypertee_ems.Types.enclave_id ->
  chan:int ->
  auth:Hypertee_channel.Handshake.auth ->
  ?rekey_after:int ->
  unit ->
  (endpoint, string) result

(** Drain this endpoint's queued segments once through the handshake
    machine, transmitting any response flights. [Ok true] if at
    least one segment was consumed. Errors are terminal. *)
val step : endpoint -> (bool, string) result

(** True once this endpoint's handshake completed (§5.2 flight 3
    processed). *)
val handshake_complete : endpoint -> bool

(** The EMS channel id this endpoint's handshake runs over. *)
val endpoint_chan : endpoint -> int

(** Alternate [step] between the two endpoints until both complete;
    a stall (no progress with flights outstanding — e.g. a segment
    destroyed by fault injection) or either side failing is an
    error. The layer never retries: callers re-establish. *)
val run_handshake : endpoint -> endpoint -> (unit, string) result

(** {1 Established sessions} *)

(** An established duplex session: a record connection pumping its
    segments through ECHSEND/ECHRECV. *)
type session

(** The session view of a completed endpoint; an error with the
    handshake failure reason otherwise. *)
val session_of_endpoint : endpoint -> (session, string) result

(** The underlying record connection (stats, generations, poison
    state). *)
val conn : session -> Hypertee_channel.Record.t

(** The EMS channel id this session runs over. *)
val chan : session -> int

(** [send s payload] seals one application message (§3.5) and
    transmits its segments. *)
val send : session -> bytes -> (unit, string) result

(** [recv s] drains every queued segment through the record layer
    and returns the completed events in order. A record-layer
    rejection (tampered, truncated, replayed, reordered segment)
    surfaces here as an error — the connection is then poisoned and
    fails closed (§6). *)
val recv : session -> (Hypertee_channel.Record.event list, string) result

(** [close s] flushes a close_notify alert (§6), ECHCLOSEs the
    channel and wipes the session's secrets. Closing is single-sided
    (the first close removes the fabric entry), so closing a channel
    the peer already closed succeeds. *)
val close : session -> (unit, string) result

(** {1 One-call establishment} *)

(** [establish platform ~listener ()] — open, accept and run the
    full three-flight handshake, returning the (initiator,
    responder) sessions. Without [initiator] the client is host
    software ([User_host]); with it, the channel is
    enclave-to-enclave and the responder demands the initiator's
    quote (§5.3). [expected_measurement] pins the listener's
    measurement on the client side. *)
val establish :
  Platform.t ->
  listener:Hypertee_ems.Types.enclave_id ->
  ?initiator:Hypertee_ems.Types.enclave_id ->
  ?expected_measurement:bytes ->
  ?rekey_after:int ->
  unit ->
  (session * session, string) result
