(* Attested secure channels over the EMCall gate: the glue between
   the transport-agnostic record/handshake layer (Hypertee_channel)
   and this platform's primitives. The EMS mints the channel and the
   binding secret (ECHOPEN/ECHACC) and relays opaque segments
   (ECHSEND/ECHRECV); quotes come from EATTEST; verification runs
   against the platform's published EK/AK. See docs/PROTOCOL.md. *)

module Types = Hypertee_ems.Types
module Attest = Hypertee_ems.Attest
module Emcall = Hypertee_cs.Emcall
module Record = Hypertee_channel.Record
module Handshake = Hypertee_channel.Handshake

let gate platform ~caller request =
  match Platform.invoke platform ~caller request with
  | Ok (Types.Err e) -> Error ("gate: " ^ Types.error_message e)
  | Ok resp -> Ok resp
  | Error Emcall.Cross_privilege -> Error "gate: cross-privilege"
  | Error Emcall.Mailbox_full -> Error "gate: mailbox full"
  | Error (Emcall.Timeout | Emcall.Busy) -> Error "gate: timeout or busy"

let ( let* ) = Result.bind

(* --- attestation plumbing ------------------------------------------ *)

let verify_quote platform ?expected_measurement () ~quote ~user_data =
  match Attest.quote_of_bytes quote with
  | None -> Error "malformed quote"
  | Some q ->
    if
      not
        (Attest.verify_quote ~ek:(Platform.ek_public platform) ~ak:(Platform.ak_public platform)
           q)
    then Error "quote signature rejected"
    else if not (Bytes.equal q.Attest.user_data user_data) then
      Error "quote does not commit to this handshake"
    else if not (Bytes.equal q.Attest.platform_measurement (Platform.platform_measurement platform))
    then Error "quote from a foreign platform"
    else (
      match expected_measurement with
      | Some m when not (Bytes.equal q.Attest.enclave_measurement m) ->
        Error "unexpected enclave measurement"
      | _ -> Ok ())

let enclave_quoter platform ~enclave ~user_data =
  let* resp =
    gate platform ~caller:(Emcall.User_enclave enclave) (Types.Attest { enclave; user_data })
  in
  match resp with
  | Types.Ok_attest { quote } -> Ok quote
  | _ -> Error "EATTEST returned an unexpected response"

let enclave_auth platform ~enclave ?expected_measurement ?(require_peer_quote = false) () =
  {
    Handshake.make_quote = Some (fun ~user_data -> enclave_quoter platform ~enclave ~user_data);
    verify_quote = (fun ~quote ~user_data -> verify_quote platform ?expected_measurement () ~quote ~user_data);
    require_peer_quote;
  }

let client_auth platform ?expected_measurement () =
  {
    Handshake.make_quote = None;
    verify_quote = (fun ~quote ~user_data -> verify_quote platform ?expected_measurement () ~quote ~user_data);
    require_peer_quote = false;
  }

(* --- endpoints ------------------------------------------------------ *)

type endpoint = {
  platform : Platform.t;
  caller : Emcall.caller;
  chan : int;
  hs : Handshake.t;
}

let send_seg ep seg =
  let* resp = gate ep.platform ~caller:ep.caller (Types.Chan_send { chan = ep.chan; seg }) in
  match resp with Types.Ok_unit -> Ok () | _ -> Error "ECHSEND returned an unexpected response"

let recv_seg ep =
  let* resp = gate ep.platform ~caller:ep.caller (Types.Chan_recv { chan = ep.chan }) in
  match resp with
  | Types.Ok_seg { seg } -> Ok seg
  | _ -> Error "ECHRECV returned an unexpected response"

let flush ep segs = List.fold_left (fun acc seg -> Result.bind acc (fun () -> send_seg ep seg)) (Ok ()) segs

let connect platform ~caller ~listener ~auth ?rekey_after () =
  let* resp = gate platform ~caller (Types.Chan_open { listener }) in
  match resp with
  | Types.Ok_chan { chan; binding } ->
    let hs =
      Handshake.create ~role:Handshake.Initiator
        ~rng:(Hypertee_util.Xrng.split (Platform.rng platform))
        ~binding ~auth ?rekey_after ()
    in
    let ep = { platform; caller; chan; hs } in
    let* segs = Handshake.start hs in
    let* () = flush ep segs in
    Ok ep
  | _ -> Error "ECHOPEN returned an unexpected response"

let accept platform ~enclave ~chan ~auth ?rekey_after () =
  let caller = Emcall.User_enclave enclave in
  let* resp = gate platform ~caller (Types.Chan_accept { enclave; chan }) in
  match resp with
  | Types.Ok_chan { binding; _ } ->
    let hs =
      Handshake.create ~role:Handshake.Responder
        ~rng:(Hypertee_util.Xrng.split (Platform.rng platform))
        ~binding ~auth ?rekey_after ()
    in
    let* segs = Handshake.start hs in
    let ep = { platform; caller; chan; hs } in
    let* () = flush ep segs in
    Ok ep
  | _ -> Error "ECHACC returned an unexpected response"

(* Drain every queued segment once, feeding each to the handshake
   machine and transmitting its responses. *)
let step ep =
  let progressed = ref false in
  let rec drain () =
    let* got = recv_seg ep in
    match got with
    | None -> Ok !progressed
    | Some seg ->
      progressed := true;
      let* out = Handshake.on_segment ep.hs seg in
      let* () = flush ep out in
      drain ()
  in
  drain ()

let handshake_complete ep = Handshake.complete ep.hs
let endpoint_chan ep = ep.chan

(* Alternate the two machines until both complete. Either machine
   failing — or a full stop with neither complete, e.g. a segment
   eaten by fault injection — is terminal (the layer never retries;
   callers re-establish, §6). *)
let run_handshake a b =
  let rec loop fuel =
    if fuel = 0 then Error "handshake did not converge"
    else if handshake_complete a && handshake_complete b then Ok ()
    else
      let* pa = step a in
      let* pb = step b in
      if (not pa) && not pb && not (handshake_complete a && handshake_complete b) then
        Error "handshake stalled"
      else loop (fuel - 1)
  in
  loop 16

(* --- established sessions ------------------------------------------ *)

type session = {
  s_platform : Platform.t;
  s_caller : Emcall.caller;
  s_chan : int;
  s_conn : Record.t;
}

let session_of_endpoint ep =
  match Handshake.conn ep.hs with
  | Some conn ->
    Ok { s_platform = ep.platform; s_caller = ep.caller; s_chan = ep.chan; s_conn = conn }
  | None -> (
    match Handshake.failed ep.hs with
    | Some reason -> Error ("handshake failed: " ^ reason)
    | None -> Error "handshake not complete")

let conn s = s.s_conn
let chan s = s.s_chan

let flush_session s segs =
  List.fold_left
    (fun acc seg ->
      Result.bind acc (fun () ->
          let* resp =
            gate s.s_platform ~caller:s.s_caller (Types.Chan_send { chan = s.s_chan; seg })
          in
          match resp with
          | Types.Ok_unit -> Ok ()
          | _ -> Error "ECHSEND returned an unexpected response"))
    (Ok ()) segs

let record_err e = Error ("record: " ^ Record.error_message e)

let send s payload =
  match Record.seal_message s.s_conn payload with
  | Error e -> record_err e
  | Ok segs -> flush_session s segs

(* Drain the queue through the record layer; every event the drained
   segments completed, in order. *)
let recv s =
  let rec drain acc =
    let* resp = gate s.s_platform ~caller:s.s_caller (Types.Chan_recv { chan = s.s_chan }) in
    match resp with
    | Types.Ok_seg { seg = None } -> Ok (List.rev acc)
    | Types.Ok_seg { seg = Some seg } -> (
      match Record.deliver s.s_conn seg with
      | Error e -> record_err e
      | Ok events -> drain (List.rev_append events acc))
    | _ -> Error "ECHRECV returned an unexpected response"
  in
  drain []

(* ECHCLOSE is single-sided: whichever endpoint closes first removes
   the fabric entry, so the peer's own close (and its close_notify
   flush) legitimately finds no channel. That race is not an error. *)
let close s =
  let tolerant request =
    match Platform.invoke s.s_platform ~caller:s.s_caller request with
    | Ok (Types.Err Types.No_such_channel) -> Ok ()
    | Ok (Types.Err e) -> Error ("gate: " ^ Types.error_message e)
    | Ok _ -> Ok ()
    | Error Emcall.Cross_privilege -> Error "gate: cross-privilege"
    | Error Emcall.Mailbox_full -> Error "gate: mailbox full"
    | Error (Emcall.Timeout | Emcall.Busy) -> Error "gate: timeout or busy"
  in
  let alert = Record.close s.s_conn in
  let* () =
    List.fold_left
      (fun acc seg ->
        Result.bind acc (fun () -> tolerant (Types.Chan_send { chan = s.s_chan; seg })))
      (Ok ()) alert
  in
  let* () = tolerant (Types.Chan_close { chan = s.s_chan }) in
  Record.wipe s.s_conn;
  Ok ()

(* --- one-call establishment ---------------------------------------- *)

let establish platform ~listener ?initiator ?expected_measurement ?rekey_after () =
  let caller, client_side =
    match initiator with
    | None -> (Emcall.User_host, client_auth platform ?expected_measurement ())
    | Some e ->
      ( Emcall.User_enclave e,
        enclave_auth platform ~enclave:e ?expected_measurement () )
  in
  let server_side =
    enclave_auth platform ~enclave:listener
      ~require_peer_quote:(Option.is_some initiator) ()
  in
  let* client = connect platform ~caller ~listener ~auth:client_side ?rekey_after () in
  let* server = accept platform ~enclave:listener ~chan:client.chan ~auth:server_side ?rekey_after () in
  let* () = run_handshake client server in
  let* cs = session_of_endpoint client in
  let* ss = session_of_endpoint server in
  Ok (cs, ss)
