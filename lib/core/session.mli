(** An enclave execution session — the environment an enclave's code
    sees while running on a CS core.

    Obtained from [Sdk.enter]. Provides virtual-address reads/writes
    routed through the enclave's private page table and the
    memory-encryption engine (enclave mode, no bitmap check), plus
    the user-privilege primitives an enclave may invoke through
    EMCall: EALLOC/EFREE, the ESHM* family, EATTEST and EEXIT. The
    enclave identity on every primitive is stamped by EMCall from
    hardware state; code using this module cannot impersonate another
    enclave. *)

type t

val enclave_id : t -> Hypertee_ems.Types.enclave_id
val platform : t -> Platform.t

(** Virtual-address byte access within the enclave. Faults on
    unmapped pages are routed to EMS like hardware would
    (demand-allocation / swap-in); remaining faults raise
    [Failure]. *)
val read : t -> va:int -> len:int -> bytes

val write : t -> va:int -> bytes -> unit

(** Convenience 64-bit accessors (little-endian). *)
val read_u64 : t -> va:int -> int64

val write_u64 : t -> va:int -> int64 -> unit

(** Virtual addresses of the enclave's regions. *)
val heap_va : t -> int

val staging_va : t -> int
val stack_va : t -> int

(** User primitives (Table II, Priv. = User). *)
val alloc : t -> pages:int -> (int (* base va *), Hypertee_ems.Types.error) result

(** Like {!alloc}, also returning the modelled EMCall round-trip
    time in ns (per-call, race-free — the way to time primitives
    from a session). *)
val alloc_timed :
  t -> pages:int -> (int (* base va *) * float, Hypertee_ems.Types.error) result

val free : t -> va:int -> pages:int -> (unit, Hypertee_ems.Types.error) result

val shmget :
  t -> pages:int -> max_perm:Hypertee_ems.Types.perm ->
  (Hypertee_ems.Types.shm_id, Hypertee_ems.Types.error) result

val shmshr :
  t ->
  shm:Hypertee_ems.Types.shm_id ->
  grantee:Hypertee_ems.Types.enclave_id ->
  perm:Hypertee_ems.Types.perm ->
  (unit, Hypertee_ems.Types.error) result

val shmat :
  t ->
  shm:Hypertee_ems.Types.shm_id ->
  perm:Hypertee_ems.Types.perm ->
  (int (* base va *), Hypertee_ems.Types.error) result

val shmdt : t -> shm:Hypertee_ems.Types.shm_id -> (unit, Hypertee_ems.Types.error) result
val shmdes : t -> shm:Hypertee_ems.Types.shm_id -> (unit, Hypertee_ems.Types.error) result

(** [attest t ~user_data] — EATTEST quote bytes. *)
val attest : t -> user_data:bytes -> (bytes, Hypertee_ems.Types.error) result

(** Local attestation between two running enclaves (Sec. VI): the
    challenger proves its identity to the verifier; both learn a
    shared session key. *)
val local_attest :
  challenger:t -> verifier:t -> (bytes (* shared key *), string) result

(** EEXIT: leave the enclave; the session becomes unusable. *)
val exit : t -> (unit, Hypertee_ems.Types.error) result

(** Internal constructor used by [Sdk]. *)
val make : Platform.t -> enclave:Hypertee_ems.Enclave.t -> t
