module Types = Hypertee_ems.Types
module Enclave = Hypertee_ems.Enclave
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte
module Phys_mem = Hypertee_arch.Phys_mem
module Mem_encryption = Hypertee_arch.Mem_encryption
module Emcall = Hypertee_cs.Emcall

let page_size = Hypertee_util.Units.page_size

type t = { platform : Platform.t; enclave : Enclave.t; mutable live : bool }

let make platform ~enclave = { platform; enclave; live = true }
let enclave_id t = t.enclave.Enclave.id
let platform t = t.platform

let check_live t = if not t.live then invalid_arg "Session: enclave has exited"

let caller t = Emcall.User_enclave t.enclave.Enclave.id

let invoke t request =
  check_live t;
  match Platform.invoke t.platform ~caller:(caller t) request with
  | Ok response -> response
  | Error Emcall.Cross_privilege -> Types.Err (Types.Permission_denied "cross-privilege")
  | Error Emcall.Mailbox_full -> Types.Err (Types.Invalid_argument_ "mailbox full")
  | Error Emcall.Timeout -> Types.Err (Types.Invalid_argument_ "EMS response timeout")
  | Error Emcall.Busy -> Types.Err (Types.Invalid_argument_ "gate busy: admission shed")

(* Resolve a fault the way hardware + EMCall would: page faults
   inside the enclave go to EMS (demand alloc / swap-in). *)
let resolve_fault t ~vpn =
  match invoke t (Types.Page_fault { enclave = t.enclave.Enclave.id; vpn }) with
  | Types.Ok_alloc _ -> true
  | _ -> false

let rec pte_of_vpn t ~vpn ~retried =
  match Page_table.lookup t.enclave.Enclave.page_table ~vpn with
  | Some pte -> pte
  | None ->
    if (not retried) && resolve_fault t ~vpn then pte_of_vpn t ~vpn ~retried:true
    else failwith (Printf.sprintf "Session: unresolvable fault at vpn %#x" vpn)

let read t ~va ~len =
  check_live t;
  let mee = Platform.Internals.mee t.platform in
  let mem = Platform.mem t.platform in
  let out = Bytes.create len in
  let remaining = ref len and cursor = ref va and dst = ref 0 in
  while !remaining > 0 do
    let vpn = !cursor / page_size and off = !cursor mod page_size in
    let chunk = Stdlib.min !remaining (page_size - off) in
    let pte = pte_of_vpn t ~vpn ~retried:false in
    if not pte.Pte.readable then failwith "Session.read: page not readable";
    (* Decrypt only the requested range, straight into the result. *)
    Mem_encryption.read_range_into mee mem ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn ~off
      ~len:chunk out ~dst_off:!dst;
    cursor := !cursor + chunk;
    dst := !dst + chunk;
    remaining := !remaining - chunk
  done;
  out

let write t ~va data =
  check_live t;
  let mee = Platform.Internals.mee t.platform in
  let mem = Platform.mem t.platform in
  let remaining = ref (Bytes.length data) and cursor = ref va and src = ref 0 in
  while !remaining > 0 do
    let vpn = !cursor / page_size and off = !cursor mod page_size in
    let chunk = Stdlib.min !remaining (page_size - off) in
    let pte = pte_of_vpn t ~vpn ~retried:false in
    if not pte.Pte.writable then failwith "Session.write: page not writable";
    Mem_encryption.update_range mee mem ~key_id:pte.Pte.key_id ~frame:pte.Pte.ppn ~off ~src:data
      ~src_off:!src ~len:chunk;
    cursor := !cursor + chunk;
    src := !src + chunk;
    remaining := !remaining - chunk
  done

let read_u64 t ~va = Hypertee_util.Bytes_ext.get_u64_le (read t ~va ~len:8) 0

let write_u64 t ~va v =
  let b = Bytes.create 8 in
  Hypertee_util.Bytes_ext.set_u64_le b 0 v;
  write t ~va b

let heap_va t = t.enclave.Enclave.layout.Enclave.heap_base * page_size
let staging_va t = t.enclave.Enclave.layout.Enclave.staging_base * page_size
let stack_va t = t.enclave.Enclave.layout.Enclave.stack_base * page_size

let lift = function
  | Types.Err e -> Error e
  | other -> Ok other

let alloc t ~pages =
  match lift (invoke t (Types.Alloc { enclave = enclave_id t; pages })) with
  | Ok (Types.Ok_alloc { base_vpn; _ }) -> Ok (base_vpn * page_size)
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e

let alloc_timed t ~pages =
  check_live t;
  match
    Platform.invoke_timed t.platform ~caller:(caller t)
      (Types.Alloc { enclave = enclave_id t; pages })
  with
  | Ok (Types.Ok_alloc { base_vpn; _ }, latency_ns) -> Ok (base_vpn * page_size, latency_ns)
  | Ok (Types.Err e, _) -> Error e
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error Emcall.Cross_privilege -> Error (Types.Permission_denied "cross-privilege")
  | Error Emcall.Mailbox_full -> Error (Types.Invalid_argument_ "mailbox full")
  | Error Emcall.Timeout -> Error (Types.Invalid_argument_ "EMS response timeout")
  | Error Emcall.Busy -> Error (Types.Invalid_argument_ "gate busy: admission shed")

let free t ~va ~pages =
  match lift (invoke t (Types.Free { enclave = enclave_id t; vpn = va / page_size; pages })) with
  | Ok Types.Ok_unit -> Ok ()
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e

let shmget t ~pages ~max_perm =
  match lift (invoke t (Types.Shmget { owner = enclave_id t; pages; max_perm })) with
  | Ok (Types.Ok_shm { shm }) -> Ok shm
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e

let shmshr t ~shm ~grantee ~perm =
  match lift (invoke t (Types.Shmshr { owner = enclave_id t; shm; grantee; perm })) with
  | Ok Types.Ok_unit -> Ok ()
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e

let shmat t ~shm ~perm =
  match lift (invoke t (Types.Shmat { enclave = enclave_id t; shm; requested_perm = perm })) with
  | Ok (Types.Ok_shmat { base_vpn; _ }) -> Ok (base_vpn * page_size)
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e

let shmdt t ~shm =
  match lift (invoke t (Types.Shmdt { enclave = enclave_id t; shm })) with
  | Ok Types.Ok_unit -> Ok ()
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e

let shmdes t ~shm =
  match lift (invoke t (Types.Shmdes { owner = enclave_id t; shm })) with
  | Ok Types.Ok_unit -> Ok ()
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e

let attest t ~user_data =
  match lift (invoke t (Types.Attest { enclave = enclave_id t; user_data })) with
  | Ok (Types.Ok_attest { quote }) -> Ok quote
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e

let local_attest ~challenger ~verifier =
  check_live challenger;
  check_live verifier;
  if not (Platform.mem challenger.platform == Platform.mem verifier.platform) then
    Error "enclaves are not on the same platform"
  else begin
    (* Both sides run a DH exchange; the verifier's report is keyed by
       the challenger's measurement (Sec. VI). *)
    let keys = Platform.Internals.keys challenger.platform in
    let cm = Enclave.measurement_exn challenger.enclave in
    let vm = Enclave.measurement_exn verifier.enclave in
    let rng = Platform.rng challenger.platform in
    let a = Hypertee_crypto.Dh.generate rng in
    let b = Hypertee_crypto.Dh.generate rng in
    let report = Hypertee_ems.Attest.make_report keys ~verifier_measurement:vm ~challenger_measurement:cm in
    if not (Hypertee_ems.Attest.verify_report keys report) then Error "report verification failed"
    else begin
      let k1 =
        Hypertee_crypto.Dh.session_key ~secret:a.Hypertee_crypto.Dh.secret
          ~peer_public:b.Hypertee_crypto.Dh.public ~context:"hypertee-local-attest"
      in
      let k2 =
        Hypertee_crypto.Dh.session_key ~secret:b.Hypertee_crypto.Dh.secret
          ~peer_public:a.Hypertee_crypto.Dh.public ~context:"hypertee-local-attest"
      in
      if Bytes.equal k1 k2 then Ok k1 else Error "key agreement failed"
    end
  end

let exit t =
  match lift (invoke t (Types.Exit { enclave = enclave_id t })) with
  | Ok Types.Ok_unit ->
    t.live <- false;
    Ok ()
  | Ok _ -> Error (Types.Invalid_argument_ "unexpected response")
  | Error e -> Error e
