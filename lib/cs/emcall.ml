module Types = Hypertee_ems.Types
module Mailbox = Hypertee_arch.Mailbox
module Config = Hypertee_arch.Config
module Fault = Hypertee_faults.Fault

type caller = Os_kernel | User_host | User_enclave of Types.enclave_id
type rejection = Cross_privilege | Mailbox_full | Timeout | Busy

(* Token-bucket admission control (disabled unless installed): the
   gate sheds load with a typed [Busy] instead of letting the mailbox
   queues collapse under a tenant stampede. Tokens refill on a
   virtual clock the driver advances — deterministic, like every
   other timing source in the model. *)
type admission = {
  rate_per_s : float;  (** sustained admit rate *)
  burst : int;  (** bucket capacity *)
  mutable tokens : float;
}

(* Recovery policy of the gate: how many poll slots to wait for a
   response, how many times to re-ask the mailbox for it (each
   re-ask doubles the backoff), before giving up with [Timeout].
   The bounds make [invoke] provably hang-free: at most
   [poll_budget * (max_retries + 1)] polls per call. *)
type retry_policy = { poll_budget : int; max_retries : int; backoff_base_ns : float }

let default_retry_policy = { poll_budget = 8; max_retries = 4; backoff_base_ns = 2_000.0 }

(* One EMS instance as the gate sees it: its private mailbox and the
   doorbell that makes it drain the queue. *)
type shard = {
  mailbox : (Types.request, Types.response) Mailbox.t;
  ems_service : unit -> unit;
}

(* Observation point for the differential oracle: every completed
   invocation (response or rejection) is reported with its caller;
   [batched] marks [invoke_batch] results. The scheduler randomizes
   execution order inside one doorbell drain, but the gate recovers
   the realized order post-hoc (drain-order probe) and fires batched
   taps in exactly that order, so the oracle can predict batches. *)
type tap =
  caller:caller ->
  batched:bool ->
  Types.request ->
  (Types.response * float, rejection) result ->
  unit

type t = {
  rng : Hypertee_util.Xrng.t;
  transport : Config.transport;
  shards : shard array;
  route : Types.request -> int;
  service_ns : Types.request -> float;
  retry : retry_policy;
  abandoned : (int, unit) Hashtbl.t array; (* per shard: timed-out ids *)
  abandoned_order : int Queue.t array;
  mutable faults : Fault.t option;
  mutable pool : Hypertee_util.Domain_pool.t option;
  mutable tap : tap option;
  mutable drain_order_probe : (int -> int list) option;
      (* shard index -> request ids in execution order (full log);
         the platform wires this to the shard schedulers *)
  mutable rejected : int;
  mutable tlb_flushes : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable duplicates_discarded : int;
  mutable flush_hooks : (unit -> unit) list;
  mutable admission : admission option;
  mutable shed : int;
}

let create_sharded ?(retry = default_retry_policy) ~rng ~transport ~shards ~route ~service_ns
    () =
  if retry.poll_budget < 1 then invalid_arg "Emcall.create: poll_budget must be >= 1";
  if retry.max_retries < 0 then invalid_arg "Emcall.create: max_retries must be >= 0";
  if Array.length shards = 0 then invalid_arg "Emcall.create: need at least one EMS shard";
  let n = Array.length shards in
  {
    rng;
    transport;
    shards;
    route;
    service_ns;
    retry;
    abandoned = Array.init n (fun _ -> Hashtbl.create 16);
    abandoned_order = Array.init n (fun _ -> Queue.create ());
    faults = None;
    pool = None;
    tap = None;
    drain_order_probe = None;
    rejected = 0;
    tlb_flushes = 0;
    timeouts = 0;
    retries = 0;
    duplicates_discarded = 0;
    flush_hooks = [];
    admission = None;
    shed = 0;
  }

let create ?retry ~rng ~transport ~mailbox ~ems_service ~service_ns () =
  create_sharded ?retry ~rng ~transport
    ~shards:[| { mailbox; ems_service } |]
    ~route:(fun _ -> 0) ~service_ns ()

let shard_count t = Array.length t.shards

(* The affinity function is provided by the platform and untrusted
   input never reaches it directly, but clamp defensively: a routing
   bug must not crash the gate. *)
let shard_of t request =
  let n = Array.length t.shards in
  let i = t.route request in
  if i >= 0 && i < n then i else ((i mod n) + n) mod n

(* Admission-control lifecycle. A fresh bucket starts full, so a
   configured gate admits an initial burst before pacing kicks in. *)
let set_admission t ~rate_per_s ~burst =
  if rate_per_s <= 0.0 then invalid_arg "Emcall.set_admission: rate_per_s must be > 0";
  if burst < 1 then invalid_arg "Emcall.set_admission: burst must be >= 1";
  t.admission <- Some { rate_per_s; burst; tokens = Float.of_int burst }

let clear_admission t = t.admission <- None

let advance_admission_ns t ns =
  match t.admission with
  | None -> ()
  | Some a ->
    if ns > 0.0 then
      a.tokens <- Float.min (Float.of_int a.burst) (a.tokens +. (ns *. a.rate_per_s /. 1e9))

let admission_tokens t = match t.admission with None -> None | Some a -> Some a.tokens

(* Consume one token, or shed. No admission installed = always admit
   (zero behavioral change for every pre-existing caller). *)
let admit t =
  match t.admission with
  | None -> true
  | Some a ->
    if a.tokens >= 1.0 then begin
      a.tokens <- a.tokens -. 1.0;
      true
    end
    else begin
      t.shed <- t.shed + 1;
      false
    end

let set_fault_injector t inj = t.faults <- Some inj
let set_pool t pool = t.pool <- Some pool
let set_drain_order_probe t probe = t.drain_order_probe <- Some probe
let set_tap t tap = t.tap <- Some tap
let clear_tap t = t.tap <- None
let observe t ~caller ~batched request result =
  match t.tap with None -> () | Some tap -> tap ~caller ~batched request result

(* Duplicate accounting, shared by every path that empties a response
   slot. A slot holds [copies] identical packets of which exactly one
   is legitimate; if the legitimate copy was already [consumed] by a
   poll, every remaining copy is a duplicate — otherwise one of the
   remaining copies is the (stale but legitimate) response and only
   the surplus is duplicated traffic. *)
let credit_duplicates t ~consumed ~copies =
  let extras = if consumed then copies else copies - 1 in
  if extras > 0 then t.duplicates_discarded <- t.duplicates_discarded + extras

(* Ids the gate timed out on. A late response to such an id must be
   drained (and its duplicates credited) the next time the gate polls
   that shard, so it can never linger in the response queue. The
   table is bounded: ids that never get answered age out. *)
let abandoned_cap = 1024

let mark_abandoned t ~shard_idx ~request_id =
  let tbl = t.abandoned.(shard_idx) and order = t.abandoned_order.(shard_idx) in
  if not (Hashtbl.mem tbl request_id) then begin
    Hashtbl.replace tbl request_id ();
    Queue.push request_id order;
    if Queue.length order > abandoned_cap then Hashtbl.remove tbl (Queue.pop order)
  end

let drain_abandoned t ~shard_idx shard =
  let tbl = t.abandoned.(shard_idx) in
  if Hashtbl.length tbl > 0 then begin
    let arrived =
      Hashtbl.fold
        (fun id () acc ->
          let copies = Mailbox.discard_response shard.mailbox ~request_id:id in
          if copies > 0 then (id, copies) :: acc else acc)
        tbl []
    in
    List.iter
      (fun (id, copies) ->
        credit_duplicates t ~consumed:false ~copies;
        Hashtbl.remove tbl id)
      arrived
  end

let caller_privilege = function
  | Os_kernel -> Types.Os
  | User_host | User_enclave _ -> Types.User

let sender_of_caller = function
  | Os_kernel | User_host -> None
  | User_enclave id -> Some id

(* Does the response imply the bitmap changed? Those force a TLB
   shoot-down so stale "checked" entries cannot bypass the check. *)
let bitmap_changed request response =
  match (request, response) with
  | _, Types.Err _ -> false
  | (Types.Create _ | Types.Alloc _ | Types.Free _ | Types.Writeback _ | Types.Destroy _
    | Types.Shmget _ | Types.Shmdes _ | Types.Page_fault _), _ ->
    true
  | ( ( Types.Add _ | Types.Enter _ | Types.Resume _ | Types.Exit _ | Types.Shmat _
      | Types.Shmdt _ | Types.Shmshr _ | Types.Measure _ | Types.Attest _
      | Types.Interrupt _
      (* Channel primitives touch only the fabric's control blocks,
         never the page-ownership bitmap. *)
      | Types.Chan_open _ | Types.Chan_accept _ | Types.Chan_send _ | Types.Chan_recv _
      | Types.Chan_close _
      (* EWARM hands out an already-built enclave: no page changes
         ownership. *)
      | Types.Warm_create _ ),
      _ ) ->
    false
  (* ERETIRE frees dynamic heap frames (and everything, when it falls
     back to a full destroy), so stale TLB entries must go. *)
  | Types.Retire _, _ -> true

let register_tlb_flush_hook t hook = t.flush_hooks <- hook :: t.flush_hooks

let flush_tlbs t =
  t.tlb_flushes <- t.tlb_flushes + 1;
  List.iter (fun hook -> hook ()) t.flush_hooks

let transport_ns t =
  let tr = t.transport in
  tr.Config.emcall_entry_ns +. tr.Config.packet_build_ns
  +. (2.0 *. tr.Config.fabric_hop_ns)
  +. tr.Config.interrupt_ns

(* Batched doorbell timing: one doorbell drains [batch] pending
   requests, so the shared transport round (fabric hops + doorbell
   interrupt + watchdog sweep) is paid once and split across the
   batch; only gate entry and packet build stay per-call. *)
let per_call_overhead_ns t ~batch =
  if batch < 1 then invalid_arg "Emcall.per_call_overhead_ns: batch must be >= 1";
  let tr = t.transport in
  tr.Config.emcall_entry_ns +. tr.Config.packet_build_ns
  +. (Config.doorbell_shared_ns tr /. Float.of_int batch)

(* An injected interconnect latency spike: pure time, no packet
   loss. Consumed only when a fault plan is installed. *)
let transport_spike_ns t =
  match t.faults with
  | None -> 0.0
  | Some inj ->
    if Fault.fire inj Fault.Transport_delay then Fault.intensity inj Fault.Transport_delay
    else 0.0

(* Lay one completed round trip out on the tracer's virtual cursor:
   a parent EMCALL span on the gate track of the serving shard, with
   children that partition it exactly —

     gate      = EMCall entry + packet build
     transport = the rest of the modelled overhead (fabric hops +
                 doorbell, amortized when batched)
     service   = the primitive's modelled service time
     wait      = latency - overhead - service (poll quantisation,
                 jitter, injected spikes, retry backoff; >= 0 because
                 quantised latency never undercuts the raw cost)

   so gate + transport + service + wait = latency by construction —
   the reconciliation property test_obs.ml asserts. *)
let trace_call t ~shard_idx ~request ~request_id ~overhead_ns ~service_ns ~latency_ns =
  let module Trace = Hypertee_obs.Trace in
  match Trace.installed () with
  | None -> ()
  | Some tracer ->
    let tr = t.transport in
    let gate_ns = tr.Config.emcall_entry_ns +. tr.Config.packet_build_ns in
    let fabric_ns = overhead_ns -. gate_ns in
    let wait_ns = latency_ns -. overhead_ns -. service_ns in
    let start = Trace.now tracer in
    let track = Trace.track_gate shard_idx in
    let opcode = Types.opcode_name (Types.opcode_of_request request) in
    let enclave = Hypertee_ems.Runtime.enclave_of_request request in
    let parent =
      Trace.emit ~track ?enclave ~opcode ~request_id ~cat:Trace.Emcall
        ~name:("EMCALL:" ^ opcode) ~start_ns:start ~dur_ns:latency_ns ()
    in
    let child cat name off dur =
      ignore
        (Trace.emit ~track ~parent ?enclave ~opcode ~request_id ~cat ~name
           ~start_ns:(start +. off) ~dur_ns:dur ())
    in
    child Trace.Gate "gate" 0.0 gate_ns;
    child Trace.Transport "transport" gate_ns fabric_ns;
    child Trace.Service "service" (gate_ns +. fabric_ns) service_ns;
    child Trace.Wait "wait" (gate_ns +. fabric_ns +. service_ns) wait_ns;
    Trace.advance tracer latency_ns

let complete t shard ~shard_idx ~request ~request_id ~overhead_ns ~extra_ns response =
  (* Any further copies of this response are duplicates: detect and
     discard them here, so a duplicated packet can never be mistaken
     for the answer to a later request. *)
  credit_duplicates t ~consumed:true
    ~copies:(Mailbox.discard_response shard.mailbox ~request_id);
  let service = t.service_ns request in
  let raw = overhead_ns +. service +. extra_ns in
  let slot = t.transport.Config.poll_slot_ns in
  (* Polling rounds the observable latency *up* to the next slot
     boundary; a raw cost already on a boundary completes in that
     slot and must not pay an extra one. *)
  let quantised = Float.ceil (raw /. slot) *. slot in
  let jitter = Hypertee_util.Xrng.float t.rng *. slot in
  let latency = quantised +. jitter in
  if Hypertee_obs.Trace.enabled () then
    trace_call t ~shard_idx ~request ~request_id ~overhead_ns ~service_ns:service
      ~latency_ns:latency;
  if bitmap_changed request response then flush_tlbs t;
  (match (request, response) with
  | (Types.Enter _ | Types.Resume _), Types.Ok_entered _ ->
    (* Atomic CS register update: satp switch + IS_ENCLAVE are
       performed by the platform layer inside the same gate
       call; the TLB flush is issued here. *)
    flush_tlbs t
  | _ -> ());
  Ok (response, latency)

let gate_check t ~caller request =
  let opcode = Types.opcode_of_request request in
  let required = Types.required_privilege opcode in
  (* Page faults are forwarded by EMCall itself from trap context;
     they bypass the privilege check (machine mode). *)
  let is_fault =
    match request with Types.Page_fault _ | Types.Interrupt _ -> true | _ -> false
  in
  if (not is_fault) && caller_privilege caller <> required then begin
    t.rejected <- t.rejected + 1;
    Error Cross_privilege
  end
  else Ok (sender_of_caller caller)

(* EMCall polls — never the untrusted interrupt path. Polling
   quantises observable latency to poll slots and adds jitter, the
   paper's obfuscation against timing side channels.

   Under faults the response may be late (stalled worker), lost
   (dropped packet) or garbled (bad CRC): poll up to [poll_budget]
   slots — each poll re-rings the doorbell, which runs the EMS
   watchdog — then re-ask the mailbox for the response by id with
   exponential backoff. Re-asking hits the answered cache, never
   re-executes the primitive: delivery is exactly-once by
   construction. *)
let await t shard ~shard_idx ~request ~request_id ~overhead_ns ~extra_ns =
  (* Late responses to previously timed-out ids are stale by
     definition: drain them before polling for the live id. *)
  drain_abandoned t ~shard_idx shard;
  let slot_ns = t.transport.Config.poll_slot_ns in
  let rec go ~polls ~retry_count ~extra_ns =
    match Mailbox.poll_response shard.mailbox ~request_id with
    | Some response ->
      complete t shard ~shard_idx ~request ~request_id ~overhead_ns ~extra_ns response
    | None ->
      if polls < t.retry.poll_budget then begin
        shard.ems_service ();
        go ~polls:(polls + 1) ~retry_count ~extra_ns:(extra_ns +. slot_ns)
      end
      else if retry_count < t.retry.max_retries then begin
        t.retries <- t.retries + 1;
        if Hypertee_obs.Trace.enabled () then
          Hypertee_obs.Trace.instant
            ~track:(Hypertee_obs.Trace.track_gate shard_idx)
            ~request_id ~cat:Hypertee_obs.Trace.Wait ~name:"emcall:retry" ();
        ignore (Mailbox.resend_request shard.mailbox ~request_id);
        shard.ems_service ();
        let backoff = t.retry.backoff_base_ns *. Float.of_int (1 lsl retry_count) in
        go ~polls:0 ~retry_count:(retry_count + 1) ~extra_ns:(extra_ns +. backoff)
      end
      else begin
        t.timeouts <- t.timeouts + 1;
        if Hypertee_obs.Trace.enabled () then
          Hypertee_obs.Trace.instant
            ~track:(Hypertee_obs.Trace.track_gate shard_idx)
            ~request_id ~cat:Hypertee_obs.Trace.Wait ~name:"emcall:timeout" ();
        (* Whatever arrives after the deadline is stale: make sure
           a late or duplicated response can never be collected by
           a future request (ids are unique, but the slot should
           not linger). Copies discarded here count toward the same
           duplicate telemetry as the [complete] path, and the id
           stays on the abandoned list so a response arriving even
           later is drained too. *)
        credit_duplicates t ~consumed:false
          ~copies:(Mailbox.discard_response shard.mailbox ~request_id);
        mark_abandoned t ~shard_idx ~request_id;
        Error Timeout
      end
  in
  go ~polls:0 ~retry_count:0 ~extra_ns

let invoke_timed t ~caller request =
  let result =
    match gate_check t ~caller request with
    | Error _ as e -> e
    | Ok _ when not (admit t) -> Error Busy
    | Ok sender -> (
      let shard_idx = shard_of t request in
      let shard = t.shards.(shard_idx) in
      match Mailbox.send_request shard.mailbox ~sender_enclave:sender request with
      | Error `Full ->
        t.rejected <- t.rejected + 1;
        Error Mailbox_full
      | Ok request_id ->
        (* Doorbell: the EMS side drains the queue and posts responses. *)
        shard.ems_service ();
        await t shard ~shard_idx ~request ~request_id ~overhead_ns:(transport_ns t)
          ~extra_ns:(transport_spike_ns t))
  in
  observe t ~caller ~batched:false request result;
  result

let invoke t ~caller request = Result.map fst (invoke_timed t ~caller request)

(* One doorbell per shard drains every request of the batch that
   landed there (through the EMS scheduler), so the shared transport
   round amortizes over the per-shard batch size. Results come back
   in request order, each with its own modelled latency. *)
let invoke_batch t requests =
  let sent =
    List.map
      (fun (caller, request) ->
        match gate_check t ~caller request with
        | Error rejection -> Error rejection
        | Ok _ when not (admit t) -> Error Busy
        | Ok sender -> (
          let idx = shard_of t request in
          let shard = t.shards.(idx) in
          match Mailbox.send_request shard.mailbox ~sender_enclave:sender request with
          | Error `Full ->
            t.rejected <- t.rejected + 1;
            Error Mailbox_full
          | Ok request_id -> Ok (idx, request_id, request)))
      requests
  in
  (* Per-shard batch sizes, for the amortized timing model. *)
  let per_shard = Array.make (Array.length t.shards) 0 in
  List.iter
    (function Ok (idx, _, _) -> per_shard.(idx) <- per_shard.(idx) + 1 | Error _ -> ())
    sent;
  (* Snapshot every shard's scheduler-log cursor so the drain's
     realized execution order can be recovered once the batch is
     collected. *)
  let marks =
    match t.drain_order_probe with
    | None -> [||]
    | Some probe -> Array.init (Array.length t.shards) (fun i -> List.length (probe i))
  in
  (* One doorbell per shard with pending work: the drain serves the
     whole batch before any caller starts polling. Distinct shards'
     drains are independent — each touches only its own shard state
     plus the mutex-guarded shared fabric (mailboxes, frame pool,
     MEE key table) — so with a worker pool installed they ring
     concurrently, one domain per shard. [run_all]'s barrier is the
     batch's synchronization point: no caller polls until every
     drain has posted its responses. *)
  let ringing =
    Array.of_seq
      (Seq.filter_map
         (fun idx -> if per_shard.(idx) > 0 then Some idx else None)
         (Seq.init (Array.length per_shard) Fun.id))
  in
  (match t.pool with
  | Some pool when Hypertee_util.Domain_pool.size pool > 1 && Array.length ringing > 1 ->
    Hypertee_util.Domain_pool.run_all pool
      (Array.map (fun idx () -> t.shards.(idx).ems_service ()) ringing)
  | _ -> Array.iter (fun idx -> t.shards.(idx).ems_service ()) ringing);
  let outcomes =
    List.map2
      (fun (caller, request) outcome ->
        let result =
          match outcome with
          | Error rejection -> Error rejection
          | Ok (idx, request_id, request) ->
            let shard = t.shards.(idx) in
            let overhead_ns = per_call_overhead_ns t ~batch:per_shard.(idx) in
            await t shard ~shard_idx:idx ~request ~request_id ~overhead_ns
              ~extra_ns:(transport_spike_ns t)
        in
        (caller, request, outcome, result))
      requests sent
  in
  (* Taps fire in the drain order the scheduler actually produced —
     gate rejections first (they never reached a scheduler), then
     each shard's results by log position — so a sequential observer
     (the oracle) sees state mutations in execution order even
     though the drain itself is shuffle-randomized. Results still
     return in request order below. *)
  let drain_pos =
    match t.drain_order_probe with
    | None -> fun _ _ -> max_int
    | Some probe ->
      let suffix_pos =
        Array.mapi
          (fun i mark ->
            let tbl = Hashtbl.create 16 in
            List.iteri
              (fun pos id ->
                if pos >= mark && not (Hashtbl.mem tbl id) then Hashtbl.add tbl id pos)
              (probe i);
            tbl)
          marks
      in
      fun idx request_id ->
        Option.value ~default:max_int (Hashtbl.find_opt suffix_pos.(idx) request_id)
  in
  let keyed =
    List.mapi
      (fun i (caller, request, outcome, result) ->
        let key =
          match outcome with
          | Error _ -> (-1, 0, i)
          | Ok (idx, request_id, _) -> (idx, drain_pos idx request_id, i)
        in
        (key, (caller, request, result)))
      outcomes
  in
  List.iter
    (fun (_, (caller, request, result)) -> observe t ~caller ~batched:true request result)
    (List.sort (fun (a, _) (b, _) -> compare a b) keyed);
  List.map (fun (_, _, _, result) -> result) outcomes

let rejected t = t.rejected
let shed t = t.shed
let tlb_flushes t = t.tlb_flushes
let timeouts t = t.timeouts
let retries t = t.retries
let duplicates_discarded t = t.duplicates_discarded

let publish_metrics t registry =
  let module M = Hypertee_obs.Metrics in
  let set name help v = M.set_counter (M.counter registry ~help ("emcall." ^ name)) v in
  set "rejected" "requests blocked at the gate" t.rejected;
  set "shed" "requests shed by admission control (Busy)" t.shed;
  set "tlb_flushes" "TLB shoot-downs issued" t.tlb_flushes;
  set "timeouts" "invocations that exhausted the retry budget" t.timeouts;
  set "retries" "response re-requests issued" t.retries;
  set "duplicates_discarded" "duplicate response copies discarded" t.duplicates_discarded;
  set "shards" "EMS shards behind the gate" (shard_count t)
