module Phys_mem = Hypertee_arch.Phys_mem
module Page_table = Hypertee_arch.Page_table
module Pte = Hypertee_arch.Pte

type process = {
  pid : int;
  page_table : Page_table.t;
  mutable mapped_pages : int;
  mutable brk_vpn : int;
}

type t = {
  mem : Phys_mem.t;
  mutable next_pid : int;
  mutable procs : process list;
  mutable ems_refills : int;
  lock : Mutex.t;
      (* The CS OS free list is the one allocator every shard's pool
         refills from: find_free + set_owner must be atomic or two
         shards draining in parallel can be handed the same frame. *)
}

let create mem = { mem; next_pid = 1; procs = []; ems_refills = 0; lock = Mutex.create () }
let mem t = t.mem

let alloc_frames t ~n =
  Mutex.protect t.lock @@ fun () ->
  match Phys_mem.find_free t.mem ~n with
  | Some frames ->
    List.iter (fun f -> Phys_mem.set_owner t.mem f Phys_mem.Cs_os) frames;
    frames
  | None -> (
    (* Partial allocation: take what exists. *)
    let rec take n =
      if n = 0 then []
      else
        match Phys_mem.find_free t.mem ~n:1 with
        | Some [ f ] ->
          Phys_mem.set_owner t.mem f Phys_mem.Cs_os;
          f :: take (n - 1)
        | Some _ | None -> []
    in
    take n)

let free_frames t ~frames =
  Mutex.protect t.lock @@ fun () ->
  List.iter
    (fun f ->
      Phys_mem.zero t.mem ~frame:f;
      Phys_mem.set_owner t.mem f Phys_mem.Free)
    frames

let ems_refill_requests t = t.ems_refills

let pool_request t ~n =
  Mutex.protect t.lock (fun () -> t.ems_refills <- t.ems_refills + 1);
  alloc_frames t ~n

let pool_return t ~frames =
  (* EMS already zeroed and freed ownership; just fold them back. *)
  Mutex.protect t.lock @@ fun () ->
  List.iter
    (fun f -> if Phys_mem.owner t.mem f = Phys_mem.Free then () else Phys_mem.set_owner t.mem f Phys_mem.Free)
    frames

let spawn t =
  let alloc () =
    match alloc_frames t ~n:1 with [ f ] -> f | _ -> failwith "out of memory"
  in
  let page_table = Page_table.create t.mem ~node_owner:Phys_mem.Cs_os ~alloc in
  let p = { pid = t.next_pid; page_table; mapped_pages = 0; brk_vpn = 0x1000 } in
  t.next_pid <- t.next_pid + 1;
  t.procs <- p :: t.procs;
  p

let malloc_pages t p ~pages =
  let frames = alloc_frames t ~n:pages in
  if List.length frames < pages then begin
    free_frames t ~frames;
    None
  end
  else begin
    let base = p.brk_vpn in
    List.iteri
      (fun i frame ->
        Page_table.map p.page_table ~vpn:(base + i)
          (Pte.leaf ~ppn:frame ~r:true ~w:true ~x:false ~key_id:0))
      frames;
    p.brk_vpn <- base + pages;
    p.mapped_pages <- p.mapped_pages + pages;
    Some base
  end

let free_pages t p ~vpn ~pages =
  for i = 0 to pages - 1 do
    match Page_table.lookup p.page_table ~vpn:(vpn + i) with
    | Some pte ->
      Page_table.unmap p.page_table ~vpn:(vpn + i);
      free_frames t ~frames:[ pte.Pte.ppn ];
      p.mapped_pages <- p.mapped_pages - 1
    | None -> ()
  done

let free_count t = Phys_mem.count_owned t.mem (fun o -> o = Phys_mem.Free)
let processes t = t.procs
