(** EMCall: the trusted call gate in CS firmware (paper Sec. III-B/C).

    The only legal path from CS software to EMS. Runs at the highest
    CS privilege level, so it can:

    - check the caller's privilege mode against the primitive's
      required mode (cross-privilege invocation is blocked);
    - stamp the *hardware-known* current enclave identity on each
      request (forgery of another enclave's identity is impossible);
    - transmit over the private mailbox and poll for the response
      bound to this request id (untrusted interrupt handlers never
      touch responses);
    - perform the CS-side register updates of EENTER/ERESUME
      atomically: satp switch, IS_ENCLAVE flip, TLB flush;
    - flush TLBs when EMS reports bitmap changes.

    Recovery (availability, Table I): a response that fails to
    arrive within the poll budget — stalled worker, dropped or
    corrupted packet — is re-requested from the mailbox by id with
    bounded exponential backoff. Re-requests are idempotent (served
    from the mailbox's answered cache, never re-executed), duplicate
    responses are detected and discarded, and an exhausted budget
    surfaces as the [Timeout] rejection: [invoke] can never hang and
    never raises.

    Timing: [last_latency_ns] exposes the modelled round-trip
    (EMCall entry + packet build + fabric hops + doorbell + EMS
    service + polling quantisation with obfuscation jitter, plus any
    injected transport spikes, poll waits and retry backoff). *)

type caller = Os_kernel | User_host | User_enclave of Hypertee_ems.Types.enclave_id

type rejection =
  | Cross_privilege  (** caller mode does not match Table II *)
  | Mailbox_full
  | Timeout  (** no response within the poll/retry budget *)

type retry_policy = {
  poll_budget : int;  (** poll slots waited before each re-request *)
  max_retries : int;  (** re-requests before giving up *)
  backoff_base_ns : float;  (** backoff added per retry, doubling *)
}

val default_retry_policy : retry_policy

type t

(** [create ~rng ~transport ~mailbox ~ems_service ~service_ns ()]
    wires the gate to a mailbox whose EMS side is drained by
    [ems_service] (the platform calls the runtime there; each poll
    re-rings it, which also runs the EMS watchdog). [service_ns]
    prices a request for the timing model. *)
val create :
  ?retry:retry_policy ->
  rng:Hypertee_util.Xrng.t ->
  transport:Hypertee_arch.Config.transport ->
  mailbox:(Hypertee_ems.Types.request, Hypertee_ems.Types.response) Hypertee_arch.Mailbox.t ->
  ems_service:(unit -> unit) ->
  service_ns:(Hypertee_ems.Types.request -> float) ->
  unit ->
  t

(** Install the platform's fault injector (transport latency
    spikes). *)
val set_fault_injector : t -> Hypertee_faults.Fault.t -> unit

(** [invoke t ~caller request] runs the full gate flow and returns
    the EMS response, or a gate-level rejection. Total work is
    bounded: at most [poll_budget * (max_retries + 1)] polls. *)
val invoke :
  t ->
  caller:caller ->
  Hypertee_ems.Types.request ->
  (Hypertee_ems.Types.response, rejection) result

(** Modelled round-trip time of the last successful [invoke]. *)
val last_latency_ns : t -> float

(** Transport-only part of the round trip for a request of the given
    EMS service time (used by the queueing experiment of Fig. 6). *)
val transport_ns : t -> float

(** Number of requests blocked at the gate (attack telemetry). *)
val rejected : t -> int

(** Recovery telemetry: invocations that exhausted the retry budget,
    re-requests issued, duplicate response copies discarded. *)
val timeouts : t -> int

val retries : t -> int
val duplicates_discarded : t -> int

(** TLB flushes EMCall has issued (enclave context switches + bitmap
    updates, Fig. 11). The platform layer registers per-core flush
    callbacks. *)
val tlb_flushes : t -> int

val register_tlb_flush_hook : t -> (unit -> unit) -> unit

(** [flush_tlbs t] — invoked on enclave context switch and on bitmap
    updates (EMS responses that changed the bitmap). *)
val flush_tlbs : t -> unit
