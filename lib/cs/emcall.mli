(** EMCall: the trusted call gate in CS firmware (paper Sec. III-B/C).

    The only legal path from CS software to EMS. Runs at the highest
    CS privilege level, so it can:

    - check the caller's privilege mode against the primitive's
      required mode (cross-privilege invocation is blocked);
    - stamp the *hardware-known* current enclave identity on each
      request (forgery of another enclave's identity is impossible);
    - transmit over the private mailbox and poll for the response
      bound to this request id (untrusted interrupt handlers never
      touch responses);
    - perform the CS-side register updates of EENTER/ERESUME
      atomically: satp switch, IS_ENCLAVE flip, TLB flush;
    - flush TLBs when EMS reports bitmap changes.

    Sharding: the platform may host several independent EMS
    instances. The gate holds one mailbox + doorbell per shard and
    routes each request by the platform-provided affinity function —
    privilege checks and identity stamping happen here, once, no
    matter how many shards serve behind the gate.

    Recovery (availability, Table I): a response that fails to
    arrive within the poll budget — stalled worker, dropped or
    corrupted packet — is re-requested from the mailbox by id with
    bounded exponential backoff. Re-requests are idempotent (served
    from the mailbox's answered cache, never re-executed), duplicate
    responses are detected and discarded, and an exhausted budget
    surfaces as the [Timeout] rejection: [invoke] can never hang and
    never raises.

    Timing: [invoke_timed] returns the modelled round-trip (EMCall
    entry + packet build + fabric hops + doorbell + EMS service +
    polling quantisation with obfuscation jitter, plus any injected
    transport spikes, poll waits and retry backoff) alongside the
    response. [invoke_batch] models one doorbell draining a batch:
    the shared transport round amortizes over the per-shard batch
    size. *)

type caller = Os_kernel | User_host | User_enclave of Hypertee_ems.Types.enclave_id

type rejection =
  | Cross_privilege  (** caller mode does not match Table II *)
  | Mailbox_full
  | Timeout  (** no response within the poll/retry budget *)
  | Busy  (** shed by token-bucket admission control (EBUSY) *)

type retry_policy = {
  poll_budget : int;  (** poll slots waited before each re-request *)
  max_retries : int;  (** re-requests before giving up *)
  backoff_base_ns : float;  (** backoff added per retry, doubling *)
}

val default_retry_policy : retry_policy

(** One EMS instance behind the gate: its private mailbox and the
    doorbell that makes it drain the queue (the platform calls the
    runtime there; each poll re-rings it, which also runs the EMS
    watchdog). *)
type shard = {
  mailbox : (Hypertee_ems.Types.request, Hypertee_ems.Types.response) Hypertee_arch.Mailbox.t;
  ems_service : unit -> unit;
}

type t

(** [create ~rng ~transport ~mailbox ~ems_service ~service_ns ()]
    wires a single-shard gate (the common case and the historical
    interface). [service_ns] prices a request for the timing
    model. *)
val create :
  ?retry:retry_policy ->
  rng:Hypertee_util.Xrng.t ->
  transport:Hypertee_arch.Config.transport ->
  mailbox:(Hypertee_ems.Types.request, Hypertee_ems.Types.response) Hypertee_arch.Mailbox.t ->
  ems_service:(unit -> unit) ->
  service_ns:(Hypertee_ems.Types.request -> float) ->
  unit ->
  t

(** [create_sharded ~shards ~route ...] wires the gate to several EMS
    instances; [route] maps a request to the index of the shard that
    owns the enclave it acts on (out-of-range indices are clamped).
    @raise Invalid_argument on an empty shard array. *)
val create_sharded :
  ?retry:retry_policy ->
  rng:Hypertee_util.Xrng.t ->
  transport:Hypertee_arch.Config.transport ->
  shards:shard array ->
  route:(Hypertee_ems.Types.request -> int) ->
  service_ns:(Hypertee_ems.Types.request -> float) ->
  unit ->
  t

val shard_count : t -> int

(** Install the platform's fault injector (transport latency
    spikes). *)
val set_fault_injector : t -> Hypertee_faults.Fault.t -> unit

(** {2 Admission control}

    A token bucket in front of the mailboxes: each admitted request
    consumes one token; an empty bucket sheds the request with the
    typed {!Busy} rejection instead of letting the queues collapse.
    Tokens refill on a {e virtual} clock the load driver advances
    with {!advance_admission_ns} — fully deterministic. No bucket is
    installed by default, so existing callers see no change. *)

(** [set_admission t ~rate_per_s ~burst] installs (or replaces) the
    bucket, initially full.
    @raise Invalid_argument on a non-positive rate or burst. *)
val set_admission : t -> rate_per_s:float -> burst:int -> unit

(** Remove the bucket: every request admitted again. *)
val clear_admission : t -> unit

(** Advance the bucket's virtual clock by [ns], refilling
    [rate_per_s * ns / 1e9] tokens up to [burst]. No-op without a
    bucket or for non-positive [ns]. *)
val advance_admission_ns : t -> float -> unit

(** Current token count, if a bucket is installed (tests). *)
val admission_tokens : t -> float option

(** Requests shed with {!Busy} since creation. *)
val shed : t -> int

(** Install a worker pool: {!invoke_batch} rings the doorbells of
    distinct shards concurrently (one domain per shard with pending
    work) instead of sequentially, joining before any caller polls.
    Per-shard semantics and the timing model are unchanged; without
    a pool — or with a single-domain pool — the fan-out is the
    sequential loop it always was. *)
val set_pool : t -> Hypertee_util.Domain_pool.t -> unit

(** [set_drain_order_probe t probe] — [probe i] must return shard
    [i]'s request ids in execution order (the scheduler's full log).
    [invoke_batch] snapshots each shard's log length before ringing
    the doorbells and slices the suffix afterwards, recovering the
    realized drain order; batched taps then fire in that order (the
    scheduler's anti-side-channel shuffle stays in force — only the
    post-hoc observation is ordered). The platform wires this to its
    shard schedulers. *)
val set_drain_order_probe : t -> (int -> int list) -> unit

(** Observation point for the differential oracle
    ({!Hypertee_check.Oracle} via [Platform.attach_oracle]): called
    once per completed invocation — [invoke]/[invoke_timed] and every
    element of an [invoke_batch] — with the caller, the request, and
    the result (response or gate rejection). [batched] marks results
    collected from a batch doorbell; their taps fire after the whole
    batch completes, in the drain order the scheduler actually
    executed (recovered via {!set_drain_order_probe}; without a
    probe, request order). The tap observes after the gate is fully
    done with the call (duplicates discarded, TLBs flushed). *)
type tap =
  caller:caller ->
  batched:bool ->
  Hypertee_ems.Types.request ->
  (Hypertee_ems.Types.response * float, rejection) result ->
  unit

val set_tap : t -> tap -> unit
val clear_tap : t -> unit

(** [invoke t ~caller request] runs the full gate flow and returns
    the EMS response, or a gate-level rejection. Total work is
    bounded: at most [poll_budget * (max_retries + 1)] polls. *)
val invoke :
  t ->
  caller:caller ->
  Hypertee_ems.Types.request ->
  (Hypertee_ems.Types.response, rejection) result

(** Like [invoke], also returning this call's modelled round-trip
    time. Latency is always returned per call — a shared
    last-latency cell would race across shards and interleaved
    callers. *)
val invoke_timed :
  t ->
  caller:caller ->
  Hypertee_ems.Types.request ->
  (Hypertee_ems.Types.response * float, rejection) result

(** [invoke_batch t requests] sends every request, rings each
    involved shard's doorbell once (the EMS drains the whole batch
    through its scheduler), then collects the responses in request
    order. Each result carries its own modelled latency; the shared
    transport round is split over the per-shard batch size. *)
val invoke_batch :
  t ->
  (caller * Hypertee_ems.Types.request) list ->
  (Hypertee_ems.Types.response * float, rejection) result list

(** Transport-only part of the round trip for a request of the given
    EMS service time (used by the queueing experiment of Fig. 6). *)
val transport_ns : t -> float

(** Modelled per-EMCall gate + transport overhead when one doorbell
    drains [batch] requests: entry and packet build stay per-call,
    the shared round (fabric hops + doorbell + watchdog sweep) is
    paid once and split [batch] ways. Strictly decreasing in
    [batch].
    @raise Invalid_argument if [batch < 1]. *)
val per_call_overhead_ns : t -> batch:int -> float

(** Number of requests blocked at the gate (attack telemetry). *)
val rejected : t -> int

(** Recovery telemetry: invocations that exhausted the retry budget,
    re-requests issued, duplicate response copies discarded. *)
val timeouts : t -> int

val retries : t -> int
val duplicates_discarded : t -> int

(** TLB flushes EMCall has issued (enclave context switches + bitmap
    updates, Fig. 11). The platform layer registers per-core flush
    callbacks. *)
val tlb_flushes : t -> int

val register_tlb_flush_hook : t -> (unit -> unit) -> unit

(** [flush_tlbs t] — invoked on enclave context switch and on bitmap
    updates (EMS responses that changed the bitmap). *)
val flush_tlbs : t -> unit

(** {2 Observability}

    With a tracer installed ({!Hypertee_obs.Trace.install}) every
    completed invocation lays an [EMCALL:<op>] span on the serving
    shard's gate track, decomposed into gate / transport / service /
    wait children that sum {e exactly} to the recorded latency, and
    advances the tracer's virtual cursor by that latency. Retries and
    timeouts appear as instant events. With no tracer the path is
    allocation-free. *)

(** Snapshot gate counters (rejected, TLB flushes, timeouts, retries,
    duplicates discarded, shard count) into a metrics registry under
    [emcall.*]. *)
val publish_metrics : t -> Hypertee_obs.Metrics.t -> unit
