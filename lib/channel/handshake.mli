(** Three-flight SIGMA-bound handshake (docs/PROTOCOL.md §5).

    Runs the platform's SIGMA attestation flow as channel session
    establishment: ClientHello carries the initiator's random and DH
    share; ServerAttest answers with the responder's share, an
    attestation quote whose user_data commits to the channel binding
    and both DH shares (§5.3), and a SIGMA transcript MAC;
    ClientFinish closes the exchange with the initiator's MAC and —
    for enclave-to-enclave channels — its own quote. On completion
    both sides hold an established {!Record.t} keyed from the SIGMA
    session key, the EMS channel binding and the transcript hash.

    The machine is flight-structured: a driver calls {!start} once,
    transmits the returned segments, and feeds each received segment
    to {!on_segment}, transmitting whatever comes back, until
    {!conn} is [Some]. Any failure is terminal ({!failed}); the
    machine never retries. *)

(** Who speaks first. An initiator may be a host client or an
    enclave; the responder is always the attested (listening)
    enclave. *)
type role = Initiator | Responder

(** Attestation plumbing the handshake calls out to.

    [make_quote] produces this side's quote over the §5.3 user_data
    commitment — mandatory for responders, optional for initiators
    (present = enclave-to-enclave). [verify_quote] judges the peer's
    quote against the expected commitment. [require_peer_quote]
    makes a responder reject initiators that send no quote. *)
type auth = {
  make_quote : (user_data:bytes -> (bytes, string) result) option;
  verify_quote : quote:bytes -> user_data:bytes -> (unit, string) result;
  require_peer_quote : bool;
}

type t

(** [create ~role ~rng ~binding ~auth ()] — [binding] is the 16-byte
    EMS channel-binding secret both endpoints received from
    ECHOPEN/ECHACC (§4.1); [rekey_after] is forwarded to the record
    layer. @raise Invalid_argument on a wrong-size binding or a
    responder without [make_quote]. *)
val create :
  role:role ->
  rng:Hypertee_util.Xrng.t ->
  binding:bytes ->
  auth:auth ->
  ?rekey_after:int ->
  unit ->
  t

(** First flight: an initiator returns its ClientHello segment, a
    responder returns nothing. Calling twice is an error. *)
val start : t -> (bytes list, string) result

(** Feed one received handshake segment; returns the segments to
    transmit in response (possibly none). Errors are terminal. *)
val on_segment : t -> bytes -> (bytes list, string) result

(** The established record connection once the handshake is done. *)
val conn : t -> Record.t option

(** Terminal failure reason, if the handshake failed. *)
val failed : t -> string option

(** True once the handshake completed successfully. *)
val complete : t -> bool

(** The role this machine was created with. *)
val role : t -> role
