(** Interop-style conformance tester for the secure-channel protocol
    (docs/PROTOCOL.md §7).

    Replays canned handshake flights and well-formed records against
    the {!Handshake}/{!Record} state machines and asserts the shapes
    the spec fixes, then feeds every malformed-record and
    malformed-flight case and asserts each is rejected and the
    connection fails closed. Every vector cites the PROTOCOL.md
    section it checks; [make check] and CI run the suite via the
    CLI's [conformance] command. *)

(** One vector's verdict: its name, the spec section it cites, and a
    failure detail when [ok] is false. *)
type outcome = { name : string; section : string; ok : bool; detail : string }

(** Run every vector, in spec order. Deterministic (seeded RNGs). *)
val run : unit -> outcome list

(** True iff every vector passed. *)
val all_ok : outcome list -> bool

(** ASCII report table. *)
val render : outcome list -> string
