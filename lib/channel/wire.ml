(* Wire-format constants and encodings shared by the record layer and
   the handshake state machine. Everything here is fixed by
   docs/PROTOCOL.md; the conformance tester checks these numbers
   against the spec's vectors, so changing one is a protocol break. *)

let version = 0x01
let max_segment = 1024
let header_len = 13
let tag_len = 16
let max_ciphertext = max_segment - header_len - tag_len
let max_plaintext = max_ciphertext

(* §3.2 content types *)
let ct_handshake = 1
let ct_application = 2
let ct_alert = 3
let ct_rekey = 4

(* §6 alert codes *)
let alert_close_notify = 1
let alert_bad_record = 2
let alert_protocol_error = 3

(* §5.1 handshake message types *)
let hs_client_hello = 0x01
let hs_server_attest = 0x02
let hs_client_finish = 0x03

let random_len = 32
let dh_len = 32
let mac_len = 32
let binding_len = 16

type header = { content_type : int; seq : int64; generation : int; ct_len : int }

let put_header b ~off h =
  Bytes.set_uint8 b off h.content_type;
  Bytes.set_uint8 b (off + 1) version;
  Bytes.set_uint16_be b (off + 2) h.ct_len;
  Hypertee_util.Bytes_ext.set_u64_be b (off + 4) h.seq;
  Bytes.set_uint8 b (off + 12) h.generation

let get_header b ~off =
  let content_type = Bytes.get_uint8 b off in
  let v = Bytes.get_uint8 b (off + 1) in
  let ct_len = Bytes.get_uint16_be b (off + 2) in
  let seq = Hypertee_util.Bytes_ext.get_u64_be b (off + 4) in
  let generation = Bytes.get_uint8 b (off + 12) in
  if v <> version then Error `Bad_version else Ok { content_type; seq; generation; ct_len }

(* §3.3 nonce layout: direction byte ‖ generation ‖ 0^6 ‖ seq (u64 BE). *)
let dir_client_to_server = 0x43 (* 'C' *)
let dir_server_to_client = 0x53 (* 'S' *)

let nonce_into b ~direction ~generation ~seq =
  Hypertee_util.Bytes_ext.fill_zero b;
  Bytes.set_uint8 b 0 direction;
  Bytes.set_uint8 b 1 generation;
  Hypertee_util.Bytes_ext.set_u64_be b 8 seq

(* §5.1 handshake message framing: type ‖ version ‖ u16 BE body length
   ‖ body. *)
let hs_header_len = 4

let put_hs ~msg_type body =
  let n = Bytes.length body in
  let b = Bytes.create (hs_header_len + n) in
  Bytes.set_uint8 b 0 msg_type;
  Bytes.set_uint8 b 1 version;
  Bytes.set_uint16_be b 2 n;
  Bytes.blit body 0 b hs_header_len n;
  b

let get_hs msg =
  if Bytes.length msg < hs_header_len then Error `Truncated
  else
    let msg_type = Bytes.get_uint8 msg 0 in
    let v = Bytes.get_uint8 msg 1 in
    let n = Bytes.get_uint16_be msg 2 in
    if v <> version then Error `Bad_version
    else if Bytes.length msg <> hs_header_len + n then Error `Truncated
    else Ok (msg_type, Bytes.sub msg hs_header_len n)
