(* Streaming AEAD record layer (docs/PROTOCOL.md §3-§4): AES-CTR +
   16-byte keyed-sponge tag per record, encrypt-then-MAC over a
   contiguous header‖ciphertext buffer, strict sequence numbers,
   generation-tagged rekeying. Any failed check poisons the
   connection and wipes its secrets — the layer fails closed. *)

open Hypertee_crypto
module Bx = Hypertee_util.Bytes_ext
module Trace = Hypertee_obs.Trace

type role = Client | Server

type error =
  | Bad_version
  | Bad_mac
  | Bad_length
  | Replay of { expected : int64; got : int64 }
  | Bad_generation of { expected : int; got : int }
  | Bad_content of int
  | Too_big
  | Exhausted
  | Closed
  | Peer_alert of int

let error_message = function
  | Bad_version -> "record version mismatch"
  | Bad_mac -> "record tag verification failed"
  | Bad_length -> "record length inconsistent"
  | Replay { expected; got } ->
    Printf.sprintf "sequence violation: expected %Ld, got %Ld" expected got
  | Bad_generation { expected; got } ->
    Printf.sprintf "key generation mismatch: expected %d, got %d" expected got
  | Bad_content c -> Printf.sprintf "unknown content type %d" c
  | Too_big -> "message exceeds the stream cap"
  | Exhausted -> "key-generation space exhausted"
  | Closed -> "connection closed"
  | Peer_alert c -> Printf.sprintf "peer raised alert %d" c

type event = Message of bytes | Peer_closed

(* One direction of the duplex: its traffic secret, the record keys
   expanded from it for the current generation, and the cursor. *)
type dir = {
  direction : int;
  mutable secret : bytes;
  mutable key : Aes.key;
  mutable mac : Keccak.keyed;
  mutable seq : int64;
  mutable generation : int;
}

type t = {
  write : dir;
  read : dir;
  rekey_after : int;
  nonce : bytes;
  tag_scratch : bytes;
  rbuf : Buffer.t;
  mutable poisoned : error option;
  mutable write_closed : bool;
  mutable read_closed : bool;
  mutable sealed : int;
  mutable opened : int;
  mutable rekeys : int;
}

type stats = { records_sealed : int; records_opened : int; rekeys_done : int }

(* §3.5: bound the reassembled message size so a corrupt-but-
   authenticated length prefix cannot ask for unbounded memory. *)
let max_message = 1 lsl 24
let default_rekey_after = 256

let expand_dir_keys secret =
  let key = Kdf.expand_label ~secret ~label:"key" ~context:Bytes.empty 16 in
  let mac = Kdf.expand_label ~secret ~label:"mac" ~context:Bytes.empty 16 in
  let k = Aes.expand key in
  let m = Keccak.keyed_init ~key:mac in
  Bx.fill_zero key;
  Bx.fill_zero mac;
  (k, m)

let make_dir ~direction ~secret =
  let key, mac = expand_dir_keys secret in
  { direction; secret; key; mac; seq = 0L; generation = 0 }

let create ~role ~master ~transcript ?(rekey_after = default_rekey_after) () =
  if rekey_after < 1 then invalid_arg "Record.create: rekey_after must be >= 1";
  let c_secret = Kdf.derive_secret ~secret:master ~label:"c traffic" ~transcript 16 in
  let s_secret = Kdf.derive_secret ~secret:master ~label:"s traffic" ~transcript 16 in
  let write, read =
    match role with
    | Client ->
      ( make_dir ~direction:Wire.dir_client_to_server ~secret:c_secret,
        make_dir ~direction:Wire.dir_server_to_client ~secret:s_secret )
    | Server ->
      ( make_dir ~direction:Wire.dir_server_to_client ~secret:s_secret,
        make_dir ~direction:Wire.dir_client_to_server ~secret:c_secret )
  in
  {
    write;
    read;
    rekey_after;
    nonce = Bytes.create 16;
    tag_scratch = Bytes.create Wire.tag_len;
    rbuf = Buffer.create 256;
    poisoned = None;
    write_closed = false;
    read_closed = false;
    sealed = 0;
    opened = 0;
    rekeys = 0;
  }

let wipe_dir d =
  Bx.fill_zero d.secret;
  d.seq <- 0L

let wipe t =
  wipe_dir t.write;
  wipe_dir t.read;
  Buffer.clear t.rbuf

let poison t err =
  (match t.poisoned with None -> t.poisoned <- Some err | Some _ -> ());
  wipe t;
  Error err

(* Advance one direction to the next generation (§4.3): chain the
   traffic secret through the "rekey" label, re-expand record keys,
   wipe the old secret, reset the sequence cursor. *)
let advance_generation d =
  let next = Kdf.expand_label ~secret:d.secret ~label:"rekey" ~context:Bytes.empty 16 in
  Bx.fill_zero d.secret;
  d.secret <- next;
  let key, mac = expand_dir_keys next in
  d.key <- key;
  d.mac <- mac;
  d.seq <- 0L;
  d.generation <- d.generation + 1

let seal_record t ~content_type src ~off ~len =
  let w = t.write in
  let seg = Bytes.create (Wire.header_len + len + Wire.tag_len) in
  Wire.put_header seg ~off:0 { content_type; seq = w.seq; generation = w.generation; ct_len = len };
  Wire.nonce_into t.nonce ~direction:w.direction ~generation:w.generation ~seq:w.seq;
  if len > 0 then
    Aes.ctr_into w.key ~nonce:t.nonce ~src ~src_off:off ~dst:seg ~dst_off:Wire.header_len len;
  Keccak.mac16_keyed_into w.mac seg ~off:0 ~len:(Wire.header_len + len) seg
    ~tag_off:(Wire.header_len + len);
  w.seq <- Int64.add w.seq 1L;
  t.sealed <- t.sealed + 1;
  if Trace.enabled () then Trace.instant ~cat:Trace.Channel ~name:"chan:seal" ();
  seg

let guard_open t = match t.poisoned with Some e -> Error e | None -> Ok ()

(* Emit a rekey record if the current write generation is spent; the
   rekey record itself is sealed under the *old* generation so the
   receiver can authenticate it before switching (§4.3). *)
let maybe_rekey t acc =
  let w = t.write in
  if Int64.to_int w.seq < t.rekey_after then Ok acc
  else if w.generation >= 255 then poison t Exhausted
  else begin
    let r = seal_record t ~content_type:Wire.ct_rekey Bytes.empty ~off:0 ~len:0 in
    advance_generation w;
    t.rekeys <- t.rekeys + 1;
    Ok (r :: acc)
  end

let seal_message t payload =
  match guard_open t with
  | Error e -> Error e
  | Ok () ->
    if t.write_closed then Error Closed
    else if Bytes.length payload > max_message then Error Too_big
    else begin
      (* §3.5 stream framing: u32 BE length ‖ payload, then cut into
         ≤ max_plaintext chunks, one record each. *)
      let n = Bytes.length payload in
      let stream = Bytes.create (4 + n) in
      Bx.set_u32_be stream 0 (Int32.of_int n);
      Bytes.blit payload 0 stream 4 n;
      let total = 4 + n in
      let rec chunks off acc =
        if off >= total then Ok (List.rev acc)
        else
          match maybe_rekey t acc with
          | Error e -> Error e
          | Ok acc ->
            let len = min Wire.max_plaintext (total - off) in
            let seg = seal_record t ~content_type:Wire.ct_application stream ~off ~len in
            chunks (off + len) (seg :: acc)
      in
      chunks 0 []
    end

let alert t code =
  let body = Bytes.make 1 (Char.chr code) in
  seal_record t ~content_type:Wire.ct_alert body ~off:0 ~len:1

let close t =
  match guard_open t with
  | Error _ -> []
  | Ok () ->
    if t.write_closed then []
    else begin
      t.write_closed <- true;
      let seg = alert t Wire.alert_close_notify in
      [ seg ]
    end

(* Slice complete length-prefixed messages out of the reassembly
   buffer, leaving any incomplete tail in place. *)
let drain_messages t acc =
  let data = Buffer.to_bytes t.rbuf in
  let total = Bytes.length data in
  let pos = ref 0 in
  let out = ref acc in
  let bad = ref false in
  let continue = ref true in
  while !continue do
    let remaining = total - !pos in
    if remaining < 4 then continue := false
    else begin
      let n = Int32.to_int (Bx.get_u32_be data !pos) in
      if n < 0 || n > max_message then begin
        bad := true;
        continue := false
      end
      else if remaining < 4 + n then continue := false
      else begin
        out := Message (Bytes.sub data (!pos + 4) n) :: !out;
        pos := !pos + 4 + n
      end
    end
  done;
  if !bad then poison t Too_big
  else begin
    Buffer.clear t.rbuf;
    Buffer.add_subbytes t.rbuf data !pos (total - !pos);
    Ok (List.rev !out)
  end

let tag_matches t seg ~mac_off =
  (* constant-time 16-byte compare against the scratch tag *)
  let diff = ref 0 in
  for i = 0 to Wire.tag_len - 1 do
    diff := !diff lor (Char.code (Bytes.get t.tag_scratch i) lxor Char.code (Bytes.get seg (mac_off + i)))
  done;
  !diff = 0

let deliver t seg =
  match guard_open t with
  | Error e -> Error e
  | Ok () ->
    if t.read_closed then poison t Closed
    else begin
      let total = Bytes.length seg in
      if total < Wire.header_len + Wire.tag_len || total > Wire.max_segment then
        poison t Bad_length
      else
        match Wire.get_header seg ~off:0 with
        | Error `Bad_version -> poison t Bad_version
        | Ok h ->
          let ct_len = total - Wire.header_len - Wire.tag_len in
          if h.Wire.ct_len <> ct_len then poison t Bad_length
          else begin
            let r = t.read in
            (* authenticate before acting on anything (§3.3) *)
            Keccak.mac16_keyed_into r.mac seg ~off:0 ~len:(Wire.header_len + ct_len)
              t.tag_scratch ~tag_off:0;
            if not (tag_matches t seg ~mac_off:(Wire.header_len + ct_len)) then poison t Bad_mac
            else if h.Wire.generation <> r.generation then
              poison t (Bad_generation { expected = r.generation; got = h.Wire.generation })
            else if not (Int64.equal h.Wire.seq r.seq) then
              poison t (Replay { expected = r.seq; got = h.Wire.seq })
            else begin
              let plain = Bytes.create ct_len in
              Wire.nonce_into t.nonce ~direction:r.direction ~generation:r.generation ~seq:r.seq;
              if ct_len > 0 then
                Aes.ctr_into r.key ~nonce:t.nonce ~src:seg ~src_off:Wire.header_len ~dst:plain
                  ~dst_off:0 ct_len;
              r.seq <- Int64.add r.seq 1L;
              t.opened <- t.opened + 1;
              if Trace.enabled () then Trace.instant ~cat:Trace.Channel ~name:"chan:open" ();
              if h.Wire.content_type = Wire.ct_application then begin
                Buffer.add_bytes t.rbuf plain;
                drain_messages t []
              end
              else if h.Wire.content_type = Wire.ct_rekey then
                if ct_len <> 0 then poison t Bad_length
                else if r.generation >= 255 then poison t Exhausted
                else begin
                  advance_generation r;
                  Ok []
                end
              else if h.Wire.content_type = Wire.ct_alert then begin
                if ct_len <> 1 then poison t Bad_length
                else
                  let code = Bytes.get_uint8 plain 0 in
                  if code = Wire.alert_close_notify then begin
                    t.read_closed <- true;
                    Ok [ Peer_closed ]
                  end
                  else poison t (Peer_alert code)
              end
              else poison t (Bad_content h.Wire.content_type)
            end
          end
    end

let stats t = { records_sealed = t.sealed; records_opened = t.opened; rekeys_done = t.rekeys }
let poisoned t = t.poisoned
let write_generation t = t.write.generation
let read_generation t = t.read.generation
let closed t = t.write_closed || t.read_closed || t.poisoned <> None

module Testing = struct
  let seal_raw t ~content_type payload =
    seal_record t ~content_type payload ~off:0 ~len:(Bytes.length payload)
end
