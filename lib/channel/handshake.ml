(* SIGMA-bound handshake state machine (docs/PROTOCOL.md §5): three
   flights — ClientHello, ServerAttest, ClientFinish — that run the
   platform's SIGMA attestation flow as session establishment and
   hand over an established Record connection. Flight-structured in
   the mitls-fstar style: the driver feeds whole received segments in
   and transmits whatever comes back; the machine never blocks. *)

open Hypertee_crypto
module Bx = Hypertee_util.Bytes_ext
module Trace = Hypertee_obs.Trace

type role = Initiator | Responder

type auth = {
  make_quote : (user_data:bytes -> (bytes, string) result) option;
  verify_quote : quote:bytes -> user_data:bytes -> (unit, string) result;
  require_peer_quote : bool;
}

type phase = I_wait_attest | R_wait_hello | R_wait_finish | Done | Failed of string

type t = {
  role : role;
  auth : auth;
  binding : bytes;
  rekey_after : int option;
  sigma : Sigma.session;
  my_random : bytes;
  transcript : Buffer.t;
  mutable peer_random : bytes;
  mutable peer_public : Bignum.t option;
  mutable mac_key : bytes;
  mutable session_key : bytes;
  mutable phase : phase;
  mutable conn : Record.t option;
  mutable started : bool;
}

let create ~role ~rng ~binding ~auth ?rekey_after () =
  if Bytes.length binding <> Wire.binding_len then
    invalid_arg "Handshake.create: binding must be 16 bytes";
  (match role with
  | Responder when auth.make_quote = None ->
    invalid_arg "Handshake.create: a responder must be able to produce a quote"
  | _ -> ());
  let sigma_role = match role with Initiator -> Sigma.Initiator | Responder -> Sigma.Responder in
  {
    role;
    auth;
    binding = Bytes.copy binding;
    rekey_after;
    sigma = Sigma.start rng sigma_role;
    my_random = Hypertee_util.Xrng.bytes rng Wire.random_len;
    transcript = Buffer.create 512;
    peer_random = Bytes.empty;
    peer_public = None;
    mac_key = Bytes.empty;
    session_key = Bytes.empty;
    phase = (match role with Initiator -> I_wait_attest | Responder -> R_wait_hello);
    conn = None;
    started = false;
  }

let fail t reason =
  t.phase <- Failed reason;
  Bx.fill_zero t.mac_key;
  Bx.fill_zero t.session_key;
  Error reason

let conn t = t.conn
let failed t = match t.phase with Failed r -> Some r | _ -> None
let role t = t.role
let complete t = t.phase = Done

(* §5.3 quote binding: the attestation user_data commits to the EMS
   channel binding, both randoms and both DH shares, so a quote can
   never be cut-and-pasted into another session or channel. *)
let quote_user_data t ~role_byte =
  let my_pub = Bignum.to_bytes_be ~len:Wire.dh_len (Sigma.public_of t.sigma) in
  let peer_pub =
    match t.peer_public with
    | Some p -> Bignum.to_bytes_be ~len:Wire.dh_len p
    | None -> Bytes.make Wire.dh_len '\000'
  in
  let init_pub, resp_pub =
    match t.role with Initiator -> (my_pub, peer_pub) | Responder -> (peer_pub, my_pub)
  in
  let init_random, resp_random =
    match t.role with
    | Initiator -> (t.my_random, t.peer_random)
    | Responder -> (t.peer_random, t.my_random)
  in
  Sha256.digest
    (Bytes.concat Bytes.empty
       [
         Bytes.of_string (Kdf.protocol_tag ^ "quote");
         Bytes.make 1 role_byte;
         t.binding;
         init_random;
         resp_random;
         init_pub;
         resp_pub;
       ])

(* Transcript hash over every complete handshake message so far plus
   [extra] (a message prefix when computing an in-flight MAC). *)
let transcript_hash t ~extra ~extra_len =
  let ctx = Sha256.init () in
  Sha256.update ctx (Buffer.to_bytes t.transcript);
  Sha256.update_sub ctx extra ~off:0 ~len:extra_len;
  Sha256.finalize ctx

let sigma_payload label th =
  let l = String.length label in
  let b = Bytes.create (l + Bytes.length th) in
  Bytes.blit_string label 0 b 0 l;
  Bytes.blit th 0 b l (Bytes.length th);
  b

let sigma_transcript t ~label ~th =
  match t.peer_public with
  | None -> invalid_arg "sigma_transcript before peer public"
  | Some peer ->
    let my = Sigma.public_of t.sigma in
    let init_pub, resp_pub = match t.role with Initiator -> (my, peer) | Responder -> (peer, my) in
    Sigma.transcript ~initiator_pub:init_pub ~responder_pub:resp_pub
      ~payload:(sigma_payload label th)

let derive_sigma_keys t ~peer_public =
  match Sigma.derive_keys t.sigma ~peer_public with
  | exception Invalid_argument _ -> Error "degenerate peer DH value"
  | sk, mk ->
    t.session_key <- sk;
    t.mac_key <- mk;
    t.peer_public <- Some peer_public;
    Ok ()

(* §4.2: master secret and the established record connection, from
   the SIGMA session key, the EMS channel binding and the hash of the
   full three-flight transcript. *)
let establish t =
  let th = transcript_hash t ~extra:Bytes.empty ~extra_len:0 in
  let context = Bytes.cat t.binding th in
  let master = Kdf.expand_label ~secret:t.session_key ~label:"master" ~context 32 in
  let record_role = match t.role with Initiator -> Record.Client | Responder -> Record.Server in
  let conn =
    match t.rekey_after with
    | Some n -> Record.create ~role:record_role ~master ~transcript:th ~rekey_after:n ()
    | None -> Record.create ~role:record_role ~master ~transcript:th ()
  in
  Bx.fill_zero master;
  t.conn <- Some conn;
  t.phase <- Done

let client_hello t =
  let body = Bytes.cat t.my_random (Bignum.to_bytes_be ~len:Wire.dh_len (Sigma.public_of t.sigma)) in
  let msg = Wire.put_hs ~msg_type:Wire.hs_client_hello body in
  Buffer.add_bytes t.transcript msg;
  msg

let start t =
  match t.phase with
  | Failed r -> Error r
  | _ when t.started -> Error "handshake already started"
  | _ ->
    t.started <- true;
    (match t.role with
    | Initiator ->
      if Trace.enabled () then
        Trace.instant ~cat:Trace.Channel ~name:"chan:hs:client-hello" ();
      Ok [ client_hello t ]
    | Responder -> Ok [])

(* Build a message whose final [Wire.mac_len] bytes are a SIGMA MAC
   over the transcript-so-far plus the message's own prefix. *)
let finish_with_mac t ~msg_type ~label body_prefix =
  let body = Bytes.cat body_prefix (Bytes.make Wire.mac_len '\000') in
  let msg = Wire.put_hs ~msg_type body in
  let prefix_len = Bytes.length msg - Wire.mac_len in
  let th = transcript_hash t ~extra:msg ~extra_len:prefix_len in
  let mac = Sigma.authenticate ~mac_key:t.mac_key (sigma_transcript t ~label ~th) in
  Bytes.blit mac 0 msg prefix_len Wire.mac_len;
  Buffer.add_bytes t.transcript msg;
  msg

let check_mac t ~label msg =
  let n = Bytes.length msg in
  let prefix_len = n - Wire.mac_len in
  let th = transcript_hash t ~extra:msg ~extra_len:prefix_len in
  let tag = Bytes.sub msg prefix_len Wire.mac_len in
  Sigma.check ~mac_key:t.mac_key ~transcript:(sigma_transcript t ~label ~th) ~tag

(* --- Responder: ClientHello in, ServerAttest out (§5.2). --- *)
let on_client_hello t msg body =
  if Bytes.length body <> Wire.random_len + Wire.dh_len then fail t "malformed ClientHello"
  else begin
    t.peer_random <- Bytes.sub body 0 Wire.random_len;
    let peer_public = Bignum.of_bytes_be (Bytes.sub body Wire.random_len Wire.dh_len) in
    if not (Dh.valid_public peer_public) then fail t "invalid initiator DH value"
    else
      match derive_sigma_keys t ~peer_public with
      | Error e -> fail t e
      | Ok () -> (
        Buffer.add_bytes t.transcript msg;
        let ud = quote_user_data t ~role_byte:'R' in
        let quote_fn = Option.get t.auth.make_quote in
        match quote_fn ~user_data:ud with
        | Error e -> fail t ("responder quote failed: " ^ e)
        | Ok quote ->
          let qlen = Bytes.length quote in
          let prefix =
            Bytes.concat Bytes.empty
              [
                t.my_random;
                Bignum.to_bytes_be ~len:Wire.dh_len (Sigma.public_of t.sigma);
                (let b = Bytes.create 2 in
                 Bytes.set_uint16_be b 0 qlen;
                 b);
                quote;
              ]
          in
          let sa = finish_with_mac t ~msg_type:Wire.hs_server_attest ~label:"resp" prefix in
          t.phase <- R_wait_finish;
          if Trace.enabled () then
            Trace.instant ~cat:Trace.Channel ~name:"chan:hs:server-attest" ();
          Ok [ sa ])
  end

(* --- Initiator: ServerAttest in, ClientFinish out (§5.2). --- *)
let on_server_attest t msg body =
  let fixed = Wire.random_len + Wire.dh_len + 2 in
  if Bytes.length body < fixed + Wire.mac_len then fail t "truncated ServerAttest"
  else begin
    t.peer_random <- Bytes.sub body 0 Wire.random_len;
    let peer_public = Bignum.of_bytes_be (Bytes.sub body Wire.random_len Wire.dh_len) in
    let qlen = Bytes.get_uint16_be body (Wire.random_len + Wire.dh_len) in
    if Bytes.length body <> fixed + qlen + Wire.mac_len then fail t "truncated ServerAttest"
    else if not (Dh.valid_public peer_public) then fail t "invalid responder DH value"
    else
      match derive_sigma_keys t ~peer_public with
      | Error e -> fail t e
      | Ok () ->
        if not (check_mac t ~label:"resp" msg) then fail t "ServerAttest MAC check failed"
        else begin
          let quote = Bytes.sub body fixed qlen in
          let ud = quote_user_data t ~role_byte:'R' in
          match t.auth.verify_quote ~quote ~user_data:ud with
          | Error e -> fail t ("responder quote rejected: " ^ e)
          | Ok () -> (
            Buffer.add_bytes t.transcript msg;
            let my_quote =
              match t.auth.make_quote with
              | None -> Ok Bytes.empty
              | Some f -> f ~user_data:(quote_user_data t ~role_byte:'I')
            in
            match my_quote with
            | Error e -> fail t ("initiator quote failed: " ^ e)
            | Ok quote ->
              let qlen = Bytes.length quote in
              let prefix =
                Bytes.cat
                  (let b = Bytes.create 2 in
                   Bytes.set_uint16_be b 0 qlen;
                   b)
                  quote
              in
              let cf = finish_with_mac t ~msg_type:Wire.hs_client_finish ~label:"init" prefix in
              establish t;
              if Trace.enabled () then
                Trace.instant ~cat:Trace.Channel ~name:"chan:hs:client-finish" ();
              Ok [ cf ])
        end
  end

(* --- Responder: ClientFinish in, established (§5.2). --- *)
let on_client_finish t msg body =
  if Bytes.length body < 2 + Wire.mac_len then fail t "truncated ClientFinish"
  else begin
    let qlen = Bytes.get_uint16_be body 0 in
    if Bytes.length body <> 2 + qlen + Wire.mac_len then fail t "truncated ClientFinish"
    else if not (check_mac t ~label:"init" msg) then fail t "ClientFinish MAC check failed"
    else begin
      let quote = Bytes.sub body 2 qlen in
      let verified =
        if qlen = 0 then
          if t.auth.require_peer_quote then Error "initiator quote required but absent" else Ok ()
        else t.auth.verify_quote ~quote ~user_data:(quote_user_data t ~role_byte:'I')
      in
      match verified with
      | Error e -> fail t ("initiator quote rejected: " ^ e)
      | Ok () ->
        Buffer.add_bytes t.transcript msg;
        establish t;
        if Trace.enabled () then
          Trace.instant ~cat:Trace.Channel ~name:"chan:hs:established" ();
        Ok []
    end
  end

let on_segment t seg =
  match t.phase with
  | Failed r -> Error r
  | Done -> Error "handshake already complete"
  | phase -> (
    match Wire.get_hs seg with
    | Error `Truncated -> fail t "truncated handshake message"
    | Error `Bad_version -> fail t "handshake version mismatch"
    | Ok (msg_type, body) -> (
      match (phase, msg_type) with
      | R_wait_hello, m when m = Wire.hs_client_hello -> on_client_hello t seg body
      | I_wait_attest, m when m = Wire.hs_server_attest -> on_server_attest t seg body
      | R_wait_finish, m when m = Wire.hs_client_finish -> on_client_finish t seg body
      | _ -> fail t (Printf.sprintf "unexpected handshake message type %d" msg_type)))
