(* Interop-style conformance tester (docs/PROTOCOL.md §7): replays
   canned handshake flights and well-formed records against the state
   machine and asserts the spec's shapes, then feeds every malformed-
   record and malformed-flight case and asserts each one is rejected.
   Every vector cites the PROTOCOL.md section it checks. *)

module Bx = Hypertee_util.Bytes_ext

type outcome = { name : string; section : string; ok : bool; detail : string }

let vector ~name ~section f =
  match f () with
  | Ok () -> { name; section; ok = true; detail = "" }
  | Error d -> { name; section; ok = false; detail = d }
  | exception e -> { name; section; ok = false; detail = Printexc.to_string e }

let check cond msg = if cond then Ok () else Error msg
let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

(* Deterministic dummy attestation: the "quote" is a tagged echo of
   the user_data commitment, and verification checks the echo. The
   conformance suite tests the channel state machine, not the RSA
   quote chain (the platform tests cover that). *)
let echo_quote ~user_data = Ok (Bytes.cat (Bytes.of_string "Q!") user_data)

let echo_verify ~quote ~user_data =
  if
    Bytes.length quote = 2 + Bytes.length user_data
    && Bytes.equal (Bytes.sub quote 2 (Bytes.length user_data)) user_data
  then Ok ()
  else Error "quote/user_data mismatch"

let auth ?(quote = true) ?(require_peer_quote = false) () =
  {
    Handshake.make_quote = (if quote then Some echo_quote else None);
    verify_quote = echo_verify;
    require_peer_quote;
  }

let binding = Bytes.init Wire.binding_len (fun i -> Char.chr (0x10 + i))

(* Drive a full three-flight handshake over an in-memory loopback;
   returns the two established connections plus the raw flights. *)
let establish ?(seed_i = 11L) ?(seed_r = 22L) ?(auth_i = auth ~quote:false ())
    ?(auth_r = auth ()) ?(binding_i = binding) ?(binding_r = binding) ?rekey_after () =
  let rng_i = Hypertee_util.Xrng.create seed_i in
  let rng_r = Hypertee_util.Xrng.create seed_r in
  let i = Handshake.create ~role:Initiator ~rng:rng_i ~binding:binding_i ~auth:auth_i ?rekey_after () in
  let r = Handshake.create ~role:Responder ~rng:rng_r ~binding:binding_r ~auth:auth_r ?rekey_after () in
  let flights = ref [] in
  let rec pump from_i segs =
    match segs with
    | [] -> Ok ()
    | seg :: rest -> (
      flights := (from_i, seg) :: !flights;
      let dst = if from_i then r else i in
      match Handshake.on_segment dst seg with
      | Error e -> Error e
      | Ok replies ->
        let* () = pump (not from_i) replies in
        pump from_i rest)
  in
  match Handshake.start i with
  | Error e -> Error e
  | Ok first -> (
    match pump true first with
    | Error e -> Error e
    | Ok () -> (
      match (Handshake.conn i, Handshake.conn r) with
      | Some ci, Some cr -> Ok (ci, cr, List.rev !flights)
      | _ -> Error "handshake did not complete"))

let established_pair ?rekey_after () =
  match establish ?rekey_after () with
  | Ok (ci, cr, _) -> Ok (ci, cr)
  | Error e -> Error ("establishment failed: " ^ e)

let roundtrip ci cr payload =
  match Record.seal_message ci payload with
  | Error e -> Error ("seal failed: " ^ Record.error_message e)
  | Ok segs -> (
    let events =
      List.fold_left
        (fun acc seg ->
          match acc with
          | Error _ as e -> e
          | Ok evs -> (
            match Record.deliver cr seg with
            | Error e -> Error ("deliver failed: " ^ Record.error_message e)
            | Ok more -> Ok (evs @ more)))
        (Ok []) segs
    in
    match events with
    | Error _ as e -> e
    | Ok [ Record.Message m ] ->
      if Bytes.equal m payload then Ok () else Error "payload mismatch after round trip"
    | Ok evs -> Error (Printf.sprintf "expected exactly one message, got %d events" (List.length evs)))

(* A sealed application record from a fresh pair, for mutation. *)
let one_record () =
  match established_pair () with
  | Error e -> Error (e, None)
  | Ok (ci, cr) -> (
    match Record.seal_message ci (Bytes.of_string "attack at dawn") with
    | Ok [ seg ] -> Ok (seg, ci, cr)
    | Ok _ -> Error ("expected a single segment", None)
    | Error e -> Error (Record.error_message e, None))

let expect_reject ~what cr seg =
  match Record.deliver cr seg with
  | Error _ -> Ok ()
  | Ok _ -> Error (what ^ " was accepted")

(* --- canned-flight vectors (§5) --- *)

let v_flight_shapes () =
  match establish () with
  | Error e -> Error e
  | Ok (_, _, flights) ->
    let* () = check (List.length flights = 3) "expected exactly three flights" in
    let types = List.map (fun (_, seg) -> Bytes.get_uint8 seg 0) flights in
    let* () =
      check
        (types = [ Wire.hs_client_hello; Wire.hs_server_attest; Wire.hs_client_finish ])
        "flight types must be 0x01, 0x02, 0x03 in order"
    in
    let* () =
      check
        (List.for_all (fun (_, seg) -> Bytes.get_uint8 seg 1 = Wire.version) flights)
        "every flight carries version 0x01"
    in
    let ch = snd (List.nth flights 0) in
    let* () =
      check
        (Bytes.length ch = Wire.hs_header_len + Wire.random_len + Wire.dh_len)
        "ClientHello is header + random(32) + dh(32)"
    in
    let* () =
      check
        (List.for_all (fun (_, seg) -> Bytes.length seg <= Wire.max_segment) flights)
        "every flight fits one transport segment"
    in
    Ok ()

let v_directions () =
  match establish () with
  | Error e -> Error e
  | Ok (_, _, flights) ->
    let dirs = List.map fst flights in
    check (dirs = [ true; false; true ]) "flight directions must alternate I, R, I"

(* --- record-layer vectors (§3, §4) --- *)

let v_roundtrip payload () =
  match established_pair () with
  | Error e -> Error e
  | Ok (ci, cr) -> roundtrip ci cr payload

let v_multi_segment () =
  match established_pair () with
  | Error e -> Error e
  | Ok (ci, cr) -> (
    let payload = Bytes.init 5000 (fun i -> Char.chr (i land 0xff)) in
    match Record.seal_message ci payload with
    | Error e -> Error (Record.error_message e)
    | Ok segs ->
      let* () =
        check (List.length segs > 1) "a >frame-size message must span multiple records"
      in
      let* () =
        check
          (List.for_all (fun s -> Bytes.length s <= Wire.max_segment) segs)
          "every record fits the segment budget"
      in
      let events =
        List.fold_left
          (fun acc seg ->
            match acc with
            | Error _ as e -> e
            | Ok evs -> (
              match Record.deliver cr seg with
              | Error e -> Error (Record.error_message e)
              | Ok more -> Ok (evs @ more)))
          (Ok []) segs
      in
      (match events with
      | Error e -> Error e
      | Ok [ Record.Message m ] ->
        check (Bytes.equal m payload) "multi-segment payload must reassemble exactly"
      | Ok _ -> Error "expected exactly one reassembled message"))

let v_rekey_boundary () =
  match established_pair ~rekey_after:4 () with
  | Error e -> Error e
  | Ok (ci, cr) ->
    let msg = Bytes.of_string "generation test" in
    let rec go n =
      if n = 0 then Ok ()
      else
        let* () = roundtrip ci cr msg in
        go (n - 1)
    in
    let* () = go 12 in
    let* () = check (Record.write_generation ci > 0) "writer must have rekeyed" in
    check
      (Record.read_generation cr = Record.write_generation ci)
      "reader generation must track writer generation"

let v_close_notify () =
  match established_pair () with
  | Error e -> Error e
  | Ok (ci, cr) -> (
    match Record.close ci with
    | [ seg ] -> (
      match Record.deliver cr seg with
      | Ok [ Record.Peer_closed ] -> Ok ()
      | Ok _ -> Error "close_notify must surface Peer_closed"
      | Error e -> Error (Record.error_message e))
    | _ -> Error "close must emit exactly one alert record")

let v_kdf_labels () =
  let secret = Bytes.make 16 '\x0b' in
  let a = Hypertee_crypto.Kdf.expand_label ~secret ~label:"key" ~context:Bytes.empty 16 in
  let b = Hypertee_crypto.Kdf.expand_label ~secret ~label:"mac" ~context:Bytes.empty 16 in
  let a' = Hypertee_crypto.Kdf.expand_label ~secret ~label:"key" ~context:Bytes.empty 16 in
  let* () = check (Bytes.equal a a') "expand_label must be deterministic" in
  let* () = check (not (Bytes.equal a b)) "distinct labels must derive distinct keys" in
  check
    (Hypertee_crypto.Kdf.protocol_tag = "htch1 ")
    "derivation namespace tag must be \"htch1 \""

(* --- malformed-record vectors (§3, §7) --- *)

let mutate f () =
  match one_record () with
  | Error (e, _) -> Error e
  | Ok (seg, _ci, cr) -> f seg cr

let v_bad_version = mutate (fun seg cr ->
    let seg = Bytes.copy seg in
    Bytes.set_uint8 seg 1 0x7f;
    expect_reject ~what:"a wrong-version record" cr seg)

let v_truncated = mutate (fun seg cr ->
    expect_reject ~what:"a truncated record" cr (Bytes.sub seg 0 (Bytes.length seg - 1)))

let v_tampered_ct = mutate (fun seg cr ->
    let seg = Bytes.copy seg in
    let i = Wire.header_len + 2 in
    Bytes.set_uint8 seg i (Bytes.get_uint8 seg i lxor 0x40);
    expect_reject ~what:"a tampered ciphertext" cr seg)

let v_tampered_header = mutate (fun seg cr ->
    let seg = Bytes.copy seg in
    Bytes.set_uint8 seg 11 (Bytes.get_uint8 seg 11 lxor 0x01);
    expect_reject ~what:"a tampered header" cr seg)

let v_oversized_length = mutate (fun seg cr ->
    let seg = Bytes.copy seg in
    Bytes.set_uint16_be seg 2 (Bytes.get_uint16_be seg 2 + 1);
    expect_reject ~what:"a lying length field" cr seg)

let v_replay () =
  match one_record () with
  | Error (e, _) -> Error e
  | Ok (seg, _ci, cr) -> (
    match Record.deliver cr seg with
    | Error e -> Error ("first delivery failed: " ^ Record.error_message e)
    | Ok _ -> expect_reject ~what:"a replayed record" cr seg)

let v_reorder () =
  match established_pair () with
  | Error e -> Error e
  | Ok (ci, cr) -> (
    let seal m =
      match Record.seal_message ci (Bytes.of_string m) with
      | Ok [ s ] -> Ok s
      | Ok _ -> Error "expected one segment"
      | Error e -> Error (Record.error_message e)
    in
    match (seal "first", seal "second") with
    | Ok _, Ok s2 -> expect_reject ~what:"an out-of-order record" cr s2
    | Error e, _ | _, Error e -> Error e)

let v_stale_generation () =
  match established_pair ~rekey_after:1 () with
  | Error e -> Error e
  | Ok (ci, cr) -> (
    (* first message consumes the generation-0 budget; the second
       seal emits a rekey + a generation-1 record. Deliver the rekey
       so the reader advances, then replay a generation-0-keyed
       forgery: stale-generation records fail the tag check because
       the keys differ (§4.2). *)
    match Record.seal_message ci (Bytes.of_string "a") with
    | Error e -> Error (Record.error_message e)
    | Ok segs0 -> (
      let stale = List.hd segs0 in
      match Record.seal_message ci (Bytes.of_string "b") with
      | Error e -> Error (Record.error_message e)
      | Ok segs1 ->
        let* () =
          List.fold_left
            (fun acc s ->
              let* () = acc in
              match Record.deliver cr s with
              | Ok _ -> Ok ()
              | Error e -> Error (Record.error_message e))
            (Ok ()) (segs0 @ segs1)
        in
        expect_reject ~what:"a stale-generation record" cr stale))

let v_unknown_content () =
  match established_pair () with
  | Error e -> Error e
  | Ok (ci, cr) ->
    let seg = Record.Testing.seal_raw ci ~content_type:9 (Bytes.of_string "?") in
    expect_reject ~what:"an unknown content type" cr seg

let v_fail_closed = mutate (fun seg cr ->
    let bad = Bytes.copy seg in
    Bytes.set_uint8 bad (Wire.header_len + 1) (Bytes.get_uint8 bad (Wire.header_len + 1) lxor 1);
    let* () = expect_reject ~what:"a tampered record" cr bad in
    let* () = expect_reject ~what:"a valid record after poisoning" cr seg in
    check (Record.poisoned cr <> None) "the connection must report its poison reason")

(* --- malformed-flight vectors (§5, §7) --- *)

let v_truncated_flight () =
  let rng_i = Hypertee_util.Xrng.create 31L in
  let rng_r = Hypertee_util.Xrng.create 32L in
  let i = Handshake.create ~role:Initiator ~rng:rng_i ~binding ~auth:(auth ~quote:false ()) () in
  let r = Handshake.create ~role:Responder ~rng:rng_r ~binding ~auth:(auth ()) () in
  match Handshake.start i with
  | Error e -> Error e
  | Ok [ ch ] -> (
    match Handshake.on_segment r ch with
    | Error e -> Error e
    | Ok [ sa ] -> (
      let cut = Bytes.sub sa 0 (Bytes.length sa - 7) in
      match Handshake.on_segment i cut with
      | Error _ -> check (Handshake.failed i <> None) "initiator must fail terminally"
      | Ok _ -> Error "a truncated ServerAttest was accepted")
    | Ok _ -> Error "responder should answer ClientHello with one flight")
  | Ok _ -> Error "initiator should start with one flight"

let v_wrong_binding () =
  let binding2 = Bytes.init Wire.binding_len (fun i -> Char.chr (0x80 + i)) in
  match establish ~binding_r:binding2 () with
  | Error _ -> Ok ()
  | Ok _ -> Error "mismatched channel bindings completed a handshake"

let v_bad_sigma_mac () =
  let rng_i = Hypertee_util.Xrng.create 41L in
  let rng_r = Hypertee_util.Xrng.create 42L in
  let i = Handshake.create ~role:Initiator ~rng:rng_i ~binding ~auth:(auth ~quote:false ()) () in
  let r = Handshake.create ~role:Responder ~rng:rng_r ~binding ~auth:(auth ()) () in
  match Handshake.start i with
  | Error e -> Error e
  | Ok [ ch ] -> (
    match Handshake.on_segment r ch with
    | Error e -> Error e
    | Ok [ sa ] -> (
      let sa = Bytes.copy sa in
      let last = Bytes.length sa - 1 in
      Bytes.set_uint8 sa last (Bytes.get_uint8 sa last lxor 0x01);
      match Handshake.on_segment i sa with
      | Error _ -> Ok ()
      | Ok _ -> Error "a ServerAttest with a corrupted SIGMA MAC was accepted")
    | Ok _ -> Error "responder should answer with one flight")
  | Ok _ -> Error "initiator should start with one flight"

let v_flight_replay () =
  let rng_i = Hypertee_util.Xrng.create 51L in
  let rng_r = Hypertee_util.Xrng.create 52L in
  let i = Handshake.create ~role:Initiator ~rng:rng_i ~binding ~auth:(auth ~quote:false ()) () in
  let r = Handshake.create ~role:Responder ~rng:rng_r ~binding ~auth:(auth ()) () in
  match Handshake.start i with
  | Error e -> Error e
  | Ok [ ch ] -> (
    match Handshake.on_segment r ch with
    | Error e -> Error e
    | Ok _ -> (
      match Handshake.on_segment r ch with
      | Error _ -> Ok ()
      | Ok _ -> Error "a replayed ClientHello was accepted"))
  | Ok _ -> Error "initiator should start with one flight"

let v_missing_initiator_quote () =
  match establish ~auth_i:(auth ~quote:false ()) ~auth_r:(auth ~require_peer_quote:true ()) () with
  | Error _ -> Ok ()
  | Ok _ -> Error "a quote-less initiator passed a require_peer_quote responder"

let v_e2e_quotes () =
  match establish ~auth_i:(auth ()) ~auth_r:(auth ~require_peer_quote:true ()) () with
  | Error e -> Error e
  | Ok _ -> Ok ()

let run () =
  [
    vector ~name:"canned-flight-shapes" ~section:"§5.1" v_flight_shapes;
    vector ~name:"flight-directions" ~section:"§5.2" v_directions;
    vector ~name:"record-roundtrip-small" ~section:"§3.4"
      (v_roundtrip (Bytes.of_string "hello, enclave"));
    vector ~name:"record-roundtrip-empty" ~section:"§3.5" (v_roundtrip Bytes.empty);
    vector ~name:"record-roundtrip-multi-segment" ~section:"§3.5" v_multi_segment;
    vector ~name:"rekey-boundary" ~section:"§4.3" v_rekey_boundary;
    vector ~name:"close-notify" ~section:"§6" v_close_notify;
    vector ~name:"kdf-label-set" ~section:"§4.2" v_kdf_labels;
    vector ~name:"enclave-to-enclave-quotes" ~section:"§5.3" v_e2e_quotes;
    vector ~name:"reject-bad-version" ~section:"§3.1" v_bad_version;
    vector ~name:"reject-truncated-record" ~section:"§3.1" v_truncated;
    vector ~name:"reject-oversized-length" ~section:"§3.1" v_oversized_length;
    vector ~name:"reject-tampered-ciphertext" ~section:"§3.3" v_tampered_ct;
    vector ~name:"reject-tampered-header" ~section:"§3.3" v_tampered_header;
    vector ~name:"reject-replay" ~section:"§3.4" v_replay;
    vector ~name:"reject-reorder" ~section:"§3.4" v_reorder;
    vector ~name:"reject-stale-generation" ~section:"§4.2" v_stale_generation;
    vector ~name:"reject-unknown-content-type" ~section:"§3.2" v_unknown_content;
    vector ~name:"fail-closed-after-poison" ~section:"§6" v_fail_closed;
    vector ~name:"reject-truncated-flight" ~section:"§5.2" v_truncated_flight;
    vector ~name:"reject-wrong-binding" ~section:"§4.1" v_wrong_binding;
    vector ~name:"reject-bad-sigma-mac" ~section:"§5.4" v_bad_sigma_mac;
    vector ~name:"reject-flight-replay" ~section:"§5.2" v_flight_replay;
    vector ~name:"reject-missing-initiator-quote" ~section:"§5.3" v_missing_initiator_quote;
  ]

let all_ok outcomes = List.for_all (fun o -> o.ok) outcomes

let render outcomes =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-34s %-6s %s\n" "vector (docs/PROTOCOL.md)" "cite" "result");
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "%-34s %-6s %s%s\n" o.name o.section
           (if o.ok then "pass" else "FAIL")
           (if o.ok then "" else "  (" ^ o.detail ^ ")")))
    outcomes;
  let passed = List.length (List.filter (fun o -> o.ok) outcomes) in
  Buffer.add_string buf (Printf.sprintf "%d/%d vectors pass\n" passed (List.length outcomes));
  Buffer.contents buf
