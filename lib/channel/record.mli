(** Streaming AEAD record layer of the secure channel
    (docs/PROTOCOL.md §3–§4).

    A duplex connection over an ordered segment transport: each
    record is AES-CTR encrypted and authenticated with a 16-byte
    keyed-sponge tag (encrypt-then-MAC over the contiguous
    header ‖ ciphertext buffer), carries an explicit sequence number
    and key generation, and rekeys after a configurable record
    count. Application messages are length-delimited (§3.5) and cut
    into records of at most {!Wire.max_plaintext} bytes, so payloads
    larger than a mailbox frame stream transparently.

    {b Fail-closed discipline}: the first failed check — bad
    version, bad tag, length mismatch, replayed or reordered
    sequence number, unknown content type — permanently poisons the
    connection: its traffic secrets are wiped and every subsequent
    {!seal_message}/{!deliver} returns the original error. A
    corrupted transport can therefore kill a channel but never
    smuggle a forged or replayed byte into the application stream. *)

(** Which side of the duplex this connection is; decides which
    traffic secret it writes with (§4.2). *)
type role = Client | Server

(** Rejection reasons; once returned, the connection is poisoned. *)
type error =
  | Bad_version  (** §3.1 version byte mismatch *)
  | Bad_mac  (** §3.3 tag verification failed *)
  | Bad_length  (** header length disagrees with the segment *)
  | Replay of { expected : int64; got : int64 }  (** §3.4 sequence violation *)
  | Bad_generation of { expected : int; got : int }  (** §4.2 generation skew *)
  | Bad_content of int  (** §3.2 unknown content type *)
  | Too_big  (** message exceeds the §3.5 stream cap *)
  | Exhausted  (** §4.3 generation space spent; channel must close *)
  | Closed  (** use after close or after poisoning *)
  | Peer_alert of int  (** peer raised a non-close alert (§6) *)

(** Human-readable rejection text. *)
val error_message : error -> string

(** What [deliver] surfaced to the application. *)
type event =
  | Message of bytes  (** one complete reassembled application message *)
  | Peer_closed  (** the peer sent close_notify (§6) *)

type t

(** Sealed/opened record and rekey counters. *)
type stats = { records_sealed : int; records_opened : int; rekeys_done : int }

(** Reassembled-message size cap, 16 MiB (§3.5). *)
val max_message : int

(** Default rekey threshold: 256 records per generation (§4.3). *)
val default_rekey_after : int

(** [create ~role ~master ~transcript ()] derives both directions'
    traffic secrets from the handshake master secret and transcript
    hash (§4.2) and returns a generation-0 connection.
    [rekey_after] (default {!default_rekey_after}) is the per-
    generation record budget after which the writer injects a rekey
    record. @raise Invalid_argument if [rekey_after < 1]. *)
val create : role:role -> master:bytes -> transcript:bytes -> ?rekey_after:int -> unit -> t

(** [seal_message t payload] frames, chunks, encrypts and tags one
    application message into transport segments, injecting rekey
    records at generation boundaries. Empty payloads are legal (one
    4-byte record). *)
val seal_message : t -> bytes -> (bytes list, error) result

(** [deliver t seg] authenticates and decrypts one received segment
    in order. Returns the application events it completed — possibly
    none (a chunk mid-message, a rekey) or several. Any rejection
    poisons [t]. *)
val deliver : t -> bytes -> (event list, error) result

(** [close t] marks the write side closed and returns the
    close_notify alert record to flush (§6); empty if already
    closed or poisoned. *)
val close : t -> bytes list

(** Counters for metrics and tests. *)
val stats : t -> stats

(** The poisoning error, if the connection failed closed. *)
val poisoned : t -> error option

(** Current write-side key generation (§4.3). *)
val write_generation : t -> int

(** Current read-side key generation. *)
val read_generation : t -> int

(** True once closed in either direction or poisoned. *)
val closed : t -> bool

(** Zero the traffic secrets and drop any buffered plaintext.
    Automatic on poisoning; callers wipe on orderly teardown. *)
val wipe : t -> unit

(** Hooks for the conformance tester only: seal a record with an
    arbitrary content type to exercise receiver rejection paths. *)
module Testing : sig
  val seal_raw : t -> content_type:int -> bytes -> bytes
end
