(** Wire-format constants and encodings of the secure-channel
    protocol (docs/PROTOCOL.md §3, §5, §6).

    One source of truth for every number that appears on the wire:
    the record header layout, content types, alert codes, handshake
    message framing and the CTR nonce construction. {!Record} and
    {!Handshake} build on these; the conformance tester
    ({!Conformance}) checks them against the spec's canned vectors. *)

(** Protocol version byte, [0x01] (§3.1). *)
val version : int

(** Transport segment budget in bytes — one mailbox frame (§3). *)
val max_segment : int

(** Record header size: 13 bytes (§3.1). *)
val header_len : int

(** Keyed-sponge record tag size: 16 bytes (§3.3). *)
val tag_len : int

(** Largest ciphertext a record may carry:
    [max_segment - header_len - tag_len] (§3.1). *)
val max_ciphertext : int

(** Equal to {!max_ciphertext} — CTR keeps plaintext length (§3.1). *)
val max_plaintext : int

(** {2 Content types (§3.2)} *)

val ct_handshake : int
val ct_application : int
val ct_alert : int
val ct_rekey : int

(** {2 Alert codes (§6)} *)

val alert_close_notify : int
val alert_bad_record : int
val alert_protocol_error : int

(** {2 Handshake message types (§5.1)} *)

val hs_client_hello : int
val hs_server_attest : int
val hs_client_finish : int

(** Handshake random size: 32 bytes (§5.1). *)
val random_len : int

(** Encoded DH public value size: 32 bytes (§5.1). *)
val dh_len : int

(** SIGMA transcript MAC size: 32 bytes (§5.2). *)
val mac_len : int

(** EMS channel-binding secret size: 16 bytes (§4.1). *)
val binding_len : int

(** {2 Record header (§3.1)} *)

(** Decoded record header. [ct_len] is the ciphertext length the
    header claims; the caller validates it against the segment. *)
type header = { content_type : int; seq : int64; generation : int; ct_len : int }

(** [put_header b ~off h] writes the 13-byte header encoding. *)
val put_header : bytes -> off:int -> header -> unit

(** [get_header b ~off] decodes a header, rejecting any version byte
    other than {!version}. Does not bounds-check [ct_len]. *)
val get_header : bytes -> off:int -> (header, [ `Bad_version ]) result

(** {2 Nonce construction (§3.3)} *)

(** Direction byte of client→server records, ['C']. *)
val dir_client_to_server : int

(** Direction byte of server→client records, ['S']. *)
val dir_server_to_client : int

(** [nonce_into b ~direction ~generation ~seq] fills the 16-byte CTR
    nonce: direction ‖ generation ‖ zeros ‖ seq (u64 BE). *)
val nonce_into : bytes -> direction:int -> generation:int -> seq:int64 -> unit

(** {2 Handshake message framing (§5.1)} *)

(** Handshake message header size: 4 bytes. *)
val hs_header_len : int

(** [put_hs ~msg_type body] frames a handshake message:
    type ‖ version ‖ u16 BE length ‖ body. *)
val put_hs : msg_type:int -> bytes -> bytes

(** [get_hs msg] strips the framing, rejecting version mismatches and
    any length that disagrees with the segment. *)
val get_hs : bytes -> (int * bytes, [ `Truncated | `Bad_version ]) result
