(** Platform parameters (paper Table III).

    One place for every microarchitectural constant the timing models
    consume: the CS core (BOOM-class out-of-order) and the three EMS
    core design points (weak in-order Rocket-class, medium OoO,
    strong OoO), cache geometries, TLB sizes, clocks, and the Gemmini
    accelerator parameters. *)

type pipeline = In_order | Out_of_order

type core = {
  name : string;
  pipeline : pipeline;
  fetch_width : int;
  decode_width : int;
  issue_mem : int;
  issue_int : int;
  issue_fp : int;
  btb_entries : int;
  rob_entries : int; (* 0 for in-order *)
  itlb_entries : int;
  dtlb_entries : int;
  l2_tlb_entries : int; (* 0 when absent *)
  l1i_kb : int;
  l1d_kb : int;
  l2_kb : int;
  clock_ghz : float;
  base_ipc : float;  (** sustained IPC on cache-resident integer code *)
}

(** CS core: 8-wide fetch BOOM-class at 2.5 GHz (Table III + Sec. VII-E). *)
val cs_core : core

(** EMS design points at 750 MHz. *)
val ems_weak : core

val ems_medium : core
val ems_strong : core

type ems_kind = Weak | Medium | Strong

val ems_core : ems_kind -> core
val ems_kind_name : ems_kind -> string

(** Memory-system latencies (cycles at the *CS* clock). *)
type mem_latency = {
  l1_hit : int;
  l2_hit : int;
  llc_hit : int;
  dram : int;
  encryption_extra : int;  (** added by the memory-encryption engine on a DRAM access *)
  integrity_extra : int;  (** added by the SHA-3 MAC check *)
}

val default_latency : mem_latency

(** Page-table walk cost in CS cycles per level, and the extra cost
    of the bitmap lookup (one additional memory access worth of work,
    overlapped with the permission check per Sec. IV-B). *)
val ptw_level_cycles : int

val bitmap_check_cycles : int

(** Mailbox / EMCall transport costs in nanoseconds (Sec. III-C). *)
type transport = {
  emcall_entry_ns : float;  (** trap into machine mode + privilege checks *)
  packet_build_ns : float;
  fabric_hop_ns : float;  (** CS <-> iHub <-> EMS one way *)
  interrupt_ns : float;  (** doorbell to EMS *)
  poll_slot_ns : float;  (** EMCall polling granularity *)
  watchdog_sweep_ns : float;
      (** EMS watchdog sweep after a doorbell drain (batch path) *)
}

val default_transport : transport

(** Shared cost of one doorbell service round (both fabric hops +
    doorbell interrupt + watchdog sweep): paid once per drained
    batch, so the per-EMCall share is [doorbell_shared_ns /. k]. *)
val doorbell_shared_ns : transport -> float

(** Gemmini-class accelerator (Table III bottom). *)
type accelerator = {
  pe_rows : int;
  pe_cols : int;
  global_buffer_kb : int;
  accumulator_kb : int;
  acc_clock_ghz : float;
}

val gemmini : accelerator

(** Whole-platform description used to build a simulation. *)
type t = {
  cs_cores : int;
  ems_cores : int;
  ems_shards : int;  (** independent EMS instances the platform hosts *)
  ems_kind : ems_kind;
  latency : mem_latency;
  transport : transport;
  crypto_engine : bool;  (** Table IV: with/without dedicated engine *)
  memory_mb : int;  (** CS physical memory *)
  ems_memory_mb : int;  (** EMS private memory *)
  context_switch_hz : float;  (** CS OS scheduler tick *)
  domains : int;
      (** OCaml domains the platform may use: 1 = deterministic
          single-domain execution (the default), >1 = parallel
          shard drains and crypto pipelines (see {!Hypertee_sim.Exec}) *)
}

(** 4 CS cores, 1 medium EMS core, crypto engine on, 256 MiB. *)
val default : t

(** Recommended EMS configuration for a CS core count (Sec. VII-B and
    Table V): <=8 cores: 1 weak in-order; <=16: 2 weak; >=32: 2
    medium OoO. *)
val recommended_ems : cs_cores:int -> int * ems_kind

val pp_core : Format.formatter -> core -> unit

(** Average cost (CS cycles) of the bitmap retrieval a PTW performs
    after a TLB miss in non-enclave mode, used by the analytic model
    (mix of L2 hits and occasional DRAM for the bitmap line). *)
val bitmap_retrieve_avg_cycles : float
