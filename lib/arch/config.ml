type pipeline = In_order | Out_of_order

type core = {
  name : string;
  pipeline : pipeline;
  fetch_width : int;
  decode_width : int;
  issue_mem : int;
  issue_int : int;
  issue_fp : int;
  btb_entries : int;
  rob_entries : int;
  itlb_entries : int;
  dtlb_entries : int;
  l2_tlb_entries : int;
  l1i_kb : int;
  l1d_kb : int;
  l2_kb : int;
  clock_ghz : float;
  base_ipc : float;
}

(* Table III. Base IPC values are the timing model's abstraction of
   the pipeline columns: an 8-wide BOOM-class OoO sustains ~2.0 IPC
   on integer code, a 4-wide OoO ~1.5, a single-issue in-order ~0.7. *)

let cs_core =
  {
    name = "CS-BOOM8";
    pipeline = Out_of_order;
    fetch_width = 8;
    decode_width = 4;
    issue_mem = 2;
    issue_int = 3;
    issue_fp = 1;
    btb_entries = 256 * 4;
    rob_entries = 128;
    itlb_entries = 32;
    dtlb_entries = 32;
    l2_tlb_entries = 1024;
    l1i_kb = 64;
    l1d_kb = 64;
    l2_kb = 1024;
    clock_ghz = 2.5;
    base_ipc = 2.0;
  }

let ems_weak =
  {
    name = "EMS-weak";
    pipeline = In_order;
    fetch_width = 1;
    decode_width = 1;
    issue_mem = 1;
    issue_int = 1;
    issue_fp = 1;
    btb_entries = 128;
    rob_entries = 0;
    itlb_entries = 8;
    dtlb_entries = 8;
    l2_tlb_entries = 0;
    l1i_kb = 16;
    l1d_kb = 16;
    l2_kb = 256;
    clock_ghz = 0.75;
    base_ipc = 0.7;
  }

let ems_medium =
  {
    name = "EMS-medium";
    pipeline = Out_of_order;
    fetch_width = 4;
    decode_width = 2;
    issue_mem = 1;
    issue_int = 2;
    issue_fp = 1;
    btb_entries = 128 * 2;
    rob_entries = 96;
    itlb_entries = 16;
    dtlb_entries = 16;
    l2_tlb_entries = 0;
    l1i_kb = 32;
    l1d_kb = 32;
    l2_kb = 512;
    clock_ghz = 0.75;
    base_ipc = 1.5;
  }

let ems_strong =
  {
    name = "EMS-strong";
    pipeline = Out_of_order;
    fetch_width = 8;
    decode_width = 4;
    issue_mem = 2;
    issue_int = 3;
    issue_fp = 1;
    btb_entries = 256 * 4;
    rob_entries = 128;
    itlb_entries = 32;
    dtlb_entries = 32;
    l2_tlb_entries = 0;
    l1i_kb = 64;
    l1d_kb = 64;
    l2_kb = 512;
    clock_ghz = 0.75;
    base_ipc = 2.0;
  }

type ems_kind = Weak | Medium | Strong

let ems_core = function Weak -> ems_weak | Medium -> ems_medium | Strong -> ems_strong
let ems_kind_name = function Weak -> "weak" | Medium -> "medium" | Strong -> "strong"

type mem_latency = {
  l1_hit : int;
  l2_hit : int;
  llc_hit : int;
  dram : int;
  encryption_extra : int;
  integrity_extra : int;
}

let default_latency =
  { l1_hit = 4; l2_hit = 14; llc_hit = 40; dram = 200; encryption_extra = 9; integrity_extra = 4 }

let ptw_level_cycles = 20
let bitmap_check_cycles = 8

type transport = {
  emcall_entry_ns : float;
  packet_build_ns : float;
  fabric_hop_ns : float;
  interrupt_ns : float;
  poll_slot_ns : float;
  watchdog_sweep_ns : float;
}

let default_transport =
  {
    emcall_entry_ns = 120.0;
    packet_build_ns = 60.0;
    fabric_hop_ns = 40.0;
    interrupt_ns = 200.0;
    poll_slot_ns = 100.0;
    watchdog_sweep_ns = 80.0;
  }

(* Shared transport cost of one doorbell service round: both fabric
   hops, the doorbell interrupt, and the watchdog sweep the EMS runs
   after the drain. A batch of k requests drained by one doorbell
   pays this once, so the per-EMCall share falls as k grows. *)
let doorbell_shared_ns tr =
  (2.0 *. tr.fabric_hop_ns) +. tr.interrupt_ns +. tr.watchdog_sweep_ns

type accelerator = {
  pe_rows : int;
  pe_cols : int;
  global_buffer_kb : int;
  accumulator_kb : int;
  acc_clock_ghz : float;
}

let gemmini =
  { pe_rows = 16; pe_cols = 16; global_buffer_kb = 256; accumulator_kb = 64; acc_clock_ghz = 1.0 }

type t = {
  cs_cores : int;
  ems_cores : int;
  ems_shards : int;
  ems_kind : ems_kind;
  latency : mem_latency;
  transport : transport;
  crypto_engine : bool;
  memory_mb : int;
  ems_memory_mb : int;
  context_switch_hz : float;
  domains : int;
}

let default =
  {
    cs_cores = 4;
    ems_cores = 1;
    ems_shards = 1;
    ems_kind = Medium;
    latency = default_latency;
    transport = default_transport;
    crypto_engine = true;
    memory_mb = 256;
    ems_memory_mb = 64;
    context_switch_hz = 100.0;
    domains = 1;
  }

let recommended_ems ~cs_cores =
  if cs_cores <= 8 then (1, Weak) else if cs_cores <= 16 then (2, Weak) else (2, Medium)

let pp_core fmt c =
  Format.fprintf fmt "%s (%s, fetch %d, %.2f GHz, IPC %.1f, L1 %d/%dKB, L2 %dKB)" c.name
    (match c.pipeline with In_order -> "in-order" | Out_of_order -> "OoO")
    c.fetch_width c.clock_ghz c.base_ipc c.l1i_kb c.l1d_kb c.l2_kb

let bitmap_retrieve_avg_cycles = 20.0
