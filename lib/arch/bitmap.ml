type t = {
  mem : Phys_mem.t;
  base : int; (* first frame of the bitmap region *)
  region : int; (* frames occupied by the bitmap *)
  lock : Mutex.t;
      (* Bits are packed eight frames to a byte, so [update] is a
         read-modify-write of a byte shared between adjacent frames:
         two shards flipping neighbouring frames' bits in parallel
         would lose one flip without the lock. [get] stays lockless —
         a single byte read observes its own frame's bit correctly
         regardless of concurrent updates to sibling bits. *)
}

let bits_per_frame = Hypertee_util.Units.page_size * 8

let create mem =
  let total = Phys_mem.frames mem in
  let region = (total + bits_per_frame - 1) / bits_per_frame in
  let base = total - region in
  for f = base to total - 1 do
    match Phys_mem.owner mem f with
    | Phys_mem.Free -> Phys_mem.set_owner mem f Phys_mem.Bitmap_region
    | _ -> invalid_arg "Bitmap.create: trailing frames already in use"
  done;
  let t = { mem; base; region; lock = Mutex.create () } in
  t

let base_frame t = t.base
let region_frames t = t.region

let locate t frame =
  if frame < 0 || frame >= Phys_mem.frames t.mem then invalid_arg "Bitmap: frame out of range";
  let byte_index = frame / 8 in
  let holder = t.base + (byte_index / Hypertee_util.Units.page_size) in
  let off = byte_index mod Hypertee_util.Units.page_size in
  (holder, off, frame mod 8)

let get t ~frame =
  let holder, off, bit = locate t frame in
  let b = Phys_mem.read_sub t.mem ~frame:holder ~off ~len:1 in
  Char.code (Bytes.get b 0) land (1 lsl bit) <> 0

let update t ~frame f =
  Mutex.protect t.lock @@ fun () ->
  let holder, off, bit = locate t frame in
  let b = Phys_mem.read_sub t.mem ~frame:holder ~off ~len:1 in
  let v = f (Char.code (Bytes.get b 0)) bit in
  Phys_mem.write_sub t.mem ~frame:holder ~off (Bytes.make 1 (Char.chr v))

let set t ~frame = update t ~frame (fun v bit -> v lor (1 lsl bit))
let clear t ~frame = update t ~frame (fun v bit -> v land lnot (1 lsl bit))

let popcount t =
  let acc = ref 0 in
  for f = 0 to Phys_mem.frames t.mem - 1 do
    if get t ~frame:f then incr acc
  done;
  !acc

(* The bitmap region protects itself: its own frames are marked as
   enclave memory so untrusted software cannot read or corrupt the
   bits (Sec. IV-B). *)
let create mem =
  let t = create mem in
  for f = t.base to t.base + t.region - 1 do
    set t ~frame:f
  done;
  t
