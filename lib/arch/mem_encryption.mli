(** Multi-key memory-encryption engine with integrity (Sec. IV-C).

    Models an MKTME/SME-class engine sitting between the LLC and
    DRAM. EMS (and only EMS, via iHub) programs KeyID -> AES-128 key
    slots; every memory access carries a KeyID in the high bits of
    the physical address, and the engine encrypts/decrypts per-line
    with the selected key tweaked by the address. Integrity is a
    truncated 28-bit SHA-3 MAC per line; a mismatch raises an
    integrity exception (physical-tampering detection).

    Functionally real: [store]/[load] below actually AES-CTR the
    bytes and check real MACs, so the cold-boot and cross-key attack
    tests read genuine ciphertext. KeyID 0 is the bypass slot
    (plaintext, no MAC) used by non-enclave traffic.

    Integrity fast path: the engine MACs with a keyed sponge snapshot
    (key absorbed once at [create]) and keeps a verified-line cache
    keyed by {!Phys_mem.version} — a [read_page] of a frame whose
    ciphertext already passed verification at the current write
    version skips the sponge entirely. Coherence rules: every DRAM
    mutation (engine writes, scrubs, and mutable {!Phys_mem.borrow}
    aliases, i.e. physical tampering) bumps the frame version and so
    forces re-verification; injected bit flips corrupt the arriving
    copy and always bypass the cache; [revoke]/[program] drop the
    key's lines outright. *)

exception Integrity_violation of { frame : int }

type t

(** [create ~slots ()] an engine with KeyIDs 1..slots-1 programmable.
    [reference_mac] selects the retained reference Keccak for line
    MACs and disables the verified-line cache — the perf harness's
    baseline engine; tags are byte-identical either way. *)
val create : ?reference_mac:bool -> slots:int -> unit -> t

val slots : t -> int

(** [program t ~key_id key] installs a 16-byte key (EMS-only path).
    Raises [Invalid_argument] on KeyID 0 or out of range. *)
val program : t -> key_id:int -> bytes -> unit

(** [revoke t ~key_id] erases the slot (KeyID reuse, Sec. IV-C). *)
val revoke : t -> key_id:int -> unit

val is_programmed : t -> key_id:int -> bool

(** [store t ~key_id ~frame data] -> ciphertext as it would sit in
    DRAM, recording the integrity MAC. [load] reverses and verifies.
    Page-granular for the simulator's convenience. *)
val store : t -> key_id:int -> frame:int -> bytes -> bytes

val load : t -> key_id:int -> frame:int -> bytes -> bytes

(** Allocation-free variants: [store_into] encrypts [src] into [dst]
    (equal lengths; KeyID 0 is a plain copy) and records the MAC over
    [dst]; [load_into] verifies the MAC over [src] and decrypts into
    [dst]. [src] and [dst] may be the same buffer (in-place DRAM
    transform). *)
val store_into : t -> key_id:int -> frame:int -> src:bytes -> dst:bytes -> unit

val load_into : t -> key_id:int -> frame:int -> src:bytes -> dst:bytes -> unit

(** [load_range_into t ~key_id ~frame ~src ~off ~len dst ~dst_off]
    decrypts only [off, off+len) of the full ciphertext page [src]
    into [dst]. The integrity MAC is still verified over the whole
    line; only the keystream for the requested range is generated. *)
val load_range_into :
  t -> key_id:int -> frame:int -> src:bytes -> off:int -> len:int -> bytes -> dst_off:int -> unit

(** {2 Zero-copy data plane over physical memory}

    Pairings with {!Phys_mem.borrow} that encrypt/decrypt DRAM in
    place. KeyID 0 degenerates to plain reads/writes. *)

(** [read_page t mem ~key_id ~frame] decrypts the frame into a fresh
    page (the only allocation on the path). *)
val read_page : t -> Phys_mem.t -> key_id:int -> frame:int -> bytes

(** [read_range_into t mem ~key_id ~frame ~off ~len dst ~dst_off]
    decrypts a sub-range of the frame straight into [dst] without any
    intermediate page copy. *)
val read_range_into :
  t -> Phys_mem.t -> key_id:int -> frame:int -> off:int -> len:int -> bytes -> dst_off:int -> unit

val read_range : t -> Phys_mem.t -> key_id:int -> frame:int -> off:int -> len:int -> bytes

(** [write_page t mem ~key_id ~frame src] encrypts the page [src]
    directly into the frame's DRAM buffer and records the MAC. *)
val write_page : t -> Phys_mem.t -> key_id:int -> frame:int -> bytes -> unit

(** [update_range t mem ~key_id ~frame ~off ~src ~src_off ~len]
    read-modify-writes a sub-range of an encrypted frame in place.
    The stale line's integrity is verified first (a tampered page
    faults even when only partially overwritten). *)
val update_range :
  t -> Phys_mem.t -> key_id:int -> frame:int -> off:int -> src:bytes -> src_off:int -> len:int -> unit

(** [raw_ciphertext_view] — what a physical attacker dumping DRAM
    sees — is just the stored bytes; provided for attack tests. *)

(** [find_free_slot t] atomically finds the lowest free KeyID and
    *reserves* it: a concurrent caller cannot be handed the same
    slot. The caller must then either [program] the slot (commit) or
    [revoke] it (release, on any failure path between allocation and
    programming). *)
val find_free_slot : t -> int option

(** Install a worker pool: bulk pipelines ([write_pages],
    [read_pages]) fan their per-page crypto across it. *)
val set_pool : t -> Hypertee_util.Domain_pool.t -> unit

(** [write_pages t mem ~key_id pages] encrypts each [(frame, data)]
    pair into its frame's DRAM, in parallel when a pool is installed.
    Frames must be distinct. Byte-identical to calling [write_page]
    in a loop. *)
val write_pages : t -> Phys_mem.t -> key_id:int -> (int * bytes) array -> unit

(** [read_pages t mem ~key_id frames] MAC-checks and decrypts each
    frame into a fresh page, preserving input order. *)
val read_pages : t -> Phys_mem.t -> key_id:int -> int array -> bytes array

(** Install a fault injector: [load] then flips one
    deterministic-random ciphertext bit whenever the
    [Memory_bit_flip] site fires, which the MAC check must catch. *)
val set_fault_injector : t -> Hypertee_faults.Fault.t -> unit

(** Bit flips injected so far. *)
val bit_flips : t -> int

(** Integrity checks skipped by the verified-line cache so far. *)
val mac_cache_hits : t -> int

(** [flush_mac_cache t] marks every cached line unverified (the MACs
    themselves are kept). The deep invariant sweep calls this before
    re-reading every mapped page so the sweep genuinely re-verifies;
    the perf harness uses it to measure the cold read path. *)
val flush_mac_cache : t -> unit

(** Timing: extra nanoseconds an off-chip access pays for decryption
    + MAC check, at the given DRAM parameters. *)
val extra_ns : Config.mem_latency -> cs_ghz:float -> float

(** Snapshot engine counters (stores, loads, range ops, MAC
    failures, cache hits, bit flips) into a metrics registry under
    [mee.*]. Counters are atomics, so the snapshot is race-free
    against concurrent bulk pipelines and takes no engine lock. *)
val publish_metrics : t -> Hypertee_obs.Metrics.t -> unit
