(** Multi-key memory-encryption engine with integrity (Sec. IV-C).

    Models an MKTME/SME-class engine sitting between the LLC and
    DRAM. EMS (and only EMS, via iHub) programs KeyID -> AES-128 key
    slots; every memory access carries a KeyID in the high bits of
    the physical address, and the engine encrypts/decrypts per-line
    with the selected key tweaked by the address. Integrity is a
    truncated 28-bit SHA-3 MAC per line; a mismatch raises an
    integrity exception (physical-tampering detection).

    Functionally real: [store]/[load] below actually AES-CTR the
    bytes and check real MACs, so the cold-boot and cross-key attack
    tests read genuine ciphertext. KeyID 0 is the bypass slot
    (plaintext, no MAC) used by non-enclave traffic. *)

exception Integrity_violation of { frame : int }

type t

(** [create ~slots] an engine with KeyIDs 1..slots-1 programmable. *)
val create : slots:int -> t

val slots : t -> int

(** [program t ~key_id key] installs a 16-byte key (EMS-only path).
    Raises [Invalid_argument] on KeyID 0 or out of range. *)
val program : t -> key_id:int -> bytes -> unit

(** [revoke t ~key_id] erases the slot (KeyID reuse, Sec. IV-C). *)
val revoke : t -> key_id:int -> unit

val is_programmed : t -> key_id:int -> bool

(** [store t ~key_id ~frame data] -> ciphertext as it would sit in
    DRAM, recording the integrity MAC. [load] reverses and verifies.
    Page-granular for the simulator's convenience. *)
val store : t -> key_id:int -> frame:int -> bytes -> bytes

val load : t -> key_id:int -> frame:int -> bytes -> bytes

(** [raw_ciphertext_view] — what a physical attacker dumping DRAM
    sees — is just the stored bytes; provided for attack tests. *)

(** Find a free KeyID (lowest unprogrammed), if any. *)
val find_free_slot : t -> int option

(** Install a fault injector: [load] then flips one
    deterministic-random ciphertext bit whenever the
    [Memory_bit_flip] site fires, which the MAC check must catch. *)
val set_fault_injector : t -> Hypertee_faults.Fault.t -> unit

(** Bit flips injected so far. *)
val bit_flips : t -> int

(** Timing: extra nanoseconds an off-chip access pays for decryption
    + MAC check, at the given DRAM parameters. *)
val extra_ns : Config.mem_latency -> cs_ghz:float -> float
