(** Physical memory: an array of 4 KiB frames with ownership metadata
    and lazily allocated byte contents.

    Frame ownership is the ground truth that the bitmap, the page
    ownership table, and the DMA whitelist are all views of; the
    property tests check those views against this. Contents are only
    materialised for frames that are actually written, so simulating
    a 256 MiB platform does not cost 256 MiB. *)

type owner =
  | Free  (** in the CS OS free list *)
  | Cs_os  (** kernel or normal application memory *)
  | Pool  (** in the EMS enclave memory pool, not yet mapped *)
  | Enclave of int  (** private enclave page (enclave id) *)
  | Shared of int  (** enclave shared-memory page (shm id) *)
  | Page_table of int  (** enclave page-table page (enclave id) *)
  | Ems_private  (** EMS-reserved (invisible to CS) *)
  | Bitmap_region  (** holds the bitmap itself *)

type t

(** [create ~frames] makes a memory of [frames] 4 KiB frames, all
    [Free]. *)
val create : frames:int -> t

val frames : t -> int
val owner : t -> int -> owner
val set_owner : t -> int -> owner -> unit

(** Count frames matching a predicate. *)
val count_owned : t -> (owner -> bool) -> int

(** [read t ~frame] is a copy of the frame's 4096 bytes (zeros if
    never written). *)
val read : t -> frame:int -> bytes

(** [write t ~frame data] replaces the frame contents. [data] must be
    exactly 4096 bytes. *)
val write : t -> frame:int -> bytes -> unit

(** [borrow t ~frame] is the frame's live underlying buffer (4096
    bytes), materialising it on first touch. Writes through the
    result are writes to DRAM; the reference is only valid until the
    frame is re-written via [write]. This is the zero-copy entry the
    memory-encryption engine uses to transform pages in place. *)
val borrow : t -> frame:int -> bytes

(** [borrow_ro t ~frame] is [borrow] for callers that promise not to
    write through the result: the frame's {!version} is left alone,
    so the engine's verified-MAC cache stays hot across repeated
    reads of an unmodified frame. *)
val borrow_ro : t -> frame:int -> bytes

(** [version t ~frame] is the frame's write version: a counter bumped
    by every mutation entry point ([write], [write_sub], [zero],
    [write_u64]) and by every mutable [borrow] (which hands out a
    live alias, so the bytes may change behind the API). The
    memory-encryption engine tags verified MAC-cache lines with this
    value; a bumped version forces the next read to re-verify. *)
val version : t -> frame:int -> int

(** [read_into t ~frame ~off ~len dst ~dst_off] copies a slice of the
    frame into [dst] without allocating (zeros if the frame was never
    written). *)
val read_into : t -> frame:int -> off:int -> len:int -> bytes -> dst_off:int -> unit

(** [read_sub t ~frame ~off ~len] / [write_sub t ~frame ~off data]
    partial access within one frame. *)
val read_sub : t -> frame:int -> off:int -> len:int -> bytes

val write_sub : t -> frame:int -> off:int -> bytes -> unit

(** [zero t ~frame] clears contents (page scrubbing on free). *)
val zero : t -> frame:int -> unit

(** 64-bit load/store at a byte offset inside a frame (little-endian);
    used by the page-table radix nodes. *)
val read_u64 : t -> frame:int -> off:int -> int64

val write_u64 : t -> frame:int -> off:int -> int64 -> unit

(** [find_free t ~n] returns [n] free frame numbers (ascending) or
    [None] if memory is exhausted. Does not change ownership. *)
val find_free : t -> n:int -> int list option

val pp_owner : Format.formatter -> owner -> unit
