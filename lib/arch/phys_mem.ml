type owner =
  | Free
  | Cs_os
  | Pool
  | Enclave of int
  | Shared of int
  | Page_table of int
  | Ems_private
  | Bitmap_region

let page_size = Hypertee_util.Units.page_size

type t = {
  owners : owner array;
  contents : bytes option array; (* lazily allocated *)
  versions : int array; (* per-frame write version, see [version] *)
}

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: need at least one frame";
  {
    owners = Array.make frames Free;
    contents = Array.make frames None;
    versions = Array.make frames 0;
  }

let frames t = Array.length t.owners

let check_frame t frame =
  if frame < 0 || frame >= frames t then invalid_arg "Phys_mem: frame out of range"

let owner t frame =
  check_frame t frame;
  t.owners.(frame)

let set_owner t frame o =
  check_frame t frame;
  t.owners.(frame) <- o

let count_owned t pred = Array.fold_left (fun acc o -> if pred o then acc + 1 else acc) 0 t.owners

(* Bump the frame's write version. Every mutation entry point — and
   [borrow], which hands out a mutable alias — counts as a write;
   the memory-encryption engine's verified-MAC cache keys its entries
   on this counter, so any path that could have changed the DRAM
   bytes forces the next integrity check to really run. Distinct
   frames may be bumped from different domains (the bulk pipelines
   require distinct frames), so a plain int store per frame is safe. *)
let touch t frame = t.versions.(frame) <- t.versions.(frame) + 1

let version t ~frame =
  check_frame t frame;
  t.versions.(frame)

let materialize t frame =
  match t.contents.(frame) with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    t.contents.(frame) <- Some b;
    b

let read t ~frame =
  check_frame t frame;
  match t.contents.(frame) with
  | Some b -> Bytes.copy b
  | None -> Bytes.make page_size '\000'

let write t ~frame data =
  check_frame t frame;
  if Bytes.length data <> page_size then invalid_arg "Phys_mem.write: data must be one page";
  touch t frame;
  t.contents.(frame) <- Some (Bytes.copy data)

(* Expose the live underlying page so the memory-encryption engine can
   encrypt/decrypt DRAM in place instead of copying pages through the
   API. Materialises on first touch; callers own the aliasing rules
   (see DESIGN.md "Data-plane performance"). The returned buffer is
   mutable, so the frame's write version is bumped: a physical
   attacker flipping bits through this alias invalidates any verified
   MAC-cache line covering the frame. *)
let borrow t ~frame =
  check_frame t frame;
  touch t frame;
  materialize t frame

(* Read-only borrow: the engine's decrypt/verify paths promise not to
   write through the result, so the version is left alone and a hot
   line stays cache-verified across repeated reads. *)
let borrow_ro t ~frame =
  check_frame t frame;
  materialize t frame

let read_into t ~frame ~off ~len dst ~dst_off =
  check_frame t frame;
  if off < 0 || len < 0 || off + len > page_size then invalid_arg "Phys_mem.read_into: bad slice";
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Phys_mem.read_into: destination out of bounds";
  match t.contents.(frame) with
  | Some b -> Bytes.blit b off dst dst_off len
  | None -> Bytes.fill dst dst_off len '\000'

let read_sub t ~frame ~off ~len =
  check_frame t frame;
  if off < 0 || len < 0 || off + len > page_size then invalid_arg "Phys_mem.read_sub: bad slice";
  match t.contents.(frame) with
  | Some b -> Bytes.sub b off len
  | None -> Bytes.make len '\000'

let write_sub t ~frame ~off data =
  check_frame t frame;
  let len = Bytes.length data in
  if off < 0 || off + len > page_size then invalid_arg "Phys_mem.write_sub: bad slice";
  touch t frame;
  let b = materialize t frame in
  Bytes.blit data 0 b off len

let zero t ~frame =
  check_frame t frame;
  match t.contents.(frame) with
  | Some b ->
    touch t frame;
    Bytes.fill b 0 page_size '\000'
  | None -> ()

let read_u64 t ~frame ~off =
  check_frame t frame;
  if off < 0 || off + 8 > page_size then invalid_arg "Phys_mem.read_u64: bad offset";
  match t.contents.(frame) with
  | Some b -> Hypertee_util.Bytes_ext.get_u64_le b off
  | None -> 0L

let write_u64 t ~frame ~off v =
  check_frame t frame;
  if off < 0 || off + 8 > page_size then invalid_arg "Phys_mem.write_u64: bad offset";
  touch t frame;
  Hypertee_util.Bytes_ext.set_u64_le (materialize t frame) off v

let find_free t ~n =
  let acc = ref [] and found = ref 0 in
  let total = frames t in
  let i = ref 0 in
  while !found < n && !i < total do
    if t.owners.(!i) = Free then begin
      acc := !i :: !acc;
      incr found
    end;
    incr i
  done;
  if !found = n then Some (List.rev !acc) else None

let pp_owner fmt = function
  | Free -> Format.pp_print_string fmt "free"
  | Cs_os -> Format.pp_print_string fmt "cs-os"
  | Pool -> Format.pp_print_string fmt "pool"
  | Enclave id -> Format.fprintf fmt "enclave:%d" id
  | Shared id -> Format.fprintf fmt "shared:%d" id
  | Page_table id -> Format.fprintf fmt "pt:%d" id
  | Ems_private -> Format.pp_print_string fmt "ems"
  | Bitmap_region -> Format.pp_print_string fmt "bitmap"
