type owner =
  | Free
  | Cs_os
  | Pool
  | Enclave of int
  | Shared of int
  | Page_table of int
  | Ems_private
  | Bitmap_region

let page_size = Hypertee_util.Units.page_size

type t = {
  owners : owner array;
  contents : bytes option array; (* lazily allocated *)
}

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: need at least one frame";
  { owners = Array.make frames Free; contents = Array.make frames None }

let frames t = Array.length t.owners

let check_frame t frame =
  if frame < 0 || frame >= frames t then invalid_arg "Phys_mem: frame out of range"

let owner t frame =
  check_frame t frame;
  t.owners.(frame)

let set_owner t frame o =
  check_frame t frame;
  t.owners.(frame) <- o

let count_owned t pred = Array.fold_left (fun acc o -> if pred o then acc + 1 else acc) 0 t.owners

let materialize t frame =
  match t.contents.(frame) with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    t.contents.(frame) <- Some b;
    b

let read t ~frame =
  check_frame t frame;
  match t.contents.(frame) with
  | Some b -> Bytes.copy b
  | None -> Bytes.make page_size '\000'

let write t ~frame data =
  check_frame t frame;
  if Bytes.length data <> page_size then invalid_arg "Phys_mem.write: data must be one page";
  t.contents.(frame) <- Some (Bytes.copy data)

(* Expose the live underlying page so the memory-encryption engine can
   encrypt/decrypt DRAM in place instead of copying pages through the
   API. Materialises on first touch; callers own the aliasing rules
   (see DESIGN.md "Data-plane performance"). *)
let borrow t ~frame =
  check_frame t frame;
  materialize t frame

let read_into t ~frame ~off ~len dst ~dst_off =
  check_frame t frame;
  if off < 0 || len < 0 || off + len > page_size then invalid_arg "Phys_mem.read_into: bad slice";
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Phys_mem.read_into: destination out of bounds";
  match t.contents.(frame) with
  | Some b -> Bytes.blit b off dst dst_off len
  | None -> Bytes.fill dst dst_off len '\000'

let read_sub t ~frame ~off ~len =
  check_frame t frame;
  if off < 0 || len < 0 || off + len > page_size then invalid_arg "Phys_mem.read_sub: bad slice";
  match t.contents.(frame) with
  | Some b -> Bytes.sub b off len
  | None -> Bytes.make len '\000'

let write_sub t ~frame ~off data =
  check_frame t frame;
  let len = Bytes.length data in
  if off < 0 || off + len > page_size then invalid_arg "Phys_mem.write_sub: bad slice";
  let b = materialize t frame in
  Bytes.blit data 0 b off len

let zero t ~frame =
  check_frame t frame;
  match t.contents.(frame) with
  | Some b -> Bytes.fill b 0 page_size '\000'
  | None -> ()

let read_u64 t ~frame ~off =
  check_frame t frame;
  if off < 0 || off + 8 > page_size then invalid_arg "Phys_mem.read_u64: bad offset";
  match t.contents.(frame) with
  | Some b -> Hypertee_util.Bytes_ext.get_u64_le b off
  | None -> 0L

let write_u64 t ~frame ~off v =
  check_frame t frame;
  if off < 0 || off + 8 > page_size then invalid_arg "Phys_mem.write_u64: bad offset";
  Hypertee_util.Bytes_ext.set_u64_le (materialize t frame) off v

let find_free t ~n =
  let acc = ref [] and found = ref 0 in
  let total = frames t in
  let i = ref 0 in
  while !found < n && !i < total do
    if t.owners.(!i) = Free then begin
      acc := !i :: !acc;
      incr found
    end;
    incr i
  done;
  if !found = n then Some (List.rev !acc) else None

let pp_owner fmt = function
  | Free -> Format.pp_print_string fmt "free"
  | Cs_os -> Format.pp_print_string fmt "cs-os"
  | Pool -> Format.pp_print_string fmt "pool"
  | Enclave id -> Format.fprintf fmt "enclave:%d" id
  | Shared id -> Format.fprintf fmt "shared:%d" id
  | Page_table id -> Format.fprintf fmt "pt:%d" id
  | Ems_private -> Format.pp_print_string fmt "ems"
  | Bitmap_region -> Format.pp_print_string fmt "bitmap"
