exception Integrity_violation of { frame : int }

type slot = {
  key : Hypertee_crypto.Aes.key;
  raw : bytes;
}

(* Slot lifecycle. [Reserved] closes the allocation race the parallel
   audit found: callers allocate with [find_free_slot] and only later
   [program] the derived key, so without an intermediate state two
   shards could claim the same KeyID. [find_free_slot] now atomically
   reserves; [program] commits; [revoke] releases from either state. *)
type entry = Free | Reserved | Programmed of slot

type t = {
  table : entry array; (* index = KeyID; 0 is bypass *)
  macs : (int * int, int) Hashtbl.t; (* (key_id, frame) -> 28-bit MAC *)
  mac_key : bytes; (* engine-internal MAC key *)
  lock : Mutex.t; (* guards table transitions, macs, counters *)
  mutable pool : Hypertee_util.Domain_pool.t option;
  mutable faults : Hypertee_faults.Fault.t option;
  mutable bit_flips : int;
  mutable stores : int;
  mutable loads : int;
  mutable range_loads : int;
  mutable range_updates : int;
  mutable mac_failures : int;
}

let create ~slots =
  if slots < 2 then invalid_arg "Mem_encryption.create: need at least 2 slots";
  {
    table = Array.make slots Free;
    macs = Hashtbl.create 256;
    mac_key = Hypertee_crypto.Sha256.digest_string "hypertee-mee-mac-key";
    lock = Mutex.create ();
    pool = None;
    faults = None;
    bit_flips = 0;
    stores = 0;
    loads = 0;
    range_loads = 0;
    range_updates = 0;
    mac_failures = 0;
  }

let set_fault_injector t inj = t.faults <- Some inj
let set_pool t pool = t.pool <- Some pool
let bit_flips t = t.bit_flips

let slots t = Array.length t.table

let check_key_id t key_id =
  if key_id <= 0 || key_id >= slots t then
    invalid_arg "Mem_encryption: key_id out of programmable range"

let program t ~key_id key =
  check_key_id t key_id;
  if Bytes.length key <> 16 then invalid_arg "Mem_encryption.program: key must be 16 bytes";
  Mutex.protect t.lock (fun () ->
      t.table.(key_id) <-
        Programmed { key = Hypertee_crypto.Aes.expand key; raw = Bytes.copy key })

let revoke t ~key_id =
  check_key_id t key_id;
  Mutex.protect t.lock (fun () ->
      (match t.table.(key_id) with
      | Programmed slot -> Hypertee_util.Bytes_ext.fill_zero slot.raw
      | Reserved | Free -> ());
      t.table.(key_id) <- Free;
      (* Drop MAC state for lines under this key: after reprogramming,
         stale MACs must not satisfy a check. *)
      let stale =
        Hashtbl.fold (fun (k, f) _ acc -> if k = key_id then (k, f) :: acc else acc) t.macs []
      in
      List.iter (Hashtbl.remove t.macs) stale)

let is_programmed t ~key_id =
  key_id > 0 && key_id < slots t
  && match t.table.(key_id) with Programmed _ -> true | Reserved | Free -> false

let slot_exn t key_id =
  check_key_id t key_id;
  match t.table.(key_id) with
  | Programmed s -> s
  | Reserved | Free -> invalid_arg "Mem_encryption: KeyID not programmed"

(* Per-domain tweak scratch: the page nonce depends only on the frame
   number, so one reusable 16-byte buffer per domain serves every
   slot (the per-slot buffer it replaces raced when two domains
   touched pages under the same KeyID). *)
let tweak_scratch : bytes Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Bytes.make 16 '\000')

let tweak_for ~frame =
  let tw = Domain.DLS.get tweak_scratch in
  Hypertee_util.Bytes_ext.set_u64_be tw 8 (Int64.of_int frame);
  tw

let store_into t ~key_id ~frame ~src ~dst =
  let len = Bytes.length src in
  if Bytes.length dst <> len then invalid_arg "Mem_encryption.store_into: length mismatch";
  if key_id = 0 then begin
    if dst != src then Bytes.blit src 0 dst 0 len
  end
  else begin
    let slot = slot_exn t key_id in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~src ~src_off:0 ~dst
      ~dst_off:0 len;
    let mac = Hypertee_crypto.Keccak.mac_28bit ~key:t.mac_key dst in
    Mutex.protect t.lock (fun () ->
        t.stores <- t.stores + 1;
        Hashtbl.replace t.macs (key_id, frame) mac)
  end

let store t ~key_id ~frame data =
  if key_id = 0 then data
  else begin
    let ct = Bytes.create (Bytes.length data) in
    store_into t ~key_id ~frame ~src:data ~dst:ct;
    ct
  end

(* Injected DRAM bit flip: flip one deterministic-random bit of the
   ciphertext as the line arrives from memory. The SHA-3 MAC check
   below must catch it — that is the integrity property under test.
   Never mutates [data] (which may be a borrowed DRAM page); the rare
   fault path pays a copy. *)
let maybe_flip t ~frame data =
  match t.faults with
  | None -> data
  | Some inj ->
    let module F = Hypertee_faults.Fault in
    if Bytes.length data > 0 && F.fire inj F.Memory_bit_flip then begin
      Mutex.protect t.lock (fun () -> t.bit_flips <- t.bit_flips + 1);
      (* Journal the flip against its frame so the deep checker sweep
         can tell injected MAC failures from latent platform bugs. *)
      F.note_flip inj ~frame;
      let bit = F.draw_int inj F.Memory_bit_flip (8 * Bytes.length data) in
      let flipped = Bytes.copy data in
      let byte = bit / 8 in
      Bytes.set flipped byte (Char.chr (Char.code (Bytes.get flipped byte) lxor (1 lsl (bit mod 8))));
      flipped
    end
    else data

(* MAC-check the full ciphertext [data] as it arrives from DRAM and
   return the (possibly fault-flipped) buffer to decrypt from. *)
let checked_ciphertext t ~key_id ~frame data =
  let data = maybe_flip t ~frame data in
  let mac = Hypertee_crypto.Keccak.mac_28bit ~key:t.mac_key data in
  let ok =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.macs (key_id, frame) with
        | Some stored when stored = mac -> true
        | Some _ | None ->
          (* [None]: never stored under this key — decrypting
             garbage; a real engine would also MAC-fault on
             uninitialised lines. *)
          t.mac_failures <- t.mac_failures + 1;
          false)
  in
  if not ok then raise (Integrity_violation { frame });
  data

let load_into t ~key_id ~frame ~src ~dst =
  let len = Bytes.length src in
  if Bytes.length dst <> len then invalid_arg "Mem_encryption.load_into: length mismatch";
  if key_id = 0 then begin
    if dst != src then Bytes.blit src 0 dst 0 len
  end
  else begin
    Mutex.protect t.lock (fun () -> t.loads <- t.loads + 1);
    let data = checked_ciphertext t ~key_id ~frame src in
    let slot = slot_exn t key_id in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~src:data ~src_off:0 ~dst
      ~dst_off:0 len
  end

(* Decrypt only [off, off+len) of the page whose full ciphertext is
   [src]. Integrity is still verified over the whole line — the MAC is
   page-granular — but the keystream is only generated for the
   requested range. *)
let load_range_into t ~key_id ~frame ~src ~off ~len dst ~dst_off =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Mem_encryption.load_range_into: bad slice";
  if key_id = 0 then Bytes.blit src off dst dst_off len
  else begin
    Mutex.protect t.lock (fun () -> t.range_loads <- t.range_loads + 1);
    let data = checked_ciphertext t ~key_id ~frame src in
    let slot = slot_exn t key_id in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~stream_off:off ~src:data
      ~src_off:off ~dst ~dst_off len
  end

let load t ~key_id ~frame data =
  if key_id = 0 then data
  else begin
    let pt = Bytes.create (Bytes.length data) in
    load_into t ~key_id ~frame ~src:data ~dst:pt;
    pt
  end

(* --- Zero-copy data plane over physical memory. These helpers pair
   the engine with [Phys_mem.borrow] so page reads and writes
   transform DRAM in place instead of copying pages through both
   layers. --- *)

let page_size = Hypertee_util.Units.page_size

(* Plaintext scratch for read-modify-write, one page per domain. *)
let rmw_scratch : bytes Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Bytes.create page_size)

let read_page t mem ~key_id ~frame =
  if key_id = 0 then Phys_mem.read mem ~frame
  else begin
    let pt = Bytes.create page_size in
    load_into t ~key_id ~frame ~src:(Phys_mem.borrow mem ~frame) ~dst:pt;
    pt
  end

let read_range_into t mem ~key_id ~frame ~off ~len dst ~dst_off =
  if key_id = 0 then Phys_mem.read_into mem ~frame ~off ~len dst ~dst_off
  else load_range_into t ~key_id ~frame ~src:(Phys_mem.borrow mem ~frame) ~off ~len dst ~dst_off

let read_range t mem ~key_id ~frame ~off ~len =
  let out = Bytes.create len in
  read_range_into t mem ~key_id ~frame ~off ~len out ~dst_off:0;
  out

let write_page t mem ~key_id ~frame src =
  if Bytes.length src <> page_size then
    invalid_arg "Mem_encryption.write_page: data must be one page";
  let dram = Phys_mem.borrow mem ~frame in
  if key_id = 0 then Bytes.blit src 0 dram 0 page_size
  else store_into t ~key_id ~frame ~src ~dst:dram

let update_range t mem ~key_id ~frame ~off ~src ~src_off ~len =
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Mem_encryption.update_range: bad slice";
  if key_id = 0 then begin
    let dram = Phys_mem.borrow mem ~frame in
    Bytes.blit src src_off dram off len
  end
  else begin
    (* Full-page read-modify-write: decrypting first keeps the
       integrity check on the stale line (a tampered page still
       faults even when only partially overwritten). *)
    Mutex.protect t.lock (fun () -> t.range_updates <- t.range_updates + 1);
    let rmw = Domain.DLS.get rmw_scratch in
    let dram = Phys_mem.borrow mem ~frame in
    load_into t ~key_id ~frame ~src:dram ~dst:rmw;
    Bytes.blit src src_off rmw off len;
    store_into t ~key_id ~frame ~src:rmw ~dst:dram
  end

(* --- Bulk page pipelines. Each page's encrypt/MAC (or MAC-check/
   decrypt) is independent of every other page's, so with a worker
   pool installed these fan the per-page work across domains; the
   bytes written are identical to a sequential loop because nothing
   in the transform depends on ordering. Without a pool they *are*
   the sequential loop. --- *)

let run_page_jobs t jobs =
  match t.pool with
  | Some pool -> Hypertee_util.Domain_pool.run_all pool jobs
  | None -> Array.iter (fun job -> job ()) jobs

(* [write_pages t mem ~key_id pages]: encrypt each [(frame, data)]
   into its frame's DRAM. Frames must be distinct. *)
let write_pages t mem ~key_id pages =
  run_page_jobs t
    (Array.map (fun (frame, data) -> fun () -> write_page t mem ~key_id ~frame data) pages)

(* [read_pages t mem ~key_id frames]: MAC-check and decrypt each
   frame into a fresh page, in input order. *)
let read_pages t mem ~key_id frames =
  let out = Array.make (Array.length frames) Bytes.empty in
  run_page_jobs t
    (Array.mapi (fun i frame -> fun () -> out.(i) <- read_page t mem ~key_id ~frame) frames);
  out

let find_free_slot t =
  Mutex.protect t.lock (fun () ->
      let rec go i =
        if i >= slots t then None
        else if t.table.(i) = Free then begin
          t.table.(i) <- Reserved;
          Some i
        end
        else go (i + 1)
      in
      go 1)

let extra_ns (lat : Config.mem_latency) ~cs_ghz =
  float_of_int (lat.Config.encryption_extra + lat.Config.integrity_extra) /. cs_ghz

let publish_metrics t registry =
  let module M = Hypertee_obs.Metrics in
  let set name help v = M.set_counter (M.counter registry ~help ("mee." ^ name)) v in
  set "stores" "encrypted page stores" t.stores;
  set "loads" "decrypted (MAC-checked) page loads" t.loads;
  set "range_loads" "partial-page decrypts" t.range_loads;
  set "range_updates" "encrypted read-modify-writes" t.range_updates;
  set "mac_failures" "integrity-check failures" t.mac_failures;
  set "bit_flips" "injected DRAM bit flips" t.bit_flips
