exception Integrity_violation of { frame : int }

type slot = {
  key : Hypertee_crypto.Aes.key;
  raw : bytes;
}

(* Slot lifecycle. [Reserved] closes the allocation race the parallel
   audit found: callers allocate with [find_free_slot] and only later
   [program] the derived key, so without an intermediate state two
   shards could claim the same KeyID. [find_free_slot] now atomically
   reserves; [program] commits; [revoke] releases from either state. *)
type entry = Free | Reserved | Programmed of slot

(* Per-line integrity state. [tag] is the 28-bit truncated SHA-3 MAC
   over the line's ciphertext. [verified_v] is the {!Phys_mem} write
   version the ciphertext last *passed* verification at (or was
   produced at, for the engine's own stores): while the frame version
   still matches, a read skips the sponge entirely — the MAC cache
   with lazy re-verification. Any DRAM mutation (engine write, page
   scrub, or an attacker writing through [Phys_mem.borrow]) bumps the
   frame version and so invalidates the cached verification without
   the engine having to see the write. -1 = never verified. *)
type line = {
  tag : int;
  mutable verified_v : int;
}

type t = {
  table : entry array; (* index = KeyID; 0 is bypass *)
  macs : (int * int, line) Hashtbl.t; (* (key_id, frame) -> MAC line *)
  mac_key : bytes; (* engine-internal MAC key *)
  mac_keyed : Hypertee_crypto.Keccak.keyed; (* post-key sponge snapshot *)
  reference_mac : bool; (* perf baseline: reference sponge, no cache *)
  lock : Mutex.t; (* guards table transitions and macs *)
  mutable pool : Hypertee_util.Domain_pool.t option;
  mutable faults : Hypertee_faults.Fault.t option;
  (* Hot counters are atomics, not lock-guarded fields: the parallel
     bulk pipelines bump them from worker domains while
     [publish_metrics] snapshots them, and a mutex around each bump
     would serialize the data plane for bookkeeping. *)
  bit_flips : int Atomic.t;
  stores : int Atomic.t;
  loads : int Atomic.t;
  range_loads : int Atomic.t;
  range_updates : int Atomic.t;
  mac_failures : int Atomic.t;
  mac_cache_hits : int Atomic.t;
}

let create ?(reference_mac = false) ~slots () =
  if slots < 2 then invalid_arg "Mem_encryption.create: need at least 2 slots";
  let mac_key = Hypertee_crypto.Sha256.digest_string "hypertee-mee-mac-key" in
  {
    table = Array.make slots Free;
    macs = Hashtbl.create 256;
    mac_key;
    mac_keyed = Hypertee_crypto.Keccak.keyed_init ~key:mac_key;
    reference_mac;
    lock = Mutex.create ();
    pool = None;
    faults = None;
    bit_flips = Atomic.make 0;
    stores = Atomic.make 0;
    loads = Atomic.make 0;
    range_loads = Atomic.make 0;
    range_updates = Atomic.make 0;
    mac_failures = Atomic.make 0;
    mac_cache_hits = Atomic.make 0;
  }

let set_fault_injector t inj = t.faults <- Some inj
let set_pool t pool = t.pool <- Some pool
let bit_flips t = t.bit_flips |> Atomic.get
let mac_cache_hits t = t.mac_cache_hits |> Atomic.get

let slots t = Array.length t.table

(* The per-line MAC. The keyed snapshot replays the post-key sponge
   state, so the engine absorbs its MAC key exactly once at [create]
   instead of once per line; tags are byte-identical to the plain
   [mac_28bit] (and to the retained reference implementation, which
   the [reference_mac] perf-baseline mode selects). *)
let line_mac t data =
  if t.reference_mac then Hypertee_crypto.Keccak.Reference.mac_28bit ~key:t.mac_key data
  else Hypertee_crypto.Keccak.mac_28bit_keyed t.mac_keyed data

let check_key_id t key_id =
  if key_id <= 0 || key_id >= slots t then
    invalid_arg "Mem_encryption: key_id out of programmable range"

(* Drop MAC state for lines under [key_id]: after revocation or
   reprogramming, stale MACs (and their cached verifications) must
   not satisfy a check. Caller holds [t.lock]. *)
let drop_macs_locked t ~key_id =
  let stale =
    Hashtbl.fold (fun (k, f) _ acc -> if k = key_id then (k, f) :: acc else acc) t.macs []
  in
  List.iter (Hashtbl.remove t.macs) stale

let program t ~key_id key =
  check_key_id t key_id;
  if Bytes.length key <> 16 then invalid_arg "Mem_encryption.program: key must be 16 bytes";
  Mutex.protect t.lock (fun () ->
      (* Reprogramming over a live slot invalidates every line MACed
         under the old key (normal flows revoke first; this is the
         safety net the cache coherence rules rely on). *)
      (match t.table.(key_id) with Programmed _ -> drop_macs_locked t ~key_id | _ -> ());
      t.table.(key_id) <-
        Programmed { key = Hypertee_crypto.Aes.expand key; raw = Bytes.copy key })

let revoke t ~key_id =
  check_key_id t key_id;
  Mutex.protect t.lock (fun () ->
      (match t.table.(key_id) with
      | Programmed slot -> Hypertee_util.Bytes_ext.fill_zero slot.raw
      | Reserved | Free -> ());
      t.table.(key_id) <- Free;
      drop_macs_locked t ~key_id)

let is_programmed t ~key_id =
  key_id > 0 && key_id < slots t
  && match t.table.(key_id) with Programmed _ -> true | Reserved | Free -> false

let slot_exn t key_id =
  check_key_id t key_id;
  match t.table.(key_id) with
  | Programmed s -> s
  | Reserved | Free -> invalid_arg "Mem_encryption: KeyID not programmed"

(* Per-domain tweak scratch: the page nonce depends only on the frame
   number, so one reusable 16-byte buffer per domain serves every
   slot (the per-slot buffer it replaces raced when two domains
   touched pages under the same KeyID). *)
let tweak_scratch : bytes Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Bytes.make 16 '\000')

let tweak_for ~frame =
  let tw = Domain.DLS.get tweak_scratch in
  Hypertee_util.Bytes_ext.set_u64_be tw 8 (Int64.of_int frame);
  tw

(* Record the line MAC over freshly produced ciphertext. [verified_v]
   carries the DRAM write version when the ciphertext lives in a
   tracked frame (the engine just produced those bytes, so they are
   verified by construction) and -1 for detached buffers. *)
let record_line t ~key_id ~frame ~tag ~verified_v =
  Atomic.incr t.stores;
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.macs (key_id, frame) { tag; verified_v })

let store_into_v t ~key_id ~frame ~src ~dst ~verified_v =
  let len = Bytes.length src in
  if Bytes.length dst <> len then invalid_arg "Mem_encryption.store_into: length mismatch";
  if key_id = 0 then begin
    if dst != src then Bytes.blit src 0 dst 0 len
  end
  else begin
    let slot = slot_exn t key_id in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~src ~src_off:0 ~dst
      ~dst_off:0 len;
    record_line t ~key_id ~frame ~tag:(line_mac t dst) ~verified_v
  end

let store_into t ~key_id ~frame ~src ~dst = store_into_v t ~key_id ~frame ~src ~dst ~verified_v:(-1)

let store t ~key_id ~frame data =
  if key_id = 0 then data
  else begin
    let ct = Bytes.create (Bytes.length data) in
    store_into t ~key_id ~frame ~src:data ~dst:ct;
    ct
  end

(* Injected DRAM bit flip: flip one deterministic-random bit of the
   ciphertext as the line arrives from memory. The SHA-3 MAC check
   below must catch it — that is the integrity property under test.
   Never mutates [data] (which may be a borrowed DRAM page); the rare
   fault path pays a copy. Returns whether the flip fired: a struck
   line must be verified even when its frame's cached verification is
   still current, because the corruption is in the arriving copy, not
   in DRAM. *)
let maybe_flip t ~frame data =
  match t.faults with
  | None -> (data, false)
  | Some inj ->
    let module F = Hypertee_faults.Fault in
    if Bytes.length data > 0 && F.fire inj F.Memory_bit_flip then begin
      Atomic.incr t.bit_flips;
      (* Journal the flip against its frame so the deep checker sweep
         can tell injected MAC failures from latent platform bugs. *)
      F.note_flip inj ~frame;
      let bit = F.draw_int inj F.Memory_bit_flip (8 * Bytes.length data) in
      let flipped = Bytes.copy data in
      let byte = bit / 8 in
      Bytes.set flipped byte (Char.chr (Char.code (Bytes.get flipped byte) lxor (1 lsl (bit mod 8))));
      (flipped, true)
    end
    else (data, false)

(* Verify the full ciphertext [data] against the stored line MAC and
   raise on mismatch. [mark] is the frame write version to cache on
   success (-1 = don't cache, for flipped copies and untracked
   buffers). The sponge runs outside the lock; only the compare and
   the cache update are serialized. *)
let verify_line t ~key_id ~frame ~mark data =
  let mac = line_mac t data in
  let ok =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.macs (key_id, frame) with
        | Some ln when ln.tag = mac ->
          if mark >= 0 then ln.verified_v <- mark;
          true
        | Some _ | None ->
          (* [None]: never stored under this key — decrypting
             garbage; a real engine would also MAC-fault on
             uninitialised lines. *)
          Atomic.incr t.mac_failures;
          false)
  in
  if not ok then raise (Integrity_violation { frame })

(* MAC-check the full ciphertext [data] as it arrives from DRAM and
   return the (possibly fault-flipped) buffer to decrypt from. Used
   by the detached-buffer loads, which have no frame version to cache
   against. *)
let checked_ciphertext t ~key_id ~frame data =
  let data, flipped = maybe_flip t ~frame data in
  ignore flipped;
  verify_line t ~key_id ~frame ~mark:(-1) data;
  data

(* The zero-copy variant: [src] is the frame's live DRAM buffer at
   write version [v]. If the line already passed verification at this
   exact version (and no fault struck the arriving copy), the sponge
   is skipped — repeated reads of an unmodified hot frame pay only
   AES. The [reference_mac] baseline engine never skips. *)
let checked_dram t ~key_id ~frame ~v src =
  let data, flipped = maybe_flip t ~frame src in
  let hit =
    (not flipped) && (not t.reference_mac)
    && Mutex.protect t.lock (fun () ->
           match Hashtbl.find_opt t.macs (key_id, frame) with
           | Some ln -> ln.verified_v = v
           | None -> false)
  in
  if hit then Atomic.incr t.mac_cache_hits
  else verify_line t ~key_id ~frame ~mark:(if flipped then -1 else v) data;
  data

let load_into t ~key_id ~frame ~src ~dst =
  let len = Bytes.length src in
  if Bytes.length dst <> len then invalid_arg "Mem_encryption.load_into: length mismatch";
  if key_id = 0 then begin
    if dst != src then Bytes.blit src 0 dst 0 len
  end
  else begin
    Atomic.incr t.loads;
    let data = checked_ciphertext t ~key_id ~frame src in
    let slot = slot_exn t key_id in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~src:data ~src_off:0 ~dst
      ~dst_off:0 len
  end

(* Decrypt only [off, off+len) of the page whose full ciphertext is
   [src]. Integrity is still verified over the whole line — the MAC is
   page-granular — but the keystream is only generated for the
   requested range. *)
let load_range_into t ~key_id ~frame ~src ~off ~len dst ~dst_off =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Mem_encryption.load_range_into: bad slice";
  if key_id = 0 then Bytes.blit src off dst dst_off len
  else begin
    Atomic.incr t.range_loads;
    let data = checked_ciphertext t ~key_id ~frame src in
    let slot = slot_exn t key_id in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~stream_off:off ~src:data
      ~src_off:off ~dst ~dst_off len
  end

let load t ~key_id ~frame data =
  if key_id = 0 then data
  else begin
    let pt = Bytes.create (Bytes.length data) in
    load_into t ~key_id ~frame ~src:data ~dst:pt;
    pt
  end

(* --- Zero-copy data plane over physical memory. These helpers pair
   the engine with [Phys_mem.borrow] so page reads and writes
   transform DRAM in place instead of copying pages through both
   layers; the read side additionally rides the verified-MAC cache
   through the frame write version. --- *)

let page_size = Hypertee_util.Units.page_size

let read_page t mem ~key_id ~frame =
  if key_id = 0 then Phys_mem.read mem ~frame
  else begin
    Atomic.incr t.loads;
    let v = Phys_mem.version mem ~frame in
    let data = checked_dram t ~key_id ~frame ~v (Phys_mem.borrow_ro mem ~frame) in
    let slot = slot_exn t key_id in
    let pt = Bytes.create page_size in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~src:data ~src_off:0
      ~dst:pt ~dst_off:0 page_size;
    pt
  end

let read_range_into t mem ~key_id ~frame ~off ~len dst ~dst_off =
  if key_id = 0 then Phys_mem.read_into mem ~frame ~off ~len dst ~dst_off
  else begin
    if off < 0 || len < 0 || off + len > page_size then
      invalid_arg "Mem_encryption.read_range_into: bad slice";
    Atomic.incr t.range_loads;
    let v = Phys_mem.version mem ~frame in
    let data = checked_dram t ~key_id ~frame ~v (Phys_mem.borrow_ro mem ~frame) in
    let slot = slot_exn t key_id in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~stream_off:off ~src:data
      ~src_off:off ~dst ~dst_off len
  end

let read_range t mem ~key_id ~frame ~off ~len =
  let out = Bytes.create len in
  read_range_into t mem ~key_id ~frame ~off ~len out ~dst_off:0;
  out

let write_page t mem ~key_id ~frame src =
  if Bytes.length src <> page_size then
    invalid_arg "Mem_encryption.write_page: data must be one page";
  let dram = Phys_mem.borrow mem ~frame in
  if key_id = 0 then Bytes.blit src 0 dram 0 page_size
  else
    (* The engine produced both the ciphertext and its MAC, so the
       line is verified by construction at the version the borrow
       just bumped to: the next read skips the sponge. *)
    store_into_v t ~key_id ~frame ~src ~dst:dram ~verified_v:(Phys_mem.version mem ~frame)

let update_range t mem ~key_id ~frame ~off ~src ~src_off ~len =
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Mem_encryption.update_range: bad slice";
  if key_id = 0 then begin
    let dram = Phys_mem.borrow mem ~frame in
    Bytes.blit src src_off dram off len
  end
  else begin
    (* Read-modify-write without the full-page decrypt/re-encrypt the
       old path paid: verifying the stale line first keeps the
       integrity property (a tampered page still faults even when
       only partially overwritten), and because CTR keystream bytes
       outside [off, off+len) are untouched by the patch, only the
       dirty range's keystream needs regenerating — the new
       ciphertext is byte-identical to decrypt-blit-reencrypt. *)
    Atomic.incr t.range_updates;
    Atomic.incr t.loads;
    let v = Phys_mem.version mem ~frame in
    ignore (checked_dram t ~key_id ~frame ~v (Phys_mem.borrow_ro mem ~frame) : bytes);
    let slot = slot_exn t key_id in
    let dram = Phys_mem.borrow mem ~frame in
    Hypertee_crypto.Aes.ctr_into slot.key ~nonce:(tweak_for ~frame) ~stream_off:off ~src
      ~src_off ~dst:dram ~dst_off:off len;
    record_line t ~key_id ~frame ~tag:(line_mac t dram)
      ~verified_v:(Phys_mem.version mem ~frame)
  end

(* Invalidate every cached verification (the MACs themselves stay):
   the deep invariant sweep calls this first so its [read_page] pass
   re-verifies every mapped line instead of trusting the cache, and
   the perf harness uses it to measure the cold path. *)
let flush_mac_cache t =
  Mutex.protect t.lock (fun () -> Hashtbl.iter (fun _ ln -> ln.verified_v <- -1) t.macs)

(* --- Bulk page pipelines. Each page's encrypt/MAC (or MAC-check/
   decrypt) is independent of every other page's, so with a worker
   pool installed these fan the per-page work across domains; the
   bytes written are identical to a sequential loop because nothing
   in the transform depends on ordering. Without a pool they *are*
   the sequential loop. --- *)

let run_page_jobs t jobs =
  match t.pool with
  | Some pool -> Hypertee_util.Domain_pool.run_all pool jobs
  | None -> Array.iter (fun job -> job ()) jobs

(* [write_pages t mem ~key_id pages]: encrypt each [(frame, data)]
   into its frame's DRAM. Frames must be distinct. *)
let write_pages t mem ~key_id pages =
  run_page_jobs t
    (Array.map (fun (frame, data) -> fun () -> write_page t mem ~key_id ~frame data) pages)

(* [read_pages t mem ~key_id frames]: MAC-check and decrypt each
   frame into a fresh page, in input order. *)
let read_pages t mem ~key_id frames =
  let out = Array.make (Array.length frames) Bytes.empty in
  run_page_jobs t
    (Array.mapi (fun i frame -> fun () -> out.(i) <- read_page t mem ~key_id ~frame) frames);
  out

let find_free_slot t =
  Mutex.protect t.lock (fun () ->
      let rec go i =
        if i >= slots t then None
        else if t.table.(i) = Free then begin
          t.table.(i) <- Reserved;
          Some i
        end
        else go (i + 1)
      in
      go 1)

let extra_ns (lat : Config.mem_latency) ~cs_ghz =
  float_of_int (lat.Config.encryption_extra + lat.Config.integrity_extra) /. cs_ghz

let publish_metrics t registry =
  let module M = Hypertee_obs.Metrics in
  let set name help v = M.set_counter (M.counter registry ~help ("mee." ^ name)) v in
  (* Atomic snapshots: no engine lock taken, so a metrics scrape never
     stalls (or races) the parallel data plane. *)
  set "stores" "encrypted page stores" (Atomic.get t.stores);
  set "loads" "decrypted (MAC-checked) page loads" (Atomic.get t.loads);
  set "range_loads" "partial-page decrypts" (Atomic.get t.range_loads);
  set "range_updates" "encrypted read-modify-writes" (Atomic.get t.range_updates);
  set "mac_failures" "integrity-check failures" (Atomic.get t.mac_failures);
  set "mac_cache_hits" "integrity checks skipped by the verified-line cache"
    (Atomic.get t.mac_cache_hits);
  set "bit_flips" "injected DRAM bit flips" (Atomic.get t.bit_flips)
